package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/restore"
	"repro/internal/segment"
	"repro/internal/workload"
)

// defragRun ingests cfg.Generations single-user backups through one DeFrag
// engine built by mutate(cfg) and returns summary measurements.
type defragRunResult struct {
	lastTputMBps  float64
	lastReadMBps  float64
	lastEff       float64
	rewrittenMB   float64
	storedMB      float64
	logicalMB     float64
	lastFragments int
}

func runDefragVariant(cfg ExperimentConfig, mutate func(*core.Config)) (defragRunResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, _ := cfg.sizing(1, cfg.Generations)
	ecfg := core.DefaultConfig(expected)
	ecfg.Alpha = cfg.Alpha
	ecfg.LPCContainers = lpc
	if mutate != nil {
		mutate(&ecfg)
	}
	eng, err := core.New(ecfg)
	if err != nil {
		return defragRunResult{}, err
	}
	eng.SetOracle(cindex.NewOracle())
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return defragRunResult{}, err
	}
	var out defragRunResult
	var rewritten, logical int64
	var lastStats engine.BackupStats
	var lastRead restore.Stats
	for g := 0; g < cfg.Generations; g++ {
		st, b, err := ingest(eng, sched)
		if err != nil {
			return defragRunResult{}, err
		}
		rewritten += st.RewrittenBytes
		logical += st.LogicalBytes
		lastStats = st
		if g == cfg.Generations-1 {
			lastRead, err = restore.Run(context.Background(), eng.Containers(), b.recipe(), restore.DefaultConfig(), nil)
			if err != nil {
				return defragRunResult{}, err
			}
		}
	}
	out.lastTputMBps = lastStats.ThroughputMBps()
	out.lastEff = lastStats.Efficiency()
	out.lastReadMBps = lastRead.ThroughputMBps()
	out.lastFragments = lastRead.Fragments
	out.rewrittenMB = float64(rewritten) / 1e6
	out.storedMB = float64(eng.Containers().StoredBytes()) / 1e6
	out.logicalMB = float64(logical) / 1e6
	return out, nil
}

// RunAlphaSweep quantifies the paper's α trade-off (§III-B: "the preset
// value α can be adjusted and controlled to trade off the spatial locality
// improvement and the sacrificed compression ratios"): for each α it
// reports final-generation throughput, read performance, efficiency, and
// the storage cost of rewriting.
func RunAlphaSweep(cfg ExperimentConfig, alphas []float64) (*FigureResult, error) {
	if len(alphas) == 0 {
		alphas = []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0}
	}
	res := &FigureResult{
		Figure:  "Ablation: alpha sweep",
		Title:   "DeFrag locality-vs-compression trade-off across SPL thresholds",
		Columns: []string{"alpha", "tput_MBps", "read_MBps", "efficiency", "rewritten_MB", "stored_MB", "compression"},
		Summary: map[string]float64{},
	}
	for _, a := range alphas {
		c := cfg
		c.Alpha = a
		r, err := runDefragVariant(c, nil)
		if err != nil {
			return nil, err
		}
		compression := 0.0
		if r.storedMB > 0 {
			compression = r.logicalMB / r.storedMB
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.2f", a),
			metrics.F1(r.lastTputMBps),
			metrics.F1(r.lastReadMBps),
			metrics.F3(r.lastEff),
			metrics.F1(r.rewrittenMB),
			metrics.F1(r.storedMB),
			metrics.F3(compression),
		})
		if a == 0 {
			res.Summary["alpha0_read_MBps"] = r.lastReadMBps
			res.Summary["alpha0_compression"] = compression
		}
	}
	return res, nil
}

// RunCacheAblation varies the locality-preserved cache capacity — the RAM
// knob whose scarcity creates the paper's disk bottleneck.
func RunCacheAblation(cfg ExperimentConfig, capacities []int) (*FigureResult, error) {
	if len(capacities) == 0 {
		capacities = []int{2, 4, 8, 16, 32, 64}
	}
	res := &FigureResult{
		Figure:  "Ablation: LPC capacity",
		Title:   "DeFrag sensitivity to locality-preserved cache size (containers)",
		Columns: []string{"lpc_containers", "tput_MBps", "read_MBps", "efficiency"},
		Summary: map[string]float64{},
	}
	for _, n := range capacities {
		n := n
		r, err := runDefragVariant(cfg, func(c *core.Config) { c.LPCContainers = n })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			metrics.F1(r.lastTputMBps),
			metrics.F1(r.lastReadMBps),
			metrics.F3(r.lastEff),
		})
	}
	return res, nil
}

// RunSegmentAblation varies segment geometry within and beyond the paper's
// 0.5–2 MB band. Segment size sets the SPL denominator: smaller segments
// make the α test more trigger-happy (more rewriting), larger ones more
// tolerant.
func RunSegmentAblation(cfg ExperimentConfig) (*FigureResult, error) {
	variants := []struct {
		name string
		p    segment.Params
	}{
		{"0.25-1MB", segment.Params{MinBytes: 256 << 10, MaxBytes: 1 << 20, Divisor: 64}},
		{"0.5-2MB", segment.DefaultParams()},
		{"1-4MB", segment.Params{MinBytes: 1 << 20, MaxBytes: 4 << 20, Divisor: 256}},
	}
	res := &FigureResult{
		Figure:  "Ablation: segment size",
		Title:   "DeFrag sensitivity to segment geometry (SPL granularity)",
		Columns: []string{"segments", "tput_MBps", "read_MBps", "efficiency", "rewritten_MB"},
		Summary: map[string]float64{},
	}
	for _, v := range variants {
		v := v
		r, err := runDefragVariant(cfg, func(c *core.Config) { c.SegParams = v.p })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			v.name,
			metrics.F1(r.lastTputMBps),
			metrics.F1(r.lastReadMBps),
			metrics.F3(r.lastEff),
			metrics.F1(r.rewrittenMB),
		})
	}
	return res, nil
}

// RunContainerAblation varies container capacity, the prefetch and restore
// granularity.
func RunContainerAblation(cfg ExperimentConfig, sizesMB []int) (*FigureResult, error) {
	if len(sizesMB) == 0 {
		sizesMB = []int{1, 2, 4, 8}
	}
	res := &FigureResult{
		Figure:  "Ablation: container size",
		Title:   "DeFrag sensitivity to container capacity",
		Columns: []string{"container_MB", "tput_MBps", "read_MBps", "fragments"},
		Summary: map[string]float64{},
	}
	for _, mb := range sizesMB {
		mb := mb
		r, err := runDefragVariant(cfg, func(c *core.Config) {
			c.ContainerCfg.DataCap = int64(mb) << 20
			c.ContainerCfg.MaxChunks = 512 * mb
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(mb),
			metrics.F1(r.lastTputMBps),
			metrics.F1(r.lastReadMBps),
			fmt.Sprint(r.lastFragments),
		})
	}
	return res, nil
}

// RunRestoreAblation compares the four restore strategies — LRU container
// cache, recipe-aware OPT cache, forward assembly area, and the fully
// pipelined engine (OPT + coalescing + parallel prefetch) — on a
// late-generation (fragmented) DeFrag recipe across equivalent memory
// budgets. OPT's container reads are never above LRU's at the same budget
// (Belady optimality); the pipelined column shows what coalescing and
// prefetch lanes add on top of the better eviction.
func RunRestoreAblation(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, _ := cfg.sizing(1, cfg.Generations)
	ecfg := core.DefaultConfig(expected)
	ecfg.Alpha = cfg.Alpha
	ecfg.LPCContainers = lpc
	eng, err := core.New(ecfg)
	if err != nil {
		return nil, err
	}
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	var last *Backup
	for g := 0; g < cfg.Generations; g++ {
		_, b, err := ingest(eng, sched)
		if err != nil {
			return nil, err
		}
		last = b
	}

	res := &FigureResult{
		Figure:  "Ablation: restore strategy",
		Title:   "LRU vs OPT vs FAA vs pipelined restore (final-generation restore)",
		Columns: []string{"budget_MB", "lru_read_MBps", "lru_creads", "opt_read_MBps", "opt_creads", "faa_read_MBps", "faa_creads", "pipe_read_MBps", "pipe_extents", "lru_wall_MBps", "pipe_wall_MBps"},
		Summary: map[string]float64{},
	}
	containerMB := ecfg.ContainerCfg.DataCap >> 20
	workers := cfg.Workers
	if workers < 1 {
		workers = 4
	}
	for _, budgetMB := range []int64{8, 16, 32, 64, 128} {
		cap := int(budgetMB / containerMB)
		// Both the serial-LRU baseline and the full pipeline run through
		// RunPipelined (the LRU row with the serial fetch path, the pipe row
		// with coalescing, prefetch lanes and the parallel decode pool), so
		// the wall columns compare the shipped paths. Simulated stats are
		// decode-pool-invariant (TestDecodeWorkersDeterminism).
		t0 := time.Now()
		lruSt, err := restore.RunPipelined(context.Background(), eng.Containers(), last.recipe(),
			restore.PipelineConfig{CacheContainers: cap, Policy: restore.PolicyLRU, Workers: 1, DecodeWorkers: 1}, nil)
		lruWall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		optSt, err := restore.RunPipelined(context.Background(), eng.Containers(), last.recipe(),
			restore.PipelineConfig{CacheContainers: cap, Policy: restore.PolicyOPT, Workers: 1}, nil)
		if err != nil {
			return nil, err
		}
		faaSt, err := restore.RunFAA(context.Background(), eng.Containers(), last.recipe(), restore.FAAConfig{AreaBytes: budgetMB << 20}, nil)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		pipeSt, err := restore.RunPipelined(context.Background(), eng.Containers(), last.recipe(),
			restore.PipelineConfig{CacheContainers: cap, Policy: restore.PolicyOPT, Workers: workers, Coalesce: true, MaxCoalesce: 8}, nil)
		pipeWall := time.Since(t1)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(budgetMB),
			metrics.F1(lruSt.ThroughputMBps()),
			fmt.Sprint(lruSt.ContainerReads),
			metrics.F1(optSt.ThroughputMBps()),
			fmt.Sprint(optSt.ContainerReads),
			metrics.F1(faaSt.ThroughputMBps()),
			fmt.Sprint(faaSt.ContainerReads),
			metrics.F1(pipeSt.ThroughputMBps()),
			fmt.Sprint(pipeSt.ExtentReads),
			metrics.F1(wallMBps(lruSt.Bytes, lruWall)),
			metrics.F1(wallMBps(pipeSt.Bytes, pipeWall)),
		})
		if optSt.ContainerReads > lruSt.ContainerReads {
			res.Summary["opt_exceeded_lru"] = 1
		}
	}
	return res, nil
}

// RunPolicyAblation compares DeFrag's rewrite-grouping policies: the
// paper's segment-granularity SPL against the CBR-style container
// granularity (related work [5]), at the same α.
func RunPolicyAblation(cfg ExperimentConfig) (*FigureResult, error) {
	res := &FigureResult{
		Figure:  "Ablation: rewrite policy",
		Title:   "SPL grouping granularity: segments (paper) vs containers (CBR-style)",
		Columns: []string{"policy", "tput_MBps", "read_MBps", "efficiency", "rewritten_MB", "compression"},
		Summary: map[string]float64{},
	}
	for _, p := range []core.RewritePolicy{core.PolicySPL, core.PolicyContainer} {
		p := p
		r, err := runDefragVariant(cfg, func(c *core.Config) { c.Policy = p })
		if err != nil {
			return nil, err
		}
		compression := 0.0
		if r.storedMB > 0 {
			compression = r.logicalMB / r.storedMB
		}
		res.Rows = append(res.Rows, []string{
			p.String(),
			metrics.F1(r.lastTputMBps),
			metrics.F1(r.lastReadMBps),
			metrics.F3(r.lastEff),
			metrics.F1(r.rewrittenMB),
			metrics.F3(compression),
		})
		res.Summary[p.String()+"_read_MBps"] = r.lastReadMBps
	}
	return res, nil
}
