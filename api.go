// Package repro is a reproduction of Tan, Yan, Feng & Sha, "Reducing The
// De-linearization of Data Placement to Improve Deduplication Performance"
// (SC 2012): the DeFrag selective-rewrite deduplicator, the DDFS-Like and
// SiLo-Like baselines it is evaluated against, two further baselines from
// the paper's related-work space (Sparse Indexing, iDedup), and the
// simulated storage substrate they all run on.
//
// The public API has three layers:
//
//   - Store (this file): open a deduplicating store with one of the five
//     engines, back up streams, restore them, compact, check, export, and
//     read storage statistics.
//   - BackupStats / RestoreStats (stats.go): the per-operation measurements,
//     including the paper's three headline metrics.
//   - Experiments (experiments.go): runners that regenerate every figure of
//     the paper's evaluation section as a table.
//
// All performance numbers are simulated-disk time (see internal/disk); the
// data path is real — with Options.StoreData, chunk bytes round-trip through
// the store bit-exactly.
package repro

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/engine/idedup"
	"repro/internal/engine/silo"
	"repro/internal/engine/sparse"
	"repro/internal/fsck"
	"repro/internal/gc"
	"repro/internal/restore"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Store-level telemetry: one span per public operation (wall plus
// simulated-clock duration) and operation counters. The per-phase and
// per-subsystem instruments live in the internal packages; see the metric
// catalog in README.md ("Observability").
var (
	telBackups = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "backup"),
		"public Store operations, by kind")
	telRestores = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "restore"), "")
	telCompacts = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "compact"), "")
)

// EngineKind selects a deduplication engine.
type EngineKind int

const (
	// DeFrag is the paper's contribution: DDFS-style exact dedup plus
	// SPL-driven selective rewriting of fragmenting duplicates.
	DeFrag EngineKind = iota
	// DDFSLike is the Zhu et al. FAST'08 baseline (summary vector +
	// stream-informed layout + locality-preserved caching).
	DDFSLike
	// SiLoLike is the Xia et al. ATC'11 baseline (similarity + locality,
	// near-exact, no full index).
	SiLoLike
	// SparseIndex is the Lillibridge et al. FAST'09 scheme the paper names
	// alongside DDFS (§II-B): hook sampling + champion manifests,
	// near-exact, no full index. Provided as an additional baseline beyond
	// the paper's own comparison set.
	SparseIndex
	// IDedup is an iDedup-style engine (Srinivasan et al. FAST'12, the
	// paper's citation [3]): selective inline dedup that removes only
	// duplicate runs of at least Options.MinRun physically contiguous
	// chunks, bounding restore fragmentation by construction.
	IDedup
)

// String returns the engine's name as used throughout the paper tables.
func (k EngineKind) String() string {
	switch k {
	case DeFrag:
		return "defrag"
	case DDFSLike:
		return "ddfs-like"
	case SiLoLike:
		return "silo-like"
	case SparseIndex:
		return "sparse-index"
	case IDedup:
		return "idedup"
	}
	return "unknown"
}

// ParseEngineKind converts a name ("defrag", "ddfs-like"/"ddfs",
// "silo-like"/"silo", "sparse-index"/"sparse") to an EngineKind.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "defrag":
		return DeFrag, nil
	case "ddfs", "ddfs-like":
		return DDFSLike, nil
	case "silo", "silo-like":
		return SiLoLike, nil
	case "sparse", "sparse-index":
		return SparseIndex, nil
	case "idedup":
		return IDedup, nil
	}
	return 0, fmt.Errorf("repro: unknown engine %q", s)
}

// Options configures a Store.
type Options struct {
	// Engine selects the deduplication approach (default DeFrag).
	Engine EngineKind
	// Alpha is DeFrag's SPL threshold; ignored by other engines.
	// 0 disables rewriting; the paper evaluates 0.1 (the default used when
	// Alpha is negative is 0.1; an explicit 0 is honoured).
	Alpha float64
	// ExpectedBytes sizes caches, Bloom filter and index for the total
	// data the store will ingest across all backups. Default 1 GiB.
	ExpectedBytes int64
	// StoreData keeps real chunk bytes on the simulated device so restores
	// return (and can verify) actual content. Costs RAM proportional to
	// the deduplicated size; leave false for large timing experiments.
	StoreData bool
	// TrackEfficiency attaches the exact ground-truth oracle so
	// BackupStats.Efficiency is populated.
	TrackEfficiency bool
	// MinRun is IDedup's duplicate-run threshold in chunks; ignored by
	// other engines. 0 uses the engine default (8).
	MinRun int
	// Workers > 1 parallelizes the chunk-fingerprinting stage of every
	// backup across goroutines. Purely a wall-clock optimization of the
	// pipeline; all results and simulated timings are identical.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.ExpectedBytes <= 0 {
		o.ExpectedBytes = 1 << 30
	}
	if o.Alpha < 0 {
		o.Alpha = 0.1
	}
	return o
}

// Store is a deduplicating backup store over a simulated disk.
type Store struct {
	opts   Options
	eng    engine.Engine
	oracle *cindex.Oracle

	backups []*Backup
	logical int64
}

// Backup is one ingested stream: its recipe (needed to restore) plus the
// measured statistics.
type Backup struct {
	Label  string
	Stats  BackupStats
	recipe *chunk.Recipe
}

// Fragments returns the number of placement fragments of the backup —
// the N of the paper's Eq. 1.
func (b *Backup) Fragments() int { return b.recipe.Fragments() }

// Chunks returns the number of chunk references in the backup's recipe.
func (b *Backup) Chunks() int { return b.recipe.Len() }

// WriteRecipe serializes the backup's recipe (see internal/trace format).
func (b *Backup) WriteRecipe(w io.Writer) error { return trace.Save(w, b.recipe) }

// Open creates a store with the selected engine.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{opts: opts}
	var err error
	switch opts.Engine {
	case DeFrag:
		cfg := core.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.Alpha = opts.Alpha
		cfg.StoreData = opts.StoreData
		var e *core.Engine
		if e, err = core.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case DDFSLike:
		cfg := ddfs.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		var e *ddfs.Engine
		if e, err = ddfs.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case SiLoLike:
		cfg := silo.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		var e *silo.Engine
		if e, err = silo.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case SparseIndex:
		cfg := sparse.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		var e *sparse.Engine
		if e, err = sparse.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case IDedup:
		cfg := idedup.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		if opts.MinRun > 0 {
			cfg.MinRun = opts.MinRun
		}
		var e *idedup.Engine
		if e, err = idedup.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	default:
		err = fmt.Errorf("repro: unknown engine kind %d", opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Engine returns the engine's name.
func (s *Store) Engine() string { return s.eng.Name() }

// Backup ingests one full-backup stream under label and returns the
// recorded backup.
func (s *Store) Backup(label string, r io.Reader) (*Backup, error) {
	_, span := telemetry.StartSpan(context.Background(), "store.backup")
	defer span.End()
	telBackups.Inc()
	rec, st, err := s.eng.Backup(label, r)
	if err != nil {
		return nil, err
	}
	span.SetSim(st.Duration)
	b := &Backup{Label: label, Stats: fromEngineStats(st), recipe: rec}
	s.backups = append(s.backups, b)
	s.logical += st.LogicalBytes
	return b, nil
}

// StreamInput is one labeled backup stream for BackupStreams.
type StreamInput struct {
	Label  string
	Stream io.Reader
}

// BackupStreams ingests several backup streams with at most concurrency
// backups in flight at once, returning the per-stream backups (in input
// order) plus merged statistics for the whole round.
//
// concurrency <= 1 is bit-identical to calling Backup on each input in
// order. With concurrency > 1, engines whose ingest path supports
// concurrent streams (DeFrag, DDFS-Like) run up to that many backups in
// parallel over the shared index, Bloom filter and container store; each
// stream pays its simulated costs on its own clock, and the merged
// Duration is the slowest lane of the round, not the sum. Engines without
// concurrent ingest fall back to the serial loop.
func (s *Store) BackupStreams(inputs []StreamInput, concurrency int) ([]*Backup, BackupStats, error) {
	_, span := telemetry.StartSpan(context.Background(), "store.backup_streams")
	defer span.End()
	streams := make([]engine.Stream, len(inputs))
	for i, in := range inputs {
		streams[i] = engine.Stream{Label: in.Label, R: in.Stream}
	}
	results, merged, err := engine.RunStreams(s.eng, streams, concurrency)
	span.SetSim(merged.Duration)
	backups := make([]*Backup, 0, len(results))
	for i := range results {
		if results[i].Err != nil || results[i].Recipe == nil {
			continue
		}
		telBackups.Inc()
		b := &Backup{Label: inputs[i].Label, Stats: fromEngineStats(results[i].Stats), recipe: results[i].Recipe}
		s.backups = append(s.backups, b)
		s.logical += results[i].Stats.LogicalBytes
		backups = append(backups, b)
	}
	return backups, fromEngineStats(merged), err
}

// Backups returns all backups ingested so far, in order.
func (s *Store) Backups() []*Backup { return s.backups }

// Forget drops a backup from the retained set. Its chunks stay on disk
// until a later Compact finds them unreferenced (dedup stores cannot free
// shared chunks eagerly — that is what retention-aware garbage collection
// is for). Returns false if no backup has the label.
func (s *Store) Forget(label string) bool {
	for i, b := range s.backups {
		if b.Label == label {
			s.backups = append(s.backups[:i], s.backups[i+1:]...)
			return true
		}
	}
	return false
}

// RestorePolicy selects the restore cache replacement policy.
type RestorePolicy int

const (
	// RestoreLRU is the classic recency cache (the legacy restore path).
	RestoreLRU RestorePolicy = iota
	// RestoreOPT is Belady's offline-optimal eviction, computable online
	// here because the full recipe is known before the restore starts.
	RestoreOPT
)

func (p RestorePolicy) String() string {
	if p == RestoreOPT {
		return "opt"
	}
	return "lru"
}

// ParseRestorePolicy converts "lru" or "opt" to a RestorePolicy.
func ParseRestorePolicy(s string) (RestorePolicy, error) {
	switch s {
	case "lru":
		return RestoreLRU, nil
	case "opt":
		return RestoreOPT, nil
	}
	return 0, fmt.Errorf("repro: unknown restore policy %q", s)
}

// RestoreOptions parameterizes Store.RestoreWith.
type RestoreOptions struct {
	// CacheContainers is the restore cache capacity in containers
	// (default 8, the restore package default).
	CacheContainers int
	// Policy selects LRU (default) or OPT eviction.
	Policy RestorePolicy
	// Workers is the number of parallel prefetch lanes (default 1, serial).
	Workers int
	// Coalesce merges reads of disk-adjacent containers into single
	// sequential extents (one seek for k containers).
	Coalesce bool
	// ChunkCache retains only recipe-referenced chunks instead of whole
	// container data sections.
	ChunkCache bool
	// Verify recomputes chunk fingerprints; requires Options.StoreData.
	Verify bool
}

// DefaultRestoreOptions returns the legacy restore shape: an 8-container
// LRU cache, serial, uncoalesced.
func DefaultRestoreOptions() RestoreOptions {
	return RestoreOptions{CacheContainers: restore.DefaultConfig().CacheContainers, Workers: 1}
}

// Restore reconstructs backup b, writing the stream to w (nil w measures
// without materializing). verify recomputes chunk fingerprints and requires
// Options.StoreData. It runs the legacy shape (serial LRU cache); use
// RestoreWith for the pipelined read path.
func (s *Store) Restore(b *Backup, w io.Writer, verify bool) (RestoreStats, error) {
	opts := DefaultRestoreOptions()
	opts.Verify = verify
	return s.RestoreWith(b, w, opts)
}

// RestoreWith reconstructs backup b under explicit restore options. The
// legacy shape (LRU, one worker, no coalescing, no chunk cache) runs the
// original restore.Run code path; any other shape runs the pipelined
// engine, whose serial LRU results are bit-identical to Run by
// construction (pinned in internal/restore's tests).
func (s *Store) RestoreWith(b *Backup, w io.Writer, opts RestoreOptions) (RestoreStats, error) {
	_, span := telemetry.StartSpan(context.Background(), "store.restore")
	defer span.End()
	telRestores.Inc()
	if opts.CacheContainers <= 0 {
		opts.CacheContainers = restore.DefaultConfig().CacheContainers
	}
	var st restore.Stats
	var err error
	if opts.Policy == RestoreLRU && opts.Workers <= 1 && !opts.Coalesce && !opts.ChunkCache {
		cfg := restore.Config{CacheContainers: opts.CacheContainers, Verify: opts.Verify}
		st, err = restore.Run(s.eng.Containers(), b.recipe, cfg, w)
	} else {
		cfg := restore.PipelineConfig{
			CacheContainers: opts.CacheContainers,
			Workers:         opts.Workers,
			Coalesce:        opts.Coalesce,
			ChunkCache:      opts.ChunkCache,
			Verify:          opts.Verify,
		}
		if opts.Policy == RestoreOPT {
			cfg.Policy = restore.PolicyOPT
		}
		st, err = restore.RunPipelined(s.eng.Containers(), b.recipe, cfg, w)
	}
	if err != nil {
		return RestoreStats{}, err
	}
	span.SetSim(st.Duration)
	return fromRestoreStats(st), nil
}

// RestoreFAA reconstructs backup b with the forward-assembly-area
// algorithm instead of the LRU container cache: memory is bounded by
// areaBytes and every container is read at most once per assembly window,
// regardless of how badly fragmentation interleaves the recipe.
func (s *Store) RestoreFAA(b *Backup, w io.Writer, areaBytes int64, verify bool) (RestoreStats, error) {
	_, span := telemetry.StartSpan(context.Background(), "store.restore")
	defer span.End()
	telRestores.Inc()
	st, err := restore.RunFAA(s.eng.Containers(), b.recipe, restore.FAAConfig{AreaBytes: areaBytes, Verify: verify}, w)
	if err != nil {
		return RestoreStats{}, err
	}
	span.SetSim(st.Duration)
	return fromRestoreStats(st), nil
}

// SimulatedTime returns total simulated time consumed by the store so far.
func (s *Store) SimulatedTime() time.Duration { return s.eng.Clock().Now() }

// StoreStats summarizes storage consumption.
type StoreStats struct {
	LogicalBytes     int64   // bytes ingested across all backups
	StoredBytes      int64   // physical chunk-data bytes after dedup
	Containers       int     // sealed containers
	Utilization      float64 // live fraction of stored bytes (rewrites create garbage)
	CompressionRatio float64 // logical / stored
}

// CompactStats summarizes one garbage-collection pass (see Compact).
type CompactStats struct {
	ContainersScanned   int
	ContainersCollected int
	ChunksMoved         int64
	BytesMoved          int64
	BytesReclaimed      int64
	RecipeRefsPatched   int64
}

// Compact garbage-collects containers whose live-data fraction is below
// threshold: superseded chunk copies (DeFrag rewrites leave the old copy
// behind) are dropped, live chunks are copied into fresh containers, the
// index is repointed, and every retained backup's recipe is patched so
// restores keep working. Engines without an exposed chunk index (SiLo-Like)
// do not support compaction.
//
// This is an extension beyond the paper (its future-work cleanup path);
// the I/O it performs is charged to the simulated clock like any other
// operation.
func (s *Store) Compact(threshold float64) (CompactStats, error) {
	_, span := telemetry.StartSpan(context.Background(), "store.compact")
	defer span.End()
	telCompacts.Inc()
	type indexed interface{ Index() *cindex.Index }
	eng, ok := s.eng.(indexed)
	if !ok {
		return CompactStats{}, fmt.Errorf("repro: engine %s does not support compaction", s.eng.Name())
	}
	recipes := make([]*chunk.Recipe, len(s.backups))
	for i, b := range s.backups {
		recipes[i] = b.recipe
	}
	res, err := gc.Collect(s.eng.Containers(), eng.Index(), recipes, threshold)
	if err != nil {
		return CompactStats{}, err
	}
	return CompactStats{
		ContainersScanned:   res.ContainersScanned,
		ContainersCollected: res.ContainersCollected,
		ChunksMoved:         res.ChunksMoved,
		BytesMoved:          res.BytesMoved,
		BytesReclaimed:      res.BytesReclaimed,
		RecipeRefsPatched:   res.RecipeRefsPatched,
	}, nil
}

// CheckReport summarizes a store consistency check (see Check).
type CheckReport struct {
	Containers   int
	MetaEntries  int64
	IndexEntries int
	RecipeRefs   int64
	HashedChunks int64
	Problems     []string
}

// OK reports whether the check found no problems.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// Check validates the store's internal consistency: container metadata
// well-formedness, index entries (for engines that keep a full index),
// and every backup's recipe references. verifyData additionally re-hashes
// all referenced chunk content and requires Options.StoreData. Check
// charges no simulated time.
func (s *Store) Check(verifyData bool) (CheckReport, error) {
	var index *cindex.Index
	if eng, ok := s.eng.(interface{ Index() *cindex.Index }); ok {
		index = eng.Index()
	}
	recipes := make([]*chunk.Recipe, len(s.backups))
	for i, b := range s.backups {
		recipes[i] = b.recipe
	}
	rep, err := fsck.Check(s.eng.Containers(), index, recipes, verifyData)
	if err != nil {
		return CheckReport{}, err
	}
	return CheckReport{
		Containers:   rep.Containers,
		MetaEntries:  rep.MetaEntries,
		IndexEntries: rep.IndexEntries,
		RecipeRefs:   rep.RecipeRefs,
		HashedChunks: rep.HashedChunks,
		Problems:     rep.Problems,
	}, nil
}

// Stats returns current storage statistics.
func (s *Store) Stats() StoreStats {
	stored := s.eng.Containers().StoredBytes()
	cr := 0.0
	if stored > 0 {
		cr = float64(s.logical) / float64(stored)
	}
	return StoreStats{
		LogicalBytes:     s.logical,
		StoredBytes:      stored,
		Containers:       s.eng.Containers().NumContainers(),
		Utilization:      s.eng.Containers().Utilization(),
		CompressionRatio: cr,
	}
}
