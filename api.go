// Package repro is a reproduction of Tan, Yan, Feng & Sha, "Reducing The
// De-linearization of Data Placement to Improve Deduplication Performance"
// (SC 2012): the DeFrag selective-rewrite deduplicator, the DDFS-Like and
// SiLo-Like baselines it is evaluated against, two further baselines from
// the paper's related-work space (Sparse Indexing, iDedup), and the
// simulated storage substrate they all run on.
//
// The public API has three layers:
//
//   - Store (this file): open a deduplicating store with one of the five
//     engines, back up streams, restore them, compact, check, export, and
//     read storage statistics.
//   - BackupStats / RestoreStats (stats.go): the per-operation measurements,
//     including the paper's three headline metrics.
//   - Experiments (experiments.go): runners that regenerate every figure of
//     the paper's evaluation section as a table.
//
// All performance numbers are simulated-disk time (see internal/disk); the
// data path is real — with Options.StoreData, chunk bytes round-trip through
// the store bit-exactly.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/engine/idedup"
	"repro/internal/engine/silo"
	"repro/internal/engine/sparse"
	"repro/internal/fsck"
	"repro/internal/gc"
	"repro/internal/maintenance"
	"repro/internal/restore"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Store-level telemetry: one span per public operation (wall plus
// simulated-clock duration) and operation counters. The per-phase and
// per-subsystem instruments live in the internal packages; see the metric
// catalog in README.md ("Observability").
var (
	telBackups = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "backup"),
		"public Store operations, by kind")
	telRestores = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "restore"), "")
	telCompacts = telemetry.NewCounter(telemetry.Name("store_operations_total", "op", "compact"), "")
)

// EngineKind selects a deduplication engine.
type EngineKind int

const (
	// DeFrag is the paper's contribution: DDFS-style exact dedup plus
	// SPL-driven selective rewriting of fragmenting duplicates.
	DeFrag EngineKind = iota
	// DDFSLike is the Zhu et al. FAST'08 baseline (summary vector +
	// stream-informed layout + locality-preserved caching).
	DDFSLike
	// SiLoLike is the Xia et al. ATC'11 baseline (similarity + locality,
	// near-exact, no full index).
	SiLoLike
	// SparseIndex is the Lillibridge et al. FAST'09 scheme the paper names
	// alongside DDFS (§II-B): hook sampling + champion manifests,
	// near-exact, no full index. Provided as an additional baseline beyond
	// the paper's own comparison set.
	SparseIndex
	// IDedup is an iDedup-style engine (Srinivasan et al. FAST'12, the
	// paper's citation [3]): selective inline dedup that removes only
	// duplicate runs of at least Options.MinRun physically contiguous
	// chunks, bounding restore fragmentation by construction.
	IDedup
)

// String returns the engine's name as used throughout the paper tables.
func (k EngineKind) String() string {
	switch k {
	case DeFrag:
		return "defrag"
	case DDFSLike:
		return "ddfs-like"
	case SiLoLike:
		return "silo-like"
	case SparseIndex:
		return "sparse-index"
	case IDedup:
		return "idedup"
	}
	return "unknown"
}

// ParseEngineKind converts a name ("defrag", "ddfs-like"/"ddfs",
// "silo-like"/"silo", "sparse-index"/"sparse") to an EngineKind.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "defrag":
		return DeFrag, nil
	case "ddfs", "ddfs-like":
		return DDFSLike, nil
	case "silo", "silo-like":
		return SiLoLike, nil
	case "sparse", "sparse-index":
		return SparseIndex, nil
	case "idedup":
		return IDedup, nil
	}
	return 0, fmt.Errorf("repro: unknown engine %q", s)
}

// BackendKind selects the physical storage backend behind the container
// store (see internal/blockstore): where sealed-container bytes live and
// what durability they have. The timing model is unaffected — every backend
// charges identical simulated-disk time.
type BackendKind int

const (
	// SimBackend keeps sealed containers in memory (the historical
	// behavior): fast, volatile, bit-identical statistics.
	SimBackend BackendKind = iota
	// FileBackend is the durable directory store: one file pair per sealed
	// container plus an fsync'd, atomically-renamed manifest and a small
	// write-ahead log. A Store opened over it survives Close and re-Open
	// with containers, index, and backups intact.
	FileBackend
)

func (k BackendKind) String() string {
	if k == FileBackend {
		return "file"
	}
	return "sim"
}

// ParseBackendKind converts "sim" or "file" to a BackendKind.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "sim":
		return SimBackend, nil
	case "file":
		return FileBackend, nil
	}
	return 0, fmt.Errorf("repro: unknown backend %q", s)
}

// FaultOptions configures deterministic fault injection on the storage
// backend (chaos/recovery testing). The zero value injects nothing; any
// non-zero rate enables the injector plus a bounded retry-with-backoff
// layer around it.
type FaultOptions struct {
	// Seed drives the injector's PRNG; equal seeds over equal operation
	// sequences inject identical faults.
	Seed int64
	// TransientRate is the probability a backend operation first fails
	// with a retryable EIO.
	TransientRate float64
	// TornRate is the probability a container seal silently persists only
	// half its data section (a lying disk; detected later as corruption).
	TornRate float64
	// LatencyRate is the probability an operation sleeps a wall-clock
	// latency spike before completing.
	LatencyRate float64
}

func (f FaultOptions) enabled() bool {
	return f.TransientRate > 0 || f.TornRate > 0 || f.LatencyRate > 0
}

// Options configures a Store.
type Options struct {
	// Engine selects the deduplication approach (default DeFrag).
	Engine EngineKind
	// Alpha is DeFrag's SPL threshold; ignored by other engines.
	// 0 disables rewriting; the paper evaluates 0.1 (the default used when
	// Alpha is negative is 0.1; an explicit 0 is honoured).
	Alpha float64
	// ExpectedBytes sizes caches, Bloom filter and index for the total
	// data the store will ingest across all backups. Default 1 GiB.
	ExpectedBytes int64
	// StoreData keeps real chunk bytes on the simulated device so restores
	// return (and can verify) actual content. Costs RAM proportional to
	// the deduplicated size; leave false for large timing experiments.
	StoreData bool
	// TrackEfficiency attaches the exact ground-truth oracle so
	// BackupStats.Efficiency is populated.
	TrackEfficiency bool
	// MinRun is IDedup's duplicate-run threshold in chunks; ignored by
	// other engines. 0 uses the engine default (8).
	MinRun int
	// Workers controls the chunk-fingerprinting fan-out of every backup:
	// 0 (the default) sizes the pool to GOMAXPROCS, 1 forces the serial
	// pipeline, N > 1 uses exactly N goroutines. Purely a wall-clock
	// optimization of the pipeline; all results and simulated timings are
	// identical.
	Workers int
	// Backend selects where sealed containers physically live: SimBackend
	// (default, in-memory) or FileBackend (durable directory store).
	Backend BackendKind
	// Dir is the FileBackend root directory (required for FileBackend;
	// ignored otherwise). Opening over a non-empty directory reopens the
	// existing store: containers are adopted, the engine's index is
	// rebuilt, and previously recorded backups are reloaded.
	Dir string
	// Faults wraps the backend in a deterministic fault injector; see
	// FaultOptions. Intended for recovery testing.
	Faults FaultOptions
	// RestoreCacheBytes attaches a shared sealed-container data cache of
	// this byte budget to the store: concurrent restores of sibling
	// generations fetch each hot container from the backend once
	// (single-flight) instead of once per stream. 0 disables the cache.
	// Purely a wall-clock/IO optimization — simulated-clock charges,
	// restored bytes, and all stats are identical with or without it.
	RestoreCacheBytes int64
	// WrapBackend, when set, wraps the constructed physical backend
	// (outermost, above any fault/retry layers) before the engine sees it.
	// Tests and tooling use it to count or intercept physical operations,
	// e.g. blockstore.NewCounting to assert single-flight behaviour.
	WrapBackend func(blockstore.Backend) blockstore.Backend
	// Maintenance configures the online maintenance layer (reverse-
	// rewriting re-dedup and crash-safe container merging); see
	// MaintenanceOptions. The zero value leaves the layer off (manual
	// MaintenanceEpoch calls still work on indexed engines).
	Maintenance MaintenanceOptions
	// Filter configures the HPDedup-style prioritized inline filter on the
	// DeFrag engine (ignored by the others): streams whose duplicates do
	// not cluster are demoted to write-through ingest and re-deduplicated
	// out of line by the maintenance pass. Zero value = off.
	Filter FilterOptions
}

// FilterOptions is the public surface of engine.FilterConfig; see that type
// for the decision model. Zero thresholds take the engine defaults.
type FilterOptions struct {
	// Enabled turns the prioritized inline filter on (DeFrag only).
	Enabled bool
	// Probation is the chunks observed per stream before the verdict.
	Probation int
	// MinDupFraction spills streams with fewer duplicates than this share.
	MinDupFraction float64
	// MinClusterScore spills streams whose duplicate locality is below this.
	MinClusterScore float64
	// RecencyContainers is how far behind the write head (in containers) a
	// duplicate may resolve and still count as clustered.
	RecencyContainers int
}

func (o Options) withDefaults() Options {
	if o.ExpectedBytes <= 0 {
		o.ExpectedBytes = 1 << 30
	}
	if o.Alpha < 0 {
		o.Alpha = 0.1
	}
	return o
}

// Store is a deduplicating backup store over a simulated disk.
//
// The batch entry points (Backup, BackupStreams, Compact, …) are written
// for one caller at a time, as the CLIs use them. The network service path
// instead goes through IngestStream (see session.go), which is safe for
// concurrent use; mu guards the retained-backup bookkeeping those
// concurrent commits share, and ingestMu serializes whole-engine ingests
// for engines without a concurrent-stream path.
type Store struct {
	opts   Options
	eng    engine.Engine
	oracle *cindex.Oracle
	be     blockstore.Backend

	mu        sync.RWMutex // guards backups, logical, recipeSeq, closed
	ingestMu  sync.Mutex   // serializes eng.Backup for non-stream engines
	backups   []*Backup
	logical   int64
	recipeSeq int
	closed    bool

	// Maintenance gating (see maint.go). maintMu is the foreground gate:
	// ingests and restores hold it for read for their whole duration; the
	// maintenance commit (and the exclusive legacy passes Compact/Repair)
	// take it for write. maintOpMu serializes whole maintenance operations
	// against each other. Lock order: maintMu before mu.
	maintMu     sync.RWMutex
	maintOpMu   sync.Mutex
	maintPass   *maintenance.Pass
	maintLoop   *maintenance.Scheduler
	maintStatMu sync.Mutex        // guards maintTotal, maintEpochs
	maintTotal  maintenance.Stats // cumulative across epochs
	maintEpochs int
}

// Backup is one ingested stream: its recipe (needed to restore) plus the
// measured statistics. The recipe pointer is atomic: the maintenance pass
// installs remapped recipes copy-on-write while restores keep reading the
// snapshot they started with.
type Backup struct {
	Label      string
	Stats      BackupStats
	rec        atomic.Pointer[chunk.Recipe]
	recipeFile string // file under Dir/recipes (durable backends only)
}

// newBackup builds a Backup around its recipe.
func newBackup(label string, stats BackupStats, rec *chunk.Recipe) *Backup {
	b := &Backup{Label: label, Stats: stats}
	b.rec.Store(rec)
	return b
}

// recipe returns the backup's current recipe snapshot.
func (b *Backup) recipe() *chunk.Recipe { return b.rec.Load() }

// Fragments returns the number of placement fragments of the backup —
// the N of the paper's Eq. 1.
func (b *Backup) Fragments() int { return b.recipe().Fragments() }

// Chunks returns the number of chunk references in the backup's recipe.
func (b *Backup) Chunks() int { return b.recipe().Len() }

// WriteRecipe serializes the backup's recipe (see internal/trace format).
func (b *Backup) WriteRecipe(w io.Writer) error { return trace.Save(w, b.recipe()) }

// buildBackend constructs the physical backend selected by opts, layering
// the fault injector and retry wrapper when faults are configured.
func buildBackend(opts Options) (blockstore.Backend, error) {
	var be blockstore.Backend
	switch opts.Backend {
	case SimBackend:
		be = blockstore.NewSim(opts.StoreData)
	case FileBackend:
		if opts.Dir == "" {
			return nil, fmt.Errorf("repro: FileBackend requires Options.Dir")
		}
		f, err := blockstore.OpenFile(opts.Dir, opts.StoreData)
		if err != nil {
			return nil, err
		}
		be = f
	default:
		return nil, fmt.Errorf("repro: unknown backend kind %d", opts.Backend)
	}
	if opts.Faults.enabled() {
		be = blockstore.WithRetry(blockstore.NewFault(be, blockstore.FaultConfig{
			Seed:          opts.Faults.Seed,
			TransientRate: opts.Faults.TransientRate,
			TornRate:      opts.Faults.TornRate,
			LatencyRate:   opts.Faults.LatencyRate,
		}), blockstore.DefaultRetryPolicy())
	}
	if opts.WrapBackend != nil {
		be = opts.WrapBackend(be)
	}
	return be, nil
}

// Open creates a store with the selected engine and backend. With
// FileBackend over a directory that already holds containers, Open reopens
// the store: the engine adopts the persisted containers (rebuilding its
// chunk index and segment sequence) and the recorded backups are reloaded,
// so restores and further dedup continue where the previous process left
// off. Only engines with a full rebuildable index (DeFrag, DDFSLike)
// support reopening a populated store.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	be, err := buildBackend(opts)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, be: be}
	switch opts.Engine {
	case DeFrag:
		cfg := core.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.Alpha = opts.Alpha
		cfg.StoreData = opts.StoreData
		cfg.Backend = be
		cfg.Filter = engine.FilterConfig{
			Enabled:           opts.Filter.Enabled,
			Probation:         opts.Filter.Probation,
			MinDupFraction:    opts.Filter.MinDupFraction,
			MinClusterScore:   opts.Filter.MinClusterScore,
			RecencyContainers: opts.Filter.RecencyContainers,
		}
		var e *core.Engine
		if e, err = core.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case DDFSLike:
		cfg := ddfs.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		cfg.Backend = be
		var e *ddfs.Engine
		if e, err = ddfs.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case SiLoLike:
		cfg := silo.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		cfg.Backend = be
		var e *silo.Engine
		if e, err = silo.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case SparseIndex:
		cfg := sparse.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		cfg.Backend = be
		var e *sparse.Engine
		if e, err = sparse.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	case IDedup:
		cfg := idedup.DefaultConfig(opts.ExpectedBytes)
		cfg.Cost.Workers = opts.Workers
		cfg.StoreData = opts.StoreData
		cfg.Backend = be
		if opts.MinRun > 0 {
			cfg.MinRun = opts.MinRun
		}
		var e *idedup.Engine
		if e, err = idedup.New(cfg); err == nil {
			s.eng = e
			if opts.TrackEfficiency {
				s.oracle = cindex.NewOracle()
				e.SetOracle(s.oracle)
			}
		}
	default:
		err = fmt.Errorf("repro: unknown engine kind %d", opts.Engine)
	}
	if err != nil {
		be.Close() //nolint:errcheck // surfacing the construction error
		return nil, err
	}
	if err := s.adoptExisting(context.Background()); err != nil {
		be.Close() //nolint:errcheck // surfacing the adoption error
		return nil, err
	}
	if opts.RestoreCacheBytes > 0 {
		s.eng.Containers().SetDataCache(opts.RestoreCacheBytes)
	}
	if opts.Maintenance.Enabled {
		if err := s.initMaintenance(); err != nil {
			be.Close() //nolint:errcheck // surfacing the construction error
			return nil, err
		}
	}
	return s, nil
}

// adoptExisting detects a populated durable backend and replays it into the
// fresh engine: container adoption plus backup-manifest reload.
func (s *Store) adoptExisting(ctx context.Context) error {
	if s.opts.Backend != FileBackend {
		return nil
	}
	infos, err := s.be.List(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		return nil
	}
	ad, ok := s.eng.(engine.Adopter)
	if !ok {
		return fmt.Errorf("repro: engine %s cannot reopen a populated store (no index rebuild); use DeFrag or DDFSLike", s.eng.Name())
	}
	if err := ad.Adopt(ctx); err != nil {
		return fmt.Errorf("repro: adopting existing store: %w", err)
	}
	return s.loadBackups()
}

// Engine returns the engine's name.
func (s *Store) Engine() string { return s.eng.Name() }

// BackendName returns the active backend's name ("sim", "file", or a
// wrapped form like "retry(fault(file))").
func (s *Store) BackendName() string { return s.be.Name() }

// Close flushes the durable backend (manifest checkpoint, WAL fold) and
// releases it. The Store must not be used afterwards. Close is a no-op on
// the second call and for the in-memory backend is equivalent to dropping
// the Store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Stop the maintenance scheduler first: an epoch in flight is cancelled
	// and drained, so nothing races the backend close below. (Cannot hold
	// s.mu here — the epoch itself needs it to commit.)
	if s.maintLoop != nil {
		s.maintLoop.Stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Settle any container persists still draining in the background so the
	// backend close (manifest checkpoint, WAL fold) sees the final state.
	s.eng.Containers().WaitSeals()
	if s.durable() {
		if err := s.saveBackupsManifest(); err != nil {
			return err
		}
	}
	return s.be.Close()
}

const (
	backupsManifestName = "backups.json"
	recipeDirName       = "recipes"
)

// backupManifestEntry is one line of the durable backup manifest.
type backupManifestEntry struct {
	Label  string      `json:"label"`
	Recipe string      `json:"recipe"`
	Stats  BackupStats `json:"stats"`
}

func (s *Store) durable() bool { return s.opts.Backend == FileBackend }

// saveBackupsManifest atomically rewrites Dir/backups.json to the current
// retained set.
func (s *Store) saveBackupsManifest() error {
	entries := make([]backupManifestEntry, len(s.backups))
	for i, b := range s.backups {
		entries[i] = backupManifestEntry{Label: b.Label, Recipe: b.recipeFile, Stats: b.Stats}
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return blockstore.WriteFileAtomic(filepath.Join(s.opts.Dir, backupsManifestName), blob, 0o644)
}

// persistBackup writes b's recipe under Dir/recipes and updates the backup
// manifest, both via fsync'd atomic renames, so a crash between backups
// loses at most the backup in flight.
func (s *Store) persistBackup(b *Backup) error {
	dir := filepath.Join(s.opts.Dir, recipeDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%06d.recipe", s.recipeSeq)
	s.recipeSeq++
	var buf bytes.Buffer
	if err := trace.Save(&buf, b.recipe()); err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		return err
	}
	b.recipeFile = name
	return s.saveBackupsManifest()
}

// loadBackups reloads the retained backups recorded by a previous process.
func (s *Store) loadBackups() error {
	blob, err := os.ReadFile(filepath.Join(s.opts.Dir, backupsManifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var entries []backupManifestEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		return fmt.Errorf("repro: bad backups manifest: %w", err)
	}
	for _, e := range entries {
		f, err := os.Open(filepath.Join(s.opts.Dir, recipeDirName, e.Recipe))
		if err != nil {
			return err
		}
		rec, err := trace.Load(f)
		f.Close() //nolint:errcheck // read-only
		if err != nil {
			return fmt.Errorf("repro: recipe %s: %w", e.Recipe, err)
		}
		b := newBackup(e.Label, e.Stats, rec)
		b.recipeFile = e.Recipe
		s.backups = append(s.backups, b)
		s.logical += e.Stats.LogicalBytes
		var seq int
		if _, err := fmt.Sscanf(e.Recipe, "%d.recipe", &seq); err == nil && seq >= s.recipeSeq {
			s.recipeSeq = seq + 1
		}
	}
	return nil
}

// Backup ingests one full-backup stream under label and returns the
// recorded backup. Cancelling ctx aborts the backup between segments; the
// store stays consistent (sealed containers stay sealed, the index
// flushes), the aborted backup is simply absent. On durable backends the
// recipe and backup manifest are persisted before Backup returns.
func (s *Store) Backup(ctx context.Context, label string, r io.Reader) (*Backup, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.backup")
	defer span.End()
	telBackups.Inc()
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	rec, st, err := s.eng.Backup(ctx, label, r)
	if err != nil {
		return nil, err
	}
	span.SetSim(st.Duration)
	b := newBackup(label, fromEngineStats(st), rec)
	if err := s.commitBackup(b); err != nil {
		return b, fmt.Errorf("repro: persisting backup %q: %w", label, err)
	}
	return b, nil
}

// commitBackup records b in the retained set (and, on durable backends,
// persists its recipe and the backup manifest). Safe for concurrent use.
func (s *Store) commitBackup(b *Backup) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backups = append(s.backups, b)
	s.logical += b.Stats.LogicalBytes
	if s.durable() {
		return s.persistBackup(b)
	}
	return nil
}

// StreamInput is one labeled backup stream for BackupStreams.
type StreamInput struct {
	Label  string
	Stream io.Reader
}

// BackupStreams ingests several backup streams with at most concurrency
// backups in flight at once, returning the per-stream backups (in input
// order) plus merged statistics for the whole round.
//
// concurrency <= 1 is bit-identical to calling Backup on each input in
// order. With concurrency > 1, engines whose ingest path supports
// concurrent streams (DeFrag, DDFS-Like) run up to that many backups in
// parallel over the shared index, Bloom filter and container store; each
// stream pays its simulated costs on its own clock, and the merged
// Duration is the slowest lane of the round, not the sum. Engines without
// concurrent ingest fall back to the serial loop.
func (s *Store) BackupStreams(ctx context.Context, inputs []StreamInput, concurrency int) ([]*Backup, BackupStats, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.backup_streams")
	defer span.End()
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	streams := make([]engine.Stream, len(inputs))
	for i, in := range inputs {
		streams[i] = engine.Stream{Label: in.Label, R: in.Stream}
	}
	results, merged, err := engine.RunStreams(ctx, s.eng, streams, concurrency)
	span.SetSim(merged.Duration)
	backups := make([]*Backup, 0, len(results))
	for i := range results {
		if results[i].Err != nil || results[i].Recipe == nil {
			continue
		}
		telBackups.Inc()
		b := newBackup(inputs[i].Label, fromEngineStats(results[i].Stats), results[i].Recipe)
		backups = append(backups, b)
		if perr := s.commitBackup(b); perr != nil && err == nil {
			err = fmt.Errorf("repro: persisting backup %q: %w", b.Label, perr)
		}
	}
	return backups, fromEngineStats(merged), err
}

// Backups returns all backups ingested so far, in order. The returned
// slice is a snapshot; concurrent ingests do not mutate it.
func (s *Store) Backups() []*Backup {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Backup, len(s.backups))
	copy(out, s.backups)
	return out
}

// FindBackup returns the retained backup with the given label, or nil.
func (s *Store) FindBackup(label string) *Backup {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, b := range s.backups {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Forget drops a backup from the retained set. Its chunks stay on disk
// until a later Compact or maintenance merge finds them unreferenced
// (dedup stores cannot free shared chunks eagerly — that is what
// retention-aware garbage collection is for). The result reports whether
// the label existed and how much physical garbage the store now carries,
// so callers can decide whether a compaction pass is worth scheduling.
func (s *Store) Forget(label string) ForgetResult {
	found := false
	s.mu.Lock()
	for i, b := range s.backups {
		if b.Label == label {
			s.backups = append(s.backups[:i:i], s.backups[i+1:]...)
			s.logical -= b.Stats.LogicalBytes
			if s.durable() {
				if b.recipeFile != "" {
					os.Remove(filepath.Join(s.opts.Dir, recipeDirName, b.recipeFile)) //nolint:errcheck // best-effort
				}
				s.saveBackupsManifest() //nolint:errcheck // next successful save repairs it
			}
			found = true
			break
		}
	}
	s.mu.Unlock()
	res := ForgetResult{Found: found}
	res.StoredBytes, res.DeadBytes = s.deadScan()
	if res.StoredBytes > 0 {
		res.DeadFraction = float64(res.DeadBytes) / float64(res.StoredBytes)
		res.CompactRecommended = res.DeadFraction >= compactRecommendThreshold
	}
	return res
}

// RestorePolicy selects the restore cache replacement policy.
type RestorePolicy int

const (
	// RestoreLRU is the classic recency cache (the legacy restore path).
	RestoreLRU RestorePolicy = iota
	// RestoreOPT is Belady's offline-optimal eviction, computable online
	// here because the full recipe is known before the restore starts.
	RestoreOPT
)

func (p RestorePolicy) String() string {
	if p == RestoreOPT {
		return "opt"
	}
	return "lru"
}

// ParseRestorePolicy converts "lru" or "opt" to a RestorePolicy.
func ParseRestorePolicy(s string) (RestorePolicy, error) {
	switch s {
	case "lru":
		return RestoreLRU, nil
	case "opt":
		return RestoreOPT, nil
	}
	return 0, fmt.Errorf("repro: unknown restore policy %q", s)
}

// RestoreOptions parameterizes Store.RestoreWith.
type RestoreOptions struct {
	// CacheContainers is the restore cache capacity in containers
	// (default 8, the restore package default).
	CacheContainers int
	// Policy selects LRU (default) or OPT eviction.
	Policy RestorePolicy
	// Workers is the number of parallel prefetch lanes (default 1, serial).
	Workers int
	// Coalesce merges reads of disk-adjacent containers into single
	// sequential extents (one seek for k containers).
	Coalesce bool
	// ChunkCache retains only recipe-referenced chunks instead of whole
	// container data sections.
	ChunkCache bool
	// Verify recomputes chunk fingerprints; requires Options.StoreData.
	Verify bool
	// DecodeWorkers sizes the wall-clock verify/decode worker pool of the
	// restore pipeline: 0 (the default) sizes it to GOMAXPROCS, 1 forces
	// inline serial decode, N > 1 uses exactly N goroutines. Like
	// Options.Workers on the ingest side this is purely a wall-clock
	// optimization — restored bytes, simulated time, and every statistic
	// are bit-identical across values.
	DecodeWorkers int
}

// DefaultRestoreOptions returns the default restore shape: an 8-container
// LRU cache, one simulated prefetch lane, uncoalesced — the legacy timing
// model — with the wall-clock decode pool at its automatic size.
func DefaultRestoreOptions() RestoreOptions {
	return RestoreOptions{CacheContainers: restore.DefaultConfig().CacheContainers, Workers: 1}
}

// Restore reconstructs backup b, writing the stream to w (nil w measures
// without materializing). verify recomputes chunk fingerprints and requires
// Options.StoreData. It runs the legacy shape (serial LRU cache); use
// RestoreWith for the pipelined read path.
func (s *Store) Restore(ctx context.Context, b *Backup, w io.Writer, verify bool) (RestoreStats, error) {
	opts := DefaultRestoreOptions()
	opts.Verify = verify
	return s.RestoreWith(ctx, b, w, opts)
}

// RestoreWith reconstructs backup b under explicit restore options. The
// legacy shape (LRU, one worker, no coalescing, no chunk cache, explicit
// DecodeWorkers == 1) runs the original restore.Run code path; any other
// shape — including the default DecodeWorkers of 0, which engages the
// parallel decode pool — runs the pipelined engine, whose serial LRU
// results are bit-identical to Run by construction (pinned in
// internal/restore's tests).
func (s *Store) RestoreWith(ctx context.Context, b *Backup, w io.Writer, opts RestoreOptions) (RestoreStats, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.restore")
	defer span.End()
	telRestores.Inc()
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	if opts.CacheContainers <= 0 {
		opts.CacheContainers = restore.DefaultConfig().CacheContainers
	}
	var st restore.Stats
	var err error
	if opts.Policy == RestoreLRU && opts.Workers <= 1 && !opts.Coalesce && !opts.ChunkCache &&
		opts.DecodeWorkers == 1 {
		cfg := restore.Config{CacheContainers: opts.CacheContainers, Verify: opts.Verify}
		st, err = restore.Run(ctx, s.eng.Containers(), b.recipe(), cfg, w)
	} else {
		cfg := restore.PipelineConfig{
			CacheContainers: opts.CacheContainers,
			Workers:         opts.Workers,
			Coalesce:        opts.Coalesce,
			ChunkCache:      opts.ChunkCache,
			Verify:          opts.Verify,
			DecodeWorkers:   opts.DecodeWorkers,
		}
		if opts.Policy == RestoreOPT {
			cfg.Policy = restore.PolicyOPT
		}
		st, err = restore.RunPipelined(ctx, s.eng.Containers(), b.recipe(), cfg, w)
	}
	if err != nil {
		return RestoreStats{}, err
	}
	span.SetSim(st.Duration)
	return fromRestoreStats(st), nil
}

// RestoreFAA reconstructs backup b with the forward-assembly-area
// algorithm instead of the LRU container cache: memory is bounded by
// areaBytes and every container is read at most once per assembly window,
// regardless of how badly fragmentation interleaves the recipe.
func (s *Store) RestoreFAA(ctx context.Context, b *Backup, w io.Writer, areaBytes int64, verify bool) (RestoreStats, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.restore")
	defer span.End()
	telRestores.Inc()
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	st, err := restore.RunFAA(ctx, s.eng.Containers(), b.recipe(), restore.FAAConfig{AreaBytes: areaBytes, Verify: verify}, w)
	if err != nil {
		return RestoreStats{}, err
	}
	span.SetSim(st.Duration)
	return fromRestoreStats(st), nil
}

// SetRestoreCacheBudget attaches (or, with bytes <= 0, removes) the shared
// sealed-container data cache, replacing any existing cache and dropping
// its residency. See Options.RestoreCacheBytes.
func (s *Store) SetRestoreCacheBudget(bytes int64) {
	s.eng.Containers().SetDataCache(bytes)
}

// RestoreCacheStats reports cumulative behaviour of the shared restore data
// cache. ok is false when no cache is attached.
type RestoreCacheStats struct {
	Hits      uint64 `json:"hits"`      // container bytes served without a backend read
	Misses    uint64 `json:"misses"`    // backend reads issued
	Evictions uint64 `json:"evictions"` // containers evicted to hold the byte budget
	Waits     uint64 `json:"waits"`     // single-flight waits on another stream's load
	Bytes     int64  `json:"bytes"`     // resident bytes
	Budget    int64  `json:"budget"`    // configured budget
	Entries   int    `json:"entries"`   // resident containers
	// Pinned counts resident containers held by in-flight restores; it must
	// return to zero between restores — a value that never drains is a
	// prefetch-window pin leak.
	Pinned int `json:"pinned"`
}

// RestoreCacheStats returns a snapshot of the shared restore data cache, or
// ok=false when none is attached.
func (s *Store) RestoreCacheStats() (st RestoreCacheStats, ok bool) {
	c := s.eng.Containers().DataCache()
	if c == nil {
		return RestoreCacheStats{}, false
	}
	cs := c.Stats()
	return RestoreCacheStats{
		Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions, Waits: cs.Waits,
		Bytes: cs.Bytes, Budget: cs.Budget, Entries: cs.Entries, Pinned: cs.Pinned,
	}, true
}

// SimulatedTime returns total simulated time consumed by the store so far.
func (s *Store) SimulatedTime() time.Duration { return s.eng.Clock().Now() }

// StoreStats summarizes storage consumption.
type StoreStats struct {
	LogicalBytes     int64   // bytes ingested across all backups
	StoredBytes      int64   // physical chunk-data bytes after dedup
	Containers       int     // sealed containers
	Utilization      float64 // live fraction of stored bytes (rewrites create garbage)
	CompressionRatio float64 // logical / stored
	SpilledBytes     int64   // filter write-through bytes across retained backups
	SpilledStreams   int     // retained backups the inline filter demoted to spill
}

// CompactStats summarizes one garbage-collection pass (see Compact).
type CompactStats struct {
	ContainersScanned   int
	ContainersCollected int
	ChunksMoved         int64
	BytesMoved          int64
	BytesReclaimed      int64
	RecipeRefsPatched   int64
}

// Compact garbage-collects containers whose live-data fraction is below
// threshold: superseded chunk copies (DeFrag rewrites leave the old copy
// behind) are dropped, live chunks are copied into fresh containers, the
// index is repointed, and every retained backup's recipe is patched so
// restores keep working. Engines without an exposed chunk index (SiLo-Like)
// do not support compaction.
//
// This is an extension beyond the paper (its future-work cleanup path);
// the I/O it performs is charged to the simulated clock like any other
// operation.
func (s *Store) Compact(ctx context.Context, threshold float64) (CompactStats, error) {
	ctx, span := telemetry.StartSpan(ctx, "store.compact")
	defer span.End()
	telCompacts.Inc()
	// Compact is a maintenance operation and keeps the legacy fully-
	// exclusive contract: it serializes against maintenance epochs
	// (maintOpMu) and excludes all foreground streams for its whole run —
	// its chunk moves go through the store frontier writer, which cannot
	// tolerate concurrent reserve-mode writers.
	s.maintOpMu.Lock()
	defer s.maintOpMu.Unlock()
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	eng, ok := s.eng.(indexed)
	if !ok {
		return CompactStats{}, fmt.Errorf("repro: engine %s does not support compaction", s.eng.Name())
	}
	recipes := s.snapshotRecipes()
	res, err := gc.Collect(ctx, s.eng.Containers(), eng.Index(), recipes, threshold)
	if err != nil {
		return CompactStats{}, err
	}
	return CompactStats{
		ContainersScanned:   res.ContainersScanned,
		ContainersCollected: res.ContainersCollected,
		ChunksMoved:         res.ChunksMoved,
		BytesMoved:          res.BytesMoved,
		BytesReclaimed:      res.BytesReclaimed,
		RecipeRefsPatched:   res.RecipeRefsPatched,
	}, nil
}

// CheckReport summarizes a store consistency check (see Check).
type CheckReport struct {
	Containers   int
	MetaEntries  int64
	IndexEntries int
	RecipeRefs   int64
	HashedChunks int64
	Problems     []string
}

// OK reports whether the check found no problems.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// Check validates the store's internal consistency: container metadata
// well-formedness, index entries (for engines that keep a full index),
// and every backup's recipe references. verifyData additionally re-hashes
// all referenced chunk content and requires Options.StoreData. Check
// charges no simulated time.
func (s *Store) Check(ctx context.Context, verifyData bool) (CheckReport, error) {
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	var index *cindex.Index
	if eng, ok := s.eng.(interface{ Index() *cindex.Index }); ok {
		index = eng.Index()
	}
	rep, err := fsck.Check(ctx, s.eng.Containers(), index, s.snapshotRecipes(), verifyData)
	if err != nil {
		return CheckReport{}, err
	}
	return CheckReport{
		Containers:   rep.Containers,
		MetaEntries:  rep.MetaEntries,
		IndexEntries: rep.IndexEntries,
		RecipeRefs:   rep.RecipeRefs,
		HashedChunks: rep.HashedChunks,
		Problems:     rep.Problems,
	}, nil
}

// RepairReport summarizes a Repair pass.
type RepairReport struct {
	// Quarantined lists the containers removed from the store, ascending.
	Quarantined []uint32
	// Reasons maps each quarantined container to why it was condemned.
	Reasons map[uint32]string
	// IndexDropped counts chunk-index entries purged with the containers.
	IndexDropped int
	// LostBackups lists the labels of backups that referenced a
	// quarantined container; they are dropped from the retained set (they
	// can no longer restore in full).
	LostBackups []string
}

// Repair scans the store for containers violating invariants — malformed
// metadata, and with verifyData also torn or unreadable data sections and
// content-hash mismatches — and quarantines them: the durable file backend
// moves their files into quarantine/ with a reason note, the engine's index
// forgets their fingerprints so future backups re-store that data, and
// backups that referenced them are dropped from the retained set and
// reported. After a successful Repair, Check is clean.
func (s *Store) Repair(ctx context.Context, verifyData bool) (RepairReport, error) {
	s.maintOpMu.Lock()
	defer s.maintOpMu.Unlock()
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	var drop fsck.IndexDropper
	if d, ok := s.eng.(fsck.IndexDropper); ok {
		drop = d
	}
	res, err := fsck.Repair(ctx, s.eng.Containers(), drop, s.snapshotRecipes(), verifyData)
	if res == nil {
		return RepairReport{}, err
	}
	rep := RepairReport{
		Quarantined:  res.Quarantined,
		Reasons:      res.Reasons,
		IndexDropped: res.IndexDropped,
		LostBackups:  res.LostBackups,
	}
	if len(res.LostBackups) > 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		lost := make(map[string]bool, len(res.LostBackups))
		for _, l := range res.LostBackups {
			lost[l] = true
		}
		kept := s.backups[:0]
		for _, b := range s.backups {
			if lost[b.Label] {
				s.logical -= b.Stats.LogicalBytes
				continue
			}
			kept = append(kept, b)
		}
		s.backups = kept
		if s.durable() {
			if merr := s.saveBackupsManifest(); merr != nil && err == nil {
				err = merr
			}
		}
	}
	return rep, err
}

// snapshotRecipes copies the retained backups' recipes under the lock.
func (s *Store) snapshotRecipes() []*chunk.Recipe {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recipes := make([]*chunk.Recipe, len(s.backups))
	for i, b := range s.backups {
		recipes[i] = b.recipe()
	}
	return recipes
}

// Stats returns current storage statistics.
func (s *Store) Stats() StoreStats {
	stored := s.eng.Containers().StoredBytes()
	s.mu.RLock()
	logical := s.logical
	var spilledBytes int64
	var spilledStreams int
	for _, b := range s.backups {
		spilledBytes += b.Stats.SpilledBytes
		if b.Stats.FilterSpilled {
			spilledStreams++
		}
	}
	s.mu.RUnlock()
	cr := 0.0
	if stored > 0 {
		cr = float64(logical) / float64(stored)
	}
	return StoreStats{
		LogicalBytes:     logical,
		StoredBytes:      stored,
		Containers:       s.eng.Containers().NumContainers(),
		Utilization:      s.eng.Containers().Utilization(),
		CompressionRatio: cr,
		SpilledBytes:     spilledBytes,
		SpilledStreams:   spilledStreams,
	}
}
