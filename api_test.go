package repro

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestParseEngineKind(t *testing.T) {
	cases := map[string]EngineKind{
		"defrag": DeFrag, "ddfs": DDFSLike, "ddfs-like": DDFSLike,
		"silo": SiLoLike, "silo-like": SiLoLike,
		"sparse": SparseIndex, "sparse-index": SparseIndex,
		"idedup": IDedup,
	}
	for s, want := range cases {
		got, err := ParseEngineKind(s)
		if err != nil || got != want {
			t.Errorf("ParseEngineKind(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParseEngineKind("nope"); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestEngineKindString(t *testing.T) {
	if DeFrag.String() != "defrag" || DDFSLike.String() != "ddfs-like" ||
		SiLoLike.String() != "silo-like" || SparseIndex.String() != "sparse-index" ||
		EngineKind(99).String() != "unknown" {
		t.Fatal("EngineKind.String")
	}
}

func TestOpenUnknownEngine(t *testing.T) {
	if _, err := Open(Options{Engine: EngineKind(99)}); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestOpenDefaults(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != "defrag" {
		t.Fatalf("default engine = %s", s.Engine())
	}
}

func eachEngine(t *testing.T, fn func(t *testing.T, kind EngineKind)) {
	for _, k := range []EngineKind{DeFrag, DDFSLike, SiLoLike, SparseIndex, IDedup} {
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	eachEngine(t, func(t *testing.T, kind EngineKind) {
		s, err := Open(Options{Engine: kind, StoreData: true, ExpectedBytes: 64 << 20, Alpha: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		data := randStream(3<<20, int64(kind)+1)
		b, err := s.Backup(context.Background(), "b0", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		rst, err := s.Restore(context.Background(), b, &out, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("restore differs from original")
		}
		if rst.Bytes != int64(len(data)) || rst.ThroughputMBps() <= 0 {
			t.Fatalf("restore stats: %+v", rst)
		}
	})
}

func TestDedupAcrossBackups(t *testing.T) {
	eachEngine(t, func(t *testing.T, kind EngineKind) {
		s, _ := Open(Options{Engine: kind, ExpectedBytes: 64 << 20, Alpha: 0.1})
		data := randStream(3<<20, 7)
		s.Backup(context.Background(), "b0", bytes.NewReader(data))
		b1, err := s.Backup(context.Background(), "b1", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if frac := float64(b1.Stats.DedupedBytes) / float64(b1.Stats.LogicalBytes); frac < 0.9 {
			t.Fatalf("identical re-backup deduped only %.0f%%", frac*100)
		}
		st := s.Stats()
		if st.CompressionRatio < 1.8 {
			t.Fatalf("compression ratio %.2f after duplicate backup", st.CompressionRatio)
		}
		if st.LogicalBytes != 2*int64(len(data)) {
			t.Fatalf("logical bytes %d", st.LogicalBytes)
		}
		if len(s.Backups()) != 2 {
			t.Fatal("backup registry")
		}
	})
}

func TestEfficiencyTracking(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 64 << 20, Alpha: 0.1, TrackEfficiency: true})
	data := randStream(2<<20, 9)
	s.Backup(context.Background(), "b0", bytes.NewReader(data))
	b1, _ := s.Backup(context.Background(), "b1", bytes.NewReader(data))
	if b1.Stats.OracleRedundantBytes != int64(len(data)) {
		t.Fatalf("oracle redundancy %d, want %d", b1.Stats.OracleRedundantBytes, len(data))
	}
	if b1.Stats.Efficiency() != 1 {
		t.Fatalf("fully duplicate backup efficiency = %v", b1.Stats.Efficiency())
	}
}

func TestVerifyWithoutStoreDataFails(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 16 << 20})
	b, err := s.Backup(context.Background(), "b0", bytes.NewReader(randStream(1<<20, 11)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(context.Background(), b, nil, true); err == nil {
		t.Fatal("verify without StoreData must error")
	}
	if _, err := s.Restore(context.Background(), b, nil, false); err != nil {
		t.Fatalf("metadata-only restore should work: %v", err)
	}
}

func TestBackupAccessors(t *testing.T) {
	s, _ := Open(Options{Engine: DDFSLike, ExpectedBytes: 16 << 20})
	b, _ := s.Backup(context.Background(), "acc", bytes.NewReader(randStream(1<<20, 13)))
	if b.Chunks() == 0 || b.Fragments() == 0 {
		t.Fatalf("accessors: chunks=%d fragments=%d", b.Chunks(), b.Fragments())
	}
	var buf bytes.Buffer
	if err := b.WriteRecipe(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label != "acc" || rec.Len() != b.Chunks() {
		t.Fatal("recipe serialization mismatch")
	}
}

func TestSimulatedTimeAdvances(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 16 << 20})
	if s.SimulatedTime() == 0 {
		// Index layout writes at construction; time may be non-zero already.
		t.Log("store opened at time 0")
	}
	before := s.SimulatedTime()
	s.Backup(context.Background(), "t", bytes.NewReader(randStream(1<<20, 15)))
	if s.SimulatedTime() <= before {
		t.Fatal("backup must consume simulated time")
	}
}

func TestStatsOnEmptyStore(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 16 << 20})
	st := s.Stats()
	if st.LogicalBytes != 0 || st.StoredBytes != 0 || st.CompressionRatio != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if st.Utilization != 1 {
		t.Fatal("empty utilization must be 1")
	}
}

func TestNegativeAlphaDefaultsToPaperValue(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: -1, ExpectedBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_ = s // α = 0.1 internally; absence of validation error is the check
}

var _ io.Writer = (*bytes.Buffer)(nil)

func TestRestoreFAAMatchesLRURestore(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20})
	data := randStream(3<<20, 71)
	b, err := s.Backup(context.Background(), "faa", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var lru, faa bytes.Buffer
	if _, err := s.Restore(context.Background(), b, &lru, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreFAA(context.Background(), b, &faa, 8<<20, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lru.Bytes(), faa.Bytes()) || !bytes.Equal(faa.Bytes(), data) {
		t.Fatal("restore strategies disagree")
	}
}

func TestWorkersProduceIdenticalResults(t *testing.T) {
	run := func(workers int) (BackupStats, int) {
		s, err := Open(Options{Engine: DeFrag, Alpha: 0.1, ExpectedBytes: 32 << 20, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data := randStream(4<<20, 201)
		s.Backup(context.Background(), "w0", bytes.NewReader(data))
		b, err := s.Backup(context.Background(), "w1", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return b.Stats, b.Fragments()
	}
	serial, fragS := run(0)
	parallel, fragP := run(8)
	if serial != parallel || fragS != fragP {
		t.Fatalf("parallel ingest diverged:\nserial   %+v (%d frags)\nparallel %+v (%d frags)",
			serial, fragS, parallel, fragP)
	}
}
