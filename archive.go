package repro

import (
	"context"
	"io"

	"repro/internal/archive"
	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/fsck"
	"repro/internal/restore"
)

// Export persists the store — sealed containers, their metadata, and every
// backup's recipe — into a directory, so backups survive the process (see
// internal/archive for the on-disk format). With Options.StoreData the
// archive carries real chunk content and restores from it verify; without,
// it carries placement metadata only (timing experiments can resume, but
// content restores cannot).
func (s *Store) Export(ctx context.Context, dir string) error {
	// Export is a foreground reader: hold maintenance out so the container
	// set cannot shift (merges drop containers) mid-walk.
	s.maintMu.RLock()
	defer s.maintMu.RUnlock()
	return archive.Export(ctx, dir, s.eng.Containers(), s.snapshotRecipes())
}

// Archive is a read-only store loaded from an exported directory: its
// backups can be restored and checked, but no new backups can be ingested
// (re-ingest requires the engine state — Bloom filter, index, caches — which
// an archive deliberately does not carry).
type Archive struct {
	store   *container.Store
	backups []*Backup
}

// OpenArchive loads an archive directory written by Store.Export.
func OpenArchive(ctx context.Context, dir string) (*Archive, error) {
	store, recipes, err := archive.Import(ctx, dir)
	if err != nil {
		return nil, err
	}
	a := &Archive{store: store}
	for _, rec := range recipes {
		a.backups = append(a.backups, newBackup(rec.Label, BackupStats{}, rec))
	}
	return a, nil
}

// Backups lists the archived backups in their original order. Their Stats
// fields are zero — measurements belong to the original run; placement
// accessors (Fragments, Chunks, Layout) remain meaningful.
func (a *Archive) Backups() []*Backup { return a.backups }

// Restore reconstructs an archived backup (see Store.Restore).
func (a *Archive) Restore(ctx context.Context, b *Backup, w io.Writer, verify bool) (RestoreStats, error) {
	cfg := restore.DefaultConfig()
	cfg.Verify = verify
	st, err := restore.Run(ctx, a.store, b.recipe(), cfg, w)
	if err != nil {
		return RestoreStats{}, err
	}
	return fromRestoreStats(st), nil
}

// Check validates the archive's internal consistency (see Store.Check).
func (a *Archive) Check(ctx context.Context, verifyData bool) (CheckReport, error) {
	recipes := make([]*chunk.Recipe, len(a.backups))
	for i, b := range a.backups {
		recipes[i] = b.recipe()
	}
	rep, err := fsck.Check(ctx, a.store, nil, recipes, verifyData)
	if err != nil {
		return CheckReport{}, err
	}
	return CheckReport{
		Containers:   rep.Containers,
		MetaEntries:  rep.MetaEntries,
		IndexEntries: rep.IndexEntries,
		RecipeRefs:   rep.RecipeRefs,
		HashedChunks: rep.HashedChunks,
		Problems:     rep.Problems,
	}, nil
}
