package repro

import (
	"bytes"
	"context"
	"testing"
)

func TestStoreExportOpenArchive(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data1 := randStream(2<<20, 101)
	data2 := append(append([]byte{}, data1[:1<<20]...), randStream(1<<20, 102)...)
	s.Backup(context.Background(), "mon", bytes.NewReader(data1))
	s.Backup(context.Background(), "tue", bytes.NewReader(data2))

	dir := t.TempDir()
	if err := s.Export(context.Background(), dir); err != nil {
		t.Fatal(err)
	}

	a, err := OpenArchive(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	backups := a.Backups()
	if len(backups) != 2 || backups[0].Label != "mon" || backups[1].Label != "tue" {
		t.Fatalf("archive backups: %+v", backups)
	}
	var out bytes.Buffer
	if _, err := a.Restore(context.Background(), backups[1], &out, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data2) {
		t.Fatal("archived restore differs from original")
	}
	rep, err := a.Check(context.Background(), true)
	if err != nil || !rep.OK() {
		t.Fatalf("archive check: %v %v", err, rep.Problems)
	}
	// Placement accessors still work on archived backups.
	if backups[0].Fragments() == 0 || backups[0].Layout().Chunks == 0 {
		t.Fatal("archived backup placement accessors")
	}
}

func TestOpenArchiveMissingDir(t *testing.T) {
	if _, err := OpenArchive(context.Background(), t.TempDir()+"/nope"); err == nil {
		t.Fatal("missing archive must error")
	}
}
