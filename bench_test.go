package repro

// Benchmark harness: one benchmark per figure of the paper's evaluation
// section. Each benchmark regenerates the figure at the default reproduction
// scale and reports the figure's headline values as benchmark metrics, so
//
//	go test -bench=Fig -benchmem
//
// prints the rows EXPERIMENTS.md records. The figures run on simulated-disk
// time; wall time here reflects the cost of the simulation itself (chunking
// and hashing the synthetic streams), not the modeled system.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// benchCfg is the scale benchmarks run at: the default reproduction scale
// (paper generation/backup counts, ~48 MB generations), so the numbers
// printed here are exactly the ones EXPERIMENTS.md records. The full suite
// takes a few minutes of wall time.
func benchCfg() ExperimentConfig {
	return DefaultExperimentConfig()
}

func reportSummary(b *testing.B, res *FigureResult, keys ...string) {
	b.Helper()
	for _, k := range keys {
		v, ok := res.Summary[k]
		if !ok {
			b.Fatalf("summary key %q missing", k)
		}
		b.ReportMetric(v, k)
	}
}

// BenchmarkFig2_DDFSThroughputDecay regenerates paper Fig. 2: DDFS-Like
// throughput over 20 single-user generations (paper: 213 → 110 MB/s).
func BenchmarkFig2_DDFSThroughputDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "ddfs_peak_MBps", "ddfs_last_MBps", "decline_ratio")
	}
}

// BenchmarkFig3_SiLoEfficiencyDecay regenerates paper Fig. 3: SiLo-Like
// deduplication efficiency over 20 generations (paper: ~1.0 declining).
func BenchmarkFig3_SiLoEfficiencyDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "silo_eff_first", "silo_eff_last3")
	}
}

// BenchmarkFig4And5_Comparison regenerates paper Figs. 4 and 5 in one pass:
// the 66-backup, 5-user comparison of throughput (Fig. 4: DeFrag ≈ SiLo ≫
// DDFS) and efficiency (Fig. 5: SiLo leaves 12% unremoved, DeFrag 4%).
func BenchmarkFig4And5_Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := RunComparison(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, c.Figure4, "ddfs_last5_MBps", "silo_last5_MBps", "defrag_last5_MBps")
		reportSummary(b, c.Figure5, "silo_unremoved_last5", "defrag_unremoved_last5")
	}
}

// BenchmarkFig6_ReadPerformance regenerates paper Fig. 6: restore bandwidth
// of DeFrag vs DDFS-Like across generations 1–20.
func BenchmarkFig6_ReadPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "ddfs_read_last3_MBps", "defrag_read_last3_MBps", "defrag_over_ddfs")
	}
}

// BenchmarkEq1_FragmentReadCost verifies the paper's Eq. 1 cost model:
// F(read) = N·T_seek + size/W_seq.
func BenchmarkEq1_FragmentReadCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunEquation1()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "contiguous_ms", "scattered128_ms")
	}
}

// BenchmarkAblation_AlphaSweep quantifies the α trade-off the paper
// describes in §III-B (locality improvement vs sacrificed compression).
func BenchmarkAblation_AlphaSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 12
	for i := 0; i < b.N; i++ {
		res, err := RunAlphaSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "alpha0_read_MBps", "alpha0_compression")
	}
}

// BenchmarkAblation_LPCCapacity measures sensitivity to the
// locality-preserved cache size.
func BenchmarkAblation_LPCCapacity(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		if _, err := RunCacheAblation(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SegmentSize measures sensitivity to segment geometry
// (the SPL granularity).
func BenchmarkAblation_SegmentSize(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		if _, err := RunSegmentAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ContainerSize measures sensitivity to container
// capacity (prefetch/restore granularity).
func BenchmarkAblation_ContainerSize(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		if _, err := RunContainerAblation(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngest measures the wall-clock cost of the simulation pipeline
// itself (chunk + hash + dedup bookkeeping) per logical byte.
func benchIngest(b *testing.B, kind EngineKind) {
	data := make([]byte, 16<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(Options{Engine: kind, ExpectedBytes: int64(len(data)) * 2, Alpha: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Backup(context.Background(), "bench", bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngest_DeFrag(b *testing.B)   { benchIngest(b, DeFrag) }
func BenchmarkIngest_DDFSLike(b *testing.B) { benchIngest(b, DDFSLike) }
func BenchmarkIngest_SiLoLike(b *testing.B) { benchIngest(b, SiLoLike) }

// BenchmarkAblation_RewritePolicy compares the paper's segment-granularity
// SPL against the CBR-style container granularity.
func BenchmarkAblation_RewritePolicy(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		res, err := RunPolicyAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "spl_read_MBps", "container_read_MBps")
	}
}

// BenchmarkAblation_RestoreStrategy compares the LRU container cache with
// the forward assembly area across memory budgets.
func BenchmarkAblation_RestoreStrategy(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		if _, err := RunRestoreAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayoutAnalysis regenerates the placement-profile table (stack
// distances and predicted cache hit rates) for DDFS vs DeFrag.
func BenchmarkLayoutAnalysis(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		res, err := RunLayoutAnalysis(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "ddfs_final_hitrate", "defrag_final_hitrate")
	}
}

// BenchmarkExtendedComparison runs all five engines over one generation
// schedule (the "beyond the paper" table in EXPERIMENTS.md).
func BenchmarkExtendedComparison(b *testing.B) {
	cfg := benchCfg()
	cfg.Generations = 10
	for i := 0; i < b.N; i++ {
		res, err := RunExtendedComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, res, "defrag_read_MBps", "ddfs-like_read_MBps")
	}
}

func BenchmarkIngest_SparseIndex(b *testing.B) { benchIngest(b, SparseIndex) }
func BenchmarkIngest_IDedup(b *testing.B)      { benchIngest(b, IDedup) }
