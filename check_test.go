package repro

import (
	"bytes"
	"context"
	"testing"
)

func TestCheckCleanStoreAllEngines(t *testing.T) {
	eachEngine(t, func(t *testing.T, kind EngineKind) {
		s, err := Open(Options{Engine: kind, StoreData: true, ExpectedBytes: 32 << 20, Alpha: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		data := randStream(2<<20, int64(kind)*3+1)
		s.Backup(context.Background(), "a", bytes.NewReader(data))
		s.Backup(context.Background(), "b", bytes.NewReader(data))
		rep, err := s.Check(context.Background(), true)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("clean %s store flagged: %v", kind, rep.Problems)
		}
		if rep.RecipeRefs == 0 || rep.MetaEntries == 0 || rep.HashedChunks == 0 {
			t.Fatalf("report counts: %+v", rep)
		}
	})
}

func TestCheckAfterCompact(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, Alpha: 0.3, StoreData: true, ExpectedBytes: 64 << 20})
	data1 := randStream(3<<20, 51)
	// Build overlapping streams so rewrites (and thus garbage) occur.
	data2 := append(append([]byte{}, data1[:1<<20]...), randStream(2<<20, 52)...)
	s.Backup(context.Background(), "a", bytes.NewReader(data1))
	s.Backup(context.Background(), "b", bytes.NewReader(data2))
	if _, err := s.Compact(context.Background(), 0.9); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-compact store flagged: %v", rep.Problems)
	}
}

func TestCheckVerifyRequiresStoreData(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 16 << 20})
	s.Backup(context.Background(), "a", bytes.NewReader(randStream(1<<20, 53)))
	if _, err := s.Check(context.Background(), true); err == nil {
		t.Fatal("verifyData without StoreData must error")
	}
	rep, err := s.Check(context.Background(), false)
	if err != nil || !rep.OK() {
		t.Fatalf("metadata-only check: %v %v", err, rep.Problems)
	}
}
