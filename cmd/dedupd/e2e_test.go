package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/workload"
)

// The e2e tests below need a real dedupd process so they can kill it
// uncleanly. Rather than depend on a pre-built binary, the test binary
// re-execs itself: when the marker variable is set, TestMain runs dedupd's
// real entry point instead of the test suite.
const childEnv = "DEDUPD_E2E_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		cli.Main("dedupd", realMain)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// dedupdProc is one spawned dedupd server process.
type dedupdProc struct {
	cmd  *exec.Cmd
	addr string
	dir  string
}

// startDedupd spawns a dedupd child on a fresh port over a file-backend
// store in dir, waits until /healthz answers, and returns the handle.
func startDedupd(t *testing.T, dir string, extraArgs ...string) *dedupdProc {
	t.Helper()
	addr := freeAddr(t)
	args := []string{
		"-addr", addr,
		"-engine", "defrag",
		"-backend", "file",
		"-store.dir", dir,
		"-expected.gb", "0.05",
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &dedupdProc{cmd: cmd, addr: addr, dir: dir}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill() //nolint:errcheck // best-effort teardown
			p.cmd.Wait()         //nolint:errcheck // best-effort teardown
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url("/healthz"))
		if err == nil {
			resp.Body.Close() //nolint:errcheck // health poll
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("dedupd on %s never became healthy", addr)
	return nil
}

func (p *dedupdProc) url(path string) string { return "http://" + p.addr + path }

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() //nolint:errcheck // reserving a port
	return addr
}

// seededData is deterministic pseudo-random content for one backup stream.
func seededData(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf) //nolint:errcheck // never fails
	return buf
}

func uploadBackup(p *dedupdProc, label string, data []byte) error {
	resp, err := http.Post(p.url("/v1/backups/"+label), "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // status is the signal
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("upload %s: status %d: %s", label, resp.StatusCode, body)
	}
	return nil
}

// tenantsInflight polls /v1/stats for the default tenant's in-flight count.
func tenantsInflight(p *dedupdProc) (int, error) {
	resp, err := http.Get(p.url("/v1/stats"))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close() //nolint:errcheck // decoded below
	var sv struct {
		Tenants map[string]int `json:"tenantsInflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		return 0, err
	}
	return sv.Tenants["default"], nil
}

// reopenAndAudit opens the store directory the dead server left behind and
// asserts the WAL replay produced a consistent store: fsck passes, every
// label in want restores bit-identically, and no other backups survived.
func reopenAndAudit(t *testing.T, dir string, want map[string][]byte) {
	t.Helper()
	s, err := repro.Open(repro.Options{
		Engine:        repro.DeFrag,
		Alpha:         0.1,
		StoreData:     true,
		ExpectedBytes: 50 << 20,
		Backend:       repro.FileBackend,
		Dir:           dir,
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s.Close() //nolint:errcheck // test teardown

	ctx := context.Background()
	rep, err := s.Check(ctx, true)
	if err != nil {
		t.Fatalf("fsck after crash: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("store not fsck-clean after crash: %v", rep.Problems)
	}
	if got := len(s.Backups()); got != len(want) {
		var labels []string
		for _, b := range s.Backups() {
			labels = append(labels, b.Label)
		}
		t.Fatalf("retained %d backups %v, want %d", got, labels, len(want))
	}
	for label, data := range want {
		b := s.FindBackup(label)
		if b == nil {
			t.Fatalf("completed backup %q lost in crash", label)
		}
		var buf bytes.Buffer
		if _, err := s.Restore(ctx, b, &buf, true); err != nil {
			t.Fatalf("restore %q after crash: %v", label, err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("restore %q after crash: content diverged (%d vs %d bytes)",
				label, buf.Len(), len(data))
		}
	}
}

// TestE2EKillMidIngest is the hard-crash path: a completed upload, then a
// second upload held mid-stream while the server takes SIGKILL. No drain, no
// store.Close — recovery has only the WAL. Reopening must be fsck-clean, the
// completed backup must restore bit-identically, and the half-ingested one
// must have vanished entirely.
func TestE2EKillMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	p := startDedupd(t, dir)

	done := seededData(1, 512<<10)
	if err := uploadBackup(p, "gen-complete", done); err != nil {
		t.Fatal(err)
	}

	// Hold a second upload in flight: stream through a pipe and keep
	// feeding it so the ingest is mid-container when the process dies.
	pr, pw := io.Pipe()
	uploadErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, p.url("/v1/backups/gen-doomed"), pr)
		if err != nil {
			uploadErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close() //nolint:errcheck // outcome irrelevant
		}
		uploadErr <- err
	}()
	feed := seededData(2, 64<<10)
	stopFeed := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopFeed:
				pw.CloseWithError(io.ErrClosedPipe) //nolint:errcheck // pipe teardown
				return
			default:
				if _, err := pw.Write(feed); err != nil {
					return
				}
			}
		}
	}()
	defer close(stopFeed)

	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := tenantsInflight(p)
		if err == nil && n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("held upload never showed up in-flight (last err: %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait() //nolint:errcheck // killed on purpose
	<-uploadErr  // connection dies with the server; error content irrelevant

	reopenAndAudit(t, dir, map[string][]byte{"gen-complete": done})
}

// postMaintenance asks the server for one maintenance epoch. A transport
// error is returned as-is: when a crash point is armed the process dies
// mid-request and the dead connection is the expected signal.
func postMaintenance(p *dedupdProc) error {
	resp, err := http.Post(p.url("/v1/maintenance"), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // status is the signal
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("maintenance: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// TestE2EKillMidMerge arms a blockstore crash point and drives the online
// maintenance layer until an epoch reaches the crash-safe container drop,
// at which instant the process exits uncleanly — after the merge intent is
// durable but before (merge-intent) or halfway through (merge-files) the
// destructive file deletes. Reopening must replay the WAL to a fsck-clean
// store with every committed backup restoring bit-identically: the drop
// commit ordering (recipes stop referencing victims durably before the
// intent) is what makes any crash instant safe.
func TestE2EKillMidMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	for _, point := range []string{"merge-intent", "merge-files"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			p := startDedupd(t, dir,
				"-alpha", "0.3", // more DeFrag rewrites → more superseded copies to merge
				"-crash.point", point,
				"-maintenance.util", "0.95",
				"-maintenance.fill", "0.95",
				"-maintenance.sparse", "0.9",
				"-maintenance.batch", "64",
			)

			// Mutating generations of one synthetic file system: dedup plus
			// DeFrag rewrites leave older containers partly superseded, which
			// is what maintenance merges away.
			cfg := workload.DefaultConfig(99)
			cfg.NumFiles = 8
			cfg.MeanFileSize = 384 << 10
			sched, err := workload.NewSingle(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string][]byte)
			upload := func() {
				t.Helper()
				bk := sched.Next()
				data, err := io.ReadAll(bk.Stream)
				if err != nil {
					t.Fatal(err)
				}
				if err := uploadBackup(p, bk.Label, data); err != nil {
					t.Fatal(err)
				}
				want[bk.Label] = data
			}
			for i := 0; i < 4; i++ {
				upload()
			}

			// Keep alternating epochs and fresh generations until one epoch
			// selects victims and walks into the armed crash point. The POST
			// dying on a broken connection is the success signal.
			crashed := false
			for round := 0; round < 10 && !crashed; round++ {
				if err := postMaintenance(p); err != nil {
					crashed = true
					break
				}
				upload()
			}
			if !crashed {
				t.Fatal("no maintenance epoch reached a container drop; crash point never fired")
			}
			waited := make(chan struct{})
			go func() {
				p.cmd.Wait() //nolint:errcheck // crash is the point
				close(waited)
			}()
			select {
			case <-waited:
			case <-time.After(10 * time.Second):
				t.Fatalf("server did not exit after crash point %s", point)
			}

			reopenAndAudit(t, dir, want)
		})
	}
}

// dispersedOf reorders base at 32 KiB granularity with unique blocks
// interleaved: against a store already holding newer history, its
// duplicates resolve far behind the write head, so the inline filter
// demotes the stream to write-through spill.
func dispersedOf(base []byte, salt byte) []byte {
	const block = 32 << 10
	var out bytes.Buffer
	n := len(base) / block
	for i := 0; i < n; i++ {
		j := (i*7 + 3) % n
		out.Write(base[j*block : (j+1)*block])
		if i%4 == 0 {
			fresh := make([]byte, block)
			for k := range fresh {
				fresh[k] = byte(i*131+k*17) ^ salt
			}
			out.Write(fresh)
		}
	}
	return out.Bytes()
}

// TestE2EKillDuringFilteredMaintenance is the crash story for the
// prioritized-filter pipeline: a server running with the inline filter on
// ingests streams the filter spills, survives one full out-of-line re-dedup
// epoch, and then takes SIGKILL while another maintenance epoch is in
// flight. No drain, no Close — reopening must be fsck-clean with every
// committed backup (including the spilled-then-rededuped one) restoring
// bit-identically.
func TestE2EKillDuringFilteredMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	p := startDedupd(t, dir,
		"-filter",
		"-filter.probation", "64",
		"-maintenance.util", "0.95",
	)

	want := make(map[string][]byte)
	base := seededData(20, 512<<10)
	want["base"] = base
	if err := uploadBackup(p, "base", base); err != nil {
		t.Fatal(err)
	}
	// Unique history pushes the write head past base's containers, so the
	// dispersed copy's duplicates score as cold.
	for i := 0; i < 3; i++ {
		label := fmt.Sprintf("fill-%d", i)
		want[label] = seededData(int64(21+i), 512<<10)
		if err := uploadBackup(p, label, want[label]); err != nil {
			t.Fatal(err)
		}
	}
	want["dispersed"] = dispersedOf(base, 0x5A)
	if err := uploadBackup(p, "dispersed", want["dispersed"]); err != nil {
		t.Fatal(err)
	}

	// One epoch completes cleanly: the spilled refs re-dedup onto the
	// authoritative copies while the server is live.
	if err := postMaintenance(p); err != nil {
		t.Fatal(err)
	}

	// Kill the process while a second epoch is in flight. Whether the kill
	// lands before, during, or after the epoch's work is deliberately racy —
	// every instant must be recoverable.
	maintDone := make(chan error, 1)
	go func() { maintDone <- postMaintenance(p) }()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait() //nolint:errcheck // killed on purpose
	<-maintDone  // connection outcome irrelevant

	reopenAndAudit(t, dir, want)
}

// TestE2ECrashAfterIngest exercises the deterministic -crash.after
// machinery: the server exits without closing the store immediately after
// the Nth ingest commits, so the WAL's last record is a live container. Both
// committed backups must survive replay.
func TestE2ECrashAfterIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	p := startDedupd(t, dir, "-crash.after", "2")

	want := map[string][]byte{
		"gen-0": seededData(10, 384<<10),
		"gen-1": seededData(11, 384<<10),
	}
	if err := uploadBackup(p, "gen-0", want["gen-0"]); err != nil {
		t.Fatal(err)
	}
	// The second upload trips the simulated crash after commit; the process
	// may exit before the 201 is flushed, so a transport error is fine.
	if err := uploadBackup(p, "gen-1", want["gen-1"]); err != nil {
		t.Logf("second upload raced the simulated crash (expected): %v", err)
	}

	waited := make(chan struct{})
	go func() {
		p.cmd.Wait() //nolint:errcheck // crash is the point
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after -crash.after trip")
	}

	reopenAndAudit(t, dir, want)
}
