package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// loadgenParams configures the -loadgen client mode.
type loadgenParams struct {
	addr        string
	tenants     int
	gens        int
	files       int
	fileKB      int64
	seed        int64
	scenario    string
	out         string
	stagesOut   string
	sweep       string
	mode        string
	skipRestore bool
}

// opRecord is one client-observed operation in the BENCH_PR5 trajectory.
// Failed operations are recorded too (Status + Error), not silently dropped:
// the trajectory is the debugging artifact, and Trace is the W3C trace ID the
// client minted for the request — paste it into /debug/traces to pull the
// server-side span tree.
type opRecord struct {
	Tenant      string  `json:"tenant"`
	Label       string  `json:"label"`
	Op          string  `json:"op"` // "backup" or "restore"
	Bytes       int64   `json:"bytes"`
	WallSeconds float64 `json:"wallSeconds"`
	MBps        float64 `json:"mbps"`
	Status      int     `json:"status,omitempty"`
	Error       string  `json:"error,omitempty"`
	Trace       string  `json:"trace,omitempty"`
	Retries429  int     `json:"retries429,omitempty"`
	Verified    bool    `json:"verified,omitempty"`
}

type loadgenSummary struct {
	IngestBytes    int64   `json:"ingestBytes"`
	IngestSeconds  float64 `json:"ingestSeconds"`
	IngestMBps     float64 `json:"ingestMBps"`
	LatencyP50     float64 `json:"latencyP50Seconds"`
	LatencyP95     float64 `json:"latencyP95Seconds"`
	LatencyP99     float64 `json:"latencyP99Seconds"`
	Rejected429    int     `json:"rejected429"`
	Failed         int     `json:"failedOps"`
	RestoreBytes   int64   `json:"restoreBytes"`
	RestoreSeconds float64 `json:"restoreSeconds"`
	RestoreMBps    float64 `json:"restoreMBps"`
	AllVerified    bool    `json:"allVerified"`
}

type loadgenConfig struct {
	Addr     string `json:"addr"`
	Tenants  int    `json:"tenants"`
	Gens     int    `json:"gens"`
	Files    int    `json:"files"`
	FileKB   int64  `json:"fileKB"`
	Seed     int64  `json:"seed"`
	Scenario string `json:"scenario,omitempty"`
	Mode     string `json:"restoreMode"`
}

type loadgenReport struct {
	Config  loadgenConfig  `json:"config"`
	Ops     []opRecord     `json:"ops"`
	Summary loadgenSummary `json:"summary"`
}

// stagePhase is one entry of the BENCH_PR6 per-stage breakdown: the
// server-side stage wall-time deltas accumulated while this phase's ingest
// ran, as absolute nanoseconds and as shares of the stage total.
type stagePhase struct {
	Phase       string             `json:"phase"`
	Streams     int                `json:"streams"`
	Gens        int                `json:"gens"`
	IngestBytes int64              `json:"ingestBytes"`
	WallSeconds float64            `json:"wallSeconds"`
	MBps        float64            `json:"mbps"`
	StageNanos  map[string]int64   `json:"stageNanos"`
	StageShares map[string]float64 `json:"stageShares"`
	// TopStage is the stage with the largest share of this phase's stage time.
	TopStage string `json:"topStage"`
}

// stageReport is BENCH_PR6.json: where the pipeline's wall time goes per
// stream count, from the always-on per-stage counters on /v1/stats.
type stageReport struct {
	Config     loadgenConfig `json:"config"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Phases     []stagePhase  `json:"phases"`
	// SerialBottleneck names the dominant stage at the highest stream count —
	// the place added streams serialize (resolver-mutex wait is charged to
	// "lookup", so index contention surfaces there).
	SerialBottleneck string `json:"serialBottleneck"`
	TraceCheck       struct {
		ClientTrace        string `json:"clientTrace"`
		FoundInDebugTraces bool   `json:"foundInDebugTraces"`
	} `json:"traceCheck"`
	Note string `json:"note"`
}

// tenantRun drives one tenant: gens sequential backup generations of a
// seeded synthetic file system, uploaded over HTTP, content-hashed on the
// way out so restores can be verified bit-identical later.
type tenantRun struct {
	id     int
	name   string
	labels []string
	hashes []string
	ops    []opRecord
	failed int
	err    error // transport-level failure (op-level failures live in ops)
}

func runLoadgen(p loadgenParams) error {
	if p.tenants < 1 || p.gens < 1 {
		return fmt.Errorf("loadgen: need at least 1 tenant and 1 generation")
	}
	sweep, err := parseSweep(p.sweep)
	if err != nil {
		return err
	}
	base := "http://" + p.addr
	client := &http.Client{}
	if err := waitHealthy(client, base, 10*time.Second); err != nil {
		return err
	}

	stages := stageReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	stages.Note = "stageNanos are server-side cumulative per-stage wall-time deltas over each phase's ingest; " +
		"lookup includes resolver-mutex wait, so cross-stream index serialization is charged there"

	// Main phase: p.tenants concurrent streams, ops recorded in full.
	before, err := fetchStageNanos(client, base)
	if err != nil {
		return err
	}
	wallStart := time.Now()
	runs, err := runIngestPhase(client, base, p, p.tenants, 0, "t")
	if err != nil {
		return err
	}
	ingestWall := time.Since(wallStart).Seconds()
	after, err := fetchStageNanos(client, base)
	if err != nil {
		return err
	}

	rep := loadgenReport{}
	rep.Config = loadgenConfig{
		Addr: p.addr, Tenants: p.tenants, Gens: p.gens,
		Files: p.files, FileKB: p.fileKB, Seed: p.seed,
		Scenario: p.scenario, Mode: p.mode,
	}
	rep.Summary.AllVerified = true
	stages.Config = rep.Config

	var latencies []float64
	for _, tr := range runs {
		for _, op := range tr.ops {
			rep.Ops = append(rep.Ops, op)
			rep.Summary.IngestBytes += op.Bytes
			rep.Summary.Rejected429 += op.Retries429
			latencies = append(latencies, op.WallSeconds)
		}
		rep.Summary.Failed += tr.failed
	}
	rep.Summary.IngestSeconds = ingestWall
	if ingestWall > 0 {
		rep.Summary.IngestMBps = float64(rep.Summary.IngestBytes) / ingestWall / 1e6
	}
	sort.Float64s(latencies)
	rep.Summary.LatencyP50 = percentile(latencies, 0.50)
	rep.Summary.LatencyP95 = percentile(latencies, 0.95)
	rep.Summary.LatencyP99 = percentile(latencies, 0.99)

	stages.Phases = append(stages.Phases,
		makePhase("main", p.tenants, p.gens, rep.Summary.IngestBytes, ingestWall, before, after))

	// Sweep phases: extra ingest-only rounds at the requested stream counts,
	// each with fresh labels and fresh content (different seeds), bracketted
	// by /v1/stats stage-counter reads.
	for i, streams := range sweep {
		sb, err := fetchStageNanos(client, base)
		if err != nil {
			return err
		}
		t0 := time.Now()
		sruns, err := runIngestPhase(client, base, p, streams, (i+1)*10000, fmt.Sprintf("s%d-t", streams))
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		sa, err := fetchStageNanos(client, base)
		if err != nil {
			return err
		}
		var phaseBytes int64
		for _, tr := range sruns {
			phaseBytes += tenantBytes(tr)
			rep.Summary.Failed += tr.failed
		}
		stages.Phases = append(stages.Phases,
			makePhase(fmt.Sprintf("sweep-%d", streams), streams, p.gens, phaseBytes, wall, sb, sa))
	}
	if n := len(stages.Phases); n > 0 {
		maxPhase := stages.Phases[0]
		for _, ph := range stages.Phases[1:] {
			if ph.Streams > maxPhase.Streams {
				maxPhase = ph
			}
		}
		stages.SerialBottleneck = maxPhase.TopStage
	}

	// Trace round-trip check: the first backup's client-minted trace ID must
	// appear in the server's tail-captured /debug/traces (the warmup policy
	// always retains the first requests).
	for _, tr := range runs {
		for _, op := range tr.ops {
			if op.Trace != "" {
				stages.TraceCheck.ClientTrace = op.Trace
				break
			}
		}
		if stages.TraceCheck.ClientTrace != "" {
			break
		}
	}
	if stages.TraceCheck.ClientTrace != "" {
		found, err := traceRetained(client, base, stages.TraceCheck.ClientTrace)
		if err != nil {
			telemetry.Logger().Warn("loadgen: /debug/traces check failed", "err", err)
		}
		stages.TraceCheck.FoundInDebugTraces = found
	}

	// Restore phase: every tenant's every generation, streamed back and
	// compared against the content hash recorded at upload time.
	if !p.skipRestore {
		restoreStart := time.Now()
		for _, tr := range runs {
			for g, lbl := range tr.labels {
				op, err := restoreVerify(client, base, tr, g, lbl, p.mode)
				rep.Ops = append(rep.Ops, op)
				if err != nil {
					rep.Summary.Failed++
					rep.Summary.AllVerified = false
					telemetry.Logger().Error("loadgen: restore failed",
						"label", lbl, "trace", op.Trace, "err", err)
					continue
				}
				rep.Summary.RestoreBytes += op.Bytes
				if !op.Verified {
					rep.Summary.AllVerified = false
				}
			}
		}
		rep.Summary.RestoreSeconds = time.Since(restoreStart).Seconds()
		if rep.Summary.RestoreSeconds > 0 {
			rep.Summary.RestoreMBps = float64(rep.Summary.RestoreBytes) / rep.Summary.RestoreSeconds / 1e6
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(p.out, blob, 0o644); err != nil {
		return err
	}
	sblob, err := json.MarshalIndent(&stages, "", "  ")
	if err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(p.stagesOut, sblob, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d tenants × %d gens: %.1f MB ingested at %.1f MB/s "+
		"(p50 %.3fs, p95 %.3fs, p99 %.3fs, %d×429, %d failed)",
		p.tenants, p.gens, float64(rep.Summary.IngestBytes)/1e6, rep.Summary.IngestMBps,
		rep.Summary.LatencyP50, rep.Summary.LatencyP95, rep.Summary.LatencyP99,
		rep.Summary.Rejected429, rep.Summary.Failed)
	if !p.skipRestore {
		fmt.Printf("; %.1f MB restored at %.1f MB/s, verified=%v",
			float64(rep.Summary.RestoreBytes)/1e6, rep.Summary.RestoreMBps, rep.Summary.AllVerified)
	}
	fmt.Printf("; trajectory → %s, stages → %s (bottleneck: %s, trace round-trip: %v)\n",
		p.out, p.stagesOut, stages.SerialBottleneck, stages.TraceCheck.FoundInDebugTraces)
	if rep.Summary.Failed > 0 {
		return fmt.Errorf("loadgen: %d operations failed (see %s)", rep.Summary.Failed, p.out)
	}
	if !rep.Summary.AllVerified {
		return fmt.Errorf("loadgen: restored content diverged from uploaded content")
	}
	return nil
}

// parseSweep parses "1,2,4" into stream counts.
func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("loadgen: bad -loadgen.sweep entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runIngestPhase uploads gens generations from `streams` concurrent tenants
// named prefix0..prefixN-1, with workload seeds offset by idBase so every
// phase ingests fresh content.
func runIngestPhase(client *http.Client, base string, p loadgenParams, streams, idBase int, prefix string) ([]*tenantRun, error) {
	runs := make([]*tenantRun, streams)
	var wg sync.WaitGroup
	for t := 0; t < streams; t++ {
		runs[t] = &tenantRun{id: idBase + t, name: fmt.Sprintf("%s%d", prefix, t)}
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			tr.err = tr.ingest(client, base, p)
		}(runs[t])
	}
	wg.Wait()
	for _, tr := range runs {
		if tr.err != nil {
			return nil, fmt.Errorf("loadgen: tenant %s: %w", tr.name, tr.err)
		}
	}
	return runs, nil
}

func tenantBytes(tr *tenantRun) int64 {
	var n int64
	for _, op := range tr.ops {
		if op.Op == "backup" && op.Error == "" {
			n += op.Bytes
		}
	}
	return n
}

// fetchStageNanos reads the cumulative per-stage wall-time counters from the
// server's /v1/stats.
func fetchStageNanos(client *http.Client, base string) (map[string]int64, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: stats: %s", resp.Status)
	}
	var sv serve.StatsView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	if sv.Stages == nil {
		sv.Stages = map[string]int64{}
	}
	return sv.Stages, nil
}

// makePhase folds the before/after stage counters into one breakdown entry.
func makePhase(name string, streams, gens int, bytes int64, wall float64, before, after map[string]int64) stagePhase {
	ph := stagePhase{
		Phase: name, Streams: streams, Gens: gens,
		IngestBytes: bytes, WallSeconds: wall,
		StageNanos:  map[string]int64{},
		StageShares: map[string]float64{},
	}
	if wall > 0 {
		ph.MBps = float64(bytes) / wall / 1e6
	}
	var total int64
	for stage, a := range after {
		if d := a - before[stage]; d > 0 {
			ph.StageNanos[stage] = d
			total += d
		}
	}
	var topNS int64
	for stage, d := range ph.StageNanos {
		ph.StageShares[stage] = float64(d) / float64(total)
		if d > topNS {
			topNS, ph.TopStage = d, stage
		}
	}
	return ph
}

// traceRetained reports whether /debug/traces holds a span tree of the given
// trace ID.
func traceRetained(client *http.Client, base, trace string) (bool, error) {
	resp, err := client.Get(base + "/debug/traces")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("/debug/traces: %s", resp.Status)
	}
	var view telemetry.TracesView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return false, err
	}
	for _, tr := range view.Traces {
		if tr.Trace == trace {
			return true, nil
		}
	}
	return false, nil
}

// tenantSchedule builds one tenant's stream schedule from the configured
// scenario. "mixed" rotates tenants across backup, primary and workspace so
// one run exercises all three against the same store; each tenant gets an
// independently derived seed either way.
func tenantSchedule(id int, p loadgenParams) (workload.Schedule, error) {
	name := p.scenario
	if strings.EqualFold(name, "mixed") {
		all := workload.AllScenarios()
		name = all[id%len(all)].String()
	}
	sc, err := workload.ParseScenario(name)
	if err != nil {
		return nil, err
	}
	seed := p.seed*1000003 + int64(id)*7919
	if sc == workload.ScenarioBackup {
		cfg := workload.DefaultConfig(seed)
		cfg.NumFiles = p.files
		cfg.MeanFileSize = p.fileKB << 10
		return workload.NewSingle(cfg)
	}
	return workload.NewScenario(sc, workload.ScenarioParams{
		Seed:           seed,
		Users:          1,
		BytesPerStream: int64(p.files) * (p.fileKB << 10),
	})
}

// ingest uploads this tenant's generations sequentially (tenants run
// concurrently with each other). A 429 is retried after the server's
// Retry-After hint; every retry is counted into the trajectory. Failed
// uploads are recorded as failed ops (status + error + trace) and the run
// moves on — one bad generation shouldn't hide the rest of the trajectory.
func (tr *tenantRun) ingest(client *http.Client, base string, p loadgenParams) error {
	sched, err := tenantSchedule(tr.id, p)
	if err != nil {
		return err
	}
	for g := 0; g < p.gens; g++ {
		bk := sched.Next()
		// Materialize the stream so a 429 retry can replay it, and hash it
		// for the restore-verify phase.
		data, err := io.ReadAll(bk.Stream)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		label := fmt.Sprintf("%s/%s", tr.name, bk.Label)

		// The client is the trace root: every attempt carries a W3C
		// traceparent, so the server's serve.ingest span tree joins this
		// trace and /debug/traces can be searched by the recorded ID.
		traceID := telemetry.NewTraceID()
		rootSpan := telemetry.NewSpanID()

		start := time.Now()
		retries := 0
		op := opRecord{
			Tenant: tr.name, Label: label, Op: "backup",
			Bytes: int64(len(data)), Trace: traceID.String(),
		}
		for {
			req, err := http.NewRequest(http.MethodPost, base+"/v1/backups/"+label, bytes.NewReader(data))
			if err != nil {
				return err
			}
			req.Header.Set("X-Tenant", tr.name)
			req.Header.Set("Content-Type", "application/octet-stream")
			req.Header.Set("traceparent", telemetry.FormatTraceParent(traceID, rootSpan))
			resp, err := client.Do(req)
			if err != nil {
				op.Error = err.Error()
				break
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close() //nolint:errcheck // read fully above
			op.Status = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retries++
				if retries > 100 {
					op.Error = fmt.Sprintf("still 429 after %d retries", retries)
					break
				}
				time.Sleep(retryAfter(resp))
				continue
			}
			if resp.StatusCode != http.StatusCreated {
				op.Error = fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body))
			}
			break
		}
		wall := time.Since(start).Seconds()
		op.WallSeconds = wall
		op.Retries429 = retries
		if wall > 0 {
			op.MBps = float64(len(data)) / wall / 1e6
		}
		if op.Error != "" {
			tr.failed++
			telemetry.Logger().Error("loadgen: backup failed",
				"label", label, "status", op.Status, "trace", op.Trace, "err", op.Error)
		} else {
			tr.labels = append(tr.labels, label)
			tr.hashes = append(tr.hashes, hex.EncodeToString(sum[:]))
		}
		tr.ops = append(tr.ops, op)
	}
	return nil
}

// restoreVerify streams one backup back and compares its content hash with
// the hash recorded at upload time. The returned opRecord is always
// populated (with Status/Error on failure) so the trajectory records the
// attempt either way.
func restoreVerify(client *http.Client, base string, tr *tenantRun, g int, label, mode string) (opRecord, error) {
	traceID := telemetry.NewTraceID()
	rootSpan := telemetry.NewSpanID()
	op := opRecord{Tenant: tr.name, Label: label, Op: "restore", Trace: traceID.String()}
	url := fmt.Sprintf("%s/v1/backups/%s/restore?mode=%s", base, label, mode)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		op.Error = err.Error()
		return op, err
	}
	req.Header.Set("X-Tenant", tr.name)
	req.Header.Set("traceparent", telemetry.FormatTraceParent(traceID, rootSpan))
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		op.Error = err.Error()
		return op, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	op.Status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		op.Error = fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body))
		return op, fmt.Errorf("%s", op.Error)
	}
	h := sha256.New()
	n, err := io.Copy(h, resp.Body)
	if err != nil {
		op.Error = err.Error()
		return op, err
	}
	wall := time.Since(start).Seconds()
	op.Bytes = n
	op.WallSeconds = wall
	if wall > 0 {
		op.MBps = float64(n) / wall / 1e6
	}
	got := hex.EncodeToString(h.Sum(nil))
	op.Verified = got == tr.hashes[g]
	if !op.Verified {
		telemetry.Logger().Error("loadgen: restored content hash mismatch",
			"label", label, "trace", op.Trace, "got", got[:12], "want", tr.hashes[g][:12])
	}
	return op, nil
}

// retryAfter parses the server's Retry-After hint (seconds), defaulting to
// a short client-side backoff.
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if d, err := time.ParseDuration(v + "s"); err == nil && d > 0 {
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			return d
		}
	}
	return 100 * time.Millisecond
}

// waitHealthy polls /healthz until the server answers or the budget runs out.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close() //nolint:errcheck // health probe
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: server at %s not reachable: %w", base, err)
			}
			return fmt.Errorf("loadgen: server at %s not healthy", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// percentile returns the p-quantile of sorted (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
