package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/workload"
)

// loadgenParams configures the -loadgen client mode.
type loadgenParams struct {
	addr        string
	tenants     int
	gens        int
	files       int
	fileKB      int64
	seed        int64
	out         string
	mode        string
	skipRestore bool
}

// opRecord is one client-observed operation in the BENCH_PR5 trajectory.
type opRecord struct {
	Tenant      string  `json:"tenant"`
	Label       string  `json:"label"`
	Op          string  `json:"op"` // "backup" or "restore"
	Bytes       int64   `json:"bytes"`
	WallSeconds float64 `json:"wallSeconds"`
	MBps        float64 `json:"mbps"`
	Retries429  int     `json:"retries429,omitempty"`
	Verified    bool    `json:"verified,omitempty"`
}

type loadgenSummary struct {
	IngestBytes    int64   `json:"ingestBytes"`
	IngestSeconds  float64 `json:"ingestSeconds"`
	IngestMBps     float64 `json:"ingestMBps"`
	LatencyP50     float64 `json:"latencyP50Seconds"`
	LatencyP95     float64 `json:"latencyP95Seconds"`
	Rejected429    int     `json:"rejected429"`
	RestoreBytes   int64   `json:"restoreBytes"`
	RestoreSeconds float64 `json:"restoreSeconds"`
	RestoreMBps    float64 `json:"restoreMBps"`
	AllVerified    bool    `json:"allVerified"`
}

type loadgenReport struct {
	Config struct {
		Addr    string `json:"addr"`
		Tenants int    `json:"tenants"`
		Gens    int    `json:"gens"`
		Files   int    `json:"files"`
		FileKB  int64  `json:"fileKB"`
		Seed    int64  `json:"seed"`
		Mode    string `json:"restoreMode"`
	} `json:"config"`
	Ops     []opRecord     `json:"ops"`
	Summary loadgenSummary `json:"summary"`
}

// tenantRun drives one tenant: gens sequential backup generations of a
// seeded synthetic file system, uploaded over HTTP, content-hashed on the
// way out so restores can be verified bit-identical later.
type tenantRun struct {
	id     int
	name   string
	labels []string
	hashes []string
	ops    []opRecord
	err    error
}

func runLoadgen(p loadgenParams) error {
	if p.tenants < 1 || p.gens < 1 {
		return fmt.Errorf("loadgen: need at least 1 tenant and 1 generation")
	}
	base := "http://" + p.addr
	client := &http.Client{}
	if err := waitHealthy(client, base, 10*time.Second); err != nil {
		return err
	}

	runs := make([]*tenantRun, p.tenants)
	var wg sync.WaitGroup
	wallStart := time.Now()
	for t := 0; t < p.tenants; t++ {
		runs[t] = &tenantRun{id: t, name: fmt.Sprintf("t%d", t)}
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			tr.err = tr.ingest(client, base, p)
		}(runs[t])
	}
	wg.Wait()
	ingestWall := time.Since(wallStart).Seconds()
	for _, tr := range runs {
		if tr.err != nil {
			return fmt.Errorf("loadgen: tenant %s: %w", tr.name, tr.err)
		}
	}

	rep := loadgenReport{}
	rep.Config.Addr = p.addr
	rep.Config.Tenants = p.tenants
	rep.Config.Gens = p.gens
	rep.Config.Files = p.files
	rep.Config.FileKB = p.fileKB
	rep.Config.Seed = p.seed
	rep.Config.Mode = p.mode
	rep.Summary.AllVerified = true

	var latencies []float64
	for _, tr := range runs {
		for _, op := range tr.ops {
			rep.Ops = append(rep.Ops, op)
			rep.Summary.IngestBytes += op.Bytes
			rep.Summary.Rejected429 += op.Retries429
			latencies = append(latencies, op.WallSeconds)
		}
	}
	rep.Summary.IngestSeconds = ingestWall
	if ingestWall > 0 {
		rep.Summary.IngestMBps = float64(rep.Summary.IngestBytes) / ingestWall / 1e6
	}
	sort.Float64s(latencies)
	rep.Summary.LatencyP50 = percentile(latencies, 0.50)
	rep.Summary.LatencyP95 = percentile(latencies, 0.95)

	// Restore phase: every tenant's every generation, streamed back and
	// compared against the content hash recorded at upload time.
	if !p.skipRestore {
		restoreStart := time.Now()
		for _, tr := range runs {
			for g, lbl := range tr.labels {
				op, err := restoreVerify(client, base, tr, g, lbl, p.mode)
				if err != nil {
					return fmt.Errorf("loadgen: restore %s: %w", lbl, err)
				}
				rep.Ops = append(rep.Ops, op)
				rep.Summary.RestoreBytes += op.Bytes
				if !op.Verified {
					rep.Summary.AllVerified = false
				}
			}
		}
		rep.Summary.RestoreSeconds = time.Since(restoreStart).Seconds()
		if rep.Summary.RestoreSeconds > 0 {
			rep.Summary.RestoreMBps = float64(rep.Summary.RestoreBytes) / rep.Summary.RestoreSeconds / 1e6
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(p.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d tenants × %d gens: %.1f MB ingested at %.1f MB/s "+
		"(p50 %.3fs, p95 %.3fs, %d×429)",
		p.tenants, p.gens, float64(rep.Summary.IngestBytes)/1e6, rep.Summary.IngestMBps,
		rep.Summary.LatencyP50, rep.Summary.LatencyP95, rep.Summary.Rejected429)
	if !p.skipRestore {
		fmt.Printf("; %.1f MB restored at %.1f MB/s, verified=%v",
			float64(rep.Summary.RestoreBytes)/1e6, rep.Summary.RestoreMBps, rep.Summary.AllVerified)
	}
	fmt.Printf("; trajectory → %s\n", p.out)
	if !rep.Summary.AllVerified {
		return fmt.Errorf("loadgen: restored content diverged from uploaded content")
	}
	return nil
}

// ingest uploads this tenant's generations sequentially (tenants run
// concurrently with each other). A 429 is retried after the server's
// Retry-After hint; every retry is counted into the trajectory.
func (tr *tenantRun) ingest(client *http.Client, base string, p loadgenParams) error {
	cfg := workload.DefaultConfig(p.seed*1000003 + int64(tr.id)*7919)
	cfg.NumFiles = p.files
	cfg.MeanFileSize = p.fileKB << 10
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		return err
	}
	for g := 0; g < p.gens; g++ {
		bk := sched.Next()
		// Materialize the stream so a 429 retry can replay it, and hash it
		// for the restore-verify phase.
		data, err := io.ReadAll(bk.Stream)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		label := fmt.Sprintf("%s/%s", tr.name, bk.Label)

		start := time.Now()
		retries := 0
		for {
			req, err := http.NewRequest(http.MethodPost, base+"/v1/backups/"+label, bytes.NewReader(data))
			if err != nil {
				return err
			}
			req.Header.Set("X-Tenant", tr.name)
			req.Header.Set("Content-Type", "application/octet-stream")
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close() //nolint:errcheck // read fully above
			if resp.StatusCode == http.StatusTooManyRequests {
				retries++
				if retries > 100 {
					return fmt.Errorf("backup %s: still 429 after %d retries", label, retries)
				}
				time.Sleep(retryAfter(resp))
				continue
			}
			if resp.StatusCode != http.StatusCreated {
				return fmt.Errorf("backup %s: %s: %s", label, resp.Status, bytes.TrimSpace(body))
			}
			break
		}
		wall := time.Since(start).Seconds()
		mbps := 0.0
		if wall > 0 {
			mbps = float64(len(data)) / wall / 1e6
		}
		tr.labels = append(tr.labels, label)
		tr.hashes = append(tr.hashes, hex.EncodeToString(sum[:]))
		tr.ops = append(tr.ops, opRecord{
			Tenant: tr.name, Label: label, Op: "backup",
			Bytes: int64(len(data)), WallSeconds: wall, MBps: mbps, Retries429: retries,
		})
	}
	return nil
}

// restoreVerify streams one backup back and compares its content hash with
// the hash recorded at upload time.
func restoreVerify(client *http.Client, base string, tr *tenantRun, g int, label, mode string) (opRecord, error) {
	url := fmt.Sprintf("%s/v1/backups/%s/restore?mode=%s", base, label, mode)
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return opRecord{}, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return opRecord{}, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	h := sha256.New()
	n, err := io.Copy(h, resp.Body)
	if err != nil {
		return opRecord{}, err
	}
	wall := time.Since(start).Seconds()
	mbps := 0.0
	if wall > 0 {
		mbps = float64(n) / wall / 1e6
	}
	got := hex.EncodeToString(h.Sum(nil))
	verified := got == tr.hashes[g]
	if !verified {
		fmt.Fprintf(os.Stderr, "loadgen: %s: restored hash %s != uploaded %s\n", label, got[:12], tr.hashes[g][:12])
	}
	return opRecord{
		Tenant: tr.name, Label: label, Op: "restore",
		Bytes: n, WallSeconds: wall, MBps: mbps, Verified: verified,
	}, nil
}

// retryAfter parses the server's Retry-After hint (seconds), defaulting to
// a short client-side backoff.
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if d, err := time.ParseDuration(v + "s"); err == nil && d > 0 {
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			return d
		}
	}
	return 100 * time.Millisecond
}

// waitHealthy polls /healthz until the server answers or the budget runs out.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close() //nolint:errcheck // health probe
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: server at %s not reachable: %w", base, err)
			}
			return fmt.Errorf("loadgen: server at %s not healthy", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// percentile returns the p-quantile of sorted (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
