// Command dedupd serves a deduplicating backup store over HTTP: streaming
// multi-tenant ingest and restore on top of the repro engines, with
// per-tenant backpressure and graceful drain. It doubles as its own load
// generator (-loadgen), a seeded client that replays synthetic tenant
// streams against a running server and writes a throughput/latency
// trajectory.
//
// Server:
//
//	dedupd -addr 127.0.0.1:8080 -engine defrag -backend file -store.dir /tmp/st
//
// Endpoints: POST /v1/backups/{label}, GET /v1/backups[/{label}[/restore]],
// DELETE /v1/backups/{label}, POST /v1/compact|check|repair|maintenance,
// GET /v1/stats, GET /healthz. See README "Serving".
//
// SIGINT/SIGTERM triggers a graceful drain: new requests get 503, in-flight
// ingests are cancelled at a segment boundary (the store stays fsck-clean),
// then the store is closed (manifest checkpoint, WAL fold).
//
// Load generator (against an already-running server):
//
//	dedupd -loadgen -addr 127.0.0.1:8080 -loadgen.tenants 4 -loadgen.gens 3 \
//	       -loadgen.out BENCH_PR5.json
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/blockstore"
	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() { cli.Main("dedupd", realMain) }

type serverParams struct {
	addr       string
	engineName string
	alpha      float64
	backend    string
	storeDir   string
	expectedGB float64
	storeData  bool
	workers    int
	// restoreCacheMB budgets the shared sealed-container data cache that
	// single-flights container fetches across concurrent restores (0 = off).
	restoreCacheMB int64

	tenantInflight int
	totalInflight  int
	tenantBWMBps   float64
	drainTimeout   time.Duration
	crashAfter     int
	// crashPoint arms a named blockstore crash point (see
	// internal/blockstore): the process exits uncleanly the next time the
	// backend passes it. Crash-recovery testing only.
	crashPoint string

	maint  repro.MaintenanceOptions
	filter repro.FilterOptions
}

func realMain() error {
	var (
		p         serverParams
		loadgen   = flag.Bool("loadgen", false, "run as load-generating client instead of server")
		lg        loadgenParams
		wallbench = flag.Bool("wallbench", false, "run the in-process GOMAXPROCS × streams wall-clock ingest sweep and exit")
		wb        wallbenchParams

		telAddr   = flag.String("telemetry.addr", "", "serve live /metrics, /debug/snapshot and /debug/pprof on this address")
		telEvents = flag.String("telemetry.events", "", "write JSONL span events to this file")
	)
	flag.StringVar(&p.addr, "addr", "127.0.0.1:8080", "listen address (server) or target address (loadgen)")
	flag.StringVar(&p.engineName, "engine", "defrag", "engine: defrag, ddfs, silo, sparse, idedup")
	flag.Float64Var(&p.alpha, "alpha", 0.1, "DeFrag SPL threshold α")
	flag.StringVar(&p.backend, "backend", "sim", "storage backend: sim (in-memory) or file (durable directory store)")
	flag.StringVar(&p.storeDir, "store.dir", "", "file backend root directory (required for -backend file)")
	flag.Float64Var(&p.expectedGB, "expected.gb", 1, "expected total ingest in GiB (sizes caches, Bloom filter, index)")
	flag.BoolVar(&p.storeData, "store.data", true, "store real chunk bytes so restores return content (disable for timing-only runs)")
	flag.IntVar(&p.workers, "workers", 0, "parallel fingerprinting workers per stream (0 = auto/GOMAXPROCS, 1 = serial)")
	flag.Int64Var(&p.restoreCacheMB, "restore.cache.mb", 64, "shared restore container-cache budget in MiB, single-flighted across concurrent restores (0 = off)")
	flag.IntVar(&p.tenantInflight, "tenant.inflight", 4, "max concurrent ingests per tenant before 429")
	flag.IntVar(&p.totalInflight, "max.inflight", 32, "max concurrent ingests server-wide before 429")
	flag.Float64Var(&p.tenantBWMBps, "tenant.bw.mbps", 0, "per-tenant aggregate upload bandwidth cap in MB/s (0 = unlimited)")
	flag.DurationVar(&p.drainTimeout, "drain.timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	flag.IntVar(&p.crashAfter, "crash.after", 0, "exit without closing the store after N committed ingests (crash-recovery testing, like dedupsim's)")
	flag.StringVar(&p.crashPoint, "crash.point", "", "arm a named blockstore crash point (merge-intent, merge-files); the process exits uncleanly when the backend passes it (crash-recovery testing)")
	flag.BoolVar(&p.maint.Enabled, "maintenance.enabled", false, "start the online maintenance layer (reverse-rewriting re-dedup + container merge) with the store")
	flag.DurationVar(&p.maint.Interval, "maintenance.interval", 0, "background maintenance epoch period (0 = on-demand only, via POST /v1/maintenance)")
	flag.Float64Var(&p.maint.UtilThreshold, "maintenance.util", 0, "merge sealed containers with live fraction below this (0 = default 0.5)")
	flag.Float64Var(&p.maint.FillThreshold, "maintenance.fill", 0, "reverse-remap from containers filled below this fraction (0 = default 0.5)")
	flag.Float64Var(&p.maint.SparseThreshold, "maintenance.sparse", 0, "merge containers the latest backup uses below this fraction (0 = default 0.25)")
	flag.IntVar(&p.maint.MaxBatch, "maintenance.batch", 0, "max containers merged per maintenance epoch (0 = default 8)")
	flag.Float64Var(&p.maint.ThrottleMBps, "maintenance.throttle.mbps", 0, "wall-clock pacing of maintenance data movement in MB/s (0 = unthrottled)")
	flag.BoolVar(&p.filter.Enabled, "filter", false, "enable the prioritized inline filter (DeFrag): poorly clustered streams write through, maintenance re-dedups the spill")
	flag.IntVar(&p.filter.Probation, "filter.probation", 0, "chunks observed per stream before the filter verdict (0 = default 256)")
	flag.Float64Var(&p.filter.MinDupFraction, "filter.mindup", 0, "spill streams with a duplicate share below this (0 = default 0.05)")
	flag.Float64Var(&p.filter.MinClusterScore, "filter.mincluster", 0, "spill streams with a clustered-duplicate share below this (0 = default 0.5)")

	flag.IntVar(&lg.tenants, "loadgen.tenants", 4, "loadgen: concurrent tenant streams")
	flag.IntVar(&lg.gens, "loadgen.gens", 3, "loadgen: backup generations per tenant")
	flag.IntVar(&lg.files, "loadgen.files", 16, "loadgen: files per tenant file system")
	flag.Int64Var(&lg.fileKB, "loadgen.filekb", 256, "loadgen: mean file size in KiB")
	flag.Int64Var(&lg.seed, "seed", 1, "loadgen: workload seed")
	flag.StringVar(&lg.scenario, "loadgen.scenario", "backup", "loadgen: per-tenant workload scenario: backup, primary, workspace, or mixed (rotate tenants across all three)")
	flag.StringVar(&lg.out, "loadgen.out", "BENCH_PR5.json", "loadgen: write the run trajectory to this file")
	flag.StringVar(&lg.stagesOut, "loadgen.stages.out", "BENCH_PR6.json", "loadgen: write the per-stage time breakdown to this file")
	flag.StringVar(&lg.sweep, "loadgen.sweep", "", "loadgen: extra ingest-only phases at these stream counts for the stage sweep (e.g. \"1,2,8\")")
	flag.StringVar(&lg.mode, "loadgen.restore.mode", "pipelined", "loadgen: restore mode to verify with (lru, opt, pipelined, faa)")
	flag.BoolVar(&lg.skipRestore, "loadgen.norestore", false, "loadgen: skip the restore+verify phase")

	flag.StringVar(&wb.out, "wallbench.out", "BENCH_PR7.json", "wallbench: write the sweep report to this file")
	flag.StringVar(&wb.procs, "wallbench.procs", "", "wallbench: GOMAXPROCS values to sweep, e.g. \"1,2,8\" (empty = host setting)")
	flag.StringVar(&wb.streams, "wallbench.streams", "1,2,4,8", "wallbench: stream concurrency values to sweep")
	flag.IntVar(&wb.tenants, "wallbench.tenants", 8, "wallbench: tenants in the fixed workload every cell ingests")
	flag.IntVar(&wb.gens, "wallbench.gens", 2, "wallbench: backup generations per tenant")
	flag.IntVar(&wb.files, "wallbench.files", 8, "wallbench: files per tenant file system")
	flag.Int64Var(&wb.fileKB, "wallbench.filekb", 128, "wallbench: mean file size in KiB")
	flag.Float64Var(&wb.floor, "wallbench.floor", 4.0, "wallbench: minimum 8-vs-1-stream wall speedup (enforced only on hosts with >= 8 CPUs)")
	flag.BoolVar(&wb.restore, "wallbench.restore", false, "wallbench: sweep restore wall-clock scaling (decode workers × cache budgets) instead of ingest")
	flag.StringVar(&wb.restoreOut, "wallbench.restore.out", "BENCH_PR8.json", "wallbench: write the restore sweep report to this file")
	flag.StringVar(&wb.restoreWorkers, "wallbench.restore.workers", "1,2,4,8", "wallbench: restore decode worker counts to sweep")
	flag.StringVar(&wb.restoreCacheMB, "wallbench.restore.cachemb", "0,64", "wallbench: shared sealed-container cache budgets (MB) to sweep; 0 = cache off")
	flag.Float64Var(&wb.restoreFloor, "wallbench.restore.floor", 2.0, "wallbench: minimum 8-vs-1-decode-worker restore wall speedup (enforced only on hosts with >= 8 CPUs)")
	logLevel := flag.String("log.level", "info", "structured log level: debug, info, warn, error")
	noTracing := flag.Bool("tracing.off", false, "disable span tracing (stage counters stay on)")
	flag.Parse()

	telemetry.SetLogLevel(telemetry.ParseLogLevel(*logLevel))
	if *noTracing {
		telemetry.SetTracing(false)
	}
	ep, err := telemetry.StartEndpoint(*telAddr, *telEvents)
	if err != nil {
		return err
	}
	defer ep.Close()
	if a := ep.Addr(); a != "" {
		telemetry.Logger().Info("telemetry endpoint up", "url", "http://"+a+"/metrics")
	}
	if *wallbench {
		wb.seed = lg.seed
		wb.engine = p.engineName
		wb.alpha = p.alpha
		wb.workers = p.workers
		if wb.restore {
			return runWallbenchRestore(wb)
		}
		return runWallbench(wb)
	}
	if *loadgen {
		lg.addr = p.addr
		return runLoadgen(lg)
	}
	return runServer(p)
}

func runServer(p serverParams) error {
	kind, err := repro.ParseEngineKind(p.engineName)
	if err != nil {
		return err
	}
	bkind, err := repro.ParseBackendKind(p.backend)
	if err != nil {
		return err
	}
	if p.crashPoint != "" {
		blockstore.SetCrashPoint(p.crashPoint)
		telemetry.Logger().Warn("crash point armed", "point", p.crashPoint)
	}
	store, err := repro.Open(repro.Options{
		Engine:            kind,
		Alpha:             p.alpha,
		ExpectedBytes:     int64(p.expectedGB * (1 << 30)),
		StoreData:         p.storeData,
		Workers:           p.workers,
		Backend:           bkind,
		Dir:               p.storeDir,
		RestoreCacheBytes: p.restoreCacheMB << 20,
		Maintenance:       p.maint,
		Filter:            p.filter,
	})
	if err != nil {
		return err
	}

	scfg := serve.Config{
		Store:             store,
		MaxTenantInflight: p.tenantInflight,
		MaxTotalInflight:  p.totalInflight,
		TenantBandwidth:   p.tenantBWMBps * 1e6,
	}
	if p.crashAfter > 0 {
		scfg.OnIngest = func(n int) {
			if n >= p.crashAfter {
				// Simulated crash: exit without closing the store, so neither
				// the backend manifest nor the WAL gets a clean shutdown. A
				// later reopen must recover from the WAL alone.
				telemetry.Logger().Warn("simulating crash", "after_ingest", n)
				os.Exit(0)
			}
		}
	}
	srv := serve.New(scfg)
	httpSrv := &http.Server{Addr: p.addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	telemetry.Logger().Info("dedupd serving",
		"url", "http://"+p.addr, "engine", store.Engine(), "backend", store.BackendName())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		store.Close() //nolint:errcheck // listen failure surfaces first
		return err
	case s := <-sig:
		telemetry.Logger().Info("draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), p.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)    // cancel in-flight ingests, wait for handlers
	httpErr := httpSrv.Shutdown(ctx) //nolint:contextcheck // same deadline
	closeErr := store.Close()        // manifest checkpoint + WAL fold
	telemetry.Logger().Info("drained, store closed")
	if drainErr != nil {
		return drainErr
	}
	if httpErr != nil {
		return httpErr
	}
	return closeErr
}
