package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/blockstore"
	"repro/internal/workload"
)

// wallbenchParams configures the -wallbench mode: an in-process GOMAXPROCS ×
// streams ingest sweep measuring real wall-clock scaling of the parallel
// chunk/hash pipeline, written to BENCH_PR7.json. Unlike -loadgen (which
// drives a remote server over HTTP and measures the service), the wallbench
// opens a fresh store per cell and calls the engine directly, so the numbers
// isolate the ingest pipeline from transport.
type wallbenchParams struct {
	out     string
	procs   string // GOMAXPROCS values to sweep ("" = host setting only)
	streams string // stream concurrency values to sweep
	tenants int    // fixed tenant count ingested by every cell
	gens    int
	files   int
	fileKB  int64
	seed    int64
	floor   float64 // minimum 8-vs-1-stream wall speedup when enforced

	// Restore sweep (-wallbench.restore): decode workers × shared-cache
	// budgets restored over the same fixed workload, written to restoreOut.
	restore        bool
	restoreOut     string
	restoreWorkers string // decode worker counts to sweep
	restoreCacheMB string // shared sealed-container cache budgets in MB
	restoreFloor   float64

	engine  string
	alpha   float64
	workers int
}

// wallCell is one sweep cell: the same fixed workload ingested under a
// specific (GOMAXPROCS, stream concurrency) pair.
type wallCell struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Streams      int     `json:"streams"`
	Workers      int     `json:"workers"`
	IngestBytes  int64   `json:"ingestBytes"`
	WallSeconds  float64 `json:"wallSeconds"`
	MBps         float64 `json:"mbps"`
	StoredBytes  int64   `json:"storedBytes"`
	DedupRatio   float64 `json:"dedupRatio"`
	SimSeconds   float64 `json:"simSeconds"`
	AllVerified  bool    `json:"allVerified"`
	RecipeDigest string  `json:"recipeDigest"`
}

// wallSpeedup records, per GOMAXPROCS value, how much faster the highest
// stream count ran than one stream on the identical workload.
type wallSpeedup struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	BaseStreams int     `json:"baseStreams"`
	TopStreams  int     `json:"topStreams"`
	Speedup     float64 `json:"speedup"`
}

// wallReport is BENCH_PR7.json.
type wallReport struct {
	Config struct {
		Engine  string `json:"engine"`
		Tenants int    `json:"tenants"`
		Gens    int    `json:"gens"`
		Files   int    `json:"files"`
		FileKB  int64  `json:"fileKB"`
		Seed    int64  `json:"seed"`
	} `json:"config"`
	HostCPUs int `json:"hostCPUs"`

	// Determinism pins the dual-clock contract at the system level: the same
	// single-stream workload ingested with Workers=1 (serial pipeline) and
	// Workers=auto (parallel pipeline) must produce byte-identical recipes
	// and the same charged simulated time — wall parallelism buys wall time
	// only.
	Determinism struct {
		SerialRecipeDigest   string  `json:"serialRecipeDigest"`
		ParallelRecipeDigest string  `json:"parallelRecipeDigest"`
		RecipesIdentical     bool    `json:"recipesIdentical"`
		SerialSimSeconds     float64 `json:"serialSimSeconds"`
		ParallelSimSeconds   float64 `json:"parallelSimSeconds"`
		SimIdentical         bool    `json:"simIdentical"`
	} `json:"determinism"`

	Cells    []wallCell    `json:"cells"`
	Speedups []wallSpeedup `json:"speedups"`

	// Floor is the acceptance gate: with FloorStreams streams the workload
	// must ingest at least Floor× faster than with one stream. The gate only
	// binds (FloorEnforced) when the host has enough cores for the target
	// parallelism to exist — on smaller runners the sweep still runs and the
	// numbers are recorded, but the floor is advisory.
	Floor         float64 `json:"floor"`
	FloorStreams  int     `json:"floorStreams"`
	FloorEnforced bool    `json:"floorEnforced"`
	Pass          bool    `json:"pass"`
	Note          string  `json:"note"`
}

// wallTenant is one tenant's pre-materialized backup generations; content is
// generated once so every cell ingests identical bytes and generation time
// never pollutes the timed region.
type wallTenant struct {
	name   string
	gens   [][]byte
	hashes []string // sha256 per generation, for restore verification
}

func runWallbench(p wallbenchParams) error {
	procs, err := parseSweep(p.procs)
	if err != nil {
		return fmt.Errorf("wallbench: -wallbench.procs: %w", err)
	}
	if len(procs) == 0 {
		procs = []int{runtime.GOMAXPROCS(0)}
	}
	streams, err := parseSweep(p.streams)
	if err != nil {
		return fmt.Errorf("wallbench: -wallbench.streams: %w", err)
	}
	if len(streams) == 0 {
		streams = []int{1, 2, 4, 8}
	}
	if p.tenants < 1 || p.gens < 1 {
		return fmt.Errorf("wallbench: need at least 1 tenant and 1 generation")
	}

	tenants, err := buildWallWorkload(p)
	if err != nil {
		return err
	}

	rep := wallReport{HostCPUs: runtime.NumCPU(), Floor: p.floor, FloorStreams: 8}
	rep.Config.Engine = p.engine
	rep.Config.Tenants = p.tenants
	rep.Config.Gens = p.gens
	rep.Config.Files = p.files
	rep.Config.FileKB = p.fileKB
	rep.Config.Seed = p.seed
	rep.Note = "each cell ingests the identical pre-materialized workload through a fresh in-process store (sim backend); " +
		"the floor binds only when the host has >= floorStreams CPUs and the sweep includes 1 and floorStreams streams"

	maxProcs := procs[0]
	for _, g := range procs {
		if g > maxProcs {
			maxProcs = g
		}
	}

	// Determinism pair: single stream, serial vs parallel pipeline.
	serialCell, err := runWallCell(p, tenants, maxProcs, 1, 1)
	if err != nil {
		return err
	}
	parCell, err := runWallCell(p, tenants, maxProcs, 1, 0)
	if err != nil {
		return err
	}
	rep.Determinism.SerialRecipeDigest = serialCell.RecipeDigest
	rep.Determinism.ParallelRecipeDigest = parCell.RecipeDigest
	rep.Determinism.RecipesIdentical = serialCell.RecipeDigest == parCell.RecipeDigest
	rep.Determinism.SerialSimSeconds = serialCell.SimSeconds
	rep.Determinism.ParallelSimSeconds = parCell.SimSeconds
	rep.Determinism.SimIdentical = serialCell.SimSeconds == parCell.SimSeconds

	// The sweep proper.
	verified := serialCell.AllVerified && parCell.AllVerified
	storedWant := serialCell.StoredBytes
	storedConsistent := parCell.StoredBytes == storedWant
	for _, g := range procs {
		for _, s := range streams {
			cell, err := runWallCell(p, tenants, g, s, p.workers)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			verified = verified && cell.AllVerified
			storedConsistent = storedConsistent && cell.StoredBytes == storedWant
			fmt.Printf("wallbench: GOMAXPROCS=%d streams=%d: %.1f MB in %.3fs (%.1f MB/s, dedup %.2fx)\n",
				g, s, float64(cell.IngestBytes)/1e6, cell.WallSeconds, cell.MBps, cell.DedupRatio)
		}
	}

	// Per-GOMAXPROCS speedup: slowest-streams cell vs highest-streams cell.
	for _, g := range procs {
		var base, top *wallCell
		for i := range rep.Cells {
			c := &rep.Cells[i]
			if c.GOMAXPROCS != g {
				continue
			}
			if base == nil || c.Streams < base.Streams {
				base = c
			}
			if top == nil || c.Streams > top.Streams {
				top = c
			}
		}
		if base == nil || top == nil || base.Streams == top.Streams || top.WallSeconds == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, wallSpeedup{
			GOMAXPROCS: g, BaseStreams: base.Streams, TopStreams: top.Streams,
			Speedup: base.WallSeconds / top.WallSeconds,
		})
	}

	// The floor gate: enforced only where the parallelism it asserts can
	// physically exist.
	rep.Pass = verified && storedConsistent && rep.Determinism.RecipesIdentical && rep.Determinism.SimIdentical
	var gateSpeedup float64
	for _, sp := range rep.Speedups {
		if sp.GOMAXPROCS >= rep.FloorStreams && sp.BaseStreams == 1 && sp.TopStreams >= rep.FloorStreams {
			rep.FloorEnforced = runtime.NumCPU() >= rep.FloorStreams
			gateSpeedup = sp.Speedup
		}
	}
	if rep.FloorEnforced && gateSpeedup < rep.Floor {
		rep.Pass = false
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(p.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wallbench: report → %s (pass=%v, floorEnforced=%v", p.out, rep.Pass, rep.FloorEnforced)
	if gateSpeedup > 0 {
		fmt.Printf(", %d-stream speedup %.2fx vs floor %.1fx", rep.FloorStreams, gateSpeedup, rep.Floor)
	}
	fmt.Println(")")

	switch {
	case !verified:
		return fmt.Errorf("wallbench: restored content diverged from ingested content")
	case !storedConsistent:
		return fmt.Errorf("wallbench: stored bytes (dedup outcome) differ across cells")
	case !rep.Determinism.RecipesIdentical:
		return fmt.Errorf("wallbench: parallel pipeline produced different recipes than serial")
	case !rep.Determinism.SimIdentical:
		return fmt.Errorf("wallbench: parallel pipeline altered charged simulated time")
	case !rep.Pass:
		return fmt.Errorf("wallbench: %d-stream speedup %.2fx below floor %.1fx", rep.FloorStreams, gateSpeedup, rep.Floor)
	}
	return nil
}

// buildWallWorkload materializes every tenant's generations up front.
func buildWallWorkload(p wallbenchParams) ([]*wallTenant, error) {
	tenants := make([]*wallTenant, p.tenants)
	for t := range tenants {
		cfg := workload.DefaultConfig(p.seed*1000003 + int64(t)*7919)
		cfg.NumFiles = p.files
		cfg.MeanFileSize = p.fileKB << 10
		sched, err := workload.NewSingle(cfg)
		if err != nil {
			return nil, err
		}
		wt := &wallTenant{name: fmt.Sprintf("t%d", t)}
		for g := 0; g < p.gens; g++ {
			bk := sched.Next()
			data, err := io.ReadAll(bk.Stream)
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(data)
			wt.gens = append(wt.gens, data)
			wt.hashes = append(wt.hashes, hex.EncodeToString(sum[:]))
		}
		tenants[t] = wt
	}
	return tenants, nil
}

// runWallCell ingests the full workload into a fresh store under the given
// GOMAXPROCS and stream concurrency: each generation is one BackupStreams
// round over all tenants (generations stay sequential per tenant, which is
// what makes them dedup against each other), and only the ingest calls are
// inside the timed region.
func runWallCell(p wallbenchParams, tenants []*wallTenant, gomaxprocs, streamConc, workers int) (wallCell, error) {
	cell := wallCell{GOMAXPROCS: gomaxprocs, Streams: streamConc, Workers: workers}
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)

	kind, err := repro.ParseEngineKind(p.engine)
	if err != nil {
		return cell, err
	}
	var logical int64
	for _, t := range tenants {
		for _, g := range t.gens {
			logical += int64(len(g))
		}
	}
	st, err := repro.Open(repro.Options{
		Engine:        kind,
		Alpha:         p.alpha,
		ExpectedBytes: logical,
		StoreData:     true,
		Workers:       workers,
	})
	if err != nil {
		return cell, err
	}
	defer st.Close() //nolint:errcheck // sim backend; read errors surface below

	ctx := context.Background()
	var wall time.Duration
	for g := 0; g < p.gens; g++ {
		inputs := make([]repro.StreamInput, len(tenants))
		for i, t := range tenants {
			inputs[i] = repro.StreamInput{
				Label:  fmt.Sprintf("%s/gen%d", t.name, g),
				Stream: bytes.NewReader(t.gens[g]),
			}
		}
		t0 := time.Now()
		if _, _, err := st.BackupStreams(ctx, inputs, streamConc); err != nil {
			return cell, fmt.Errorf("wallbench: gen %d: %w", g, err)
		}
		wall += time.Since(t0)
	}

	cell.IngestBytes = logical
	cell.WallSeconds = wall.Seconds()
	if cell.WallSeconds > 0 {
		cell.MBps = float64(logical) / cell.WallSeconds / 1e6
	}
	stats := st.Stats()
	cell.StoredBytes = stats.StoredBytes
	cell.DedupRatio = stats.CompressionRatio
	cell.SimSeconds = st.SimulatedTime().Seconds()

	// Restore-verify every backup against the hash recorded at generation
	// time, and digest every recipe (in ingest label order) so cells can be
	// compared for bit-identical dedup decisions.
	cell.AllVerified = true
	rh := sha256.New()
	for _, t := range tenants {
		for g := range t.gens {
			label := fmt.Sprintf("%s/gen%d", t.name, g)
			b := st.FindBackup(label)
			if b == nil {
				return cell, fmt.Errorf("wallbench: backup %q missing after ingest", label)
			}
			h := sha256.New()
			if _, err := st.Restore(ctx, b, h, true); err != nil {
				return cell, fmt.Errorf("wallbench: restore %q: %w", label, err)
			}
			if hex.EncodeToString(h.Sum(nil)) != t.hashes[g] {
				cell.AllVerified = false
			}
			if err := b.WriteRecipe(rh); err != nil {
				return cell, err
			}
		}
	}
	cell.RecipeDigest = hex.EncodeToString(rh.Sum(nil))
	return cell, nil
}
