package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/blockstore"
)

// wallRestoreCell is one restore-sweep cell: every backup of the fixed
// workload restored concurrently (one stream per tenant) under a specific
// (GOMAXPROCS, decode workers, shared-cache budget) triple.
type wallRestoreCell struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"` // decode/verify pool size (restore workers)
	CacheMB      int64   `json:"cacheMB"` // shared sealed-container cache budget
	RestoreBytes int64   `json:"restoreBytes"`
	WallSeconds  float64 `json:"wallSeconds"`
	MBps         float64 `json:"mbps"`
	// SimSeconds is the sum of per-restore simulated durations. In concurrent
	// cells it is informational, not gated: the simulated device models one
	// shared spindle whose head position concurrent streams contend for, so
	// the charges of wall-overlapping restores depend on their interleaving by
	// design. The knob-invariance of simulated time is gated by the
	// deterministic serial-order Determinism pair instead.
	SimSeconds  float64 `json:"simSeconds"`
	AllVerified bool    `json:"allVerified"`
	Digest      string  `json:"digest"` // sha256 over per-backup content hashes, label order
	CacheHits   uint64  `json:"cacheHits"`
	CacheMisses uint64  `json:"cacheMisses"`
	CacheWaits  uint64  `json:"cacheWaits"`
}

// wallRestoreSpeedup records, per (GOMAXPROCS, cache budget) pair, how much
// faster the highest decode worker count restored than workers=1.
type wallRestoreSpeedup struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	CacheMB     int64   `json:"cacheMB"`
	BaseWorkers int     `json:"baseWorkers"`
	TopWorkers  int     `json:"topWorkers"`
	Speedup     float64 `json:"speedup"`
}

// wallRestoreReport is BENCH_PR8.json.
type wallRestoreReport struct {
	Config struct {
		Engine  string `json:"engine"`
		Tenants int    `json:"tenants"`
		Gens    int    `json:"gens"`
		Files   int    `json:"files"`
		FileKB  int64  `json:"fileKB"`
		Seed    int64  `json:"seed"`
	} `json:"config"`
	HostCPUs int `json:"hostCPUs"`

	// Determinism pins the dual-clock contract for restore: the same backups
	// restored serially (DecodeWorkers=1, no shared cache) and with the knobs
	// maxed (DecodeWorkers=top, largest cache budget) must produce
	// byte-identical content and charge identical simulated time — decode
	// workers and the shared cache buy wall time only. Both passes restore the
	// backups one at a time in a fixed order: simulated charges are only
	// comparable under a deterministic restore order, because concurrent
	// streams contend for the shared simulated disk head by design.
	Determinism struct {
		SerialDigest       string  `json:"serialDigest"`
		ParallelDigest     string  `json:"parallelDigest"`
		ContentIdentical   bool    `json:"contentIdentical"`
		SerialSimSeconds   float64 `json:"serialSimSeconds"`
		ParallelSimSeconds float64 `json:"parallelSimSeconds"`
		SimIdentical       bool    `json:"simIdentical"`
	} `json:"determinism"`

	Cells    []wallRestoreCell    `json:"cells"`
	Speedups []wallRestoreSpeedup `json:"speedups"`

	// Floor is the acceptance gate: with FloorWorkers decode workers the
	// workload must restore at least Floor× faster than with one worker (at
	// the highest GOMAXPROCS and largest cache budget swept). As with the
	// ingest sweep, the gate only binds on hosts with >= FloorWorkers CPUs;
	// elsewhere the numbers are recorded and the floor is advisory.
	Floor         float64 `json:"floor"`
	FloorWorkers  int     `json:"floorWorkers"`
	FloorEnforced bool    `json:"floorEnforced"`
	Pass          bool    `json:"pass"`
	Note          string  `json:"note"`
}

// runWallbenchRestore ingests the fixed workload once and sweeps restore
// wall-clock performance over GOMAXPROCS × decode workers × shared-cache
// budgets, writing BENCH_PR8.json. Every cell restore-verifies every backup
// against the hash recorded at generation time; the report gates on
// byte-identical content across all cells and on the serial-order
// Determinism pair charging identical simulated time with the knobs off vs
// maxed.
func runWallbenchRestore(p wallbenchParams) error {
	procs, err := parseSweep(p.procs)
	if err != nil {
		return fmt.Errorf("wallbench: -wallbench.procs: %w", err)
	}
	if len(procs) == 0 {
		procs = []int{runtime.GOMAXPROCS(0)}
	}
	workersSweep, err := parseSweep(p.restoreWorkers)
	if err != nil {
		return fmt.Errorf("wallbench: -wallbench.restore.workers: %w", err)
	}
	if len(workersSweep) == 0 {
		workersSweep = []int{1, 2, 4, 8}
	}
	cacheMBs, err := parseBudgetSweep(p.restoreCacheMB)
	if err != nil {
		return fmt.Errorf("wallbench: -wallbench.restore.cachemb: %w", err)
	}
	if len(cacheMBs) == 0 {
		cacheMBs = []int{0, 64}
	}
	if p.tenants < 1 || p.gens < 1 {
		return fmt.Errorf("wallbench: need at least 1 tenant and 1 generation")
	}

	tenants, err := buildWallWorkload(p)
	if err != nil {
		return err
	}

	maxProcs := procs[0]
	for _, g := range procs {
		if g > maxProcs {
			maxProcs = g
		}
	}
	topWorkers := workersSweep[0]
	for _, w := range workersSweep {
		if w > topWorkers {
			topWorkers = w
		}
	}
	maxCacheMB := cacheMBs[0]
	for _, mb := range cacheMBs {
		if mb > maxCacheMB {
			maxCacheMB = mb
		}
	}

	rep := wallRestoreReport{HostCPUs: runtime.NumCPU(), Floor: p.restoreFloor, FloorWorkers: 8}
	rep.Config.Engine = p.engine
	rep.Config.Tenants = p.tenants
	rep.Config.Gens = p.gens
	rep.Config.Files = p.files
	rep.Config.FileKB = p.fileKB
	rep.Config.Seed = p.seed
	rep.Note = "the workload is ingested once; every cell restores all backups concurrently (one stream per tenant) " +
		"through the pipelined path and verifies content hashes; the determinism pair restores serially in a fixed order " +
		"(concurrent restores contend for the shared simulated disk head, so only a deterministic order has comparable " +
		"simulated charges); the floor binds only when the host has >= floorWorkers CPUs and the sweep includes " +
		"workers 1 and floorWorkers"

	// Ingest once, untimed: the sweep measures restores only.
	st, err := openWallRestoreStore(p, tenants, maxProcs)
	if err != nil {
		return err
	}
	defer st.Close() //nolint:errcheck // sim backend; restore errors surface below

	// Determinism pair: serial decode without the shared cache vs decode pool
	// plus the largest cache budget, both restoring in deterministic serial
	// order so their simulated charges are comparable bit-for-bit.
	serialCell, err := runWallRestoreCell(st, tenants, maxProcs, 1, 0, false)
	if err != nil {
		return err
	}
	parCell, err := runWallRestoreCell(st, tenants, maxProcs, topWorkers, int64(maxCacheMB), false)
	if err != nil {
		return err
	}
	rep.Determinism.SerialDigest = serialCell.Digest
	rep.Determinism.ParallelDigest = parCell.Digest
	rep.Determinism.ContentIdentical = serialCell.Digest == parCell.Digest
	rep.Determinism.SerialSimSeconds = serialCell.SimSeconds
	rep.Determinism.ParallelSimSeconds = parCell.SimSeconds
	rep.Determinism.SimIdentical = serialCell.SimSeconds == parCell.SimSeconds

	verified := serialCell.AllVerified && parCell.AllVerified
	consistent := rep.Determinism.ContentIdentical && rep.Determinism.SimIdentical
	for _, g := range procs {
		for _, mb := range cacheMBs {
			for _, w := range workersSweep {
				cell, err := runWallRestoreCell(st, tenants, g, w, int64(mb), true)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				verified = verified && cell.AllVerified
				consistent = consistent && cell.Digest == serialCell.Digest
				fmt.Printf("wallbench: restore GOMAXPROCS=%d workers=%d cache=%dMB: %.1f MB in %.3fs (%.1f MB/s, cache hits=%d misses=%d)\n",
					g, w, mb, float64(cell.RestoreBytes)/1e6, cell.WallSeconds, cell.MBps, cell.CacheHits, cell.CacheMisses)
			}
		}
	}

	// Per-(GOMAXPROCS, budget) speedup: workers=min vs workers=max.
	for _, g := range procs {
		for _, mb := range cacheMBs {
			var base, top *wallRestoreCell
			for i := range rep.Cells {
				c := &rep.Cells[i]
				if c.GOMAXPROCS != g || c.CacheMB != int64(mb) {
					continue
				}
				if base == nil || c.Workers < base.Workers {
					base = c
				}
				if top == nil || c.Workers > top.Workers {
					top = c
				}
			}
			if base == nil || top == nil || base.Workers == top.Workers || top.WallSeconds == 0 {
				continue
			}
			rep.Speedups = append(rep.Speedups, wallRestoreSpeedup{
				GOMAXPROCS: g, CacheMB: int64(mb), BaseWorkers: base.Workers, TopWorkers: top.Workers,
				Speedup: base.WallSeconds / top.WallSeconds,
			})
		}
	}

	rep.Pass = verified && consistent
	var gateSpeedup float64
	for _, sp := range rep.Speedups {
		if sp.GOMAXPROCS >= rep.FloorWorkers && sp.CacheMB == int64(maxCacheMB) &&
			sp.BaseWorkers == 1 && sp.TopWorkers >= rep.FloorWorkers {
			rep.FloorEnforced = runtime.NumCPU() >= rep.FloorWorkers
			gateSpeedup = sp.Speedup
		}
	}
	if rep.FloorEnforced && gateSpeedup < rep.Floor {
		rep.Pass = false
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := blockstore.WriteFileAtomic(p.restoreOut, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wallbench: restore report → %s (pass=%v, floorEnforced=%v", p.restoreOut, rep.Pass, rep.FloorEnforced)
	if gateSpeedup > 0 {
		fmt.Printf(", %d-worker speedup %.2fx vs floor %.1fx", rep.FloorWorkers, gateSpeedup, rep.Floor)
	}
	fmt.Println(")")

	switch {
	case !verified:
		return fmt.Errorf("wallbench: restored content failed hash verification")
	case !rep.Determinism.ContentIdentical:
		return fmt.Errorf("wallbench: parallel restore produced different content than serial")
	case !rep.Determinism.SimIdentical:
		return fmt.Errorf("wallbench: decode workers or cache budget altered charged simulated time")
	case !consistent:
		return fmt.Errorf("wallbench: restored content drifted across sweep cells")
	case !rep.Pass:
		return fmt.Errorf("wallbench: %d-worker restore speedup %.2fx below floor %.1fx", rep.FloorWorkers, gateSpeedup, rep.Floor)
	}
	return nil
}

// parseBudgetSweep parses "0,16,64" into cache budgets; unlike parseSweep,
// zero is a valid entry (cache off).
func parseBudgetSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad budget entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// openWallRestoreStore ingests the full workload once into a fresh store.
func openWallRestoreStore(p wallbenchParams, tenants []*wallTenant, gomaxprocs int) (*repro.Store, error) {
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)

	kind, err := repro.ParseEngineKind(p.engine)
	if err != nil {
		return nil, err
	}
	var logical int64
	for _, t := range tenants {
		for _, g := range t.gens {
			logical += int64(len(g))
		}
	}
	st, err := repro.Open(repro.Options{
		Engine:        kind,
		Alpha:         p.alpha,
		ExpectedBytes: logical,
		StoreData:     true,
		Workers:       p.workers,
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for g := 0; g < p.gens; g++ {
		inputs := make([]repro.StreamInput, len(tenants))
		for i, t := range tenants {
			inputs[i] = repro.StreamInput{
				Label:  fmt.Sprintf("%s/gen%d", t.name, g),
				Stream: bytes.NewReader(t.gens[g]),
			}
		}
		if _, _, err := st.BackupStreams(ctx, inputs, len(tenants)); err != nil {
			st.Close() //nolint:errcheck // ingest error surfaces
			return nil, fmt.Errorf("wallbench: ingest gen %d: %w", g, err)
		}
	}
	return st, nil
}

// runWallRestoreCell restores every backup once with the given decode worker
// count and shared-cache budget, verifying each stream's hash. Concurrent
// cells run one goroutine per tenant (generations sequential within a
// tenant) to measure wall time under multi-tenant load; the determinism
// passes run with concurrent=false, restoring in fixed (tenant, generation)
// order so the shared simulated disk head moves identically on every run and
// the summed simulated charges are exactly reproducible. Only the restore
// calls are inside the timed region.
func runWallRestoreCell(st *repro.Store, tenants []*wallTenant, gomaxprocs, workers int, cacheMB int64, concurrent bool) (wallRestoreCell, error) {
	cell := wallRestoreCell{GOMAXPROCS: gomaxprocs, Workers: workers, CacheMB: cacheMB}
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)

	// A fresh cache per cell: every cell starts cold, so budgets compare
	// fairly and stats are per-cell.
	st.SetRestoreCacheBudget(cacheMB << 20)
	defer st.SetRestoreCacheBudget(0)

	opts := repro.RestoreOptions{
		CacheContainers: 8,
		Policy:          repro.RestoreOPT,
		Workers:         2,
		Coalesce:        true,
		Verify:          true,
		DecodeWorkers:   workers,
	}

	type result struct {
		digests []string
		bytes   int64
		sim     time.Duration
		err     error
	}
	ctx := context.Background()
	results := make([]result, len(tenants))
	restoreTenant := func(ti int, t *wallTenant) {
		res := &results[ti]
		for g := range t.gens {
			label := fmt.Sprintf("%s/gen%d", t.name, g)
			b := st.FindBackup(label)
			if b == nil {
				res.err = fmt.Errorf("wallbench: backup %q missing", label)
				return
			}
			h := sha256.New()
			rst, err := st.RestoreWith(ctx, b, h, opts)
			if err != nil {
				res.err = fmt.Errorf("wallbench: restore %q: %w", label, err)
				return
			}
			res.digests = append(res.digests, hex.EncodeToString(h.Sum(nil)))
			res.bytes += rst.Bytes
			res.sim += rst.Duration
		}
	}
	t0 := time.Now()
	if concurrent {
		var wg sync.WaitGroup
		for ti, t := range tenants {
			wg.Add(1)
			go func(ti int, t *wallTenant) {
				defer wg.Done()
				restoreTenant(ti, t)
			}(ti, t)
		}
		wg.Wait()
	} else {
		for ti, t := range tenants {
			restoreTenant(ti, t)
		}
	}
	cell.WallSeconds = time.Since(t0).Seconds()

	cell.AllVerified = true
	combined := sha256.New()
	var sim time.Duration
	for ti, t := range tenants {
		res := &results[ti]
		if res.err != nil {
			return cell, res.err
		}
		for g := range t.gens {
			if res.digests[g] != t.hashes[g] {
				cell.AllVerified = false
			}
			combined.Write([]byte(res.digests[g]))
		}
		cell.RestoreBytes += res.bytes
		sim += res.sim
	}
	cell.Digest = hex.EncodeToString(combined.Sum(nil))
	cell.SimSeconds = sim.Seconds()
	if cell.WallSeconds > 0 {
		cell.MBps = float64(cell.RestoreBytes) / cell.WallSeconds / 1e6
	}
	if cs, ok := st.RestoreCacheStats(); ok {
		cell.CacheHits, cell.CacheMisses, cell.CacheWaits = cs.Hits, cs.Misses, cs.Waits
	}
	return cell, nil
}
