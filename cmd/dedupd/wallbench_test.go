package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWallbenchSmoke runs the in-process sweep on a tiny workload and checks
// the report's hard invariants: every cell restore-verifies, dedup outcome
// (stored bytes) is identical across cells, and the serial/parallel
// determinism pair matches on both recipes and simulated time.
func TestWallbenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_PR7.json")
	p := wallbenchParams{
		out:     out,
		streams: "1,2",
		tenants: 2,
		gens:    2,
		files:   4,
		fileKB:  64,
		seed:    1,
		floor:   4.0,
		engine:  "defrag",
		alpha:   0.1,
	}
	if err := runWallbench(p); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep wallReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatal("report did not pass")
	}
	if !rep.Determinism.RecipesIdentical || !rep.Determinism.SimIdentical {
		t.Fatalf("determinism pair diverged: %+v", rep.Determinism)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	stored := rep.Cells[0].StoredBytes
	for _, c := range rep.Cells {
		if !c.AllVerified {
			t.Fatalf("cell %+v failed restore verification", c)
		}
		if c.StoredBytes != stored {
			t.Fatalf("dedup outcome differs across cells: %d vs %d", c.StoredBytes, stored)
		}
		if c.IngestBytes == 0 || c.WallSeconds <= 0 {
			t.Fatalf("cell %+v missing measurements", c)
		}
	}
}
