package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWallbenchSmoke runs the in-process sweep on a tiny workload and checks
// the report's hard invariants: every cell restore-verifies, dedup outcome
// (stored bytes) is identical across cells, and the serial/parallel
// determinism pair matches on both recipes and simulated time.
func TestWallbenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_PR7.json")
	p := wallbenchParams{
		out:     out,
		streams: "1,2",
		tenants: 2,
		gens:    2,
		files:   4,
		fileKB:  64,
		seed:    1,
		floor:   4.0,
		engine:  "defrag",
		alpha:   0.1,
	}
	if err := runWallbench(p); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep wallReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatal("report did not pass")
	}
	if !rep.Determinism.RecipesIdentical || !rep.Determinism.SimIdentical {
		t.Fatalf("determinism pair diverged: %+v", rep.Determinism)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	stored := rep.Cells[0].StoredBytes
	for _, c := range rep.Cells {
		if !c.AllVerified {
			t.Fatalf("cell %+v failed restore verification", c)
		}
		if c.StoredBytes != stored {
			t.Fatalf("dedup outcome differs across cells: %d vs %d", c.StoredBytes, stored)
		}
		if c.IngestBytes == 0 || c.WallSeconds <= 0 {
			t.Fatalf("cell %+v missing measurements", c)
		}
	}
}

// TestWallbenchRestoreSmoke runs the restore sweep on a tiny workload and
// checks its hard invariants: every cell hash-verifies its restored content,
// content digests are identical across all cells, the serial-order
// determinism pair matches on both content and simulated charges (per-cell
// simulated time is informational only — concurrent restores contend for the
// shared simulated disk head by design), and the shared cache actually
// absorbed fetches in the budgeted cells.
func TestWallbenchRestoreSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_PR8.json")
	p := wallbenchParams{
		restore:        true,
		restoreOut:     out,
		restoreWorkers: "1,2",
		restoreCacheMB: "0,16",
		restoreFloor:   2.0,
		tenants:        2,
		gens:           2,
		files:          4,
		fileKB:         64,
		seed:           1,
		engine:         "defrag",
		alpha:          0.1,
	}
	if err := runWallbenchRestore(p); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep wallRestoreReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatal("report did not pass")
	}
	if !rep.Determinism.ContentIdentical || !rep.Determinism.SimIdentical {
		t.Fatalf("determinism pair diverged: %+v", rep.Determinism)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	var cachedHits uint64
	for _, c := range rep.Cells {
		if !c.AllVerified {
			t.Fatalf("cell %+v failed hash verification", c)
		}
		if c.Digest != rep.Determinism.SerialDigest {
			t.Fatalf("cell %+v restored different content than the serial baseline", c)
		}
		if c.RestoreBytes == 0 || c.WallSeconds <= 0 || c.SimSeconds <= 0 {
			t.Fatalf("cell %+v missing measurements", c)
		}
		if c.CacheMB == 0 && (c.CacheHits != 0 || c.CacheMisses != 0) {
			t.Fatalf("cache-off cell %+v reported cache traffic", c)
		}
		if c.CacheMB > 0 {
			cachedHits += c.CacheHits + c.CacheWaits
		}
	}
	if cachedHits == 0 {
		t.Fatal("budgeted cells never hit the shared cache")
	}
}
