// Command dedupscan runs real files through the deduplication engines: it
// walks a directory tree, ingests it as one backup stream, optionally
// ingests it again (or a second tree) to measure cross-snapshot redundancy,
// and reports dedup ratio, chunk statistics and placement layout.
//
// This is the "your own data" entry point: everything else in the
// repository drives synthetic workloads; dedupscan answers "what would
// DeFrag do to this directory?"
//
// Usage:
//
//	dedupscan [-engine defrag|ddfs|silo|sparse|idedup] [-alpha α] DIR [DIR2...]
//
// Each DIR is ingested as one backup generation, in order. Ingesting the
// same directory twice shows self-redundancy across snapshots; pointing at
// two versions of a tree shows incremental redundancy.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro"
	"repro/internal/cli"
	"repro/internal/telemetry"
)

func main() { cli.Main("dedupscan", realMain) }

func realMain() error {
	var (
		engineName = flag.String("engine", "defrag", "engine: defrag, ddfs, silo, sparse, idedup")
		alpha      = flag.Float64("alpha", 0.1, "DeFrag SPL threshold α")
		workers    = flag.Int("workers", 0, "parallel fingerprinting workers (0 = auto/GOMAXPROCS, 1 = serial)")
		telAddr    = flag.String("telemetry.addr", "", "serve live /metrics, /debug/snapshot and /debug/pprof on this address")
		telEvents  = flag.String("telemetry.events", "", "write JSONL span events to this file")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return cli.Usagef("usage: dedupscan [flags] DIR [DIR2 ...]")
	}
	ep, err := telemetry.StartEndpoint(*telAddr, *telEvents)
	if err != nil {
		return err
	}
	defer ep.Close()
	if a := ep.Addr(); a != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", a)
	}
	return run(*engineName, *alpha, *workers, flag.Args())
}

func run(engineName string, alpha float64, workers int, dirs []string) error {
	ctx := context.Background()
	kind, err := repro.ParseEngineKind(engineName)
	if err != nil {
		return err
	}
	// Size the engine from the first tree.
	estimate, err := treeSize(dirs[0])
	if err != nil {
		return err
	}
	store, err := repro.Open(repro.Options{
		Engine:        kind,
		Alpha:         alpha,
		ExpectedBytes: estimate * int64(len(dirs)+1),
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	defer store.Close() //nolint:errcheck // sim backend: close cannot fail meaningfully

	for i, dir := range dirs {
		pr, pw := io.Pipe()
		go func(d string) { pw.CloseWithError(streamTree(d, pw)) }(dir)
		b, err := store.Backup(ctx, fmt.Sprintf("scan%02d:%s", i, dir), pr)
		if err != nil {
			return fmt.Errorf("ingesting %s: %w", dir, err)
		}
		st := b.Stats
		fmt.Printf("%-40s %8.1f MB  %7d chunks  new %7.1f MB  dup %7.1f MB  rewritten %6.1f MB\n",
			b.Label, float64(st.LogicalBytes)/1e6, st.Chunks,
			float64(st.UniqueBytes)/1e6, float64(st.DedupedBytes)/1e6, float64(st.RewrittenBytes)/1e6)
		li := b.Layout()
		fmt.Printf("%-40s layout: %d fragments over %d containers, mean run %.0f KB\n",
			"", li.Fragments, li.ContainersTouched, li.MeanRunBytes/1e3)
	}

	s := store.Stats()
	fmt.Printf("\ntotal: %.1f MB logical -> %.1f MB stored (dedup ratio %.2fx, %d containers)\n",
		float64(s.LogicalBytes)/1e6, float64(s.StoredBytes)/1e6, s.CompressionRatio, s.Containers)
	return nil
}

// treeSize sums regular-file sizes under dir.
func treeSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.Type().IsRegular() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

// streamTree writes dir's regular files to w in sorted path order (a stable
// tar-like stream, so re-scanning an unchanged tree reproduces the stream).
func streamTree(dir string, w io.Writer) error {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, p := range paths {
		// Path header delimits files in the stream (tar-metadata stand-in).
		if _, err := fmt.Fprintf(w, "\x00FILE:%s\x00", p); err != nil {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			// Unreadable files are skipped, not fatal: scanning /etc or a
			// homedir always hits a few.
			continue
		}
		_, err = io.Copy(w, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}
