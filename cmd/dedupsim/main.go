// Command dedupsim runs one deduplication engine over a synthetic
// multi-generation backup workload and reports per-generation backup,
// storage, and (optionally) restore measurements.
//
// Usage:
//
//	dedupsim [-engine defrag|ddfs|silo|sparse|idedup] [-gens N] [-alpha α] [flags]
//
// Examples:
//
//	dedupsim -engine ddfs -gens 20             # watch the disk bottleneck emerge
//	dedupsim -engine defrag -alpha 0.2 -restore
//	dedupsim -engine defrag -verify            # end-to-end content verification
//	dedupsim -catalog /tmp/catalog             # save recipes for later analysis
//	dedupsim -scenario primary -filter -gens 16   # primary volumes through the inline filter
//	dedupsim -scenario workspace -streams 4       # tenant workspace trees, 4 tenants
//
// Durable-store workflow (see README "Durability & backends"):
//
//	dedupsim -backend file -store.dir /tmp/st -verify -gens 4              # durable run
//	dedupsim -backend file -store.dir /tmp/st -verify -gens 4 -crash.after 2  # die mid-run
//	dedupsim -backend file -store.dir /tmp/st -verify -fsckonly            # reopen + check
//	dedupsim -backend file -store.dir /tmp/st -verify -fsckonly -repair    # quarantine bad containers
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() { cli.Main("dedupsim", realMain) }

func realMain() error {
	var (
		engineName = flag.String("engine", "defrag", "engine: defrag, ddfs, silo, sparse, idedup")
		gens       = flag.Int("gens", 10, "backup generations to ingest")
		files      = flag.Int("files", 64, "files in the synthetic file system")
		fileKB     = flag.Int64("filekb", 768, "mean file size in KiB")
		alpha      = flag.Float64("alpha", 0.1, "DeFrag SPL threshold α")
		seed       = flag.Int64("seed", 1, "workload seed")
		doRestore  = flag.Bool("restore", false, "restore every generation and report read performance")
		verify     = flag.Bool("verify", false, "store real bytes and verify restored content (implies -restore)")
		rMode      = flag.String("restore.mode", "lru", "restore strategy: lru, opt, pipelined (opt + coalescing + prefetch), faa")
		rCache     = flag.Int("restore.cache", 0, "restore cache capacity in containers (0 = default, 8)")
		rWorkers   = flag.Int("restore.workers", 1, "prefetch lanes for -restore.mode=pipelined (1 = serial)")
		catalog    = flag.String("catalog", "", "directory to write recipe catalogs into")
		workers    = flag.Int("workers", 0, "parallel fingerprinting workers (0 = auto/GOMAXPROCS, 1 = serial)")
		streams    = flag.Int("streams", 1, "concurrent backup streams per round (>1 switches to a multi-user schedule)")
		scenario   = flag.String("scenario", "backup", "workload scenario: backup (multi-generation file sets), primary (hot/cold block volumes), workspace (tenant directory trees)")
		filterOn   = flag.Bool("filter", false, "enable the prioritized inline filter (DeFrag): poorly clustered streams write through and are re-deduped by maintenance")
		check      = flag.Bool("check", false, "run a consistency check (fsck) at the end")
		export     = flag.String("export", "", "directory to export the store archive into")
		backend    = flag.String("backend", "sim", "storage backend: sim (in-memory) or file (durable directory store)")
		storeDir   = flag.String("store.dir", "", "file backend root directory (required for -backend file)")
		faultSeed  = flag.Int64("faults.seed", 0, "fault injector PRNG seed (with any -faults.* rate)")
		faultTrans = flag.Float64("faults.transient", 0, "probability a backend op first fails with a retryable EIO")
		faultTorn  = flag.Float64("faults.torn", 0, "probability a container seal persists only half its data")
		fsckOnly   = flag.Bool("fsckonly", false, "skip ingest: reopen the store (-backend file) and run fsck only")
		repair     = flag.Bool("repair", false, "with -fsckonly: quarantine invariant-failing containers")
		crashAfter = flag.Int("crash.after", 0, "exit without closing the store after N generations (crash-recovery testing)")
		telAddr    = flag.String("telemetry.addr", "", "serve live /metrics, /debug/snapshot and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		telEvents  = flag.String("telemetry.events", "", "write JSONL span events to this file")
		telHold    = flag.Bool("telemetry.hold", false, "after the run, keep the telemetry endpoint serving until interrupted")
	)
	flag.Parse()
	ep, err := telemetry.StartEndpoint(*telAddr, *telEvents)
	if err != nil {
		return err
	}
	defer ep.Close()
	if a := ep.Addr(); a != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", a)
	}
	if err := run(params{*engineName, *gens, *files, *fileKB, *alpha, *seed, *doRestore, *verify, *catalog, *workers, *streams, *scenario, *filterOn, *check, *export, *rMode, *rCache, *rWorkers,
		*backend, *storeDir, *faultSeed, *faultTrans, *faultTorn, *fsckOnly, *repair, *crashAfter}); err != nil {
		return err
	}
	if *telHold && ep.Addr() != "" {
		fmt.Fprintf(os.Stderr, "telemetry: run complete, holding http://%s (Ctrl-C to exit)\n", ep.Addr())
		select {}
	}
	return nil
}

type params struct {
	engineName string
	gens       int
	files      int
	fileKB     int64
	alpha      float64
	seed       int64
	doRestore  bool
	verify     bool
	catalog    string
	workers    int
	streams    int
	scenario   string
	filterOn   bool
	check      bool
	export     string

	restoreMode    string
	restoreCache   int
	restoreWorkers int

	backend    string
	storeDir   string
	faultSeed  int64
	faultTrans float64
	faultTorn  float64
	fsckOnly   bool
	repair     bool
	crashAfter int
}

// restoreOne restores one backup through the strategy selected by
// -restore.mode, sharing the cache/workers knobs across both the
// single-stream and multi-stream paths.
func restoreOne(ctx context.Context, p params, store *repro.Store, b *repro.Backup) (repro.RestoreStats, error) {
	if p.restoreMode == "faa" {
		cache := p.restoreCache
		if cache <= 0 {
			cache = repro.DefaultRestoreOptions().CacheContainers
		}
		return store.RestoreFAA(ctx, b, nil, int64(cache)<<22, p.verify)
	}
	opts := repro.DefaultRestoreOptions()
	opts.Verify = p.verify
	if p.restoreCache > 0 {
		opts.CacheContainers = p.restoreCache
	}
	switch p.restoreMode {
	case "", "lru":
	case "opt":
		opts.Policy = repro.RestoreOPT
	case "pipelined":
		opts.Policy = repro.RestoreOPT
		opts.Coalesce = true
		opts.Workers = p.restoreWorkers
	default:
		return repro.RestoreStats{}, fmt.Errorf("unknown -restore.mode %q (want lru, opt, pipelined or faa)", p.restoreMode)
	}
	return store.RestoreWith(ctx, b, nil, opts)
}

func run(p params) error {
	ctx := context.Background()
	engineName, gens, files, fileKB := p.engineName, p.gens, p.files, p.fileKB
	alpha, seed, doRestore, verify, catalog := p.alpha, p.seed, p.doRestore, p.verify, p.catalog
	kind, err := repro.ParseEngineKind(engineName)
	if err != nil {
		return err
	}
	bkind, err := repro.ParseBackendKind(p.backend)
	if err != nil {
		return err
	}
	wcfg := workload.DefaultConfig(seed)
	wcfg.NumFiles = files
	wcfg.MeanFileSize = fileKB << 10

	nstreams := int64(1)
	if p.streams > 1 {
		nstreams = int64(p.streams)
	}
	sc, err := workload.ParseScenario(p.scenario)
	if err != nil {
		return err
	}
	store, err := repro.Open(repro.Options{
		Engine:          kind,
		Alpha:           alpha,
		ExpectedBytes:   nstreams * int64(gens) * int64(files) * (fileKB << 10),
		StoreData:       verify,
		TrackEfficiency: true,
		Workers:         p.workers,
		Filter:          repro.FilterOptions{Enabled: p.filterOn},
		Backend:         bkind,
		Dir:             p.storeDir,
		Faults: repro.FaultOptions{
			Seed:          p.faultSeed,
			TransientRate: p.faultTrans,
			TornRate:      p.faultTorn,
		},
	})
	if err != nil {
		return err
	}
	defer store.Close() //nolint:errcheck // error paths below surface first
	if p.fsckOnly {
		return runFsck(ctx, p, store)
	}
	if p.streams > 1 && sc == workload.ScenarioBackup {
		return runStreams(ctx, p, store, wcfg)
	}
	var sched workload.Schedule
	if sc == workload.ScenarioBackup {
		sched, err = workload.NewSingle(wcfg)
	} else {
		// Scenario streams are sized from the same -files/-filekb knobs:
		// one backup approximates the whole synthetic file set.
		users := p.streams
		if users < 1 {
			users = 1
		}
		sched, err = workload.NewScenario(sc, workload.ScenarioParams{
			Seed:           seed,
			Users:          users,
			BytesPerStream: int64(files) * (fileKB << 10),
		})
	}
	if err != nil {
		return err
	}

	cols := []string{"gen", "logical_MB", "tput_MBps", "unique_MB", "deduped_MB", "rewritten_MB", "efficiency"}
	if doRestore || verify {
		cols = append(cols, "read_MBps", "fragments")
	}
	tb := metrics.NewTable(cols...)

	for g := 0; g < gens; g++ {
		bk := sched.Next()
		b, err := store.Backup(ctx, bk.Label, bk.Stream)
		if err != nil {
			return err
		}
		row := []string{
			fmt.Sprint(g + 1),
			metrics.MB(b.Stats.LogicalBytes),
			metrics.F1(b.Stats.ThroughputMBps()),
			metrics.MB(b.Stats.UniqueBytes),
			metrics.MB(b.Stats.DedupedBytes),
			metrics.MB(b.Stats.RewrittenBytes),
			metrics.F3(b.Stats.Efficiency()),
		}
		if doRestore || verify {
			rst, err := restoreOne(ctx, p, store, b)
			if err != nil {
				return err
			}
			row = append(row, metrics.F1(rst.ThroughputMBps()), fmt.Sprint(rst.Fragments))
		}
		tb.AddRow(row...)
		if catalog != "" {
			if err := saveCatalog(catalog, b); err != nil {
				return err
			}
		}
		if p.crashAfter > 0 && g+1 >= p.crashAfter {
			// Simulated crash: exit without closing the store, so neither
			// the backend manifest nor the WAL gets a clean shutdown. A
			// later -fsckonly run must recover from the WAL alone.
			fmt.Fprintf(os.Stderr, "dedupsim: simulating crash after generation %d\n", g+1)
			os.Exit(0)
		}
	}

	fmt.Printf("engine: %s  alpha: %.2f  generations: %d\n\n", store.Engine(), alpha, gens)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("\nstorage: %.1f MB logical -> %.1f MB stored in %d containers "+
		"(compression %.2fx, utilization %.1f%%), simulated time %.2fs\n",
		float64(st.LogicalBytes)/1e6, float64(st.StoredBytes)/1e6, st.Containers,
		st.CompressionRatio, st.Utilization*100, store.SimulatedTime().Seconds())
	if verify {
		fmt.Println("content verification: all restored chunks matched their fingerprints")
	}
	if p.check {
		rep, err := store.Check(ctx, verify)
		if err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("fsck found %d problems, first: %s", len(rep.Problems), rep.Problems[0])
		}
		fmt.Printf("fsck: OK (%d containers, %d recipe refs, %d chunks re-hashed)\n",
			rep.Containers, rep.RecipeRefs, rep.HashedChunks)
	}
	if p.export != "" {
		if err := store.Export(ctx, p.export); err != nil {
			return err
		}
		fmt.Printf("archive exported to %s\n", p.export)
	}
	return nil
}

// runFsck reopens an existing durable store (adoption already happened in
// repro.Open), optionally repairs it, checks it, and — with -verify —
// restore-verifies every retained backup end to end.
func runFsck(ctx context.Context, p params, store *repro.Store) error {
	if p.repair {
		rep, err := store.Repair(ctx, p.verify)
		if err != nil {
			return err
		}
		fmt.Printf("repair: quarantined %d containers, dropped %d index entries, lost %d backups\n",
			len(rep.Quarantined), rep.IndexDropped, len(rep.LostBackups))
		for _, cid := range rep.Quarantined {
			fmt.Printf("  container %d: %s\n", cid, rep.Reasons[cid])
		}
		for _, l := range rep.LostBackups {
			fmt.Printf("  lost backup: %s\n", l)
		}
	}
	rep, err := store.Check(ctx, p.verify)
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("fsck found %d problems, first: %s", len(rep.Problems), rep.Problems[0])
	}
	fmt.Printf("fsck: OK (%d containers, %d recipe refs, %d chunks re-hashed, %d backups retained)\n",
		rep.Containers, rep.RecipeRefs, rep.HashedChunks, len(store.Backups()))
	if p.verify {
		for _, b := range store.Backups() {
			if _, err := store.Restore(ctx, b, nil, true); err != nil {
				return fmt.Errorf("restore-verify %s: %w", b.Label, err)
			}
		}
		fmt.Printf("restore-verify: %d backups reconstructed and content-checked\n", len(store.Backups()))
	}
	return nil
}

// runStreams ingests a multi-user schedule with p.streams concurrent backup
// streams per round: each of -gens rounds backs up every user once, up to
// p.streams of them in flight at a time. Each table row is one round's
// merged statistics.
func runStreams(ctx context.Context, p params, store *repro.Store, wcfg workload.Config) error {
	sched, err := workload.NewMultiUser(p.streams, wcfg)
	if err != nil {
		return err
	}
	cols := []string{"round", "logical_MB", "tput_MBps", "unique_MB", "deduped_MB", "rewritten_MB", "efficiency"}
	if p.doRestore || p.verify {
		cols = append(cols, "read_MBps", "fragments")
	}
	tb := metrics.NewTable(cols...)
	for g := 0; g < p.gens; g++ {
		round := sched.NextRound()
		inputs := make([]repro.StreamInput, len(round))
		for i, bk := range round {
			inputs[i] = repro.StreamInput{Label: bk.Label, Stream: bk.Stream}
		}
		backups, merged, err := store.BackupStreams(ctx, inputs, p.streams)
		if err != nil {
			return err
		}
		row := []string{
			fmt.Sprint(g + 1),
			metrics.MB(merged.LogicalBytes),
			metrics.F1(merged.ThroughputMBps()),
			metrics.MB(merged.UniqueBytes),
			metrics.MB(merged.DedupedBytes),
			metrics.MB(merged.RewrittenBytes),
			metrics.F3(merged.Efficiency()),
		}
		if p.doRestore || p.verify {
			var mbps float64
			var frags int
			for _, b := range backups {
				rst, err := restoreOne(ctx, p, store, b)
				if err != nil {
					return err
				}
				mbps += rst.ThroughputMBps()
				frags += rst.Fragments
			}
			if len(backups) > 0 {
				mbps /= float64(len(backups))
			}
			row = append(row, metrics.F1(mbps), fmt.Sprint(frags))
		}
		tb.AddRow(row...)
		if p.catalog != "" {
			for _, b := range backups {
				if err := saveCatalog(p.catalog, b); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("engine: %s  alpha: %.2f  users/streams: %d  rounds: %d\n\n",
		store.Engine(), p.alpha, p.streams, p.gens)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("\nstorage: %.1f MB logical -> %.1f MB stored in %d containers "+
		"(compression %.2fx, utilization %.1f%%), simulated time %.2fs\n",
		float64(st.LogicalBytes)/1e6, float64(st.StoredBytes)/1e6, st.Containers,
		st.CompressionRatio, st.Utilization*100, store.SimulatedTime().Seconds())
	if p.check {
		rep, err := store.Check(ctx, p.verify)
		if err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("fsck found %d problems, first: %s", len(rep.Problems), rep.Problems[0])
		}
		fmt.Printf("fsck: OK (%d containers, %d recipe refs, %d chunks re-hashed)\n",
			rep.Containers, rep.RecipeRefs, rep.HashedChunks)
	}
	return nil
}

func saveCatalog(dir string, b *repro.Backup) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, sanitize(b.Label)+".recipe")
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return b.WriteRecipe(f)
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r == '/' || r == '\\' {
			out[i] = '_'
		}
	}
	return string(out)
}
