// Command defragbench regenerates the paper's evaluation figures as text
// tables, or emits a machine-readable per-generation trajectory.
//
// Usage:
//
//	defragbench [-fig all|2|3|4|5|6|eq1|alpha|ablations] [flags]
//	defragbench -json [-engine defrag] [-gens N] [flags]
//
// Examples:
//
//	defragbench -fig 2                 # DDFS throughput decay (paper Fig. 2)
//	defragbench -fig 4 -backups 30     # shorter throughput comparison
//	defragbench -fig alpha             # the α trade-off sweep
//	defragbench -fig all -files 32     # everything, at reduced scale
//	defragbench -json > bench.jsonl    # one JSONL record per generation
//	defragbench -multistream BENCH_PR2.json   # multi-stream scaling sweep
//	defragbench -restorebench BENCH_PR3.json  # restore strategy sweep (LRU/OPT/FAA/pipelined)
//	defragbench -maintbench BENCH_PR9.json    # online maintenance restore-of-latest curve
//	defragbench -scenariobench BENCH_PR10.json # cross-scenario table + filter ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/telemetry"
)

func main() { cli.Main("defragbench", realMain) }

func realMain() error {
	var (
		fig       = flag.String("fig", "all", "which figure to regenerate: all, 2, 3, 4, 5, 6, eq1, extended, layout, alpha, ablations (comma-separated)")
		seed      = flag.Int64("seed", 42, "workload seed")
		gens      = flag.Int("gens", 20, "generations for single-user experiments (Figs. 2, 3, 6)")
		backups   = flag.Int("backups", 66, "backups for multi-user experiments (Figs. 4, 5)")
		users     = flag.Int("users", 5, "users for multi-user experiments")
		files     = flag.Int("files", 64, "files per user (scale knob, ~0.75 MB each)")
		alpha     = flag.Float64("alpha", 0.1, "DeFrag SPL threshold α")
		csvDir    = flag.String("csvdir", "", "also write each figure as CSV into this directory")
		jsonOut   = flag.Bool("json", false, "emit a per-generation JSONL trajectory to stdout instead of figure tables")
		engine    = flag.String("engine", "defrag", "engine for -json trajectories: defrag, ddfs, silo, sparse, idedup")
		workers   = flag.Int("workers", 0, "parallel fingerprinting workers per backup (0 = auto/GOMAXPROCS, 1 = serial)")
		msOut     = flag.String("multistream", "", "run the multi-stream scaling benchmark and write JSON to this file (\"-\" = stdout)")
		streams   = flag.String("streams", "1,2,4,8", "comma-separated concurrency levels for -multistream")
		rbOut     = flag.String("restorebench", "", "run the restore strategy sweep (LRU/OPT/FAA/pipelined per generation) and write JSON to this file (\"-\" = stdout)")
		mbOut     = flag.String("maintbench", "", "run the maintenance benchmark (restore-of-latest vs generation, with and without the online pass) and write JSON to this file (\"-\" = stdout)")
		sbOut     = flag.String("scenariobench", "", "run the cross-scenario benchmark (backup/primary/workspace table plus the primary inline-filter ablation) and write JSON to this file (\"-\" = stdout)")
		sbRounds  = flag.Int("scenario.rounds", 0, "backups per stream for -scenariobench (0 = default 4)")
		sbBytes   = flag.Int64("scenario.bytes", 0, "approximate bytes per backup for -scenariobench (0 = default 4 MiB)")
		rWorkers  = flag.Int("restore.workers", 8, "prefetch lanes for the pipelined restore (-restorebench and -json restores)")
		rCache    = flag.Int("restore.cache", 0, "restore cache capacity in containers (0 = restore default, 8)")
		telAddr   = flag.String("telemetry.addr", "", "serve live /metrics, /debug/snapshot and /debug/pprof on this address")
		telEvents = flag.String("telemetry.events", "", "write JSONL span events to this file")
	)
	flag.Parse()

	ep, err := telemetry.StartEndpoint(*telAddr, *telEvents)
	if err != nil {
		return err
	}
	defer ep.Close()
	if a := ep.Addr(); a != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", a)
	}

	cfg := repro.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.Generations = *gens
	cfg.Backups = *backups
	cfg.Users = *users
	cfg.FilesPerUser = *files
	cfg.Alpha = *alpha
	cfg.Workers = *workers
	cfg.RestoreCache = *rCache

	if *rbOut != "" {
		return emitRestoreBench(cfg, *engine, *rCache, *rWorkers, *rbOut)
	}
	if *sbOut != "" {
		return emitScenarioBench(repro.ScenarioBenchConfig{
			Seed:           *seed,
			Users:          *users,
			Rounds:         *sbRounds,
			BytesPerStream: *sbBytes,
		}, *sbOut)
	}
	if *mbOut != "" {
		return emitMaintBench(cfg, *mbOut)
	}
	if *msOut != "" {
		return emitMultiStream(cfg, *engine, *streams, *msOut)
	}
	if *jsonOut {
		return emitTrajectory(cfg, *engine)
	}
	return dispatch(*fig, cfg, *csvDir)
}

// emitTrajectory runs one per-generation benchmark trajectory and writes it
// as JSONL (one record per generation: throughput, rewrite ratio, fragments,
// restore performance) so BENCH_*.json files can be captured mechanically.
func emitTrajectory(cfg repro.ExperimentConfig, engineName string) error {
	kind, err := repro.ParseEngineKind(engineName)
	if err != nil {
		return err
	}
	points, err := repro.RunTrajectory(cfg, kind)
	if err != nil {
		return err
	}
	return repro.WriteTrajectoryJSONL(os.Stdout, points)
}

// emitRestoreBench runs the restore strategy sweep — every generation's
// recipe restored through LRU, OPT, FAA and the full pipeline — and writes
// the JSON result (BENCH_PR3.json's format) to out.
func emitRestoreBench(cfg repro.ExperimentConfig, engineName string, cache, workers int, out string) error {
	kind, err := repro.ParseEngineKind(engineName)
	if err != nil {
		return err
	}
	bench, err := repro.RunRestoreBench(cfg, kind, cache, workers)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return repro.WriteRestoreBenchJSON(w, bench)
}

// emitMaintBench runs the maintenance benchmark — the same mutating
// workload ingested into a maintained and an unmaintained DeFrag store,
// restore-of-latest measured every generation — and writes the JSON result
// (BENCH_PR9.json's format) to out.
func emitMaintBench(cfg repro.ExperimentConfig, out string) error {
	bench, err := repro.RunMaintBench(cfg, repro.MaintenanceOptions{})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return repro.WriteMaintBenchJSON(w, bench)
}

// emitScenarioBench runs the cross-scenario benchmark — one seeded run per
// scenario (backup, primary, workspace) through a DeFrag store, every
// restore hash-verified, plus the primary-storage filter-vs-baseline
// ablation — and writes the JSON result (BENCH_PR10.json's format) to out.
func emitScenarioBench(cfg repro.ScenarioBenchConfig, out string) error {
	bench, err := repro.RunScenarioBench(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return repro.WriteScenarioBenchJSON(w, bench)
}

// emitMultiStream runs the multi-stream scaling benchmark — the same
// multi-user schedule ingested at each concurrency level — and writes the
// JSON result (wall and simulated speedups per level) to out.
func emitMultiStream(cfg repro.ExperimentConfig, engineName, levelsCSV, out string) error {
	kind, err := repro.ParseEngineKind(engineName)
	if err != nil {
		return err
	}
	var levels []int
	for _, f := range strings.Split(levelsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -streams level %q", f)
		}
		levels = append(levels, n)
	}
	bench, err := repro.RunMultiStreamBench(cfg, kind, levels)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return repro.WriteMultiStreamJSON(w, bench)
}

func dispatch(fig string, cfg repro.ExperimentConfig, csvDir string) error {
	want := map[string]bool{}
	for _, f := range strings.Split(fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	show := func(res *repro.FigureResult, err error) error {
		if err != nil {
			return err
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			return err
		}
		printSummary(res)
		if csvDir != "" {
			if err := writeCSV(csvDir, res); err != nil {
				return err
			}
		}
		return nil
	}

	if all || want["eq1"] {
		if err := show(repro.RunEquation1()); err != nil {
			return err
		}
	}
	if all || want["2"] {
		if err := show(repro.RunFigure2(cfg)); err != nil {
			return err
		}
	}
	if all || want["3"] {
		if err := show(repro.RunFigure3(cfg)); err != nil {
			return err
		}
	}
	if all || want["4"] || want["5"] {
		c, err := repro.RunComparison(cfg)
		if err != nil {
			return err
		}
		if all || want["4"] {
			if err := show(c.Figure4, nil); err != nil {
				return err
			}
		}
		if all || want["5"] {
			if err := show(c.Figure5, nil); err != nil {
				return err
			}
		}
	}
	if all || want["6"] {
		if err := show(repro.RunFigure6(cfg)); err != nil {
			return err
		}
	}
	if all || want["extended"] {
		if err := show(repro.RunExtendedComparison(cfg)); err != nil {
			return err
		}
	}
	if all || want["layout"] {
		if err := show(repro.RunLayoutAnalysis(cfg)); err != nil {
			return err
		}
	}
	if all || want["alpha"] {
		if err := show(repro.RunAlphaSweep(cfg, nil)); err != nil {
			return err
		}
	}
	if all || want["ablations"] {
		if err := show(repro.RunCacheAblation(cfg, nil)); err != nil {
			return err
		}
		if err := show(repro.RunSegmentAblation(cfg)); err != nil {
			return err
		}
		if err := show(repro.RunContainerAblation(cfg, nil)); err != nil {
			return err
		}
		if err := show(repro.RunRestoreAblation(cfg)); err != nil {
			return err
		}
		if err := show(repro.RunPolicyAblation(cfg)); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV stores the figure as <csvdir>/<slug>.csv.
func writeCSV(dir string, res *repro.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.ToLower(strings.NewReplacer(" ", "_", ":", "", "—", "-").Replace(res.Figure))
	f, err := os.Create(filepath.Join(dir, slug+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteCSV(f)
}

func printSummary(res *repro.FigureResult) {
	if len(res.Summary) == 0 {
		return
	}
	keys := make([]string, 0, len(res.Summary))
	for k := range res.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("summary:")
	for _, k := range keys {
		fmt.Printf("  %-28s %.3f\n", k, res.Summary[k])
	}
	fmt.Println()
}
