package repro

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/workload"
)

func TestCompactEndToEnd(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.2, StoreData: true, ExpectedBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(5)
	wcfg.NumFiles = 8
	sched, err := workload.NewSingle(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var datas [][]byte
	for g := 0; g < 8; g++ {
		b := sched.Next()
		data, err := io.ReadAll(b.Stream)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Backup(context.Background(), b.Label, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		datas = append(datas, data)
	}
	utilBefore := s.Stats().Utilization
	if utilBefore >= 1 {
		t.Skip("workload produced no garbage at this scale")
	}

	cs, err := s.Compact(context.Background(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ContainersScanned == 0 {
		t.Fatal("nothing scanned")
	}
	// Every retained backup must restore bit-exactly after compaction.
	for i, b := range s.Backups() {
		var out bytes.Buffer
		if _, err := s.Restore(context.Background(), b, &out, true); err != nil {
			t.Fatalf("backup %d after compact: %v", i, err)
		}
		if !bytes.Equal(out.Bytes(), datas[i]) {
			t.Fatalf("backup %d content changed by compaction", i)
		}
	}
	// And the store keeps working: one more backup + verified restore.
	b := sched.Next()
	data, _ := io.ReadAll(b.Stream)
	bk, err := s.Backup(context.Background(), b.Label, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := s.Restore(context.Background(), bk, &out, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("post-compact backup corrupted")
	}
}

func TestCompactThresholdValidation(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, ExpectedBytes: 16 << 20})
	if _, err := s.Compact(context.Background(), 1.5); err == nil {
		t.Fatal("bad threshold must error")
	}
}

func TestCompactUnsupportedEngine(t *testing.T) {
	s, _ := Open(Options{Engine: SiLoLike, ExpectedBytes: 16 << 20})
	if _, err := s.Compact(context.Background(), 0.5); err == nil {
		t.Fatal("SiLo has no index; compaction must be rejected")
	}
}

func TestForgetEnablesReclaim(t *testing.T) {
	s, _ := Open(Options{Engine: DeFrag, Alpha: 0.2, ExpectedBytes: 64 << 20})
	wcfg := workload.DefaultConfig(55)
	wcfg.NumFiles = 8
	sched, _ := workload.NewSingle(wcfg)
	for g := 0; g < 6; g++ {
		b := sched.Next()
		if _, err := s.Backup(context.Background(), b.Label, b.Stream); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Forget("g00").Found || !s.Forget("g01").Found || !s.Forget("g02").Found {
		t.Fatal("Forget failed")
	}
	if s.Forget("g00").Found {
		t.Fatal("double Forget should report absence")
	}
	if len(s.Backups()) != 3 {
		t.Fatalf("backups left: %d", len(s.Backups()))
	}
	cs, err := s.Compact(context.Background(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.BytesReclaimed == 0 {
		t.Fatal("forgetting generations should free space under full compaction")
	}
	// Remaining backups must still restore (metadata-only timing restore).
	for _, b := range s.Backups() {
		if _, err := s.Restore(context.Background(), b, nil, false); err != nil {
			t.Fatalf("restore %s after forget+compact: %v", b.Label, err)
		}
	}
}
