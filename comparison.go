package repro

import (
	"fmt"

	"repro/internal/cindex"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Comparison holds the shared multi-user run behind the paper's Figs. 4 and
// 5: the same 66-backup, 5-user schedule ingested independently by all
// three engines.
type Comparison struct {
	Figure4 *FigureResult // deduplication throughput
	Figure5 *FigureResult // deduplication efficiency (DeFrag vs SiLo)
}

// RunComparison ingests cfg.Backups multi-user backups through DDFS-Like,
// SiLo-Like and DeFrag and produces both comparison figures in one pass.
func RunComparison(cfg ExperimentConfig) (*Comparison, error) {
	cfg = cfg.withDefaults()
	gensPerUser := (cfg.Backups + cfg.Users - 1) / cfg.Users

	dd, si, de, err := buildEngines(cfg, cfg.Users, gensPerUser)
	if err != nil {
		return nil, err
	}
	si.SetOracle(cindex.NewOracle())
	de.SetOracle(cindex.NewOracle())

	// Each engine consumes its own identical workload instance (streams are
	// deterministic in the seed, so the three engines see the same bytes).
	mkSched := func() (workload.Schedule, error) {
		return workload.NewMultiUser(cfg.Users, cfg.workloadConfig())
	}
	sdd, err := mkSched()
	if err != nil {
		return nil, err
	}
	ssi, err := mkSched()
	if err != nil {
		return nil, err
	}
	sde, err := mkSched()
	if err != nil {
		return nil, err
	}

	fig4 := &FigureResult{
		Figure:  "Figure 4",
		Title:   "Deduplication throughput: DeFrag vs DDFS-Like vs SiLo-Like (MB/s)",
		Columns: []string{"backup", "label", "ddfs_MBps", "silo_MBps", "defrag_MBps"},
		Summary: map[string]float64{},
	}
	fig5 := &FigureResult{
		Figure:  "Figure 5",
		Title:   "Deduplication efficiency: DeFrag vs SiLo-Like (partially-redundant segments)",
		Columns: []string{"backup", "label", "silo_eff", "defrag_eff", "silo_unremoved_MB", "defrag_rewritten_MB"},
		Summary: map[string]float64{},
	}

	tdd := metrics.NewSeries("ddfs")
	tsi := metrics.NewSeries("silo")
	tde := metrics.NewSeries("defrag")
	esi := metrics.NewSeries("silo-eff")
	ede := metrics.NewSeries("defrag-eff")
	deWins := 0

	for i := 0; i < cfg.Backups; i++ {
		std, _, err := ingest(dd, sdd)
		if err != nil {
			return nil, err
		}
		sts, _, err := ingest(si, ssi)
		if err != nil {
			return nil, err
		}
		ste, _, err := ingest(de, sde)
		if err != nil {
			return nil, err
		}
		tdd.Add(std.ThroughputMBps())
		tsi.Add(sts.ThroughputMBps())
		tde.Add(ste.ThroughputMBps())
		if ste.ThroughputMBps() > sts.ThroughputMBps() {
			deWins++
		}
		fig4.Rows = append(fig4.Rows, []string{
			fmt.Sprint(i + 1), std.Label,
			metrics.F1(std.ThroughputMBps()),
			metrics.F1(sts.ThroughputMBps()),
			metrics.F1(ste.ThroughputMBps()),
		})
		// Efficiency only measures backups that have prior redundancy:
		// the first backup of each user is all-new.
		if i >= cfg.Users {
			esi.Add(sts.Efficiency())
			ede.Add(ste.Efficiency())
			fig5.Rows = append(fig5.Rows, []string{
				fmt.Sprint(i + 1), ste.Label,
				metrics.F3(sts.Efficiency()),
				metrics.F3(ste.Efficiency()),
				metrics.MB(sts.MissedDupBytes),
				metrics.MB(ste.RewrittenBytes),
			})
		}
	}

	fig4.Summary["ddfs_last5_MBps"] = tdd.TailMean(5)
	fig4.Summary["silo_last5_MBps"] = tsi.TailMean(5)
	fig4.Summary["defrag_last5_MBps"] = tde.TailMean(5)
	fig4.Summary["defrag_over_ddfs"] = safeDiv(tde.TailMean(5), tdd.TailMean(5))
	fig4.Summary["defrag_over_silo"] = safeDiv(tde.TailMean(5), tsi.TailMean(5))
	fig4.Summary["defrag_wins_over_silo"] = float64(deWins)

	fig5.Summary["silo_eff_last5"] = esi.TailMean(5)
	fig5.Summary["defrag_eff_last5"] = ede.TailMean(5)
	fig5.Summary["silo_unremoved_last5"] = 1 - esi.TailMean(5)
	fig5.Summary["defrag_unremoved_last5"] = 1 - ede.TailMean(5)

	return &Comparison{Figure4: fig4, Figure5: fig5}, nil
}

// RunFigure4 regenerates the paper's Fig. 4 (throughput comparison).
func RunFigure4(cfg ExperimentConfig) (*FigureResult, error) {
	c, err := RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	return c.Figure4, nil
}

// RunFigure5 regenerates the paper's Fig. 5 (efficiency comparison).
func RunFigure5(cfg ExperimentConfig) (*FigureResult, error) {
	c, err := RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	return c.Figure5, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
