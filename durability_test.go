package repro

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// ingestGens runs n workload generations into s and returns each
// generation's full stream bytes for later content verification.
func ingestGens(t *testing.T, s *Store, seed int64, n int) [][]byte {
	t.Helper()
	wcfg := workload.DefaultConfig(seed)
	wcfg.NumFiles = 8
	sched, err := workload.NewSingle(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var datas [][]byte
	for g := 0; g < n; g++ {
		b := sched.Next()
		data, err := io.ReadAll(b.Stream)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Backup(context.Background(), b.Label, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		datas = append(datas, data)
	}
	return datas
}

// restoreVerifyAll restores every retained backup with verification and
// checks the content against want (indexed by backup order).
func restoreVerifyAll(t *testing.T, s *Store, want [][]byte) {
	t.Helper()
	backups := s.Backups()
	if len(backups) != len(want) {
		t.Fatalf("retained %d backups, want %d", len(backups), len(want))
	}
	for i, b := range backups {
		var out bytes.Buffer
		if _, err := s.Restore(context.Background(), b, &out, true); err != nil {
			t.Fatalf("restoring %s: %v", b.Label, err)
		}
		if !bytes.Equal(out.Bytes(), want[i]) {
			t.Fatalf("backup %s content changed across reopen", b.Label)
		}
	}
}

func TestFileBackendRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Engine:        DeFrag,
		Alpha:         0.1,
		StoreData:     true,
		ExpectedBytes: 64 << 20,
		Backend:       FileBackend,
		Dir:           dir,
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	datas := ingestGens(t, s, 11, 3)
	wantStats := make([]BackupStats, 0, 3)
	for _, b := range s.Backups() {
		wantStats = append(wantStats, b.Stats)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything — containers, index, recipes, stats — must survive the
	// process boundary that Close/Open simulates.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	if got := s2.BackendName(); got != "file" {
		t.Fatalf("BackendName = %q", got)
	}
	backups := s2.Backups()
	if len(backups) != 3 {
		t.Fatalf("reopened store retains %d backups, want 3", len(backups))
	}
	for i, b := range backups {
		if b.Stats != wantStats[i] {
			t.Errorf("backup %d stats drifted across reopen:\n  want %+v\n  got  %+v", i, wantStats[i], b.Stats)
		}
	}
	restoreVerifyAll(t, s2, datas)
	rep, err := s2.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("reopened store fails fsck: %v", rep.Problems)
	}

	// The reopened store keeps deduplicating: re-ingesting generation 0's
	// content must dedupe against the adopted index.
	b4, err := s2.Backup(context.Background(), "again", bytes.NewReader(datas[0]))
	if err != nil {
		t.Fatal(err)
	}
	if b4.Stats.DedupedBytes == 0 {
		t.Fatal("adopted index found no duplicates in previously-stored content")
	}
	var out bytes.Buffer
	if _, err := s2.Restore(context.Background(), b4, &out, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), datas[0]) {
		t.Fatal("post-reopen backup corrupted")
	}
}

func TestFileBackendReopenRequiresAdoptingEngine(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Engine: DeFrag, StoreData: true, ExpectedBytes: 32 << 20, Backend: FileBackend, Dir: dir}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestGens(t, s, 3, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Engine = SiLoLike
	if _, err := Open(bad); err == nil {
		t.Fatal("reopening a populated store with a non-adopting engine must fail")
	}
}

func TestFaultInjectionRecoveryDeterministic(t *testing.T) {
	// Transient faults with a fixed seed: every injected EIO must be
	// absorbed by the retry layer, and two identical runs must agree on
	// every simulated measurement (the injector must not perturb the
	// timing model).
	run := func(dir string) ([]BackupStats, StoreStats) {
		s, err := Open(Options{
			Engine:        DeFrag,
			Alpha:         0.1,
			StoreData:     true,
			ExpectedBytes: 32 << 20,
			Backend:       FileBackend,
			Dir:           dir,
			Faults:        FaultOptions{Seed: 42, TransientRate: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close() //nolint:errcheck
		datas := ingestGens(t, s, 21, 3)
		restoreVerifyAll(t, s, datas)
		var st []BackupStats
		for _, b := range s.Backups() {
			st = append(st, b.Stats)
		}
		return st, s.Stats()
	}
	st1, ss1 := run(t.TempDir())
	st2, ss2 := run(t.TempDir())
	if ss1 != ss2 {
		t.Fatalf("store stats diverged across identical fault-injected runs:\n  %+v\n  %+v", ss1, ss2)
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Fatalf("backup %d stats diverged across identical fault-injected runs", i)
		}
	}
}

func TestBackupCancellationLeavesStoreConsistent(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	data := randStream(4<<20, 77)
	// The reader cancels the context a third of the way through the
	// stream, so the backup dies mid-flight with chunks already placed.
	r := &cancellingReader{r: bytes.NewReader(data), cancel: cancel, after: len(data) / 3}
	if _, err := s.Backup(ctx, "doomed", r); err == nil {
		t.Fatal("cancelled backup must return an error")
	}
	if len(s.Backups()) != 0 {
		t.Fatal("cancelled backup must not be retained")
	}
	rep, err := s.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store inconsistent after cancelled backup: %v", rep.Problems)
	}
	// The store keeps working afterwards.
	b, err := s.Backup(context.Background(), "after", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := s.Restore(context.Background(), b, &out, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("post-cancellation backup corrupted")
	}
}

// cancellingReader cancels its context after delivering roughly `after`
// bytes, then keeps serving the rest of the stream (the pipeline, not the
// reader, must notice the cancellation).
type cancellingReader struct {
	r      *bytes.Reader
	cancel context.CancelFunc
	after  int
	read   int
}

func (c *cancellingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	if c.read >= c.after && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

func TestForgetCompactCheckOnDataStore(t *testing.T) {
	s, err := Open(Options{Engine: DeFrag, Alpha: 0.2, StoreData: true, ExpectedBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	datas := ingestGens(t, s, 55, 5)
	if !s.Forget("gen00").Found && !s.Forget(s.Backups()[0].Label).Found {
		t.Fatal("Forget failed")
	}
	want := datas[1:]
	if _, err := s.Compact(context.Background(), 0.95); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store inconsistent after Forget+Compact: %v", rep.Problems)
	}
	restoreVerifyAll(t, s, want)
}

func TestRepairQuarantinesCorruptContainer(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Engine: DeFrag, Alpha: 0.1, StoreData: true, ExpectedBytes: 32 << 20, Backend: FileBackend, Dir: dir}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestGens(t, s, 31, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the middle of one sealed container's data file — the
	// lying-disk scenario fsck -repair exists for.
	victim := filepath.Join(dir, "containers", "000000.data")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+64 && i < len(raw); i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	rep, err := s2.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck missed the corrupted container")
	}
	rr, err := s2.Repair(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Quarantined) == 0 {
		t.Fatal("repair quarantined nothing")
	}
	// Post-repair the store must be internally consistent again; backups
	// referencing the quarantined container are reported lost and dropped.
	rep2, err := s2.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("store still inconsistent after repair: %v", rep2.Problems)
	}
	if qdir, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(qdir) == 0 {
		t.Fatalf("quarantine directory empty (err=%v)", err)
	}
}
