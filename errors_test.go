package repro

import (
	"context"
	"io"
	"testing"
)

// failAfter yields n pseudo-random bytes then fails — injecting a mid-stream
// read error into every engine's backup path.
type failAfter struct {
	n    int
	seed uint64
}

func (f *failAfter) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	k := len(p)
	if k > f.n {
		k = f.n
	}
	s := f.seed
	for i := 0; i < k; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		p[i] = byte(s)
	}
	f.seed = s
	f.n -= k
	return k, nil
}

func TestBackupStreamErrorPropagatesAllEngines(t *testing.T) {
	eachEngine(t, func(t *testing.T, kind EngineKind) {
		s, err := Open(Options{Engine: kind, ExpectedBytes: 32 << 20, Alpha: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Backup(context.Background(), "boom", &failAfter{n: 3 << 20, seed: 1}); err != io.ErrUnexpectedEOF {
			t.Fatalf("backup error = %v, want ErrUnexpectedEOF", err)
		}
		// A failed backup must not be registered.
		if len(s.Backups()) != 0 {
			t.Fatal("failed backup registered")
		}
		// A second failing stream must also surface its error.
		if _, err := s.Backup(context.Background(), "ok", &failAfter{n: 1 << 20, seed: 2}); err == nil {
			t.Fatal("second failing stream should also error")
		}
		b, err := s.Backup(context.Background(), "fine", readerOf(randStream(1<<20, 3)))
		if err != nil {
			t.Fatalf("backup after failures: %v", err)
		}
		if _, err := s.Restore(context.Background(), b, nil, false); err != nil {
			t.Fatalf("restore after failures: %v", err)
		}
	})
}

func readerOf(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
