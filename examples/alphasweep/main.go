// Alphasweep: explore the paper's α knob (§III-B). The Spatial Locality
// Level threshold trades compression for locality: α = 0 is exact dedup
// (maximum compression, maximum fragmentation); α = 1 rewrites every
// cross-segment duplicate that is not a chunk-for-chunk superset match.
//
//	go run ./examples/alphasweep
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	cfg := repro.DefaultExperimentConfig()
	cfg.Generations = 12
	cfg.FilesPerUser = 32 // keep the sweep quick

	res, err := repro.RunAlphaSweep(cfg, []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reading the table:")
	fmt.Println("  - read_MBps rises with α: rewriting restores spatial locality.")
	fmt.Println("  - compression falls with α: rewritten duplicates cost storage.")
	fmt.Println("  - the paper picks α = 0.1 as the sweet spot (little compression")
	fmt.Println("    sacrificed, most of the locality recovered).")
}
