// Fragmentation: the paper's core observation made visible. Ingest the same
// mutating file system through DDFS-Like and DeFrag side by side, and watch
// data placement de-linearize: fragments per recipe (Eq. 1's N) climb
// steeply under exact dedup, while DeFrag's selective rewriting holds them
// down — and restore bandwidth follows.
//
//	go run ./examples/fragmentation
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

const generations = 12

func main() {
	ctx := context.Background()
	run := func(kind repro.EngineKind) ([]*repro.Backup, []repro.RestoreStats, *repro.Store) {
		store, err := repro.Open(repro.Options{
			Engine:        kind,
			Alpha:         0.1,
			ExpectedBytes: 1 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		wcfg := workload.DefaultConfig(42)
		wcfg.NumFiles = 32
		sched, err := workload.NewSingle(wcfg)
		if err != nil {
			log.Fatal(err)
		}
		var backups []*repro.Backup
		var reads []repro.RestoreStats
		for g := 0; g < generations; g++ {
			b := sched.Next()
			bk, err := store.Backup(ctx, b.Label, b.Stream)
			if err != nil {
				log.Fatal(err)
			}
			rst, err := store.Restore(ctx, bk, nil, false)
			if err != nil {
				log.Fatal(err)
			}
			backups = append(backups, bk)
			reads = append(reads, rst)
		}
		return backups, reads, store
	}

	ddfsB, ddfsR, _ := run(repro.DDFSLike)
	defragB, defragR, defragStore := run(repro.DeFrag)

	fmt.Println("De-linearization of data placement, generation by generation")
	fmt.Println("(fragments = Eq. 1's N: contiguous runs a restore can read with one seek)")
	fmt.Println()
	fmt.Printf("%-4s  %22s  %22s\n", "", "DDFS-Like (exact dedup)", "DeFrag (α=0.1)")
	fmt.Printf("%-4s  %10s %11s  %10s %11s\n", "gen", "fragments", "read MB/s", "fragments", "read MB/s")
	for g := 0; g < generations; g++ {
		fmt.Printf("%-4d  %10d %11.1f  %10d %11.1f\n",
			g+1,
			ddfsB[g].Fragments(), ddfsR[g].ThroughputMBps(),
			defragB[g].Fragments(), defragR[g].ThroughputMBps())
	}

	last := generations - 1
	fmt.Printf("\nAt generation %d, DDFS-Like needs %.1fx more fragments; DeFrag restores %.1fx faster.\n",
		generations,
		float64(ddfsB[last].Fragments())/float64(defragB[last].Fragments()),
		defragR[last].ThroughputMBps()/ddfsR[last].ThroughputMBps())
	st := defragStore.Stats()
	fmt.Printf("DeFrag paid for it with storage: compression %.2fx, container utilization %.1f%%.\n",
		st.CompressionRatio, st.Utilization*100)
}
