// Multiuser: the shape of the paper's Fig. 4–6 dataset — several users'
// file systems backed up round-robin into one deduplicating store (the
// paper used 66 backups of five graduate students, 1.72 TB). Interleaved
// users accelerate de-linearization: each user's duplicates are buried
// under four other users' containers.
//
//	go run ./examples/multiuser
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	const users = 3
	const backups = 18

	store, err := repro.Open(repro.Options{
		Engine:          repro.DeFrag,
		Alpha:           0.1,
		ExpectedBytes:   1 << 30,
		TrackEfficiency: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	wcfg := workload.DefaultConfig(99)
	wcfg.NumFiles = 24
	sched, err := workload.NewMultiUser(users, wcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d users, %d interleaved backups through DeFrag (α=0.1)\n\n", users, backups)
	fmt.Printf("%-3s %-8s %10s %10s %11s %11s %10s\n",
		"#", "label", "size MB", "tput MB/s", "removed MB", "rewritten", "efficiency")
	for i := 0; i < backups; i++ {
		b := sched.Next()
		bk, err := store.Backup(ctx, b.Label, b.Stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %-8s %10.1f %10.1f %11.1f %11.1f %10.3f\n",
			i+1, bk.Label,
			float64(bk.Stats.LogicalBytes)/1e6,
			bk.Stats.ThroughputMBps(),
			float64(bk.Stats.DedupedBytes)/1e6,
			float64(bk.Stats.RewrittenBytes)/1e6,
			bk.Stats.Efficiency())
	}

	st := store.Stats()
	fmt.Printf("\nstore: %.1f MB logical -> %.1f MB stored, compression %.2fx, %d containers, utilization %.1f%%\n",
		float64(st.LogicalBytes)/1e6, float64(st.StoredBytes)/1e6,
		st.CompressionRatio, st.Containers, st.Utilization*100)

	// Cross-user isolation check: restoring any user's latest backup works
	// regardless of the interleaving.
	all := store.Backups()
	rst, err := store.Restore(ctx, all[len(all)-1], nil, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest backup (%s) restores at %.1f MB/s across %d fragments\n",
		rst.Label, rst.ThroughputMBps(), rst.Fragments)
}
