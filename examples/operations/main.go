// Operations: the lifecycle features around the paper's algorithm —
// retention, garbage collection, consistency checking, and persistence.
// Back up a week of generations, expire the oldest, compact the store,
// verify its consistency, export it to disk, and restore from the archive.
//
//	go run ./examples/operations
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	store, err := repro.Open(repro.Options{
		Engine:          repro.DeFrag,
		Alpha:           0.15,
		ExpectedBytes:   256 << 20,
		StoreData:       true,
		TrackEfficiency: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A week of daily backups.
	wcfg := workload.DefaultConfig(123)
	wcfg.NumFiles = 16
	sched, err := workload.NewSingle(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	var lastData []byte
	for day := 0; day < 7; day++ {
		b := sched.Next()
		data, err := io.ReadAll(b.Stream)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := store.Backup(ctx, b.Label, bytes.NewReader(data)); err != nil {
			log.Fatal(err)
		}
		lastData = data
	}
	st := store.Stats()
	fmt.Printf("after 7 backups: %.1f MB stored, utilization %.1f%%, compression %.2fx\n",
		float64(st.StoredBytes)/1e6, st.Utilization*100, st.CompressionRatio)

	// Retention: keep the last 4 days.
	for _, label := range []string{"g00", "g01", "g02"} {
		store.Forget(label)
	}
	cs, err := store.Compact(ctx, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compaction: %d/%d containers collected, %.1f MB reclaimed, %d recipe refs patched\n",
		cs.ContainersCollected, cs.ContainersScanned, float64(cs.BytesReclaimed)/1e6, cs.RecipeRefsPatched)

	// Consistency: every surviving backup's chunks re-hash clean.
	rep, err := store.Check(ctx, true)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.OK() {
		log.Fatalf("consistency check failed: %v", rep.Problems)
	}
	fmt.Printf("fsck: OK (%d containers, %d recipe refs, %d chunks re-hashed)\n",
		rep.Containers, rep.RecipeRefs, rep.HashedChunks)

	// Persistence: export, reopen, restore the latest backup, verify bytes.
	dir, err := os.MkdirTemp("", "defrag-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := store.Export(ctx, dir); err != nil {
		log.Fatal(err)
	}
	arch, err := repro.OpenArchive(ctx, dir)
	if err != nil {
		log.Fatal(err)
	}
	backups := arch.Backups()
	latest := backups[len(backups)-1]
	var out bytes.Buffer
	rst, err := arch.Restore(ctx, latest, &out, true)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), lastData) {
		log.Fatal("archived restore differs from original stream")
	}
	fmt.Printf("archive: %d backups exported to %s; %s restored at %.1f MB/s and verified bit-exact\n",
		len(backups), dir, latest.Label, rst.ThroughputMBps())
}
