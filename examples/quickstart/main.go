// Quickstart: open a DeFrag store, back up three generations of a synthetic
// file system, restore the latest with content verification, and print the
// storage picture.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	// A DeFrag store with the paper's α = 0.1 that keeps real chunk bytes,
	// so restores return actual content.
	store, err := repro.Open(repro.Options{
		Engine:          repro.DeFrag,
		Alpha:           0.1,
		ExpectedBytes:   256 << 20,
		StoreData:       true,
		TrackEfficiency: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three generations of a small mutating file system. Any io.Reader
	// works as a backup source; the workload generator provides realistic
	// multi-generation redundancy.
	wcfg := workload.DefaultConfig(7)
	wcfg.NumFiles = 16
	sched, err := workload.NewSingle(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	var last *repro.Backup
	var lastData []byte
	for g := 0; g < 3; g++ {
		b := sched.Next()
		data, err := io.ReadAll(b.Stream) // captured only to verify below
		if err != nil {
			log.Fatal(err)
		}
		bk, err := store.Backup(ctx, b.Label, bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backup %-7s %6.1f MB at %6.1f MB/s  (new %5.1f MB, removed %5.1f MB, rewritten %4.1f MB)\n",
			bk.Label,
			float64(bk.Stats.LogicalBytes)/1e6, bk.Stats.ThroughputMBps(),
			float64(bk.Stats.UniqueBytes)/1e6, float64(bk.Stats.DedupedBytes)/1e6,
			float64(bk.Stats.RewrittenBytes)/1e6)
		last, lastData = bk, data
	}

	// Restore the latest generation and verify every byte.
	var out bytes.Buffer
	rst, err := store.Restore(ctx, last, &out, true)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), lastData) {
		log.Fatal("restored stream differs from the original")
	}
	fmt.Printf("\nrestore %-7s %6.1f MB at %6.1f MB/s across %d fragments — content verified\n",
		rst.Label, float64(rst.Bytes)/1e6, rst.ThroughputMBps(), rst.Fragments)

	st := store.Stats()
	fmt.Printf("storage: %.1f MB logical -> %.1f MB stored (compression %.2fx, %d containers)\n",
		float64(st.LogicalBytes)/1e6, float64(st.StoredBytes)/1e6, st.CompressionRatio, st.Containers)
}
