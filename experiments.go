package repro

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/engine/silo"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// ExperimentConfig scales the paper-reproduction experiments. The defaults
// regenerate every figure at laptop scale in seconds; raising FilesPerUser
// or MeanFileSize approaches the paper's dataset sizes at proportional cost.
type ExperimentConfig struct {
	Seed         int64
	Generations  int // single-user experiments: Figs. 2, 3, 6 (paper: 20)
	Backups      int // multi-user experiments: Figs. 4, 5 (paper: 66)
	Users        int // multi-user experiments (paper: 5 students)
	FilesPerUser int // workload scale knob
	MeanFileSize int64
	// Alpha is DeFrag's SPL threshold. An explicit 0 is honoured (no
	// rewriting — the α-sweep needs it); a negative value selects the
	// paper's default 0.1. DefaultExperimentConfig sets 0.1.
	Alpha float64
	// Workers parallelizes each backup's fingerprinting stage (see
	// Options.Workers): 0 = auto (GOMAXPROCS), 1 = serial.
	Workers int
	// RestoreCache overrides the restore cache capacity in containers for
	// experiment restores. 0 keeps the restore package default (8).
	RestoreCache int
}

// DefaultExperimentConfig matches the paper's experiment shapes at reduced
// scale (~48 MB per generation).
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Seed:         42,
		Generations:  20,
		Backups:      66,
		Users:        5,
		FilesPerUser: 64,
		MeanFileSize: 768 << 10,
		Alpha:        0.1,
	}
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	d := DefaultExperimentConfig()
	if c.Generations <= 0 {
		c.Generations = d.Generations
	}
	if c.Backups <= 0 {
		c.Backups = d.Backups
	}
	if c.Users <= 0 {
		c.Users = d.Users
	}
	if c.FilesPerUser <= 0 {
		c.FilesPerUser = d.FilesPerUser
	}
	if c.MeanFileSize <= 0 {
		c.MeanFileSize = d.MeanFileSize
	}
	if c.Alpha < 0 {
		c.Alpha = d.Alpha
	}
	return c
}

// workloadConfig builds the workload profile for this experiment scale.
func (c ExperimentConfig) workloadConfig() workload.Config {
	w := workload.DefaultConfig(c.Seed)
	w.NumFiles = c.FilesPerUser
	w.MeanFileSize = c.MeanFileSize
	return w
}

// perGenBytes estimates one generation's logical size.
func (c ExperimentConfig) perGenBytes() int64 {
	return int64(c.FilesPerUser) * c.MeanFileSize
}

// sizing derives the cache/bloom sizing for an experiment from the
// per-user backup lineage, keeping RAM coverage ratios constant across
// scales (the calibration documented in EXPERIMENTS.md): the
// locality-preserved cache covers ~1/20 of one user's ingested containers
// and SiLo's block cache ~1/32 of one user's blocks. bloomBytes sizes the
// Bloom filter and chunk index for the whole store.
func (c ExperimentConfig) sizing(users, gensPerUser int) (bloomBytes int64, lpc, blockCache int) {
	perUserIngest := c.perGenBytes() * int64(gensPerUser)
	lpc = int(perUserIngest / (4 << 20) / 20)
	if lpc < 4 {
		lpc = 4
	}
	blockCache = int(perUserIngest / (3 << 20) / 32)
	if blockCache < 2 {
		blockCache = 2
	}
	bloomBytes = perUserIngest * int64(users)
	return bloomBytes, lpc, blockCache
}

// FigureResult is one regenerated paper figure, as the table of points the
// figure plots plus headline summary values.
type FigureResult struct {
	Figure  string // e.g. "Figure 2"
	Title   string
	Columns []string
	Rows    [][]string
	// Summary holds the headline numbers EXPERIMENTS.md reports
	// (e.g. "ddfs_first_MBps", "ddfs_last_MBps").
	Summary map[string]float64
}

// WriteCSV renders the figure as CSV (header row + data rows), the format
// plotting scripts want.
func (r *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders the figure as an aligned text table.
func (r *FigureResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", r.Figure, r.Title); err != nil {
		return err
	}
	tb := metrics.NewTable(r.Columns...)
	for _, row := range r.Rows {
		tb.AddRow(row...)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ingest runs one backup of sched through eng, returning recipe-free stats.
func ingest(eng engine.Engine, sched workload.Schedule) (engine.BackupStats, *Backup, error) {
	b := sched.Next()
	rec, st, err := eng.Backup(context.Background(), b.Label, b.Stream)
	if err != nil {
		return engine.BackupStats{}, nil, err
	}
	return st, newBackup(b.Label, fromEngineStats(st), rec), nil
}

// RunFigure2 regenerates the paper's Fig. 2: the degradation of DDFS-Like
// deduplication throughput over Generations full backups of one user.
func RunFigure2(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, _ := cfg.sizing(1, cfg.Generations)
	ecfg := ddfs.DefaultConfig(expected)
	ecfg.LPCContainers = lpc
	eng, err := ddfs.New(ecfg)
	if err != nil {
		return nil, err
	}
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		Figure:  "Figure 2",
		Title:   "Degradation of DDFS-Like deduplication throughput over backup generations",
		Columns: []string{"gen", "throughput_MBps", "index_lookups", "meta_prefetches", "deduped_MB"},
		Summary: map[string]float64{},
	}
	tput := metrics.NewSeries("ddfs")
	for g := 0; g < cfg.Generations; g++ {
		st, _, err := ingest(eng, sched)
		if err != nil {
			return nil, err
		}
		tput.Add(st.ThroughputMBps())
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(g + 1),
			metrics.F1(st.ThroughputMBps()),
			fmt.Sprint(st.IndexLookups),
			fmt.Sprint(st.MetaPrefetches),
			metrics.MB(st.DedupedBytes),
		})
	}
	res.Summary["ddfs_first_MBps"] = tput.First()
	res.Summary["ddfs_peak_MBps"] = tput.Max()
	res.Summary["ddfs_last_MBps"] = tput.Last()
	res.Summary["decline_ratio"] = tput.DeclineRatio()
	return res, nil
}

// RunFigure3 regenerates the paper's Fig. 3: the degradation of SiLo-Like
// deduplication efficiency over Generations backups of one user.
func RunFigure3(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, _, bc := cfg.sizing(1, cfg.Generations)
	ecfg := silo.DefaultConfig(expected)
	ecfg.BlockCache = bc
	eng, err := silo.New(ecfg)
	if err != nil {
		return nil, err
	}
	eng.SetOracle(cindex.NewOracle())
	sched, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		Figure:  "Figure 3",
		Title:   "Degradation of SiLo-Like deduplication efficiency over backup generations",
		Columns: []string{"gen", "efficiency", "missed_dup_MB", "sht_hits", "block_reads"},
		Summary: map[string]float64{},
	}
	eff := metrics.NewSeries("silo-eff")
	for g := 0; g < cfg.Generations; g++ {
		st, _, err := ingest(eng, sched)
		if err != nil {
			return nil, err
		}
		if g == 0 {
			continue // generation 1 has no prior redundancy to measure against
		}
		eff.Add(st.Efficiency())
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(g + 1),
			metrics.F3(st.Efficiency()),
			metrics.MB(st.MissedDupBytes),
			fmt.Sprint(st.SHTHits),
			fmt.Sprint(st.BlockReads),
		})
	}
	res.Summary["silo_eff_first"] = eff.First()
	res.Summary["silo_eff_last3"] = eff.TailMean(3)
	res.Summary["decline_ratio"] = eff.DeclineRatio()
	return res, nil
}

// buildEngines builds the three engines sized for one comparison run, all
// on independent clocks and devices (they never contend). users and
// gensPerUser drive the cache-coverage sizing.
func buildEngines(cfg ExperimentConfig, users, gensPerUser int) (*ddfs.Engine, *silo.Engine, *core.Engine, error) {
	expected, lpc, bc := cfg.sizing(users, gensPerUser)
	dcfg0 := ddfs.DefaultConfig(expected)
	dcfg0.LPCContainers = lpc
	dd, err := ddfs.New(dcfg0)
	if err != nil {
		return nil, nil, nil, err
	}
	scfg := silo.DefaultConfig(expected)
	scfg.BlockCache = bc
	si, err := silo.New(scfg)
	if err != nil {
		return nil, nil, nil, err
	}
	dcfg := core.DefaultConfig(expected)
	dcfg.Alpha = cfg.Alpha
	dcfg.LPCContainers = lpc
	de, err := core.New(dcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return dd, si, de, nil
}
