package repro

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast (~6 MB per generation).
func tinyCfg() ExperimentConfig {
	return ExperimentConfig{
		Seed:         42,
		Generations:  10,
		Backups:      12,
		Users:        3,
		FilesPerUser: 8,
		MeanFileSize: 640 << 10,
		Alpha:        0.1,
	}
}

func TestConfigDefaults(t *testing.T) {
	var c ExperimentConfig
	d := c.withDefaults()
	if d.Generations != 20 || d.Backups != 66 || d.Users != 5 || d.Alpha != 0 {
		// Alpha 0 is a legitimate explicit value; only negatives default.
		t.Fatalf("defaults: %+v", d)
	}
	c.Alpha = -1
	if c.withDefaults().Alpha != 0.1 {
		t.Fatal("negative alpha must default to the paper's 0.1")
	}
}

func TestRunFigure2Shape(t *testing.T) {
	res, err := RunFigure2(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The Fig. 2 claim: throughput at the end is below the peak.
	if res.Summary["ddfs_last_MBps"] >= res.Summary["ddfs_peak_MBps"] {
		t.Fatalf("DDFS throughput did not degrade: %+v", res.Summary)
	}
	if res.Summary["decline_ratio"] >= 1 {
		t.Fatalf("decline ratio %v", res.Summary["decline_ratio"])
	}
}

func TestRunFigure3Shape(t *testing.T) {
	res, err := RunFigure3(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // generation 1 is skipped (no prior redundancy)
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Summary["silo_eff_first"]
	last := res.Summary["silo_eff_last3"]
	if first <= 0 || first > 1 || last <= 0 || last > 1 {
		t.Fatalf("efficiency out of range: first=%v last=%v", first, last)
	}
	if last >= first {
		t.Fatalf("SiLo efficiency did not decay: first=%v last3=%v", first, last)
	}
}

func TestRunComparisonShape(t *testing.T) {
	// The efficiency ordering (Fig. 5) only emerges once locality has had
	// generations to decay, so this test runs a longer schedule: 36
	// backups = 12 generations per user.
	cfg := tinyCfg()
	cfg.Backups = 36
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4, f5 := c.Figure4, c.Figure5
	if len(f4.Rows) != 36 {
		t.Fatalf("fig4 rows = %d", len(f4.Rows))
	}
	if len(f5.Rows) != 36-3 { // first backup of each of 3 users skipped
		t.Fatalf("fig5 rows = %d", len(f5.Rows))
	}
	// Fig. 4 claim: DeFrag and SiLo beat DDFS at late generations.
	if f4.Summary["defrag_last5_MBps"] <= f4.Summary["ddfs_last5_MBps"] {
		t.Fatalf("DeFrag should beat DDFS late: %+v", f4.Summary)
	}
	if f4.Summary["silo_last5_MBps"] <= f4.Summary["ddfs_last5_MBps"] {
		t.Fatalf("SiLo should beat DDFS late: %+v", f4.Summary)
	}
	// Fig. 5 claim: DeFrag leaves less redundancy unremoved than SiLo.
	if f5.Summary["defrag_unremoved_last5"] >= f5.Summary["silo_unremoved_last5"] {
		t.Fatalf("DeFrag should out-remove SiLo: %+v", f5.Summary)
	}
}

func TestRunFigure6Shape(t *testing.T) {
	res, err := RunFigure6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Summary["defrag_read_last3_MBps"] <= res.Summary["ddfs_read_last3_MBps"] {
		t.Fatalf("DeFrag read performance should beat DDFS: %+v", res.Summary)
	}
	if res.Summary["defrag_over_ddfs"] <= 1 {
		t.Fatalf("ratio %v", res.Summary["defrag_over_ddfs"])
	}
}

func TestRunEquation1(t *testing.T) {
	res, err := RunEquation1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[1] != row[2] {
			t.Fatalf("predicted %s != measured %s for N=%s", row[1], row[2], row[0])
		}
	}
	if res.Summary["scattered128_ms"] <= res.Summary["contiguous_ms"] {
		t.Fatal("scattering must cost time")
	}
}

func TestRunAlphaSweep(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 8
	res, err := RunAlphaSweep(cfg, []float64{0, 0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// α=0 must rewrite nothing; α=0.8 must rewrite plenty.
	if res.Rows[0][4] != "0.0" {
		t.Fatalf("α=0 rewrote %s MB", res.Rows[0][4])
	}
	if res.Rows[2][4] == "0.0" {
		t.Fatal("α=0.8 rewrote nothing")
	}
}

func TestRunCacheAblation(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunCacheAblation(cfg, []int{2, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRunSegmentAblation(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunSegmentAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRunContainerAblation(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunContainerAblation(cfg, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFigureWriteTable(t *testing.T) {
	res, err := RunEquation1()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Equation 1") || !strings.Contains(out, "fragments_N") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestRunRestoreAblation(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunRestoreAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRunLayoutAnalysis(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 8
	res, err := RunLayoutAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Summary["defrag_final_hitrate"] < res.Summary["ddfs_final_hitrate"] {
		t.Fatalf("DeFrag layout should predict at least DDFS's cacheability: %+v", res.Summary)
	}
}

func TestBackupLayoutAccessor(t *testing.T) {
	s, _ := Open(Options{Engine: DDFSLike, ExpectedBytes: 16 << 20})
	b, err := s.Backup(context.Background(), "l", bytes.NewReader(randStream(2<<20, 91)))
	if err != nil {
		t.Fatal(err)
	}
	li := b.Layout()
	if li.Chunks == 0 || li.Fragments == 0 || li.MeanRunBytes <= 0 {
		t.Fatalf("layout info: %+v", li)
	}
	if li.PredictedHitRate8 < 0 || li.PredictedHitRate8 > 1 {
		t.Fatalf("hit rate out of range: %v", li.PredictedHitRate8)
	}
}

func TestRunPolicyAblation(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunPolicyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0] != "spl" || res.Rows[1][0] != "container" {
		t.Fatalf("policy rows: %v", res.Rows)
	}
}

func TestRunExtendedComparison(t *testing.T) {
	cfg := tinyCfg()
	cfg.Generations = 6
	res, err := RunExtendedComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"ddfs-like", "silo-like", "sparse-index", "idedup", "defrag"} {
		if !names[want] {
			t.Fatalf("missing engine %s: %v", want, names)
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	res, err := RunEquation1()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Rows)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(res.Rows)+1)
	}
	if !strings.HasPrefix(lines[0], "fragments_N,") {
		t.Fatalf("csv header: %q", lines[0])
	}
}
