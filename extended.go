package repro

import (
	"context"
	"fmt"

	"repro/internal/cindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/engine/idedup"
	"repro/internal/engine/silo"
	"repro/internal/engine/sparse"
	"repro/internal/metrics"
	"repro/internal/restore"
	"repro/internal/workload"
)

// RunExtendedComparison goes beyond the paper's three-way evaluation: all
// five engines in this repository — DDFS-Like, SiLo-Like, Sparse-Indexing,
// iDedup and DeFrag — over the same single-user generation schedule,
// reporting the final-generation values of all three headline metrics plus
// storage cost. It situates the paper's contribution among the design
// space its related-work section sketches.
func RunExtendedComparison(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, bc := cfg.sizing(1, cfg.Generations)

	type entry struct {
		name string
		mk   func() (engine.Engine, func(*cindex.Oracle), error)
	}
	engines := []entry{
		{"ddfs-like", func() (engine.Engine, func(*cindex.Oracle), error) {
			c := ddfs.DefaultConfig(expected)
			c.LPCContainers = lpc
			e, err := ddfs.New(c)
			if err != nil {
				return nil, nil, err
			}
			return e, e.SetOracle, nil
		}},
		{"silo-like", func() (engine.Engine, func(*cindex.Oracle), error) {
			c := silo.DefaultConfig(expected)
			c.BlockCache = bc
			e, err := silo.New(c)
			if err != nil {
				return nil, nil, err
			}
			return e, e.SetOracle, nil
		}},
		{"sparse-index", func() (engine.Engine, func(*cindex.Oracle), error) {
			e, err := sparse.New(sparse.DefaultConfig(expected))
			if err != nil {
				return nil, nil, err
			}
			return e, e.SetOracle, nil
		}},
		{"idedup", func() (engine.Engine, func(*cindex.Oracle), error) {
			e, err := idedup.New(idedup.DefaultConfig(expected))
			if err != nil {
				return nil, nil, err
			}
			return e, e.SetOracle, nil
		}},
		{"defrag", func() (engine.Engine, func(*cindex.Oracle), error) {
			c := core.DefaultConfig(expected)
			c.Alpha = cfg.Alpha
			c.LPCContainers = lpc
			e, err := core.New(c)
			if err != nil {
				return nil, nil, err
			}
			return e, e.SetOracle, nil
		}},
	}

	res := &FigureResult{
		Figure:  "Extended comparison",
		Title:   fmt.Sprintf("All five engines, final of %d generations", cfg.Generations),
		Columns: []string{"engine", "tput_MBps", "efficiency", "read_MBps", "fragments", "stored_MB", "compression"},
		Summary: map[string]float64{},
	}

	for _, ent := range engines {
		eng, setOracle, err := ent.mk()
		if err != nil {
			return nil, err
		}
		setOracle(cindex.NewOracle())
		sched, err := workload.NewSingle(cfg.workloadConfig())
		if err != nil {
			return nil, err
		}
		var lastStats engine.BackupStats
		var lastBackup *Backup
		var logical int64
		for g := 0; g < cfg.Generations; g++ {
			st, b, err := ingest(eng, sched)
			if err != nil {
				return nil, err
			}
			lastStats, lastBackup = st, b
			logical += st.LogicalBytes
		}
		rst, err := restore.Run(context.Background(), eng.Containers(), lastBackup.recipe(), restore.DefaultConfig(), nil)
		if err != nil {
			return nil, err
		}
		stored := eng.Containers().StoredBytes()
		compression := 0.0
		if stored > 0 {
			compression = float64(logical) / float64(stored)
		}
		res.Rows = append(res.Rows, []string{
			ent.name,
			metrics.F1(lastStats.ThroughputMBps()),
			metrics.F3(lastStats.Efficiency()),
			metrics.F1(rst.ThroughputMBps()),
			fmt.Sprint(rst.Fragments),
			metrics.MB(stored),
			metrics.F3(compression),
		})
		res.Summary[ent.name+"_tput_MBps"] = lastStats.ThroughputMBps()
		res.Summary[ent.name+"_read_MBps"] = rst.ThroughputMBps()
	}
	return res, nil
}
