package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/metrics"
	"repro/internal/restore"
	"repro/internal/workload"
)

// RunFigure6 regenerates the paper's Fig. 6: data read (restore)
// performance of DeFrag vs DDFS-Like, reconstructing each backup generation
// right after it is ingested.
func RunFigure6(cfg ExperimentConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	expected, lpc, _ := cfg.sizing(1, cfg.Generations)

	dcfg0 := ddfs.DefaultConfig(expected)
	dcfg0.LPCContainers = lpc
	dd, err := ddfs.New(dcfg0)
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultConfig(expected)
	dcfg.Alpha = cfg.Alpha
	dcfg.LPCContainers = lpc
	de, err := core.New(dcfg)
	if err != nil {
		return nil, err
	}
	sdd, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	sde, err := workload.NewSingle(cfg.workloadConfig())
	if err != nil {
		return nil, err
	}

	res := &FigureResult{
		Figure:  "Figure 6",
		Title:   "Data read performance: DeFrag vs DDFS-Like (MB/s restoring each generation)",
		Columns: []string{"gen", "ddfs_read_MBps", "defrag_read_MBps", "ddfs_fragments", "defrag_fragments"},
		Summary: map[string]float64{},
	}
	rdd := metrics.NewSeries("ddfs-read")
	rde := metrics.NewSeries("defrag-read")

	backupAndRestore := func(eng engine.Engine, sched workload.Schedule) (restore.Stats, error) {
		_, b, err := ingest(eng, sched)
		if err != nil {
			return restore.Stats{}, err
		}
		return restore.Run(context.Background(), eng.Containers(), b.recipe(), restore.DefaultConfig(), nil)
	}

	for g := 0; g < cfg.Generations; g++ {
		rstDD, err := backupAndRestore(dd, sdd)
		if err != nil {
			return nil, err
		}
		rstDE, err := backupAndRestore(de, sde)
		if err != nil {
			return nil, err
		}
		rdd.Add(rstDD.ThroughputMBps())
		rde.Add(rstDE.ThroughputMBps())
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(g + 1),
			metrics.F1(rstDD.ThroughputMBps()),
			metrics.F1(rstDE.ThroughputMBps()),
			fmt.Sprint(rstDD.Fragments),
			fmt.Sprint(rstDE.Fragments),
		})
	}
	res.Summary["ddfs_read_last3_MBps"] = rdd.TailMean(3)
	res.Summary["defrag_read_last3_MBps"] = rde.TailMean(3)
	res.Summary["defrag_over_ddfs"] = safeDiv(rde.TailMean(3), rdd.TailMean(3))
	return res, nil
}

// RunEquation1 demonstrates the paper's Eq. 1 on the raw disk model:
// reading one file stored as N scattered fragments costs
// N·T_seek + size/W_seq. Measured values come from the simulated device;
// predicted values from the closed form. They must agree exactly.
func RunEquation1() (*FigureResult, error) {
	model := disk.DefaultModel()
	const fileSize = 64 << 20
	res := &FigureResult{
		Figure:  "Equation 1",
		Title:   "F(read) = N*T_seek + size/W_seq for a 64 MB file in N fragments",
		Columns: []string{"fragments_N", "predicted_ms", "measured_ms", "read_MBps"},
		Summary: map[string]float64{},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		var clk disk.Clock
		dev := disk.NewDevice(model, &clk, false)
		// Lay out N fragments with gaps between them.
		frag := int64(fileSize / n)
		offsets := make([]int64, n)
		for i := range offsets {
			offsets[i] = dev.AppendHole(frag)
			dev.AppendHole(1 << 20) // gap
		}
		clk.Reset()
		for _, off := range offsets {
			dev.AccountRead(off, frag)
		}
		measured := clk.Now()
		predicted := time.Duration(n)*model.Seek + model.ReadTime(int64(n)*frag)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			metrics.F1(float64(predicted.Microseconds()) / 1000),
			metrics.F1(float64(measured.Microseconds()) / 1000),
			metrics.F1(float64(fileSize) / measured.Seconds() / 1e6),
		})
		if n == 1 {
			res.Summary["contiguous_ms"] = measured.Seconds() * 1000
		}
		if n == 128 {
			res.Summary["scattered128_ms"] = measured.Seconds() * 1000
		}
	}
	return res, nil
}
