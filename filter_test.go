package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/workload"
)

// dispersedStream builds a stream whose duplicates all point far behind the
// write head: the bytes of `base` reordered at blockSize granularity with
// fresh unique blocks interleaved. Against a store that already holds many
// containers of newer history, its duplicates never cluster.
func dispersedCopy(base []byte, blockSize int, seed byte) []byte {
	var out bytes.Buffer
	nBlocks := len(base) / blockSize
	for i := 0; i < nBlocks; i++ {
		// Walk base blocks in a stride order so runs break up.
		j := (i*7 + 3) % nBlocks
		out.Write(base[j*blockSize : (j+1)*blockSize])
		if i%4 == 0 {
			fresh := make([]byte, blockSize)
			for k := range fresh {
				fresh[k] = byte(i*131+k*17) ^ seed
			}
			out.Write(fresh)
		}
	}
	return out.Bytes()
}

// TestFilterSpillRoundtripAndRededup is the end-to-end contract for the
// prioritized inline filter: a stream whose duplicates are dispersed is
// demoted to write-through (spill), still restores bit-identically, and the
// maintenance pass's out-of-line re-dedup later reclaims the duplicate
// bytes it wrote through — after which every stream still restores
// bit-identically and fsck stays clean.
func TestFilterSpillRoundtripAndRededup(t *testing.T) {
	s, err := Open(Options{
		Engine:        DeFrag,
		Alpha:         0.1,
		StoreData:     true,
		ExpectedBytes: 64 << 20,
		Filter:        FilterOptions{Enabled: true, Probation: 64, RecencyContainers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck // test teardown

	ctx := context.Background()

	// Cold history: a few MiB of unique data, sealed into containers, so the
	// write head moves well past the base copy before the dispersed stream
	// arrives.
	cfg := workload.DefaultConfig(901)
	cfg.NumFiles = 8
	cfg.MeanFileSize = 256 << 10
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := io.ReadAll(sched.Next().Stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Backup(ctx, "base", bytes.NewReader(base)); err != nil {
		t.Fatal(err)
	}
	// Push the head forward with unrelated unique history.
	for i := 0; i < 3; i++ {
		filler, err := io.ReadAll(sched.Next().Stream)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Backup(ctx, fmt.Sprintf("fill%d", i), bytes.NewReader(filler)); err != nil {
			t.Fatal(err)
		}
	}

	spilly := dispersedCopy(base, 32<<10, 0xA5)
	b, err := s.Backup(ctx, "dispersed", bytes.NewReader(spilly))
	if err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.SpilledStreams == 0 || st.SpilledBytes == 0 {
		t.Fatalf("dispersed stream was not spilled: %+v", st)
	}

	var buf bytes.Buffer
	if _, err := s.Restore(ctx, b, &buf, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), spilly) {
		t.Fatal("spilled stream restored with different bytes")
	}

	// Out-of-line re-dedup must reclaim at least part of what was written
	// through.
	var rededuped int64
	for i := 0; i < 8; i++ {
		ms, err := s.MaintenanceEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rededuped += ms.RefsRededuped
		if ms.RefsRededuped == 0 && ms.RefsRemapped == 0 && ms.ContainersMerged == 0 {
			break
		}
	}
	if rededuped == 0 {
		t.Fatal("maintenance re-dedup reclaimed no spilled refs")
	}

	// The remapped stream must still restore bit-identically.
	buf.Reset()
	if _, err := s.Restore(ctx, b, &buf, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), spilly) {
		t.Fatal("re-deduped stream restored with different bytes")
	}
	rep, err := s.Check(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after re-dedup: %v", rep.Problems)
	}
}

// TestFilterMaintenanceRace hammers maintenance epochs against a live
// primary-scenario ingest with the filter enabled — the exact concurrency
// the out-of-line re-dedup path runs under in production. Run with -race;
// correctness here is "no data race, every stream restores bit-identically,
// fsck clean", not any particular dedup outcome.
func TestFilterMaintenanceRace(t *testing.T) {
	s, err := Open(Options{
		Engine:        DeFrag,
		Alpha:         0.1,
		StoreData:     true,
		ExpectedBytes: 64 << 20,
		Filter:        FilterOptions{Enabled: true, Probation: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck // test teardown

	ctx := context.Background()
	const tenants = 2
	const rounds = 3

	type stream struct {
		label string
		data  []byte
	}
	var (
		mu       sync.Mutex
		ingested []stream
	)

	done := make(chan struct{})
	var maintErr error
	var maintWG sync.WaitGroup
	maintWG.Add(1)
	go func() {
		defer maintWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.MaintenanceEpoch(ctx); err != nil {
				maintErr = err
				return
			}
		}
	}()

	var ingestWG sync.WaitGroup
	errs := make(chan error, tenants)
	for tn := 0; tn < tenants; tn++ {
		ingestWG.Add(1)
		go func(tn int) {
			defer ingestWG.Done()
			sched, err := workload.NewScenario(workload.ScenarioPrimary, workload.ScenarioParams{
				Seed:           int64(70 + tn),
				Users:          2,
				BytesPerStream: 512 << 10,
			})
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds*2; r++ { // 2 volumes per round per tenant
				bk := sched.Next()
				data, err := io.ReadAll(bk.Stream)
				if err != nil {
					errs <- err
					return
				}
				label := fmt.Sprintf("t%d/%s", tn, bk.Label)
				if _, err := s.IngestStream(ctx, label, bytes.NewReader(data)); err != nil {
					errs <- fmt.Errorf("%s: %w", label, err)
					return
				}
				mu.Lock()
				ingested = append(ingested, stream{label, data})
				mu.Unlock()
			}
			errs <- nil
		}(tn)
	}
	ingestWG.Wait()
	close(done)
	maintWG.Wait()
	if maintErr != nil {
		t.Fatalf("maintenance during live ingest: %v", maintErr)
	}
	for tn := 0; tn < tenants; tn++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// One more epoch after quiesce, then verify everything.
	if _, err := s.MaintenanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	for _, st := range ingested {
		b := s.FindBackup(st.label)
		if b == nil {
			t.Fatalf("stream %s not retained", st.label)
		}
		var buf bytes.Buffer
		if _, err := s.Restore(ctx, b, &buf, true); err != nil {
			t.Fatalf("restore %s: %v", st.label, err)
		}
		if !bytes.Equal(buf.Bytes(), st.data) {
			t.Fatalf("stream %s diverged after concurrent maintenance", st.label)
		}
	}
	rep, err := s.Check(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after concurrent maintenance: %v", rep.Problems)
	}
}
