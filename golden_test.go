package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

// goldenTranscript pins the exact simulated measurements of a fixed scenario
// as they were captured immediately before physical I/O moved behind the
// blockstore.Backend interface. The sim backend must be bit-identical to the
// old in-memory container store: any drift in timing, dedup decisions,
// placement, or restore behavior surfaces as a diff here.
const goldenTranscript = `defrag sd=true gen=0 dur=38780401 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
defrag sd=true gen=1 dur=42085073 unique=1642012 deduped=7146768 rewritten=0 lookups=2 prefetch=2 cachehits=764 frags=9 chunks=935
defrag sd=true gen=2 dur=29107713 unique=107419 deduped=8525365 rewritten=139957 lookups=1 prefetch=1 cachehits=921 frags=14 chunks=935
defrag sd=true gen=3 dur=29165589 unique=145258 deduped=8536904 rewritten=111263 lookups=1 prefetch=1 cachehits=920 frags=20 chunks=936
defrag sd=true stored=9438900 containers=5 util=0.973385 simtime=144695256
defrag sd=true restore dur=27256890 creads=5 extents=4 hits=931 bytes=8793425
defrag sd=false gen=0 dur=38780401 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
defrag sd=false gen=1 dur=42085073 unique=1642012 deduped=7146768 rewritten=0 lookups=2 prefetch=2 cachehits=764 frags=9 chunks=935
defrag sd=false gen=2 dur=29107713 unique=107419 deduped=8525365 rewritten=139957 lookups=1 prefetch=1 cachehits=921 frags=14 chunks=935
defrag sd=false gen=3 dur=29165589 unique=145258 deduped=8536904 rewritten=111263 lookups=1 prefetch=1 cachehits=920 frags=20 chunks=936
defrag sd=false stored=9438900 containers=5 util=0.973385 simtime=144695256
defrag sd=false restore dur=27256890 creads=5 extents=4 hits=931 bytes=8793425
ddfs-like sd=false gen=0 dur=38780401 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
ddfs-like sd=false gen=1 dur=42085073 unique=1642012 deduped=7146768 rewritten=0 lookups=2 prefetch=2 cachehits=764 frags=9 chunks=935
ddfs-like sd=false gen=2 dur=28638390 unique=107419 deduped=8665322 rewritten=0 lookups=1 prefetch=1 cachehits=921 frags=14 chunks=935
ddfs-like sd=false gen=3 dur=28792473 unique=145258 deduped=8648167 rewritten=0 lookups=1 prefetch=1 cachehits=920 frags=20 chunks=936
ddfs-like sd=false stored=9187680 containers=5 util=1.000000 simtime=143852817
ddfs-like sd=false restore dur=28837117 creads=5 extents=5 hits=931 bytes=8793425
silo-like sd=false gen=0 dur=42780401 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
silo-like sd=false gen=1 dur=33648460 unique=1642012 deduped=7146768 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=9 chunks=935
silo-like sd=false gen=2 dur=32509684 unique=107419 deduped=8665322 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=14 chunks=935
silo-like sd=false gen=3 dur=28949890 unique=230399 deduped=8563026 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=20 chunks=936
silo-like sd=false stored=9272821 containers=5 util=1.000000 simtime=137888435
silo-like sd=false restore dur=26782378 creads=5 extents=4 hits=931 bytes=8793425
sparse-index sd=false gen=0 dur=42780400 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
sparse-index sd=false gen=1 dur=81791445 unique=1642012 deduped=7146768 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=9 chunks=935
sparse-index sd=false gen=2 dur=108804349 unique=107419 deduped=8665322 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=14 chunks=935
sparse-index sd=false gen=3 dur=141107845 unique=145258 deduped=8648167 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=20 chunks=936
sparse-index sd=false stored=9187680 containers=5 util=1.000000 simtime=374484039
sparse-index sd=false restore dur=28837117 creads=5 extents=5 hits=931 bytes=8793425
idedup sd=false gen=0 dur=38634429 unique=7292991 deduped=0 rewritten=0 lookups=0 prefetch=0 cachehits=0 frags=2 chunks=782
idedup sd=false gen=1 dur=17682111 unique=1642012 deduped=7089673 rewritten=57095 lookups=0 prefetch=0 cachehits=0 frags=9 chunks=935
idedup sd=false gen=2 dur=12818865 unique=107419 deduped=8526192 rewritten=139130 lookups=0 prefetch=0 cachehits=0 frags=12 chunks=935
idedup sd=false gen=3 dur=13029270 unique=145258 deduped=8492028 rewritten=156139 lookups=0 prefetch=0 cachehits=0 frags=14 chunks=936
idedup sd=false stored=9540044 containers=5 util=1.000000 simtime=82164675
idedup sd=false restore dur=26583985 creads=5 extents=5 hits=931 bytes=8793425
`

// goldenRun replays the pinned scenario for one engine and appends its
// formatted measurements to w in the transcript's line format.
func goldenRun(t *testing.T, kind EngineKind, storeData bool, w *strings.Builder) {
	t.Helper()
	ctx := context.Background()
	cfg := workload.DefaultConfig(7)
	cfg.NumFiles = 8
	cfg.MeanFileSize = 640 << 10
	st, err := Open(Options{Engine: kind, Alpha: 0.1, ExpectedBytes: 64 << 20, StoreData: storeData, TrackEfficiency: true})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		bk := sched.Next()
		b, err := st.Backup(ctx, bk.Label, bk.Stream)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(w, "%s sd=%v gen=%d dur=%d unique=%d deduped=%d rewritten=%d lookups=%d prefetch=%d cachehits=%d frags=%d chunks=%d\n",
			kind, storeData, g, b.Stats.Duration.Nanoseconds(), b.Stats.UniqueBytes, b.Stats.DedupedBytes,
			b.Stats.RewrittenBytes, b.Stats.IndexLookups, b.Stats.MetaPrefetches, b.Stats.CacheHits,
			b.Fragments(), b.Chunks())
	}
	ss := st.Stats()
	fmt.Fprintf(w, "%s sd=%v stored=%d containers=%d util=%.6f simtime=%d\n",
		kind, storeData, ss.StoredBytes, ss.Containers, ss.Utilization, st.SimulatedTime().Nanoseconds())
	last := st.Backups()[len(st.Backups())-1]
	r, err := st.RestoreWith(ctx, last, nil, RestoreOptions{CacheContainers: 8, Policy: RestoreOPT, Coalesce: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(w, "%s sd=%v restore dur=%d creads=%d extents=%d hits=%d bytes=%d\n",
		kind, storeData, r.Duration.Nanoseconds(), r.ContainerReads, r.ExtentReads, r.CacheHits, r.Bytes)
}

func TestSimBackendMatchesPreRefactorGolden(t *testing.T) {
	var got strings.Builder
	goldenRun(t, DeFrag, true, &got)
	goldenRun(t, DeFrag, false, &got)
	goldenRun(t, DDFSLike, false, &got)
	goldenRun(t, SiLoLike, false, &got)
	goldenRun(t, SparseIndex, false, &got)
	goldenRun(t, IDedup, false, &got)

	if got.String() != goldenTranscript {
		wantLines := strings.Split(goldenTranscript, "\n")
		gotLines := strings.Split(got.String(), "\n")
		for i := range wantLines {
			g := ""
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if g != wantLines[i] {
				t.Errorf("line %d:\n  want %q\n  got  %q", i+1, wantLines[i], g)
			}
		}
		t.Fatal("sim backend diverged from pre-refactor measurements")
	}
}
