// Package analysis quantifies the de-linearization of data placement — the
// paper's central concept — for a backup recipe.
//
// Given the ordered chunk references of one stream, it derives:
//
//   - Fragments: maximal physically-contiguous runs (Eq. 1's N);
//   - container switch counts and distinct-container footprints;
//   - the LRU stack-distance profile of the container reference sequence,
//     from which the hit rate of *any* container-granular LRU cache (the
//     locality-preserved cache, the restore cache) can be predicted without
//     re-running the engine.
//
// The stack-distance profile is the formal version of the paper's
// "weakening spatial locality": as placement de-linearizes across backup
// generations, the profile's mass shifts to larger distances, and every
// fixed-size cache's hit rate falls accordingly.
package analysis

import (
	"fmt"

	"repro/internal/chunk"
)

// Layout is the placement profile of one recipe.
type Layout struct {
	Chunks    int
	Bytes     int64
	Fragments int // Eq. 1's N: physically contiguous runs

	ContainersTouched int // distinct containers referenced
	ContainerSwitches int // positions where the container differs from the previous chunk's
	MeanRunBytes      float64

	// StackDistances[d] counts container references whose LRU stack
	// distance is d (0 = same container as an earlier reference with no
	// distinct containers in between, i.e. a guaranteed hit in any cache).
	// ColdMisses counts first-ever references (infinite distance).
	StackDistances []int
	ColdMisses     int
}

// Analyze computes the layout profile of a recipe.
func Analyze(r *chunk.Recipe) *Layout {
	l := &Layout{
		Chunks:    r.Len(),
		Bytes:     r.Bytes(),
		Fragments: r.Fragments(),
	}
	if r.Len() == 0 {
		return l
	}

	// Container switch/run statistics.
	seen := make(map[uint32]struct{})
	last := r.Refs[0].Loc.Container
	seen[last] = struct{}{}
	for i := 1; i < len(r.Refs); i++ {
		c := r.Refs[i].Loc.Container
		if c != last {
			l.ContainerSwitches++
			last = c
		}
		seen[c] = struct{}{}
	}
	l.ContainersTouched = len(seen)
	l.MeanRunBytes = float64(l.Bytes) / float64(l.Fragments)

	// LRU stack distances over the per-switch container sequence. Distance
	// is computed per *container run* (consecutive same-container chunks
	// are one reference): that is exactly how a container-granular cache
	// sees the stream.
	var stack []uint32 // most recent first
	ref := func(c uint32) {
		for i, x := range stack {
			if x == c {
				// distance = number of distinct containers since last use.
				l.bump(i)
				copy(stack[1:], stack[:i])
				stack[0] = c
				return
			}
		}
		l.ColdMisses++
		stack = append([]uint32{c}, stack...)
	}
	last = r.Refs[0].Loc.Container
	ref(last)
	for i := 1; i < len(r.Refs); i++ {
		c := r.Refs[i].Loc.Container
		if c != last {
			ref(c)
			last = c
		}
	}
	return l
}

func (l *Layout) bump(d int) {
	for len(l.StackDistances) <= d {
		l.StackDistances = append(l.StackDistances, 0)
	}
	l.StackDistances[d]++
}

// References returns the number of container-run references the stack
// profile covers (cold misses included).
func (l *Layout) References() int {
	n := l.ColdMisses
	for _, c := range l.StackDistances {
		n += c
	}
	return n
}

// PredictedHitRate returns the hit rate an LRU cache of the given container
// capacity would achieve over this recipe's container reference sequence:
// references at stack distance < capacity hit; deeper ones and cold misses
// miss. This is Mattson's classic inclusion property — one pass predicts
// every capacity.
func (l *Layout) PredictedHitRate(capacity int) float64 {
	total := l.References()
	if total == 0 || capacity <= 0 {
		return 0
	}
	hits := 0
	for d, c := range l.StackDistances {
		if d < capacity {
			hits += c
		}
	}
	return float64(hits) / float64(total)
}

// MeanStackDistance returns the mean finite stack distance (cold misses
// excluded), the scalar "locality temperature" of the recipe.
func (l *Layout) MeanStackDistance() float64 {
	var sum, n int
	for d, c := range l.StackDistances {
		sum += d * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func (l *Layout) String() string {
	return fmt.Sprintf("%d chunks (%.1f MB) in %d fragments over %d containers; mean run %.0f B; mean stack distance %.1f",
		l.Chunks, float64(l.Bytes)/1e6, l.Fragments, l.ContainersTouched, l.MeanRunBytes, l.MeanStackDistance())
}
