package analysis

import (
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/engine/ddfs"
	"repro/internal/enginetest"
)

// mkRecipe builds a recipe whose chunks live in the given container
// sequence, each chunk 100 bytes, placed contiguously within runs.
func mkRecipe(containers ...uint32) *chunk.Recipe {
	r := &chunk.Recipe{Label: "t"}
	off := map[uint32]int64{}
	for i, c := range containers {
		base := int64(c) * 1_000_000
		r.Append(chunk.Fingerprint{byte(i)}, 100, chunk.Location{
			Container: c, Offset: base + off[c], Size: 100,
		})
		off[c] += 100
	}
	return r
}

func TestEmptyRecipe(t *testing.T) {
	l := Analyze(&chunk.Recipe{})
	if l.Chunks != 0 || l.References() != 0 || l.PredictedHitRate(4) != 0 {
		t.Fatalf("empty layout: %+v", l)
	}
}

func TestContiguousRecipe(t *testing.T) {
	l := Analyze(mkRecipe(0, 0, 0, 0))
	if l.Fragments != 1 || l.ContainerSwitches != 0 || l.ContainersTouched != 1 {
		t.Fatalf("layout: %+v", l)
	}
	if l.ColdMisses != 1 || len(l.StackDistances) != 0 {
		t.Fatalf("one cold reference expected: %+v", l)
	}
}

func TestAlternatingContainers(t *testing.T) {
	// A,B,A,B,A,B: every non-cold reference has stack distance 1.
	l := Analyze(mkRecipe(1, 2, 1, 2, 1, 2))
	if l.ColdMisses != 2 {
		t.Fatalf("cold misses = %d", l.ColdMisses)
	}
	if len(l.StackDistances) < 2 || l.StackDistances[1] != 4 {
		t.Fatalf("distances: %v", l.StackDistances)
	}
	// Capacity 2 catches them all; capacity 1 none.
	if got := l.PredictedHitRate(2); got != 4.0/6.0 {
		t.Fatalf("hit rate(2) = %v", got)
	}
	if got := l.PredictedHitRate(1); got != 0 {
		t.Fatalf("hit rate(1) = %v", got)
	}
}

func TestHitRateMonotoneInCapacity(t *testing.T) {
	l := Analyze(mkRecipe(1, 2, 3, 1, 4, 2, 5, 3, 1, 2, 6, 4))
	prev := -1.0
	for capN := 1; capN <= 8; capN++ {
		hr := l.PredictedHitRate(capN)
		if hr < prev {
			t.Fatalf("hit rate not monotone at capacity %d: %v < %v", capN, hr, prev)
		}
		prev = hr
	}
}

func TestRunsCollapseToOneReference(t *testing.T) {
	// AAA BBB AAA: three references (A cold, B cold, A at distance 1).
	l := Analyze(mkRecipe(7, 7, 7, 8, 8, 8, 7, 7, 7))
	if l.References() != 3 || l.ColdMisses != 2 {
		t.Fatalf("refs=%d cold=%d", l.References(), l.ColdMisses)
	}
	if l.MeanStackDistance() != 1 {
		t.Fatalf("mean distance = %v", l.MeanStackDistance())
	}
	if l.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDelinearizationGrowsAcrossGenerations(t *testing.T) {
	// The package's purpose: the DDFS layout profile must deteriorate with
	// generations, and DeFrag's must deteriorate less.
	wcfg := enginetest.SmallConfig(81)
	dd, _ := ddfs.New(ddfs.DefaultConfig(enginetest.ExpectedBytes(wcfg, 10)))
	de, _ := core.New(core.DefaultConfig(enginetest.ExpectedBytes(wcfg, 10)))
	gd := enginetest.RunGenerations(t, dd, wcfg, 10)
	ge := enginetest.RunGenerations(t, de, wcfg, 10)

	ddEarly := Analyze(gd[1].Recipe)
	ddLate := Analyze(gd[9].Recipe)
	deLate := Analyze(ge[9].Recipe)

	if ddLate.MeanStackDistance() <= ddEarly.MeanStackDistance() {
		t.Fatalf("DDFS stack distance should grow: %.2f -> %.2f",
			ddEarly.MeanStackDistance(), ddLate.MeanStackDistance())
	}
	if ddLate.PredictedHitRate(4) >= ddEarly.PredictedHitRate(4) {
		t.Fatalf("DDFS predicted hit rate should fall: %.3f -> %.3f",
			ddEarly.PredictedHitRate(4), ddLate.PredictedHitRate(4))
	}
	if deLate.PredictedHitRate(4) <= ddLate.PredictedHitRate(4) {
		t.Fatalf("DeFrag layout should predict better caching than DDFS at gen 10: %.3f vs %.3f",
			deLate.PredictedHitRate(4), ddLate.PredictedHitRate(4))
	}
}
