// Package archive persists a deduplicated store to a directory and loads it
// back — the piece that turns the in-memory research store into something a
// backup survives: container data and metadata, plus every backup's recipe,
// round-trip through ordinary files.
//
// Layout of an archive directory:
//
//	manifest.json            — geometry, flags, container table, backup list
//	containers/NNNNNN.meta   — per-container chunk metadata (binary)
//	containers/NNNNNN.data   — per-container data section (only with data)
//	recipes/NNN.recipe       — per-backup recipe (internal/trace format)
//
// Import replays the container log through a fresh store with the same
// geometry; because container layout is a deterministic function of the
// write sequence, every chunk lands at its original device offset and the
// saved recipes remain valid verbatim.
package archive

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/trace"
)

// Manifest is the archive's JSON header.
type Manifest struct {
	Version    int              `json:"version"`
	DataCap    int64            `json:"data_cap"`
	MaxChunks  int              `json:"max_chunks"`
	StoresData bool             `json:"stores_data"`
	Containers []ContainerEntry `json:"containers"`
	Backups    []BackupEntry    `json:"backups"`
}

// ContainerEntry records one sealed container.
type ContainerEntry struct {
	ID       uint32 `json:"id"`
	DataFill int64  `json:"data_fill"`
	Chunks   int    `json:"chunks"`
}

// BackupEntry records one stored backup.
type BackupEntry struct {
	Label  string `json:"label"`
	Recipe string `json:"recipe"` // file name under recipes/
}

const manifestVersion = 1

// Export writes the store and recipes into dir (created if absent).
//
// Export is crash-safe: every file — container metadata, container data,
// recipes, and finally the manifest — is written to a temp file, fsync'd,
// and atomically renamed into place. The manifest is written last, so a
// crash mid-export leaves either a complete previous archive (the old
// manifest still names only old files) or no manifest at all; it never
// leaves a manifest that names half-written containers.
func Export(ctx context.Context, dir string, store *container.Store, recipes []*chunk.Recipe) error {
	if store.NumContainers() != store.Slots() {
		return fmt.Errorf("archive: store has quarantined container slots; replay requires a dense container log")
	}
	for _, sub := range []string{"", "containers", "recipes"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
	}
	cfg := store.Config()
	man := Manifest{
		Version:    manifestVersion,
		DataCap:    cfg.DataCap,
		MaxChunks:  cfg.MaxChunks,
		StoresData: store.StoresData(),
	}

	for id := 0; id < store.NumContainers(); id++ {
		cid := uint32(id)
		metas := store.PeekMeta(cid)
		var fill int64
		for _, m := range metas {
			fill += int64(m.Size)
		}
		man.Containers = append(man.Containers, ContainerEntry{ID: cid, DataFill: fill, Chunks: len(metas)})
		if err := writeMeta(containerPath(dir, cid, "meta"), metas); err != nil {
			return err
		}
		if man.StoresData {
			data, err := store.PeekData(ctx, cid)
			if err != nil {
				return fmt.Errorf("archive: reading container %d: %w", cid, err)
			}
			if err := blockstore.WriteFileAtomic(containerPath(dir, cid, "data"), data, 0o644); err != nil {
				return err
			}
		}
	}

	for i, rec := range recipes {
		name := fmt.Sprintf("%03d.recipe", i)
		var buf bytes.Buffer
		if err := trace.Save(&buf, rec); err != nil {
			return err
		}
		if err := blockstore.WriteFileAtomic(filepath.Join(dir, "recipes", name), buf.Bytes(), 0o644); err != nil {
			return err
		}
		man.Backups = append(man.Backups, BackupEntry{Label: rec.Label, Recipe: name})
	}

	blob, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	return blockstore.WriteFileAtomic(filepath.Join(dir, "manifest.json"), blob, 0o644)
}

// Import loads an archive, rebuilding a store (over a fresh simulated
// device and clock) whose chunk placement matches the original exactly, and
// the backup recipes. The returned recipes reference valid locations in the
// returned store.
func Import(ctx context.Context, dir string) (*container.Store, []*chunk.Recipe, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	var man Manifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, nil, fmt.Errorf("archive: bad manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, nil, fmt.Errorf("archive: unsupported version %d", man.Version)
	}

	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, man.StoresData)
	store, err := container.NewStore(dev, container.Config{DataCap: man.DataCap, MaxChunks: man.MaxChunks})
	if err != nil {
		return nil, nil, err
	}

	for _, ce := range man.Containers {
		metas, err := readMeta(containerPath(dir, ce.ID, "meta"))
		if err != nil {
			return nil, nil, err
		}
		if len(metas) != ce.Chunks {
			return nil, nil, fmt.Errorf("archive: container %d has %d chunks, manifest says %d", ce.ID, len(metas), ce.Chunks)
		}
		var data []byte
		if man.StoresData {
			if data, err = os.ReadFile(containerPath(dir, ce.ID, "data")); err != nil {
				return nil, nil, err
			}
			if int64(len(data)) != ce.DataFill {
				return nil, nil, fmt.Errorf("archive: container %d data is %d bytes, manifest says %d", ce.ID, len(data), ce.DataFill)
			}
		}
		var off int64
		for _, m := range metas {
			c := chunk.Meta(m.FP, m.Size)
			if data != nil {
				c.Data = data[off : off+int64(m.Size)]
			}
			loc, err := store.Write(ctx, c, m.Segment)
			if err != nil {
				return nil, nil, fmt.Errorf("archive: container %d replay: %w", ce.ID, err)
			}
			if loc.Offset != m.Offset {
				return nil, nil, fmt.Errorf("archive: container %d replay misplaced chunk: %d != %d", ce.ID, loc.Offset, m.Offset)
			}
			off += int64(m.Size)
		}
		// Containers seal at their original boundaries.
		if err := store.Flush(ctx); err != nil {
			return nil, nil, fmt.Errorf("archive: container %d replay: %w", ce.ID, err)
		}
	}

	var recipes []*chunk.Recipe
	for _, be := range man.Backups {
		f, err := os.Open(filepath.Join(dir, "recipes", be.Recipe))
		if err != nil {
			return nil, nil, err
		}
		rec, err := trace.Load(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("archive: recipe %s: %w", be.Recipe, err)
		}
		recipes = append(recipes, rec)
	}
	return store, recipes, nil
}

func containerPath(dir string, id uint32, ext string) string {
	return filepath.Join(dir, "containers", fmt.Sprintf("%06d.%s", id, ext))
}

// writeMeta serializes container metadata:
// count u32, then per entry fp[32] | size u32 | segment u64 | offset i64.
// The file lands via an fsync'd atomic rename.
func writeMeta(path string, metas []container.Meta) error {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(metas))); err != nil {
		return err
	}
	for _, m := range metas {
		buf.Write(m.FP[:])
		for _, v := range []any{m.Size, m.Segment, m.Offset} {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return blockstore.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

func readMeta(path string) ([]container.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxChunksPerContainer = 1 << 24
	if count > maxChunksPerContainer {
		return nil, fmt.Errorf("archive: implausible chunk count %d in %s", count, path)
	}
	metas := make([]container.Meta, count)
	for i := range metas {
		m := &metas[i]
		if _, err := io.ReadFull(br, m.FP[:]); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &m.Size); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &m.Segment); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &m.Offset); err != nil {
			return nil, err
		}
	}
	return metas, nil
}
