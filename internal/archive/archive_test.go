package archive

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/fsck"
	"repro/internal/restore"
)

// buildStore runs a DeFrag engine over a few generations and returns its
// store, recipes and original stream bytes.
func buildStore(t *testing.T, storeData bool) (*core.Engine, []*chunk.Recipe, [][]byte) {
	t.Helper()
	cfg := core.DefaultConfig(64 << 20)
	cfg.StoreData = storeData
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(91), 4)
	var recipes []*chunk.Recipe
	var datas [][]byte
	for _, g := range gens {
		recipes = append(recipes, g.Recipe)
		datas = append(datas, g.Data)
	}
	return eng, recipes, datas
}

func TestExportImportRoundTrip(t *testing.T) {
	eng, recipes, datas := buildStore(t, true)
	dir := t.TempDir()
	if err := Export(context.Background(), dir, eng.Containers(), recipes); err != nil {
		t.Fatal(err)
	}

	store, loaded, err := Import(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(recipes) {
		t.Fatalf("loaded %d recipes, want %d", len(loaded), len(recipes))
	}
	if store.NumContainers() != eng.Containers().NumContainers() {
		t.Fatalf("containers %d != %d", store.NumContainers(), eng.Containers().NumContainers())
	}
	// Every original backup restores bit-exactly from the imported store.
	rcfg := restore.DefaultConfig()
	rcfg.Verify = true
	for i, rec := range loaded {
		if err := restore.VerifyAgainst(context.Background(), store, rec, rcfg, datas[i]); err != nil {
			t.Fatalf("backup %d from archive: %v", i, err)
		}
	}
	// And the imported store is internally consistent.
	rep, err := fsck.Check(context.Background(), store, nil, loaded, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("imported store inconsistent: %v", rep.Problems)
	}
}

func TestExportImportMetadataOnly(t *testing.T) {
	eng, recipes, _ := buildStore(t, false)
	dir := t.TempDir()
	if err := Export(context.Background(), dir, eng.Containers(), recipes); err != nil {
		t.Fatal(err)
	}
	store, loaded, err := Import(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata-only: restores run (timing) but cannot verify content.
	if _, err := restore.Run(context.Background(), store, loaded[0], restore.DefaultConfig(), nil); err != nil {
		t.Fatal(err)
	}
	rcfg := restore.DefaultConfig()
	rcfg.Verify = true
	if _, err := restore.Run(context.Background(), store, loaded[0], rcfg, nil); err == nil {
		t.Fatal("verify must fail on a metadata-only archive")
	}
}

func TestImportMissingManifest(t *testing.T) {
	if _, _, err := Import(context.Background(), t.TempDir()); err == nil {
		t.Fatal("missing manifest must error")
	}
}

func TestImportCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644)
	if _, _, err := Import(context.Background(), dir); err == nil {
		t.Fatal("corrupt manifest must error")
	}
}

func TestImportVersionCheck(t *testing.T) {
	eng, recipes, _ := buildStore(t, false)
	dir := t.TempDir()
	if err := Export(context.Background(), dir, eng.Containers(), recipes); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
	blob = bytes.Replace(blob, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644)
	if _, _, err := Import(context.Background(), dir); err == nil {
		t.Fatal("future version must be rejected")
	}
}

func TestImportDetectsTruncatedData(t *testing.T) {
	eng, recipes, _ := buildStore(t, true)
	dir := t.TempDir()
	if err := Export(context.Background(), dir, eng.Containers(), recipes); err != nil {
		t.Fatal(err)
	}
	// Truncate one container's data file.
	path := containerPath(dir, 0, "data")
	blob, _ := os.ReadFile(path)
	os.WriteFile(path, blob[:len(blob)/2], 0o644)
	if _, _, err := Import(context.Background(), dir); err == nil {
		t.Fatal("truncated container data must be detected")
	}
}

func TestImportDetectsMetaMismatch(t *testing.T) {
	eng, recipes, _ := buildStore(t, false)
	dir := t.TempDir()
	if err := Export(context.Background(), dir, eng.Containers(), recipes); err != nil {
		t.Fatal(err)
	}
	// Truncate a meta file after its count header: readMeta fails.
	path := containerPath(dir, 0, "meta")
	blob, _ := os.ReadFile(path)
	os.WriteFile(path, blob[:8], 0o644)
	if _, _, err := Import(context.Background(), dir); err == nil {
		t.Fatal("corrupt metadata must be detected")
	}
}
