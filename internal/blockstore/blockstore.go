// Package blockstore defines the physical storage-backend layer beneath the
// container log. The simulated disk (internal/disk) remains the *timing*
// model — every seek and transfer of the paper's Eq. 1 is still charged
// there — while a Backend owns the *bytes*: where sealed containers
// physically live, how durable they are, and how they fail.
//
// Three implementations ship with the repository:
//
//   - Sim keeps sealed containers in process memory, reproducing the
//     behaviour the engines always had (bit-identical stats and recipes —
//     pinned by TestSimBackendEquivalence in the repo root).
//   - File is a durable directory-backed store: one file pair per sealed
//     container, an fsync'd write-ahead log, and an atomically-renamed
//     manifest, so a store can be closed (or killed) and re-opened with its
//     containers intact.
//   - Fault wraps any backend with deterministic, seed-controlled failure
//     injection (transient EIO, torn writes, latency spikes) for recovery
//     testing.
//
// Backends compose: WithRetry(NewFault(inner, f)) gives a failure-prone
// store behind a bounded retry-with-backoff policy, which is exactly the
// stack the recovery tests run.
package blockstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chunk"
)

// ChunkMeta describes one chunk stored in a container, as persisted by a
// backend. It mirrors the container package's metadata entry (the two convert
// field-for-field); it is redeclared here so the container log can depend on
// blockstore without a cycle.
type ChunkMeta struct {
	FP      chunk.Fingerprint
	Size    uint32
	Segment uint64
	Offset  int64 // absolute simulated-device offset of the chunk data
}

// ContainerInfo is the durable description of one sealed container: its
// placement on the simulated device plus its chunk metadata entries.
type ContainerInfo struct {
	ID       uint32
	Start    int64 // simulated-device offset of the metadata section
	DataFill int64 // bytes of chunk data in the data section
	End      int64 // device offset one past the container's extent
	Entries  []ChunkMeta
}

// Backend is the physical container store. All methods must be safe for
// concurrent use; implementations must not retain the data slice passed to
// Seal after returning.
type Backend interface {
	// Name identifies the backend kind ("sim", "file", ...).
	Name() string
	// StoresData reports whether the backend retains data-section bytes
	// (content verification possible) or only their lengths.
	StoresData() bool
	// Seal durably persists one sealed container. data is the container's
	// data section (exactly info.DataFill bytes) or nil on metadata-only
	// stores. Sealing the same ID again overwrites (retry after a partial
	// failure re-seals the full container).
	Seal(ctx context.Context, info ContainerInfo, data []byte) error
	// ReadData returns the data section bytes of a sealed container.
	// Metadata-only backends return a zero-filled slice of the recorded
	// fill. A short return signals a torn container (see Corrupt).
	ReadData(ctx context.Context, id uint32) ([]byte, error)
	// ReadDataRange reads the data sections of several containers in one
	// ranged pass, in input order. It is the coalesced-read primitive: the
	// caller guarantees the ids are adjacent on the simulated device, and a
	// fault-injecting backend treats the whole range as a single operation.
	ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error)
	// List returns every sealed container's info, in ID order.
	List(ctx context.Context) ([]ContainerInfo, error)
	// Sync makes all previously sealed containers durable (checkpoints the
	// manifest on durable backends; a no-op for in-memory ones).
	Sync(ctx context.Context) error
	// Close syncs and releases the backend. The backend is unusable after.
	Close() error
}

// Quarantiner is implemented by backends that can move a damaged container
// out of the live set (fsck -repair). After Quarantine returns, the id is no
// longer listed and its data is preserved out-of-band for forensics.
type Quarantiner interface {
	Quarantine(ctx context.Context, id uint32, reason string) error
}

// Dropper is implemented by backends that can atomically remove a batch of
// containers whose live chunks were first copied elsewhere (container
// merge). Unlike Quarantine the bytes are reclaimed, not preserved. On
// durable backends the whole batch commits through one fsync'd intent
// record: either the drop never happened (every id still listed and
// readable) or it completes — by the call itself, or by WAL roll-forward
// when a crashed process reopens the store mid-deletion.
type Dropper interface {
	Drop(ctx context.Context, ids []uint32, reason string) error
}

// transientErr marks an error as transient: the operation may succeed if
// retried (see WithRetry).
type transientErr struct{ err error }

func (e *transientErr) Error() string { return "transient: " + e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// Transient wraps err as a transient (retryable) backend error.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is marked transient anywhere in its chain.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}

// ErrCorrupt tags data-integrity failures (torn data sections, metadata that
// fails invariants). Corruption is never transient: retries do not help,
// repair (quarantine) does.
var ErrCorrupt = errors.New("blockstore: corrupt container")

// Corruptf builds an ErrCorrupt-wrapping error.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("blockstore: backend closed")

// ErrNoQuarantine is returned when repair needs to quarantine a container
// but the backend cannot.
var ErrNoQuarantine = errors.New("blockstore: backend does not support quarantine")

// ErrNoDrop is returned when a container merge needs to reclaim containers
// but the backend cannot drop them atomically.
var ErrNoDrop = errors.New("blockstore: backend does not support drop")

// ReadDataRangeNaive implements ReadDataRange by looping ReadData — the
// correct (if uncoalesced) fallback shared by backend implementations.
func ReadDataRangeNaive(ctx context.Context, b Backend, ids []uint32) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for i, id := range ids {
		data, err := b.ReadData(ctx, id)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// WriteFileAtomic writes data to path crash-safely: into a temp file in the
// same directory, fsync'd, then atomically renamed over path, then the
// directory entry is fsync'd. A crash at any point leaves either the old
// file or the new one, never a torn mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and file creations within it are
// durable. Errors from filesystems that reject directory fsync are ignored
// (the rename itself already happened).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return nil // best effort: some filesystems refuse dir fsync
	}
	return nil
}
