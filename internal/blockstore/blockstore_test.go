package blockstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chunk"
)

func mkInfo(id uint32, n int) (ContainerInfo, []byte) {
	entries := make([]ChunkMeta, n)
	var fill int64
	var data []byte
	for i := range entries {
		payload := bytes.Repeat([]byte{byte(id), byte(i)}, 64+i)
		fp := chunk.Fingerprint{}
		copy(fp[:], fmt.Sprintf("fp-%d-%d", id, i))
		entries[i] = ChunkMeta{
			FP:      fp,
			Size:    uint32(len(payload)),
			Segment: uint64(id)*100 + uint64(i),
			Offset:  int64(id)*1000 + fill,
		}
		fill += int64(len(payload))
		data = append(data, payload...)
	}
	info := ContainerInfo{
		ID:       id,
		Start:    int64(id) * 4096,
		DataFill: fill,
		End:      int64(id)*4096 + 256 + fill,
		Entries:  entries,
	}
	return info, data
}

func sealN(t *testing.T, b Backend, n int) map[uint32][]byte {
	t.Helper()
	want := make(map[uint32][]byte)
	for id := uint32(0); id < uint32(n); id++ {
		info, data := mkInfo(id, 3+int(id))
		if err := b.Seal(context.Background(), info, data); err != nil {
			t.Fatalf("seal %d: %v", id, err)
		}
		want[id] = data
	}
	return want
}

func checkRoundTrip(t *testing.T, b Backend, want map[uint32][]byte) {
	t.Helper()
	ctx := context.Background()
	infos, err := b.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(infos) != len(want) {
		t.Fatalf("list: got %d containers, want %d", len(infos), len(want))
	}
	for _, info := range infos {
		wantInfo, _ := mkInfo(info.ID, 3+int(info.ID))
		if info.Start != wantInfo.Start || info.DataFill != wantInfo.DataFill || info.End != wantInfo.End {
			t.Fatalf("container %d geometry mismatch: got %+v", info.ID, info)
		}
		if len(info.Entries) != len(wantInfo.Entries) {
			t.Fatalf("container %d: %d entries, want %d", info.ID, len(info.Entries), len(wantInfo.Entries))
		}
		for i, e := range info.Entries {
			if e != wantInfo.Entries[i] {
				t.Fatalf("container %d entry %d mismatch: %+v vs %+v", info.ID, i, e, wantInfo.Entries[i])
			}
		}
		data, err := b.ReadData(ctx, info.ID)
		if err != nil {
			t.Fatalf("read %d: %v", info.ID, err)
		}
		if b.StoresData() {
			if !bytes.Equal(data, want[info.ID]) {
				t.Fatalf("container %d data mismatch", info.ID)
			}
		} else if int64(len(data)) != info.DataFill {
			t.Fatalf("container %d hole read: %d bytes, want %d", info.ID, len(data), info.DataFill)
		}
	}
}

func TestSimRoundTrip(t *testing.T) {
	b := NewSim(true)
	want := sealN(t, b, 4)
	checkRoundTrip(t, b, want)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadData(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
}

func TestFileRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 5)
	checkRoundTrip(t, b, want)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
}

func TestFileWALReplayWithoutSync(t *testing.T) {
	// Simulate a crash: seal containers, never Sync/Close, reopen from the
	// WAL alone. The manifest on disk is stale (or absent); replay must
	// recover every seal.
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 3)
	// Abandon b without Close — its WAL records are already fsync'd.

	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
	_ = b
}

func TestFileTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 2)
	// Tear the WAL tail: append half a record, as a crash mid-append would.
	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"id":7,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
}

func TestFileTornDataDetected(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	sealN(t, b, 2)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate container 1's data file behind the store's back.
	path := filepath.Join(dir, "containers", "000001.data")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.ReadData(context.Background(), 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn data read: %v, want ErrCorrupt", err)
	}
	if _, err := re.ReadData(context.Background(), 0); err != nil {
		t.Fatalf("intact container must still read: %v", err)
	}
}

func TestFileQuarantine(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 3)
	if err := b.Quarantine(context.Background(), 1, "test damage"); err != nil {
		t.Fatal(err)
	}
	delete(want, 1)
	infos, err := b.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("after quarantine: %d containers listed, want 2", len(infos))
	}
	for _, suffix := range []string{"meta", "data", "reason"} {
		p := filepath.Join(dir, "quarantine", "000001."+suffix)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("quarantined %s missing: %v", suffix, err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Quarantine survives reopen.
	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
}

func TestFaultTransientThenRetrySucceeds(t *testing.T) {
	// Find a seed where the first Seal draw is transient, then verify the
	// retry wrapper rides through it.
	inner := NewSim(true)
	fb := NewFault(inner, FaultConfig{Seed: 1, TransientRate: 0.5})
	rb := WithRetry(fb, RetryPolicy{MaxAttempts: 10, BaseDelay: 100})
	want := sealN(t, rb, 6)
	checkRoundTrip(t, inner, want)
}

func TestFaultDeterministic(t *testing.T) {
	run := func() []bool {
		f := NewFault(NewSim(true), FaultConfig{Seed: 42, TransientRate: 0.3})
		var outcomes []bool
		for i := 0; i < 20; i++ {
			info, data := mkInfo(uint32(i), 2)
			err := f.Seal(context.Background(), info, data)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at op %d", i)
		}
	}
}

func TestFaultTornWriteDetected(t *testing.T) {
	inner := NewSim(true)
	fb := NewFault(inner, FaultConfig{Seed: 3, TornRate: 1.0})
	info, data := mkInfo(0, 4)
	if err := fb.Seal(context.Background(), info, data); err != nil {
		t.Fatalf("torn seal must be silently acknowledged, got %v", err)
	}
	// The lying disk stored fewer bytes than DataFill records.
	got, err := inner.ReadData(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) >= info.DataFill {
		t.Fatalf("expected short data section, got %d of %d bytes", len(got), info.DataFill)
	}
}

func TestRetryExhaustionSurfacesError(t *testing.T) {
	fb := NewFault(NewSim(true), FaultConfig{Seed: 7, TransientRate: 1.0})
	rb := WithRetry(fb, RetryPolicy{MaxAttempts: 3, BaseDelay: 100})
	info, data := mkInfo(0, 2)
	err := rb.Seal(context.Background(), info, data)
	if err == nil || !IsTransient(err) {
		t.Fatalf("want transient error after exhaustion, got %v", err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	fb := NewFault(NewSim(true), FaultConfig{Seed: 7, TransientRate: 1.0})
	rb := WithRetry(fb, RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * 1000 * 1000}) // 50ms
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	info, data := mkInfo(0, 2)
	err := rb.Seal(ctx, info, data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMetaCodecRoundTrip(t *testing.T) {
	info, _ := mkInfo(9, 7)
	enc := EncodeMeta(info.Entries)
	dec, err := DecodeMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(info.Entries) {
		t.Fatalf("decoded %d entries, want %d", len(dec), len(info.Entries))
	}
	for i := range dec {
		if dec[i] != info.Entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if _, err := DecodeMeta(enc[:len(enc)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated meta: %v, want ErrCorrupt", err)
	}
}

func TestMetadataOnlyFileBackend(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 3)
	_ = want
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir, true) // argument loses: manifest says holes
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.StoresData() {
		t.Fatal("manifest storesData=false must win over reopen argument")
	}
	data, err := re.ReadData(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantInfo, _ := mkInfo(2, 5)
	if int64(len(data)) != wantInfo.DataFill {
		t.Fatalf("hole read %d bytes, want %d", len(data), wantInfo.DataFill)
	}
}
