package blockstore

import (
	"bytes"
	"encoding/binary"

	"repro/internal/chunk"
)

// Container metadata files use a fixed little-endian binary layout:
//
//	u32 count
//	count × { fp[32] | u32 size | u64 segment | i64 offset }
//
// matching the simulated on-disk metadata-section entry the container log
// charges for (metaEntrySize bytes per chunk).
const metaEntryWire = chunk.FingerprintSize + 4 + 8 + 8

// EncodeMeta serialises a container's chunk metadata entries.
func EncodeMeta(entries []ChunkMeta) []byte {
	buf := bytes.NewBuffer(make([]byte, 0, 4+len(entries)*metaEntryWire))
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(entries)))
	buf.Write(u32[:])
	for _, e := range entries {
		buf.Write(e.FP[:])
		binary.LittleEndian.PutUint32(u32[:], e.Size)
		buf.Write(u32[:])
		binary.LittleEndian.PutUint64(u64[:], e.Segment)
		buf.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(e.Offset))
		buf.Write(u64[:])
	}
	return buf.Bytes()
}

// DecodeMeta parses a metadata file produced by EncodeMeta. Truncated or
// over-long input is reported as corruption.
func DecodeMeta(data []byte) ([]ChunkMeta, error) {
	if len(data) < 4 {
		return nil, Corruptf("meta: short header (%d bytes)", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if want := int(count) * metaEntryWire; len(data) != want {
		return nil, Corruptf("meta: %d entries need %d bytes, have %d", count, want, len(data))
	}
	entries := make([]ChunkMeta, count)
	for i := range entries {
		e := &entries[i]
		copy(e.FP[:], data[:chunk.FingerprintSize])
		data = data[chunk.FingerprintSize:]
		e.Size = binary.LittleEndian.Uint32(data)
		data = data[4:]
		e.Segment = binary.LittleEndian.Uint64(data)
		data = data[8:]
		e.Offset = int64(binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	return entries, nil
}
