package blockstore

import (
	"context"
	"sync/atomic"
)

// Counting wraps a Backend and counts its physical operations. It exists to
// make caching claims testable: the shared container data cache promises
// "one backend read per hot container no matter how many concurrent
// restores want it", and only a counter at the backend seam can verify that.
// All counters are atomic, so a Counting backend is safe under the same
// concurrency as the backend it wraps.
//
// Counting does not forward optional interfaces (Quarantiner), so it is for
// tests and benchmarks, not for wrapping a production file backend that
// needs repair support.
type Counting struct {
	be Backend

	seals      atomic.Int64
	dataReads  atomic.Int64 // container data sections fetched (ReadData + ids per ReadDataRange)
	rangeReads atomic.Int64 // ReadDataRange calls
}

// NewCounting wraps be with operation counters.
func NewCounting(be Backend) *Counting { return &Counting{be: be} }

// Seals returns the number of Seal calls.
func (c *Counting) Seals() int64 { return c.seals.Load() }

// DataSectionReads returns the number of container data sections physically
// fetched: one per ReadData call plus one per id of every ReadDataRange.
func (c *Counting) DataSectionReads() int64 { return c.dataReads.Load() }

// RangeReads returns the number of ReadDataRange calls.
func (c *Counting) RangeReads() int64 { return c.rangeReads.Load() }

// ResetCounts zeroes all counters (between benchmark phases).
func (c *Counting) ResetCounts() {
	c.seals.Store(0)
	c.dataReads.Store(0)
	c.rangeReads.Store(0)
}

func (c *Counting) Name() string     { return c.be.Name() }
func (c *Counting) StoresData() bool { return c.be.StoresData() }

func (c *Counting) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	c.seals.Add(1)
	return c.be.Seal(ctx, info, data)
}

func (c *Counting) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	c.dataReads.Add(1)
	return c.be.ReadData(ctx, id)
}

func (c *Counting) ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	c.dataReads.Add(int64(len(ids)))
	c.rangeReads.Add(1)
	return c.be.ReadDataRange(ctx, ids)
}

func (c *Counting) List(ctx context.Context) ([]ContainerInfo, error) { return c.be.List(ctx) }
func (c *Counting) Sync(ctx context.Context) error                    { return c.be.Sync(ctx) }
func (c *Counting) Close() error                                      { return c.be.Close() }
