package blockstore

import (
	"os"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Crash points let recovery tests kill the process at precisely the worst
// moments of a multi-step durable operation — between an intent record's
// fsync and the destructive work it authorizes, or halfway through that
// work. They model a SIGKILL: the process exits immediately, with no
// manifest checkpoint, WAL fold, or deferred cleanup. Production code never
// arms them; the dedupd e2e crash tests do, via a flag on the re-exec'd
// child.
const (
	// CrashMergeIntent fires after a container-merge intent record is
	// durably in the WAL but before any victim file is deleted.
	CrashMergeIntent = "merge-intent"
	// CrashMergeFiles fires after the first victim's files are deleted,
	// mid-way through the merge's destructive phase.
	CrashMergeFiles = "merge-files"
)

var armedCrashPoint atomic.Pointer[string]

// SetCrashPoint arms one named crash point ("" disarms). The next time the
// backend passes that point the process exits without cleanup.
func SetCrashPoint(name string) {
	if name == "" {
		armedCrashPoint.Store(nil)
		return
	}
	armedCrashPoint.Store(&name)
}

// maybeCrash exits the process if the named point is armed.
func maybeCrash(name string) {
	if p := armedCrashPoint.Load(); p != nil && *p == name {
		telemetry.Logger().Warn("simulating crash at point", "point", name)
		os.Exit(0)
	}
}
