package blockstore

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimDrop(t *testing.T) {
	b := NewSim(true)
	want := sealN(t, b, 4)
	if err := b.Drop(context.Background(), []uint32{1, 3}, "merged"); err != nil {
		t.Fatal(err)
	}
	delete(want, 1)
	delete(want, 3)
	checkRoundTrip(t, b, want)
	if err := b.Drop(context.Background(), []uint32{1}, "again"); err == nil {
		t.Fatal("dropping a missing container must error")
	}
}

func TestFileDropReclaimsAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 4)
	if err := b.Drop(context.Background(), []uint32{0, 2}, "merged into 4"); err != nil {
		t.Fatal(err)
	}
	delete(want, 0)
	delete(want, 2)
	checkRoundTrip(t, b, want)
	// Files are reclaimed, not quarantined.
	for _, id := range []string{"000000", "000002"} {
		for _, suffix := range []string{".meta", ".data"} {
			if _, err := os.Stat(filepath.Join(dir, "containers", id+suffix)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("victim file %s%s still present: %v", id, suffix, err)
			}
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
}

func TestFileDropOfUnsyncedSealsReplaysClean(t *testing.T) {
	// Seal and drop entirely inside one WAL window (no manifest checkpoint
	// in between): replay must skip the victims' seal records, whose files
	// are already deleted, instead of failing to load them.
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 3)
	if err := b.Drop(context.Background(), []uint32{1}, "merged"); err != nil {
		t.Fatal(err)
	}
	delete(want, 1)
	// Abandon b without Close — crash after the drop completed.

	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	checkRoundTrip(t, re, want)
	_ = b
}

func TestFileMergeIntentRollsForwardOnReopen(t *testing.T) {
	// Crash between the merge intent's fsync and the file deletions: the
	// reopen must honour the durable intent — victims unlisted, their files
	// deleted — even though the dying process never touched them.
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sealN(t, b, 3)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-append the intent record the crashed process would have left.
	var m manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	rec := walRecord{Seq: m.Checkpoint + 1, Op: "merge", Victims: []uint32{0, 2}, Reason: "merged"}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	// Simulate a crash halfway through the deletions too: one victim's meta
	// file already gone.
	if err := os.Remove(filepath.Join(dir, "containers", "000000.meta")); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen with pending merge intent: %v", err)
	}
	defer re.Close()
	delete(want, 0)
	delete(want, 2)
	checkRoundTrip(t, re, want)
	for _, name := range []string{"000000.meta", "000000.data", "000002.meta", "000002.data"} {
		if _, err := os.Stat(filepath.Join(dir, "containers", name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("roll-forward left victim file %s: %v", name, err)
		}
	}
	// And the next checkpoint folds the intent away for good.
	if err := re.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(dir, true)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer re2.Close()
	checkRoundTrip(t, re2, want)
}

func TestFileDropMissingContainer(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sealN(t, b, 2)
	err = b.Drop(context.Background(), []uint32{0, 7}, "merged")
	if err == nil || !strings.Contains(err.Error(), "not sealed") {
		t.Fatalf("drop of missing container: %v, want not-sealed error", err)
	}
	// The batch is all-or-nothing: container 0 must still be listed.
	infos, err := b.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("failed drop mutated the store: %d containers, want 2", len(infos))
	}
}

func TestDropPassThroughWrappers(t *testing.T) {
	inner := NewSim(true)
	rb := WithRetry(NewFault(inner, FaultConfig{Seed: 1}), RetryPolicy{})
	want := sealN(t, rb, 3)
	var d Dropper = rb
	if err := d.Drop(context.Background(), []uint32{1}, "merged"); err != nil {
		t.Fatal(err)
	}
	delete(want, 1)
	checkRoundTrip(t, inner, want)
}
