package blockstore

import (
	"context"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

// FaultConfig controls deterministic failure injection. All rates are
// per-operation probabilities in [0,1]; the same seed over the same
// operation sequence reproduces the same faults.
type FaultConfig struct {
	Seed int64
	// TransientRate injects retryable EIO failures (before the inner call
	// runs, so a retry can succeed).
	TransientRate float64
	// TornRate makes Seal acknowledge a write whose data section was
	// silently truncated — the classic lying disk. The tear surfaces later
	// as an ErrCorrupt short read.
	TornRate float64
	// LatencyRate adds a Latency-long real-time stall to an operation.
	LatencyRate float64
	Latency     time.Duration
}

// Fault wraps an inner backend with seed-controlled error injection for
// recovery testing. Faults draw from one seeded stream behind a mutex, so a
// serial operation sequence is fully deterministic (including under -race).
type Fault struct {
	inner Backend
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	injectedTransient *telemetry.Counter
	injectedTorn      *telemetry.Counter
}

// NewFault wraps inner with failure injection per cfg.
func NewFault(inner Backend, cfg FaultConfig) *Fault {
	if cfg.Latency == 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	return &Fault{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		injectedTransient: telemetry.NewCounter("blockstore_faults_transient_total",
			"transient EIO faults injected by the fault backend"),
		injectedTorn: telemetry.NewCounter("blockstore_faults_torn_total",
			"torn (short) container writes injected by the fault backend"),
	}
}

func (f *Fault) Name() string     { return "fault(" + f.inner.Name() + ")" }
func (f *Fault) StoresData() bool { return f.inner.StoresData() }

// Inner returns the wrapped backend (tests reach through to verify state).
func (f *Fault) Inner() Backend { return f.inner }

// draw rolls the three fault dice for one operation. allowTorn limits tear
// injection to Seal.
func (f *Fault) draw(allowTorn bool) (transient, torn bool, stall time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.TransientRate > 0 && f.rng.Float64() < f.cfg.TransientRate {
		transient = true
	}
	if allowTorn && f.cfg.TornRate > 0 && f.rng.Float64() < f.cfg.TornRate {
		torn = true
	}
	if f.cfg.LatencyRate > 0 && f.rng.Float64() < f.cfg.LatencyRate {
		stall = f.cfg.Latency
	}
	return transient, torn, stall
}

func (f *Fault) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	transient, torn, stall := f.draw(true)
	if stall > 0 {
		time.Sleep(stall)
	}
	if transient {
		f.injectedTransient.Inc()
		return Transient(syscall.EIO)
	}
	if torn && len(data) > 0 {
		// Acknowledge a truncated data section: the inner backend records
		// the full DataFill but stores fewer bytes, exactly what a lying
		// disk leaves behind. Detected later as an ErrCorrupt short read.
		f.injectedTorn.Inc()
		cut := len(data) / 2
		return f.inner.Seal(ctx, info, data[:cut])
	}
	return f.inner.Seal(ctx, info, data)
}

func (f *Fault) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	transient, _, stall := f.draw(false)
	if stall > 0 {
		time.Sleep(stall)
	}
	if transient {
		f.injectedTransient.Inc()
		return nil, Transient(syscall.EIO)
	}
	return f.inner.ReadData(ctx, id)
}

func (f *Fault) ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	transient, _, stall := f.draw(false)
	if stall > 0 {
		time.Sleep(stall)
	}
	if transient {
		f.injectedTransient.Inc()
		return nil, Transient(syscall.EIO)
	}
	return f.inner.ReadDataRange(ctx, ids)
}

func (f *Fault) List(ctx context.Context) ([]ContainerInfo, error) {
	return f.inner.List(ctx)
}

func (f *Fault) Sync(ctx context.Context) error {
	transient, _, _ := f.draw(false)
	if transient {
		f.injectedTransient.Inc()
		return Transient(syscall.EIO)
	}
	return f.inner.Sync(ctx)
}

func (f *Fault) Close() error { return f.inner.Close() }

// Quarantine passes through when the inner backend supports it.
func (f *Fault) Quarantine(ctx context.Context, id uint32, reason string) error {
	if q, ok := f.inner.(Quarantiner); ok {
		return q.Quarantine(ctx, id, reason)
	}
	return ErrNoQuarantine
}

// Drop passes through when the inner backend supports it (no injection:
// the drop path has its own crash-point hooks).
func (f *Fault) Drop(ctx context.Context, ids []uint32, reason string) error {
	if d, ok := f.inner.(Dropper); ok {
		return d.Drop(ctx, ids, reason)
	}
	return ErrNoDrop
}
