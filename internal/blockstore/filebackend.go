package blockstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the durable directory-backed backend. Layout under its root:
//
//	MANIFEST.json        checkpointed container table (atomic tmp+fsync+rename)
//	wal.jsonl            fsync'd seal log since the last manifest checkpoint
//	containers/N.meta    binary chunk-metadata section (EncodeMeta)
//	containers/N.data    raw data section (only when StoresData)
//	quarantine/          containers moved aside by fsck -repair
//
// Seal ordering makes crashes safe: the meta (and data) files are written
// and fsync'd first, then a WAL line referencing them is appended and
// fsync'd. Opening replays the manifest, then WAL records past its
// checkpoint sequence; a torn WAL tail is ignored. Sync folds the WAL into
// a fresh manifest and truncates it.
type File struct {
	mu         sync.Mutex
	dir        string
	storesData bool
	infos      map[uint32]ContainerInfo
	wal        *os.File
	walSeq     uint64 // last sequence appended to the WAL
	checkpoint uint64 // last sequence folded into MANIFEST.json
	closed     bool

	// WAL group commit (see commitWAL): records enqueued while an fsync is
	// in flight ride out together on the next one.
	cohort     *walCohort
	committing bool
	quiet      *sync.Cond // broadcast when commitWAL goes idle
}

// walCohort is one group-commit batch: the concatenated WAL lines of every
// seal waiting on the same fsync, plus the table entries to publish once it
// lands.
type walCohort struct {
	buf   []byte
	infos []ContainerInfo
	done  chan struct{}
	err   error
}

const (
	manifestName = "MANIFEST.json"
	walName      = "wal.jsonl"
	containerDir = "containers"
	quarDir      = "quarantine"
)

type manifest struct {
	Version    int             `json:"version"`
	StoresData bool            `json:"storesData"`
	Checkpoint uint64          `json:"checkpoint"`
	Containers []manifestEntry `json:"containers"`
}

type manifestEntry struct {
	ID       uint32 `json:"id"`
	Start    int64  `json:"start"`
	DataFill int64  `json:"dataFill"`
	End      int64  `json:"end"`
}

// walRecord is one fsync'd line in wal.jsonl. Op is "seal" (default),
// "drop" (quarantine tombstone), or "merge" — a container-merge intent
// whose Victims are reclaimed as a unit. A durable merge record is the
// commit point of the drop: replay rolls it forward (table entries removed,
// remaining files deleted) even if the process died mid-deletion.
type walRecord struct {
	Seq      uint64   `json:"seq"`
	Op       string   `json:"op,omitempty"`
	ID       uint32   `json:"id"`
	Start    int64    `json:"start"`
	DataFill int64    `json:"dataFill"`
	End      int64    `json:"end"`
	Victims  []uint32 `json:"victims,omitempty"`
	Reason   string   `json:"reason,omitempty"`
}

// OpenFile opens (or initialises) a directory-backed store rooted at dir.
// When the directory already holds a manifest, its storesData setting wins
// over the argument — the physical store's nature is fixed at creation.
func OpenFile(dir string, storesData bool) (*File, error) {
	for _, sub := range []string{dir, filepath.Join(dir, containerDir), filepath.Join(dir, quarDir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	f := &File{dir: dir, storesData: storesData, infos: make(map[uint32]ContainerInfo)}
	f.quiet = sync.NewCond(&f.mu)

	// The WAL is scanned before the manifest is materialised: a "merge"
	// intent past the checkpoint means its victims' files may already be
	// gone, so their manifest entries (and earlier seal records) must not be
	// loaded at all.
	recs, err := f.scanWAL()
	if err != nil {
		return nil, err
	}

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("file backend: parse %s: %w", manifestName, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("file backend: unsupported manifest version %d", m.Version)
		}
		f.storesData = m.StoresData
		f.checkpoint = m.Checkpoint
		f.walSeq = m.Checkpoint

		// dropped[id] = latest WAL sequence past the checkpoint at which the
		// container was dropped or merged away.
		dropped := make(map[uint32]uint64)
		for _, rec := range recs {
			if rec.Seq <= f.checkpoint {
				continue
			}
			switch rec.Op {
			case "drop":
				dropped[rec.ID] = rec.Seq
			case "merge":
				for _, id := range rec.Victims {
					dropped[id] = rec.Seq
				}
			}
		}
		for _, e := range m.Containers {
			if _, gone := dropped[e.ID]; gone {
				continue
			}
			info, err := f.loadInfo(e.ID, e.Start, e.DataFill, e.End)
			if err != nil {
				return nil, err
			}
			f.infos[e.ID] = info
		}
		if err := f.replayWAL(recs, dropped); err != nil {
			return nil, err
		}
	case errors.Is(err, fs.ErrNotExist):
		// fresh store: replay everything the WAL holds
		dropped := make(map[uint32]uint64)
		for _, rec := range recs {
			switch rec.Op {
			case "drop":
				dropped[rec.ID] = rec.Seq
			case "merge":
				for _, id := range rec.Victims {
					dropped[id] = rec.Seq
				}
			}
		}
		if err := f.replayWAL(recs, dropped); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	f.wal = wal
	return f, nil
}

// scanWAL decodes wal.jsonl into records without applying them. A torn
// final line (crash mid-append) is ignored; anything torn *before* a
// complete line means real corruption and is reported.
func (f *File) scanWAL() ([]walRecord, error) {
	walPath := filepath.Join(f.dir, walName)
	wf, err := os.Open(walPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer wf.Close()
	sc := bufio.NewScanner(wf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []walRecord
	var torn bool
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			torn = true
			continue
		}
		if torn {
			return nil, Corruptf("file backend: wal record after torn line")
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// replayWAL applies records newer than the manifest checkpoint. dropped
// maps container IDs to the sequence of the record that removed them: a
// seal superseded by a later drop/merge is skipped entirely (its files may
// no longer exist), and a merge intent is rolled forward — the remaining
// victim files are deleted, making a crash at any point of Drop idempotent.
func (f *File) replayWAL(recs []walRecord, dropped map[uint32]uint64) error {
	for _, rec := range recs {
		if rec.Seq <= f.checkpoint {
			continue // already folded into the manifest
		}
		if rec.Seq > f.walSeq {
			f.walSeq = rec.Seq
		}
		switch rec.Op {
		case "drop":
			delete(f.infos, rec.ID)
		case "merge":
			for _, id := range rec.Victims {
				delete(f.infos, id)
				if err := f.removeContainerFiles(id); err != nil {
					return err
				}
			}
		default: // seal
			if dseq, gone := dropped[rec.ID]; gone && dseq > rec.Seq {
				continue
			}
			info, err := f.loadInfo(rec.ID, rec.Start, rec.DataFill, rec.End)
			if err != nil {
				return err
			}
			f.infos[rec.ID] = info
		}
	}
	return nil
}

// removeContainerFiles deletes a container's meta/data files, tolerating
// files already gone (merge roll-forward re-runs after a crash).
func (f *File) removeContainerFiles(id uint32) error {
	for _, p := range []string{f.metaPath(id), f.dataPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}

// loadInfo materialises a container table entry, parsing its fsync'd
// metadata file.
func (f *File) loadInfo(id uint32, start, fill, end int64) (ContainerInfo, error) {
	raw, err := os.ReadFile(f.metaPath(id))
	if err != nil {
		return ContainerInfo{}, fmt.Errorf("file backend: container %d: %w", id, err)
	}
	entries, err := DecodeMeta(raw)
	if err != nil {
		return ContainerInfo{}, fmt.Errorf("file backend: container %d: %w", id, err)
	}
	return ContainerInfo{ID: id, Start: start, DataFill: fill, End: end, Entries: entries}, nil
}

func (f *File) metaPath(id uint32) string {
	return filepath.Join(f.dir, containerDir, fmt.Sprintf("%06d.meta", id))
}

func (f *File) dataPath(id uint32) string {
	return filepath.Join(f.dir, containerDir, fmt.Sprintf("%06d.data", id))
}

func (f *File) Name() string     { return "file" }
func (f *File) StoresData() bool { return f.storesData }

// Dir returns the backend's root directory.
func (f *File) Dir() string { return f.dir }

func (f *File) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrClosed
	}
	// Container files are keyed by ID and each ID is sealed by exactly one
	// writer at a time, so concurrent seals of distinct containers write
	// their meta/data files in parallel without holding the table lock.
	if err := WriteFileAtomic(f.metaPath(info.ID), EncodeMeta(info.Entries), 0o644); err != nil {
		return err
	}
	if f.storesData {
		if err := WriteFileAtomic(f.dataPath(info.ID), data, 0o644); err != nil {
			return err
		}
	}
	return f.commitWAL(walRecord{ID: info.ID, Start: info.Start, DataFill: info.DataFill, End: info.End}, cloneInfo(info))
}

// commitWAL appends rec to the WAL with group commit: the first arrival
// becomes the leader and fsyncs; records enqueued while that fsync is in
// flight accumulate into the next cohort, which the same leader pushes out
// with a single write+sync. N concurrent seals thus pay ~1 fsync instead of
// N. The leader publishes every cohort member's table entry (under f.mu)
// before waking it, so at any quiescent point f.infos matches the durable
// WAL exactly — the invariant Sync relies on to fold and truncate safely.
func (f *File) commitWAL(rec walRecord, info ContainerInfo) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.walSeq++
	rec.Seq = f.walSeq
	line, err := json.Marshal(rec)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if f.cohort == nil {
		f.cohort = &walCohort{done: make(chan struct{})}
	}
	mine := f.cohort
	mine.buf = append(mine.buf, line...)
	mine.buf = append(mine.buf, '\n')
	mine.infos = append(mine.infos, info)
	if f.committing {
		// A sync is in flight; its leader will carry this cohort too.
		f.mu.Unlock()
		<-mine.done
		return mine.err
	}
	f.committing = true
	for c := mine; ; {
		f.cohort = nil
		f.mu.Unlock()
		_, werr := f.wal.Write(c.buf)
		if werr == nil {
			werr = f.wal.Sync()
		}
		c.err = werr
		f.mu.Lock()
		if werr == nil {
			for _, ci := range c.infos {
				f.infos[ci.ID] = ci
			}
		}
		close(c.done)
		if c = f.cohort; c == nil {
			f.committing = false
			f.quiet.Broadcast()
			f.mu.Unlock()
			return mine.err
		}
	}
}

// quiesceLocked waits until no WAL group commit is in flight or queued.
// Caller holds f.mu.
func (f *File) quiesceLocked() {
	for f.committing || f.cohort != nil {
		f.quiet.Wait()
	}
}

func (f *File) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	info, ok := f.infos[id]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("file backend: container %d not sealed", id)
	}
	if !f.storesData {
		return make([]byte, info.DataFill), nil
	}
	data, err := os.ReadFile(f.dataPath(id))
	if err != nil {
		return nil, fmt.Errorf("file backend: container %d: %w", id, err)
	}
	if int64(len(data)) != info.DataFill {
		return nil, Corruptf("file backend: container %d torn: data section %d bytes, expected %d",
			id, len(data), info.DataFill)
	}
	return data, nil
}

func (f *File) ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	return ReadDataRangeNaive(ctx, f, ids)
}

func (f *File) List(ctx context.Context) ([]ContainerInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	out := make([]ContainerInfo, 0, len(f.infos))
	for _, info := range f.infos {
		out = append(out, cloneInfo(info))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Sync folds the WAL into a fresh manifest (atomic rename) and truncates
// the WAL. After a successful Sync the store opens without replay work.
func (f *File) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.quiesceLocked()
	return f.syncLocked()
}

func (f *File) syncLocked() error {
	m := manifest{Version: 1, StoresData: f.storesData, Checkpoint: f.walSeq}
	for _, info := range f.infos {
		m.Containers = append(m.Containers, manifestEntry{
			ID: info.ID, Start: info.Start, DataFill: info.DataFill, End: info.End,
		})
	}
	sort.Slice(m.Containers, func(i, j int) bool { return m.Containers[i].ID < m.Containers[j].ID })
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(f.dir, manifestName), raw, 0o644); err != nil {
		return err
	}
	f.checkpoint = f.walSeq
	// The manifest now covers every WAL record; dropping the log is safe
	// even if the truncate itself is lost (replay skips seq <= checkpoint).
	if err := f.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := f.wal.Seek(0, 0); err != nil {
		return err
	}
	return f.wal.Sync()
}

func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.quiesceLocked()
	err := f.syncLocked()
	if cerr := f.wal.Close(); err == nil {
		err = cerr
	}
	f.closed = true
	return err
}

// Drop reclaims a batch of merged-away containers. The commit point is one
// fsync'd WAL "merge" intent record: before it lands, the drop never
// happened and every victim stays listed and readable; after it lands the
// drop is guaranteed to complete — the victims' files are deleted and the
// manifest checkpointed by this call, or by WAL roll-forward when a crashed
// process reopens the store (see replayWAL). Callers must have copied any
// still-live chunks out of the victims first.
func (f *File) Drop(ctx context.Context, ids []uint32, reason string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.quiesceLocked()
	for _, id := range ids {
		if _, ok := f.infos[id]; !ok {
			return fmt.Errorf("file backend: drop: container %d not sealed", id)
		}
	}
	f.walSeq++
	rec := walRecord{Seq: f.walSeq, Op: "merge", Victims: ids, Reason: reason}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := f.wal.Write(line); err != nil {
		return err
	}
	if err := f.wal.Sync(); err != nil {
		return err
	}
	// The intent is durable: from here the drop completes, by us now or by
	// roll-forward on the next open.
	maybeCrash(CrashMergeIntent)
	for i, id := range ids {
		delete(f.infos, id)
		if err := f.removeContainerFiles(id); err != nil {
			return err
		}
		if i == 0 {
			maybeCrash(CrashMergeFiles)
		}
	}
	return f.syncLocked()
}

// Quarantine moves a container's files into quarantine/ alongside a reason
// note, drops it from the table, and checkpoints. The bytes survive for
// forensics; List no longer reports the id.
func (f *File) Quarantine(ctx context.Context, id uint32, reason string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.quiesceLocked()
	if _, ok := f.infos[id]; !ok {
		return fmt.Errorf("file backend: quarantine: container %d not sealed", id)
	}
	qdir := filepath.Join(f.dir, quarDir)
	for _, src := range []string{f.metaPath(id), f.dataPath(id)} {
		dst := filepath.Join(qdir, filepath.Base(src))
		if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	note := filepath.Join(qdir, fmt.Sprintf("%06d.reason", id))
	if err := os.WriteFile(note, []byte(reason+"\n"), 0o644); err != nil {
		return err
	}
	if err := SyncDir(qdir); err != nil {
		return err
	}
	delete(f.infos, id)
	return f.syncLocked()
}
