package blockstore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chunk"
)

// fuzzMetaEntries builds a small valid metadata section for seeding.
func fuzzMetaEntries(n int) []ChunkMeta {
	entries := make([]ChunkMeta, n)
	var off int64
	for i := range entries {
		entries[i] = ChunkMeta{
			FP:      chunk.Of([]byte{byte(i), byte(i >> 8)}),
			Size:    uint32(100 + i),
			Segment: uint64(i / 4),
			Offset:  off,
		}
		off += int64(entries[i].Size)
	}
	return entries
}

// FuzzDecodeMeta feeds arbitrary bytes to the container-metadata decoder.
// Malformed or truncated input must come back as an error — never a panic,
// never an over-allocation crash — and anything that decodes must re-encode
// bit-identically (the wire format is canonical: a fixed-size header plus
// fixed-size entries, so decode∘encode is the identity on valid input).
func FuzzDecodeMeta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                              // short header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})               // count says 4 billion entries, no payload
	f.Add(EncodeMeta(nil))                              // empty but valid
	f.Add(EncodeMeta(fuzzMetaEntries(1)))               // one entry
	f.Add(EncodeMeta(fuzzMetaEntries(7)))               // several entries
	f.Add(EncodeMeta(fuzzMetaEntries(3))[:20])          // truncated mid-entry
	f.Add(append(EncodeMeta(fuzzMetaEntries(2)), 0xAA)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeMeta(data)
		if err != nil {
			return
		}
		re := EncodeMeta(entries)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}

// FuzzWALReplay throws arbitrary bytes at the file backend's write-ahead
// log replay path (torn tails, garbage JSON, replayed sequence numbers,
// drop tombstones for unknown containers). Opening must either succeed or
// fail with an error; it must never panic, whatever the log contains. One
// valid container metadata file is planted so records referencing ID 0 can
// exercise the full load path.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{"seq":1,"id":0,"start":0,"dataFill":0,"end":0}` + "\n"))
	f.Add([]byte(`{"seq":1,"id":0}` + "\n" + `{"seq":2,"op":"drop","id":0}` + "\n"))
	f.Add([]byte(`{"seq":1,"id":7,"start":0,"dataFill":10,"end":10}` + "\n")) // missing meta file
	f.Add([]byte(`{"seq":1,"id":0}` + "\n" + `{"seq":1,"id":0}` + "\n"))      // replayed seq
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"seq":1,"id":0}` + "\n" + `{"truncated`))                                  // torn tail
	f.Add([]byte(`{"torn` + "\n" + `{"seq":2,"id":0,"start":0,"dataFill":0,"end":0}` + "\n")) // record after torn line
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"seq":18446744073709551615,"id":4294967295}` + "\n"))
	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, containerDir), 0o755); err != nil {
			t.Fatal(err)
		}
		meta := EncodeMeta(fuzzMetaEntries(2))
		if err := os.WriteFile(filepath.Join(dir, containerDir, "000000.meta"), meta, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		fb, err := OpenFile(dir, false)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// A store that opened must behave: List and Sync must not panic,
		// and a reopen after Sync (WAL folded into the manifest) must
		// arrive at the same container set.
		infos, err := fb.List(context.Background())
		if err != nil {
			fb.Close() //nolint:errcheck // error path
			return
		}
		if err := fb.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		re, err := OpenFile(dir, false)
		if err != nil {
			t.Fatalf("reopen after checkpoint: %v", err)
		}
		defer re.Close() //nolint:errcheck // read-only reopen
		infos2, err := re.List(context.Background())
		if err != nil {
			t.Fatalf("list after checkpoint: %v", err)
		}
		if len(infos) != len(infos2) {
			t.Fatalf("container set changed across checkpoint: %d → %d", len(infos), len(infos2))
		}
	})
}

// FuzzManifest covers the checkpoint-manifest parser the WAL folds into.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"storesData":false,"checkpoint":0,"containers":[]}`))
	f.Add([]byte(`{"version":1,"containers":[{"id":0,"start":0,"dataFill":0,"end":0}]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, containerDir), 0o755); err != nil {
			t.Fatal(err)
		}
		meta := EncodeMeta(fuzzMetaEntries(2))
		if err := os.WriteFile(filepath.Join(dir, containerDir, "000000.meta"), meta, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		fb, err := OpenFile(dir, false)
		if err == nil {
			fb.Close() //nolint:errcheck // fuzz target
		}
	})
}
