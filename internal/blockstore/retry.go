package blockstore

import (
	"context"
	"time"

	"repro/internal/telemetry"
)

// RetryPolicy bounds the retry-with-backoff loop wrapped around transient
// backend errors.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	MaxAttempts int
	// BaseDelay is the wait before the first retry; it doubles each attempt.
	BaseDelay time.Duration
}

// DefaultRetryPolicy retries transient errors up to 5 attempts starting at
// a 500µs backoff (worst case ~7.5ms of real waiting).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 500 * time.Microsecond}
}

// Retry wraps a backend so that operations failing with a Transient error
// are re-issued under the policy. Non-transient errors, context
// cancellation, and attempt exhaustion pass the last error through.
// Re-issuing Seal is safe because Backend.Seal overwrites by contract.
type Retry struct {
	inner  Backend
	policy RetryPolicy

	retries   *telemetry.Counter
	transient *telemetry.Counter
	exhausted *telemetry.Counter
}

// WithRetry wraps inner with the policy (zero fields take defaults).
func WithRetry(inner Backend, policy RetryPolicy) *Retry {
	def := DefaultRetryPolicy()
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = def.MaxAttempts
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = def.BaseDelay
	}
	return &Retry{
		inner:  inner,
		policy: policy,
		retries: telemetry.NewCounter("blockstore_retries_total",
			"backend operations re-issued after a transient error"),
		transient: telemetry.NewCounter("blockstore_transient_errors_total",
			"transient backend errors observed (before retry)"),
		exhausted: telemetry.NewCounter("blockstore_retry_exhausted_total",
			"operations that failed even after all retry attempts"),
	}
}

func (r *Retry) Name() string     { return "retry(" + r.inner.Name() + ")" }
func (r *Retry) StoresData() bool { return r.inner.StoresData() }

// Inner returns the wrapped backend.
func (r *Retry) Inner() Backend { return r.inner }

// do runs op under the retry policy.
func (r *Retry) do(ctx context.Context, op func() error) error {
	delay := r.policy.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
		r.transient.Inc()
		if attempt >= r.policy.MaxAttempts {
			r.exhausted.Inc()
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		delay *= 2
		r.retries.Inc()
	}
}

func (r *Retry) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	return r.do(ctx, func() error { return r.inner.Seal(ctx, info, data) })
}

func (r *Retry) ReadData(ctx context.Context, id uint32) (data []byte, err error) {
	err = r.do(ctx, func() error {
		data, err = r.inner.ReadData(ctx, id)
		return err
	})
	return data, err
}

func (r *Retry) ReadDataRange(ctx context.Context, ids []uint32) (out [][]byte, err error) {
	err = r.do(ctx, func() error {
		out, err = r.inner.ReadDataRange(ctx, ids)
		return err
	})
	return out, err
}

func (r *Retry) List(ctx context.Context) ([]ContainerInfo, error) {
	return r.inner.List(ctx)
}

func (r *Retry) Sync(ctx context.Context) error {
	return r.do(ctx, func() error { return r.inner.Sync(ctx) })
}

func (r *Retry) Close() error { return r.inner.Close() }

// Quarantine passes through when the inner backend supports it.
func (r *Retry) Quarantine(ctx context.Context, id uint32, reason string) error {
	if q, ok := r.inner.(Quarantiner); ok {
		return q.Quarantine(ctx, id, reason)
	}
	return ErrNoQuarantine
}

// Drop passes through when the inner backend supports it. It is not
// retried: the inner Drop either failed before its intent record (nothing
// happened, the maintenance pass will reclaim the batch next epoch) or the
// intent is durable and recovery completes it.
func (r *Retry) Drop(ctx context.Context, ids []uint32, reason string) error {
	if d, ok := r.inner.(Dropper); ok {
		return d.Drop(ctx, ids, reason)
	}
	return ErrNoDrop
}
