package blockstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// scriptBackend fails each operation according to a script of errors (nil =
// success), consumed one per attempt; past the end it succeeds. It counts
// attempts so tests can assert exactly how often the retry layer re-issued.
type scriptBackend struct {
	Backend
	script   []error
	attempts int
}

func (s *scriptBackend) step() error {
	i := s.attempts
	s.attempts++
	if i < len(s.script) {
		return s.script[i]
	}
	return nil
}

func (s *scriptBackend) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	if err := s.step(); err != nil {
		return err
	}
	return s.Backend.Seal(ctx, info, data)
}

func (s *scriptBackend) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	if err := s.step(); err != nil {
		return nil, err
	}
	return s.Backend.ReadData(ctx, id)
}

var errPermanent = errors.New("disk on fire")

// TestRetryTable drives the retry wrapper through its edge cases with a
// scripted backend: success after k transient failures, attempt exhaustion,
// non-transient passthrough (no retry spent on it), and mixed scripts.
func TestRetryTable(t *testing.T) {
	transient := func() error { return Transient(fmt.Errorf("EIO")) }
	cases := []struct {
		name         string
		script       []error
		maxAttempts  int
		wantErr      bool
		wantTrans    bool // surviving error still reports transient
		wantAttempts int
	}{
		{
			name:         "first try succeeds",
			script:       nil,
			maxAttempts:  3,
			wantAttempts: 1,
		},
		{
			name:         "transient then success",
			script:       []error{transient()},
			maxAttempts:  3,
			wantAttempts: 2,
		},
		{
			name:         "succeeds on the last allowed attempt",
			script:       []error{transient(), transient()},
			maxAttempts:  3,
			wantAttempts: 3,
		},
		{
			name:         "exhausted retries surface the transient error",
			script:       []error{transient(), transient(), transient()},
			maxAttempts:  3,
			wantErr:      true,
			wantTrans:    true,
			wantAttempts: 3, // not 4: the policy bounds total tries, not retries
		},
		{
			name:         "non-transient error passes straight through",
			script:       []error{errPermanent},
			maxAttempts:  5,
			wantErr:      true,
			wantAttempts: 1,
		},
		{
			name:         "transient then non-transient stops retrying",
			script:       []error{transient(), errPermanent},
			maxAttempts:  5,
			wantErr:      true,
			wantAttempts: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sb := &scriptBackend{Backend: NewSim(true), script: tc.script}
			rb := WithRetry(sb, RetryPolicy{MaxAttempts: tc.maxAttempts, BaseDelay: time.Microsecond})
			info, data := mkInfo(0, 2)
			err := rb.Seal(context.Background(), info, data)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if tc.wantTrans && !IsTransient(err) {
				t.Fatalf("surviving error lost its transient marker: %v", err)
			}
			if err != nil && !tc.wantTrans && tc.wantErr && !errors.Is(err, errPermanent) {
				t.Fatalf("expected the permanent error back, got %v", err)
			}
			if sb.attempts != tc.wantAttempts {
				t.Fatalf("backend saw %d attempts, want %d", sb.attempts, tc.wantAttempts)
			}
		})
	}
}

// TestRetryCancelledMidBackoff cancels the context while the wrapper is
// sleeping between attempts: the call must return ctx's error promptly and
// stop re-issuing the operation.
func TestRetryCancelledMidBackoff(t *testing.T) {
	sb := &scriptBackend{
		Backend: NewSim(true),
		script:  []error{Transient(errors.New("EIO")), Transient(errors.New("EIO")), Transient(errors.New("EIO"))},
	}
	// A long backoff so cancellation lands inside the sleep, not between ops.
	rb := WithRetry(sb, RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	info, data := mkInfo(0, 2)
	start := time.Now()
	err := rb.Seal(ctx, info, data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled out of the backoff sleep, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep did not observe ctx", el)
	}
	if sb.attempts != 1 {
		t.Fatalf("backend saw %d attempts; cancellation mid-backoff must not re-issue", sb.attempts)
	}
}

// TestRetryReadDataPath checks the read path retries independently of Seal
// and returns the recovered data.
func TestRetryReadDataPath(t *testing.T) {
	inner := NewSim(true)
	info, data := mkInfo(3, 4)
	if err := inner.Seal(context.Background(), info, data); err != nil {
		t.Fatal(err)
	}
	sb := &scriptBackend{Backend: inner, script: []error{Transient(errors.New("EIO"))}}
	rb := WithRetry(sb, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	got, err := rb.ReadData(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("recovered %d bytes, want %d", len(got), len(data))
	}
	if sb.attempts != 2 {
		t.Fatalf("backend saw %d attempts, want 2", sb.attempts)
	}
}
