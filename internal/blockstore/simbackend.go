package blockstore

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Sim is the in-memory backend: sealed containers live in a process map,
// exactly as they implicitly did when the simulated disk.Device held the
// bytes itself. It is the default backend and the baseline every other
// implementation is measured against — engine stats and recipes through Sim
// are bit-identical to the pre-blockstore code.
type Sim struct {
	mu        sync.RWMutex
	storeData bool
	infos     map[uint32]ContainerInfo
	data      map[uint32][]byte
	closed    bool
}

// NewSim returns an in-memory backend. storeData selects whether Seal
// retains data sections (content verification) or only their lengths
// (metadata-only simulation).
func NewSim(storeData bool) *Sim {
	return &Sim{
		storeData: storeData,
		infos:     make(map[uint32]ContainerInfo),
		data:      make(map[uint32][]byte),
	}
}

func (s *Sim) Name() string     { return "sim" }
func (s *Sim) StoresData() bool { return s.storeData }

func (s *Sim) Seal(ctx context.Context, info ContainerInfo, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.infos[info.ID] = cloneInfo(info)
	if s.storeData {
		buf := make([]byte, len(data))
		copy(buf, data)
		s.data[info.ID] = buf
	}
	return nil
}

func (s *Sim) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	info, ok := s.infos[id]
	if !ok {
		return nil, fmt.Errorf("sim backend: container %d not sealed", id)
	}
	if !s.storeData {
		return make([]byte, info.DataFill), nil
	}
	buf := make([]byte, len(s.data[id]))
	copy(buf, s.data[id])
	return buf, nil
}

func (s *Sim) ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	return ReadDataRangeNaive(ctx, s, ids)
}

func (s *Sim) List(ctx context.Context) ([]ContainerInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]ContainerInfo, 0, len(s.infos))
	for _, info := range s.infos {
		out = append(out, cloneInfo(info))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (s *Sim) Sync(ctx context.Context) error { return ctx.Err() }

func (s *Sim) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Quarantine drops the container from the live set. In-memory stores have no
// forensics directory; the reason is recorded only by the caller's report.
func (s *Sim) Quarantine(ctx context.Context, id uint32, reason string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.infos[id]; !ok {
		return fmt.Errorf("sim backend: quarantine: container %d not sealed", id)
	}
	delete(s.infos, id)
	delete(s.data, id)
	return nil
}

// Drop removes a batch of merged-away containers from the live set. The
// in-memory store needs no intent record: map deletes are atomic under the
// lock and nothing survives a crash anyway.
func (s *Sim) Drop(ctx context.Context, ids []uint32, reason string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, id := range ids {
		if _, ok := s.infos[id]; !ok {
			return fmt.Errorf("sim backend: drop: container %d not sealed", id)
		}
	}
	for _, id := range ids {
		delete(s.infos, id)
		delete(s.data, id)
	}
	return nil
}

func cloneInfo(info ContainerInfo) ContainerInfo {
	out := info
	out.Entries = make([]ChunkMeta, len(info.Entries))
	copy(out.Entries, info.Entries)
	return out
}
