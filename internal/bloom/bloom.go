// Package bloom implements the Bloom filter used as DDFS's "summary vector":
// a compact in-RAM structure that answers "definitely new" for most new
// chunks, so only chunks that might be duplicates pay for an on-disk index
// lookup.
//
// Keys are chunk fingerprints. Because a fingerprint is already a uniform
// SHA-256 digest, the k probe positions are derived with double hashing from
// two 64-bit halves of the digest (Kirsch–Mitzenmacher), which is as good as
// k independent hash functions.
package bloom

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"repro/internal/chunk"
)

// Filter is a standard m-bit, k-hash Bloom filter. Adds and queries use
// atomic word operations, so the filter is safe for concurrent use by
// parallel backup streams; a query concurrent with an add may miss bits
// still being set, which only risks a harmless spurious "new chunk" verdict.
type Filter struct {
	bits []atomic.Uint64
	m    uint64        // number of bits
	k    int           // number of probes
	n    atomic.Uint64 // number of inserted keys (for saturation reporting)
}

// New creates a filter with capacity for expectedKeys at the given target
// false-positive rate. Panics on non-positive arguments — sizing is a
// programming decision, not runtime input.
func New(expectedKeys int, fpRate float64) *Filter {
	if expectedKeys <= 0 || fpRate <= 0 || fpRate >= 1 {
		panic("bloom: need expectedKeys > 0 and 0 < fpRate < 1")
	}
	// Optimal sizing: m = -n ln p / (ln 2)^2 ; k = m/n ln 2.
	n := float64(expectedKeys)
	m := math.Ceil(-n * math.Log(fpRate) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / n * math.Ln2))
	if k < 1 {
		k = 1
	}
	mbits := uint64(m)
	if mbits < 64 {
		mbits = 64
	}
	return &Filter{bits: make([]atomic.Uint64, (mbits+63)/64), m: mbits, k: k}
}

// probes derives the k bit positions for a fingerprint.
func (f *Filter) probe(fp chunk.Fingerprint, i int) uint64 {
	h1 := binary.BigEndian.Uint64(fp[0:8])
	h2 := binary.BigEndian.Uint64(fp[8:16]) | 1 // ensure odd stride
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts a fingerprint.
func (f *Filter) Add(fp chunk.Fingerprint) {
	for i := 0; i < f.k; i++ {
		p := f.probe(fp, i)
		f.bits[p/64].Or(1 << (p % 64))
	}
	f.n.Add(1)
}

// MayContain reports whether fp may have been added. False means definitely
// not added; true may be a false positive.
func (f *Filter) MayContain(fp chunk.Fingerprint) bool {
	for i := 0; i < f.k; i++ {
		p := f.probe(fp, i)
		if f.bits[p/64].Load()&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n.Load() }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of probes per key.
func (f *Filter) K() int { return f.k }

// EstimatedFPRate returns the expected false-positive probability at the
// current fill: (1 - e^(-kn/m))^k.
func (f *Filter) EstimatedFPRate() float64 {
	n := f.n.Load()
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(n)/float64(f.m)), float64(f.k))
}

// FillRatio returns the fraction of set bits, a direct saturation measure.
func (f *Filter) FillRatio() float64 {
	var set int
	for i := range f.bits {
		set += popcount(f.bits[i].Load())
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
