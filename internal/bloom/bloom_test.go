package bloom

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
)

func fpOf(i uint64) chunk.Fingerprint {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return chunk.Of(b[:])
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{0, 0.01}, {10, 0}, {10, 1}, {-1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%v) should panic", c.n, c.p)
				}
			}()
			New(c.n, c.p)
		}()
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := New(10_000, 0.01)
	for i := uint64(0); i < 10_000; i++ {
		f.Add(fpOf(i))
	}
	for i := uint64(0); i < 10_000; i++ {
		if !f.MayContain(fpOf(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Count() != 10_000 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 50_000
	f := New(n, 0.01)
	for i := uint64(0); i < n; i++ {
		f.Add(fpOf(i))
	}
	var fps int
	const probes = 50_000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(fpOf(i)) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > 0.03 {
		t.Fatalf("observed FP rate %.4f far above target 0.01", rate)
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > 0.05 {
		t.Fatalf("EstimatedFPRate = %v out of plausible band", est)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(100, 0.01)
	if f.MayContain(fpOf(1)) {
		t.Fatal("empty filter must contain nothing")
	}
	if f.EstimatedFPRate() != 0 {
		t.Fatal("empty filter FP rate must be 0")
	}
	if f.FillRatio() != 0 {
		t.Fatal("empty filter fill must be 0")
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(1000, 0.01)
	prev := f.FillRatio()
	for i := uint64(0); i < 1000; i += 100 {
		for j := i; j < i+100; j++ {
			f.Add(fpOf(j))
		}
		cur := f.FillRatio()
		if cur < prev {
			t.Fatal("fill ratio must be monotone under Add")
		}
		prev = cur
	}
	// At design capacity the optimal filter is ~50% full.
	if prev < 0.3 || prev > 0.7 {
		t.Fatalf("fill ratio at capacity = %.2f, want ~0.5", prev)
	}
}

func TestSizingMonotonicity(t *testing.T) {
	small := New(1000, 0.01)
	big := New(100_000, 0.01)
	if big.Bits() <= small.Bits() {
		t.Fatal("more keys must mean more bits")
	}
	loose := New(1000, 0.1)
	tight := New(1000, 0.001)
	if tight.Bits() <= loose.Bits() {
		t.Fatal("tighter FP rate must mean more bits")
	}
	if small.K() < 1 {
		t.Fatal("K must be at least 1")
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 0xFF: 8, ^uint64(0): 64}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%x) = %d, want %d", x, got, want)
		}
	}
}

// Property: anything added is always found (no false negatives), regardless
// of key material.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(5000, 0.02)
	fn := func(data []byte) bool {
		fp := chunk.Of(data)
		f.Add(fp)
		return f.MayContain(fp)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1_000_000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(fpOf(uint64(i)))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(1_000_000, 0.01)
	for i := uint64(0); i < 100_000; i++ {
		f.Add(fpOf(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(fpOf(uint64(i % 200_000)))
	}
}
