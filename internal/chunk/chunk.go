// Package chunk defines the fundamental data types shared by every layer of
// the deduplication system: chunk fingerprints, chunk descriptors, physical
// locations, and stream recipes.
//
// A chunk is the unit of deduplication: a contiguous byte run produced by a
// chunker (see internal/chunker) and identified by the SHA-256 of its
// content. A recipe is the ordered list of chunk references that
// reconstitutes one logical stream (one backup generation).
package chunk

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// FingerprintSize is the byte length of a chunk fingerprint (SHA-256).
const FingerprintSize = 32

// Fingerprint is the content address of a chunk: the SHA-256 digest of its
// bytes. It is a value type usable as a map key.
type Fingerprint [FingerprintSize]byte

// Fingerprint computes the fingerprint of data.
func Of(data []byte) Fingerprint {
	return Fingerprint(sha256.Sum256(data))
}

// String returns the full lowercase hex form of the fingerprint.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns an abbreviated hex prefix, convenient for logs and tests.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// IsZero reports whether f is the all-zero fingerprint. The zero fingerprint
// is reserved as "no chunk" throughout the system.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// Uint64 returns the first 8 bytes of the fingerprint as a big-endian
// integer. Because SHA-256 output is uniformly distributed, this prefix is
// itself a high-quality 64-bit hash; the Bloom filter, index bucketing, and
// similarity signatures all key off it.
func (f Fingerprint) Uint64() uint64 { return binary.BigEndian.Uint64(f[:8]) }

// Chunk is one content-defined chunk of a stream. Data may be nil when the
// system runs in metadata-only (simulation) mode; Size is always valid.
type Chunk struct {
	FP   Fingerprint
	Size uint32
	Data []byte // nil in metadata-only mode
}

// New builds a Chunk from raw bytes, computing its fingerprint. The returned
// chunk retains data (no copy is made).
func New(data []byte) Chunk {
	return Chunk{FP: Of(data), Size: uint32(len(data)), Data: data}
}

// Meta builds a metadata-only chunk from a precomputed fingerprint and size.
func Meta(fp Fingerprint, size uint32) Chunk {
	return Chunk{FP: fp, Size: size}
}

// Location is the physical placement of one stored chunk copy: the container
// that holds it, the segment it was written as part of, and the byte offset
// of the chunk data on the simulated device.
type Location struct {
	Container uint32 // container sequence number (0 is valid)
	Segment   uint64 // ID of the on-disk segment the chunk was written with
	Offset    int64  // absolute device offset of the chunk data
	Size      uint32 // chunk size in bytes
}

// Valid reports whether the location refers to a stored chunk. The zero
// Location is "not stored" except that container 0 offset 0 is legitimate,
// so validity is tracked by Size != 0 (no zero-length chunk is ever stored).
func (l Location) Valid() bool { return l.Size != 0 }

func (l Location) String() string {
	return fmt.Sprintf("c%04d/s%d@%d+%d", l.Container, l.Segment, l.Offset, l.Size)
}

// Ref is one entry of a recipe: a chunk reference together with the location
// it resolved to at backup time.
type Ref struct {
	FP   Fingerprint
	Size uint32
	Loc  Location
}

// Recipe reconstitutes one logical stream: the ordered chunk references of a
// backup generation.
type Recipe struct {
	// Label identifies the stream (e.g. "user0/gen07").
	Label string
	Refs  []Ref
}

// Append adds one reference.
func (r *Recipe) Append(fp Fingerprint, size uint32, loc Location) {
	r.Refs = append(r.Refs, Ref{FP: fp, Size: size, Loc: loc})
}

// Len returns the number of chunk references.
func (r *Recipe) Len() int { return len(r.Refs) }

// Bytes returns the logical (pre-dedup) size of the stream in bytes.
func (r *Recipe) Bytes() int64 {
	var n int64
	for i := range r.Refs {
		n += int64(r.Refs[i].Size)
	}
	return n
}

// Fragments counts the placement fragments of the recipe: maximal runs of
// consecutive references whose locations are physically contiguous on
// device. It is exactly the N of the paper's Eq. 1 — the number of disk
// seeks a naive restore of this stream would need.
func (r *Recipe) Fragments() int {
	if len(r.Refs) == 0 {
		return 0
	}
	frags := 1
	prev := r.Refs[0].Loc
	for _, ref := range r.Refs[1:] {
		if ref.Loc.Offset != prev.Offset+int64(prev.Size) {
			frags++
		}
		prev = ref.Loc
	}
	return frags
}

// ContainersTouched counts the distinct containers referenced by the recipe,
// a coarser fragmentation measure used by the restore cache analysis.
func (r *Recipe) ContainersTouched() int {
	seen := make(map[uint32]struct{}, 64)
	for i := range r.Refs {
		seen[r.Refs[i].Loc.Container] = struct{}{}
	}
	return len(seen)
}
