package chunk

import (
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestOfMatchesSHA256(t *testing.T) {
	data := []byte("the quick brown fox")
	want := sha256.Sum256(data)
	if got := Of(data); got != Fingerprint(want) {
		t.Fatalf("Of() = %s, want %x", got, want)
	}
}

func TestFingerprintString(t *testing.T) {
	fp := Of([]byte("x"))
	s := fp.String()
	if len(s) != 64 {
		t.Fatalf("String() length = %d, want 64", len(s))
	}
	if fp.Short() != s[:12] {
		t.Fatalf("Short() = %q, want prefix %q", fp.Short(), s[:12])
	}
}

func TestFingerprintIsZero(t *testing.T) {
	var zero Fingerprint
	if !zero.IsZero() {
		t.Fatal("zero fingerprint should report IsZero")
	}
	if Of(nil).IsZero() {
		t.Fatal("SHA-256 of empty input must not be the zero fingerprint")
	}
}

func TestUint64Deterministic(t *testing.T) {
	fp := Of([]byte("abc"))
	if fp.Uint64() != fp.Uint64() {
		t.Fatal("Uint64 must be deterministic")
	}
	if fp.Uint64() == Of([]byte("abd")).Uint64() {
		t.Fatal("distinct contents should (overwhelmingly) differ in Uint64")
	}
}

func TestNewChunk(t *testing.T) {
	data := []byte("hello chunk")
	c := New(data)
	if c.Size != uint32(len(data)) {
		t.Fatalf("Size = %d, want %d", c.Size, len(data))
	}
	if c.FP != Of(data) {
		t.Fatal("fingerprint mismatch")
	}
	if &c.Data[0] != &data[0] {
		t.Fatal("New must retain the caller's slice, not copy")
	}
}

func TestMetaChunk(t *testing.T) {
	fp := Of([]byte("m"))
	c := Meta(fp, 4096)
	if c.Data != nil {
		t.Fatal("Meta chunk must carry no data")
	}
	if c.Size != 4096 || c.FP != fp {
		t.Fatalf("Meta fields wrong: %+v", c)
	}
}

func TestLocationValid(t *testing.T) {
	if (Location{}).Valid() {
		t.Fatal("zero location must be invalid")
	}
	if !(Location{Size: 1}).Valid() {
		t.Fatal("sized location must be valid")
	}
}

func TestLocationString(t *testing.T) {
	l := Location{Container: 7, Segment: 3, Offset: 128, Size: 64}
	if got := l.String(); got != "c0007/s3@128+64" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRecipeAppendAndBytes(t *testing.T) {
	var r Recipe
	r.Append(Of([]byte("a")), 10, Location{Offset: 0, Size: 10})
	r.Append(Of([]byte("b")), 20, Location{Offset: 10, Size: 20})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Bytes() != 30 {
		t.Fatalf("Bytes = %d, want 30", r.Bytes())
	}
}

func TestRecipeFragmentsEmpty(t *testing.T) {
	var r Recipe
	if r.Fragments() != 0 {
		t.Fatal("empty recipe has zero fragments")
	}
}

func TestRecipeFragmentsContiguous(t *testing.T) {
	var r Recipe
	off := int64(0)
	for i := 0; i < 10; i++ {
		r.Append(Fingerprint{byte(i)}, 100, Location{Offset: off, Size: 100})
		off += 100
	}
	if got := r.Fragments(); got != 1 {
		t.Fatalf("contiguous recipe Fragments = %d, want 1", got)
	}
}

func TestRecipeFragmentsScattered(t *testing.T) {
	var r Recipe
	// Each chunk placed with a gap: every reference is its own fragment.
	for i := 0; i < 5; i++ {
		r.Append(Fingerprint{byte(i)}, 100, Location{Offset: int64(i) * 1000, Size: 100})
	}
	if got := r.Fragments(); got != 5 {
		t.Fatalf("scattered recipe Fragments = %d, want 5", got)
	}
}

func TestRecipeFragmentsMixed(t *testing.T) {
	var r Recipe
	// Two contiguous runs separated by a jump: 2 fragments.
	r.Append(Fingerprint{1}, 50, Location{Offset: 0, Size: 50})
	r.Append(Fingerprint{2}, 50, Location{Offset: 50, Size: 50})
	r.Append(Fingerprint{3}, 50, Location{Offset: 5000, Size: 50})
	r.Append(Fingerprint{4}, 50, Location{Offset: 5050, Size: 50})
	if got := r.Fragments(); got != 2 {
		t.Fatalf("Fragments = %d, want 2", got)
	}
}

func TestContainersTouched(t *testing.T) {
	var r Recipe
	r.Append(Fingerprint{1}, 1, Location{Container: 0, Size: 1})
	r.Append(Fingerprint{2}, 1, Location{Container: 0, Size: 1})
	r.Append(Fingerprint{3}, 1, Location{Container: 9, Size: 1})
	if got := r.ContainersTouched(); got != 2 {
		t.Fatalf("ContainersTouched = %d, want 2", got)
	}
}

// Property: fingerprinting is a pure function and collision-free over the
// generated sample (quick generates distinct random slices with overwhelming
// probability; equal inputs must produce equal outputs).
func TestFingerprintProperties(t *testing.T) {
	pure := func(data []byte) bool {
		return Of(data) == Of(append([]byte(nil), data...))
	}
	if err := quick.Check(pure, nil); err != nil {
		t.Fatal(err)
	}
	distinct := func(a, b []byte) bool {
		if string(a) == string(b) {
			return Of(a) == Of(b)
		}
		return Of(a) != Of(b)
	}
	if err := quick.Check(distinct, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fragments is bounded by [1, Len] for non-empty recipes and a
// recipe laid out contiguously always reports exactly 1.
func TestFragmentsBoundsProperty(t *testing.T) {
	f := func(offsets []int16) bool {
		var r Recipe
		for i, o := range offsets {
			r.Append(Fingerprint{byte(i)}, 8, Location{Offset: int64(o), Size: 8})
		}
		got := r.Fragments()
		if len(offsets) == 0 {
			return got == 0
		}
		return got >= 1 && got <= len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
