package chunker

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// benchNext drains an 8 MiB seeded random stream through mk once per
// iteration; with b.SetBytes the report reads as MB/s of raw chunking
// throughput for the Next hot loop.
func benchNext(b *testing.B, mk func(r io.Reader) (Chunker, error)) {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 8<<20)
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mk(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGearNext(b *testing.B) {
	benchNext(b, func(r io.Reader) (Chunker, error) { return NewGear(r, DefaultParams()) })
}

func BenchmarkRabinNext(b *testing.B) {
	benchNext(b, func(r io.Reader) (Chunker, error) { return NewRabin(r, DefaultParams()) })
}

func BenchmarkFixedNext(b *testing.B) {
	benchNext(b, func(r io.Reader) (Chunker, error) { return NewFixed(r, DefaultTarget) })
}

func BenchmarkTTTDNext(b *testing.B) {
	benchNext(b, func(r io.Reader) (Chunker, error) { return NewTTTD(r, DefaultParams()) })
}
