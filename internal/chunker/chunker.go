// Package chunker splits byte streams into chunks.
//
// Three chunkers are provided:
//
//   - Gear: content-defined chunking with a gear rolling hash and
//     FastCDC-style normalization (two masks around the target size plus a
//     hard minimum/maximum). This is the default for all experiments; it is
//     fast and shift-tolerant, so an insertion early in a file only disturbs
//     chunk boundaries locally.
//   - Rabin: classic Rabin-fingerprint content-defined chunking, kept as a
//     reference implementation and cross-check.
//   - Fixed: fixed-size chunking, the degenerate baseline (no shift
//     tolerance), used in tests and ablations.
//
// All chunkers implement the Chunker interface and stream: Next returns the
// next chunk until io.EOF.
package chunker

import (
	"errors"
	"io"
)

// Default chunking parameters, matching common backup-dedup practice
// (the paper's systems use variable chunks of a few KB).
const (
	DefaultMin    = 2 * 1024  // minimum chunk size
	DefaultTarget = 8 * 1024  // target average chunk size
	DefaultMax    = 64 * 1024 // maximum chunk size
)

// Chunker produces successive chunk byte-slices from a stream. The returned
// slice is only valid until the next call to Next.
type Chunker interface {
	// Next returns the next chunk. It returns io.EOF when the stream is
	// exhausted (with a nil chunk).
	Next() ([]byte, error)
}

// Params configures a content-defined chunker.
type Params struct {
	Min    int // no boundary before Min bytes
	Target int // average chunk size (must be a power of two for Gear masks)
	Max    int // forced boundary at Max bytes
}

// DefaultParams returns the package defaults.
func DefaultParams() Params {
	return Params{Min: DefaultMin, Target: DefaultTarget, Max: DefaultMax}
}

var errBadParams = errors.New("chunker: require 0 < Min <= Target <= Max and Target a power of two")

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Min <= 0 || p.Target < p.Min || p.Max < p.Target {
		return errBadParams
	}
	if p.Target&(p.Target-1) != 0 {
		return errBadParams
	}
	return nil
}

// buffered is the shared reader machinery: it keeps a sliding window buffer
// over the input so chunk slices can be handed out without copying.
type buffered struct {
	r    io.Reader
	buf  []byte
	off  int // start of unconsumed bytes
	n    int // end of valid bytes
	err  error
	done bool
}

func newBuffered(r io.Reader, bufSize int) *buffered {
	if bufSize < 1 {
		bufSize = 1
	}
	return &buffered{r: r, buf: make([]byte, bufSize)}
}

// fill ensures at least want unconsumed bytes are buffered, or the stream is
// exhausted. It reports the number of unconsumed bytes available.
func (b *buffered) fill(want int) int {
	if b.n-b.off >= want || b.done {
		return b.n - b.off
	}
	// Slide remaining bytes to the front to make room. In the common steady
	// state the window is fully consumed (off == n) and the slide is a pure
	// index reset with no copy.
	if b.off > 0 {
		if b.off == b.n {
			b.off, b.n = 0, 0
		} else {
			copy(b.buf, b.buf[b.off:b.n])
			b.n -= b.off
			b.off = 0
		}
	}
	for b.n < len(b.buf) && b.n < want {
		m, err := b.r.Read(b.buf[b.n:])
		b.n += m
		if err != nil {
			b.done = true
			if err != io.EOF {
				b.err = err
			}
			break
		}
	}
	return b.n - b.off
}

// take consumes k bytes and returns them.
func (b *buffered) take(k int) []byte {
	s := b.buf[b.off : b.off+k]
	b.off += k
	return s
}
