package chunker

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// randBytes returns n deterministic pseudo-random bytes.
func randBytes(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// collect runs a chunker to exhaustion, returning copies of all chunks.
func collect(t testing.TB, c Chunker) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(ch) == 0 {
			t.Fatal("chunker returned empty chunk")
		}
		out = append(out, append([]byte(nil), ch...))
	}
}

func reassemble(chunks [][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c)
	}
	return buf.Bytes()
}

func eachKind(t *testing.T, fn func(t *testing.T, k Kind)) {
	for _, k := range []Kind{KindGear, KindRabin, KindFixed, KindTTTD} {
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{DefaultParams(), true},
		{Params{Min: 0, Target: 8, Max: 16}, false},
		{Params{Min: 4, Target: 2, Max: 16}, false},
		{Params{Min: 4, Target: 8, Max: 4}, false},
		{Params{Min: 4, Target: 12, Max: 16}, false}, // not power of two
		{Params{Min: 1, Target: 1, Max: 1}, true},
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v) err=%v, want ok=%v", i, c.p, err, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindGear.String() != "gear" || KindRabin.String() != "rabin" ||
		KindFixed.String() != "fixed" || KindTTTD.String() != "tttd" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestNewRejectsBadKind(t *testing.T) {
	if _, err := New(Kind(99), bytes.NewReader(nil), DefaultParams()); err == nil {
		t.Fatal("want error for bad kind")
	}
}

func TestReassemblyIdentity(t *testing.T) {
	data := randBytes(t, 1<<20, 42)
	eachKind(t, func(t *testing.T, k Kind) {
		c, err := New(k, bytes.NewReader(data), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		chunks := collect(t, c)
		if !bytes.Equal(reassemble(chunks), data) {
			t.Fatal("reassembled chunks differ from input")
		}
	})
}

func TestEmptyInput(t *testing.T) {
	eachKind(t, func(t *testing.T, k Kind) {
		c, err := New(k, bytes.NewReader(nil), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if chunks := collect(t, c); len(chunks) != 0 {
			t.Fatalf("empty input produced %d chunks", len(chunks))
		}
	})
}

func TestTinyInput(t *testing.T) {
	data := []byte("tiny")
	eachKind(t, func(t *testing.T, k Kind) {
		c, err := New(k, bytes.NewReader(data), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		chunks := collect(t, c)
		if len(chunks) != 1 || !bytes.Equal(chunks[0], data) {
			t.Fatalf("tiny input chunks = %v", chunks)
		}
	})
}

func TestSizeBounds(t *testing.T) {
	p := DefaultParams()
	data := randBytes(t, 4<<20, 7)
	for _, k := range []Kind{KindGear, KindRabin, KindTTTD} {
		t.Run(k.String(), func(t *testing.T) {
			c, err := New(k, bytes.NewReader(data), p)
			if err != nil {
				t.Fatal(err)
			}
			chunks := collect(t, c)
			for i, ch := range chunks {
				if len(ch) > p.Max {
					t.Fatalf("chunk %d size %d exceeds max %d", i, len(ch), p.Max)
				}
				if i < len(chunks)-1 && len(ch) < p.Min {
					t.Fatalf("non-final chunk %d size %d below min %d", i, len(ch), p.Min)
				}
			}
		})
	}
}

func TestAverageChunkSizeNearTarget(t *testing.T) {
	p := DefaultParams()
	data := randBytes(t, 8<<20, 3)
	for _, k := range []Kind{KindGear, KindRabin, KindTTTD} {
		t.Run(k.String(), func(t *testing.T) {
			c, err := New(k, bytes.NewReader(data), p)
			if err != nil {
				t.Fatal(err)
			}
			chunks := collect(t, c)
			avg := float64(len(data)) / float64(len(chunks))
			// Accept a broad band: CDC averages land within ~2x of target.
			if avg < float64(p.Target)/2 || avg > float64(p.Target)*2 {
				t.Fatalf("average chunk size %.0f too far from target %d", avg, p.Target)
			}
		})
	}
}

func TestFixedChunkSizes(t *testing.T) {
	data := randBytes(t, 100*1024+17, 9)
	c, err := NewFixed(bytes.NewReader(data), 4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	for i, ch := range chunks {
		if i < len(chunks)-1 && len(ch) != 4096 {
			t.Fatalf("chunk %d size = %d, want 4096", i, len(ch))
		}
	}
	if got := len(chunks[len(chunks)-1]); got != (100*1024+17)%4096 {
		t.Fatalf("final chunk size = %d", got)
	}
}

func TestNewFixedRejectsBadSize(t *testing.T) {
	if _, err := NewFixed(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("want error")
	}
}

// TestShiftTolerance is the core CDC property: inserting bytes near the
// front of a stream must leave the vast majority of chunk boundaries (and
// hence chunks) unchanged.
func TestShiftTolerance(t *testing.T) {
	base := randBytes(t, 2<<20, 11)
	shifted := append(append(append([]byte(nil), base[:1000]...), []byte("INSERTED BYTES")...), base[1000:]...)

	for _, k := range []Kind{KindGear, KindRabin, KindTTTD} {
		t.Run(k.String(), func(t *testing.T) {
			c1, _ := New(k, bytes.NewReader(base), DefaultParams())
			c2, _ := New(k, bytes.NewReader(shifted), DefaultParams())
			set := make(map[string]bool)
			var total int
			for _, ch := range collect(t, c1) {
				set[string(ch)] = true
				total++
			}
			var common int
			for _, ch := range collect(t, c2) {
				if set[string(ch)] {
					common++
				}
			}
			if frac := float64(common) / float64(total); frac < 0.95 {
				t.Fatalf("only %.1f%% of chunks survive a front insertion; CDC should preserve >95%%", frac*100)
			}
		})
	}
}

// TestFixedNotShiftTolerant documents the baseline failure mode: fixed-size
// chunking loses nearly all chunks after an unaligned insertion.
func TestFixedNotShiftTolerant(t *testing.T) {
	base := randBytes(t, 1<<20, 13)
	shifted := append(append(append([]byte(nil), base[:999]...), byte('X')), base[999:]...)
	c1, _ := NewFixed(bytes.NewReader(base), 4096)
	c2, _ := NewFixed(bytes.NewReader(shifted), 4096)
	set := make(map[string]bool)
	for _, ch := range collect(t, c1) {
		set[string(ch)] = true
	}
	var common, total int
	for _, ch := range collect(t, c2) {
		total++
		if set[string(ch)] {
			common++
		}
	}
	if frac := float64(common) / float64(total); frac > 0.10 {
		t.Fatalf("fixed chunking preserved %.1f%% after shift; expected near-total loss", frac*100)
	}
}

func TestDeterminism(t *testing.T) {
	data := randBytes(t, 1<<20, 21)
	eachKind(t, func(t *testing.T, k Kind) {
		c1, _ := New(k, bytes.NewReader(data), DefaultParams())
		c2, _ := New(k, bytes.NewReader(data), DefaultParams())
		a, b := collect(t, c1), collect(t, c2)
		if len(a) != len(b) {
			t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("chunk %d differs between runs", i)
			}
		}
	})
}

// TestBoundaryIndependence verifies chunk boundaries after a cut point do
// not depend on data before it (the localized-boundary property): chunking
// the suffix starting at a boundary yields the same chunks.
func TestBoundaryIndependence(t *testing.T) {
	data := randBytes(t, 2<<20, 31)
	c, _ := NewGear(bytes.NewReader(data), DefaultParams())
	chunks := collect(t, c)
	if len(chunks) < 10 {
		t.Skip("not enough chunks")
	}
	// Re-chunk starting from the 5th boundary.
	off := 0
	for i := 0; i < 5; i++ {
		off += len(chunks[i])
	}
	c2, _ := NewGear(bytes.NewReader(data[off:]), DefaultParams())
	rest := collect(t, c2)
	for i := 0; i < 3; i++ {
		if !bytes.Equal(rest[i], chunks[5+i]) {
			t.Fatalf("suffix chunk %d differs: boundaries not local", i)
		}
	}
}

// drip is a reader that returns one byte per Read call, exercising the
// buffered refill logic.
type drip struct{ data []byte }

func (d *drip) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	p[0] = d.data[0]
	d.data = d.data[1:]
	return 1, nil
}

func TestDrippingReader(t *testing.T) {
	data := randBytes(t, 200*1024, 5)
	c, err := NewGear(&drip{data: data}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassemble(collect(t, c)), data) {
		t.Fatal("dripping reader reassembly failed")
	}
}

// errReader fails after some bytes.
type errReader struct{ n int }

func (e *errReader) Read(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	k := min(e.n, len(p))
	for i := 0; i < k; i++ {
		p[i] = byte(i)
	}
	e.n -= k
	return k, nil
}

func TestReaderErrorPropagates(t *testing.T) {
	c, err := NewGear(&errReader{n: 100}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := c.Next()
		if err == io.ErrUnexpectedEOF {
			return // propagated
		}
		if err == io.EOF {
			t.Fatal("error was swallowed as EOF")
		}
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestRabinPolyHelpers(t *testing.T) {
	if d := polyDegree(rabinPoly); d != 53 {
		t.Fatalf("polyDegree = %d, want 53", d)
	}
	if polyDegree(1) != 0 {
		t.Fatal("degree of 1 is 0")
	}
	// polyMod result must always have degree < deg.
	deg := polyDegree(rabinPoly)
	for _, v := range []uint64{0, 1, rabinPoly, ^uint64(0), 0xDEADBEEFCAFE} {
		m := polyMod(v, rabinPoly, deg)
		if m>>uint(deg) != 0 {
			t.Fatalf("polyMod(%x) = %x has degree >= %d", v, m, deg)
		}
	}
	if polyMod(rabinPoly, rabinPoly, deg) != 0 {
		t.Fatal("poly mod itself must be zero")
	}
}

func BenchmarkGearChunking(b *testing.B) {
	data := randBytes(b, 8<<20, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewGear(bytes.NewReader(data), DefaultParams())
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkRabinChunking(b *testing.B) {
	data := randBytes(b, 8<<20, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewRabin(bytes.NewReader(data), DefaultParams())
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

// TestTTTDBackupDivisorSoftensTruncation: with a tight maximum, a plain
// single-divisor chunker would hard-truncate ~e^-(Max-Min)/Target ≈ 17% of
// chunks. TTTD's backup divisor must rescue most of those. (Gear's FastCDC
// normalization attacks the same tail by loosening its mask past the
// target; TTTD is the classical alternative.)
func TestTTTDBackupDivisorSoftensTruncation(t *testing.T) {
	data := randBytes(t, 8<<20, 77)
	p := Params{Min: 2048, Target: 8192, Max: 16384} // tight max provokes truncation
	c, err := NewTTTD(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	maxed, total := 0, 0
	for _, ch := range collect(t, c) {
		total++
		if len(ch) == p.Max {
			maxed++
		}
	}
	// Analytic no-backup truncation rate: exp(-(Max-Min)/Target) ≈ 0.17.
	// The backup divisor (2x firing rate) should cut that well below half.
	if frac := float64(maxed) / float64(total); frac > 0.08 {
		t.Fatalf("TTTD truncation fraction %.3f; backup divisor ineffective (plain CDC ≈ 0.17)", frac)
	}
}

func BenchmarkTTTDChunking(b *testing.B) {
	data := randBytes(b, 8<<20, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewTTTD(bytes.NewReader(data), DefaultParams())
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}
