package chunker

import "io"

// Fixed splits the stream into fixed-size chunks. It is the degenerate
// baseline: a single-byte insertion shifts every later boundary, destroying
// deduplication across shifted copies. Used in tests and ablations to
// demonstrate why content-defined chunking matters.
type Fixed struct {
	b    *buffered
	size int
}

// NewFixed returns a fixed-size chunker with the given chunk size.
func NewFixed(r io.Reader, size int) (*Fixed, error) {
	if size <= 0 {
		return nil, errBadParams
	}
	return &Fixed{b: newBuffered(r, 4*size), size: size}, nil
}

// Next returns the next chunk or io.EOF.
func (f *Fixed) Next() ([]byte, error) {
	avail := f.b.fill(f.size)
	if f.b.err != nil {
		return nil, f.b.err
	}
	if avail == 0 {
		return nil, io.EOF
	}
	return f.b.take(min(avail, f.size)), nil
}

// Kind selects a chunker implementation by name.
type Kind int

const (
	KindGear Kind = iota // FastCDC-style gear chunking (default)
	KindRabin
	KindFixed
	KindTTTD // two-threshold two-divisor
)

func (k Kind) String() string {
	switch k {
	case KindGear:
		return "gear"
	case KindRabin:
		return "rabin"
	case KindFixed:
		return "fixed"
	case KindTTTD:
		return "tttd"
	}
	return "unknown"
}

// New constructs a chunker of the given kind over r. For KindFixed the
// Target parameter is used as the fixed chunk size.
func New(k Kind, r io.Reader, p Params) (Chunker, error) {
	switch k {
	case KindGear:
		return NewGear(r, p)
	case KindRabin:
		return NewRabin(r, p)
	case KindFixed:
		return NewFixed(r, p.Target)
	case KindTTTD:
		return NewTTTD(r, p)
	}
	return nil, errBadParams
}
