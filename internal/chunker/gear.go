package chunker

import "io"

// gearTable is the 256-entry random table driving the gear rolling hash.
// Entries are fixed (generated once from a splitmix64 sequence, seed 1) so
// chunk boundaries are stable across runs and machines.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	// splitmix64
	x := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Gear is a FastCDC-style content-defined chunker: a gear hash
// (h = h<<1 + table[byte]) with normalized chunking — a stricter boundary
// mask before the target size and a looser one after, which tightens the
// chunk-size distribution around Target without sacrificing shift tolerance.
type Gear struct {
	b          *buffered
	p          Params
	maskStrict uint64 // used before Target: ~4x fewer boundaries
	maskLoose  uint64 // used after Target: ~4x more boundaries
}

// NewGear returns a gear chunker over r. Params must validate.
func NewGear(r io.Reader, p Params) (*Gear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bits := uint(0)
	for s := p.Target; s > 1; s >>= 1 {
		bits++
	}
	// Normalization: 2 extra mask bits below target, 2 fewer above.
	strictBits, looseBits := bits+2, bits-2
	if looseBits < 1 {
		looseBits = 1
	}
	if strictBits > 63 {
		strictBits = 63
	}
	g := &Gear{
		b:          newBuffered(r, 4*p.Max),
		p:          p,
		maskStrict: (uint64(1)<<strictBits - 1) << (64 - strictBits),
		maskLoose:  (uint64(1)<<looseBits - 1) << (64 - looseBits),
	}
	return g, nil
}

// Next returns the next chunk or io.EOF.
func (g *Gear) Next() ([]byte, error) {
	avail := g.b.fill(g.p.Max)
	if g.b.err != nil {
		return nil, g.b.err
	}
	if avail == 0 {
		return nil, io.EOF
	}
	if avail <= g.p.Min {
		return g.b.take(avail), nil
	}
	data := g.b.buf[g.b.off : g.b.off+min(avail, g.p.Max)]
	cut := g.cutpoint(data)
	return g.b.take(cut), nil
}

// cutpoint finds the content-defined boundary in data (len > Min).
func (g *Gear) cutpoint(data []byte) int {
	var h uint64
	n := len(data)
	normal := g.p.Target
	if normal > n {
		normal = n
	}
	// Phase 1: below target — strict mask.
	i := g.p.Min
	// Warm the hash over the window before Min so boundaries do not depend
	// on where Min falls; the gear hash has an effective window of 64 bytes
	// (bits shift out), so warming 64 bytes suffices.
	warm := g.p.Min - 64
	if warm < 0 {
		warm = 0
	}
	for j := warm; j < i; j++ {
		h = h<<1 + gearTable[data[j]]
	}
	for ; i < normal; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&g.maskStrict == 0 {
			return i + 1
		}
	}
	// Phase 2: past target — loose mask.
	for ; i < n; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&g.maskLoose == 0 {
			return i + 1
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
