package chunker

import "io"

// gearTable is the 256-entry random table driving the gear rolling hash.
// Entries are fixed (generated once from a splitmix64 sequence, seed 1) so
// chunk boundaries are stable across runs and machines.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	// splitmix64
	x := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// warmWindow is the effective window of the gear hash: h = h<<1 + t[b]
// shifts a byte's contribution out after 64 steps, so warming 64 bytes
// before the minimum-size point makes boundaries independent of where Min
// falls (the localized-boundary property the tests pin).
const warmWindow = 64

// Gear is a FastCDC-style content-defined chunker: a gear hash
// (h = h<<1 + table[byte]) with normalized chunking — a stricter boundary
// mask before the target size and a looser one after, which tightens the
// chunk-size distribution around Target without sacrificing shift tolerance.
//
// The production cut-point loop is the branch-reduced form (min-size
// skip-ahead, per-phase sub-slicing for bounds-check elimination, 4-way
// unroll); cutpointRef in gear_ref.go keeps the straight-line reference the
// property tests compare it against byte for byte.
type Gear struct {
	b          *buffered
	p          Params
	maskStrict uint64 // used before Target: ~4x fewer boundaries
	maskLoose  uint64 // used after Target: ~4x more boundaries
}

// NewGear returns a gear chunker over r. Params must validate.
func NewGear(r io.Reader, p Params) (*Gear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strictBits, looseBits := normalizedBits(p.Target)
	g := &Gear{
		b:          newBuffered(r, 4*p.Max),
		p:          p,
		maskStrict: maskForBits(strictBits),
		maskLoose:  maskForBits(looseBits),
	}
	return g, nil
}

// normalizedBits derives the two FastCDC normalization mask widths from the
// target size: 2 extra bits below target, 2 fewer above.
func normalizedBits(target int) (strict, loose uint) {
	bits := uint(0)
	for s := target; s > 1; s >>= 1 {
		bits++
	}
	strict, loose = bits+2, bits-2
	if loose < 1 {
		loose = 1
	}
	if strict > 63 {
		strict = 63
	}
	return strict, loose
}

// maskForBits builds the top-aligned boundary mask of the given width.
func maskForBits(bits uint) uint64 {
	return (uint64(1)<<bits - 1) << (64 - bits)
}

// Next returns the next chunk or io.EOF.
func (g *Gear) Next() ([]byte, error) {
	avail := g.b.fill(g.p.Max)
	if g.b.err != nil {
		return nil, g.b.err
	}
	if avail == 0 {
		return nil, io.EOF
	}
	if avail <= g.p.Min {
		return g.b.take(avail), nil
	}
	data := g.b.buf[g.b.off : g.b.off+min(avail, g.p.Max)]
	cut := g.cutpoint(data)
	return g.b.take(cut), nil
}

// cutpoint finds the content-defined boundary in data (len > Min). It is the
// hot loop of the ingest path; boundaries are pinned bit-identical to
// cutpointRef by TestGearCutpointMatchesReference and the golden fixture.
func (g *Gear) cutpoint(data []byte) int {
	n := len(data)
	normal := g.p.Target
	if normal > n {
		normal = n
	}
	// Min-size skip-ahead (FastCDC): no boundary may land before Min, so no
	// byte before Min-warmWindow contributes to any boundary decision — jump
	// straight there and only warm the hash over the trailing window.
	i := g.p.Min
	warm := i - warmWindow
	if warm < 0 {
		warm = 0
	}
	var h uint64
	for _, b := range data[warm:i] {
		h = h<<1 + gearTable[b]
	}
	// Phase 1: below target — strict mask. The sub-slice re-anchors the
	// loop bound for the prover; the 4-way unroll cuts loop-control
	// overhead on the ~Target-Min bytes every chunk walks.
	if cut, ok := scanMask(data[:normal], i, &h, g.maskStrict); ok {
		return cut
	}
	// Phase 2: past target — loose mask.
	if cut, ok := scanMask(data, normal, &h, g.maskLoose); ok {
		return cut
	}
	return n
}

// scanMask rolls the gear hash over d[i:], returning the first position
// (exclusive) where the hash lands on mask, or ok=false at the end of d.
// The hash state threads through *h so the caller can chain phases.
func scanMask(d []byte, i int, h *uint64, mask uint64) (int, bool) {
	x := *h
	t := &gearTable
	// 4-way unroll of the boundary test; the tail loop finishes the
	// remainder. Order of evaluation is byte-at-a-time either way, so the
	// cut point is identical to the straight loop.
	for ; i+4 <= len(d); i += 4 {
		x = x<<1 + t[d[i]]
		if x&mask == 0 {
			*h = x
			return i + 1, true
		}
		x = x<<1 + t[d[i+1]]
		if x&mask == 0 {
			*h = x
			return i + 2, true
		}
		x = x<<1 + t[d[i+2]]
		if x&mask == 0 {
			*h = x
			return i + 3, true
		}
		x = x<<1 + t[d[i+3]]
		if x&mask == 0 {
			*h = x
			return i + 4, true
		}
	}
	for ; i < len(d); i++ {
		x = x<<1 + t[d[i]]
		if x&mask == 0 {
			*h = x
			return i + 1, true
		}
	}
	*h = x
	return len(d), false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
