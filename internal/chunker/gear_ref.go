package chunker

// cutpointRef is the straight-line reference form of the gear cut-point
// search: one byte, one mask test, no unrolling. The optimized Gear.cutpoint
// must return identical boundaries for every input; the property tests and
// the golden fixture in gear_ref_test.go enforce that, so any change to the
// production loop that shifts a single boundary fails loudly instead of
// silently changing every stored recipe.
func cutpointRef(data []byte, p Params, maskStrict, maskLoose uint64) int {
	n := len(data)
	normal := p.Target
	if normal > n {
		normal = n
	}
	i := p.Min
	warm := i - warmWindow
	if warm < 0 {
		warm = 0
	}
	var h uint64
	for j := warm; j < i; j++ {
		h = h<<1 + gearTable[data[j]]
	}
	for ; i < normal; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&maskStrict == 0 {
			return i + 1
		}
	}
	for ; i < n; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&maskLoose == 0 {
			return i + 1
		}
	}
	return n
}

// boundariesRef chunks data entirely in memory with cutpointRef, mirroring
// Gear.Next's windowing exactly (Max-capped window, Min-or-less tail taken
// whole). It returns the exclusive end offset of every chunk.
func boundariesRef(data []byte, p Params) []int {
	strictBits, looseBits := normalizedBits(p.Target)
	maskStrict, maskLoose := maskForBits(strictBits), maskForBits(looseBits)
	var ends []int
	pos := 0
	for pos < len(data) {
		avail := len(data) - pos
		if avail <= p.Min {
			pos = len(data)
			ends = append(ends, pos)
			continue
		}
		window := data[pos : pos+min(avail, p.Max)]
		pos += cutpointRef(window, p, maskStrict, maskLoose)
		ends = append(ends, pos)
	}
	return ends
}
