package chunker

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// gearEnds runs the full streaming Gear chunker (optimized cutpoint +
// buffered windowing) and returns the exclusive end offset of every chunk.
func gearEnds(t *testing.T, data []byte, p Params) []int {
	t.Helper()
	g, err := NewGear(bytes.NewReader(data), p)
	if err != nil {
		t.Fatalf("NewGear: %v", err)
	}
	var ends []int
	pos := 0
	for {
		c, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		pos += len(c)
		ends = append(ends, pos)
	}
	if len(ends) > 0 && ends[len(ends)-1] != len(data) {
		t.Fatalf("chunks cover %d bytes, want %d", ends[len(ends)-1], len(data))
	}
	return ends
}

// TestGearCutpointMatchesReference pins the optimized production cut-point
// loop to the straight-line reference: identical boundaries on seeded random
// and shift-edited streams, across a spread of Params (different mask widths,
// Min < warmWindow, Min == Target, tiny Max windows).
func TestGearCutpointMatchesReference(t *testing.T) {
	params := []Params{
		DefaultParams(),
		{Min: 512, Target: 4096, Max: 16 * 1024},
		{Min: 32, Target: 256, Max: 1024},    // Min below the 64-byte warm window
		{Min: 4096, Target: 4096, Max: 4097}, // degenerate: normal == Min almost always
		{Min: 1, Target: 2, Max: 64},         // loose mask clamped to 1 bit
	}
	rng := rand.New(rand.NewSource(7))
	base := make([]byte, 1<<20)
	rng.Read(base)

	streams := map[string][]byte{
		"random":  base,
		"lowent":  bytes.Repeat([]byte("abcdefgh"), 1<<17),
		"shifted": append(append(append([]byte(nil), base[:300]...), []byte("INSERTED-EDIT")...), base[300:]...),
		"short":   base[:777],
		"empty":   nil,
	}
	for _, p := range params {
		for name, data := range streams {
			t.Run(fmt.Sprintf("%d-%d-%d/%s", p.Min, p.Target, p.Max, name), func(t *testing.T) {
				got := gearEnds(t, data, p)
				want := boundariesRef(data, p)
				if len(got) != len(want) {
					t.Fatalf("chunk count: got %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("boundary %d: got %d, want %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// goldenBoundaryDigest is the SHA-256 over the little-endian uint64 boundary
// offsets of a fixed seeded stream under DefaultParams. It freezes the gear
// table, the mask derivation and the cut-point search: a silent change to any
// of them (and therefore to every stored recipe) breaks this test.
const goldenBoundaryDigest = "a17fa8a7bd57fc39c674b09d7626c30efdf4ceffb879dbee49c4fbe90c2995e9"

func TestGearGoldenBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 256*1024)
	rng.Read(data)
	ends := gearEnds(t, data, DefaultParams())

	h := sha256.New()
	var buf [8]byte
	for _, e := range ends {
		binary.LittleEndian.PutUint64(buf[:], uint64(e))
		h.Write(buf[:])
	}
	digest := hex.EncodeToString(h.Sum(nil))
	if digest != goldenBoundaryDigest {
		t.Fatalf("golden boundary digest changed:\n got  %s\n want %s\nfirst boundaries: %v (%d chunks)",
			digest, goldenBoundaryDigest, ends[:min(8, len(ends))], len(ends))
	}
}
