package chunker

import "io"

// Rabin implements classic Rabin-fingerprint content-defined chunking with a
// fixed 48-byte sliding window over an irreducible polynomial in GF(2). It
// is slower than Gear and kept as a reference implementation: tests verify
// that both chunkers are shift-tolerant and produce the configured average
// chunk size.
type Rabin struct {
	b *buffered
	p Params
	// outTable[b] is the precomputed contribution of byte b once it reaches
	// the leaving edge of the window, so sliding is one XOR + one append.
	outTable  [256]uint64
	mask      uint64
	windowLen int
}

// rabinPoly is an irreducible polynomial of degree 53 over GF(2), the same
// degree family used by LBFS-lineage chunkers.
const rabinPoly uint64 = 0x3DA3358B4DC173

const rabinWindow = 48

// polyDegree returns the degree of p (position of highest set bit).
func polyDegree(p uint64) int {
	d := -1
	for i := 0; i < 64; i++ {
		if p&(1<<uint(i)) != 0 {
			d = i
		}
	}
	return d
}

// polyMod reduces value modulo poly in GF(2).
func polyMod(value, poly uint64, deg int) uint64 {
	for i := 63; i >= deg; i-- {
		if value&(1<<uint(i)) != 0 {
			value ^= poly << uint(i-deg)
		}
	}
	return value
}

// NewRabin returns a Rabin chunker over r.
func NewRabin(r io.Reader, p Params) (*Rabin, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Rabin{
		b:         newBuffered(r, 4*p.Max),
		p:         p,
		mask:      uint64(p.Target - 1),
		windowLen: rabinWindow,
	}
	deg := polyDegree(rabinPoly)
	// outTable[b]: contribution of byte b after windowLen-1 shifts.
	for b := 0; b < 256; b++ {
		h := c.appendByteRaw(0, byte(b), deg)
		for i := 0; i < c.windowLen-1; i++ {
			h = c.appendByteRaw(h, 0, deg)
		}
		c.outTable[b] = h
	}
	return c, nil
}

// appendByteRaw appends one byte to the rolling fingerprint.
func (c *Rabin) appendByteRaw(h uint64, b byte, deg int) uint64 {
	h <<= 8
	h |= uint64(b)
	return polyMod(h, rabinPoly, deg)
}

// Next returns the next chunk or io.EOF.
func (c *Rabin) Next() ([]byte, error) {
	avail := c.b.fill(c.p.Max)
	if c.b.err != nil {
		return nil, c.b.err
	}
	if avail == 0 {
		return nil, io.EOF
	}
	if avail <= c.p.Min {
		return c.b.take(avail), nil
	}
	data := c.b.buf[c.b.off : c.b.off+min(avail, c.p.Max)]
	cut := c.cutpoint(data)
	return c.b.take(cut), nil
}

func (c *Rabin) cutpoint(data []byte) int {
	deg := polyDegree(rabinPoly)
	n := len(data)
	var h uint64
	// Prime the window over the bytes immediately before Min (append only —
	// nothing has fallen out of the window yet) so the boundary decision at
	// position Min sees a full window of local content. Keeping the hash a
	// pure function of the trailing windowLen bytes is what makes boundaries
	// content-local and lets chunking resynchronize after an insertion.
	start := c.p.Min - c.windowLen
	if start < 0 {
		start = 0
	}
	for j := start; j < c.p.Min; j++ {
		h = c.appendByteRaw(h, data[j], deg)
	}
	for i := c.p.Min; i < n; i++ {
		if out := i - c.windowLen; out >= start {
			h ^= c.outTable[data[out]]
		}
		h = c.appendByteRaw(h, data[i], deg)
		if h&c.mask == c.mask { // boundary condition: low bits all ones
			return i + 1
		}
	}
	return n
}
