package chunker

import "io"

// TTTD is the Two-Threshold Two-Divisor chunker (Eshghi & Tang, HP Labs
// 2005): like basic content-defined chunking it cuts where a rolling hash
// matches a divisor, but it also tracks the last position that matched a
// smaller *backup divisor*; when the main divisor finds nothing before the
// maximum size, the backup cut is used instead of a hard truncation. This
// trims the fat right tail of the chunk-size distribution that plain CDC
// truncation creates, at the same shift tolerance.
//
// Included as the fourth chunking reference (gear/FastCDC, Rabin, fixed,
// TTTD); engines default to gear.
type TTTD struct {
	b *buffered
	p Params
	// Main divisor ≈ target; backup divisor is main/2 (twice as likely to
	// fire), per the original paper's recommendation.
	mainMask   uint64
	backupMask uint64
}

// NewTTTD returns a TTTD chunker over r.
func NewTTTD(r io.Reader, p Params) (*TTTD, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bits := uint(0)
	for s := p.Target; s > 1; s >>= 1 {
		bits++
	}
	backupBits := bits - 1
	if backupBits < 1 {
		backupBits = 1
	}
	return &TTTD{
		b:          newBuffered(r, 4*p.Max),
		p:          p,
		mainMask:   uint64(1)<<bits - 1,
		backupMask: uint64(1)<<backupBits - 1,
	}, nil
}

// Next returns the next chunk or io.EOF.
func (c *TTTD) Next() ([]byte, error) {
	avail := c.b.fill(c.p.Max)
	if c.b.err != nil {
		return nil, c.b.err
	}
	if avail == 0 {
		return nil, io.EOF
	}
	if avail <= c.p.Min {
		return c.b.take(avail), nil
	}
	data := c.b.buf[c.b.off : c.b.off+min(avail, c.p.Max)]
	cut := c.cutpoint(data)
	return c.b.take(cut), nil
}

func (c *TTTD) cutpoint(data []byte) int {
	var h uint64
	n := len(data)
	backup := -1
	warm := c.p.Min - 64
	if warm < 0 {
		warm = 0
	}
	for j := warm; j < c.p.Min; j++ {
		h = h<<1 + gearTable[data[j]]
	}
	for i := c.p.Min; i < n; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&c.mainMask == c.mainMask {
			return i + 1
		}
		if h&c.backupMask == c.backupMask {
			backup = i + 1
		}
	}
	if n < c.p.Max {
		return n // end of stream: no cut needed
	}
	if backup > 0 {
		return backup // soft landing instead of hard truncation
	}
	return n
}
