// Package cindex implements the full chunk index — the structure whose disk
// residency causes the "disk bottleneck" the paper (after Zhu et al.)
// describes: at scale the fingerprint→location map cannot fit in RAM, so a
// miss in every RAM-side filter costs a random disk read of one index page.
//
// The index is modeled as an on-disk hash table of fixed-size bucket pages
// over a dedicated simulated device, fronted by an LRU page cache:
//
//   - Lookup hashes the fingerprint to a bucket; a cached bucket is free, an
//     uncached one charges one page read (seek + transfer).
//   - Insert/Update are write-buffered and flushed in large sequential
//     batches (one seek + batched transfer), matching the log-plus-merge
//     write path of production dedup indexes.
//
// The authoritative fingerprint→location mapping is kept in RAM as
// simulation shadow state; the device traffic exists purely to account time.
//
// The package also provides Oracle, the exact in-RAM index used to compute
// ground-truth redundancy for the paper's "deduplication efficiency" metric.
// Oracle charges no simulated time: it is measurement apparatus, not a
// component of any engine.
package cindex

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/disk"
	"repro/internal/lru"
	"repro/internal/telemetry"
)

// Live telemetry of the on-disk index model. The page cache hit/miss split
// is the disk-bottleneck signal of paper Fig. 2: misses are random index
// page reads.
var (
	telPageHits = telemetry.NewCounter("cindex_page_cache_hits_total",
		"index lookups served from the RAM page cache")
	telPageReads = telemetry.NewCounter("cindex_page_reads_total",
		"index lookups that paid a random disk page read")
	telInserts = telemetry.NewCounter("cindex_inserts_total",
		"index insertions (new or repointed fingerprints)")
	telFlushes = telemetry.NewCounter("cindex_flushes_total",
		"batched sequential write-backs of buffered index inserts")
)

// entrySize is the on-disk footprint of one index entry:
// fingerprint (32) + container (4) + segment (8) + offset (8) + size (4).
const entrySize = 56

// Config sizes the on-disk index model.
type Config struct {
	PageSize   int64 // bytes per bucket page (default 8 KiB)
	NumBuckets int   // hash buckets; sized for the expected chunk population
	CachePages int   // RAM page-cache capacity, in pages
	FlushBatch int   // inserts buffered before a batched sequential write-back
}

// DefaultConfig sizes the index for an expected chunk population. The page
// cache deliberately covers only a small fraction of the buckets — the whole
// point of the model is that most lookups go to disk.
func DefaultConfig(expectedChunks int) Config {
	if expectedChunks < 1 {
		expectedChunks = 1
	}
	perPage := int(8192 / entrySize) // ~146 entries per 8 KiB page
	buckets := expectedChunks/perPage + 1
	cache := buckets / 50 // 2% of pages cached
	if cache < 4 {
		cache = 4
	}
	return Config{PageSize: 8192, NumBuckets: buckets, CachePages: cache, FlushBatch: 4096}
}

func (c Config) validate() error {
	if c.PageSize <= 0 || c.NumBuckets <= 0 || c.CachePages <= 0 || c.FlushBatch <= 0 {
		return fmt.Errorf("cindex: non-positive config %+v", c)
	}
	return nil
}

// Stats counts index activity.
type Stats struct {
	Lookups   int64 // charged lookups
	PageHits  int64 // lookups served from the page cache
	PageReads int64 // lookups that paid a disk page read
	Inserts   int64
	Flushes   int64 // batched write-backs
	NotFound  int64 // charged lookups that found nothing (bloom false positives)
}

// Index is the modeled on-disk chunk index.
type Index struct {
	cfg   Config
	dev   *disk.Device
	cache *lru.Cache[int, struct{}] // cached bucket IDs
	m     map[chunk.Fingerprint]chunk.Location
	// pageBase[b] is the device offset of bucket b's page; pages are laid
	// out once at construction (the index region pre-exists on disk).
	base    int64
	pending int // buffered inserts awaiting write-back
	stats   Stats
}

// New builds an index over its own device region. dev must be dedicated to
// the index.
func New(dev *disk.Device, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:   cfg,
		dev:   dev,
		cache: lru.New[int, struct{}](cfg.CachePages),
		m:     make(map[chunk.Fingerprint]chunk.Location, 1024),
	}
	// Lay out the bucket region on the device. This charges a one-time
	// sequential write that happens at construction, before any experiment
	// measurement window opens (all metrics are clock deltas per backup), so
	// it never appears in a reported number.
	ix.base = dev.AppendHole(int64(cfg.NumBuckets) * cfg.PageSize)
	return ix, nil
}

func (ix *Index) bucket(fp chunk.Fingerprint) int {
	return int(fp.Uint64() % uint64(ix.cfg.NumBuckets))
}

// Lookup searches the index for fp, charging a page read unless the bucket
// page is cached. The boolean reports whether the fingerprint is indexed.
func (ix *Index) Lookup(fp chunk.Fingerprint) (chunk.Location, bool) {
	ix.stats.Lookups++
	b := ix.bucket(fp)
	if _, ok := ix.cache.Get(b); ok {
		ix.stats.PageHits++
		telPageHits.Inc()
	} else {
		ix.stats.PageReads++
		telPageReads.Inc()
		ix.dev.AccountRead(ix.base+int64(b)*ix.cfg.PageSize, ix.cfg.PageSize)
		ix.cache.Put(b, struct{}{})
	}
	loc, ok := ix.m[fp]
	if !ok {
		ix.stats.NotFound++
	}
	return loc, ok
}

// Peek returns the mapping without charging time or touching the cache.
// For oracles, tests, and simulation bookkeeping only.
func (ix *Index) Peek(fp chunk.Fingerprint) (chunk.Location, bool) {
	loc, ok := ix.m[fp]
	return loc, ok
}

// Insert adds a new fingerprint mapping. Writes are buffered and flushed as
// sequential batches.
func (ix *Index) Insert(fp chunk.Fingerprint, loc chunk.Location) {
	ix.m[fp] = loc
	ix.stats.Inserts++
	telInserts.Inc()
	ix.pending++
	if ix.pending >= ix.cfg.FlushBatch {
		ix.flush()
	}
}

// Update repoints an existing fingerprint to a new location (the DeFrag
// rewrite path: the newest, linearized copy becomes authoritative). Cost
// model is identical to Insert.
func (ix *Index) Update(fp chunk.Fingerprint, loc chunk.Location) {
	ix.Insert(fp, loc)
}

// Flush forces the pending write-back (end of stream).
func (ix *Index) Flush() {
	if ix.pending > 0 {
		ix.flush()
	}
}

func (ix *Index) flush() {
	// One batched sequential write: the merge log. Charged as an append.
	ix.dev.AppendHole(int64(ix.pending) * entrySize)
	ix.pending = 0
	ix.stats.Flushes++
	telFlushes.Inc()
}

// Len returns the number of indexed fingerprints.
func (ix *Index) Len() int { return len(ix.m) }

// Range iterates all mappings (in arbitrary order) until fn returns false.
// Free of simulated time — for checkers and diagnostics, not engines.
func (ix *Index) Range(fn func(chunk.Fingerprint, chunk.Location) bool) {
	for fp, loc := range ix.m {
		if !fn(fp, loc) {
			return
		}
	}
}

// Stats returns cumulative counters.
func (ix *Index) Stats() Stats { return ix.stats }

// CacheHitRate returns the page-cache hit rate over all charged lookups.
func (ix *Index) CacheHitRate() float64 {
	if ix.stats.Lookups == 0 {
		return 0
	}
	return float64(ix.stats.PageHits) / float64(ix.stats.Lookups)
}
