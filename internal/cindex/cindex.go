// Package cindex implements the full chunk index — the structure whose disk
// residency causes the "disk bottleneck" the paper (after Zhu et al.)
// describes: at scale the fingerprint→location map cannot fit in RAM, so a
// miss in every RAM-side filter costs a random disk read of one index page.
//
// The index is modeled as an on-disk hash table of fixed-size bucket pages
// over a dedicated simulated device, fronted by an LRU page cache:
//
//   - Lookup hashes the fingerprint to a bucket; a cached bucket is free, an
//     uncached one charges one page read (seek + transfer).
//   - LookupBatch groups a whole segment's fingerprints by bucket first, so
//     every chunk that hashes to the same bucket page is served by a single
//     modeled page read instead of one per chunk.
//   - Insert/Update are write-buffered and flushed in large sequential
//     batches (one seek + batched transfer), matching the log-plus-merge
//     write path of production dedup indexes.
//
// The authoritative fingerprint→location mapping is kept in RAM as
// simulation shadow state; the device traffic exists purely to account time.
//
// Concurrency: the index is lock-striped into shards. Buckets are
// partitioned across shards by bucket number, and each shard owns its slice
// of the page cache, its fingerprint map, and its write-back buffer, so
// concurrent backup streams contend only when they touch the same stripe.
// Stats are atomic. Per-stream simulated time is attributed through Handle
// (a view of the index whose device charges a stream's own clock).
//
// The package also provides Oracle, the exact in-RAM index used to compute
// ground-truth redundancy for the paper's "deduplication efficiency" metric.
// Oracle charges no simulated time: it is measurement apparatus, not a
// component of any engine.
package cindex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/disk"
	"repro/internal/lru"
	"repro/internal/telemetry"
)

// Live telemetry of the on-disk index model. The page cache hit/miss split
// is the disk-bottleneck signal of paper Fig. 2: misses are random index
// page reads.
var (
	telPageHits = telemetry.NewCounter("cindex_page_cache_hits_total",
		"index lookups served from the RAM page cache")
	telPageReads = telemetry.NewCounter("cindex_page_reads_total",
		"index lookups that paid a random disk page read")
	telInserts = telemetry.NewCounter("cindex_inserts_total",
		"index insertions (new or repointed fingerprints)")
	telFlushes = telemetry.NewCounter("cindex_flushes_total",
		"batched sequential write-backs of buffered index inserts")
)

// entrySize is the on-disk footprint of one index entry:
// fingerprint (32) + container (4) + segment (8) + offset (8) + size (4).
const entrySize = 56

// maxAutoShards caps automatic lock striping; contention past 16 stripes is
// negligible for the stream counts the scheduler supports.
const maxAutoShards = 16

// Config sizes the on-disk index model.
type Config struct {
	PageSize   int64 // bytes per bucket page (default 8 KiB)
	NumBuckets int   // hash buckets; sized for the expected chunk population
	CachePages int   // RAM page-cache capacity, in pages (split across shards)
	FlushBatch int   // inserts buffered per shard before a batched write-back
	Shards     int   // lock stripes; 0 = auto (min(16, CachePages, NumBuckets))
}

// DefaultConfig sizes the index for an expected chunk population at the
// default 8 KiB page size. The page cache deliberately covers only a small
// fraction of the buckets — the whole point of the model is that most
// lookups go to disk.
func DefaultConfig(expectedChunks int) Config {
	return ConfigForPage(8192, expectedChunks)
}

// ConfigForPage sizes the index for an expected chunk population at an
// explicit page size, deriving entries-per-page from that page size (not
// from any hard-coded default).
func ConfigForPage(pageSize int64, expectedChunks int) Config {
	if pageSize < entrySize {
		pageSize = entrySize
	}
	if expectedChunks < 1 {
		expectedChunks = 1
	}
	perPage := int(pageSize / entrySize)
	buckets := expectedChunks/perPage + 1
	cache := buckets / 50 // 2% of pages cached
	if cache < 4 {
		cache = 4
	}
	return Config{PageSize: pageSize, NumBuckets: buckets, CachePages: cache, FlushBatch: 4096}
}

func (c Config) validate() error {
	if c.PageSize <= 0 || c.NumBuckets <= 0 || c.CachePages <= 0 || c.FlushBatch <= 0 || c.Shards < 0 {
		return fmt.Errorf("cindex: invalid config %+v", c)
	}
	return nil
}

// numShards resolves the configured shard count: explicit if set, otherwise
// auto-sized so every shard keeps at least one cache page and one bucket.
func (c Config) numShards() int {
	n := c.Shards
	if n == 0 {
		n = maxAutoShards
		if c.CachePages < n {
			n = c.CachePages
		}
		if c.NumBuckets < n {
			n = c.NumBuckets
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Stats counts index activity.
type Stats struct {
	Lookups   int64 // charged lookups
	PageHits  int64 // lookups served from the page cache
	PageReads int64 // lookups that paid a disk page read
	Inserts   int64
	Flushes   int64 // batched write-backs
	NotFound  int64 // charged lookups that found nothing (bloom false positives)
}

// shard is one lock stripe: a partition of the bucket space with its own
// page-cache slice, fingerprint map, and write-back buffer. Bucket b belongs
// to shard b % nshards.
type shard struct {
	mu      sync.Mutex
	cache   *lru.Cache[int, struct{}] // cached bucket IDs of this stripe
	m       map[chunk.Fingerprint]chunk.Location
	pending int // buffered inserts awaiting write-back
}

// Index is the modeled on-disk chunk index. All methods are safe for
// concurrent use; per-stream time attribution goes through Handle.
type Index struct {
	cfg     Config
	dev     *disk.Device
	nshards int
	shards  []shard
	// base is the device offset of bucket 0's page; pages are laid out once
	// at construction (the index region pre-exists on disk) in one global
	// region, so the modeled seek geometry is identical however many lock
	// stripes partition the buckets.
	base int64

	lookups   atomic.Int64
	pageHits  atomic.Int64
	pageReads atomic.Int64
	inserts   atomic.Int64
	flushes   atomic.Int64
	notFound  atomic.Int64
}

// New builds an index over its own device region. dev must be dedicated to
// the index.
func New(dev *disk.Device, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.numShards()
	ix := &Index{
		cfg:     cfg,
		dev:     dev,
		nshards: n,
		shards:  make([]shard, n),
	}
	perShardCache := cfg.CachePages / n
	if perShardCache < 1 {
		perShardCache = 1
	}
	for i := range ix.shards {
		ix.shards[i].cache = lru.New[int, struct{}](perShardCache)
		ix.shards[i].m = make(map[chunk.Fingerprint]chunk.Location, 1024/n)
	}
	// Lay out the bucket region on the device. This charges a one-time
	// sequential write that happens at construction, before any experiment
	// measurement window opens (all metrics are clock deltas per backup), so
	// it never appears in a reported number.
	ix.base = dev.AppendHole(int64(cfg.NumBuckets) * cfg.PageSize)
	return ix, nil
}

// NumShards returns the resolved lock-stripe count.
func (ix *Index) NumShards() int { return ix.nshards }

func (ix *Index) bucket(fp chunk.Fingerprint) int {
	return int(fp.Uint64() % uint64(ix.cfg.NumBuckets))
}

func (ix *Index) shardOf(b int) *shard { return &ix.shards[b%ix.nshards] }

// Bucket returns fp's bucket number. Callers use it to group fingerprints
// that share an index page before a LookupBatch.
func (ix *Index) Bucket(fp chunk.Fingerprint) int { return ix.bucket(fp) }

// Bucket returns fp's bucket number (see Index.Bucket).
func (h Handle) Bucket(fp chunk.Fingerprint) int { return h.ix.bucket(fp) }

// pageOff returns the device offset of bucket b's page.
func (ix *Index) pageOff(b int) int64 { return ix.base + int64(b)*ix.cfg.PageSize }

// Handle is a view of the index that charges simulated time to a specific
// stream's clock. All handles share the index state (shards, caches,
// buffers); only the clock receiving the page-read and flush costs differs.
type Handle struct {
	ix  *Index
	dev *disk.Device
}

// Handle returns a view charging clk. A nil clk charges the index's own
// device clock (equivalent to calling the Index methods directly).
func (ix *Index) Handle(clk *disk.Clock) Handle {
	return Handle{ix: ix, dev: ix.dev.View(clk)}
}

// Lookup searches the index for fp, charging a page read unless the bucket
// page is cached. The boolean reports whether the fingerprint is indexed.
func (ix *Index) Lookup(fp chunk.Fingerprint) (chunk.Location, bool) {
	return ix.lookup(ix.dev, fp)
}

// Lookup is Index.Lookup charged to the handle's clock.
func (h Handle) Lookup(fp chunk.Fingerprint) (chunk.Location, bool) {
	return h.ix.lookup(h.dev, fp)
}

func (ix *Index) lookup(dev *disk.Device, fp chunk.Fingerprint) (chunk.Location, bool) {
	ix.lookups.Add(1)
	b := ix.bucket(fp)
	sh := ix.shardOf(b)
	// The stripe lock covers only the RAM state (cache recency, map); the
	// modeled page read is charged after unlock, so a stream paying a disk
	// read never holds up other streams' cache hits on the same stripe.
	sh.mu.Lock()
	_, hit := sh.cache.Get(b)
	if !hit {
		sh.cache.Put(b, struct{}{})
	}
	loc, ok := sh.m[fp]
	sh.mu.Unlock()
	if hit {
		ix.pageHits.Add(1)
		telPageHits.Inc()
	} else {
		ix.pageReads.Add(1)
		telPageReads.Inc()
		dev.AccountRead(ix.pageOff(b), ix.cfg.PageSize)
	}
	if !ok {
		ix.notFound.Add(1)
	}
	return loc, ok
}

// Result is one LookupBatch outcome, positionally matching the input slice.
type Result struct {
	Loc   chunk.Location
	Found bool
}

// LookupBatch resolves a batch of fingerprints, grouping them by bucket
// first: every distinct uncached bucket page is read exactly once, however
// many fingerprints of the batch hash to it. Buckets are visited in order of
// first appearance, so the charge sequence is deterministic for a given
// input. Results are positional.
func (ix *Index) LookupBatch(fps []chunk.Fingerprint) []Result {
	return ix.lookupBatch(ix.dev, fps)
}

// LookupBatch is Index.LookupBatch charged to the handle's clock.
func (h Handle) LookupBatch(fps []chunk.Fingerprint) []Result {
	return h.ix.lookupBatch(h.dev, fps)
}

func (ix *Index) lookupBatch(dev *disk.Device, fps []chunk.Fingerprint) []Result {
	res := make([]Result, len(fps))
	if len(fps) == 0 {
		return res
	}
	ix.lookups.Add(int64(len(fps)))
	// Group positions by bucket, preserving first-appearance order so the
	// modeled seek sequence (and thus the charged time) is deterministic.
	order := make([]int, 0, len(fps))
	groups := make(map[int][]int, len(fps))
	for i, fp := range fps {
		b := ix.bucket(fp)
		if _, seen := groups[b]; !seen {
			order = append(order, b)
		}
		groups[b] = append(groups[b], i)
	}
	for _, b := range order {
		idxs := groups[b]
		sh := ix.shardOf(b)
		sh.mu.Lock()
		_, hit := sh.cache.Get(b)
		if !hit {
			sh.cache.Put(b, struct{}{})
		}
		for _, i := range idxs {
			loc, ok := sh.m[fps[i]]
			res[i] = Result{Loc: loc, Found: ok}
			if !ok {
				ix.notFound.Add(1)
			}
		}
		sh.mu.Unlock()
		if hit {
			ix.pageHits.Add(int64(len(idxs)))
			telPageHits.Add(int64(len(idxs)))
		} else {
			// One modeled page read, charged outside the stripe lock, serves
			// every fingerprint of this bucket.
			ix.pageReads.Add(1)
			telPageReads.Inc()
			dev.AccountRead(ix.pageOff(b), ix.cfg.PageSize)
			if extra := int64(len(idxs) - 1); extra > 0 {
				ix.pageHits.Add(extra)
				telPageHits.Add(extra)
			}
		}
	}
	return res
}

// Peek returns the mapping without charging time or touching the cache.
// For oracles, tests, and simulation bookkeeping only.
func (ix *Index) Peek(fp chunk.Fingerprint) (chunk.Location, bool) {
	sh := ix.shardOf(ix.bucket(fp))
	sh.mu.Lock()
	loc, ok := sh.m[fp]
	sh.mu.Unlock()
	return loc, ok
}

// Insert adds a new fingerprint mapping. Writes are buffered per shard and
// flushed as sequential batches.
func (ix *Index) Insert(fp chunk.Fingerprint, loc chunk.Location) {
	ix.insert(ix.dev, fp, loc)
}

// Insert is Index.Insert charged to the handle's clock.
func (h Handle) Insert(fp chunk.Fingerprint, loc chunk.Location) {
	h.ix.insert(h.dev, fp, loc)
}

func (ix *Index) insert(dev *disk.Device, fp chunk.Fingerprint, loc chunk.Location) {
	sh := ix.shardOf(ix.bucket(fp))
	sh.mu.Lock()
	sh.m[fp] = loc
	sh.pending++
	var flushN int
	if sh.pending >= ix.cfg.FlushBatch {
		flushN = sh.pending
		sh.pending = 0
	}
	sh.mu.Unlock()
	if flushN > 0 {
		ix.chargeFlush(dev, flushN)
	}
	ix.inserts.Add(1)
	telInserts.Inc()
}

// Update repoints an existing fingerprint to a new location (the DeFrag
// rewrite path: the newest, linearized copy becomes authoritative). Cost
// model is identical to Insert.
func (ix *Index) Update(fp chunk.Fingerprint, loc chunk.Location) {
	ix.insert(ix.dev, fp, loc)
}

// Update is Index.Update charged to the handle's clock.
func (h Handle) Update(fp chunk.Fingerprint, loc chunk.Location) {
	h.ix.insert(h.dev, fp, loc)
}

// Load installs a fingerprint mapping without charging any simulated time
// or buffering a write-back. It is the reopen path: rebuilding the index
// from a durable backend's container directory models recovering on-disk
// state that already exists, not new index writes.
func (ix *Index) Load(fp chunk.Fingerprint, loc chunk.Location) {
	sh := ix.shardOf(ix.bucket(fp))
	sh.mu.Lock()
	sh.m[fp] = loc
	sh.mu.Unlock()
}

// Delete drops a fingerprint mapping without charging time. It is the
// repair path: when fsck quarantines a container, every index entry that
// pointed into it must go, or lookups would resolve to vanished bytes.
// The boolean reports whether the mapping existed.
func (ix *Index) Delete(fp chunk.Fingerprint) bool {
	sh := ix.shardOf(ix.bucket(fp))
	sh.mu.Lock()
	_, ok := sh.m[fp]
	delete(sh.m, fp)
	sh.mu.Unlock()
	return ok
}

// Flush forces the pending write-back on every shard (end of stream).
func (ix *Index) Flush() { ix.flushAll(ix.dev) }

// Flush is Index.Flush charged to the handle's clock.
func (h Handle) Flush() { h.ix.flushAll(h.dev) }

func (ix *Index) flushAll(dev *disk.Device) {
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		n := sh.pending
		sh.pending = 0
		sh.mu.Unlock()
		if n > 0 {
			ix.chargeFlush(dev, n)
		}
	}
}

// chargeFlush accounts one batched sequential write-back of n buffered
// inserts: the merge log. It runs outside the stripe lock — the buffer was
// already claimed (pending reset to 0) under the lock, so the charge being
// out from under the mutex only shortens hold times, never double-counts.
func (ix *Index) chargeFlush(dev *disk.Device, n int) {
	dev.AppendHole(int64(n) * entrySize)
	ix.flushes.Add(1)
	telFlushes.Inc()
}

// Len returns the number of indexed fingerprints.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Range iterates all mappings (in arbitrary order) until fn returns false.
// Free of simulated time — for checkers and diagnostics, not engines. fn is
// called outside shard locks (on a snapshot of each stripe), so it may call
// back into the index.
func (ix *Index) Range(fn func(chunk.Fingerprint, chunk.Location) bool) {
	type pair struct {
		fp  chunk.Fingerprint
		loc chunk.Location
	}
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		snap := make([]pair, 0, len(sh.m))
		for fp, loc := range sh.m {
			snap = append(snap, pair{fp, loc})
		}
		sh.mu.Unlock()
		for _, p := range snap {
			if !fn(p.fp, p.loc) {
				return
			}
		}
	}
}

// Stats returns cumulative counters.
func (ix *Index) Stats() Stats {
	return Stats{
		Lookups:   ix.lookups.Load(),
		PageHits:  ix.pageHits.Load(),
		PageReads: ix.pageReads.Load(),
		Inserts:   ix.inserts.Load(),
		Flushes:   ix.flushes.Load(),
		NotFound:  ix.notFound.Load(),
	}
}

// CacheHitRate returns the page-cache hit rate over all charged lookups.
func (ix *Index) CacheHitRate() float64 {
	lookups := ix.lookups.Load()
	if lookups == 0 {
		return 0
	}
	return float64(ix.pageHits.Load()) / float64(lookups)
}
