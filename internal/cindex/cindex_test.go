package cindex

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
	"repro/internal/disk"
)

func fpOf(i uint64) chunk.Fingerprint {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return chunk.Of(b[:])
}

func newTestIndex(t *testing.T, cfg Config) (*Index, *disk.Clock) {
	t.Helper()
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, false)
	ix, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk.Reset()
	return ix, &clk
}

func smallCfg() Config {
	return Config{PageSize: 4096, NumBuckets: 64, CachePages: 4, FlushBatch: 16}
}

func TestNewRejectsBadConfig(t *testing.T) {
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, false)
	for _, cfg := range []Config{{}, {PageSize: 1}, {PageSize: 1, NumBuckets: 1}} {
		if _, err := New(dev, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestDefaultConfigScales(t *testing.T) {
	small := DefaultConfig(1000)
	big := DefaultConfig(10_000_000)
	if big.NumBuckets <= small.NumBuckets {
		t.Fatal("buckets must grow with population")
	}
	if small.CachePages < 4 {
		t.Fatal("cache floor")
	}
	if DefaultConfig(0).NumBuckets < 1 {
		t.Fatal("degenerate population")
	}
}

func TestInsertLookup(t *testing.T) {
	ix, _ := newTestIndex(t, smallCfg())
	loc := chunk.Location{Container: 3, Segment: 9, Offset: 100, Size: 42}
	ix.Insert(fpOf(1), loc)
	got, ok := ix.Lookup(fpOf(1))
	if !ok || got != loc {
		t.Fatalf("Lookup = %v,%v", got, ok)
	}
	if _, ok := ix.Lookup(fpOf(2)); ok {
		t.Fatal("absent key found")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestUpdateRepoints(t *testing.T) {
	ix, _ := newTestIndex(t, smallCfg())
	ix.Insert(fpOf(1), chunk.Location{Container: 1, Offset: 10, Size: 5})
	newLoc := chunk.Location{Container: 7, Offset: 999, Size: 5}
	ix.Update(fpOf(1), newLoc)
	if got, _ := ix.Peek(fpOf(1)); got != newLoc {
		t.Fatalf("Peek after update = %v", got)
	}
}

func TestLookupChargesOnMissOnly(t *testing.T) {
	ix, clk := newTestIndex(t, smallCfg())
	fp := fpOf(42)
	ix.Insert(fp, chunk.Location{Size: 1})
	t0 := clk.Now()
	ix.Lookup(fp) // cold: page read
	t1 := clk.Now()
	if t1 == t0 {
		t.Fatal("cold lookup must charge a page read")
	}
	ix.Lookup(fp) // warm: same bucket now cached
	if clk.Now() != t1 {
		t.Fatal("warm lookup must be free")
	}
	st := ix.Stats()
	if st.PageReads != 1 || st.PageHits != 1 || st.Lookups != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeekIsFree(t *testing.T) {
	ix, clk := newTestIndex(t, smallCfg())
	ix.Insert(fpOf(1), chunk.Location{Size: 1})
	before := clk.Now()
	if _, ok := ix.Peek(fpOf(1)); !ok {
		t.Fatal("Peek miss")
	}
	if clk.Now() != before {
		t.Fatal("Peek must not charge time")
	}
}

func TestCacheEvictionCausesRereads(t *testing.T) {
	cfg := smallCfg() // 4 cache pages, 64 buckets
	ix, _ := newTestIndex(t, cfg)
	// Touch many distinct buckets: with only 4 cache pages most lookups
	// must pay disk reads.
	for i := uint64(0); i < 200; i++ {
		ix.Lookup(fpOf(i))
	}
	st := ix.Stats()
	if st.PageReads < 100 {
		t.Fatalf("expected mostly page reads with tiny cache, got %+v", st)
	}
	if ix.CacheHitRate() > 0.5 {
		t.Fatalf("hit rate %v implausibly high", ix.CacheHitRate())
	}
}

func TestNotFoundCounted(t *testing.T) {
	ix, _ := newTestIndex(t, smallCfg())
	ix.Lookup(fpOf(1))
	if ix.Stats().NotFound != 1 {
		t.Fatal("NotFound must count")
	}
}

// fpsInBucket scans fingerprints until it finds n that hash to bucket b.
func fpsInBucket(ix *Index, b, n int) []chunk.Fingerprint {
	out := make([]chunk.Fingerprint, 0, n)
	for i := uint64(0); len(out) < n; i++ {
		if fp := fpOf(i); ix.bucket(fp) == b {
			out = append(out, fp)
		}
	}
	return out
}

func TestFlushBatching(t *testing.T) {
	ix, clk := newTestIndex(t, smallCfg()) // FlushBatch 16, per shard
	// Write-back buffers are per lock stripe: keep every insert in one
	// bucket (hence one shard) so the batch threshold is exercised exactly.
	fps := fpsInBucket(ix, 0, 17)
	for _, fp := range fps[:15] {
		ix.Insert(fp, chunk.Location{Size: 1})
	}
	if ix.Stats().Flushes != 0 {
		t.Fatal("no flush before batch full")
	}
	ix.Insert(fps[15], chunk.Location{Size: 1})
	if ix.Stats().Flushes != 1 {
		t.Fatal("batch full must flush")
	}
	before := clk.Now()
	ix.Flush() // nothing pending
	if clk.Now() != before || ix.Stats().Flushes != 1 {
		t.Fatal("empty Flush must be free")
	}
	ix.Insert(fps[16], chunk.Location{Size: 1})
	ix.Flush()
	if ix.Stats().Flushes != 2 {
		t.Fatal("explicit flush of pending entries")
	}
}

func TestLookupBatchChargesOncePerUncachedBucket(t *testing.T) {
	ix, clk := newTestIndex(t, smallCfg())
	// Build a batch over exactly three distinct buckets with repeats
	// interleaved, mimicking a segment whose chunks collide on index pages.
	// Non-adjacent buckets (own seek each) in distinct lock stripes (4
	// shards here), so the warm re-batch below finds all three still cached.
	a := fpsInBucket(ix, 1, 3)
	b := fpsInBucket(ix, 3, 2)
	c := fpsInBucket(ix, 6, 1)
	ix.Insert(a[0], chunk.Location{Size: 1})
	ix.Flush()
	clk.Reset()
	batch := []chunk.Fingerprint{a[0], b[0], a[1], c[0], b[1], a[2]}
	res := ix.LookupBatch(batch)
	st := ix.Stats()
	if st.PageReads != 3 {
		t.Fatalf("PageReads = %d, want exactly one per distinct uncached bucket (3)", st.PageReads)
	}
	if st.PageHits != int64(len(batch)-3) {
		t.Fatalf("PageHits = %d, want %d", st.PageHits, len(batch)-3)
	}
	if st.Lookups != int64(len(batch)) {
		t.Fatalf("Lookups = %d, want %d", st.Lookups, len(batch))
	}
	wantTime := 3 * (disk.DefaultModel().Seek + disk.DefaultModel().ReadTime(smallCfg().PageSize))
	if clk.Now() != wantTime {
		t.Fatalf("charged %v, want %v (3 page reads)", clk.Now(), wantTime)
	}
	if !res[0].Found || res[1].Found {
		t.Fatalf("positional results wrong: %+v", res)
	}
	// A second batch over the same buckets is served from cache entirely.
	t1 := clk.Now()
	ix.LookupBatch(batch)
	if ix.Stats().PageReads != 3 || clk.Now() != t1 {
		t.Fatal("warm batch must be free")
	}
}

func TestLookupBatchMatchesLookup(t *testing.T) {
	cfg := smallCfg()
	ixA, _ := newTestIndex(t, cfg)
	ixB, _ := newTestIndex(t, cfg)
	var fps []chunk.Fingerprint
	for i := uint64(0); i < 300; i++ {
		fp := fpOf(i)
		fps = append(fps, fp)
		if i%3 == 0 {
			loc := chunk.Location{Container: uint32(i), Size: 1}
			ixA.Insert(fp, loc)
			ixB.Insert(fp, loc)
		}
	}
	res := ixA.LookupBatch(fps)
	for i, fp := range fps {
		loc, ok := ixB.Lookup(fp)
		if res[i].Found != ok || res[i].Loc != loc {
			t.Fatalf("fp %d: batch (%v,%v) vs lookup (%v,%v)", i, res[i].Loc, res[i].Found, loc, ok)
		}
	}
}

func TestLookupBatchEmpty(t *testing.T) {
	ix, clk := newTestIndex(t, smallCfg())
	if res := ix.LookupBatch(nil); len(res) != 0 {
		t.Fatal("empty batch must return empty results")
	}
	if clk.Now() != 0 || ix.Stats().Lookups != 0 {
		t.Fatal("empty batch must be free")
	}
}

func TestConfigForPage(t *testing.T) {
	// entries-per-page must follow the configured page size: a 4× larger
	// page holds ~4× the entries and needs ~4× fewer buckets.
	small := ConfigForPage(8192, 1_000_000)
	big := ConfigForPage(32768, 1_000_000)
	if small.PageSize != 8192 || big.PageSize != 32768 {
		t.Fatalf("page sizes: %d, %d", small.PageSize, big.PageSize)
	}
	ratio := float64(small.NumBuckets) / float64(big.NumBuckets)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("bucket ratio = %.2f, want ~4 (buckets %d vs %d)", ratio, small.NumBuckets, big.NumBuckets)
	}
	if got := DefaultConfig(1_000_000); got != ConfigForPage(8192, 1_000_000) {
		t.Fatal("DefaultConfig must equal ConfigForPage at 8 KiB")
	}
}

func TestShardsAutoSizing(t *testing.T) {
	ix, _ := newTestIndex(t, smallCfg()) // CachePages 4 < 16 → 4 shards
	if ix.NumShards() != 4 {
		t.Fatalf("auto shards = %d, want 4", ix.NumShards())
	}
	ix2, _ := newTestIndex(t, Config{PageSize: 4096, NumBuckets: 64, CachePages: 64, FlushBatch: 16, Shards: 3})
	if ix2.NumShards() != 3 {
		t.Fatalf("explicit shards = %d, want 3", ix2.NumShards())
	}
}

func TestCacheHitRateEmpty(t *testing.T) {
	ix, _ := newTestIndex(t, smallCfg())
	if ix.CacheHitRate() != 0 {
		t.Fatal("no lookups → rate 0")
	}
}

// Property: the index agrees with a plain map under random insert/update/
// lookup sequences.
func TestIndexModelProperty(t *testing.T) {
	ix, _ := newTestIndex(t, Config{PageSize: 4096, NumBuckets: 16, CachePages: 2, FlushBatch: 8})
	model := map[chunk.Fingerprint]chunk.Location{}
	fn := func(key uint8, container uint8, lookupOnly bool) bool {
		fp := fpOf(uint64(key))
		if lookupOnly {
			got, ok := ix.Lookup(fp)
			want, wok := model[fp]
			return ok == wok && got == want
		}
		loc := chunk.Location{Container: uint32(container), Size: 1}
		model[fp] = loc
		ix.Insert(fp, loc)
		return ix.Len() == len(model)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle()
	if o.Observe(fpOf(1), 100) {
		t.Fatal("first occurrence is not redundant")
	}
	if !o.Observe(fpOf(1), 100) {
		t.Fatal("second occurrence is redundant")
	}
	if o.Observe(fpOf(2), 50) {
		t.Fatal("new chunk not redundant")
	}
	if o.TotalBytes() != 250 || o.RedundantBytes() != 100 || o.Unique() != 2 {
		t.Fatalf("oracle counters: total=%d red=%d uniq=%d", o.TotalBytes(), o.RedundantBytes(), o.Unique())
	}
	if !o.Seen(fpOf(2)) || o.Seen(fpOf(3)) {
		t.Fatal("Seen wrong")
	}
}

func TestOracleCompressionRatio(t *testing.T) {
	o := NewOracle()
	if o.CompressionRatio() != 1 {
		t.Fatal("empty oracle ratio must be 1")
	}
	o.Observe(fpOf(1), 100)
	o.Observe(fpOf(1), 100)
	o.Observe(fpOf(1), 100)
	if got := o.CompressionRatio(); got != 3 {
		t.Fatalf("ratio = %v, want 3", got)
	}
}

// Property: redundantBytes + uniqueBytes == totalBytes always.
func TestOracleConservationProperty(t *testing.T) {
	o := NewOracle()
	uniqueBytes := int64(0)
	fn := func(key uint8, szRaw uint8) bool {
		size := uint32(szRaw) + 1
		fp := fpOf(uint64(key))
		if !o.Observe(fp, size) {
			uniqueBytes += int64(size)
		}
		return o.TotalBytes() == o.RedundantBytes()+uniqueBytes
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, false)
	ix, err := New(dev, DefaultConfig(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 100_000; i++ {
		ix.Insert(fpOf(i), chunk.Location{Size: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(fpOf(uint64(i % 200_000)))
	}
}

// BenchmarkLookupBatch resolves segment-sized batches; compare against
// BenchmarkLookup for the per-chunk baseline (ns normalized per lookup).
func BenchmarkLookupBatch(b *testing.B) {
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, false)
	ix, err := New(dev, DefaultConfig(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 100_000; i++ {
		ix.Insert(fpOf(i), chunk.Location{Size: 1})
	}
	const batch = 256 // ~one segment of 4 KiB chunks
	fps := make([]chunk.Fingerprint, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range fps {
			fps[j] = fpOf(uint64((i*batch + j) % 200_000))
		}
		ix.LookupBatch(fps)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/lookup")
}
