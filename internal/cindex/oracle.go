package cindex

import (
	"sync"

	"repro/internal/chunk"
)

// Oracle is the exact, in-RAM fingerprint set used as measurement ground
// truth. It answers "has this chunk ever been stored (by anyone)?" with no
// simulated-time cost and no false positives/negatives, which defines the
// paper's "redundant data actually existing in the dataset". It is safe for
// concurrent use: under multi-stream ingest all streams feed one oracle.
type Oracle struct {
	mu   sync.Mutex
	seen map[chunk.Fingerprint]struct{}

	totalBytes     int64 // all observed bytes
	redundantBytes int64 // bytes whose fingerprint had been seen before
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{seen: make(map[chunk.Fingerprint]struct{}, 1024)}
}

// Observe records one chunk occurrence and reports whether it was redundant
// (seen before).
func (o *Oracle) Observe(fp chunk.Fingerprint, size uint32) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.totalBytes += int64(size)
	if _, dup := o.seen[fp]; dup {
		o.redundantBytes += int64(size)
		return true
	}
	o.seen[fp] = struct{}{}
	return false
}

// Seen reports whether fp has been observed, without recording anything.
func (o *Oracle) Seen(fp chunk.Fingerprint) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.seen[fp]
	return ok
}

// Unique returns the number of distinct fingerprints observed.
func (o *Oracle) Unique() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.seen)
}

// TotalBytes returns all bytes observed.
func (o *Oracle) TotalBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.totalBytes
}

// RedundantBytes returns the bytes that were exact re-occurrences.
func (o *Oracle) RedundantBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.redundantBytes
}

// CompressionRatio returns total/unique bytes observed so far (>= 1).
func (o *Oracle) CompressionRatio() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	uniq := o.totalBytes - o.redundantBytes
	if uniq == 0 {
		return 1
	}
	return float64(o.totalBytes) / float64(uniq)
}
