package cindex

import "repro/internal/chunk"

// Oracle is the exact, in-RAM fingerprint set used as measurement ground
// truth. It answers "has this chunk ever been stored (by anyone)?" with no
// simulated-time cost and no false positives/negatives, which defines the
// paper's "redundant data actually existing in the dataset".
type Oracle struct {
	seen map[chunk.Fingerprint]struct{}

	totalBytes     int64 // all observed bytes
	redundantBytes int64 // bytes whose fingerprint had been seen before
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{seen: make(map[chunk.Fingerprint]struct{}, 1024)}
}

// Observe records one chunk occurrence and reports whether it was redundant
// (seen before).
func (o *Oracle) Observe(fp chunk.Fingerprint, size uint32) bool {
	o.totalBytes += int64(size)
	if _, dup := o.seen[fp]; dup {
		o.redundantBytes += int64(size)
		return true
	}
	o.seen[fp] = struct{}{}
	return false
}

// Seen reports whether fp has been observed, without recording anything.
func (o *Oracle) Seen(fp chunk.Fingerprint) bool {
	_, ok := o.seen[fp]
	return ok
}

// Unique returns the number of distinct fingerprints observed.
func (o *Oracle) Unique() int { return len(o.seen) }

// TotalBytes returns all bytes observed.
func (o *Oracle) TotalBytes() int64 { return o.totalBytes }

// RedundantBytes returns the bytes that were exact re-occurrences.
func (o *Oracle) RedundantBytes() int64 { return o.redundantBytes }

// CompressionRatio returns total/unique bytes observed so far (>= 1).
func (o *Oracle) CompressionRatio() float64 {
	uniq := o.totalBytes - o.redundantBytes
	if uniq == 0 {
		return 1
	}
	return float64(o.totalBytes) / float64(uniq)
}
