// Package cli holds the shared entry-point plumbing for the repro command
// line tools. Each main becomes a single call to Main with a run function
// returning error; the error-to-exit-code translation lives here, once,
// instead of being copy-pasted around every fallible call in every main.
package cli

import (
	"errors"
	"fmt"
	"os"
)

// Main runs fn and is the process's single exit point on failure: the error
// is printed as "tool: err" on stderr and the process exits 1 (or 2 for
// usage errors built with Usagef). On success it simply returns, so main
// falls off the end and exits 0.
func Main(tool string, fn func() error) {
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		code := 1
		var ue usageError
		if errors.As(err, &ue) {
			code = 2
		}
		os.Exit(code)
	}
}

// Usagef returns an error that Main reports with exit status 2, the
// conventional "bad command line" code.
func Usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

type usageError struct{ error }
