package container

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/disk"
)

// slowSealBackend wraps the sim backend so each Seal blocks until released,
// making the async-persist window arbitrarily wide for tests.
type slowSealBackend struct {
	blockstore.Backend
	mu      sync.Mutex
	gate    chan struct{} // non-nil: Seal blocks until closed
	sealErr error         // returned by Seal after the gate opens
	seals   int
}

func (b *slowSealBackend) Seal(ctx context.Context, info blockstore.ContainerInfo, data []byte) error {
	b.mu.Lock()
	gate, err := b.gate, b.sealErr
	b.seals++
	b.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if err != nil {
		return err
	}
	return b.Backend.Seal(ctx, info, data)
}

func newSlowStore(t *testing.T) (*Store, *slowSealBackend) {
	t.Helper()
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, true)
	be := &slowSealBackend{Backend: blockstore.NewSim(true)}
	s, err := NewStoreWithBackend(dev, smallConfig(), be)
	if err != nil {
		t.Fatal(err)
	}
	return s, be
}

// TestAsyncSealReadBarrier: a data read issued while the container's persist
// is still in flight must block on the barrier and then see complete bytes,
// not race the backend write.
func TestAsyncSealReadBarrier(t *testing.T) {
	s, be := newSlowStore(t)
	gate := make(chan struct{})
	be.gate = gate

	data := bytes.Repeat([]byte{0xAB}, 300)
	loc := mustWrite(s, chunk.New(data), 1)
	w := s.SerialWriter()
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Directory is published immediately (dedup semantics), persist gated.
	if !s.Sealed(loc.Container) {
		t.Fatal("container not published at Flush return")
	}

	got := make(chan error, 1)
	go func() {
		buf, err := s.ReadChunk(context.Background(), loc)
		if err == nil && !bytes.Equal(buf, data) {
			err = errors.New("read tore the chunk")
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("read completed through the barrier (err=%v)", err)
	default:
	}
	close(gate)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSealFailureUnpublishes: when the background persist fails, the
// container must drop out of the directory and the error must surface at the
// writer's next Flush/Finish — the stream aborts at most one container late.
func TestAsyncSealFailureUnpublishes(t *testing.T) {
	s, be := newSlowStore(t)
	sentinel := errors.New("backend exploded")
	be.sealErr = sentinel

	loc := mustWrite(s, chunk.New(bytes.Repeat([]byte{1}, 100)), 1)
	w := s.SerialWriter()
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := w.Finish(context.Background())
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("Finish err = %v, want the persist failure", err)
	}
	if s.Sealed(loc.Container) {
		t.Fatal("failed container still published")
	}
	if s.NumContainers() != 0 {
		t.Fatalf("NumContainers = %d after failed persist, want 0", s.NumContainers())
	}
}

// TestAsyncSealBarrierCtxCancel: a reader waiting on a gated persist must
// honor its context instead of hanging.
func TestAsyncSealBarrierCtxCancel(t *testing.T) {
	s, be := newSlowStore(t)
	gate := make(chan struct{})
	be.gate = gate
	defer close(gate)

	loc := mustWrite(s, chunk.New(bytes.Repeat([]byte{2}, 100)), 1)
	if err := s.SerialWriter().Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ReadChunk(ctx, loc); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWaitSealsDrains: WaitSeals must block until every in-flight persist
// lands, and the backend must have seen them all.
func TestWaitSealsDrains(t *testing.T) {
	s, be := newSlowStore(t)
	gate := make(chan struct{})
	be.gate = gate

	// Stay under DataCap: a second fill would auto-flush and block on the
	// gated first persist (depth-1 pipelining), deadlocking the test.
	w := s.NewWriter(nil)
	for i := 0; i < 4; i++ {
		d := bytes.Repeat([]byte{byte(i)}, 200)
		if _, err := w.Write(context.Background(), chunk.New(d), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.WaitSeals()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitSeals returned with a gated persist in flight")
	default:
	}
	close(gate)
	<-done
	if err := w.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
	be.mu.Lock()
	seals := be.seals
	be.mu.Unlock()
	if want := s.NumContainers(); seals != want {
		t.Fatalf("backend saw %d seals, directory has %d containers", seals, want)
	}
}

// TestConcurrentWritersFileBackend drives several reserve-mode writers over
// the durable file backend at once — exercising parallel meta/data file
// writes plus WAL group commit — then reopens the directory and verifies
// every chunk from a fresh store.
func TestConcurrentWritersFileBackend(t *testing.T) {
	dir := t.TempDir()
	be, err := blockstore.OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, true)
	s, err := NewStoreWithBackend(dev, smallConfig(), be)
	if err != nil {
		t.Fatal(err)
	}

	const streams = 4
	type written struct {
		loc  chunk.Location
		data []byte
	}
	results := make([][]written, streams)
	var wg sync.WaitGroup
	for st := 0; st < streams; st++ {
		wg.Add(1)
		go func(st int) {
			defer wg.Done()
			w := s.NewWriter(nil)
			for i := 0; i < 25; i++ {
				d := bytes.Repeat([]byte{byte(st*31 + i)}, 150+i)
				loc, err := w.Write(context.Background(), chunk.New(d), uint64(i))
				if err != nil {
					t.Error(err)
					return
				}
				results[st] = append(results[st], written{loc, d})
			}
			if err := w.Finish(context.Background()); err != nil {
				t.Error(err)
			}
		}(st)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for st := range results {
		for i, wr := range results[st] {
			got, err := s.ReadChunk(context.Background(), wr.loc)
			if err != nil {
				t.Fatalf("stream %d chunk %d: %v", st, i, err)
			}
			if !bytes.Equal(got, wr.data) {
				t.Fatalf("stream %d chunk %d: bytes differ", st, i)
			}
		}
	}
	s.WaitSeals()
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: manifest + WAL replay must reconstruct the full directory.
	be2, err := blockstore.OpenFile(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var clk2 disk.Clock
	dev2 := disk.NewDevice(disk.DefaultModel(), &clk2, true)
	s2, err := NewStoreWithBackend(dev2, smallConfig(), be2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Adopt(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.NumContainers(), s.NumContainers(); got != want {
		t.Fatalf("reopened store has %d containers, want %d", got, want)
	}
	for st := range results {
		for i, wr := range results[st] {
			got, err := s2.ReadChunk(context.Background(), wr.loc)
			if err != nil {
				t.Fatalf("reopened stream %d chunk %d: %v", st, i, err)
			}
			if !bytes.Equal(got, wr.data) {
				t.Fatalf("reopened stream %d chunk %d: bytes differ", st, i)
			}
		}
	}
	s2.WaitSeals()
	if err := be2.Close(); err != nil {
		t.Fatal(err)
	}
}
