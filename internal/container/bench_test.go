package container

import (
	"context"
	"testing"

	"repro/internal/chunk"
	"repro/internal/disk"
)

// benchSealed builds a store with n sealed single-chunk containers of
// roughly size data bytes each.
func benchSealed(b *testing.B, n, size int) *Store {
	var clk disk.Clock
	s, err := NewStore(disk.NewDevice(disk.DefaultModel(), &clk, true),
		Config{DataCap: int64(size), MaxChunks: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := make([]byte, size)
		for j := range d {
			d[j] = byte(i*17 + j)
		}
		mustWrite(s, chunk.New(d), uint64(i))
		if err := s.Flush(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkContainerReadRange measures adjacent-run data fetches — the
// physical read unit of the coalesced restore path — with the shared data
// cache off, cold-ish (tiny budget), and hot.
func BenchmarkContainerReadRange(b *testing.B) {
	const n, size = 16, 64 << 10
	ids := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"uncached", 0},
		{"cache-cold", int64(size)},        // budget of ~1 section: perpetual eviction
		{"cache-hot", int64(n * size * 2)}, // everything fits after the first pass
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := benchSealed(b, n, size)
			s.SetDataCache(tc.budget)
			ctx := context.Background()
			var total int64
			for _, id := range ids {
				total += s.DataFill(id)
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ReadDataRange(ctx, ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
