// Package container implements the stream-informed container log that backs
// every dedup engine in this repository (the layout DDFS calls "stream
// informed segment layout"): new unique chunks are buffered into a
// fixed-capacity open container and flushed sequentially, so chunks that
// arrive together are stored together.
//
// On-disk layout of one container:
//
//	[ metadata section: MetaCap bytes ][ data section: <= DataCap bytes ]
//
// The metadata section (chunk fingerprints, sizes, segment IDs) is what
// DDFS's locality-preserved cache prefetches: one seek pulls in descriptors
// for every chunk that was written near a duplicate, which is exactly the
// spatial locality the paper studies.
//
// Since the blockstore refactor the store separates two concerns that used
// to be fused inside disk.Device:
//
//   - the simulated device charges *time* (Eq. 1 seeks and transfers) for
//     every container operation, exactly as before;
//   - a blockstore.Backend owns the *bytes*: sealed containers are handed to
//     it on Flush and fetched back on reads, so the same engine can run over
//     an in-memory store, a durable directory, or a fault-injecting wrapper
//     without its timing changing at all.
//
// Writing goes through a Writer, of which there are two flavors:
//
//   - SerialWriter appends containers at the device frontier, one at a time
//     — the classic single-stream layout; Store.Write/Flush delegate to it.
//   - NewWriter(clk) is a per-stream writer for concurrent ingest: each
//     stream keeps its own open container inside a pre-reserved fixed-size
//     extent (allocated under the store mutex), assigns chunk offsets
//     privately, and charges its seal I/O to the stream's own clock. Streams
//     therefore only contend on the brief extent/ID allocation, not on
//     chunk writes.
//
// Container IDs are allocated when a writer opens its container, so the
// shadow directory stays dense; a slot reports Sealed only once flushed
// (and stops doing so if fsck quarantines the container).
package container

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/disk"
	"repro/internal/telemetry"
)

// Per-stage wall clocks of the container layer (the always-on layer; see
// telemetry/stage.go). "seal" is the in-RAM work of closing a container
// (device accounting, directory Info assembly, metadata copy);
// "backend_write" is the blockstore persist of the sealed container;
// "container_read" is a backend data-section fetch on the restore path.
var (
	stageSeal          = telemetry.Stage("seal")
	stageBackendWrite  = telemetry.Stage("backend_write")
	stageContainerRead = telemetry.Stage("container_read")
)

// Live telemetry of container-log activity across all stores in the
// process. Meta reads are LPC prefetches (ingest path); data reads are
// restore/compaction container fetches.
var (
	telSealed = telemetry.NewCounter("container_sealed_total",
		"containers sealed (flushed to the backend)")
	telWrittenBytes = telemetry.NewCounter("container_written_bytes_total",
		"chunk data bytes written into containers")
	telMetaReads = telemetry.NewCounter("container_meta_reads_total",
		"container metadata-section reads (locality-preserved cache prefetches)")
	telDataReads = telemetry.NewCounter("container_data_reads_total",
		"container data-section reads (restore and compaction fetches)")
	telDeadBytes = telemetry.NewCounter("container_dead_bytes_total",
		"bytes superseded inside sealed containers (garbage left by rewrites)")
	telRangedReads = telemetry.NewCounter("container_ranged_reads_total",
		"coalesced multi-container sequential data reads (restore extent fetches)")
	telQuarantined = telemetry.NewCounter("container_quarantined_total",
		"containers quarantined by repair")
	telDropped = telemetry.NewCounter("container_dropped_total",
		"containers dropped after a merge reclaimed them")
)

// Config sizes the container geometry.
type Config struct {
	DataCap   int64 // data section capacity in bytes (default 4 MiB)
	MaxChunks int   // maximum chunks per container (bounds the metadata section)
}

// DefaultConfig returns the DDFS-style geometry: 4 MiB containers.
func DefaultConfig() Config {
	return Config{DataCap: 4 << 20, MaxChunks: 2048}
}

// metaEntrySize is the on-disk size of one metadata entry:
// fingerprint (32) + size (4) + segment id (8) = 44 bytes.
const metaEntrySize = 44

// MetaCap returns the on-disk size of the metadata section.
func (c Config) MetaCap() int64 { return int64(c.MaxChunks) * metaEntrySize }

func (c Config) validate() error {
	if c.DataCap <= 0 || c.MaxChunks <= 0 {
		return fmt.Errorf("container: non-positive geometry %+v", c)
	}
	return nil
}

// Meta describes one chunk stored in a container. It is what a metadata
// read returns (and what the locality-preserved cache holds).
type Meta struct {
	FP      chunk.Fingerprint
	Size    uint32
	Segment uint64 // on-disk segment the chunk was written as part of
	Offset  int64  // absolute device offset of the chunk data
}

// Info is the shadow directory entry for one sealed container.
type Info struct {
	ID       uint32
	Start    int64 // device offset of the metadata section
	DataFill int64 // bytes of chunk data in the data section
	End      int64 // device offset one past the container's extent
	Entries  []Meta
}

// DataStart returns the device offset of the container's data section.
func (i *Info) DataStart(cfg Config) int64 { return i.Start + cfg.MetaCap() }

// Store is the container log over one simulated device and one physical
// backend. All methods are safe for concurrent use; per-stream writing goes
// through Writer.
type Store struct {
	cfg Config
	dev *disk.Device
	be  blockstore.Backend

	mu       sync.Mutex
	sealed   []Info // shadow directory, dense by ID (placeholder until sealedOK)
	sealedOK []bool
	nSealed  int
	// liveBytes tracks, per container, the bytes still referenced by the
	// newest index mappings; the DeFrag rewrite path decrements it to report
	// container utilization (garbage from superseded copies).
	liveBytes []int64
	// pending maps container IDs whose backend persist is still in flight to
	// the barrier channel closed when it lands (see beginSeal/awaitSeal).
	pending map[uint32]chan struct{}

	serialW *Writer // lazily created legacy writer behind Store.Write/Flush

	// dcache, when non-nil, is the shared sealed-container data cache every
	// byte fetch routes through (see datacache.go). Guarded by dcMu so a
	// budget change can swap it while restores are in flight.
	dcMu   sync.RWMutex
	dcache *DataCache
}

// SetDataCache attaches a shared data cache with the given byte budget,
// replacing any existing cache (its residency is dropped). budgetBytes <= 0
// removes the cache entirely. The cache holds bytes only — simulated-clock
// charges are unaffected — and is only engaged on data-storing backends,
// where a fetch returns real content worth retaining.
func (s *Store) SetDataCache(budgetBytes int64) {
	var c *DataCache
	if budgetBytes > 0 {
		c = NewDataCache(budgetBytes)
	}
	s.dcMu.Lock()
	s.dcache = c
	s.dcMu.Unlock()
}

// DataCache returns the attached shared data cache, or nil.
func (s *Store) DataCache() *DataCache {
	s.dcMu.RLock()
	defer s.dcMu.RUnlock()
	return s.dcache
}

// NewStore creates a container store writing to dev, with bytes held by an
// in-memory backend that mirrors dev's storesData setting. The store must
// be the only writer of dev.
func NewStore(dev *disk.Device, cfg Config) (*Store, error) {
	return NewStoreWithBackend(dev, cfg, blockstore.NewSim(dev.StoresData()))
}

// NewStoreWithBackend creates a container store charging time to dev and
// persisting sealed containers to be. The device is used purely as the
// timing model: real bytes live only in the backend.
func NewStoreWithBackend(dev *disk.Device, cfg Config, be blockstore.Backend) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if be == nil {
		return nil, fmt.Errorf("container: nil backend")
	}
	return &Store{cfg: cfg, dev: dev, be: be}, nil
}

// Config returns the store geometry.
func (s *Store) Config() Config { return s.cfg }

// Device returns the underlying device (read-only use by restore paths).
func (s *Store) Device() *disk.Device { return s.dev }

// Backend returns the physical byte store.
func (s *Store) Backend() blockstore.Backend { return s.be }

// StoresData reports whether the backend retains real chunk bytes.
func (s *Store) StoresData() bool { return s.be.StoresData() }

// NumContainers returns the count of sealed containers.
func (s *Store) NumContainers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nSealed
}

// Slots returns the size of the container ID space: every ID ever
// allocated, sealed or not. Iterate [0,Slots()) with Sealed(id) to walk the
// directory when quarantine may have punched holes in it.
func (s *Store) Slots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sealed)
}

// allocID reserves the next dense container ID with a placeholder directory
// slot; seal fills it in when the container flushes.
func (s *Store) allocID() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := uint32(len(s.sealed))
	s.sealed = append(s.sealed, Info{ID: id})
	s.sealedOK = append(s.sealedOK, false)
	s.liveBytes = append(s.liveBytes, 0)
	return id
}

// sealResult is the outcome of one background backend persist; data rides
// along so the writer can recycle its buffer once the backend (which must
// not retain the slice) is done with it.
type sealResult struct {
	err  error
	data []byte
}

// beginSeal publishes a flushed container into the shadow directory and
// kicks off the backend persist in the background, returning a channel that
// delivers the persist outcome. Publishing immediately keeps Sealed/ReadMeta
// semantics identical to the old synchronous seal — dedup decisions depend
// only on the RAM directory — while the backend write happens off the
// ingest hot path; data-section readers block on the per-container barrier
// (awaitSeal) until the bytes land. If the persist ultimately fails, the
// container is unpublished (a directory hole, like a quarantine) and the
// error surfaces at the writer's next Flush/Finish, aborting its backup
// exactly as a synchronous seal failure would have.
func (s *Store) beginSeal(ctx context.Context, info Info, data []byte) chan sealResult {
	s.mu.Lock()
	s.sealed[info.ID] = info
	s.sealedOK[info.ID] = true
	s.nSealed++
	s.liveBytes[info.ID] = info.DataFill
	if s.pending == nil {
		s.pending = make(map[uint32]chan struct{})
	}
	barrier := make(chan struct{})
	s.pending[info.ID] = barrier
	s.mu.Unlock()

	done := make(chan sealResult, 1)
	// The persist is the store's obligation, not the request's: it is
	// detached from the caller's cancellation so a drained request cannot
	// tear out a container that other streams' dedup decisions already saw.
	pctx := context.WithoutCancel(ctx)
	go func() {
		t0 := time.Now()
		err := s.be.Seal(pctx, toBackendInfo(info), data)
		stageBackendWrite.Observe(t0)
		s.mu.Lock()
		if err != nil {
			// Unpublish. The Info struct itself is left in place (readers
			// may hold pointers from info()); sealedOK is what gates access.
			s.sealedOK[info.ID] = false
			s.nSealed--
			s.liveBytes[info.ID] = 0
		}
		delete(s.pending, info.ID)
		close(barrier)
		s.mu.Unlock()
		if err != nil {
			done <- sealResult{err: fmt.Errorf("container: seal %d: %w", info.ID, err)}
			return
		}
		telSealed.Inc()
		telWrittenBytes.Add(info.DataFill)
		done <- sealResult{data: data}
	}()
	return done
}

// awaitSeal blocks until container id's in-flight backend persist (if any)
// has landed — the read-side barrier matching beginSeal.
func (s *Store) awaitSeal(ctx context.Context, id uint32) error {
	s.mu.Lock()
	ch := s.pending[id]
	s.mu.Unlock()
	if ch == nil {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitSeals blocks until every in-flight backend persist has landed. Store
// close and full-store verification (fsck) call it so they observe a byte
// store that matches the directory.
func (s *Store) WaitSeals() {
	for {
		s.mu.Lock()
		var ch chan struct{}
		for _, c := range s.pending {
			ch = c
			break
		}
		s.mu.Unlock()
		if ch == nil {
			return
		}
		<-ch
	}
}

// Adopt loads the backend's sealed containers into an empty store — the
// reopen path for durable backends. The device frontier advances (without
// charging time) past the highest adopted extent so new containers never
// overlap old ones. Quarantined containers leave unsealed holes in the ID
// space.
func (s *Store) Adopt(ctx context.Context) error {
	infos, err := s.be.List(ctx)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sealed) != 0 {
		return fmt.Errorf("container: Adopt on a non-empty store")
	}
	var maxEnd int64
	for _, bi := range infos {
		id := int(bi.ID)
		for len(s.sealed) <= id {
			s.sealed = append(s.sealed, Info{ID: uint32(len(s.sealed))})
			s.sealedOK = append(s.sealedOK, false)
			s.liveBytes = append(s.liveBytes, 0)
		}
		info := fromBackendInfo(bi)
		s.sealed[id] = info
		s.sealedOK[id] = true
		s.nSealed++
		s.liveBytes[id] = info.DataFill
		if info.End > maxEnd {
			maxEnd = info.End
		}
	}
	if gap := maxEnd - s.dev.Size(); gap > 0 {
		s.dev.ReserveExtent(gap)
	}
	return nil
}

// Quarantine removes a damaged container from the live directory and asks
// the backend to move its bytes aside. The ID becomes an unsealed hole:
// Sealed(id) turns false and reads of it panic, so callers must first drop
// every index/recipe reference (fsck -repair does).
func (s *Store) Quarantine(ctx context.Context, id uint32, reason string) error {
	q, ok := s.be.(blockstore.Quarantiner)
	if !ok {
		return blockstore.ErrNoQuarantine
	}
	s.mu.Lock()
	if int(id) >= len(s.sealed) || !s.sealedOK[id] {
		s.mu.Unlock()
		return fmt.Errorf("container: quarantine: id %d not sealed", id)
	}
	s.mu.Unlock()
	if err := q.Quarantine(ctx, id, reason); err != nil {
		return err
	}
	s.mu.Lock()
	s.sealedOK[id] = false
	s.nSealed--
	s.liveBytes[id] = 0
	s.sealed[id] = Info{ID: id}
	s.mu.Unlock()
	telQuarantined.Inc()
	return nil
}

// Drop removes a batch of merged-away containers from the live directory
// and asks the backend to reclaim their bytes atomically (one durable
// intent record on the file backend — see blockstore.Dropper). The IDs
// become unsealed holes exactly like quarantined ones: Sealed turns false
// and reads panic, so the caller must first have repointed every index
// entry and recipe reference at the surviving copies. The maintenance
// container-merge path is the only caller.
func (s *Store) Drop(ctx context.Context, ids []uint32, reason string) error {
	if len(ids) == 0 {
		return nil
	}
	d, ok := s.be.(blockstore.Dropper)
	if !ok {
		return blockstore.ErrNoDrop
	}
	s.mu.Lock()
	for _, id := range ids {
		if int(id) >= len(s.sealed) || !s.sealedOK[id] {
			s.mu.Unlock()
			return fmt.Errorf("container: drop: id %d not sealed", id)
		}
	}
	s.mu.Unlock()
	// Settle any in-flight persists of the victims so the backend sees them.
	for _, id := range ids {
		if err := s.awaitSeal(ctx, id); err != nil {
			return err
		}
	}
	if err := d.Drop(ctx, ids, reason); err != nil {
		return err
	}
	s.mu.Lock()
	for _, id := range ids {
		s.sealedOK[id] = false
		s.nSealed--
		s.liveBytes[id] = 0
		s.sealed[id] = Info{ID: id}
	}
	s.mu.Unlock()
	if c := s.DataCache(); c != nil {
		for _, id := range ids {
			c.Invalidate(id)
		}
	}
	telDropped.Add(int64(len(ids)))
	return nil
}

func toBackendInfo(info Info) blockstore.ContainerInfo {
	out := blockstore.ContainerInfo{
		ID: info.ID, Start: info.Start, DataFill: info.DataFill, End: info.End,
		Entries: make([]blockstore.ChunkMeta, len(info.Entries)),
	}
	for i, m := range info.Entries {
		out.Entries[i] = blockstore.ChunkMeta{FP: m.FP, Size: m.Size, Segment: m.Segment, Offset: m.Offset}
	}
	return out
}

func fromBackendInfo(bi blockstore.ContainerInfo) Info {
	info := Info{
		ID: bi.ID, Start: bi.Start, DataFill: bi.DataFill, End: bi.End,
		Entries: make([]Meta, len(bi.Entries)),
	}
	for i, m := range bi.Entries {
		info.Entries[i] = Meta{FP: m.FP, Size: m.Size, Segment: m.Segment, Offset: m.Offset}
	}
	return info
}

// Writer buffers chunks into one open container at a time on behalf of a
// single backup stream. A Writer is not itself safe for concurrent use —
// concurrency comes from giving each stream its own Writer over the shared
// Store.
type Writer struct {
	s       *Store
	dev     *disk.Device // device view charging this stream's clock
	reserve bool         // reserve-extent mode (concurrent) vs frontier mode (serial)

	id      uint32
	start   int64
	fill    int64
	meta    []Meta
	data    []byte // buffered only when the backend stores data
	hasOpen bool

	// sealCh, when non-nil, is the in-flight backend persist launched by the
	// previous Flush (depth-1 pipelining: fill container N+1 while N's bytes
	// drain to the backend). spare holds the data buffer recycled from a
	// completed persist for the next open().
	sealCh chan sealResult
	spare  []byte
}

// SerialWriter returns the store's shared frontier-mode writer: containers
// are appended at the device frontier exactly as the single-stream layout
// always did. Store.Write and Store.Flush delegate to it.
func (s *Store) SerialWriter() *Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serialW == nil {
		s.serialW = &Writer{s: s, dev: s.dev}
	}
	return s.serialW
}

// NewWriter returns a per-stream reserve-mode writer whose simulated I/O
// time is charged to clk (nil clk charges the store's own clock). Each open
// container occupies a pre-reserved MetaCap+DataCap extent, so concurrent
// writers never collide on offsets; the unused tail of a partially filled
// final container is the usual cost of fixed-size container slots.
func (s *Store) NewWriter(clk *disk.Clock) *Writer {
	return &Writer{s: s, dev: s.dev.View(clk), reserve: true}
}

// open starts a new container, allocating its ID (and, in reserve mode, its
// device extent) under the store mutex.
func (w *Writer) open() {
	w.id = w.s.allocID()
	if w.reserve {
		w.start = w.dev.ReserveExtent(w.s.cfg.MetaCap() + w.s.cfg.DataCap)
	} else {
		w.start = w.dev.Size()
	}
	w.fill = 0
	w.meta = w.meta[:0]
	if w.s.StoresData() {
		if w.data == nil {
			// The previous buffer is riding with an in-flight persist;
			// reuse the one recycled from the persist before that, if any.
			w.data, w.spare = w.spare, nil
		}
		w.data = w.data[:0]
	}
	w.hasOpen = true
}

// waitSeal blocks until the writer's in-flight backend persist (if any)
// completes, reclaiming its data buffer for reuse and surfacing its error.
func (w *Writer) waitSeal() error {
	if w.sealCh == nil {
		return nil
	}
	res := <-w.sealCh
	w.sealCh = nil
	if res.data != nil {
		w.spare = res.data
	}
	return res.err
}

// Write appends one chunk to the writer's open container (opening or sealing
// containers as needed) and returns its permanent location. segID tags the
// chunk with the on-disk segment it belongs to. ctx bounds the backend seal
// triggered when a full container must flush.
func (w *Writer) Write(ctx context.Context, c chunk.Chunk, segID uint64) (chunk.Location, error) {
	if c.Size == 0 {
		panic("container: zero-size chunk")
	}
	if !w.hasOpen {
		w.open()
	}
	if w.fill+int64(c.Size) > w.s.cfg.DataCap || len(w.meta) >= w.s.cfg.MaxChunks {
		if err := w.Flush(ctx); err != nil {
			return chunk.Location{}, err
		}
		w.open()
	}
	off := w.start + w.s.cfg.MetaCap() + w.fill
	w.meta = append(w.meta, Meta{FP: c.FP, Size: c.Size, Segment: segID, Offset: off})
	if w.s.StoresData() {
		if c.Data != nil {
			w.data = append(w.data, c.Data...)
		} else {
			w.data = append(w.data, make([]byte, c.Size)...)
		}
	}
	w.fill += int64(c.Size)
	return chunk.Location{Container: w.id, Segment: segID, Offset: off, Size: c.Size}, nil
}

// Flush seals the open container: the device is charged for the metadata
// and data section writes, the container is published in the directory, and
// the backend persist is started in the background (at most one in flight
// per writer — Flush first waits out the previous persist, so a persist
// failure aborts the stream one container late at the latest). A writer
// with no open container (or an empty one) flushes to nothing. Write
// flushes automatically when a container fills; end-of-stream callers use
// Finish, which also drains the last persist.
func (w *Writer) Flush(ctx context.Context) error {
	if !w.hasOpen || len(w.meta) == 0 {
		w.hasOpen = false
		return nil
	}
	if err := w.waitSeal(); err != nil {
		w.hasOpen = false
		return err
	}
	t0 := time.Now()
	var end int64
	if w.reserve {
		// Seal in place inside the reserved extent: metadata section padded
		// to fixed capacity, then the data section, one contiguous write run.
		w.dev.AccountWrite(w.start, w.s.cfg.MetaCap())
		w.dev.AccountWrite(w.start+w.s.cfg.MetaCap(), w.fill)
		end = w.start + w.s.cfg.MetaCap() + w.s.cfg.DataCap
	} else {
		if got := w.dev.Size(); got != w.start {
			panic(fmt.Sprintf("container: device frontier %d moved past container start %d (foreign writer?)", got, w.start))
		}
		// Metadata section, padded to fixed capacity so data offsets hold.
		w.dev.AppendHole(w.s.cfg.MetaCap())
		w.dev.AppendHole(w.fill)
		end = w.start + w.s.cfg.MetaCap() + w.fill
	}
	info := Info{
		ID:       w.id,
		Start:    w.start,
		DataFill: w.fill,
		End:      end,
		Entries:  append([]Meta(nil), w.meta...),
	}
	w.hasOpen = false
	stageSeal.Observe(t0) // pre-seal close work only; the backend persist is "backend_write"
	w.sealCh = w.s.beginSeal(ctx, info, w.data)
	w.data = nil // buffer now rides with the persist; open() falls back to spare
	return nil
}

// Finish seals the writer's open container and waits until every backend
// persist this writer started has landed — the end-of-stream barrier. After
// a nil return, all of the stream's containers are durable in the backend.
func (w *Writer) Finish(ctx context.Context) error {
	if err := w.Flush(ctx); err != nil {
		return err
	}
	return w.waitSeal()
}

// ReadMeta is Store.ReadMeta with the disk time charged to the writer's
// stream clock.
func (w *Writer) ReadMeta(id uint32) []Meta { return w.s.readMeta(w.dev, id) }

// Write appends one chunk through the store's serial writer.
func (s *Store) Write(ctx context.Context, c chunk.Chunk, segID uint64) (chunk.Location, error) {
	return s.SerialWriter().Write(ctx, c, segID)
}

// Flush seals the serial writer's open container, if any, and waits for its
// backend persist to land. Engines call this at end of stream or before
// maintenance (GC, defrag), both of which need the byte store caught up with
// the directory, so it keeps the drain semantics of the old synchronous
// seal; the hot-path auto-flush inside Write is what runs asynchronously.
func (s *Store) Flush(ctx context.Context) error {
	s.mu.Lock()
	w := s.serialW
	s.mu.Unlock()
	if w != nil {
		return w.Finish(ctx)
	}
	return nil
}

// ReadMeta performs a metadata-section read of container id: it charges one
// disk access of MetaCap bytes and returns the chunk descriptors. This is
// the operation behind DDFS's locality-preserved-cache prefetch.
func (s *Store) ReadMeta(id uint32) []Meta { return s.readMeta(s.dev, id) }

func (s *Store) readMeta(dev *disk.Device, id uint32) []Meta {
	info := s.info(id)
	dev.AccountRead(info.Start, s.cfg.MetaCap())
	telMetaReads.Inc()
	return info.Entries
}

// PeekMeta returns container metadata without charging any disk time. It is
// simulation bookkeeping (used by ground-truth oracles and tests), never by
// an engine's timed path.
func (s *Store) PeekMeta(id uint32) []Meta { return s.info(id).Entries }

// DataFill returns the filled length of container id's data section without
// charging disk time (checker bookkeeping).
func (s *Store) DataFill(id uint32) int64 { return s.info(id).DataFill }

// DataStart returns the absolute device offset where container id's data
// section begins; chunk Meta.Offset values are absolute, so the valid range
// for container id is [DataStart, DataStart+DataFill).
func (s *Store) DataStart(id uint32) int64 { return s.info(id).DataStart(s.cfg) }

// fetchData pulls one container's data section, consulting the shared data
// cache when one is attached (immediate release: the bytes stay valid, the
// entry just becomes evictable right away).
func (s *Store) fetchData(ctx context.Context, id uint32) ([]byte, error) {
	data, release, err := s.fetchDataPinned(ctx, id)
	if release != nil {
		release()
	}
	return data, err
}

// fetchDataPinned is fetchData returning a pin on the shared cache entry;
// the caller must invoke release (never nil on success) when its prefetch
// window no longer needs the container resident.
func (s *Store) fetchDataPinned(ctx context.Context, id uint32) ([]byte, func(), error) {
	c := s.DataCache()
	if c == nil || !s.StoresData() {
		data, err := s.fetchDataDirect(ctx, id)
		return data, func() {}, err
	}
	return c.Acquire(ctx, id, func() ([]byte, error) { return s.fetchDataDirect(ctx, id) })
}

// fetchDataDirect pulls one container's data section from the backend and
// validates its length against the directory — a short section is a torn
// write surfacing (blockstore.ErrCorrupt).
func (s *Store) fetchDataDirect(ctx context.Context, id uint32) ([]byte, error) {
	if err := s.awaitSeal(ctx, id); err != nil {
		return nil, err
	}
	info := s.info(id)
	t0 := time.Now()
	data, err := s.be.ReadData(ctx, id)
	stageContainerRead.Observe(t0)
	if err != nil {
		return nil, fmt.Errorf("container %d: %w", id, err)
	}
	if int64(len(data)) != info.DataFill {
		return nil, blockstore.Corruptf("container %d torn: data section %d bytes, expected %d",
			id, len(data), info.DataFill)
	}
	return data, nil
}

// PeekData returns the container's data section without charging any disk
// time (checker/diagnostic use). Zero-filled on metadata-only backends.
func (s *Store) PeekData(ctx context.Context, id uint32) ([]byte, error) {
	return s.fetchData(ctx, id)
}

// ReadData reads the full data section of container id (the restore path's
// unit of caching), charging one disk access. It returns the raw data bytes
// when the backend stores data, else a zero slice of the correct length.
func (s *Store) ReadData(ctx context.Context, id uint32) ([]byte, error) {
	info := s.info(id)
	s.dev.AccountRead(info.DataStart(s.cfg), info.DataFill)
	telDataReads.Inc()
	return s.fetchData(ctx, id)
}

// Adjacent reports whether container b's data section can be picked up by
// extending a sequential read past container a's data section more cheaply
// than paying a separate seek: b must sit at or after a's data end, and
// transferring the intervening gap (b's metadata section plus any unused
// reserve-mode tail of a) must cost no more than one seek of the device
// model. This is the coalescing predicate of the restore pipeline — when it
// holds, k consecutive container fetches collapse into 1·T_seek plus one
// combined transfer in the Eq. 1 cost structure.
func (s *Store) Adjacent(a, b uint32) bool {
	ia, ib := s.info(a), s.info(b)
	gap := ib.DataStart(s.cfg) - (ia.DataStart(s.cfg) + ia.DataFill)
	if gap < 0 {
		return false
	}
	m := s.dev.Model()
	return m.ReadTime(gap) <= m.Seek
}

// rangeSpan returns the device span covering the data sections of ids,
// validating that each consecutive pair is Adjacent. Panics on a
// non-contiguous range — the restore planner only ever coalesces adjacent
// fetches, so a violation is a logic bug, never valid input.
func (s *Store) rangeSpan(ids []uint32) (off, n int64) {
	if len(ids) == 0 {
		panic("container: empty container range")
	}
	for i := 1; i < len(ids); i++ {
		if !s.Adjacent(ids[i-1], ids[i]) {
			panic(fmt.Sprintf("container: containers %d,%d not adjacent on device", ids[i-1], ids[i]))
		}
	}
	first, last := s.info(ids[0]), s.info(ids[len(ids)-1])
	off = first.DataStart(s.cfg)
	n = last.DataStart(s.cfg) + last.DataFill - off
	return off, n
}

// RangeSpan returns the device offset and length of the sequential extent
// covering the data sections of ids (exposed for the restore pipeline's
// timing model and tests). ids must be pairwise Adjacent in order.
func (s *Store) RangeSpan(ids []uint32) (off, n int64) { return s.rangeSpan(ids) }

// fetchDataRange pulls several containers' data sections, consulting the
// shared data cache when one is attached.
func (s *Store) fetchDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	out, release, err := s.fetchDataRangePinned(ctx, ids)
	if release != nil {
		release()
	}
	return out, err
}

// fetchDataRangePinned is fetchDataRange under one combined cache pin: when
// any container of the extent is missing, the whole extent is loaded with a
// single backend range read (the same one physical operation the uncached
// path issues), while containers another stream is already loading are
// waited on rather than re-read.
func (s *Store) fetchDataRangePinned(ctx context.Context, ids []uint32) ([][]byte, func(), error) {
	c := s.DataCache()
	if c == nil || !s.StoresData() {
		out, err := s.fetchDataRangeDirect(ctx, ids)
		return out, func() {}, err
	}
	return c.AcquireRange(ctx, ids, func() ([][]byte, error) { return s.fetchDataRangeDirect(ctx, ids) })
}

// fetchDataRangeDirect pulls several containers' data sections from the
// backend with per-container length validation.
func (s *Store) fetchDataRangeDirect(ctx context.Context, ids []uint32) ([][]byte, error) {
	for _, id := range ids {
		if err := s.awaitSeal(ctx, id); err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	out, err := s.be.ReadDataRange(ctx, ids)
	stageContainerRead.Observe(t0)
	if err != nil {
		return nil, err
	}
	if len(out) != len(ids) {
		return nil, fmt.Errorf("container: backend returned %d sections for %d containers", len(out), len(ids))
	}
	for i, id := range ids {
		if want := s.info(id).DataFill; int64(len(out[i])) != want {
			return nil, blockstore.Corruptf("container %d torn: data section %d bytes, expected %d",
				id, len(out[i]), want)
		}
	}
	return out, nil
}

// ReadDataRange reads the data sections of the given on-disk-adjacent
// containers as one sequential extent — one seek plus a single combined
// transfer — and returns each container's data section in order. A single
// id degenerates to exactly ReadData.
func (s *Store) ReadDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	out, release, err := s.ReadDataRangePinned(ctx, ids)
	if release != nil {
		release()
	}
	return out, err
}

// ReadDataRangePinned is ReadDataRange returning a pin on the shared data
// cache: the fetched containers stay unevictable until the caller invokes
// release (never nil on success), so a restore's prefetch window cannot be
// torn out by concurrent streams. Simulated time is charged identically to
// ReadDataRange whether the bytes came from the cache or the backend.
func (s *Store) ReadDataRangePinned(ctx context.Context, ids []uint32) ([][]byte, func(), error) {
	if len(ids) == 1 {
		info := s.info(ids[0])
		s.dev.AccountRead(info.DataStart(s.cfg), info.DataFill)
		telDataReads.Inc()
		data, release, err := s.fetchDataPinned(ctx, ids[0])
		if err != nil {
			return nil, nil, err
		}
		return [][]byte{data}, release, nil
	}
	off, n := s.rangeSpan(ids)
	s.dev.AccountRead(off, n)
	telDataReads.Add(int64(len(ids)))
	telRangedReads.Inc()
	return s.fetchDataRangePinned(ctx, ids)
}

// PeekDataRange materializes the same per-container data sections as
// ReadDataRange without charging any disk time. The parallel restore
// pipeline charges its extent reads deterministically through
// AccountDataRange on per-lane clocks and fetches the bytes here.
func (s *Store) PeekDataRange(ctx context.Context, ids []uint32) ([][]byte, error) {
	out, release, err := s.PeekDataRangePinned(ctx, ids)
	if release != nil {
		release()
	}
	return out, err
}

// PeekDataRangePinned is PeekDataRange returning a shared-cache pin (see
// ReadDataRangePinned).
func (s *Store) PeekDataRangePinned(ctx context.Context, ids []uint32) ([][]byte, func(), error) {
	if len(ids) > 1 {
		s.rangeSpan(ids) // assert adjacency exactly like the charged path
	}
	return s.fetchDataRangePinned(ctx, ids)
}

// AccountDataRange charges the sequential extent read of ids to clk's view
// of the store device (nil clk charges the store's own clock) without
// materializing data. One call is one discontiguous access: seek (if the
// head moved) plus the combined span transfer.
func (s *Store) AccountDataRange(ids []uint32, clk *disk.Clock) {
	off, n := s.rangeSpan(ids)
	s.dev.View(clk).AccountRead(off, n)
	telDataReads.Add(int64(len(ids)))
	if len(ids) > 1 {
		telRangedReads.Inc()
	}
}

// ReadChunk reads one chunk at loc, charging one disk access of the chunk's
// size. Used by chunk-at-a-time restore (the un-cached baseline).
func (s *Store) ReadChunk(ctx context.Context, loc chunk.Location) ([]byte, error) {
	s.dev.AccountRead(loc.Offset, int64(loc.Size))
	data, err := s.fetchData(ctx, loc.Container)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), s.Extract(data, loc)...), nil
}

// Extract returns chunk data for loc out of a data-section buffer obtained
// from ReadData of loc.Container.
func (s *Store) Extract(data []byte, loc chunk.Location) []byte {
	info := s.info(loc.Container)
	rel := loc.Offset - info.DataStart(s.cfg)
	if rel < 0 || rel+int64(loc.Size) > int64(len(data)) {
		panic(fmt.Sprintf("container: location %v outside container %d data", loc, loc.Container))
	}
	return data[rel : rel+int64(loc.Size)]
}

// info returns the directory entry of a sealed container; the returned
// pointer references immutable post-seal state.
func (s *Store) info(id uint32) *Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.sealed) || !s.sealedOK[id] {
		panic(fmt.Sprintf("container: id %d not sealed (have %d)", id, s.nSealed))
	}
	return &s.sealed[id]
}

// Sealed reports whether container id has been sealed.
func (s *Store) Sealed(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(id) < len(s.sealedOK) && s.sealedOK[id]
}

// MarkDead records that n bytes in container id are superseded (a rewritten
// chunk's old copy). Utilization reporting uses this.
func (s *Store) MarkDead(id uint32, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) < len(s.liveBytes) && s.sealedOK[id] {
		s.liveBytes[id] -= n
		if s.liveBytes[id] < 0 {
			s.liveBytes[id] = 0
		}
		if n > 0 {
			telDeadBytes.Add(n)
		}
	}
}

// LiveBytes returns the data bytes of container id not yet superseded
// (checker/maintenance bookkeeping; 0 for unsealed holes).
func (s *Store) LiveBytes(id uint32) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.sealed) || !s.sealedOK[id] {
		return 0
	}
	return s.liveBytes[id]
}

// LiveFraction returns the live fraction of container id's data section —
// the per-container utilization the maintenance policies select victims by.
// Empty or unsealed containers report 1 (nothing reclaimable).
func (s *Store) LiveFraction(id uint32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.sealed) || !s.sealedOK[id] || s.sealed[id].DataFill == 0 {
		return 1
	}
	return float64(s.liveBytes[id]) / float64(s.sealed[id].DataFill)
}

// DeadBytes returns the total superseded bytes across sealed containers —
// the reclaimable garbage a compaction pass would free.
func (s *Store) DeadBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dead int64
	for i := range s.sealed {
		if s.sealedOK[i] {
			dead += s.sealed[i].DataFill - s.liveBytes[i]
		}
	}
	return dead
}

// Utilization returns the fraction of stored data bytes still live across
// all sealed containers (1.0 when nothing was superseded).
func (s *Store) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var live, total int64
	for i := range s.sealed {
		if !s.sealedOK[i] {
			continue
		}
		live += s.liveBytes[i]
		total += s.sealed[i].DataFill
	}
	if total == 0 {
		return 1
	}
	return float64(live) / float64(total)
}

// StoredBytes returns the total data bytes across sealed containers
// (physical, post-dedup storage consumption, excluding metadata).
func (s *Store) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for i := range s.sealed {
		if s.sealedOK[i] {
			n += s.sealed[i].DataFill
		}
	}
	return n
}
