// Package container implements the stream-informed container log that backs
// every dedup engine in this repository (the layout DDFS calls "stream
// informed segment layout"): new unique chunks are buffered into a
// fixed-capacity open container and flushed to the simulated disk
// sequentially, so chunks that arrive together are stored together.
//
// On-disk layout of one container:
//
//	[ metadata section: MetaCap bytes ][ data section: <= DataCap bytes ]
//
// The metadata section (chunk fingerprints, sizes, segment IDs) is what
// DDFS's locality-preserved cache prefetches: one seek pulls in descriptors
// for every chunk that was written near a duplicate, which is exactly the
// spatial locality the paper studies.
//
// The store is the sole writer of its device, so chunk offsets are assigned
// at write time (container start is known when the container opens) and the
// deferred flush lands exactly there.
package container

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/disk"
	"repro/internal/telemetry"
)

// Live telemetry of container-log activity across all stores in the
// process. Meta reads are LPC prefetches (ingest path); data reads are
// restore/compaction container fetches.
var (
	telSealed = telemetry.NewCounter("container_sealed_total",
		"containers sealed (flushed to the simulated device)")
	telWrittenBytes = telemetry.NewCounter("container_written_bytes_total",
		"chunk data bytes written into containers")
	telMetaReads = telemetry.NewCounter("container_meta_reads_total",
		"container metadata-section reads (locality-preserved cache prefetches)")
	telDataReads = telemetry.NewCounter("container_data_reads_total",
		"container data-section reads (restore and compaction fetches)")
	telDeadBytes = telemetry.NewCounter("container_dead_bytes_total",
		"bytes superseded inside sealed containers (garbage left by rewrites)")
)

// Config sizes the container geometry.
type Config struct {
	DataCap   int64 // data section capacity in bytes (default 4 MiB)
	MaxChunks int   // maximum chunks per container (bounds the metadata section)
}

// DefaultConfig returns the DDFS-style geometry: 4 MiB containers.
func DefaultConfig() Config {
	return Config{DataCap: 4 << 20, MaxChunks: 2048}
}

// metaEntrySize is the on-disk size of one metadata entry:
// fingerprint (32) + size (4) + segment id (8) = 44 bytes.
const metaEntrySize = 44

// MetaCap returns the on-disk size of the metadata section.
func (c Config) MetaCap() int64 { return int64(c.MaxChunks) * metaEntrySize }

func (c Config) validate() error {
	if c.DataCap <= 0 || c.MaxChunks <= 0 {
		return fmt.Errorf("container: non-positive geometry %+v", c)
	}
	return nil
}

// Meta describes one chunk stored in a container. It is what a metadata
// read returns (and what the locality-preserved cache holds).
type Meta struct {
	FP      chunk.Fingerprint
	Size    uint32
	Segment uint64 // on-disk segment the chunk was written as part of
	Offset  int64  // absolute device offset of the chunk data
}

// Info is the shadow directory entry for one sealed container.
type Info struct {
	ID       uint32
	Start    int64 // device offset of the metadata section
	DataFill int64 // bytes of chunk data in the data section
	Entries  []Meta
}

// DataStart returns the device offset of the container's data section.
func (i *Info) DataStart(cfg Config) int64 { return i.Start + cfg.MetaCap() }

// Store is the container log over one simulated device.
type Store struct {
	cfg Config
	dev *disk.Device

	// open container state
	openID    uint32
	openStart int64
	openFill  int64
	openMeta  []Meta
	openData  []byte // buffered only when the device stores data
	hasOpen   bool

	sealed []Info // shadow directory of flushed containers, indexed by ID

	// liveBytes tracks, per container, the bytes still referenced by the
	// newest index mappings; the DeFrag rewrite path decrements it to report
	// container utilization (garbage from superseded copies).
	liveBytes []int64
}

// NewStore creates a container store writing to dev. The store must be the
// only writer of dev.
func NewStore(dev *disk.Device, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, dev: dev}, nil
}

// Config returns the store geometry.
func (s *Store) Config() Config { return s.cfg }

// Device returns the underlying device (read-only use by restore paths).
func (s *Store) Device() *disk.Device { return s.dev }

// NumContainers returns the count of sealed containers.
func (s *Store) NumContainers() int { return len(s.sealed) }

// open starts a new container at the current device frontier.
func (s *Store) open() {
	s.openID = uint32(len(s.sealed))
	s.openStart = s.dev.Size()
	s.openFill = 0
	s.openMeta = s.openMeta[:0]
	if s.dev.StoresData() {
		s.openData = s.openData[:0]
	}
	s.hasOpen = true
}

// Write appends one chunk to the open container (opening or sealing
// containers as needed) and returns its permanent location. segID tags the
// chunk with the on-disk segment it belongs to.
func (s *Store) Write(c chunk.Chunk, segID uint64) chunk.Location {
	if c.Size == 0 {
		panic("container: zero-size chunk")
	}
	if !s.hasOpen {
		s.open()
	}
	if s.openFill+int64(c.Size) > s.cfg.DataCap || len(s.openMeta) >= s.cfg.MaxChunks {
		s.Flush()
		s.open()
	}
	off := s.openStart + s.cfg.MetaCap() + s.openFill
	s.openMeta = append(s.openMeta, Meta{FP: c.FP, Size: c.Size, Segment: segID, Offset: off})
	if s.dev.StoresData() {
		if c.Data != nil {
			s.openData = append(s.openData, c.Data...)
		} else {
			s.openData = append(s.openData, make([]byte, c.Size)...)
		}
	}
	s.openFill += int64(c.Size)
	return chunk.Location{Container: s.openID, Segment: segID, Offset: off, Size: c.Size}
}

// Flush seals the open container, writing its metadata section and data
// section to the device. A store with no open container (or an empty one)
// flushes to nothing. Callers flush at end of stream; Write flushes
// automatically when a container fills.
func (s *Store) Flush() {
	if !s.hasOpen || len(s.openMeta) == 0 {
		s.hasOpen = false
		return
	}
	if got := s.dev.Size(); got != s.openStart {
		panic(fmt.Sprintf("container: device frontier %d moved past container start %d (foreign writer?)", got, s.openStart))
	}
	// Metadata section, padded to fixed capacity so data offsets hold.
	if s.dev.StoresData() {
		s.dev.Append(encodeMeta(s.openMeta, s.cfg.MetaCap()))
		s.dev.Append(s.openData)
	} else {
		s.dev.AppendHole(s.cfg.MetaCap())
		s.dev.AppendHole(s.openFill)
	}
	info := Info{
		ID:       s.openID,
		Start:    s.openStart,
		DataFill: s.openFill,
		Entries:  append([]Meta(nil), s.openMeta...),
	}
	s.sealed = append(s.sealed, info)
	s.liveBytes = append(s.liveBytes, s.openFill)
	s.hasOpen = false
	telSealed.Inc()
	telWrittenBytes.Add(info.DataFill)
}

// encodeMeta serializes entries into a MetaCap-sized section.
func encodeMeta(entries []Meta, capBytes int64) []byte {
	buf := make([]byte, capBytes)
	o := 0
	for _, e := range entries {
		copy(buf[o:], e.FP[:])
		o += 32
		buf[o] = byte(e.Size)
		buf[o+1] = byte(e.Size >> 8)
		buf[o+2] = byte(e.Size >> 16)
		buf[o+3] = byte(e.Size >> 24)
		o += 4
		for i := 0; i < 8; i++ {
			buf[o+i] = byte(e.Segment >> (8 * i))
		}
		o += 8
	}
	return buf
}

// ReadMeta performs a metadata-section read of container id: it charges one
// disk access of MetaCap bytes and returns the chunk descriptors. This is
// the operation behind DDFS's locality-preserved-cache prefetch.
func (s *Store) ReadMeta(id uint32) []Meta {
	info := s.info(id)
	s.dev.AccountRead(info.Start, s.cfg.MetaCap())
	telMetaReads.Inc()
	return info.Entries
}

// PeekMeta returns container metadata without charging any disk time. It is
// simulation bookkeeping (used by ground-truth oracles and tests), never by
// an engine's timed path.
func (s *Store) PeekMeta(id uint32) []Meta { return s.info(id).Entries }

// PeekData returns the container's data section without charging disk time
// (checker/diagnostic use). Zero-filled on hole devices.
func (s *Store) PeekData(id uint32) []byte {
	info := s.info(id)
	buf := make([]byte, info.DataFill)
	if s.dev.StoresData() {
		s.dev.PeekAt(buf, info.DataStart(s.cfg))
	}
	return buf
}

// ReadData reads the full data section of container id (the restore path's
// unit of caching), charging one disk access. It returns the raw data bytes
// when the device stores data, else a zero slice of the correct length.
func (s *Store) ReadData(id uint32) []byte {
	info := s.info(id)
	buf := make([]byte, info.DataFill)
	s.dev.ReadAt(buf, info.DataStart(s.cfg))
	telDataReads.Inc()
	return buf
}

// ReadChunk reads one chunk at loc, charging one disk access of the chunk's
// size. Used by chunk-at-a-time restore (the un-cached baseline).
func (s *Store) ReadChunk(loc chunk.Location) []byte {
	buf := make([]byte, loc.Size)
	s.dev.ReadAt(buf, loc.Offset)
	return buf
}

// Extract returns chunk data for loc out of a data-section buffer obtained
// from ReadData of loc.Container.
func (s *Store) Extract(data []byte, loc chunk.Location) []byte {
	info := s.info(loc.Container)
	rel := loc.Offset - info.DataStart(s.cfg)
	if rel < 0 || rel+int64(loc.Size) > int64(len(data)) {
		panic(fmt.Sprintf("container: location %v outside container %d data", loc, loc.Container))
	}
	return data[rel : rel+int64(loc.Size)]
}

func (s *Store) info(id uint32) *Info {
	if int(id) >= len(s.sealed) {
		panic(fmt.Sprintf("container: id %d not sealed (have %d)", id, len(s.sealed)))
	}
	return &s.sealed[id]
}

// Sealed reports whether container id has been sealed.
func (s *Store) Sealed(id uint32) bool { return int(id) < len(s.sealed) }

// MarkDead records that n bytes in container id are superseded (a rewritten
// chunk's old copy). Utilization reporting uses this.
func (s *Store) MarkDead(id uint32, n int64) {
	if int(id) < len(s.liveBytes) {
		s.liveBytes[id] -= n
		if s.liveBytes[id] < 0 {
			s.liveBytes[id] = 0
		}
		if n > 0 {
			telDeadBytes.Add(n)
		}
	}
}

// Utilization returns the fraction of stored data bytes still live across
// all sealed containers (1.0 when nothing was superseded).
func (s *Store) Utilization() float64 {
	var live, total int64
	for i := range s.sealed {
		live += s.liveBytes[i]
		total += s.sealed[i].DataFill
	}
	if total == 0 {
		return 1
	}
	return float64(live) / float64(total)
}

// StoredBytes returns the total data bytes across sealed containers
// (physical, post-dedup storage consumption, excluding metadata).
func (s *Store) StoredBytes() int64 {
	var n int64
	for i := range s.sealed {
		n += s.sealed[i].DataFill
	}
	return n
}
