package container

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chunk"
	"repro/internal/disk"
)

func newTestStore(t *testing.T, storeData bool, cfg Config) (*Store, *disk.Clock) {
	t.Helper()
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, storeData)
	s, err := NewStore(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, &clk
}

func smallConfig() Config { return Config{DataCap: 1024, MaxChunks: 8} }

func TestNewStoreRejectsBadConfig(t *testing.T) {
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, false)
	for _, cfg := range []Config{{}, {DataCap: 1}, {MaxChunks: 1}} {
		if _, err := NewStore(dev, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, _ := newTestStore(t, true, DefaultConfig())
	data := []byte("some chunk content")
	loc := mustWrite(s, chunk.New(data), 1)
	s.Flush(context.Background())
	got, err := s.ReadChunk(context.Background(), loc)
	if err != nil {
		t.Fatalf("ReadChunk: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestZeroSizeChunkPanics(t *testing.T) {
	s, _ := newTestStore(t, false, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	mustWrite(s, chunk.Chunk{}, 0)
}

func TestAutoSealOnDataCap(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	// 1024-byte cap: three 400-byte chunks force a seal after two.
	for i := 0; i < 3; i++ {
		mustWrite(s, chunk.Meta(chunk.Of([]byte{byte(i)}), 400), 0)
	}
	if s.NumContainers() != 1 {
		t.Fatalf("NumContainers = %d, want 1 sealed", s.NumContainers())
	}
	s.Flush(context.Background())
	if s.NumContainers() != 2 {
		t.Fatalf("after flush NumContainers = %d, want 2", s.NumContainers())
	}
}

func TestAutoSealOnMaxChunks(t *testing.T) {
	s, _ := newTestStore(t, false, Config{DataCap: 1 << 30, MaxChunks: 4})
	for i := 0; i < 9; i++ {
		mustWrite(s, chunk.Meta(chunk.Of([]byte{byte(i)}), 10), 0)
	}
	s.Flush(context.Background())
	if s.NumContainers() != 3 {
		t.Fatalf("NumContainers = %d, want 3 (4+4+1 chunks)", s.NumContainers())
	}
}

func TestLocationsMatchFlushedLayout(t *testing.T) {
	s, _ := newTestStore(t, true, smallConfig())
	var locs []chunk.Location
	var datas [][]byte
	for i := 0; i < 20; i++ {
		d := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		locs = append(locs, mustWrite(s, chunk.New(d), uint64(i)))
		datas = append(datas, d)
	}
	s.Flush(context.Background())
	for i, loc := range locs {
		got, err := s.ReadChunk(context.Background(), loc)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, datas[i]) {
			t.Fatalf("chunk %d: read %q, want %q", i, got, datas[i])
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	fp := chunk.Of([]byte("x"))
	loc := mustWrite(s, chunk.Meta(fp, 123), 77)
	s.Flush(context.Background())
	entries := s.ReadMeta(loc.Container)
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.FP != fp || e.Size != 123 || e.Segment != 77 || e.Offset != loc.Offset {
		t.Fatalf("meta entry %+v does not match location %v", e, loc)
	}
}

func TestReadMetaChargesDisk(t *testing.T) {
	s, clk := newTestStore(t, false, smallConfig())
	loc := mustWrite(s, chunk.Meta(chunk.Of([]byte("x")), 10), 0)
	s.Flush(context.Background())
	before := clk.Now()
	s.ReadMeta(loc.Container)
	if clk.Now() <= before {
		t.Fatal("ReadMeta must charge disk time")
	}
	before = clk.Now()
	s.PeekMeta(loc.Container)
	if clk.Now() != before {
		t.Fatal("PeekMeta must be free")
	}
}

func TestReadDataAndExtract(t *testing.T) {
	s, _ := newTestStore(t, true, smallConfig())
	d1, d2 := []byte("first-chunk"), []byte("second-chunk")
	l1 := mustWrite(s, chunk.New(d1), 0)
	l2 := mustWrite(s, chunk.New(d2), 0)
	s.Flush(context.Background())
	data := mustReadData(s, l1.Container)
	if int64(len(data)) != int64(len(d1)+len(d2)) {
		t.Fatalf("data section length = %d", len(data))
	}
	if !bytes.Equal(s.Extract(data, l1), d1) || !bytes.Equal(s.Extract(data, l2), d2) {
		t.Fatal("Extract mismatch")
	}
}

func TestExtractOutOfRangePanics(t *testing.T) {
	s, _ := newTestStore(t, true, smallConfig())
	l := mustWrite(s, chunk.New([]byte("abc")), 0)
	s.Flush(context.Background())
	data := mustReadData(s, l.Container)
	bad := l
	bad.Offset += 1000
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Extract(data, bad)
}

func TestInfoUnsealedPanics(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.ReadMeta(0)
}

func TestSealed(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	if s.Sealed(0) {
		t.Fatal("nothing sealed yet")
	}
	mustWrite(s, chunk.Meta(chunk.Of([]byte("x")), 10), 0)
	if s.Sealed(0) {
		t.Fatal("open container is not sealed")
	}
	s.Flush(context.Background())
	if !s.Sealed(0) {
		t.Fatal("container 0 should be sealed")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	s, clk := newTestStore(t, false, smallConfig())
	s.Flush(context.Background())
	s.Flush(context.Background())
	if s.NumContainers() != 0 || clk.Now() != 0 {
		t.Fatal("empty flush must write nothing")
	}
}

func TestUtilizationAndMarkDead(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	mustWrite(s, chunk.Meta(chunk.Of([]byte("a")), 100), 0)
	mustWrite(s, chunk.Meta(chunk.Of([]byte("b")), 100), 0)
	s.Flush(context.Background())
	if u := s.Utilization(); u != 1.0 {
		t.Fatalf("fresh utilization = %v", u)
	}
	s.MarkDead(0, 100)
	if u := s.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	s.MarkDead(0, 1000) // clamps at zero
	if u := s.Utilization(); u != 0 {
		t.Fatalf("utilization = %v, want 0", u)
	}
	if s.StoredBytes() != 200 {
		t.Fatalf("StoredBytes = %d", s.StoredBytes())
	}
}

func TestUtilizationEmptyStore(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	if s.Utilization() != 1 {
		t.Fatal("empty store utilization must be 1")
	}
}

func TestSequentialFlushIsMostlySeekFree(t *testing.T) {
	s, _ := newTestStore(t, false, DefaultConfig())
	for i := 0; i < 5000; i++ {
		mustWrite(s, chunk.Meta(chunk.Of([]byte{byte(i), byte(i >> 8)}), 8192), 0)
	}
	s.Flush(context.Background())
	if seeks := s.Device().Stats().Seeks; seeks > 1 {
		t.Fatalf("pure sequential ingest should need 1 seek, got %d", seeks)
	}
}

// Property: for any sequence of chunk sizes, every returned location is
// within its container's data section, locations never overlap, and offsets
// are strictly increasing.
func TestLocationDisjointnessProperty(t *testing.T) {
	cfg := Config{DataCap: 4096, MaxChunks: 16}
	s, _ := newTestStore(t, false, cfg)
	var lastEnd int64 = -1
	i := 0
	fn := func(szRaw uint16) bool {
		sz := uint32(szRaw%2000) + 1
		i++
		loc := mustWrite(s, chunk.Meta(chunk.Of([]byte(fmt.Sprint(i))), sz), uint64(i))
		if loc.Offset <= lastEnd-1 {
			return false
		}
		lastEnd = loc.Offset + int64(loc.Size)
		return loc.Size == sz
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	s.Flush(context.Background())
	// All sealed entries round-trip through shadow metadata.
	total := 0
	for id := 0; id < s.NumContainers(); id++ {
		for _, e := range s.PeekMeta(uint32(id)) {
			total++
			if e.Size == 0 {
				t.Fatal("zero size entry")
			}
		}
	}
	if total != i {
		t.Fatalf("entries %d != writes %d", total, i)
	}
}

// Property: with a data-storing device, arbitrary chunk contents round-trip
// bit-exactly through seal + ReadData/Extract.
func TestDataIntegrityProperty(t *testing.T) {
	s, _ := newTestStore(t, true, Config{DataCap: 8192, MaxChunks: 32})
	type written struct {
		loc  chunk.Location
		data []byte
	}
	var all []written
	fn := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 4000 {
			data = data[:4000]
		}
		cp := append([]byte(nil), data...)
		all = append(all, written{mustWrite(s, chunk.New(cp), 0), cp})
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	s.Flush(context.Background())
	for k, w := range all {
		got, err := s.ReadChunk(context.Background(), w.loc)
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
		if !bytes.Equal(got, w.data) {
			t.Fatalf("chunk %d mismatch", k)
		}
	}
}

// fillContainers seals n containers of two chunks each and returns their ids.
func fillContainers(t *testing.T, s *Store, n int) []uint32 {
	t.Helper()
	seen := map[uint32]bool{}
	var ids []uint32
	for i := 0; len(ids) < n; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 400)
		loc := mustWrite(s, chunk.New(data), uint64(i))
		if !seen[loc.Container] {
			seen[loc.Container] = true
			ids = append(ids, loc.Container)
		}
	}
	s.Flush(context.Background())
	return ids[:n]
}

func TestAdjacentFrontierContainers(t *testing.T) {
	s, _ := newTestStore(t, false, smallConfig())
	ids := fillContainers(t, s, 3)
	// Serial frontier-mode containers are separated only by the next
	// container's metadata section — far cheaper to stream over than a seek.
	if !s.Adjacent(ids[0], ids[1]) || !s.Adjacent(ids[1], ids[2]) {
		t.Fatal("consecutive frontier containers must be adjacent")
	}
	if s.Adjacent(ids[1], ids[0]) {
		t.Fatal("adjacency is forward-only")
	}
	// Under the default model even a whole skipped small container streams
	// over more cheaply than a 4 ms seek — the predicate is cost-based, not
	// ID-based.
	if !s.Adjacent(ids[0], ids[2]) {
		t.Fatal("a ~1.5 KB gap must beat a 4 ms seek under the default model")
	}
}

// adjacencyStore builds a store whose model makes the adjacency predicate
// bite: the break-even gap (Seek × ReadBW = 800 bytes) admits the ~350-byte
// metadata section between consecutive containers but rejects spans that
// skip a whole container.
func adjacencyStore(t *testing.T) *Store {
	t.Helper()
	var clk disk.Clock
	m := disk.Model{Seek: 8 * time.Microsecond, ReadBW: 100e6, WriteBW: 100e6}
	s, err := NewStore(disk.NewDevice(m, &clk, false), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdjacentRejectsUneconomicGap(t *testing.T) {
	s := adjacencyStore(t)
	ids := fillContainers(t, s, 3)
	if !s.Adjacent(ids[0], ids[1]) {
		t.Fatal("metadata-sized gap must still be adjacent")
	}
	if s.Adjacent(ids[0], ids[2]) {
		t.Fatal("a gap costing more than one seek must not be adjacent")
	}
}

func TestRangeSpanAndReadDataRange(t *testing.T) {
	s, _ := newTestStore(t, true, smallConfig())
	ids := fillContainers(t, s, 3)
	pair := ids[:2]

	off, n := s.RangeSpan(pair)
	if off <= 0 || n <= 0 {
		t.Fatalf("span = (%d, %d)", off, n)
	}

	before := s.Device().Stats()
	got := mustReadDataRange(s, pair)
	after := s.Device().Stats()
	if after.Reads != before.Reads+1 || after.Seeks > before.Seeks+1 {
		t.Fatalf("coalesced read must be one device access: %v -> %v", before, after)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 data sections, got %d", len(got))
	}
	for i, id := range pair {
		if !bytes.Equal(got[i], mustPeekData(s, id)) {
			t.Fatalf("container %d data section differs via ranged read", id)
		}
	}
}

func TestReadDataRangeSingleDelegates(t *testing.T) {
	s1, clk1 := newTestStore(t, true, smallConfig())
	s2, clk2 := newTestStore(t, true, smallConfig())
	ids1 := fillContainers(t, s1, 2)
	ids2 := fillContainers(t, s2, 2)

	a := mustReadData(s1, ids1[0])
	b := mustReadDataRange(s2, []uint32{ids2[0]})[0]
	if !bytes.Equal(a, b) {
		t.Fatal("single-id ranged read must equal ReadData")
	}
	if clk1.Now() != clk2.Now() {
		t.Fatalf("single-id ranged read must charge identically: %v vs %v", clk1.Now(), clk2.Now())
	}
	if s1.Device().Stats() != s2.Device().Stats() {
		t.Fatal("single-id ranged read must account identically")
	}
}

func TestAccountAndPeekDataRangeMatchReadDataRange(t *testing.T) {
	s1, clk1 := newTestStore(t, true, smallConfig())
	s2, clk2 := newTestStore(t, true, smallConfig())
	ids1 := fillContainers(t, s1, 3)
	ids2 := fillContainers(t, s2, 3)

	datas := mustReadDataRange(s1, ids1)
	s2.AccountDataRange(ids2, nil)
	peeked, err := s2.PeekDataRange(context.Background(), ids2)
	if err != nil {
		t.Fatalf("PeekDataRange: %v", err)
	}
	if clk1.Now() != clk2.Now() {
		t.Fatalf("Account+Peek must charge like ReadDataRange: %v vs %v", clk1.Now(), clk2.Now())
	}
	for i := range datas {
		if !bytes.Equal(datas[i], peeked[i]) {
			t.Fatalf("container %d bytes differ between read and peek paths", ids1[i])
		}
	}
}

func TestRangeSpanRejectsNonAdjacent(t *testing.T) {
	s := adjacencyStore(t)
	ids := fillContainers(t, s, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("non-adjacent range must panic")
		}
	}()
	s.RangeSpan([]uint32{ids[0], ids[2]})
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}

// mustReadData, mustPeekData and mustReadDataRange mirror mustWrite: the
// in-memory backends cannot fail, so errors are test bugs.
func mustReadData(s *Store, id uint32) []byte {
	data, err := s.ReadData(context.Background(), id)
	if err != nil {
		panic(err)
	}
	return data
}

func mustPeekData(s *Store, id uint32) []byte {
	data, err := s.PeekData(context.Background(), id)
	if err != nil {
		panic(err)
	}
	return data
}

func mustReadDataRange(s *Store, ids []uint32) [][]byte {
	datas, err := s.ReadDataRange(context.Background(), ids)
	if err != nil {
		panic(err)
	}
	return datas
}
