package container

import (
	"context"
	"errors"
	"math"
	"sync"

	"repro/internal/lru"
	"repro/internal/telemetry"
)

// errLoadPanic is what single-flight waiters (and future acquirers, until a
// retry succeeds) observe when a loader panicked instead of returning: the
// wedged entry is dropped and failed rather than left forever un-ready.
var errLoadPanic = errors.New("container: data cache load panicked")

// Telemetry of the shared sealed-container data cache. These are distinct
// from the per-restore cache counters (restore_cache_*): the shared cache
// sits below every restore stream of one store, so its hit rate is what
// decides how often N concurrent restores of sibling generations touch the
// physical backend at all.
var (
	telSharedHits = telemetry.NewCounter("restore_shared_cache_hits_total",
		"shared container data cache hits (container bytes served without a backend read)")
	telSharedMisses = telemetry.NewCounter("restore_shared_cache_misses_total",
		"shared container data cache misses (backend reads issued)")
	telSharedEvictions = telemetry.NewCounter("restore_shared_cache_evictions_total",
		"containers evicted from the shared data cache to stay under the byte budget")
	telSharedWaits = telemetry.NewCounter("restore_shared_cache_waits_total",
		"single-flight waits: acquisitions that blocked on another stream's in-flight load of the same container")
	telSharedBytes = telemetry.NewGauge("restore_shared_cache_bytes",
		"resident bytes in the shared container data cache")
)

// DataCache is a byte-budgeted, single-flight, ref-counted cache of sealed
// container data sections, shared by every reader of one Store. It exists
// for the dedupd multi-tenant restore case: sibling generations of one
// tenant share most of their containers, so N concurrent restores hitting
// the same hot container should cost one backend read, not N.
//
//   - single-flight: concurrent acquisitions of a loading container block on
//     the loader's completion instead of issuing duplicate backend reads;
//   - ref-counted: acquired entries are pinned (unevictable) until every
//     holder releases them, so the budget can never tear bytes out from
//     under an active restore's prefetch window;
//   - byte-budgeted: unpinned entries are evicted in LRU order whenever
//     resident bytes exceed the budget. Pinned bytes may transiently exceed
//     it — the budget bounds retention, not concurrency.
//
// The cache holds bytes only. Simulated-clock charges (Eq. 1 seeks and
// transfers) are accounted by Store.ReadData*/AccountDataRange before the
// bytes are ever consulted, so attaching, resizing, or dropping a DataCache
// never changes any simulated timing — pinned by
// TestDataCacheDoesNotChangeSimulatedTime.
type DataCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	live   map[uint32]*dcEntry
	idle   *lru.Cache[uint32, *dcEntry] // refs==0 entries, in recency order

	hits, misses, evictions, waits uint64
}

// dcEntry is one container's residency. ready is closed when the load
// completes (data or err set, never both); refs counts pins — the loader,
// waiters, and outstanding release handles.
type dcEntry struct {
	data  []byte
	err   error
	ready chan struct{}
	refs  int
	gone  bool // removed from live (failed load or eviction race)
}

// NewDataCache creates a cache retaining at most budgetBytes of container
// data. Panics if budgetBytes <= 0 (a zero budget means "no cache" and is
// handled by the caller keeping a nil *DataCache).
func NewDataCache(budgetBytes int64) *DataCache {
	if budgetBytes <= 0 {
		panic("container: non-positive data cache budget")
	}
	return &DataCache{
		budget: budgetBytes,
		live:   make(map[uint32]*dcEntry),
		idle:   lru.New[uint32, *dcEntry](math.MaxInt32),
	}
}

// Budget returns the configured byte budget.
func (c *DataCache) Budget() int64 { return c.budget }

// DataCacheStats is a point-in-time snapshot of cache behaviour.
type DataCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Waits counts single-flight waits: acquisitions that found the
	// container already loading and blocked instead of re-reading it.
	Waits  uint64 `json:"waits"`
	Bytes  int64  `json:"bytes"`
	Budget int64  `json:"budget"`
	// Entries is current residency; Pinned of those are held (refs > 0) by
	// in-flight acquisitions or prefetch windows and cannot be evicted. A
	// Pinned count that never returns to zero between restores is a pin
	// leak.
	Entries int `json:"entries"`
	Pinned  int `json:"pinned"`
}

// Stats returns cumulative counters and current residency.
func (c *DataCache) Stats() DataCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	pinned := 0
	for _, e := range c.live {
		if e.refs > 0 {
			pinned++
		}
	}
	return DataCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Waits: c.waits,
		Bytes: c.bytes, Budget: c.budget, Entries: len(c.live), Pinned: pinned,
	}
}

// Acquire returns container id's data section, loading it via load exactly
// once across concurrent callers. The returned release must be called when
// the bytes are no longer needed for prefetch-window pinning; the slice
// itself stays valid after release (readers must treat it as immutable).
// A load error is returned to every waiter and the entry is dropped, so the
// next acquisition retries.
func (c *DataCache) Acquire(ctx context.Context, id uint32, load func() ([]byte, error)) ([]byte, func(), error) {
	c.mu.Lock()
	if e, ok := c.live[id]; ok {
		c.pinLocked(id, e)
		c.mu.Unlock()
		return c.await(ctx, id, e)
	}
	e := &dcEntry{ready: make(chan struct{}), refs: 1}
	c.live[id] = e
	c.misses++
	telSharedMisses.Inc()
	c.mu.Unlock()

	// If load panics, fail the entry on the way out so waiters and future
	// acquirers get an error instead of blocking forever on a channel the
	// dead loader will never close; the panic itself still propagates.
	loadReturned := false
	defer func() {
		if loadReturned {
			return
		}
		c.mu.Lock()
		e.err = errLoadPanic
		e.gone = true
		delete(c.live, id)
		close(e.ready)
		c.mu.Unlock()
	}()
	data, err := load()
	loadReturned = true
	c.mu.Lock()
	if err != nil {
		e.err = err
		e.gone = true
		delete(c.live, id)
		close(e.ready)
		c.mu.Unlock()
		return nil, nil, err
	}
	e.data = data
	c.bytes += int64(len(data))
	close(e.ready)
	c.evictLocked()
	telSharedBytes.Set(float64(c.bytes))
	c.mu.Unlock()
	return data, func() { c.release(id, e) }, nil
}

// AcquireRange returns the data sections of ids (which the caller has
// validated as one on-disk-adjacent extent) under one combined pin. Missing
// containers are loaded with a single load call covering the whole extent —
// one backend range read, exactly as the uncached path — while containers
// another stream is already loading are waited on, never re-read: two
// streams racing over the same extent cost one physical read.
func (c *DataCache) AcquireRange(ctx context.Context, ids []uint32, load func() ([][]byte, error)) ([][]byte, func(), error) {
	type slot struct {
		e     *dcEntry
		owned bool // this call is responsible for loading it
	}
	slots := make([]slot, len(ids))
	var nOwned int
	c.mu.Lock()
	for i, id := range ids {
		if e, ok := c.live[id]; ok {
			c.pinLocked(id, e)
			slots[i] = slot{e: e}
			continue
		}
		e := &dcEntry{ready: make(chan struct{}), refs: 1}
		c.live[id] = e
		c.misses++
		telSharedMisses.Inc()
		slots[i] = slot{e: e, owned: true}
		nOwned++
	}
	c.mu.Unlock()

	release := func() {
		for i := range slots {
			c.release(ids[i], slots[i].e)
		}
	}
	fail := func(err error) ([][]byte, func(), error) {
		release()
		return nil, nil, err
	}

	// As in Acquire: a panicking load must not leave the owned entries
	// forever un-ready — fail and drop them during unwinding, then let the
	// panic propagate.
	loadReturned := nOwned == 0
	defer func() {
		if loadReturned {
			return
		}
		c.mu.Lock()
		for i := range slots {
			if !slots[i].owned {
				continue
			}
			e := slots[i].e
			e.err = errLoadPanic
			e.gone = true
			delete(c.live, ids[i])
			close(e.ready)
		}
		c.mu.Unlock()
	}()

	if nOwned > 0 {
		// The extent read fetches every id (a strict subset of an adjacent
		// run need not itself be adjacent); only the owned slots install.
		datas, err := load()
		loadReturned = true
		c.mu.Lock()
		for i := range slots {
			if !slots[i].owned {
				continue
			}
			e := slots[i].e
			if err != nil {
				e.err = err
				e.gone = true
				delete(c.live, ids[i])
			} else {
				e.data = datas[i]
				c.bytes += int64(len(datas[i]))
			}
			close(e.ready)
		}
		if err == nil {
			c.evictLocked()
			telSharedBytes.Set(float64(c.bytes))
		}
		c.mu.Unlock()
		if err != nil {
			return fail(err)
		}
	}

	out := make([][]byte, len(ids))
	for i := range slots {
		e := slots[i].e
		if !slots[i].owned {
			// Prefer ready: if the load already completed, deliver the data
			// even under a cancelled ctx rather than letting the two-way
			// select fail spuriously at random.
			select {
			case <-e.ready:
			default:
				select {
				case <-e.ready:
				case <-ctx.Done():
					return fail(ctx.Err())
				}
			}
			if e.err != nil {
				return fail(e.err)
			}
		}
		out[i] = e.data
	}
	return out, release, nil
}

// pinLocked increments an existing entry's refcount, pulling it off the idle
// list if this is the first pin, and counts the access. Caller holds mu.
func (c *DataCache) pinLocked(id uint32, e *dcEntry) {
	if e.refs == 0 {
		c.idle.Remove(id)
	}
	e.refs++
	select {
	case <-e.ready:
		c.hits++
		telSharedHits.Inc()
	default:
		c.waits++
		telSharedWaits.Inc()
	}
}

// await blocks until a pinned entry's load completes, surfacing load errors
// and honouring ctx cancellation. Readiness is checked first so an already
// loaded entry is delivered even when ctx is also done — a two-way select
// picks randomly between ready cases and would fail spuriously.
func (c *DataCache) await(ctx context.Context, id uint32, e *dcEntry) ([]byte, func(), error) {
	select {
	case <-e.ready:
	default:
		select {
		case <-e.ready:
		case <-ctx.Done():
			c.release(id, e)
			return nil, nil, ctx.Err()
		}
	}
	if e.err != nil {
		c.release(id, e)
		return nil, nil, e.err
	}
	return e.data, func() { c.release(id, e) }, nil
}

// Invalidate discards container id's residency, if any. A pinned entry is
// marked gone instead of freed: holders keep their (immutable) bytes and
// the final release discards the entry rather than re-idling it. The store
// calls this when a container is dropped or quarantined, so the cache never
// serves bytes for an id the directory no longer seals. A still-loading
// entry is left alone — its load will fail against the vanished container
// and the error path already drops it.
func (c *DataCache) Invalidate(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.live[id]
	if !ok {
		return
	}
	select {
	case <-e.ready:
	default:
		return
	}
	if e.refs == 0 {
		c.idle.Remove(id)
	}
	e.gone = true
	delete(c.live, id)
	c.bytes -= int64(len(e.data))
	telSharedBytes.Set(float64(c.bytes))
}

// release drops one pin; the last release makes the entry evictable.
func (c *DataCache) release(id uint32, e *dcEntry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && !e.gone && e.err == nil {
		c.idle.Put(id, e)
		c.evictLocked()
		telSharedBytes.Set(float64(c.bytes))
	}
	c.mu.Unlock()
}

// evictLocked pops idle entries in LRU order until resident bytes fit the
// budget. Caller holds mu.
func (c *DataCache) evictLocked() {
	for c.bytes > c.budget {
		id, e, ok := c.idle.RemoveOldest()
		if !ok {
			return // everything else is pinned; budget is transiently exceeded
		}
		e.gone = true
		delete(c.live, id)
		c.bytes -= int64(len(e.data))
		c.evictions++
		telSharedEvictions.Inc()
	}
}
