package container

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/disk"
)

func TestDataCacheSingleFlight(t *testing.T) {
	c := NewDataCache(1 << 20)
	var loads atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	datas := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, release, err := c.Acquire(context.Background(), 7, func() ([]byte, error) {
				loads.Add(1)
				<-gate // hold every other caller in the single-flight wait
				return []byte("container-seven"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			datas[i] = data
			release()
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1 (single-flight)", n)
	}
	for i, d := range datas {
		if !bytes.Equal(d, []byte("container-seven")) {
			t.Fatalf("caller %d got %q", i, d)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Waits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+waits", st, callers-1)
	}
}

func TestDataCacheBudgetEviction(t *testing.T) {
	c := NewDataCache(256) // fits two 100-byte sections
	load := func(n byte) func() ([]byte, error) {
		return func() ([]byte, error) { return bytes.Repeat([]byte{n}, 100), nil }
	}
	for id := uint32(0); id < 3; id++ {
		_, release, err := c.Acquire(context.Background(), id, load(byte(id)))
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 200 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts under a 2-entry budget: %+v", st)
	}
	// Container 0 was the LRU victim: 1 and 2 still hit, re-acquiring 0 is a
	// miss (checked last — reloading 0 evicts the then-LRU entry 1).
	for _, tc := range []struct {
		id       uint32
		wantMiss bool
	}{{1, false}, {2, false}, {0, true}} {
		id, wantMiss := tc.id, tc.wantMiss
		before := c.Stats().Misses
		_, release, err := c.Acquire(context.Background(), id, load(byte(id)))
		if err != nil {
			t.Fatal(err)
		}
		release()
		if gotMiss := c.Stats().Misses > before; gotMiss != wantMiss {
			t.Fatalf("container %d: miss=%v, want %v", id, gotMiss, wantMiss)
		}
	}
}

func TestDataCachePinnedEntriesSurviveBudget(t *testing.T) {
	c := NewDataCache(150)
	data0, release0, err := c.Acquire(context.Background(), 0,
		func() ([]byte, error) { return bytes.Repeat([]byte{0xa}, 100), nil })
	if err != nil {
		t.Fatal(err)
	}
	// A second 100-byte load blows the budget, but container 0 is pinned:
	// bytes transiently exceed the budget instead of tearing out 0.
	_, release1, err := c.Acquire(context.Background(), 1,
		func() ([]byte, error) { return bytes.Repeat([]byte{0xb}, 100), nil })
	if err != nil {
		t.Fatal(err)
	}
	release1()
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("unpinned entry should have been evicted to fit: %+v", st)
	}
	if !bytes.Equal(data0, bytes.Repeat([]byte{0xa}, 100)) {
		t.Fatal("pinned bytes mutated")
	}
	hitsBefore := c.Stats().Hits
	if _, rel, err := c.Acquire(context.Background(), 0, func() ([]byte, error) {
		return nil, errors.New("must not reload a pinned entry")
	}); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("pinned entry should hit")
	}
	release0()
}

func TestDataCacheLoadErrorRetries(t *testing.T) {
	c := NewDataCache(1 << 20)
	boom := errors.New("backend down")
	if _, _, err := c.Acquire(context.Background(), 3,
		func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failed entry must not poison the cache: the next acquire reloads.
	data, release, err := c.Acquire(context.Background(), 3,
		func() ([]byte, error) { return []byte("recovered"), nil })
	if err != nil {
		t.Fatal(err)
	}
	release()
	if string(data) != "recovered" {
		t.Fatalf("data = %q", data)
	}
}

// TestDataCacheLoadPanicDoesNotWedge pins the single-flight unwedging
// contract: a loader that panics must fail the entry (waiters get an error,
// the next acquisition retries) instead of leaving `ready` forever un-closed
// with every future Acquire of that id blocked on a dead loader.
func TestDataCacheLoadPanicDoesNotWedge(t *testing.T) {
	c := NewDataCache(1 << 20)
	inLoad := make(chan struct{})
	proceed := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Acquire(context.Background(), 9, func() ([]byte, error) {
			close(inLoad)
			<-proceed
			panic("loader exploded")
		})
	}()
	<-inLoad
	// A single-flight waiter blocked on the doomed load must be failed, not
	// stranded.
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Acquire(context.Background(), 9, func() ([]byte, error) {
			return nil, errors.New("single-flight violated: second load ran during first")
		})
		waiter <- err
	}()
	for c.Stats().Waits == 0 {
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	if r := <-panicked; r == nil {
		t.Fatal("loader panic did not propagate to the loading caller")
	}
	if err := <-waiter; !errors.Is(err, errLoadPanic) {
		t.Fatalf("waiter err = %v, want errLoadPanic", err)
	}
	// The failed entry must not poison the id: a fresh acquisition reloads.
	data, release, err := c.Acquire(context.Background(), 9,
		func() ([]byte, error) { return []byte("recovered"), nil })
	if err != nil {
		t.Fatal(err)
	}
	release()
	if string(data) != "recovered" {
		t.Fatalf("data = %q", data)
	}
}

// Range flavour of the panic guard: a panicking extent load must fail every
// owned slot so later acquisitions of those containers retry cleanly.
func TestDataCacheRangeLoadPanicDoesNotWedge(t *testing.T) {
	c := NewDataCache(1 << 20)
	ids := []uint32{1, 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("range loader panic did not propagate")
			}
		}()
		c.AcquireRange(context.Background(), ids, func() ([][]byte, error) {
			panic("range loader exploded")
		})
	}()
	out, release, err := c.AcquireRange(context.Background(), ids, func() ([][]byte, error) {
		return [][]byte{[]byte("one"), []byte("two")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0]) != "one" || string(out[1]) != "two" {
		t.Fatalf("out = %q", out)
	}
	release()
}

// TestDataCacheReadyBeatsCancelledContext pins the wait-path select order:
// when an entry's data is already loaded, acquisition must deliver it even
// under an already-cancelled context — a two-way select would pick between
// ready and ctx.Done() at random and fail spuriously about half the time.
func TestDataCacheReadyBeatsCancelledContext(t *testing.T) {
	c := NewDataCache(1 << 20)
	for id, content := range map[uint32]string{5: "five", 6: "six", 7: "seven"} {
		content := content
		_, release, err := c.Acquire(context.Background(), id,
			func() ([]byte, error) { return []byte(content), nil })
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Many iterations so a regression to the random two-way select cannot
	// sneak through by luck.
	for i := 0; i < 100; i++ {
		data, release, err := c.Acquire(ctx, 5, func() ([]byte, error) {
			return nil, errors.New("must not reload a resident entry")
		})
		if err != nil {
			t.Fatalf("iteration %d: err = %v despite resident data", i, err)
		}
		if string(data) != "five" {
			t.Fatalf("data = %q", data)
		}
		release()
		out, release2, err := c.AcquireRange(ctx, []uint32{6, 7}, func() ([][]byte, error) {
			return nil, errors.New("must not reload resident entries")
		})
		if err != nil {
			t.Fatalf("iteration %d: range err = %v despite resident data", i, err)
		}
		if string(out[0]) != "six" || string(out[1]) != "seven" {
			t.Fatalf("range out = %q", out)
		}
		release2()
	}
}

func TestDataCacheAcquireRangeSingleLoad(t *testing.T) {
	c := NewDataCache(1 << 20)
	ids := []uint32{4, 5, 6}
	var loads atomic.Int64
	load := func() ([][]byte, error) {
		loads.Add(1)
		return [][]byte{[]byte("four"), []byte("five"), []byte("six")}, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, release, err := c.AcquireRange(context.Background(), ids, load)
			if err != nil {
				t.Error(err)
				return
			}
			if string(out[0]) != "four" || string(out[1]) != "five" || string(out[2]) != "six" {
				t.Errorf("out = %q", out)
			}
			release()
		}()
	}
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("range loaded %d times across %d concurrent callers, want 1", n, callers)
	}
}

// buildSealed writes n containers of one chunk each through a store backed
// by a Counting sim backend and returns the store, the counter, and the
// written locations.
func buildSealed(t *testing.T, n int) (*Store, *blockstore.Counting, []chunk.Location) {
	t.Helper()
	var clk disk.Clock
	dev := disk.NewDevice(disk.DefaultModel(), &clk, true)
	be := blockstore.NewCounting(blockstore.NewSim(true))
	s, err := NewStoreWithBackend(dev, Config{DataCap: 64, MaxChunks: 4}, be)
	if err != nil {
		t.Fatal(err)
	}
	locs := make([]chunk.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = mustWrite(s, chunk.New([]byte(fmt.Sprintf("chunk-%02d-padding-to-force-seal-%02d", i, i))), uint64(i))
		if err := s.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return s, be, locs
}

func TestStoreSharedCacheSingleBackendRead(t *testing.T) {
	s, be, locs := buildSealed(t, 4)
	s.SetDataCache(64 << 20)
	be.ResetCounts()

	ctx := context.Background()
	const rounds = 5
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, loc := range locs {
				data, err := s.ReadData(ctx, loc.Container)
				if err != nil {
					t.Error(err)
					return
				}
				want := []byte(fmt.Sprintf("chunk-%02d-padding-to-force-seal-%02d", i, i))
				if !bytes.Equal(s.Extract(data, loc), want) {
					t.Errorf("container %d: wrong bytes", loc.Container)
				}
			}
		}()
	}
	wg.Wait()
	if got := be.DataSectionReads(); got != int64(len(locs)) {
		t.Fatalf("backend data reads = %d across %d concurrent rounds, want %d (one per container)",
			got, rounds, len(locs))
	}
	st := s.DataCache().Stats()
	if st.Hits+st.Waits == 0 || st.Misses != uint64(len(locs)) {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestDataCacheDoesNotChangeSimulatedTime pins the tentpole's determinism
// contract at the container layer: the shared cache holds bytes only, so an
// identical read sequence charges identical simulated time and device stats
// with the cache attached, detached, or of any budget.
func TestDataCacheDoesNotChangeSimulatedTime(t *testing.T) {
	run := func(budget int64) (int64, disk.Stats) {
		var clk disk.Clock
		dev := disk.NewDevice(disk.DefaultModel(), &clk, true)
		s, err := NewStore(dev, Config{DataCap: 64, MaxChunks: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			mustWrite(s, chunk.New([]byte(fmt.Sprintf("chunk-%02d-padding-to-force-seal-%02d", i, i))), uint64(i))
			if err := s.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		s.SetDataCache(budget)
		ctx := context.Background()
		for _, id := range []uint32{0, 1, 2, 1, 0, 5, 4, 4, 3, 0} {
			if _, err := s.ReadData(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.ReadDataRange(ctx, []uint32{2, 3}); err != nil {
			t.Fatal(err)
		}
		return int64(clk.Now()), dev.Stats()
	}
	baseTime, baseStats := run(0) // no cache
	for _, budget := range []int64{1, 200, 1 << 20} {
		gotTime, gotStats := run(budget)
		if gotTime != baseTime || gotStats != baseStats {
			t.Fatalf("budget %d: time/stats %d/%+v differ from uncached %d/%+v",
				budget, gotTime, gotStats, baseTime, baseStats)
		}
	}
}
