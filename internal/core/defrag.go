// Package core implements DeFrag, the paper's contribution (§III):
// reducing the de-linearization of data placement by selectively *not*
// deduplicating redundant chunks whose placement would fragment the stream.
//
// DeFrag runs on top of the DDFS duplicate-identification machinery
// (engine.Resolver) but splits each segment's processing into phases:
//
//  1. Identify — resolve every chunk of the incoming segment Seg_m to
//     (duplicate, stored location) or (new), paying the same lookup costs
//     DDFS pays.
//
//  2. Measure — group the duplicates by the on-disk segment Seg_k holding
//     them and compute the Spatial Locality Level (paper Eq. 2):
//
//     SPL(m,k) = |Seg_m ∩ Seg_k| / |Seg_m|
//
//  3. Place — for each k with SPL(m,k) < α, the shared chunks are NOT
//     removed: they are rewritten to disk in stream order together with
//     Seg_m's new unique chunks, and the chunk index is repointed at the
//     new (linearized) copies. Chunks in high-SPL groups are deduplicated
//     as usual.
//
// The α knob trades sacrificed compression for preserved spatial locality
// (the paper evaluates α = 0.1). α = 0 degenerates to exact DDFS behaviour;
// α just above 1 rewrites every cross-segment duplicate (no dedup across
// segments that are not chunk-for-chunk supersets).
package core

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/telemetry"
)

// Live telemetry of the DeFrag decision path. The three defrag_decision_total
// series partition the chunk stream — their sum equals
// dedup_chunks_processed_total whenever DeFrag is the only engine running
// (asserted by the integration test in internal/telemetry).
var (
	telDecisionDedup = telemetry.NewCounter(
		telemetry.Name("defrag_decision_total", "decision", "dedup"),
		"per-chunk placement decisions: dedup (removed by reference), rewrite (duplicate written for locality), unique (new data)")
	telDecisionRewrite = telemetry.NewCounter(
		telemetry.Name("defrag_decision_total", "decision", "rewrite"), "")
	telDecisionUnique = telemetry.NewCounter(
		telemetry.Name("defrag_decision_total", "decision", "unique"), "")
	telDecisionSpill = telemetry.NewCounter(
		telemetry.Name("defrag_decision_total", "decision", "spill"), "")
	telSPL = telemetry.NewHistogram("defrag_spl_ratio",
		"spatial locality level SPL(m,k) of duplicate groups (paper Eq. 2); the rewrite threshold is α",
		telemetry.RatioBuckets)
	telRewriteGroups = telemetry.NewCounter(
		telemetry.Name("defrag_spl_groups_total", "verdict", "rewrite"),
		"duplicate placement groups judged against α: rewrite (SPL < α) or keep (deduplicate)")
	telKeepGroups = telemetry.NewCounter(
		telemetry.Name("defrag_spl_groups_total", "verdict", "keep"), "")
	telRewrittenBytes = telemetry.NewCounter("defrag_rewritten_bytes_total",
		"duplicate bytes deliberately rewritten for locality")
)

// RewritePolicy selects how DeFrag decides which duplicates to rewrite.
type RewritePolicy int

const (
	// PolicySPL is the paper's policy: group duplicates by the on-disk
	// *segment* holding them and rewrite groups with SPL(m,k) < α.
	PolicySPL RewritePolicy = iota
	// PolicyContainer is a CBR-style alternative (after Kaczmarczyk et
	// al., SYSTOR'12 — the paper's citation [5]): group duplicates by the
	// on-disk *container* and rewrite groups whose share of the incoming
	// segment is below α. Containers are the prefetch and restore
	// granularity, so this judges locality at exactly the unit the caches
	// operate on; the trade-off against segment granularity is measured by
	// RunPolicyAblation.
	PolicyContainer
)

func (p RewritePolicy) String() string {
	switch p {
	case PolicySPL:
		return "spl"
	case PolicyContainer:
		return "container"
	}
	return "unknown"
}

// Config parameterizes a DeFrag engine.
type Config struct {
	Alpha          float64       // SPL threshold α (paper default 0.1)
	Policy         RewritePolicy // rewrite grouping policy (default PolicySPL)
	Chunker        chunker.Kind
	ChunkParams    chunker.Params
	SegParams      segment.Params
	ContainerCfg   container.Config
	IndexCfg       cindex.Config
	DiskModel      disk.Model
	Cost           engine.CostModel
	LPCContainers  int
	ExpectedChunks int
	StoreData      bool
	// Backend supplies the physical container store. nil selects the
	// in-memory backend matching StoreData (the historical behavior).
	Backend blockstore.Backend
	// Filter is the HPDedup-style prioritized inline filter: streams whose
	// duplicates do not cluster are demoted to write-through (spill) ingest
	// and re-deduplicated out of line by the maintenance pass. The zero
	// value disables it — every stream dedups inline, the historical
	// behavior.
	Filter engine.FilterConfig
}

// DefaultConfig mirrors ddfs.DefaultConfig with the paper's α = 0.1.
func DefaultConfig(expectedLogicalBytes int64) Config {
	cp := chunker.DefaultParams()
	expChunks := int(expectedLogicalBytes/int64(cp.Target)) + 1
	ccfg := container.DefaultConfig()
	expContainers := int(expectedLogicalBytes/ccfg.DataCap) + 1
	lpc := expContainers / 20
	if lpc < 4 {
		lpc = 4
	}
	return Config{
		Alpha:          0.1,
		Chunker:        chunker.KindGear,
		ChunkParams:    cp,
		SegParams:      segment.DefaultParams(),
		ContainerCfg:   ccfg,
		IndexCfg:       cindex.DefaultConfig(expChunks),
		DiskModel:      disk.DefaultModel(),
		Cost:           engine.DefaultCostModel(),
		LPCContainers:  lpc,
		ExpectedChunks: expChunks,
	}
}

func (c Config) validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: α must be in [0,1], got %v", c.Alpha)
	}
	return nil
}

// Engine is the DeFrag deduplicator.
type Engine struct {
	cfg      Config
	clock    *disk.Clock
	store    *container.Store
	resolver *engine.Resolver

	oracle *cindex.Oracle
	segSeq atomic.Uint64
}

// New builds a DeFrag engine over a fresh clock.
func New(cfg Config) (*Engine, error) {
	return NewWithClock(cfg, &disk.Clock{})
}

// NewWithClock builds the engine over a caller-supplied clock.
func NewWithClock(cfg Config, clock *disk.Clock) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	be := cfg.Backend
	if be == nil {
		be = blockstore.NewSim(cfg.StoreData)
	}
	// The device is purely the timing model; bytes live in the backend.
	store, err := container.NewStoreWithBackend(disk.NewDevice(cfg.DiskModel, clock, false), cfg.ContainerCfg, be)
	if err != nil {
		return nil, err
	}
	index, err := cindex.New(disk.NewDevice(cfg.DiskModel, clock, false), cfg.IndexCfg)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		clock:    clock,
		store:    store,
		resolver: engine.NewResolver(index, store, cfg.LPCContainers, cfg.ExpectedChunks),
	}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "defrag" }

// Containers implements engine.Engine.
func (e *Engine) Containers() *container.Store { return e.store }

// Clock implements engine.Engine.
func (e *Engine) Clock() *disk.Clock { return e.clock }

// Alpha returns the configured SPL threshold.
func (e *Engine) Alpha() float64 { return e.cfg.Alpha }

// Policy returns the configured rewrite-grouping policy.
func (e *Engine) Policy() RewritePolicy { return e.cfg.Policy }

// Index exposes the chunk index (tests, diagnostics).
func (e *Engine) Index() *cindex.Index { return e.resolver.Index() }

// SetOracle attaches the ground-truth oracle (see ddfs.Engine.SetOracle).
func (e *Engine) SetOracle(o *cindex.Oracle) { e.oracle = o }

// Backup implements engine.Engine.
func (e *Engine) Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, engine.BackupStats, error) {
	return e.backup(ctx, label, r, nil)
}

// BackupStream implements engine.StreamBackupper: one backup ingested as a
// concurrent stream, with all simulated I/O and CPU time charged to clk and
// writes going through a per-stream container writer.
func (e *Engine) BackupStream(ctx context.Context, label string, r io.Reader, clk *disk.Clock) (*chunk.Recipe, engine.BackupStats, error) {
	return e.backup(ctx, label, r, clk)
}

// Adopt implements engine.Adopter: it rebuilds the directory, index,
// summary vector, and segment sequence from an already-populated backend
// (the durable-store reopen path).
func (e *Engine) Adopt(ctx context.Context) error {
	if err := e.store.Adopt(ctx); err != nil {
		return err
	}
	e.segSeq.Store(e.resolver.AdoptIndex())
	return nil
}

// DropFromIndex purges all index and cache state derived from container cid
// (fsck.IndexDropper) — call immediately before quarantining it.
func (e *Engine) DropFromIndex(cid uint32) int { return e.resolver.DropFromIndex(cid) }

// backup is the shared ingest body. clk == nil selects the serial path
// (store frontier writer, engine master clock); a non-nil clk selects the
// concurrent path (reserve-mode writer, per-stream timing).
func (e *Engine) backup(ctx context.Context, label string, r io.Reader, clk *disk.Clock) (*chunk.Recipe, engine.BackupStats, error) {
	stats := engine.BackupStats{Label: label}
	recipe := &chunk.Recipe{Label: label}
	timing := e.clock
	var w *container.Writer
	if clk == nil {
		w = e.store.SerialWriter()
	} else {
		timing = clk
		w = e.store.NewWriter(clk)
	}
	sr := e.resolver.Stream(clk, w)
	flt := engine.NewFilter(e.cfg.Filter)
	start := timing.Now()
	ctx, span := telemetry.StartSpan(ctx, "defrag.backup")
	defer span.End()

	logical, chunks, segs, err := engine.Pipeline(
		ctx, r, e.cfg.Chunker, e.cfg.ChunkParams, e.cfg.SegParams,
		timing, e.cfg.Cost, e.store.StoresData(),
		func(seg *segment.Segment) error {
			return e.processSegment(ctx, seg, recipe, &stats, timing, w, sr, flt)
		})
	if err != nil {
		// Leave the store consistent even on cancellation: seal the open
		// container and flush the index outside the cancelled context, so
		// everything already placed stays referenced (fsck-clean) and only
		// this backup is lost.
		if ferr := w.Finish(context.WithoutCancel(ctx)); ferr == nil {
			sr.FlushIndex()
		}
		return nil, stats, err
	}
	if err := w.Finish(ctx); err != nil {
		return nil, stats, err
	}
	sr.FlushIndex()

	stats.LogicalBytes = logical
	stats.Chunks = chunks
	stats.Segments = segs
	stats.FilterSpilled = flt.Spilling()
	stats.Duration = timing.Now() - start
	span.SetSim(stats.Duration)
	return recipe, stats, nil
}

// resolution is the phase-1 outcome for one chunk of the incoming segment.
type resolution struct {
	loc chunk.Location
	dup bool
}

// processSegment runs the three DeFrag phases over one segment. ctx carries
// the backup-level telemetry span; each phase is traced under it. timing is
// the clock the stream charges (the engine clock on the serial path).
func (e *Engine) processSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats, timing *disk.Clock, w *container.Writer, sr *engine.StreamResolver, flt *engine.Filter) error {
	// A stream the filter has demoted skips the charged identify/measure
	// phases entirely and writes through.
	if flt.Spilling() {
		return e.spillSegment(ctx, seg, recipe, stats, w, sr)
	}
	segID := e.segSeq.Add(1)
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)

	// Phase 1: identify every chunk (no writes yet — rewrites must land in
	// stream order together with the new unique chunks). The whole segment
	// resolves as one bucket-batched index pass: chunks hashing to the same
	// index page share one modeled page read.
	identStart := timing.Now()
	_, identSpan := telemetry.StartSpan(ctx, "defrag.identify")
	batch := sr.ResolveBatch(seg.Chunks, stats)
	res := make([]resolution, len(seg.Chunks))
	head := uint32(e.store.Slots())
	for i := range batch {
		res[i] = resolution{loc: batch[i].Loc, dup: batch[i].Dup}
		flt.Observe(res[i].dup, res[i].loc, head)
	}
	identSpan.SetSim(timing.Now() - identStart)
	identSpan.End()

	// Phase 2: spatial-locality measurement. Group duplicates by the
	// configured placement unit and mark low-SPL groups for rewriting.
	_, measureSpan := telemetry.StartSpan(ctx, "defrag.measure")
	groupOf := func(r *resolution) uint64 {
		if e.cfg.Policy == PolicyContainer {
			return uint64(r.loc.Container) + 1 // +1 keeps container 0 distinct from "no group"
		}
		return r.loc.Segment
	}
	shared := make(map[uint64]int) // placement group → shared chunk count
	for i := range res {
		if res[i].dup {
			shared[groupOf(&res[i])]++
		}
	}
	total := len(seg.Chunks)
	rewriteSeg := make(map[uint64]bool, len(shared))
	for k, n := range shared {
		if k == 0 {
			continue // location with no group tag (defensive)
		}
		spl := float64(n) / float64(total)
		telSPL.Observe(spl)
		if spl < e.cfg.Alpha {
			rewriteSeg[k] = true
			telRewriteGroups.Inc()
		} else {
			telKeepGroups.Inc()
		}
	}
	measureSpan.End()

	// Phase 3: place chunks in stream order. Duplicates resolving to
	// low-SPL segments are rewritten (and the index repointed); the rest
	// are removed by reference.
	placeStart := timing.Now()
	_, placeSpan := telemetry.StartSpan(ctx, "defrag.place")
	var removedInSeg int64
	writtenHere := make(map[chunk.Fingerprint]chunk.Location)
	for i, c := range seg.Chunks {
		r := res[i]
		switch {
		case r.dup && !rewriteSeg[groupOf(&r)]:
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			telDecisionDedup.Inc()
			removedInSeg += int64(c.Size)
			recipe.Append(c.FP, c.Size, r.loc)

		case r.dup: // low-SPL duplicate: rewrite for locality
			if loc, again := writtenHere[c.FP]; again {
				// Already rewritten earlier in this very segment; the new
				// copy is perfectly local — reference it.
				stats.DedupedBytes += int64(c.Size)
				stats.DedupedChunks++
				telDecisionDedup.Inc()
				removedInSeg += int64(c.Size)
				recipe.Append(c.FP, c.Size, loc)
				break
			}
			loc, werr := w.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			sr.Repoint(c.FP, loc)
			e.store.MarkDead(r.loc.Container, int64(r.loc.Size))
			writtenHere[c.FP] = loc
			stats.RewrittenBytes += int64(c.Size)
			stats.RewrittenChunks++
			telDecisionRewrite.Inc()
			telRewrittenBytes.Add(int64(c.Size))
			recipe.Append(c.FP, c.Size, loc)

		default: // new unique chunk
			if loc, again := writtenHere[c.FP]; again {
				stats.DedupedBytes += int64(c.Size)
				stats.DedupedChunks++
				telDecisionDedup.Inc()
				removedInSeg += int64(c.Size)
				recipe.Append(c.FP, c.Size, loc)
				break
			}
			loc, werr := w.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			sr.RegisterNew(c.FP, loc)
			writtenHere[c.FP] = loc
			stats.UniqueBytes += int64(c.Size)
			stats.UniqueChunks++
			telDecisionUnique.Inc()
			recipe.Append(c.FP, c.Size, loc)
		}
	}
	placeSpan.SetSim(timing.Now() - placeStart)
	placeSpan.End()

	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

// spillSegment is the write-through path for streams the inline filter has
// demoted: no charged index lookups, no metadata prefetches, no SPL
// measurement. Chunks the Bloom filter clears as definitely-new register in
// the index as usual; probable duplicates are written again without touching
// the index — the earlier copy stays authoritative, so the maintenance
// pass's re-dedup step (maintenance.Config.Rededup) can later remap this
// stream's recipe onto it and reclaim the spilled container space.
func (e *Engine) spillSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats, w *container.Writer, sr *engine.StreamResolver) error {
	segID := e.segSeq.Add(1)
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)
	var removedInSeg int64
	writtenHere := make(map[chunk.Fingerprint]chunk.Location, len(seg.Chunks))
	for _, c := range seg.Chunks {
		if loc, again := writtenHere[c.FP]; again {
			// Repeated within this segment: the copy just written is local
			// and free to reference.
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			telDecisionDedup.Inc()
			removedInSeg += int64(c.Size)
			recipe.Append(c.FP, c.Size, loc)
			continue
		}
		loc, werr := w.Write(ctx, c, segID)
		if werr != nil {
			return werr
		}
		writtenHere[c.FP] = loc
		if !sr.MightContain(c.FP) {
			// Definitely new: register so future streams (and this one) can
			// still dedup against it.
			sr.RegisterNew(c.FP, loc)
			stats.UniqueBytes += int64(c.Size)
			stats.UniqueChunks++
			telDecisionUnique.Inc()
		} else {
			// Probable duplicate: written through, index untouched.
			stats.SpilledBytes += int64(c.Size)
			stats.SpilledChunks++
			telDecisionSpill.Inc()
			engine.AccountSpill(int64(c.Size))
		}
		recipe.Append(c.FP, c.Size, loc)
	}
	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

var (
	_ engine.Engine  = (*Engine)(nil)
	_ engine.Adopter = (*Engine)(nil)
)
