package core

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cindex"
	"repro/internal/engine/ddfs"
	"repro/internal/enginetest"
	"repro/internal/trace"
)

func testConfig(alpha float64, storeData bool) Config {
	cfg := DefaultConfig(64 << 20)
	cfg.Alpha = alpha
	cfg.StoreData = storeData
	return cfg
}

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAlphaValidation(t *testing.T) {
	for _, a := range []float64{-0.1, 1.5} {
		cfg := testConfig(a, false)
		if _, err := New(cfg); err == nil {
			t.Errorf("α=%v should be rejected", a)
		}
	}
	for _, a := range []float64{0, 0.1, 1} {
		if _, err := New(testConfig(a, false)); err != nil {
			t.Errorf("α=%v should be accepted: %v", a, err)
		}
	}
}

func TestAlphaZeroNeverRewrites(t *testing.T) {
	// α = 0 means SPL < 0 never holds: DeFrag degenerates to exact DDFS.
	e, _ := New(testConfig(0, false))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(3), 5)
	for g, gr := range gens {
		if gr.Stats.RewrittenBytes != 0 {
			t.Fatalf("gen %d: α=0 rewrote %d bytes", g, gr.Stats.RewrittenBytes)
		}
	}
}

func TestAlphaZeroMatchesDDFSDedup(t *testing.T) {
	de, _ := New(testConfig(0, false))
	dd, _ := ddfs.New(ddfs.DefaultConfig(64 << 20))
	gd := enginetest.RunGenerations(t, de, enginetest.SmallConfig(5), 4)
	gf := enginetest.RunGenerations(t, dd, enginetest.SmallConfig(5), 4)
	for g := range gd {
		if gd[g].Stats.DedupedBytes != gf[g].Stats.DedupedBytes ||
			gd[g].Stats.UniqueBytes != gf[g].Stats.UniqueBytes {
			t.Fatalf("gen %d: α=0 DeFrag diverged from DDFS: %+v vs %+v",
				g, gd[g].Stats, gf[g].Stats)
		}
	}
}

func TestRewritesHappenUnderFragmentation(t *testing.T) {
	e, _ := New(testConfig(0.1, false))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(7), 8)
	var rewritten int64
	for _, gr := range gens {
		rewritten += gr.Stats.RewrittenBytes
	}
	if rewritten == 0 {
		t.Fatal("α=0.1 over churning generations should rewrite something")
	}
}

func TestRestoreCorrectness(t *testing.T) {
	e, _ := New(testConfig(0.1, true))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(9), 6)
	enginetest.VerifyRestores(t, e, gens)
}

func TestIdenticalSecondBackupFullyDedupes(t *testing.T) {
	// A fully duplicate stream has SPL 1 against its own segments: nothing
	// should be rewritten, everything removed.
	e, _ := New(testConfig(0.1, false))
	data := randStream(6<<20, 11)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	_, st, err := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st.RewrittenBytes != 0 {
		t.Fatalf("identical stream rewrote %d bytes (SPL should be ~1)", st.RewrittenBytes)
	}
	if st.DedupedBytes != st.LogicalBytes {
		t.Fatalf("identical stream deduped %d of %d", st.DedupedBytes, st.LogicalBytes)
	}
}

func TestHighAlphaRewritesMore(t *testing.T) {
	run := func(alpha float64) int64 {
		e, _ := New(testConfig(alpha, false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(13), 6)
		var rw int64
		for _, gr := range gens {
			rw += gr.Stats.RewrittenBytes
		}
		return rw
	}
	low, high := run(0.05), run(0.5)
	if high <= low {
		t.Fatalf("α=0.5 should rewrite more than α=0.05: %d vs %d", high, low)
	}
}

func TestIndexRepointedToRewrittenCopy(t *testing.T) {
	e, _ := New(testConfig(0.1, false))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(15), 8)
	// Find a rewritten generation, then check that at least one recipe ref
	// of the latest generation points at a container written after gen 0.
	var sawRewrite bool
	for _, gr := range gens {
		if gr.Stats.RewrittenChunks > 0 {
			sawRewrite = true
		}
	}
	if !sawRewrite {
		t.Skip("workload produced no rewrites at this scale")
	}
	last := gens[len(gens)-1].Recipe
	// Every referenced location must be indexed at least as new as itself:
	// the index never points at an older copy than the recipe references.
	for _, ref := range last.Refs {
		loc, ok := e.Index().Peek(ref.FP)
		if !ok {
			t.Fatalf("recipe fp %s missing from index", ref.FP.Short())
		}
		if loc.Container < ref.Loc.Container {
			t.Fatalf("index points at older container (%d) than recipe (%d)", loc.Container, ref.Loc.Container)
		}
	}
}

func TestLessFragmentationThanDDFS(t *testing.T) {
	// The headline Fig. 6 mechanism: after several generations DeFrag's
	// recipes are less fragmented than DDFS's.
	wcfg := enginetest.SmallConfig(17)
	de, _ := New(DefaultConfig(enginetest.ExpectedBytes(wcfg, 10)))
	dd, _ := ddfs.New(ddfs.DefaultConfig(enginetest.ExpectedBytes(wcfg, 10)))
	gd := enginetest.RunGenerations(t, de, wcfg, 10)
	gf := enginetest.RunGenerations(t, dd, wcfg, 10)
	deFrags := gd[9].Recipe.Fragments()
	ddFrags := gf[9].Recipe.Fragments()
	if deFrags >= ddFrags {
		t.Fatalf("DeFrag fragments %d should be below DDFS %d at gen 9", deFrags, ddFrags)
	}
}

func TestCompressionSacrificeIsBounded(t *testing.T) {
	// "at the cost of little compression ratios": rewritten bytes stay a
	// small fraction of the redundancy removed.
	e, _ := New(testConfig(0.1, false))
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(19), 10)
	var rewritten, redundant int64
	for _, gr := range gens {
		rewritten += gr.Stats.RewrittenBytes
		redundant += gr.Stats.OracleRedundantBytes
	}
	if redundant == 0 {
		t.Fatal("no redundancy generated")
	}
	if frac := float64(rewritten) / float64(redundant); frac > 0.25 {
		t.Fatalf("rewrites consumed %.1f%% of redundancy; 'little compression cost' violated", frac*100)
	}
}

func TestUtilizationReflectsRewrites(t *testing.T) {
	e, _ := New(testConfig(0.2, false))
	enginetest.RunGenerations(t, e, enginetest.SmallConfig(21), 8)
	if u := e.Containers().Utilization(); u >= 1.0 || u <= 0 {
		t.Fatalf("utilization should be in (0,1) after rewrites, got %v", u)
	}
}

func TestNameAndAccessors(t *testing.T) {
	e, _ := New(testConfig(0.1, false))
	if e.Name() != "defrag" {
		t.Fatal("name")
	}
	if e.Alpha() != 0.1 {
		t.Fatal("alpha accessor")
	}
	if e.Containers() == nil || e.Clock() == nil || e.Index() == nil {
		t.Fatal("nil accessors")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e, _ := New(testConfig(0.1, false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(23), 3)
		return gens[2].Stats.UniqueBytes, gens[2].Stats.RewrittenBytes
	}
	u1, r1 := run()
	u2, r2 := run()
	if u1 != u2 || r1 != r2 {
		t.Fatal("engine not deterministic")
	}
}

// TestParallelWorkersDeterminism pins the dual-clock contract at the engine
// level: wall-clock parallelism in the chunk/hash pipeline (Cost.Workers)
// must not change what the engine does — recipes bit-identical, the same
// simulated time charged — only how fast the wall clock gets there.
func TestParallelWorkersDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // let the parallel path actually engage
	defer runtime.GOMAXPROCS(prev)

	run := func(workers int) []enginetest.Generation {
		cfg := testConfig(0.1, true)
		cfg.Cost.Workers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return enginetest.RunGenerations(t, e, enginetest.SmallConfig(29), 3)
	}
	serial := run(1)
	parallel := run(4)

	for g := range serial {
		ss, ps := serial[g].Stats, parallel[g].Stats
		if ps.Duration != ss.Duration {
			t.Fatalf("gen %d: parallel workers changed simulated time: %v vs %v", g, ps.Duration, ss.Duration)
		}
		if ps.UniqueBytes != ss.UniqueBytes || ps.RewrittenBytes != ss.RewrittenBytes || ps.Chunks != ss.Chunks {
			t.Fatalf("gen %d: parallel workers changed dedup outcome: %+v vs %+v", g, ps, ss)
		}
		var sb, pb bytes.Buffer
		if err := trace.Save(&sb, serial[g].Recipe); err != nil {
			t.Fatal(err)
		}
		if err := trace.Save(&pb, parallel[g].Recipe); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("gen %d: recipes not bit-identical between serial and parallel pipelines", g)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicySPL.String() != "spl" || PolicyContainer.String() != "container" ||
		RewritePolicy(9).String() != "unknown" {
		t.Fatal("policy names")
	}
}

func TestContainerPolicyRewrites(t *testing.T) {
	cfg := testConfig(0.1, false)
	cfg.Policy = PolicyContainer
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy() != PolicyContainer {
		t.Fatal("policy accessor")
	}
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(25), 8)
	var rewritten int64
	for _, gr := range gens {
		rewritten += gr.Stats.RewrittenBytes
	}
	if rewritten == 0 {
		t.Fatal("container policy should rewrite under churn")
	}
}

func TestContainerPolicyRestoresCorrectly(t *testing.T) {
	cfg := testConfig(0.1, true)
	cfg.Policy = PolicyContainer
	e, _ := New(cfg)
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(27), 5)
	enginetest.VerifyRestores(t, e, gens)
}

func TestPoliciesDivergeButBothHelp(t *testing.T) {
	// The two grouping granularities must make different decisions on a
	// churning workload, and both must keep fragmentation below plain DDFS.
	run := func(p RewritePolicy) (int64, int) {
		cfg := testConfig(0.1, false)
		cfg.Policy = p
		e, _ := New(cfg)
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(29), 8)
		var rw int64
		for _, gr := range gens {
			rw += gr.Stats.RewrittenBytes
		}
		return rw, gens[7].Recipe.Fragments()
	}
	rwSPL, fragSPL := run(PolicySPL)
	rwCTR, fragCTR := run(PolicyContainer)
	if rwSPL == rwCTR {
		t.Fatalf("policies made identical rewrite volumes (%d); granularities not distinct", rwSPL)
	}
	dd, _ := ddfs.New(ddfs.DefaultConfig(64 << 20))
	gd := enginetest.RunGenerations(t, dd, enginetest.SmallConfig(29), 8)
	ddFrag := gd[7].Recipe.Fragments()
	if fragSPL >= ddFrag && fragCTR >= ddFrag {
		t.Fatalf("neither policy reduced fragmentation: spl=%d ctr=%d ddfs=%d", fragSPL, fragCTR, ddFrag)
	}
}
