// Package disk provides the simulated storage substrate that all
// performance results in this reproduction are measured against.
//
// The paper's three headline metrics — deduplication throughput,
// deduplication efficiency, and data read performance — are disk-bound
// quantities on the authors' testbed. We reproduce them with an analytic
// timing model rather than real hardware:
//
//   - a Device is a log-structured, byte-addressable store with a tracked
//     head position; any access that is not contiguous with the current
//     position costs one seek (Model.Seek), and every byte moves at the
//     sequential bandwidth (Model.ReadBW / Model.WriteBW). This is exactly
//     the cost structure of the paper's Eq. 1,
//     F(read) = N·T_seek + size/W_seq.
//   - a Clock accumulates simulated time across all devices and the CPU
//     cost model, so throughput = bytes / clock time.
//
// Devices can store real bytes (correctness tests, examples) or run
// metadata-only (large experiments), with identical time accounting.
package disk

import (
	"fmt"
	"time"
)

// Model holds the physical parameters of a simulated disk.
type Model struct {
	Seek    time.Duration // cost of one discontiguous access (seek + rotational latency)
	ReadBW  float64       // sequential read bandwidth, bytes/second
	WriteBW float64       // sequential write bandwidth, bytes/second
}

// DefaultModel returns parameters representative of the paper era's backup
// storage (a small striped array of 7.2k rpm disks): 4 ms per random access
// and ~350/300 MB/s sequential read/write. EXPERIMENTS.md documents how these
// calibrate the absolute throughput numbers.
func DefaultModel() Model {
	return Model{
		Seek:    4 * time.Millisecond,
		ReadBW:  350e6,
		WriteBW: 300e6,
	}
}

// ReadTime returns the transfer time for n sequential bytes.
func (m Model) ReadTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.ReadBW * float64(time.Second))
}

// WriteTime returns the transfer time for n sequential bytes.
func (m Model) WriteTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.WriteBW * float64(time.Second))
}

// Clock accumulates simulated time. One Clock is shared by every device and
// cost source participating in an experiment.
type Clock struct{ t time.Duration }

// Advance adds d to the clock. Negative d panics: simulated time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("disk: clock cannot go backwards")
	}
	c.t += d
}

// Now returns the accumulated simulated time.
func (c *Clock) Now() time.Duration { return c.t }

// Seconds returns the accumulated time in seconds.
func (c *Clock) Seconds() float64 { return c.t.Seconds() }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.t = 0 }

// Stats are cumulative per-device counters.
type Stats struct {
	Seeks        int64
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

func (s Stats) String() string {
	return fmt.Sprintf("seeks=%d reads=%d(%dB) writes=%d(%dB)",
		s.Seeks, s.Reads, s.BytesRead, s.Writes, s.BytesWritten)
}

// Device is a simulated log-structured disk. Writes append at the frontier;
// reads address any previously written range. The head position is tracked:
// contiguous accesses are free of seeks, discontiguous ones pay Model.Seek.
//
// If constructed with NewDevice(model, clock, true), the device stores real
// bytes and ReadAt returns them; otherwise only sizes and offsets are
// tracked ("hole" mode) and ReadAt fills zeros.
type Device struct {
	model    Model
	clock    *Clock
	pos      int64 // current head position
	frontier int64 // append point (device size so far)
	data     []byte
	stores   bool
	stats    Stats
}

// NewDevice creates a device over model and clock. storeData selects whether
// real bytes are retained.
func NewDevice(model Model, clock *Clock, storeData bool) *Device {
	if clock == nil {
		panic("disk: nil clock")
	}
	// The head starts parked away from the log (pos -1), so the first access
	// of any fresh device pays one seek, matching the paper's Eq. 1 where
	// even a fully contiguous read costs 1·T_seek.
	return &Device{model: model, clock: clock, stores: storeData, pos: -1}
}

// StoresData reports whether the device retains real bytes.
func (d *Device) StoresData() bool { return d.stores }

// Size returns the number of bytes written so far (the append frontier).
func (d *Device) Size() int64 { return d.frontier }

// Stats returns the cumulative counters.
func (d *Device) Stats() Stats { return d.stats }

// Model returns the device's timing model.
func (d *Device) Model() Model { return d.model }

// Clock returns the shared clock this device charges time to.
func (d *Device) Clock() *Clock { return d.clock }

// seekTo charges a seek if the head is not already at off.
func (d *Device) seekTo(off int64) {
	if d.pos != off {
		d.stats.Seeks++
		d.clock.Advance(d.model.Seek)
		d.pos = off
	}
}

// Append writes p at the frontier and returns its offset.
func (d *Device) Append(p []byte) int64 {
	off := d.appendCommon(int64(len(p)))
	if d.stores {
		d.data = append(d.data, p...)
	}
	return off
}

// AppendHole accounts an n-byte append without storing data (metadata-only
// mode; also valid on a storing device, where the range reads back as
// zeros). Returns the offset.
func (d *Device) AppendHole(n int64) int64 {
	if n < 0 {
		panic("disk: negative append")
	}
	off := d.appendCommon(n)
	if d.stores {
		d.data = append(d.data, make([]byte, n)...)
	}
	return off
}

func (d *Device) appendCommon(n int64) int64 {
	off := d.frontier
	d.seekTo(off)
	d.clock.Advance(d.model.WriteTime(n))
	d.frontier += n
	d.pos = off + n
	d.stats.Writes++
	d.stats.BytesWritten += n
	return off
}

// ReadAt reads len(p) bytes from off into p, charging seek and transfer
// time. Reading beyond the frontier panics — it indicates a logic bug in a
// caller, never valid input.
func (d *Device) ReadAt(p []byte, off int64) {
	n := int64(len(p))
	d.accountRead(off, n)
	if d.stores {
		copy(p, d.data[off:off+n])
	} else {
		for i := range p {
			p[i] = 0
		}
	}
}

// PeekAt copies stored bytes into p without charging time or moving the
// head. For checkers and diagnostics only; zero-fills on hole devices.
func (d *Device) PeekAt(p []byte, off int64) {
	n := int64(len(p))
	if off < 0 || n < 0 || off+n > d.frontier {
		panic(fmt.Sprintf("disk: peek [%d,%d) beyond frontier %d", off, off+n, d.frontier))
	}
	if d.stores {
		copy(p, d.data[off:off+n])
	} else {
		for i := range p {
			p[i] = 0
		}
	}
}

// AccountRead charges the time of an n-byte read at off without returning
// data. It is the metadata-only read path.
func (d *Device) AccountRead(off, n int64) {
	d.accountRead(off, n)
}

func (d *Device) accountRead(off, n int64) {
	if off < 0 || n < 0 || off+n > d.frontier {
		panic(fmt.Sprintf("disk: read [%d,%d) beyond frontier %d", off, off+n, d.frontier))
	}
	d.seekTo(off)
	d.clock.Advance(d.model.ReadTime(n))
	d.pos = off + n
	d.stats.Reads++
	d.stats.BytesRead += n
}

// Position returns the current head position (exported for tests and the
// restore path's contiguity reasoning).
func (d *Device) Position() int64 { return d.pos }
