// Package disk provides the simulated storage substrate that all
// performance results in this reproduction are measured against.
//
// The paper's three headline metrics — deduplication throughput,
// deduplication efficiency, and data read performance — are disk-bound
// quantities on the authors' testbed. We reproduce them with an analytic
// timing model rather than real hardware:
//
//   - a Device is a log-structured, byte-addressable store with a tracked
//     head position; any access that is not contiguous with the current
//     position costs one seek (Model.Seek), and every byte moves at the
//     sequential bandwidth (Model.ReadBW / Model.WriteBW). This is exactly
//     the cost structure of the paper's Eq. 1,
//     F(read) = N·T_seek + size/W_seq.
//   - a Clock accumulates simulated time across all devices and the CPU
//     cost model, so throughput = bytes / clock time.
//
// Devices can store real bytes (correctness tests, examples) or run
// metadata-only (large experiments), with identical time accounting.
//
// Concurrency: Clock is atomic and Device state is mutex-guarded, so
// multiple backup streams may drive the same device in parallel. Each
// stream charges its own Clock through a device *view* (see Device.View):
// views share all device state — head position, frontier, stored bytes,
// stats — but route time charges to a per-stream clock, which is what makes
// per-stream throughput measurable under concurrent ingest.
package disk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model holds the physical parameters of a simulated disk.
type Model struct {
	Seek    time.Duration // cost of one discontiguous access (seek + rotational latency)
	ReadBW  float64       // sequential read bandwidth, bytes/second
	WriteBW float64       // sequential write bandwidth, bytes/second
}

// DefaultModel returns parameters representative of the paper era's backup
// storage (a small striped array of 7.2k rpm disks): 4 ms per random access
// and ~350/300 MB/s sequential read/write. EXPERIMENTS.md documents how these
// calibrate the absolute throughput numbers.
func DefaultModel() Model {
	return Model{
		Seek:    4 * time.Millisecond,
		ReadBW:  350e6,
		WriteBW: 300e6,
	}
}

// ReadTime returns the transfer time for n sequential bytes.
func (m Model) ReadTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.ReadBW * float64(time.Second))
}

// WriteTime returns the transfer time for n sequential bytes.
func (m Model) WriteTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.WriteBW * float64(time.Second))
}

// Clock accumulates simulated time. One Clock is shared by every device and
// cost source participating in an experiment. Advance/Now are atomic, so
// concurrent backup streams can charge and read a clock without extra
// locking.
type Clock struct{ t atomic.Int64 }

// Advance adds d to the clock. Negative d panics: simulated time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("disk: clock cannot go backwards")
	}
	c.t.Add(int64(d))
}

// Now returns the accumulated simulated time.
func (c *Clock) Now() time.Duration { return time.Duration(c.t.Load()) }

// Seconds returns the accumulated time in seconds.
func (c *Clock) Seconds() float64 { return c.Now().Seconds() }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.t.Store(0) }

// Stats are cumulative per-device counters.
type Stats struct {
	Seeks        int64
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

func (s Stats) String() string {
	return fmt.Sprintf("seeks=%d reads=%d(%dB) writes=%d(%dB)",
		s.Seeks, s.Reads, s.BytesRead, s.Writes, s.BytesWritten)
}

// devState is the shared core of a simulated device. All views of one
// device point at the same devState; its mutex serializes every access, so
// concurrent streams contend for the head position exactly as they would on
// a real shared spindle.
type devState struct {
	mu       sync.Mutex
	model    Model
	pos      int64 // current head position
	frontier int64 // append point (device size so far)
	data     []byte
	stores   bool
	stats    Stats
}

// Device is a simulated log-structured disk. Writes append at the frontier;
// reads address any previously written range. The head position is tracked:
// contiguous accesses are free of seeks, discontiguous ones pay Model.Seek.
//
// If constructed with NewDevice(model, clock, true), the device stores real
// bytes and ReadAt returns them; otherwise only sizes and offsets are
// tracked ("hole" mode) and ReadAt fills zeros.
//
// A Device value is a handle: View returns a second handle onto the same
// underlying device that charges its time to a different clock. All handles
// are safe for concurrent use.
type Device struct {
	st    *devState
	clock *Clock
}

// NewDevice creates a device over model and clock. storeData selects whether
// real bytes are retained.
func NewDevice(model Model, clock *Clock, storeData bool) *Device {
	if clock == nil {
		panic("disk: nil clock")
	}
	// The head starts parked away from the log (pos -1), so the first access
	// of any fresh device pays one seek, matching the paper's Eq. 1 where
	// even a fully contiguous read costs 1·T_seek.
	return &Device{st: &devState{model: model, stores: storeData, pos: -1}, clock: clock}
}

// View returns a handle onto the same device that charges simulated time to
// clk instead of this handle's clock. Head position, frontier, stored bytes
// and stats are shared with every other view; only the time destination
// differs. A nil clk returns the receiver unchanged.
func (d *Device) View(clk *Clock) *Device {
	if clk == nil {
		return d
	}
	return &Device{st: d.st, clock: clk}
}

// StoresData reports whether the device retains real bytes.
func (d *Device) StoresData() bool { return d.st.stores }

// Size returns the number of bytes written so far (the append frontier).
func (d *Device) Size() int64 {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	return d.st.frontier
}

// Stats returns the cumulative counters.
func (d *Device) Stats() Stats {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	return d.st.stats
}

// Model returns the device's timing model.
func (d *Device) Model() Model { return d.st.model }

// Clock returns the clock this handle charges time to.
func (d *Device) Clock() *Clock { return d.clock }

// seekTo charges a seek if the head is not already at off. Caller holds mu.
func (d *Device) seekTo(off int64) {
	if d.st.pos != off {
		d.st.stats.Seeks++
		d.clock.Advance(d.st.model.Seek)
		d.st.pos = off
	}
}

// Append writes p at the frontier and returns its offset.
func (d *Device) Append(p []byte) int64 {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	off := d.appendCommon(int64(len(p)))
	if d.st.stores {
		d.st.data = append(d.st.data, p...)
	}
	return off
}

// AppendHole accounts an n-byte append without storing data (metadata-only
// mode; also valid on a storing device, where the range reads back as
// zeros). Returns the offset.
func (d *Device) AppendHole(n int64) int64 {
	if n < 0 {
		panic("disk: negative append")
	}
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	off := d.appendCommon(n)
	if d.st.stores {
		d.st.data = append(d.st.data, make([]byte, n)...)
	}
	return off
}

// appendCommon charges and accounts an n-byte frontier write. Caller holds mu.
func (d *Device) appendCommon(n int64) int64 {
	off := d.st.frontier
	d.seekTo(off)
	d.clock.Advance(d.st.model.WriteTime(n))
	d.st.frontier += n
	d.st.pos = off + n
	d.st.stats.Writes++
	d.st.stats.BytesWritten += n
	return off
}

// ReserveExtent advances the frontier by n bytes without charging any time
// and returns the reserved offset. It is space allocation, not I/O: a
// concurrent container writer reserves its container's full extent up front
// so parallel streams can assign stable chunk offsets, then pays the actual
// write cost when the buffered container seals (see WriteAt/AccountWrite).
// On a storing device the reserved range reads back as zeros until written.
func (d *Device) ReserveExtent(n int64) int64 {
	if n < 0 {
		panic("disk: negative reservation")
	}
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	off := d.st.frontier
	d.st.frontier += n
	if d.st.stores {
		d.st.data = append(d.st.data, make([]byte, n)...)
	}
	return off
}

// WriteAt writes p into a previously reserved range at off, charging seek
// and transfer time. Writing beyond the frontier panics: reservations must
// cover the range first.
func (d *Device) WriteAt(p []byte, off int64) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	n := int64(len(p))
	d.writeAtCommon(off, n)
	if d.st.stores {
		copy(d.st.data[off:off+n], p)
	}
}

// AccountWrite charges the time of an n-byte write at off into previously
// reserved space without storing data (the metadata-only write path for
// reserved extents).
func (d *Device) AccountWrite(off, n int64) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	d.writeAtCommon(off, n)
}

// writeAtCommon charges an in-place write into reserved space. Caller holds mu.
func (d *Device) writeAtCommon(off, n int64) {
	if off < 0 || n < 0 || off+n > d.st.frontier {
		panic(fmt.Sprintf("disk: write [%d,%d) beyond frontier %d", off, off+n, d.st.frontier))
	}
	d.seekTo(off)
	d.clock.Advance(d.st.model.WriteTime(n))
	d.st.pos = off + n
	d.st.stats.Writes++
	d.st.stats.BytesWritten += n
}

// ReadAt reads len(p) bytes from off into p, charging seek and transfer
// time. Reading beyond the frontier panics — it indicates a logic bug in a
// caller, never valid input.
func (d *Device) ReadAt(p []byte, off int64) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	n := int64(len(p))
	d.accountRead(off, n)
	if d.st.stores {
		copy(p, d.st.data[off:off+n])
	} else {
		for i := range p {
			p[i] = 0
		}
	}
}

// ReadRange reads n bytes at off as one sequential extent — at most one
// seek plus a single n-byte transfer — and returns the data (zero-filled on
// hole devices). It is the coalesced-read primitive of the restore path:
// k adjacent containers fetched through one ReadRange pay 1·T_seek in the
// Eq. 1 cost model where k separate ReadAt calls would pay k·T_seek.
func (d *Device) ReadRange(off, n int64) []byte {
	p := make([]byte, n)
	d.ReadAt(p, off)
	return p
}

// PeekAt copies stored bytes into p without charging time or moving the
// head. For checkers and diagnostics only; zero-fills on hole devices.
func (d *Device) PeekAt(p []byte, off int64) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	n := int64(len(p))
	if off < 0 || n < 0 || off+n > d.st.frontier {
		panic(fmt.Sprintf("disk: peek [%d,%d) beyond frontier %d", off, off+n, d.st.frontier))
	}
	if d.st.stores {
		copy(p, d.st.data[off:off+n])
	} else {
		for i := range p {
			p[i] = 0
		}
	}
}

// AccountRead charges the time of an n-byte read at off without returning
// data. It is the metadata-only read path.
func (d *Device) AccountRead(off, n int64) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	d.accountRead(off, n)
}

// accountRead charges an n-byte read at off. Caller holds mu.
func (d *Device) accountRead(off, n int64) {
	if off < 0 || n < 0 || off+n > d.st.frontier {
		panic(fmt.Sprintf("disk: read [%d,%d) beyond frontier %d", off, off+n, d.st.frontier))
	}
	d.seekTo(off)
	d.clock.Advance(d.st.model.ReadTime(n))
	d.st.pos = off + n
	d.st.stats.Reads++
	d.st.stats.BytesRead += n
}

// Position returns the current head position (exported for tests and the
// restore path's contiguity reasoning).
func (d *Device) Position() int64 {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	return d.st.pos
}
