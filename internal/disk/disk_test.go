package disk

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func testModel() Model {
	return Model{Seek: 10 * time.Millisecond, ReadBW: 100e6, WriteBW: 100e6}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	if c.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", c.Seconds())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockMonotonePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance must panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestNewDeviceNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDevice(testModel(), nil, false)
}

func TestAppendSequentialCostsOneSeek(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	d.Append(make([]byte, 1000))
	d.Append(make([]byte, 1000))
	d.Append(make([]byte, 1000))
	st := d.Stats()
	if st.Seeks != 1 {
		t.Fatalf("sequential appends should seek once, got %d", st.Seeks)
	}
	if st.BytesWritten != 3000 || st.Writes != 3 {
		t.Fatalf("stats = %+v", st)
	}
	want := 10*time.Millisecond + testModel().WriteTime(3000)
	if c.Now() != want {
		t.Fatalf("clock = %v, want %v", c.Now(), want)
	}
}

func TestReadBackData(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, true)
	off1 := d.Append([]byte("hello"))
	off2 := d.Append([]byte("world"))
	buf := make([]byte, 5)
	d.ReadAt(buf, off2)
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	d.ReadAt(buf, off1)
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
}

func TestHoleModeReadsZeros(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	off := d.Append([]byte("xxxx"))
	buf := []byte{1, 2, 3, 4}
	d.ReadAt(buf, off)
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatalf("hole mode must read zeros, got %v", buf)
	}
}

func TestAppendHoleOnStoringDevice(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, true)
	d.AppendHole(8)
	off := d.Append([]byte("ab"))
	buf := make([]byte, 2)
	d.ReadAt(buf, off)
	if string(buf) != "ab" {
		t.Fatal("data after hole corrupted")
	}
}

func TestSeekAccounting(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	d.AppendHole(10_000)
	c.Reset()
	// Read three discontiguous ranges: 3 seeks.
	d.AccountRead(0, 100)
	d.AccountRead(5000, 100)
	d.AccountRead(1000, 100)
	if s := d.Stats().Seeks - 1; s != 3 { // minus the initial append seek
		t.Fatalf("seeks = %d, want 3", s)
	}
	// Contiguous follow-up read: no new seek.
	before := d.Stats().Seeks
	d.AccountRead(1100, 100)
	if d.Stats().Seeks != before {
		t.Fatal("contiguous read must not seek")
	}
}

func TestEquation1(t *testing.T) {
	// Paper Eq. 1: reading a file stored as N scattered fragments costs
	// N*T_seek + size/W_seq; stored contiguously it costs 1*T_seek + size/W_seq.
	m := testModel()
	var c Clock
	d := NewDevice(m, &c, false)
	const frag = 100_000
	const n = 10
	d.AppendHole(frag * (2*n + 1))
	c.Reset()

	// Scattered: fragments at every other slot.
	for i := 0; i < n; i++ {
		d.AccountRead(int64(2*i*frag), frag)
	}
	scattered := c.Now()
	want := time.Duration(n)*m.Seek + m.ReadTime(n*frag)
	if scattered != want {
		t.Fatalf("scattered read = %v, want %v", scattered, want)
	}

	// Contiguous.
	c.Reset()
	d.st.pos = -1 // force initial seek
	d.AccountRead(0, n*frag)
	contiguous := c.Now()
	wantC := m.Seek + m.ReadTime(n*frag)
	if contiguous != wantC {
		t.Fatalf("contiguous read = %v, want %v", contiguous, wantC)
	}
	if scattered-m.ReadTime(n*frag) != time.Duration(n)*(m.Seek) {
		t.Fatal("seek component must be N*Tseek")
	}
}

func TestReadBeyondFrontierPanics(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	d.AppendHole(100)
	for _, r := range [][2]int64{{50, 100}, {-1, 10}, {0, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("read [%d,+%d) should panic", r[0], r[1])
				}
			}()
			d.AccountRead(r[0], r[1])
		}()
	}
}

func TestNegativeAppendPanics(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	d.AppendHole(-1)
}

func TestModelTimes(t *testing.T) {
	m := Model{Seek: time.Millisecond, ReadBW: 1e6, WriteBW: 2e6}
	if m.ReadTime(1e6) != time.Second {
		t.Fatalf("ReadTime = %v", m.ReadTime(1e6))
	}
	if m.WriteTime(1e6) != 500*time.Millisecond {
		t.Fatalf("WriteTime = %v", m.WriteTime(1e6))
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.Seek <= 0 || m.ReadBW <= 0 || m.WriteBW <= 0 {
		t.Fatalf("default model not positive: %+v", m)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Seeks: 1, Reads: 2, Writes: 3, BytesRead: 4, BytesWritten: 5}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}

// Property: device data integrity — whatever is appended reads back intact
// regardless of interleaving, and offsets are strictly increasing.
func TestAppendReadProperty(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, true)
	var frontier int64
	fn := func(data []byte) bool {
		off := d.Append(data)
		if off != frontier {
			return false
		}
		frontier += int64(len(data))
		got := make([]byte, len(data))
		d.ReadAt(got, off)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: time accounting matches first principles for any access pattern:
// clock total = seeks*Seek + bytesRead/ReadBW + bytesWritten/WriteBW.
func TestTimeAccountingProperty(t *testing.T) {
	m := testModel()
	var c Clock
	d := NewDevice(m, &c, false)
	d.AppendHole(1 << 20)
	fn := func(off uint32, n uint16) bool {
		o := int64(off) % (1 << 20)
		sz := int64(n)
		if o+sz > 1<<20 {
			sz = 1<<20 - o
		}
		d.AccountRead(o, sz)
		st := d.Stats()
		want := time.Duration(st.Seeks)*m.Seek + m.ReadTime(st.BytesRead) + m.WriteTime(st.BytesWritten)
		diff := c.Now() - want
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Duration(st.Reads+st.Writes+2) // rounding slack: <1ns per op
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRange(t *testing.T) {
	m := testModel()
	var c Clock
	d := NewDevice(m, &c, true)
	a := []byte("first-container-data")
	b := []byte("second-container-data")
	offA := d.Append(a)
	d.Append(b)

	before := d.Stats()
	start := c.Now()
	got := d.ReadRange(offA, int64(len(a)+len(b)))
	if !bytes.Equal(got, append(append([]byte{}, a...), b...)) {
		t.Fatal("ReadRange returned wrong bytes")
	}
	after := d.Stats()
	if after.Reads != before.Reads+1 {
		t.Fatalf("one ranged read must be one device read, got %d", after.Reads-before.Reads)
	}
	if after.Seeks != before.Seeks+1 {
		t.Fatalf("one ranged read must pay at most one seek, got %d", after.Seeks-before.Seeks)
	}
	want := m.Seek + m.ReadTime(int64(len(a)+len(b)))
	if got, diff := c.Now()-start, time.Duration(2); got < want-diff || got > want+diff {
		t.Fatalf("ranged read charged %v, want ~%v", got, want)
	}
}

func TestReadRangeHoleDeviceZeroFills(t *testing.T) {
	var c Clock
	d := NewDevice(testModel(), &c, false)
	off := d.AppendHole(64)
	got := d.ReadRange(off, 64)
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole device must zero-fill ranged reads")
		}
	}
}
