// Package ddfs implements the "DDFS-Like" engine: the deduplication
// approach of Zhu et al. (FAST'08) as the paper summarizes it, built from
// three RAM-side mechanisms in front of the on-disk full chunk index:
//
//  1. Summary vector — a Bloom filter over all stored fingerprints; most new
//     chunks are declared unique without touching disk.
//  2. Stream-informed layout — new chunks are packed into containers in
//     arrival order (internal/container).
//  3. Locality-preserved caching (LPC) — when a duplicate is found via the
//     on-disk index, the metadata of its whole container is prefetched into
//     a RAM cache, so the duplicates that follow it in the stream (spatial
//     locality!) are resolved for free.
//
// The engine's throughput therefore degrades exactly the way the paper's
// Fig. 2 shows: as earlier generations scatter a stream's duplicate chunks
// over many containers, each prefetched container yields fewer future hits,
// and the per-chunk probability of paying an index lookup + metadata
// prefetch (two seeks) climbs.
//
// The lookup machinery itself lives in engine.Resolver, shared with DeFrag.
package ddfs

import (
	"context"
	"io"
	"sync/atomic"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/segment"
)

// Config parameterizes a DDFS-Like engine.
type Config struct {
	Chunker        chunker.Kind
	ChunkParams    chunker.Params
	SegParams      segment.Params
	ContainerCfg   container.Config
	IndexCfg       cindex.Config
	DiskModel      disk.Model
	Cost           engine.CostModel
	LPCContainers  int  // locality-preserved cache capacity, in containers
	ExpectedChunks int  // Bloom filter sizing
	StoreData      bool // retain real chunk bytes (correctness mode)
	// Backend supplies the physical container store. nil selects the
	// in-memory backend matching StoreData (the historical behavior).
	Backend blockstore.Backend
}

// DefaultConfig sizes an engine for roughly expectedLogicalBytes of total
// ingested data across all generations. The LPC and index page cache are
// deliberately small relative to the data (see DESIGN.md §5): the
// experiments reproduce a regime where RAM covers only a sliver of the
// chunk population.
func DefaultConfig(expectedLogicalBytes int64) Config {
	cp := chunker.DefaultParams()
	expChunks := int(expectedLogicalBytes/int64(cp.Target)) + 1
	ccfg := container.DefaultConfig()
	expContainers := int(expectedLogicalBytes/ccfg.DataCap) + 1
	lpc := expContainers / 20
	if lpc < 4 {
		lpc = 4
	}
	return Config{
		Chunker:        chunker.KindGear,
		ChunkParams:    cp,
		SegParams:      segment.DefaultParams(),
		ContainerCfg:   ccfg,
		IndexCfg:       cindex.DefaultConfig(expChunks),
		DiskModel:      disk.DefaultModel(),
		Cost:           engine.DefaultCostModel(),
		LPCContainers:  lpc,
		ExpectedChunks: expChunks,
	}
}

// Engine is the DDFS-Like deduplicator.
type Engine struct {
	cfg      Config
	clock    *disk.Clock
	store    *container.Store
	resolver *engine.Resolver

	oracle *cindex.Oracle // optional ground-truth observer
	segSeq atomic.Uint64  // global on-disk segment counter
}

// New builds a DDFS-Like engine with its own devices over a fresh clock.
func New(cfg Config) (*Engine, error) {
	return NewWithClock(cfg, &disk.Clock{})
}

// NewWithClock builds the engine over a caller-supplied clock (used when an
// experiment wants several engines to share a timeline; engines never share
// devices).
func NewWithClock(cfg Config, clock *disk.Clock) (*Engine, error) {
	be := cfg.Backend
	if be == nil {
		be = blockstore.NewSim(cfg.StoreData)
	}
	// The device is purely the timing model; bytes live in the backend.
	store, err := container.NewStoreWithBackend(disk.NewDevice(cfg.DiskModel, clock, false), cfg.ContainerCfg, be)
	if err != nil {
		return nil, err
	}
	index, err := cindex.New(disk.NewDevice(cfg.DiskModel, clock, false), cfg.IndexCfg)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		clock:    clock,
		store:    store,
		resolver: engine.NewResolver(index, store, cfg.LPCContainers, cfg.ExpectedChunks),
	}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "ddfs-like" }

// Containers implements engine.Engine.
func (e *Engine) Containers() *container.Store { return e.store }

// Clock implements engine.Engine.
func (e *Engine) Clock() *disk.Clock { return e.clock }

// Index exposes the chunk index (tests, diagnostics).
func (e *Engine) Index() *cindex.Index { return e.resolver.Index() }

// SetOracle attaches a ground-truth oracle; subsequent backups fill the
// Oracle* fields of their BackupStats. The oracle must observe every stream
// an experiment ingests, so share one oracle across an engine's lifetime.
func (e *Engine) SetOracle(o *cindex.Oracle) { e.oracle = o }

// Backup implements engine.Engine.
func (e *Engine) Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, engine.BackupStats, error) {
	return e.backup(ctx, label, r, nil)
}

// BackupStream implements engine.StreamBackupper: one backup ingested as a
// concurrent stream, with all simulated I/O and CPU time charged to clk and
// unique chunks written through a per-stream container writer.
func (e *Engine) BackupStream(ctx context.Context, label string, r io.Reader, clk *disk.Clock) (*chunk.Recipe, engine.BackupStats, error) {
	return e.backup(ctx, label, r, clk)
}

// Adopt implements engine.Adopter: it rebuilds the directory, index,
// summary vector, and segment sequence from an already-populated backend
// (the durable-store reopen path).
func (e *Engine) Adopt(ctx context.Context) error {
	if err := e.store.Adopt(ctx); err != nil {
		return err
	}
	e.segSeq.Store(e.resolver.AdoptIndex())
	return nil
}

// DropFromIndex purges all index and cache state derived from container cid
// (fsck.IndexDropper) — call immediately before quarantining it.
func (e *Engine) DropFromIndex(cid uint32) int { return e.resolver.DropFromIndex(cid) }

// backup is the shared ingest body. clk == nil selects the serial path
// (store frontier writer, engine master clock); a non-nil clk selects the
// concurrent path (reserve-mode writer, per-stream timing).
func (e *Engine) backup(ctx context.Context, label string, r io.Reader, clk *disk.Clock) (*chunk.Recipe, engine.BackupStats, error) {
	stats := engine.BackupStats{Label: label}
	recipe := &chunk.Recipe{Label: label}
	timing := e.clock
	var w *container.Writer
	if clk == nil {
		w = e.store.SerialWriter()
	} else {
		timing = clk
		w = e.store.NewWriter(clk)
	}
	sr := e.resolver.Stream(clk, w)
	start := timing.Now()

	logical, chunks, segs, err := engine.Pipeline(
		ctx, r, e.cfg.Chunker, e.cfg.ChunkParams, e.cfg.SegParams,
		timing, e.cfg.Cost, e.store.StoresData(),
		func(seg *segment.Segment) error {
			return e.processSegment(ctx, seg, recipe, &stats, w, sr)
		})
	if err != nil {
		// Leave the store consistent even on cancellation: seal the open
		// container and flush the index outside the cancelled context, so
		// everything already placed stays referenced (fsck-clean) and only
		// this backup is lost.
		if ferr := w.Finish(context.WithoutCancel(ctx)); ferr == nil {
			sr.FlushIndex()
		}
		return nil, stats, err
	}
	if err := w.Finish(ctx); err != nil {
		return nil, stats, err
	}
	sr.FlushIndex()

	stats.LogicalBytes = logical
	stats.Chunks = chunks
	stats.Segments = segs
	stats.Duration = timing.Now() - start
	return recipe, stats, nil
}

// processSegment deduplicates one segment: its chunks are resolved as a
// bucket-batched lookup (chunks sharing an index page cost one modeled page
// read), then placed in stream order. Chunks that duplicate a chunk written
// earlier in the same segment reference that fresh copy directly.
func (e *Engine) processSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats, w *container.Writer, sr *engine.StreamResolver) error {
	segID := e.segSeq.Add(1)
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)
	var removedInSeg int64
	res := sr.ResolveBatch(seg.Chunks, stats)
	var writtenHere map[chunk.Fingerprint]chunk.Location
	for i, c := range seg.Chunks {
		loc, dup := res[i].Loc, res[i].Dup
		if !dup {
			if prev, again := writtenHere[c.FP]; again {
				loc, dup = prev, true
			}
		}
		if dup {
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			removedInSeg += int64(c.Size)
		} else {
			var werr error
			loc, werr = w.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			sr.RegisterNew(c.FP, loc)
			if writtenHere == nil {
				writtenHere = make(map[chunk.Fingerprint]chunk.Location)
			}
			writtenHere[c.FP] = loc
			stats.UniqueBytes += int64(c.Size)
			stats.UniqueChunks++
		}
		recipe.Append(c.FP, c.Size, loc)
	}
	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

var (
	_ engine.Engine  = (*Engine)(nil)
	_ engine.Adopter = (*Engine)(nil)
)
