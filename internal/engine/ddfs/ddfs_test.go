package ddfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/cindex"
	"repro/internal/enginetest"
)

func testConfig(storeData bool) Config {
	cfg := DefaultConfig(64 << 20)
	cfg.StoreData = storeData
	return cfg
}

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAllUniqueBackup(t *testing.T) {
	e, err := New(testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	data := randStream(4<<20, 1)
	_, st, err := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	enginetest.CheckConservation(t, st)
	if st.DedupedBytes != 0 {
		t.Fatalf("random stream must not dedupe, got %d", st.DedupedBytes)
	}
	if st.UniqueBytes != int64(len(data)) {
		t.Fatalf("UniqueBytes = %d, want %d", st.UniqueBytes, len(data))
	}
	// Summary vector: almost no index lookups for new data (only Bloom
	// false positives).
	if st.IndexLookups > st.Chunks/50 {
		t.Fatalf("too many index lookups for unique data: %d of %d chunks", st.IndexLookups, st.Chunks)
	}
}

func TestIdenticalSecondBackupFullyDedupes(t *testing.T) {
	e, _ := New(testConfig(false))
	data := randStream(4<<20, 2)
	_, st1, err := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rec, st2, err := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st2.DedupedBytes != st1.LogicalBytes {
		t.Fatalf("identical re-backup should fully dedupe: %d of %d", st2.DedupedBytes, st1.LogicalBytes)
	}
	if st2.UniqueBytes != 0 {
		t.Fatalf("UniqueBytes = %d on identical data", st2.UniqueBytes)
	}
	// Locality-preserved caching: one index lookup + prefetch per
	// container, not per chunk.
	if st2.IndexLookups > int64(e.Containers().NumContainers()+4) {
		t.Fatalf("LPC failed: %d index lookups for %d containers",
			st2.IndexLookups, e.Containers().NumContainers())
	}
	if rec.Len() == 0 || rec.Bytes() != int64(len(data)) {
		t.Fatalf("recipe wrong: %d refs, %d bytes", rec.Len(), rec.Bytes())
	}
}

func TestSecondBackupIsFasterThanFirst(t *testing.T) {
	e, _ := New(testConfig(false))
	data := randStream(8<<20, 3)
	_, st1, _ := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	_, st2, _ := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if st2.ThroughputMBps() <= st1.ThroughputMBps() {
		t.Fatalf("dedup of identical data should beat first write: %.1f <= %.1f",
			st2.ThroughputMBps(), st1.ThroughputMBps())
	}
}

func TestGenerationsConserveAndRestore(t *testing.T) {
	cfg := testConfig(true)
	e, _ := New(cfg)
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(7), 5)
	enginetest.VerifyRestores(t, e, gens)
}

func TestThroughputDegradesWithGenerations(t *testing.T) {
	// The Fig. 2 dynamic at test scale: average throughput over the last
	// three generations is below the average of generations 1-3.
	wcfg := enginetest.SmallConfig(11)
	e, _ := New(DefaultConfig(enginetest.ExpectedBytes(wcfg, 14)))
	gens := enginetest.RunGenerations(t, e, wcfg, 14)
	early := (gens[1].Stats.ThroughputMBps() + gens[2].Stats.ThroughputMBps() + gens[3].Stats.ThroughputMBps()) / 3
	late := (gens[11].Stats.ThroughputMBps() + gens[12].Stats.ThroughputMBps() + gens[13].Stats.ThroughputMBps()) / 3
	if late >= early {
		t.Fatalf("throughput should degrade: early %.1f, late %.1f MB/s", early, late)
	}
}

func TestFragmentationGrowsWithGenerations(t *testing.T) {
	wcfg := enginetest.SmallConfig(13)
	e, _ := New(DefaultConfig(enginetest.ExpectedBytes(wcfg, 10)))
	gens := enginetest.RunGenerations(t, e, wcfg, 10)
	if first, last := gens[0].Recipe.Fragments(), gens[9].Recipe.Fragments(); last <= first*2 {
		t.Fatalf("de-linearization should grow fragments: gen0 %d, gen9 %d", first, last)
	}
}

func TestOracleAgreesWithExactDedup(t *testing.T) {
	// DDFS is exact: its removed bytes must equal the oracle's redundancy.
	e, _ := New(testConfig(false))
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(17), 4)
	for g, gr := range gens {
		if gr.Stats.DedupedBytes != gr.Stats.OracleRedundantBytes {
			t.Fatalf("gen %d: exact dedup removed %d != oracle %d",
				g, gr.Stats.DedupedBytes, gr.Stats.OracleRedundantBytes)
		}
		if g > 0 && gr.Stats.Efficiency() != 1 {
			t.Fatalf("gen %d: exact engine efficiency = %v, want 1", g, gr.Stats.Efficiency())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e, _ := New(testConfig(false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(19), 3)
		last := gens[2].Stats
		return last.UniqueBytes, int64(last.Duration)
	}
	u1, d1 := run()
	u2, d2 := run()
	if u1 != u2 || d1 != d2 {
		t.Fatalf("engine not deterministic: (%d,%d) vs (%d,%d)", u1, d1, u2, d2)
	}
}

func TestNameAndAccessors(t *testing.T) {
	e, _ := New(testConfig(false))
	if e.Name() != "ddfs-like" {
		t.Fatal("name")
	}
	if e.Containers() == nil || e.Clock() == nil || e.Index() == nil {
		t.Fatal("nil accessors")
	}
}

func TestDefaultConfigScaling(t *testing.T) {
	small := DefaultConfig(16 << 20)
	big := DefaultConfig(16 << 30)
	if big.LPCContainers <= small.LPCContainers {
		t.Fatal("LPC must scale with corpus size")
	}
	if big.ExpectedChunks <= small.ExpectedChunks {
		t.Fatal("bloom sizing must scale")
	}
	if small.LPCContainers < 4 {
		t.Fatal("LPC floor")
	}
}
