// Package engine defines the interface shared by the deduplication engines
// (DDFS-Like, SiLo-Like, Sparse-Indexing, iDedup, DeFrag) plus the common
// backup pipeline:
// stream → CDC chunks → fingerprints → content-defined segments → the
// engine's per-segment dedup logic.
//
// Time accounting: the pipeline charges CPU cost (chunking + SHA-256 at
// CostModel.CPUBandwidth) and each engine charges its own disk costs through
// the shared disk.Clock. A backup's throughput is logical bytes divided by
// the clock delta across the backup.
package engine

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/segment"
)

// CostModel holds the CPU-side cost parameters.
type CostModel struct {
	// CPUBandwidth is the modeled pipeline rate (bytes/second) of chunking
	// plus fingerprinting plus in-RAM bookkeeping.
	CPUBandwidth float64
	// Workers sets the fingerprinting fan-out (see ParallelPipeline):
	// 0 picks GOMAXPROCS automatically (the default path), 1 forces the
	// serial pipeline, and N > 1 uses exactly N workers (clamped to
	// GOMAXPROCS). Parallelism accelerates the simulation's own wall clock;
	// the modeled CPU charge is unchanged — a system that also parallelizes
	// its modeled CPU raises CPUBandwidth to match.
	Workers int
}

// effectiveWorkers resolves the Workers knob: 0 = auto (GOMAXPROCS),
// <= 1 after resolution = serial.
func (m CostModel) effectiveWorkers() int {
	w := m.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if g := runtime.GOMAXPROCS(0); w > g {
		w = g
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultCostModel returns 750 MB/s, calibrated so that a first-generation
// (all-unique) backup under DDFS lands at the paper's ~213 MB/s:
// 1/(1/750 + 1/300 write) ≈ 214 MB/s. See EXPERIMENTS.md.
func DefaultCostModel() CostModel { return CostModel{CPUBandwidth: 750e6} }

// ChargeCPU advances the clock by the CPU time for n bytes.
func (m CostModel) ChargeCPU(clock *disk.Clock, n int64) {
	clock.Advance(time.Duration(float64(n) / m.CPUBandwidth * float64(time.Second)))
}

// BackupStats summarizes one backup generation through one engine.
type BackupStats struct {
	Label        string
	LogicalBytes int64 // bytes of the incoming stream
	Chunks       int64
	Segments     int64

	UniqueBytes     int64 // new unique chunk bytes written
	UniqueChunks    int64
	DedupedBytes    int64 // redundant bytes removed (referenced, not written)
	DedupedChunks   int64
	RewrittenBytes  int64 // redundant bytes deliberately written anyway
	RewrittenChunks int64
	MissedDupBytes  int64 // redundant bytes the engine failed to detect (SiLo)
	SpilledBytes    int64 // probable-duplicate bytes written through by the inline filter
	SpilledChunks   int64
	FilterSpilled   bool // the stream was demoted to spill (write-through) mode

	Duration time.Duration // simulated time consumed by this backup

	// Ground-truth fields, filled only when the engine was given an oracle
	// (engines expose SetOracle). The oracle is measurement apparatus — it
	// charges no simulated time and influences no engine decision.
	OracleRedundantBytes  int64 // bytes whose fingerprint was stored before (exact)
	PartialRedundantBytes int64 // oracle-redundant bytes within partially-redundant segments
	RemovedInPartialBytes int64 // bytes the engine actually removed within those segments

	// Mechanism counters (engine-specific ones stay zero elsewhere).
	IndexLookups   int64 // charged full-index lookups
	MetaPrefetches int64 // container-metadata prefetch reads (DDFS/DeFrag)
	CacheHits      int64 // dup chunks resolved from the RAM locality cache
	BlockReads     int64 // block-metadata reads (SiLo)
	SHTHits        int64 // similar-segment detections (SiLo)
}

// ThroughputMBps returns the backup throughput in MB/s (10^6 bytes/s).
func (s BackupStats) ThroughputMBps() float64 {
	sec := s.Duration.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / sec / 1e6
}

// WrittenBytes returns the physical chunk-data bytes this backup added.
func (s BackupStats) WrittenBytes() int64 { return s.UniqueBytes + s.RewrittenBytes }

func (s BackupStats) String() string {
	return fmt.Sprintf("%s: %.1f MB logical, %.1f MB/s, unique %.1f MB, deduped %.1f MB, rewritten %.1f MB",
		s.Label, float64(s.LogicalBytes)/1e6, s.ThroughputMBps(),
		float64(s.UniqueBytes)/1e6, float64(s.DedupedBytes)/1e6, float64(s.RewrittenBytes)/1e6)
}

// Efficiency returns the paper's Fig. 3/Fig. 5 deduplication-efficiency
// metric for this backup: redundant bytes removed divided by redundant
// bytes present, restricted to partially-redundant segments (see DESIGN.md).
// It returns 1 when the restricted denominator is zero (nothing to miss) and
// 0 when no oracle was attached.
func (s BackupStats) Efficiency() float64 {
	if s.OracleRedundantBytes == 0 {
		return 0
	}
	if s.PartialRedundantBytes == 0 {
		return 1
	}
	eff := float64(s.RemovedInPartialBytes) / float64(s.PartialRedundantBytes)
	if eff > 1 {
		eff = 1
	}
	return eff
}

// Engine is one deduplication approach.
type Engine interface {
	// Name identifies the engine ("ddfs-like", "silo-like", "defrag").
	Name() string
	// Backup deduplicates one full-backup stream, returning the recipe that
	// restores it and per-backup statistics. Cancelling ctx aborts the
	// backup between segments and before any backend write; the engine
	// leaves the store consistent (sealed containers stay sealed, the index
	// flushes) so an aborted backup is absent, not corrupt.
	Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, BackupStats, error)
	// Containers exposes the engine's container store for restores.
	Containers() *container.Store
	// Clock exposes the shared simulated clock.
	Clock() *disk.Clock
}

// Adopter is implemented by engines that can rebuild their in-RAM state
// (chunk index, summary vector, segment sequence) from an already-populated
// container store — the reopen path of durable backends.
type Adopter interface {
	// Adopt ingests the container store's directory. It must be called on a
	// freshly constructed engine, before any Backup.
	Adopt(ctx context.Context) error
}

// Pipeline runs the shared front half of a backup — chunking, hashing, CPU
// charging, segmenting — and hands each completed segment to process. It
// returns the logical byte count and chunk/segment counts. The
// fingerprinting stage fans out across cost.Workers goroutines by default
// (ParallelPipeline; Workers == 1 forces the serial loop); results are
// bit-identical either way.
//
// keepData controls whether chunk bytes are retained into the segments
// (true when the engine's container backend stores data). Chunk Data slices
// handed to process live in pooled buffers that are recycled as soon as
// process returns: an engine that retains chunk bytes past its process
// callback must copy them (every in-tree engine copies into its container
// writer synchronously).
//
// Cancelling ctx stops the pipeline at the next segment boundary with
// ctx's error; segments already handed to process are fully applied.
func Pipeline(
	ctx context.Context,
	r io.Reader,
	kind chunker.Kind,
	cp chunker.Params,
	sp segment.Params,
	clock *disk.Clock,
	cost CostModel,
	keepData bool,
	process func(*segment.Segment) error,
) (logicalBytes, chunks, segments int64, err error) {
	if w := cost.effectiveWorkers(); w > 1 {
		return ParallelPipeline(ctx, r, kind, cp, sp, clock, cost, keepData, w, process)
	}
	ck, err := chunker.New(kind, r, cp)
	if err != nil {
		return 0, 0, 0, err
	}
	sg, err := segment.New(sp)
	if err != nil {
		return 0, 0, 0, err
	}
	// Segment-lifetime arena for chunk bytes: chunks alias this buffer until
	// the segment holding them is processed, then the whole buffer is reused.
	// One copy per chunk (chunker window → arena), zero steady-state
	// allocations; capacity covers the largest possible segment (the
	// segmenter force-emits at MaxBytes, so a segment never exceeds
	// MaxBytes-1 plus one maximum-size chunk).
	var arena []byte
	if keepData {
		arena = make([]byte, 0, int(sp.MaxBytes)+cp.Max)
	}
	emit := func(seg *segment.Segment) error {
		if seg == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		segments++
		telSegments.Inc()
		if err := process(seg); err != nil {
			return err
		}
		// All chunks of seg (everything accumulated since the last emit)
		// have been consumed; their arena bytes are dead.
		arena = arena[:0]
		return nil
	}
	for {
		t0 := time.Now()
		raw, cerr := ck.Next()
		stageChunk.Observe(t0)
		if cerr == io.EOF {
			break
		}
		if cerr != nil {
			return logicalBytes, chunks, segments, cerr
		}
		t1 := time.Now()
		var c chunk.Chunk
		if keepData {
			// The chunker reuses its window; the arena owns the copy. If a
			// pathological chunk overflows capacity, append reallocates —
			// earlier chunks keep pointing into the old backing array, so
			// aliasing stays valid and only the recycling degrades.
			off := len(arena)
			arena = append(arena, raw...)
			c = chunk.New(arena[off:len(arena):len(arena)])
		} else {
			c = chunk.New(raw)
			c.Data = nil
		}
		stageHash.Observe(t1)
		cost.ChargeCPU(clock, int64(c.Size))
		logicalBytes += int64(c.Size)
		chunks++
		telChunks.Inc()
		telBytes.Add(int64(c.Size))
		telChunkSize.Observe(float64(c.Size))
		if err := emit(sg.Add(c)); err != nil {
			return logicalBytes, chunks, segments, err
		}
	}
	if err := emit(sg.Finish()); err != nil {
		return logicalBytes, chunks, segments, err
	}
	return logicalBytes, chunks, segments, nil
}
