package engine

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/segment"
)

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestCostModelCharge(t *testing.T) {
	var clk disk.Clock
	m := CostModel{CPUBandwidth: 100e6}
	m.ChargeCPU(&clk, 100e6)
	if got := clk.Now(); got != time.Second {
		t.Fatalf("ChargeCPU = %v, want 1s", got)
	}
}

func TestDefaultCostModelCalibration(t *testing.T) {
	// DESIGN.md documents the calibration: CPU 750 MB/s + write 300 MB/s
	// compose to ~214 MB/s for an all-unique backup, matching the paper's
	// 213 MB/s generation-1 DDFS measurement.
	cpu := DefaultCostModel().CPUBandwidth
	wbw := disk.DefaultModel().WriteBW
	combined := 1 / (1/cpu + 1/wbw)
	if combined < 200e6 || combined > 230e6 {
		t.Fatalf("calibrated gen-1 throughput %.0f MB/s outside 200-230 band", combined/1e6)
	}
}

func TestBackupStatsThroughput(t *testing.T) {
	s := BackupStats{LogicalBytes: 100e6, Duration: time.Second}
	if s.ThroughputMBps() != 100 {
		t.Fatalf("ThroughputMBps = %v", s.ThroughputMBps())
	}
	if (BackupStats{}).ThroughputMBps() != 0 {
		t.Fatal("zero duration must yield zero throughput")
	}
}

func TestBackupStatsWrittenAndString(t *testing.T) {
	s := BackupStats{UniqueBytes: 10, RewrittenBytes: 5}
	if s.WrittenBytes() != 15 {
		t.Fatalf("WrittenBytes = %d", s.WrittenBytes())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEfficiencyEdgeCases(t *testing.T) {
	if (BackupStats{}).Efficiency() != 0 {
		t.Fatal("no oracle → 0")
	}
	s := BackupStats{OracleRedundantBytes: 100}
	if s.Efficiency() != 1 {
		t.Fatal("no partial segments → 1 (nothing to miss)")
	}
	s.PartialRedundantBytes = 50
	s.RemovedInPartialBytes = 25
	if s.Efficiency() != 0.5 {
		t.Fatalf("Efficiency = %v", s.Efficiency())
	}
	s.RemovedInPartialBytes = 80 // clamp
	if s.Efficiency() != 1 {
		t.Fatal("efficiency must clamp at 1")
	}
}

func TestPipelineConservation(t *testing.T) {
	data := randBytes(3<<20, 1)
	var clk disk.Clock
	var total int64
	var segBytes int64
	logical, chunks, segs, err := Pipeline(context.Background(),
		bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, DefaultCostModel(), false,
		func(s *segment.Segment) error {
			segBytes += s.Bytes
			for _, c := range s.Chunks {
				total += int64(c.Size)
				if c.Data != nil {
					t.Fatal("keepData=false must drop chunk data")
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if logical != int64(len(data)) || total != logical || segBytes != logical {
		t.Fatalf("conservation violated: logical=%d total=%d segBytes=%d input=%d",
			logical, total, segBytes, len(data))
	}
	if chunks == 0 || segs == 0 {
		t.Fatal("no chunks or segments")
	}
	if clk.Now() == 0 {
		t.Fatal("pipeline must charge CPU time")
	}
}

func TestPipelineKeepData(t *testing.T) {
	data := randBytes(1<<20, 2)
	var clk disk.Clock
	var rebuilt []byte
	_, _, _, err := Pipeline(context.Background(),
		bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, DefaultCostModel(), true,
		func(s *segment.Segment) error {
			for _, c := range s.Chunks {
				if c.Data == nil {
					t.Fatal("keepData=true must retain data")
				}
				if chunk.Of(c.Data) != c.FP {
					t.Fatal("fingerprint mismatch")
				}
				rebuilt = append(rebuilt, c.Data...)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("pipeline chunks do not reassemble input")
	}
}

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestPipelineErrorPropagation(t *testing.T) {
	var clk disk.Clock
	_, _, _, err := Pipeline(context.Background(),
		failReader{}, chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, DefaultCostModel(), false,
		func(*segment.Segment) error { return nil })
	if err != io.ErrClosedPipe {
		t.Fatalf("err = %v, want ErrClosedPipe", err)
	}
}

func TestPipelineProcessError(t *testing.T) {
	var clk disk.Clock
	sentinel := io.ErrShortWrite
	_, _, _, err := Pipeline(context.Background(),
		bytes.NewReader(randBytes(2<<20, 3)), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, DefaultCostModel(), false,
		func(*segment.Segment) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestPipelineBadParams(t *testing.T) {
	var clk disk.Clock
	if _, _, _, err := Pipeline(context.Background(), bytes.NewReader(nil), chunker.KindGear,
		chunker.Params{}, segment.DefaultParams(), &clk, DefaultCostModel(), false,
		func(*segment.Segment) error { return nil }); err == nil {
		t.Fatal("bad chunk params must error")
	}
	if _, _, _, err := Pipeline(context.Background(), bytes.NewReader(nil), chunker.KindGear,
		chunker.DefaultParams(), segment.Params{}, &clk, DefaultCostModel(), false,
		func(*segment.Segment) error { return nil }); err == nil {
		t.Fatal("bad segment params must error")
	}
}

// --- Resolver ---

func newResolverRig(t *testing.T) (*Resolver, *container.Store, *disk.Clock) {
	t.Helper()
	var clk disk.Clock
	store, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, false), container.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cindex.New(disk.NewDevice(disk.DefaultModel(), &clk, false), cindex.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	return NewResolver(ix, store, 4, 10000), store, &clk
}

func mkChunk(i byte) chunk.Chunk { return chunk.Meta(chunk.Of([]byte{i}), 100) }

func TestResolverNewChunkIsFree(t *testing.T) {
	r, _, clk := newResolverRig(t)
	var stats BackupStats
	before := clk.Now()
	if _, dup := r.Resolve(mkChunk(1), &stats); dup {
		t.Fatal("unknown chunk must not be a duplicate")
	}
	if clk.Now() != before {
		t.Fatal("bloom-negative resolve must be free")
	}
	if stats.IndexLookups != 0 {
		t.Fatal("no index lookup expected")
	}
}

func TestResolverDuplicatePath(t *testing.T) {
	r, store, _ := newResolverRig(t)
	var stats BackupStats
	c := mkChunk(2)
	loc := mustWrite(store, c, 7)
	r.RegisterNew(c.FP, loc)
	store.Flush(context.Background())

	got, dup := r.Resolve(c, &stats)
	if !dup || got != loc {
		t.Fatalf("Resolve = %v,%v want %v,true", got, dup, loc)
	}
	if stats.IndexLookups != 1 || stats.MetaPrefetches != 1 {
		t.Fatalf("stats = %+v, want one lookup + one prefetch", stats)
	}
	// Second resolve: LPC hit, free.
	_, dup = r.Resolve(c, &stats)
	if !dup || stats.CacheHits != 1 || stats.IndexLookups != 1 {
		t.Fatalf("second resolve should be a cache hit: %+v", stats)
	}
}

func TestResolverPrefetchCoversNeighbours(t *testing.T) {
	r, store, _ := newResolverRig(t)
	var stats BackupStats
	// Write several chunks into the same container.
	var cs []chunk.Chunk
	for i := byte(10); i < 20; i++ {
		c := mkChunk(i)
		loc := mustWrite(store, c, 1)
		r.RegisterNew(c.FP, loc)
		cs = append(cs, c)
	}
	store.Flush(context.Background())
	// Resolving the first pays; the rest ride the prefetched metadata.
	r.Resolve(cs[0], &stats)
	for _, c := range cs[1:] {
		if _, dup := r.Resolve(c, &stats); !dup {
			t.Fatal("neighbour must be duplicate")
		}
	}
	if stats.IndexLookups != 1 {
		t.Fatalf("IndexLookups = %d, want 1 (locality-preserved caching)", stats.IndexLookups)
	}
	if stats.CacheHits != int64(len(cs)-1) {
		t.Fatalf("CacheHits = %d, want %d", stats.CacheHits, len(cs)-1)
	}
}

func TestResolverRepointWinsOverStaleMetadata(t *testing.T) {
	r, store, _ := newResolverRig(t)
	var stats BackupStats
	c := mkChunk(30)
	oldLoc := mustWrite(store, c, 1)
	r.RegisterNew(c.FP, oldLoc)
	store.Flush(context.Background())
	// Cache the old container metadata.
	r.Resolve(c, &stats)
	// Rewrite the chunk elsewhere.
	newLoc := mustWrite(store, c, 2)
	r.Repoint(c.FP, newLoc)
	store.Flush(context.Background())
	got, dup := r.Resolve(c, &stats)
	if !dup || got != newLoc {
		t.Fatalf("Resolve after Repoint = %v, want the rewritten location %v", got, newLoc)
	}
}

// --- oracle helpers ---

func TestObserveSegmentNilOracle(t *testing.T) {
	var stats BackupStats
	seg := &segment.Segment{Chunks: []chunk.Chunk{mkChunk(1)}, Bytes: 100}
	if got := ObserveSegment(nil, seg, &stats); got != 0 {
		t.Fatal("nil oracle must observe nothing")
	}
}

func TestObserveSegmentCounts(t *testing.T) {
	o := cindex.NewOracle()
	var stats BackupStats
	seg := &segment.Segment{Chunks: []chunk.Chunk{mkChunk(1), mkChunk(1), mkChunk(2)}, Bytes: 300}
	dup := ObserveSegment(o, seg, &stats)
	if dup != 100 {
		t.Fatalf("dup = %d, want 100 (second occurrence of chunk 1)", dup)
	}
	if stats.OracleRedundantBytes != 100 {
		t.Fatalf("OracleRedundantBytes = %d", stats.OracleRedundantBytes)
	}
}

func TestAccountPartialSegment(t *testing.T) {
	o := cindex.NewOracle()
	seg := &segment.Segment{Bytes: 300}
	var stats BackupStats

	AccountPartialSegment(nil, seg, 100, 50, &stats) // nil oracle: no-op
	AccountPartialSegment(o, seg, 0, 0, &stats)      // no redundancy: no-op
	AccountPartialSegment(o, seg, 300, 300, &stats)  // fully redundant: excluded
	if stats.PartialRedundantBytes != 0 {
		t.Fatalf("excluded cases leaked: %+v", stats)
	}
	AccountPartialSegment(o, seg, 100, 150, &stats) // removal clamps to oracle dup
	if stats.PartialRedundantBytes != 100 || stats.RemovedInPartialBytes != 100 {
		t.Fatalf("clamping wrong: %+v", stats)
	}
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}
