package engine

import (
	"repro/internal/chunk"
	"repro/internal/telemetry"
)

// Telemetry: the engine_filter_* surface on /metrics.
var (
	telFilterInline = telemetry.NewCounter(
		telemetry.Name("engine_filter_streams_total", "verdict", "inline"),
		"inline-filter stream verdicts: inline (duplicates cluster, dedup in line) or spill (write through, re-dedup out of line)")
	telFilterSpill = telemetry.NewCounter(
		telemetry.Name("engine_filter_streams_total", "verdict", "spill"), "")
	telFilterSpilledBytes = telemetry.NewCounter("engine_filter_spilled_bytes_total",
		"duplicate bytes written through by spilled streams, pending out-of-line re-dedup")
	telFilterSpilledChunks = telemetry.NewCounter("engine_filter_spilled_chunks_total",
		"duplicate chunks written through by spilled streams")
)

// FilterConfig parameterizes the HPDedup-style prioritized inline filter
// (arXiv 1702.08153). Primary-storage streams have mixed duplicate locality:
// some streams' duplicates cluster in recent containers (inline dedup
// resolves them from the RAM locality caches almost for free), others
// scatter across cold history (every duplicate costs a charged index page
// read and a container-metadata prefetch that never amortizes). The filter
// watches each stream through a probation prefix and demotes poorly
// clustered streams to spill mode: their probable duplicates are written
// through at sequential-write speed and reclaimed later by the maintenance
// pass's out-of-line re-dedup (maintenance.Config.Rededup).
type FilterConfig struct {
	// Enabled turns the filter on. Off, every stream dedups inline.
	Enabled bool
	// Probation is how many chunks of a stream are observed (deduping
	// inline, at full cost) before the verdict. Default 256.
	Probation int
	// MinDupFraction: streams whose observed duplicate share is below this
	// spill — inline lookups cannot pay for themselves. Default 0.05.
	MinDupFraction float64
	// MinClusterScore: the duplicate-locality bar. A duplicate scores as
	// clustered when it resolves to a recently written container (within
	// RecencyContainers of the write head) — the region the RAM locality
	// caches cover; streams whose clustered share is below this spill.
	// Default 0.5.
	MinClusterScore float64
	// RecencyContainers is the width, in containers behind the current
	// write head, of the region duplicates may resolve to and still count
	// as clustered. Default 4 (16 MiB at the default container size).
	RecencyContainers int
}

func (c FilterConfig) withDefaults() FilterConfig {
	if c.Probation <= 0 {
		c.Probation = 256
	}
	if c.MinDupFraction == 0 {
		c.MinDupFraction = 0.05
	}
	if c.MinClusterScore == 0 {
		c.MinClusterScore = 0.5
	}
	if c.RecencyContainers <= 0 {
		c.RecencyContainers = 4
	}
	return c
}

// Filter is the per-stream filter state. One Filter observes exactly one
// backup stream; the engines drive it from their (serial-per-stream)
// segment-processing path, so no locking is needed. A nil *Filter is the
// disabled filter: all methods are safe and report inline.
type Filter struct {
	cfg     FilterConfig
	chunks  int64
	dups    int64
	recent  int64
	decided bool
	spill   bool
}

// NewFilter builds the per-stream state, or nil when cfg is disabled.
func NewFilter(cfg FilterConfig) *Filter {
	if !cfg.Enabled {
		return nil
	}
	return &Filter{cfg: cfg.withDefaults()}
}

// Observe feeds one probation-phase chunk resolution. loc is meaningful only
// for duplicates; head is the container store's current allocated-ID head,
// so head-loc.Container is how far behind the write frontier the duplicate's
// stored copy lives.
func (f *Filter) Observe(dup bool, loc chunk.Location, head uint32) {
	if f == nil || f.decided {
		return
	}
	f.chunks++
	if dup {
		f.dups++
		if head <= loc.Container+uint32(f.cfg.RecencyContainers) {
			f.recent++
		}
	}
	if f.chunks >= int64(f.cfg.Probation) {
		f.decide()
	}
}

// decide closes probation and fixes the stream's verdict.
func (f *Filter) decide() {
	f.decided = true
	dupFrac := float64(f.dups) / float64(f.chunks)
	clusterFrac := 1.0
	if f.dups > 0 {
		clusterFrac = float64(f.recent) / float64(f.dups)
	}
	// A stream earns inline dedup only when duplicates are worth finding
	// AND finding them exhibits the locality the caches feed on.
	f.spill = dupFrac < f.cfg.MinDupFraction || clusterFrac < f.cfg.MinClusterScore
	if f.spill {
		telFilterSpill.Inc()
	} else {
		telFilterInline.Inc()
	}
}

// Spilling reports whether the stream has been demoted to write-through.
func (f *Filter) Spilling() bool { return f != nil && f.decided && f.spill }

// AccountSpill records one duplicate chunk of n bytes written through by a
// spilled stream.
func AccountSpill(n int64) {
	telFilterSpilledBytes.Add(n)
	telFilterSpilledChunks.Inc()
}
