package engine

import (
	"testing"

	"repro/internal/chunk"
)

// feed pushes n observations with the given dup/location shape and returns
// the filter afterwards.
func feed(f *Filter, n int, dup bool, container, head uint32) {
	for i := 0; i < n; i++ {
		f.Observe(dup, chunk.Location{Container: container}, head)
	}
}

func TestFilterNilIsInline(t *testing.T) {
	var f *Filter
	f.Observe(true, chunk.Location{}, 0) // must not panic
	if f.Spilling() {
		t.Fatal("nil filter must never spill")
	}
	if NewFilter(FilterConfig{}) != nil {
		t.Fatal("disabled config must yield nil filter")
	}
}

func TestFilterNoVerdictDuringProbation(t *testing.T) {
	f := NewFilter(FilterConfig{Enabled: true, Probation: 10})
	feed(f, 9, false, 0, 100) // all unique, but probation not over
	if f.Spilling() {
		t.Fatal("verdict before probation ends")
	}
	f.Observe(false, chunk.Location{}, 100)
	if !f.Spilling() {
		t.Fatal("all-unique stream must spill once probation closes")
	}
}

func TestFilterLowDupFractionSpills(t *testing.T) {
	f := NewFilter(FilterConfig{Enabled: true, Probation: 100, MinDupFraction: 0.05, RecencyContainers: 4})
	feed(f, 2, true, 99, 100) // 2% dups, and even recent ones
	feed(f, 98, false, 0, 100)
	if !f.Spilling() {
		t.Fatal("2% dup fraction below the 5% bar must spill")
	}
}

func TestFilterRecentDuplicatesStayInline(t *testing.T) {
	f := NewFilter(FilterConfig{Enabled: true, Probation: 100, RecencyContainers: 4})
	// Half the chunks are duplicates resolving 0–3 containers behind head.
	for i := 0; i < 50; i++ {
		f.Observe(true, chunk.Location{Container: uint32(97 + i%4)}, 100)
	}
	feed(f, 50, false, 0, 100)
	if f.Spilling() {
		t.Fatal("well-clustered duplicates must dedup inline")
	}
}

func TestFilterDispersedDuplicatesSpill(t *testing.T) {
	f := NewFilter(FilterConfig{Enabled: true, Probation: 100, RecencyContainers: 4})
	// Same dup fraction, but the copies live far behind the write head.
	for i := 0; i < 50; i++ {
		f.Observe(true, chunk.Location{Container: uint32(i % 20)}, 100)
	}
	feed(f, 50, false, 0, 100)
	if !f.Spilling() {
		t.Fatal("dispersed duplicates must spill to out-of-line re-dedup")
	}
}

func TestFilterClusterScoreIsAFraction(t *testing.T) {
	// 60% of dups recent with MinClusterScore 0.5 → inline; 40% → spill.
	mk := func(recent, far int) *Filter {
		f := NewFilter(FilterConfig{Enabled: true, Probation: 100, RecencyContainers: 4, MinClusterScore: 0.5})
		feed(f, recent, true, 98, 100)
		feed(f, far, true, 1, 100)
		feed(f, 100-recent-far, false, 0, 100)
		return f
	}
	if mk(30, 20).Spilling() {
		t.Fatal("60% clustered should stay inline at a 50% bar")
	}
	if !mk(20, 30).Spilling() {
		t.Fatal("40% clustered should spill at a 50% bar")
	}
}

func TestFilterVerdictIsSticky(t *testing.T) {
	f := NewFilter(FilterConfig{Enabled: true, Probation: 10, RecencyContainers: 4})
	feed(f, 10, true, 1, 100) // dispersed → spill
	if !f.Spilling() {
		t.Fatal("expected spill verdict")
	}
	// Post-verdict observations (spill path never calls Observe, but the
	// contract is that extra calls cannot flip the verdict).
	feed(f, 1000, true, 99, 100)
	if !f.Spilling() {
		t.Fatal("verdict flipped after decision")
	}
}

func TestFilterDefaults(t *testing.T) {
	cfg := FilterConfig{Enabled: true}.withDefaults()
	if cfg.Probation != 256 || cfg.MinDupFraction != 0.05 ||
		cfg.MinClusterScore != 0.5 || cfg.RecencyContainers != 4 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
