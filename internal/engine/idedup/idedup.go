// Package idedup implements an iDedup-style engine (Srinivasan et al.,
// FAST'12 — the paper's citation [3]): latency-aware selective inline
// deduplication. Where DeFrag judges locality per segment with SPL, iDedup
// judges it per *duplicate run*: a duplicate is removed only when it belongs
// to a run of at least MinRun consecutive chunks that are duplicates AND
// whose stored copies are physically contiguous on disk. Short or scattered
// duplicate runs are written again, so a restore never pays a seek for less
// than MinRun chunks' worth of data.
//
// iDedup targets primary storage, where the dedup metadata lives in RAM;
// accordingly this engine resolves duplicates against an in-RAM index and
// charges no index-lookup disk time — its costs are chunking CPU plus
// container writes. Its interesting outputs here are deduplication
// efficiency (what fraction of redundancy survives the run-length filter)
// and restore performance (bounded fragmentation), compared with DeFrag's
// SPL approach.
package idedup

import (
	"context"
	"io"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/segment"
)

// Config parameterizes an iDedup-style engine.
type Config struct {
	Chunker      chunker.Kind
	ChunkParams  chunker.Params
	SegParams    segment.Params
	ContainerCfg container.Config
	DiskModel    disk.Model
	Cost         engine.CostModel

	// MinRun is the minimum duplicate-sequence length (in chunks) that is
	// deduplicated; shorter runs are rewritten. The FAST'12 paper explores
	// thresholds in this order of magnitude.
	MinRun    int
	StoreData bool
	// Backend supplies the physical container store. nil selects the
	// in-memory backend matching StoreData (the historical behavior).
	Backend blockstore.Backend
}

// DefaultConfig returns an engine with MinRun 8 (~64 KiB of contiguous
// duplicates at 8 KiB chunks).
func DefaultConfig(expectedLogicalBytes int64) Config {
	_ = expectedLogicalBytes // in-RAM index: no size-dependent structures
	return Config{
		Chunker:      chunker.KindGear,
		ChunkParams:  chunker.DefaultParams(),
		SegParams:    segment.DefaultParams(),
		ContainerCfg: container.DefaultConfig(),
		DiskModel:    disk.DefaultModel(),
		Cost:         engine.DefaultCostModel(),
		MinRun:       8,
	}
}

// Engine is the iDedup-style deduplicator.
type Engine struct {
	cfg   Config
	clock *disk.Clock
	store *container.Store

	// ram is the in-RAM chunk index: fingerprint → newest location.
	ram map[chunk.Fingerprint]chunk.Location

	oracle *cindex.Oracle
	segSeq uint64
}

// New builds an engine over a fresh clock.
func New(cfg Config) (*Engine, error) {
	return NewWithClock(cfg, &disk.Clock{})
}

// NewWithClock builds the engine over a caller-supplied clock.
func NewWithClock(cfg Config, clock *disk.Clock) (*Engine, error) {
	be := cfg.Backend
	if be == nil {
		be = blockstore.NewSim(cfg.StoreData)
	}
	// The device is purely the timing model; bytes live in the backend.
	store, err := container.NewStoreWithBackend(disk.NewDevice(cfg.DiskModel, clock, false), cfg.ContainerCfg, be)
	if err != nil {
		return nil, err
	}
	if cfg.MinRun < 1 {
		cfg.MinRun = 1
	}
	return &Engine{
		cfg:   cfg,
		clock: clock,
		store: store,
		ram:   make(map[chunk.Fingerprint]chunk.Location, 4096),
	}, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "idedup" }

// Containers implements engine.Engine.
func (e *Engine) Containers() *container.Store { return e.store }

// Clock implements engine.Engine.
func (e *Engine) Clock() *disk.Clock { return e.clock }

// MinRun returns the configured run threshold.
func (e *Engine) MinRun() int { return e.cfg.MinRun }

// SetOracle attaches the ground-truth oracle.
func (e *Engine) SetOracle(o *cindex.Oracle) { e.oracle = o }

// Backup implements engine.Engine.
func (e *Engine) Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, engine.BackupStats, error) {
	stats := engine.BackupStats{Label: label}
	recipe := &chunk.Recipe{Label: label}
	start := e.clock.Now()

	logical, chunks, segs, err := engine.Pipeline(
		ctx, r, e.cfg.Chunker, e.cfg.ChunkParams, e.cfg.SegParams,
		e.clock, e.cfg.Cost, e.store.StoresData(),
		func(seg *segment.Segment) error {
			return e.processSegment(ctx, seg, recipe, &stats)
		})
	if err != nil {
		// Keep the store consistent on abort: seal the open container
		// outside the (possibly cancelled) context.
		e.store.Flush(context.WithoutCancel(ctx)) //nolint:errcheck // best-effort cleanup
		return nil, stats, err
	}
	if err := e.store.Flush(ctx); err != nil {
		return nil, stats, err
	}

	stats.LogicalBytes = logical
	stats.Chunks = chunks
	stats.Segments = segs
	stats.Duration = e.clock.Now() - start
	return recipe, stats, nil
}

// processSegment applies the run-length dedup filter to one segment. The error
// return propagates future failing write paths through Backup.
func (e *Engine) processSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats) error {
	e.segSeq++
	segID := e.segSeq
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)

	// Phase 1: resolve every chunk against the RAM index (free).
	type res struct {
		loc chunk.Location
		dup bool
	}
	rs := make([]res, len(seg.Chunks))
	for i, c := range seg.Chunks {
		loc, ok := e.ram[c.FP]
		rs[i] = res{loc: loc, dup: ok}
	}

	// Phase 2: mark the duplicate runs that pass the filter — at least
	// MinRun consecutive duplicates whose stored copies are physically
	// contiguous.
	keep := make([]bool, len(seg.Chunks)) // keep = dedupe (remove)
	i := 0
	for i < len(rs) {
		if !rs[i].dup {
			i++
			continue
		}
		// Extend a physically contiguous duplicate run.
		j := i + 1
		for j < len(rs) && rs[j].dup &&
			rs[j].loc.Offset == rs[j-1].loc.Offset+int64(rs[j-1].loc.Size) {
			j++
		}
		if j-i >= e.cfg.MinRun {
			for k := i; k < j; k++ {
				keep[k] = true
			}
		}
		i = j
	}

	// Phase 3: place. Filtered-out duplicates are rewritten (RewrittenBytes
	// — the same accounting DeFrag uses for deliberately unremoved
	// redundancy).
	var removedInSeg int64
	writtenHere := make(map[chunk.Fingerprint]chunk.Location)
	for i, c := range seg.Chunks {
		switch {
		case keep[i]:
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			removedInSeg += int64(c.Size)
			recipe.Append(c.FP, c.Size, rs[i].loc)
		default:
			if loc, again := writtenHere[c.FP]; again {
				stats.DedupedBytes += int64(c.Size)
				stats.DedupedChunks++
				removedInSeg += int64(c.Size)
				recipe.Append(c.FP, c.Size, loc)
				continue
			}
			loc, werr := e.store.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			e.ram[c.FP] = loc
			writtenHere[c.FP] = loc
			if rs[i].dup {
				stats.RewrittenBytes += int64(c.Size)
				stats.RewrittenChunks++
			} else {
				stats.UniqueBytes += int64(c.Size)
				stats.UniqueChunks++
			}
			recipe.Append(c.FP, c.Size, loc)
		}
	}

	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

var _ engine.Engine = (*Engine)(nil)
