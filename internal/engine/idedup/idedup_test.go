package idedup

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/cindex"
	"repro/internal/enginetest"
)

func testConfig(minRun int, storeData bool) Config {
	cfg := DefaultConfig(64 << 20)
	cfg.MinRun = minRun
	cfg.StoreData = storeData
	return cfg
}

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAllUniqueBackup(t *testing.T) {
	e, err := New(testConfig(8, false))
	if err != nil {
		t.Fatal(err)
	}
	data := randStream(4<<20, 1)
	_, st, err := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	enginetest.CheckConservation(t, st)
	if st.DedupedBytes != 0 || st.UniqueBytes != int64(len(data)) {
		t.Fatalf("random stream stats wrong: %+v", st)
	}
}

func TestIdenticalSecondBackupDedupesLongRuns(t *testing.T) {
	e, _ := New(testConfig(8, false))
	data := randStream(6<<20, 2)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	_, st, err := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// An identical stream is one giant physically-contiguous duplicate run
	// per container: nearly everything passes the filter.
	if frac := float64(st.DedupedBytes) / float64(st.LogicalBytes); frac < 0.9 {
		t.Fatalf("identical re-backup deduped only %.1f%%", frac*100)
	}
	if st.IndexLookups != 0 {
		t.Fatal("iDedup uses a RAM index; no charged lookups")
	}
}

func TestMinRunOneIsExact(t *testing.T) {
	e, _ := New(testConfig(1, false))
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(3), 4)
	for g, gr := range gens {
		if gr.Stats.DedupedBytes != gr.Stats.OracleRedundantBytes {
			t.Fatalf("gen %d: MinRun=1 should be exact: %d != %d",
				g, gr.Stats.DedupedBytes, gr.Stats.OracleRedundantBytes)
		}
	}
}

func TestHigherMinRunRewritesMore(t *testing.T) {
	run := func(minRun int) int64 {
		e, _ := New(testConfig(minRun, false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(5), 6)
		var rw int64
		for _, gr := range gens {
			rw += gr.Stats.RewrittenBytes
		}
		return rw
	}
	low, high := run(2), run(32)
	if high <= low {
		t.Fatalf("MinRun=32 should rewrite more than MinRun=2: %d vs %d", high, low)
	}
}

func TestFragmentationBoundedByRunFilter(t *testing.T) {
	// With MinRun=8 every deduped run spans ≥8 chunks, so the recipe's
	// bytes-per-fragment must be at least ~8 small chunks' worth.
	e, _ := New(testConfig(8, false))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(7), 8)
	last := gens[7]
	meanRun := float64(last.Recipe.Bytes()) / float64(last.Recipe.Fragments())
	minChunk := 2048.0 // chunker minimum
	if meanRun < 4*minChunk {
		t.Fatalf("mean fragment %.0f bytes; run filter should keep fragments coarse", meanRun)
	}
}

func TestRestoreCorrectness(t *testing.T) {
	e, _ := New(testConfig(8, true))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(9), 5)
	enginetest.VerifyRestores(t, e, gens)
}

func TestNameAndAccessors(t *testing.T) {
	e, _ := New(testConfig(8, false))
	if e.Name() != "idedup" {
		t.Fatal("name")
	}
	if e.MinRun() != 8 || e.Containers() == nil || e.Clock() == nil {
		t.Fatal("accessors")
	}
}

func TestMinRunClamped(t *testing.T) {
	e, _ := New(testConfig(0, false))
	if e.cfg.MinRun != 1 {
		t.Fatal("MinRun must clamp to 1")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e, _ := New(testConfig(8, false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(13), 3)
		return gens[2].Stats.UniqueBytes, gens[2].Stats.RewrittenBytes
	}
	u1, r1 := run()
	u2, r2 := run()
	if u1 != u2 || r1 != r2 {
		t.Fatal("engine not deterministic")
	}
}
