package engine

import (
	"repro/internal/cindex"
	"repro/internal/segment"
)

// ObserveSegment runs the ground-truth oracle over one segment in stream
// order (if an oracle is attached), accumulates the backup-level
// OracleRedundantBytes, and returns the segment's oracle-redundant bytes.
// Engines call this once per segment before making any dedup decision.
func ObserveSegment(o *cindex.Oracle, seg *segment.Segment, stats *BackupStats) int64 {
	if o == nil {
		return 0
	}
	var dup int64
	for _, c := range seg.Chunks {
		if o.Observe(c.FP, c.Size) {
			dup += int64(c.Size)
		}
	}
	stats.OracleRedundantBytes += dup
	return dup
}

// AccountPartialSegment applies the paper's Fig. 3/Fig. 5 restriction: only
// segments that are *partially* redundant (0 < redundant < total) count
// toward the efficiency metric. removed is the number of redundant bytes the
// engine actually removed within this segment.
func AccountPartialSegment(o *cindex.Oracle, seg *segment.Segment, oracleDup, removed int64, stats *BackupStats) {
	if o == nil || oracleDup == 0 || oracleDup >= seg.Bytes {
		return
	}
	stats.PartialRedundantBytes += oracleDup
	if removed > oracleDup {
		removed = oracleDup // an engine cannot remove more than exists
	}
	stats.RemovedInPartialBytes += removed
}
