package engine

import (
	"context"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/disk"
	"repro/internal/segment"
)

// ParallelPipeline is Pipeline with the fingerprinting stage fanned out
// across worker goroutines (the P-Dedupe idea the paper's venue literature
// describes: chunking is sequential by nature, hashing is embarrassingly
// parallel, dedup decisions must stay in stream order).
//
// Structure:
//
//	chunker (sequential) → [workers × SHA-256] → ordered merge →
//	segmenter → process (sequential)
//
// The simulated-time accounting is identical to Pipeline — the CPU cost
// model charges the same bytes; parallelism buys real wall-clock time for
// the simulation itself, not simulated time (a real system would also
// divide the modeled CPU term, which the CostModel caller can express by
// raising CPUBandwidth). Results are bit-identical to Pipeline for the
// same input.
func ParallelPipeline(
	ctx context.Context,
	r io.Reader,
	kind chunker.Kind,
	cp chunker.Params,
	sp segment.Params,
	clock *disk.Clock,
	cost CostModel,
	keepData bool,
	workers int,
	process func(*segment.Segment) error,
) (logicalBytes, chunks, segments int64, err error) {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		// One lane (or a single-core host): the worker machinery is pure
		// overhead — run the serial pipeline.
		serial := cost
		serial.Workers = 0
		return Pipeline(ctx, r, kind, cp, sp, clock, serial, keepData, process)
	}
	cost.Workers = 0 // the charge below is already per-chunk; avoid re-dispatch

	ck, err := chunker.New(kind, r, cp)
	if err != nil {
		return 0, 0, 0, err
	}
	sg, err := segment.New(sp)
	if err != nil {
		return 0, 0, 0, err
	}

	// Chunks are hashed in batches: SHA-256 of an 8 KiB chunk is far
	// cheaper than a channel round trip, so per-chunk handoff would make
	// the pool slower than the serial loop.
	const batchChunks = 64
	type job struct {
		data []byte // concatenated chunk bytes
		ends []int  // end offset of each chunk within data
		res  []chunk.Chunk
		out  chan []chunk.Chunk
	}
	// Job buffers (chunk bytes, end offsets, result slices, handoff
	// channels) are recycled through a pool: steady-state ingest allocates
	// no per-batch buffers, which matters once several streams run this
	// pipeline at once. Recycling happens on the consumer side, and only
	// when !keepData — with keepData the emitted chunks alias job.data.
	pool := sync.Pool{New: func() any { return &job{out: make(chan []chunk.Chunk, 1)} }}
	// Bounded queue: the chunker stays ahead of the hashers without
	// buffering the whole stream.
	jobs := make(chan *job, workers*2)
	// Order-preserving handoff: each job carries its own result channel;
	// the consumer reads jobs' channels in submission order.
	pending := make(chan *job, workers*2)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				out := j.res[:0]
				start := 0
				for _, end := range j.ends {
					c := chunk.New(j.data[start:end])
					if !keepData {
						c.Data = nil
					}
					out = append(out, c)
					start = end
				}
				j.res = out
				stageHash.Observe(t0) // one observation per batch of chunks
				j.out <- out
			}
		}()
	}

	var chunkErr error
	getJob := func() *job {
		j := pool.Get().(*job)
		j.data = j.data[:0]
		j.ends = j.ends[:0]
		return j
	}
	go func() {
		defer close(jobs)
		defer close(pending)
		cur := getJob()
		flush := func() {
			if len(cur.ends) == 0 {
				return
			}
			pending <- cur
			jobs <- cur
			cur = getJob()
		}
		for {
			t0 := time.Now()
			raw, cerr := ck.Next()
			stageChunk.Observe(t0)
			if cerr == io.EOF {
				flush()
				return
			}
			if cerr != nil {
				flush()
				chunkErr = cerr
				return
			}
			// The chunker reuses its buffer; the job owns a copy.
			cur.data = append(cur.data, raw...)
			cur.ends = append(cur.ends, len(cur.data))
			if len(cur.ends) >= batchChunks {
				flush()
			}
		}
	}()

	emit := func(seg *segment.Segment) error {
		if seg == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		segments++
		telSegments.Inc()
		return process(seg)
	}
	abort := func(err error) (int64, int64, int64, error) {
		// Drain the producer so goroutines exit before returning.
		go func() {
			for range pending {
			}
		}()
		wg.Wait()
		return logicalBytes, chunks, segments, err
	}
	for j := range pending {
		for _, c := range <-j.out {
			cost.ChargeCPU(clock, int64(c.Size))
			logicalBytes += int64(c.Size)
			chunks++
			telChunks.Inc()
			telBytes.Add(int64(c.Size))
			telChunkSize.Observe(float64(c.Size))
			if err := emit(sg.Add(c)); err != nil {
				return abort(err)
			}
		}
		if !keepData {
			pool.Put(j)
		}
	}
	wg.Wait()
	if chunkErr != nil {
		return logicalBytes, chunks, segments, chunkErr
	}
	if err := emit(sg.Finish()); err != nil {
		return logicalBytes, chunks, segments, err
	}
	return logicalBytes, chunks, segments, nil
}
