package engine

import (
	"context"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/disk"
	"repro/internal/segment"
)

// hashFaultHook, when non-nil, is called by hash workers for every chunk
// they fingerprint and lets tests inject a mid-batch worker failure. It must
// be set before a pipeline starts and cleared after it finishes.
var hashFaultHook func(chunk.Chunk) error

// ParallelPipeline is Pipeline with the fingerprinting stage fanned out
// across worker goroutines (the P-Dedupe idea the paper's venue literature
// describes: chunking is sequential by nature, hashing is embarrassingly
// parallel, dedup decisions must stay in stream order).
//
// Structure:
//
//	chunker (sequential) → bounded SPMC queue → [workers × SHA-256] →
//	in-order resequencing → segmenter → process (sequential)
//
// The simulated-time accounting is identical to Pipeline — the CPU cost
// model charges the same bytes; parallelism buys real wall-clock time for
// the simulation itself, not simulated time (a real system would also
// divide the modeled CPU term, which the CostModel caller can express by
// raising CPUBandwidth). Results are bit-identical to Pipeline for the
// same input.
//
// Chunk bytes flow zero-copy end to end: the producer copies each chunk
// once from the chunker window into a pooled job buffer, workers and the
// segment path alias that buffer, and the job is recycled once every chunk
// in it has passed through a processed segment.
func ParallelPipeline(
	ctx context.Context,
	r io.Reader,
	kind chunker.Kind,
	cp chunker.Params,
	sp segment.Params,
	clock *disk.Clock,
	cost CostModel,
	keepData bool,
	workers int,
	process func(*segment.Segment) error,
) (logicalBytes, chunks, segments int64, err error) {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		// One lane (or a single-core host): the worker machinery is pure
		// overhead — run the serial pipeline. Workers = 1 means "explicitly
		// serial" (0 would re-resolve to GOMAXPROCS and recurse).
		serial := cost
		serial.Workers = 1
		return Pipeline(ctx, r, kind, cp, sp, clock, serial, keepData, process)
	}
	cost.Workers = 1 // the charge below is already per-chunk; avoid re-dispatch

	ck, err := chunker.New(kind, r, cp)
	if err != nil {
		return 0, 0, 0, err
	}
	sg, err := segment.New(sp)
	if err != nil {
		return 0, 0, 0, err
	}

	// Chunks are hashed in batches: SHA-256 of an 8 KiB chunk is far
	// cheaper than a channel round trip, so per-chunk handoff would make
	// the pool slower than the serial loop.
	const batchChunks = 64
	type job struct {
		data []byte // concatenated chunk bytes
		ends []int  // end offset of each chunk within data
		res  []chunk.Chunk
		err  error // injected worker fault (hashFaultHook)
		out  chan []chunk.Chunk
	}
	// Job buffers (chunk bytes, end offsets, result slices, handoff
	// channels) are recycled through a pool: steady-state ingest allocates
	// no per-batch buffers, which matters once several streams run this
	// pipeline at once. Without keepData a job recycles as soon as the
	// consumer drains it; with keepData the emitted chunks alias job.data,
	// so drained jobs park on a retire list until the next processed
	// segment proves every chunk added so far has been consumed.
	pool := sync.Pool{New: func() any { return &job{out: make(chan []chunk.Chunk, 1)} }}
	// Bounded queue: the chunker stays ahead of the hashers without
	// buffering the whole stream.
	jobs := make(chan *job, workers*2)
	// Order-preserving handoff: each job carries its own result channel;
	// the consumer reads jobs' channels in submission order.
	pending := make(chan *job, workers*2)
	// stop tells the producer the consumer gave up (process error, ctx
	// cancellation) so it cuts the stream short instead of chunking to EOF.
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				out := j.res[:0]
				start := 0
				for _, end := range j.ends {
					c := chunk.New(j.data[start:end:end])
					if !keepData {
						c.Data = nil
					}
					if hashFaultHook != nil {
						if ferr := hashFaultHook(c); ferr != nil {
							j.err = ferr
							break
						}
					}
					out = append(out, c)
					start = end
				}
				j.res = out
				stageHash.Observe(t0) // one observation per batch of chunks
				j.out <- out
			}
		}()
	}

	var chunkErr error
	getJob := func() *job {
		j := pool.Get().(*job)
		j.data = j.data[:0]
		j.ends = j.ends[:0]
		j.err = nil
		return j
	}
	go func() {
		defer close(jobs)
		defer close(pending)
		cur := getJob()
		flush := func() {
			if len(cur.ends) == 0 {
				return
			}
			pending <- cur
			jobs <- cur
			cur = getJob()
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if cerr := ctx.Err(); cerr != nil {
				chunkErr = cerr
				return
			}
			t0 := time.Now()
			raw, cerr := ck.Next()
			stageChunk.Observe(t0)
			if cerr == io.EOF {
				flush()
				return
			}
			if cerr != nil {
				flush()
				chunkErr = cerr
				return
			}
			// The chunker reuses its window; the job owns the single copy.
			cur.data = append(cur.data, raw...)
			cur.ends = append(cur.ends, len(cur.data))
			if len(cur.ends) >= batchChunks {
				flush()
			}
		}
	}()

	var retired []*job
	emit := func(seg *segment.Segment) error {
		if seg == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		segments++
		telSegments.Inc()
		if err := process(seg); err != nil {
			return err
		}
		// The processed segment contained every chunk added since the last
		// emit, so all drained jobs' bytes are dead — recycle them.
		for _, rj := range retired {
			pool.Put(rj)
		}
		retired = retired[:0]
		return nil
	}
	abort := func(err error) (int64, int64, int64, error) {
		// Stop the producer, then drain it so all goroutines exit before
		// returning (no leaks even when the stream is far from EOF).
		close(stop)
		go func() {
			for j := range pending {
				<-j.out
			}
		}()
		wg.Wait()
		return logicalBytes, chunks, segments, err
	}
	for j := range pending {
		res := <-j.out
		if j.err != nil {
			return abort(j.err)
		}
		for _, c := range res {
			cost.ChargeCPU(clock, int64(c.Size))
			logicalBytes += int64(c.Size)
			chunks++
			telChunks.Inc()
			telBytes.Add(int64(c.Size))
			telChunkSize.Observe(float64(c.Size))
			if err := emit(sg.Add(c)); err != nil {
				return abort(err)
			}
		}
		if !keepData {
			pool.Put(j)
		} else {
			retired = append(retired, j)
		}
	}
	wg.Wait()
	if chunkErr != nil {
		return logicalBytes, chunks, segments, chunkErr
	}
	if err := emit(sg.Finish()); err != nil {
		return logicalBytes, chunks, segments, err
	}
	return logicalBytes, chunks, segments, nil
}
