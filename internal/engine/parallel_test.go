package engine

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/disk"
	"repro/internal/segment"
)

// runPipeline collects everything a pipeline run produces, for equivalence
// comparison.
type pipelineTrace struct {
	logical, chunks, segments int64
	clock                     disk.Clock
	fps                       []chunk.Fingerprint
	segSizes                  []int64
}

func tracePipeline(t *testing.T, data []byte, workers int, keepData bool) *pipelineTrace {
	t.Helper()
	tr := &pipelineTrace{}
	cost := DefaultCostModel()
	cost.Workers = workers
	var err error
	tr.logical, tr.chunks, tr.segments, err = Pipeline(context.Background(),
		bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &tr.clock, cost, keepData,
		func(s *segment.Segment) error {
			tr.segSizes = append(tr.segSizes, s.Bytes)
			for _, c := range s.Chunks {
				tr.fps = append(tr.fps, c.FP)
				if keepData && c.Data == nil {
					t.Fatal("keepData lost")
				}
				if !keepData && c.Data != nil {
					t.Fatal("data should be dropped")
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// forceParallel raises GOMAXPROCS so the concurrent path actually runs
// even on single-core hosts (the pipeline clamps workers to GOMAXPROCS).
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestParallelPipelineEquivalence(t *testing.T) {
	forceParallel(t)
	data := randBytes(6<<20, 1)
	serial := tracePipeline(t, data, 1, false)
	for _, workers := range []int{2, 4, 8} {
		par := tracePipeline(t, data, workers, false)
		if par.logical != serial.logical || par.chunks != serial.chunks || par.segments != serial.segments {
			t.Fatalf("workers=%d counters differ: %+v vs %+v", workers, par, serial)
		}
		if par.clock.Now() != serial.clock.Now() {
			t.Fatalf("workers=%d simulated time differs: %v vs %v", workers, par.clock.Now(), serial.clock.Now())
		}
		if len(par.fps) != len(serial.fps) {
			t.Fatalf("workers=%d chunk count differs", workers)
		}
		for i := range par.fps {
			if par.fps[i] != serial.fps[i] {
				t.Fatalf("workers=%d chunk %d out of order", workers, i)
			}
		}
		for i := range par.segSizes {
			if par.segSizes[i] != serial.segSizes[i] {
				t.Fatalf("workers=%d segment %d differs", workers, i)
			}
		}
	}
}

func TestParallelPipelineKeepData(t *testing.T) {
	forceParallel(t)
	data := randBytes(2<<20, 2)
	var rebuilt []byte
	cost := DefaultCostModel()
	cost.Workers = 4
	var clk disk.Clock
	_, _, _, err := Pipeline(context.Background(),
		bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, cost, true,
		func(s *segment.Segment) error {
			for _, c := range s.Chunks {
				if chunk.Of(c.Data) != c.FP {
					t.Fatal("fingerprint mismatch")
				}
				rebuilt = append(rebuilt, c.Data...)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("parallel pipeline corrupted the stream")
	}
}

func TestParallelPipelineErrorPropagation(t *testing.T) {
	forceParallel(t)
	cost := DefaultCostModel()
	cost.Workers = 4
	var clk disk.Clock
	_, _, _, err := Pipeline(context.Background(),
		failReader{}, chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, cost, false,
		func(*segment.Segment) error { return nil })
	if err != io.ErrClosedPipe {
		t.Fatalf("err = %v, want ErrClosedPipe", err)
	}
}

func TestParallelPipelineProcessError(t *testing.T) {
	forceParallel(t)
	cost := DefaultCostModel()
	cost.Workers = 4
	var clk disk.Clock
	sentinel := io.ErrShortWrite
	_, _, _, err := Pipeline(context.Background(),
		bytes.NewReader(randBytes(4<<20, 3)), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, cost, false,
		func(*segment.Segment) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func BenchmarkPipelineSerial(b *testing.B) {
	benchPipeline(b, 1, false)
}

func BenchmarkPipelineParallel4(b *testing.B) {
	benchPipeline(b, 4, false)
}

// BenchmarkPipelineIngest is the full data-carrying ingest front half
// (chunk → hash → segment with keepData, auto worker pool), the number the
// wall-clock scaling work optimizes; b.SetBytes reports it as MB/s.
func BenchmarkPipelineIngest(b *testing.B) {
	benchPipeline(b, 0, true)
}

func benchPipeline(b *testing.B, workers int, keepData bool) {
	data := randBytes(16<<20, 7)
	cost := DefaultCostModel()
	cost.Workers = workers
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		var clk disk.Clock
		_, _, _, err := Pipeline(context.Background(),
			bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
			segment.DefaultParams(), &clk, cost, keepData,
			func(s *segment.Segment) error { sink += s.Bytes; return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}
