package engine

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/disk"
	"repro/internal/segment"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus slack for test machinery), failing with a full stack dump on a
// leak. The resequencing stage must not strand its producer, workers, or
// drainer no matter how the pipeline exits.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestPipelineAllocsPerChunk pins the zero-copy fix on the serial ingest
// hot path: one pooled arena copy per chunk, no per-chunk allocation. The
// old code allocated a fresh buffer per chunk (>= 1 alloc/chunk); the arena
// path amortizes to well under half an allocation per chunk.
func TestPipelineAllocsPerChunk(t *testing.T) {
	data := randBytes(4<<20, 11)
	cost := DefaultCostModel()
	cost.Workers = 1 // the serial loop is what owns the arena
	var chunks int64
	run := func() {
		var clk disk.Clock
		var sink int64
		_, n, _, err := Pipeline(context.Background(),
			bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
			segment.DefaultParams(), &clk, cost, true,
			func(s *segment.Segment) error {
				for _, c := range s.Chunks {
					sink += int64(len(c.Data))
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		chunks = n
	}
	allocs := testing.AllocsPerRun(3, run)
	perChunk := allocs / float64(chunks)
	if perChunk > 0.5 {
		t.Fatalf("%.2f allocs/chunk (%.0f allocs, %d chunks); the per-chunk copy is back",
			perChunk, allocs, chunks)
	}
}

// TestParallelPipelineHashFault injects a hash-worker failure mid-batch:
// the error must surface, every segment processed before it must be an
// in-order prefix of the serial run, and no pipeline goroutine may leak.
func TestParallelPipelineHashFault(t *testing.T) {
	forceParallel(t)
	data := randBytes(8<<20, 12)
	serial := tracePipeline(t, data, 1, false)

	base := runtime.NumGoroutine()
	sentinel := errors.New("injected hash fault")
	var seen atomic.Int64
	hashFaultHook = func(chunk.Chunk) error {
		// Fail deep enough into the stream that several batches are in
		// flight out of order when the fault hits.
		if seen.Add(1) == 300 {
			return sentinel
		}
		return nil
	}
	defer func() { hashFaultHook = nil }()

	cost := DefaultCostModel()
	cost.Workers = 4
	var clk disk.Clock
	var fps []chunk.Fingerprint
	_, _, _, err := Pipeline(context.Background(),
		bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, cost, false,
		func(s *segment.Segment) error {
			for _, c := range s.Chunks {
				fps = append(fps, c.FP)
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if len(fps) >= len(serial.fps) {
		t.Fatalf("fault did not cut the stream short (%d chunks processed)", len(fps))
	}
	for i, fp := range fps {
		if fp != serial.fps[i] {
			t.Fatalf("chunk %d out of order after mid-batch fault", i)
		}
	}
	waitGoroutines(t, base)
}

// TestParallelPipelineCtxCancel cancels the context from inside process
// while the producer is still far from EOF: the pipeline must return the
// context error promptly and tear down its producer/workers without leaks.
func TestParallelPipelineCtxCancel(t *testing.T) {
	forceParallel(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cost := DefaultCostModel()
	cost.Workers = 4
	var clk disk.Clock
	segs := 0
	_, _, _, err := Pipeline(ctx,
		bytes.NewReader(randBytes(32<<20, 13)), chunker.KindGear, chunker.DefaultParams(),
		segment.DefaultParams(), &clk, cost, true,
		func(*segment.Segment) error {
			segs++
			if segs == 2 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if segs < 2 {
		t.Fatalf("cancelled too early: %d segments", segs)
	}
	waitGoroutines(t, base)
}

// TestParallelPipelineKeepDataRecycled stresses the job-recycling path:
// with keepData on, job buffers are reused across segments, and the
// reassembled stream must still be byte-exact (a use-after-recycle would
// corrupt it or trip the fingerprint check).
func TestParallelPipelineKeepDataRecycled(t *testing.T) {
	forceParallel(t)
	data := randBytes(12<<20, 14)
	for _, workers := range []int{2, 4} {
		var rebuilt []byte
		cost := DefaultCostModel()
		cost.Workers = workers
		var clk disk.Clock
		_, _, _, err := Pipeline(context.Background(),
			bytes.NewReader(data), chunker.KindGear, chunker.DefaultParams(),
			segment.DefaultParams(), &clk, cost, true,
			func(s *segment.Segment) error {
				for _, c := range s.Chunks {
					if chunk.Of(c.Data) != c.FP {
						t.Fatal("fingerprint mismatch: recycled buffer reused too early")
					}
					rebuilt = append(rebuilt, c.Data...)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("workers=%d: recycled pipeline corrupted the stream", workers)
		}
	}
}
