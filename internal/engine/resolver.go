package engine

import (
	"repro/internal/bloom"
	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/lru"
)

// Resolver is the DDFS duplicate-identification machinery — summary vector
// (Bloom filter), on-disk full chunk index, and locality-preserved cache of
// container metadata — shared by the DDFS-Like engine and by DeFrag (whose
// §III-B design "works after finding out all the redundant data chunks and
// the correlated locations", i.e. on top of exactly this machinery).
type Resolver struct {
	filter *bloom.Filter
	index  *cindex.Index
	store  *container.Store

	lpc    *lru.Cache[uint32, []container.Meta]
	lpcFPs map[chunk.Fingerprint]lpcEntry

	// current holds the authoritative location of every chunk that Repoint
	// has moved (DeFrag's rewrite path). Container metadata is immutable, so
	// a cached container can serve stale locations for chunks whose newest
	// copy is a rewritten one; DeFrag's whole benefit depends on resolving
	// to the newest (linearized) copy, so this RAM-side current-location
	// table is consulted before the LPC. It only ever holds rewritten
	// chunks — it stays empty under plain DDFS.
	current map[chunk.Fingerprint]chunk.Location
}

type lpcEntry struct {
	loc chunk.Location
	cid uint32
}

// NewResolver builds the machinery over an existing index and container
// store. lpcContainers sizes the locality-preserved cache; expectedChunks
// sizes the Bloom filter.
func NewResolver(index *cindex.Index, store *container.Store, lpcContainers, expectedChunks int) *Resolver {
	if lpcContainers < 1 {
		lpcContainers = 1
	}
	if expectedChunks < 1 {
		expectedChunks = 1
	}
	r := &Resolver{
		filter:  bloom.New(expectedChunks, 0.01),
		index:   index,
		store:   store,
		lpc:     lru.New[uint32, []container.Meta](lpcContainers),
		lpcFPs:  make(map[chunk.Fingerprint]lpcEntry, 4096),
		current: make(map[chunk.Fingerprint]chunk.Location),
	}
	r.lpc.Instrument(nil, nil, telLPCEvictions)
	r.lpc.OnEvict(func(cid uint32, metas []container.Meta) {
		for _, m := range metas {
			if ent, ok := r.lpcFPs[m.FP]; ok && ent.cid == cid {
				delete(r.lpcFPs, m.FP)
			}
		}
	})
	return r
}

// Resolve decides whether c is a duplicate, charging the costs of the DDFS
// lookup path (free RAM checks; on LPC miss with positive summary vector,
// one index page read; on index hit, one container-metadata prefetch). It
// returns the stored location when c is a duplicate.
func (r *Resolver) Resolve(c chunk.Chunk, stats *BackupStats) (chunk.Location, bool) {
	// 0. Current-location table (RAM, free): chunks whose newest copy is a
	// DeFrag rewrite resolve to the linearized placement, never a stale
	// container-metadata entry.
	if loc, ok := r.current[c.FP]; ok {
		stats.CacheHits++
		telResolverCacheHits.Inc()
		return loc, true
	}
	// 1. Locality-preserved cache (RAM, free).
	if ent, ok := r.lpcFPs[c.FP]; ok {
		stats.CacheHits++
		telResolverCacheHits.Inc()
		r.lpc.Get(ent.cid) // refresh recency of the containing container
		return ent.loc, true
	}
	// 2. Summary vector (RAM, free). Negative → definitely new.
	if !r.filter.MayContain(c.FP) {
		telResolverBloomNeg.Inc()
		return chunk.Location{}, false
	}
	// 3. Full index on disk (charged).
	stats.IndexLookups++
	telResolverLookups.Inc()
	loc, found := r.index.Lookup(c.FP)
	if !found {
		return chunk.Location{}, false // Bloom false positive
	}
	// 4. Locality-preserved caching: prefetch the whole container's
	// metadata (charged) so the duplicates that follow in the stream
	// resolve from RAM.
	if r.store.Sealed(loc.Container) && !r.lpc.Contains(loc.Container) {
		stats.MetaPrefetches++
		telResolverPrefetches.Inc()
		r.insertLPC(loc.Container, r.store.ReadMeta(loc.Container))
	}
	return loc, true
}

func (r *Resolver) insertLPC(cid uint32, metas []container.Meta) {
	r.lpc.Put(cid, metas)
	for _, m := range metas {
		r.lpcFPs[m.FP] = lpcEntry{
			loc: chunk.Location{Container: cid, Segment: m.Segment, Offset: m.Offset, Size: m.Size},
			cid: cid,
		}
	}
}

// RegisterNew records a newly written chunk in the index and summary vector.
func (r *Resolver) RegisterNew(fp chunk.Fingerprint, loc chunk.Location) {
	r.index.Insert(fp, loc)
	r.filter.Add(fp)
}

// Repoint updates the index to a chunk's newest copy (the DeFrag rewrite
// path) so future generations dedupe against the linearized placement.
func (r *Resolver) Repoint(fp chunk.Fingerprint, loc chunk.Location) {
	r.index.Update(fp, loc)
	r.current[fp] = loc
}

// FlushIndex flushes buffered index writes (end of stream).
func (r *Resolver) FlushIndex() { r.index.Flush() }

// Index exposes the underlying chunk index.
func (r *Resolver) Index() *cindex.Index { return r.index }
