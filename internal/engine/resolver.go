package engine

import (
	"sync"
	"time"

	"repro/internal/bloom"
	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/lru"
)

// Resolver is the DDFS duplicate-identification machinery — summary vector
// (Bloom filter), on-disk full chunk index, and locality-preserved cache of
// container metadata — shared by the DDFS-Like engine and by DeFrag (whose
// §III-B design "works after finding out all the redundant data chunks and
// the correlated locations", i.e. on top of exactly this machinery).
//
// The resolver is safe for concurrent use: the Bloom filter is atomic, the
// index is lock-striped, and the LPC plus the current-location table are
// guarded by the resolver mutex. Per-stream cost attribution goes through
// Stream, which binds a stream clock and container writer.
type Resolver struct {
	filter *bloom.Filter
	index  *cindex.Index
	store  *container.Store

	mu     sync.Mutex // guards lpc, lpcFPs, current
	lpc    *lru.Cache[uint32, []container.Meta]
	lpcFPs map[chunk.Fingerprint]lpcEntry

	// current holds the authoritative location of every chunk that Repoint
	// has moved (DeFrag's rewrite path). Container metadata is immutable, so
	// a cached container can serve stale locations for chunks whose newest
	// copy is a rewritten one; DeFrag's whole benefit depends on resolving
	// to the newest (linearized) copy, so this RAM-side current-location
	// table is consulted before the LPC. It only ever holds rewritten
	// chunks — it stays empty under plain DDFS.
	current map[chunk.Fingerprint]chunk.Location
}

type lpcEntry struct {
	loc chunk.Location
	cid uint32
}

// NewResolver builds the machinery over an existing index and container
// store. lpcContainers sizes the locality-preserved cache; expectedChunks
// sizes the Bloom filter.
func NewResolver(index *cindex.Index, store *container.Store, lpcContainers, expectedChunks int) *Resolver {
	if lpcContainers < 1 {
		lpcContainers = 1
	}
	if expectedChunks < 1 {
		expectedChunks = 1
	}
	r := &Resolver{
		filter:  bloom.New(expectedChunks, 0.01),
		index:   index,
		store:   store,
		lpc:     lru.New[uint32, []container.Meta](lpcContainers),
		lpcFPs:  make(map[chunk.Fingerprint]lpcEntry, 4096),
		current: make(map[chunk.Fingerprint]chunk.Location),
	}
	r.lpc.Instrument(nil, nil, telLPCEvictions)
	r.lpc.OnEvict(func(cid uint32, metas []container.Meta) {
		for _, m := range metas {
			if ent, ok := r.lpcFPs[m.FP]; ok && ent.cid == cid {
				delete(r.lpcFPs, m.FP)
			}
		}
	})
	return r
}

// StreamResolver binds the shared resolver to one backup stream: index page
// reads and container-metadata prefetches are charged to the stream's clock,
// and prefetches read through the stream's container writer view.
type StreamResolver struct {
	r  *Resolver
	ih cindex.Handle
	w  *container.Writer
}

// Stream returns a per-stream view of the resolver. A nil clk charges the
// resolver's own devices (the serial path); w supplies the metadata-read
// path and may not be nil.
func (r *Resolver) Stream(clk *disk.Clock, w *container.Writer) *StreamResolver {
	return &StreamResolver{r: r, ih: r.index.Handle(clk), w: w}
}

// Resolve decides whether c is a duplicate, charging the costs of the DDFS
// lookup path (free RAM checks; on LPC miss with positive summary vector,
// one index page read; on index hit, one container-metadata prefetch). It
// returns the stored location when c is a duplicate.
func (r *Resolver) Resolve(c chunk.Chunk, stats *BackupStats) (chunk.Location, bool) {
	return r.resolve(c, stats, r.index.Handle(nil), r.store.ReadMeta)
}

// Resolve is Resolver.Resolve with costs charged to the stream.
func (sr *StreamResolver) Resolve(c chunk.Chunk, stats *BackupStats) (chunk.Location, bool) {
	return sr.r.resolve(c, stats, sr.ih, sr.w.ReadMeta)
}

func (r *Resolver) resolve(c chunk.Chunk, stats *BackupStats, ih cindex.Handle, readMeta func(uint32) []container.Meta) (chunk.Location, bool) {
	defer stageLookup.Observe(time.Now())
	r.mu.Lock()
	// 0. Current-location table (RAM, free): chunks whose newest copy is a
	// DeFrag rewrite resolve to the linearized placement, never a stale
	// container-metadata entry.
	if loc, ok := r.current[c.FP]; ok {
		stats.CacheHits++
		telResolverCacheHits.Inc()
		r.mu.Unlock()
		return loc, true
	}
	// 1. Locality-preserved cache (RAM, free).
	if ent, ok := r.lpcFPs[c.FP]; ok {
		stats.CacheHits++
		telResolverCacheHits.Inc()
		r.lpc.Get(ent.cid) // refresh recency of the containing container
		r.mu.Unlock()
		return ent.loc, true
	}
	r.mu.Unlock()
	// 2. Summary vector (RAM, free, atomic). Negative → definitely new.
	if !r.filter.MayContain(c.FP) {
		telResolverBloomNeg.Inc()
		return chunk.Location{}, false
	}
	// 3. Full index on disk (charged) — outside the resolver mutex so one
	// stream's modeled page read never serializes the others' RAM hits.
	stats.IndexLookups++
	telResolverLookups.Inc()
	loc, found := ih.Lookup(c.FP)
	if !found {
		return chunk.Location{}, false // Bloom false positive
	}
	// 4. Locality-preserved caching: prefetch the whole container's
	// metadata (charged) so the duplicates that follow in the stream
	// resolve from RAM.
	r.prefetch(loc.Container, stats, readMeta)
	return loc, true
}

// prefetch pulls a sealed, uncached container's metadata into the LPC. The
// metadata read — the charged part — happens outside the resolver mutex;
// the mutex only covers the cache probe and the insert. Two streams racing
// on the same container may both charge a prefetch (one insert wins), the
// same way two real controllers would both issue the read; the single-stream
// decision sequence is unchanged.
func (r *Resolver) prefetch(cid uint32, stats *BackupStats, readMeta func(uint32) []container.Meta) {
	r.mu.Lock()
	cached := r.lpc.Contains(cid)
	r.mu.Unlock()
	if cached || !r.store.Sealed(cid) {
		return
	}
	stats.MetaPrefetches++
	telResolverPrefetches.Inc()
	metas := readMeta(cid)
	r.mu.Lock()
	if !r.lpc.Contains(cid) {
		r.insertLPC(cid, metas)
	}
	r.mu.Unlock()
}

// Resolution is one ResolveBatch outcome: whether the chunk is a duplicate
// and, if so, where its stored copy lives.
type Resolution struct {
	Loc chunk.Location
	Dup bool
}

// ResolveBatch resolves a whole segment's chunks in order, with the same
// decision sequence and counters as per-chunk Resolve, plus a same-bucket
// lookahead: when a chunk must go to the on-disk index, every later chunk of
// the batch that is also headed for the index and hashes to the same bucket
// page is looked up in the same modeled page read. Costs are therefore never
// higher than per-chunk resolution, and strictly lower whenever chunks of
// one segment collide on index pages.
func (r *Resolver) ResolveBatch(chunks []chunk.Chunk, stats *BackupStats) []Resolution {
	return r.resolveBatch(chunks, stats, r.index.Handle(nil), r.store.ReadMeta)
}

// ResolveBatch is Resolver.ResolveBatch with costs charged to the stream.
func (sr *StreamResolver) ResolveBatch(chunks []chunk.Chunk, stats *BackupStats) []Resolution {
	return sr.r.resolveBatch(chunks, stats, sr.ih, sr.w.ReadMeta)
}

func (r *Resolver) resolveBatch(chunks []chunk.Chunk, stats *BackupStats, ih cindex.Handle, readMeta func(uint32) []container.Meta) []Resolution {
	defer stageLookup.Observe(time.Now())
	out := make([]Resolution, len(chunks))
	// memo holds index results fetched ahead of their turn by a same-bucket
	// group lookup. Entries are only consulted if the chunk still needs the
	// index when iteration reaches it (a prefetch in between may have made
	// it a free LPC hit, exactly as in the per-chunk path).
	var memo map[int]cindex.Result
	for i, c := range chunks {
		// RAM checks and the (map-reading) lookahead scan run under a short
		// mutex hold; the charged index page reads and metadata prefetches
		// below run outside it, so concurrent streams only serialize on the
		// in-RAM cache state, not on each other's modeled I/O.
		res, seen := memo[i]
		r.mu.Lock()
		if loc, ok := r.current[c.FP]; ok {
			stats.CacheHits++
			telResolverCacheHits.Inc()
			out[i] = Resolution{loc, true}
			r.mu.Unlock()
			continue
		}
		if ent, ok := r.lpcFPs[c.FP]; ok {
			stats.CacheHits++
			telResolverCacheHits.Inc()
			r.lpc.Get(ent.cid)
			out[i] = Resolution{ent.loc, true}
			r.mu.Unlock()
			continue
		}
		if !seen && !r.filter.MayContain(c.FP) {
			telResolverBloomNeg.Inc()
			r.mu.Unlock()
			continue // definitely new
		}
		var group []int
		if !seen {
			// Same-bucket lookahead: gather the later chunks of this batch
			// that would also reach the index and live on this bucket page.
			b := ih.Bucket(c.FP)
			group = append(group, i)
			for k := i + 1; k < len(chunks); k++ {
				if _, done := memo[k]; done {
					continue
				}
				ck := chunks[k]
				if ih.Bucket(ck.FP) != b {
					continue
				}
				if _, ok := r.current[ck.FP]; ok {
					continue
				}
				if _, ok := r.lpcFPs[ck.FP]; ok {
					continue
				}
				if !r.filter.MayContain(ck.FP) {
					continue
				}
				group = append(group, k)
			}
		}
		r.mu.Unlock()
		stats.IndexLookups++
		telResolverLookups.Inc()
		if !seen {
			fps := make([]chunk.Fingerprint, len(group))
			for gi, k := range group {
				fps[gi] = chunks[k].FP
			}
			batch := ih.LookupBatch(fps) // charged, outside the mutex
			if memo == nil {
				memo = make(map[int]cindex.Result, len(chunks))
			}
			for gi, k := range group {
				memo[k] = batch[gi]
			}
			res = memo[i]
		}
		if !res.Found {
			continue // Bloom false positive → new
		}
		out[i] = Resolution{res.Loc, true}
		r.prefetch(res.Loc.Container, stats, readMeta)
	}
	return out
}

func (r *Resolver) insertLPC(cid uint32, metas []container.Meta) {
	r.lpc.Put(cid, metas)
	for _, m := range metas {
		r.lpcFPs[m.FP] = lpcEntry{
			loc: chunk.Location{Container: cid, Segment: m.Segment, Offset: m.Offset, Size: m.Size},
			cid: cid,
		}
	}
}

// RegisterNew records a newly written chunk in the index and summary vector.
func (r *Resolver) RegisterNew(fp chunk.Fingerprint, loc chunk.Location) {
	r.index.Insert(fp, loc)
	r.filter.Add(fp)
}

// RegisterNew is Resolver.RegisterNew with index writes charged to the stream.
func (sr *StreamResolver) RegisterNew(fp chunk.Fingerprint, loc chunk.Location) {
	sr.ih.Insert(fp, loc)
	sr.r.filter.Add(fp)
}

// Repoint updates the index to a chunk's newest copy (the DeFrag rewrite
// path) so future generations dedupe against the linearized placement.
func (r *Resolver) Repoint(fp chunk.Fingerprint, loc chunk.Location) {
	r.repoint(r.index.Handle(nil), fp, loc)
}

// Repoint is Resolver.Repoint with index writes charged to the stream.
func (sr *StreamResolver) Repoint(fp chunk.Fingerprint, loc chunk.Location) {
	sr.r.repoint(sr.ih, fp, loc)
}

func (r *Resolver) repoint(ih cindex.Handle, fp chunk.Fingerprint, loc chunk.Location) {
	ih.Update(fp, loc)
	r.mu.Lock()
	r.current[fp] = loc
	r.mu.Unlock()
}

// AdoptIndex rebuilds the chunk index and summary vector from the container
// store's directory — the reopen path for durable backends. No simulated
// time is charged: a reopen recovers on-disk index state that already
// exists; it does not perform new index writes. Containers are walked in ID
// order, so when a fingerprint appears in several containers (a DeFrag
// rewrite), the latest — authoritative — copy wins. It returns the highest
// on-disk segment ID seen, letting engines resume their segment sequence
// without colliding with recovered segments.
func (r *Resolver) AdoptIndex() (maxSegment uint64) {
	for id := 0; id < r.store.Slots(); id++ {
		cid := uint32(id)
		if !r.store.Sealed(cid) {
			continue
		}
		for _, m := range r.store.PeekMeta(cid) {
			r.index.Load(m.FP, chunk.Location{Container: cid, Segment: m.Segment, Offset: m.Offset, Size: m.Size})
			r.filter.Add(m.FP)
			if m.Segment > maxSegment {
				maxSegment = m.Segment
			}
		}
	}
	return maxSegment
}

// DropFromIndex removes every index mapping that points into container cid
// (chargeless; repair calls it immediately before quarantining cid, while
// the container's metadata is still readable) and returns how many mappings
// were dropped. The current-location table is purged of the container too.
func (r *Resolver) DropFromIndex(cid uint32) int {
	dropped := 0
	for _, m := range r.store.PeekMeta(cid) {
		if loc, ok := r.index.Peek(m.FP); ok && loc.Container == cid {
			if r.index.Delete(m.FP) {
				dropped++
			}
		}
	}
	r.mu.Lock()
	r.lpc.Remove(cid) // OnEvict clears the container's lpcFPs entries
	for fp, loc := range r.current {
		if loc.Container == cid {
			delete(r.current, fp)
		}
	}
	r.mu.Unlock()
	return dropped
}

// FlushIndex flushes buffered index writes (end of stream).
func (r *Resolver) FlushIndex() { r.index.Flush() }

// FlushIndex flushes buffered index writes, charged to the stream.
func (sr *StreamResolver) FlushIndex() { sr.ih.Flush() }

// Writer returns the container writer this stream resolver is bound to.
func (sr *StreamResolver) Writer() *container.Writer { return sr.w }

// MightContain is the Bloom filter's verdict for fp: false means the chunk
// is definitely new. The check is RAM-resident and charges nothing — it is
// what lets a spilled stream classify chunks without touching the on-disk
// index (see engine.FilterConfig).
func (sr *StreamResolver) MightContain(fp chunk.Fingerprint) bool {
	return sr.r.filter.MayContain(fp)
}

// Index exposes the underlying chunk index.
func (r *Resolver) Index() *cindex.Index { return r.index }
