package engine

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/disk"
)

// Stream is one backup input for RunStreams.
type Stream struct {
	Label string
	R     io.Reader
}

// StreamResult is the outcome of one stream's backup, positionally matching
// the RunStreams input.
type StreamResult struct {
	Recipe *chunk.Recipe
	Stats  BackupStats
	Err    error
}

// StreamBackupper is implemented by engines whose ingest path is safe under
// concurrent streams. BackupStream behaves like Backup but charges every
// simulated cost (CPU, index pages, container I/O) to clk, the stream's own
// timeline, and writes unique chunks through a per-stream container writer.
type StreamBackupper interface {
	Engine
	BackupStream(ctx context.Context, label string, r io.Reader, clk *disk.Clock) (*chunk.Recipe, BackupStats, error)
}

// RunStreams ingests the given backup streams through e with at most
// concurrency backups in flight at once, and returns per-stream results (in
// input order) plus a deterministic merged BackupStats.
//
// concurrency <= 1 runs the plain serial loop — e.Backup per stream in input
// order — and is bit-identical to calling Backup yourself. The same serial
// loop is used when the engine does not implement StreamBackupper.
//
// With concurrency > 1 the timing model is per-stream lanes over shared
// state (the RevDedup-style optimistic model): every stream's clock starts
// at the engine clock's current reading, each stream pays its own simulated
// costs on its own clock while sharing the index shards, Bloom filter,
// container store, and LPC, and when the round completes the engine's master
// clock advances to the latest per-stream finish time — the wall-clock of a
// round of K concurrent backups is the slowest lane, not the sum.
//
// The merged stats sum all byte/chunk/mechanism counters in input order;
// Duration is the elapsed master-clock time of the whole call under either
// mode. The first stream error aborts scheduling of unstarted streams and is
// returned (already-running streams drain first).
func RunStreams(ctx context.Context, e Engine, streams []Stream, concurrency int) ([]StreamResult, BackupStats, error) {
	results := make([]StreamResult, len(streams))
	master := e.Clock()
	start := master.Now()

	sb, canStream := e.(StreamBackupper)
	if concurrency <= 1 || !canStream || len(streams) <= 1 {
		for i, s := range streams {
			recipe, stats, err := e.Backup(ctx, s.Label, s.R)
			results[i] = StreamResult{Recipe: recipe, Stats: stats, Err: err}
			if err != nil {
				break
			}
		}
	} else {
		if concurrency > len(streams) {
			concurrency = len(streams)
		}
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next int
			fail bool
		)
		clocks := make([]disk.Clock, len(streams))
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker is one simulated lane: the streams it picks up
				// run back-to-back on its timeline, so K workers over N
				// streams model K parallel spindles of queued backups, not N.
				lane := start
				for {
					mu.Lock()
					if fail || next >= len(streams) {
						mu.Unlock()
						return
					}
					i := next
					next++
					mu.Unlock()
					s := streams[i]
					clocks[i].Advance(lane)
					recipe, stats, err := sb.BackupStream(ctx, s.Label, s.R, &clocks[i])
					lane = clocks[i].Now()
					results[i] = StreamResult{Recipe: recipe, Stats: stats, Err: err}
					if err != nil {
						mu.Lock()
						fail = true
						mu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		// The round's wall-clock is the slowest lane: advance the master
		// clock to the latest per-stream finish time.
		var latest time.Duration
		for i := range clocks {
			if t := clocks[i].Now(); t > latest {
				latest = t
			}
		}
		if latest > master.Now() {
			master.Advance(latest - master.Now())
		}
	}

	merged := mergeStats(results)
	merged.Duration = master.Now() - start
	for i := range results {
		if results[i].Err != nil {
			return results, merged, fmt.Errorf("stream %q: %w", streams[i].Label, results[i].Err)
		}
	}
	return results, merged, nil
}

// mergeStats folds per-stream stats into one record, deterministically in
// input order. Duration is left for the caller (it is a property of the
// round, not a sum of lanes).
func mergeStats(results []StreamResult) BackupStats {
	var m BackupStats
	for i := range results {
		s := &results[i].Stats
		if m.Label == "" {
			m.Label = s.Label
		} else if s.Label != "" {
			m.Label += "+" + s.Label
		}
		m.LogicalBytes += s.LogicalBytes
		m.Chunks += s.Chunks
		m.Segments += s.Segments
		m.UniqueBytes += s.UniqueBytes
		m.UniqueChunks += s.UniqueChunks
		m.DedupedBytes += s.DedupedBytes
		m.DedupedChunks += s.DedupedChunks
		m.RewrittenBytes += s.RewrittenBytes
		m.RewrittenChunks += s.RewrittenChunks
		m.MissedDupBytes += s.MissedDupBytes
		m.SpilledBytes += s.SpilledBytes
		m.SpilledChunks += s.SpilledChunks
		m.FilterSpilled = m.FilterSpilled || s.FilterSpilled
		m.OracleRedundantBytes += s.OracleRedundantBytes
		m.PartialRedundantBytes += s.PartialRedundantBytes
		m.RemovedInPartialBytes += s.RemovedInPartialBytes
		m.IndexLookups += s.IndexLookups
		m.MetaPrefetches += s.MetaPrefetches
		m.CacheHits += s.CacheHits
		m.BlockReads += s.BlockReads
		m.SHTHits += s.SHTHits
	}
	return m
}
