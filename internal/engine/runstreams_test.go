package engine_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/ddfs"
	"repro/internal/workload"
)

// streamSet produces nstreams deterministic multi-user backup streams.
// Calling it twice with the same arguments yields byte-identical streams.
func streamSet(t *testing.T, nstreams, round int, seed int64) []engine.Stream {
	t.Helper()
	cfg := workload.DefaultConfig(seed)
	cfg.NumFiles = 6
	cfg.MeanFileSize = 96 << 10
	m, err := workload.NewMultiUser(nstreams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streams []engine.Stream
	for r := 0; r <= round; r++ {
		streams = streams[:0]
		for _, b := range m.NextRound() {
			streams = append(streams, engine.Stream{Label: b.Label, R: b.Stream})
		}
	}
	return streams
}

func newDDFS(t *testing.T) *ddfs.Engine {
	t.Helper()
	e, err := ddfs.New(ddfs.DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newDeFrag(t *testing.T) *core.Engine {
	t.Helper()
	cfg := core.DefaultConfig(64 << 20)
	cfg.Alpha = 0.1
	e, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunStreamsSerialEquivalence pins the concurrency<=1 contract:
// RunStreams with concurrency 1 must be bit-identical — stats and recipes —
// to calling Backup on each stream in order.
func TestRunStreamsSerialEquivalence(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(t *testing.T) engine.Engine
	}{
		{"ddfs", func(t *testing.T) engine.Engine { return newDDFS(t) }},
		{"defrag", func(t *testing.T) engine.Engine { return newDeFrag(t) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			const nstreams = 3
			e1 := mk.make(t)
			var wantStats []engine.BackupStats
			var wantRefs []int
			for _, s := range streamSet(t, nstreams, 1, 7) {
				rec, st, err := e1.Backup(context.Background(), s.Label, s.R)
				if err != nil {
					t.Fatal(err)
				}
				wantStats = append(wantStats, st)
				wantRefs = append(wantRefs, rec.Len())
			}

			e2 := mk.make(t)
			results, merged, err := engine.RunStreams(context.Background(), e2, streamSet(t, nstreams, 1, 7), 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(wantStats) {
				t.Fatalf("got %d results, want %d", len(results), len(wantStats))
			}
			var sumLogical int64
			for i, res := range results {
				if !reflect.DeepEqual(res.Stats, wantStats[i]) {
					t.Errorf("stream %d: stats diverge from serial Backup:\ngot  %+v\nwant %+v",
						i, res.Stats, wantStats[i])
				}
				if res.Recipe.Len() != wantRefs[i] {
					t.Errorf("stream %d: %d recipe refs, want %d", i, res.Recipe.Len(), wantRefs[i])
				}
				sumLogical += res.Stats.LogicalBytes
			}
			if merged.LogicalBytes != sumLogical {
				t.Errorf("merged.LogicalBytes = %d, want %d", merged.LogicalBytes, sumLogical)
			}
			if e1.Clock().Now() != e2.Clock().Now() {
				t.Errorf("simulated time diverges: serial %v, RunStreams(context.Background(), 1) %v",
					e1.Clock().Now(), e2.Clock().Now())
			}
		})
	}
}

// TestRunStreamsConcurrentStress runs ≥4 concurrent streams against one
// shared store (run under -race in CI). It checks the accounting invariants
// that must hold regardless of interleaving.
func TestRunStreamsConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, mk := range []struct {
		name string
		make func(t *testing.T) engine.Engine
	}{
		{"ddfs", func(t *testing.T) engine.Engine { return newDDFS(t) }},
		{"defrag", func(t *testing.T) engine.Engine { return newDeFrag(t) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			const nstreams = 4
			e := mk.make(t)
			for round := 0; round < 3; round++ {
				streams := streamSet(t, nstreams, round, 11)
				results, merged, err := engine.RunStreams(context.Background(), e, streams, nstreams)
				if err != nil {
					t.Fatal(err)
				}
				var sumLogical, sumPlaced int64
				for i, res := range results {
					if res.Recipe == nil {
						t.Fatalf("round %d stream %d: nil recipe", round, i)
					}
					st := res.Stats
					if st.LogicalBytes != res.Recipe.Bytes() {
						t.Errorf("round %d stream %d: stats say %d logical bytes, recipe says %d",
							round, i, st.LogicalBytes, res.Recipe.Bytes())
					}
					placed := st.UniqueBytes + st.DedupedBytes + st.RewrittenBytes
					if placed != st.LogicalBytes {
						t.Errorf("round %d stream %d: unique+deduped+rewritten = %d, logical = %d",
							round, i, placed, st.LogicalBytes)
					}
					sumLogical += st.LogicalBytes
					sumPlaced += placed
				}
				if merged.LogicalBytes != sumLogical {
					t.Errorf("round %d: merged.LogicalBytes = %d, want %d", round, merged.LogicalBytes, sumLogical)
				}
				if merged.Duration <= 0 {
					t.Errorf("round %d: merged.Duration = %v, want > 0", round, merged.Duration)
				}
			}
			// The shared store must still be internally consistent: every
			// sealed container's accounting survives the interleavings.
			if got := e.Containers().NumContainers(); got == 0 {
				t.Error("no sealed containers after 3 concurrent rounds")
			}
		})
	}
}

// TestRunStreamsDuplicateConvergence backs up the same content from two
// rounds concurrently and checks the second round actually deduplicates
// against the first — the shared index and Bloom filter are visible across
// rounds whichever lane wrote the chunks.
func TestRunStreamsDuplicateConvergence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	e := newDDFS(t)
	if _, merged, err := engine.RunStreams(context.Background(), e, streamSet(t, 4, 0, 23), 4); err != nil {
		t.Fatal(err)
	} else if merged.DedupedBytes != 0 && merged.UniqueBytes == 0 {
		t.Fatalf("first round wrote nothing unique: %+v", merged)
	}
	// Second round: each user's stream mutates ~22% of files, so the bulk
	// of every stream duplicates round one.
	_, merged2, err := engine.RunStreams(context.Background(), e, streamSet(t, 4, 1, 23), 4)
	if err != nil {
		t.Fatal(err)
	}
	if merged2.DedupedBytes < merged2.LogicalBytes/2 {
		t.Errorf("second round deduplicated only %d of %d logical bytes — cross-round dedup broken",
			merged2.DedupedBytes, merged2.LogicalBytes)
	}
}
