// Package silo implements the "SiLo-Like" engine: the similarity-locality
// deduplication scheme of Xia et al. (USENIX ATC'11) as the paper summarizes
// it. Instead of a full chunk index, SiLo keeps only a small RAM
// similarity-hash table (SHT) of segment representative fingerprints:
//
//   - chunks are grouped into segments, segments into blocks;
//   - each segment's representative fingerprint (min-hash) maps, in RAM, to
//     the block that contains it;
//   - an incoming segment whose representative matches fetches that block's
//     metadata from disk (one sequential read) and deduplicates against all
//     chunks of the block — exploiting the locality that similar segments'
//     neighbours are also shared;
//   - chunks not found in any fetched or RAM-resident block are written as
//     new, even if a copy exists elsewhere: SiLo is *near-exact*, trading a
//     little deduplication efficiency for never touching a full index.
//
// Efficiency therefore degrades as the paper's Fig. 3 shows: when earlier
// deduplication has de-linearized placement, the chunks that surround a
// similar segment in its block are decreasingly the ones the incoming
// stream needs, so more truly-redundant chunks go undetected.
package silo

import (
	"context"
	"io"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lru"
	"repro/internal/minhash"
	"repro/internal/segment"
)

// Config parameterizes a SiLo-Like engine.
type Config struct {
	Chunker       chunker.Kind
	ChunkParams   chunker.Params
	SegParams     segment.Params
	ContainerCfg  container.Config
	DiskModel     disk.Model
	Cost          engine.CostModel
	BlockSegments int  // segments per block
	BlockCache    int  // block-metadata cache capacity, in blocks
	SigReps       int  // representative fingerprints per segment (k-min sketch)
	StoreData     bool // retain real chunk bytes
	// Backend supplies the physical container store. nil selects the
	// in-memory backend matching StoreData (the historical behavior).
	Backend blockstore.Backend
}

// DefaultConfig sizes the engine for roughly expectedLogicalBytes of total
// ingested data. SiLo's RAM budget is deliberately tiny — that is its selling
// point — so the block cache holds only a couple of blocks: most similar-
// segment detections pay a block-metadata read, and duplicates outside the
// similar blocks' reach go undetected (the deduplication-efficiency loss the
// paper's Fig. 3 measures).
func DefaultConfig(expectedLogicalBytes int64) Config {
	sp := segment.DefaultParams()
	expBlocks := int(expectedLogicalBytes/(sp.MaxBytes+sp.MinBytes)) + 1 // 2 typical segments per block
	bc := expBlocks / 32
	if bc < 2 {
		bc = 2
	}
	return Config{
		Chunker:       chunker.KindGear,
		ChunkParams:   chunker.DefaultParams(),
		SegParams:     sp,
		ContainerCfg:  container.DefaultConfig(),
		DiskModel:     disk.DefaultModel(),
		Cost:          engine.DefaultCostModel(),
		BlockSegments: 2,
		BlockCache:    bc,
		SigReps:       3,
	}
}

// blockEntry is one chunk recorded in a block's metadata.
type blockEntry struct {
	fp  chunk.Fingerprint
	loc chunk.Location
}

// blockEntrySize is the modeled on-disk footprint of one entry
// (fingerprint + location), used to charge block reads/writes.
const blockEntrySize = 56

// blockInfo is the shadow-directory record of one sealed block.
type blockInfo struct {
	off     int64 // offset of the block's metadata on the block device
	bytes   int64
	entries []blockEntry
}

// shtEntry is the similarity-hash-table record for one representative
// fingerprint: the block where the segment that introduced the
// representative physically wrote its data (origin), and the most recent
// block this content was written into (latest — rewritten misses and new
// edits). noBlock marks an unset latest slot.
type shtEntry struct {
	origin uint32
	latest uint32
}

const noBlock = ^uint32(0)

// fpEntry resolves a fingerprint through the RAM-resident block metadata.
type fpEntry struct {
	loc chunk.Location
	bid uint32
}

// Engine is the SiLo-Like deduplicator.
type Engine struct {
	cfg   Config
	clock *disk.Clock
	store *container.Store
	bdev  *disk.Device // block-metadata device

	sht    map[chunk.Fingerprint]shtEntry // representative fp → blocks
	blocks []blockInfo                    // shadow directory of sealed blocks

	cache   *lru.Cache[uint32, []blockEntry] // sealed-block metadata cache
	cacheFP map[chunk.Fingerprint]fpEntry    // union of cached blocks

	open    []blockEntry // metadata of the open (in-RAM) block
	openFP  map[chunk.Fingerprint]chunk.Location
	openSeg int // segments accumulated in the open block

	oracle *cindex.Oracle
	segSeq uint64
}

// New builds a SiLo-Like engine over a fresh clock.
func New(cfg Config) (*Engine, error) {
	return NewWithClock(cfg, &disk.Clock{})
}

// NewWithClock builds the engine over a caller-supplied clock.
func NewWithClock(cfg Config, clock *disk.Clock) (*Engine, error) {
	be := cfg.Backend
	if be == nil {
		be = blockstore.NewSim(cfg.StoreData)
	}
	// The device is purely the timing model; bytes live in the backend.
	store, err := container.NewStoreWithBackend(disk.NewDevice(cfg.DiskModel, clock, false), cfg.ContainerCfg, be)
	if err != nil {
		return nil, err
	}
	if cfg.BlockSegments < 1 {
		cfg.BlockSegments = 1
	}
	if cfg.BlockCache < 1 {
		cfg.BlockCache = 1
	}
	if cfg.SigReps < 1 {
		cfg.SigReps = 1
	}
	e := &Engine{
		cfg:     cfg,
		clock:   clock,
		store:   store,
		bdev:    disk.NewDevice(cfg.DiskModel, clock, false),
		sht:     make(map[chunk.Fingerprint]shtEntry, 1024),
		cache:   lru.New[uint32, []blockEntry](cfg.BlockCache),
		cacheFP: make(map[chunk.Fingerprint]fpEntry, 4096),
		openFP:  make(map[chunk.Fingerprint]chunk.Location, 1024),
	}
	e.cache.OnEvict(func(bid uint32, entries []blockEntry) {
		for _, be := range entries {
			if ent, ok := e.cacheFP[be.fp]; ok && ent.bid == bid {
				delete(e.cacheFP, be.fp)
			}
		}
	})
	return e, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "silo-like" }

// Containers implements engine.Engine.
func (e *Engine) Containers() *container.Store { return e.store }

// Clock implements engine.Engine.
func (e *Engine) Clock() *disk.Clock { return e.clock }

// SetOracle attaches the ground-truth oracle (see ddfs.Engine.SetOracle).
func (e *Engine) SetOracle(o *cindex.Oracle) { e.oracle = o }

// Backup implements engine.Engine.
func (e *Engine) Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, engine.BackupStats, error) {
	stats := engine.BackupStats{Label: label}
	recipe := &chunk.Recipe{Label: label}
	start := e.clock.Now()

	logical, chunks, segs, err := engine.Pipeline(
		ctx, r, e.cfg.Chunker, e.cfg.ChunkParams, e.cfg.SegParams,
		e.clock, e.cfg.Cost, e.store.StoresData(),
		func(seg *segment.Segment) error {
			return e.processSegment(ctx, seg, recipe, &stats)
		})
	if err != nil {
		// Keep the store consistent on abort: seal the open container
		// outside the (possibly cancelled) context.
		e.store.Flush(context.WithoutCancel(ctx)) //nolint:errcheck // best-effort cleanup
		return nil, stats, err
	}
	e.sealBlock() // end of stream: close the open block
	if err := e.store.Flush(ctx); err != nil {
		return nil, stats, err
	}

	stats.LogicalBytes = logical
	stats.Chunks = chunks
	stats.Segments = segs
	stats.Duration = e.clock.Now() - start
	stats.MissedDupBytes = stats.OracleRedundantBytes - stats.DedupedBytes
	if stats.MissedDupBytes < 0 {
		stats.MissedDupBytes = 0
	}
	return recipe, stats, nil
}

// processSegment deduplicates one segment the SiLo way. The error
// return propagates future failing write paths through Backup.
func (e *Engine) processSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats) error {
	e.segSeq++
	segID := e.segSeq
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)

	// Similarity detection: for each of the segment's representative
	// fingerprints, fetch the block where that content was originally
	// written and the block it was most recently written into.
	sig := minhash.Signature(seg.Chunks, e.cfg.SigReps)
	for _, rep := range sig {
		if ent, ok := e.sht[rep]; ok {
			stats.SHTHits++
			e.fetchBlock(ent.origin, stats)
			if ent.latest != noBlock && ent.latest != ent.origin {
				e.fetchBlock(ent.latest, stats)
			}
		}
	}

	var removedInSeg int64
	var wrote int64
	for _, c := range seg.Chunks {
		loc, dup := e.lookup(c.FP)
		if dup {
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			removedInSeg += int64(c.Size)
		} else {
			var werr error
			loc, werr = e.store.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			stats.UniqueBytes += int64(c.Size)
			stats.UniqueChunks++
			wrote++
			// Physically-written chunks are what the block holds.
			e.open = append(e.open, blockEntry{fp: c.FP, loc: loc})
			if _, exists := e.openFP[c.FP]; !exists {
				e.openFP[c.FP] = loc
			}
		}
		recipe.Append(c.FP, c.Size, loc)
	}

	// Update the SHT. A new representative points at the open block (that
	// is where this content's physical copies are landing). A known
	// representative keeps its origin — the block holding the bulk of the
	// content — and, if this segment physically wrote anything, its latest
	// slot moves to the open block so the next generation can find those
	// fresh copies. Chunks written by generations in between drop off the
	// similarity horizon: that shrinking reach is SiLo's efficiency decay
	// under de-linearization (paper Fig. 3).
	openBID := uint32(len(e.blocks))
	for _, rep := range sig {
		ent, exists := e.sht[rep]
		switch {
		case !exists:
			e.sht[rep] = shtEntry{origin: openBID, latest: noBlock}
		case wrote > 0:
			ent.latest = openBID
			e.sht[rep] = ent
		}
	}
	e.openSeg++
	if e.openSeg >= e.cfg.BlockSegments {
		e.sealBlock()
	}

	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

// lookup resolves a fingerprint against RAM-resident block metadata: the
// open block first, then cached sealed blocks. Free — all RAM.
func (e *Engine) lookup(fp chunk.Fingerprint) (chunk.Location, bool) {
	if loc, ok := e.openFP[fp]; ok {
		return loc, true
	}
	if ent, ok := e.cacheFP[fp]; ok {
		e.cache.Get(ent.bid)
		return ent.loc, true
	}
	return chunk.Location{}, false
}

// fetchBlock ensures block bid's metadata is RAM-resident, charging one
// sequential disk read when it is not cached. bid may be the open block
// (already in RAM, free).
func (e *Engine) fetchBlock(bid uint32, stats *engine.BackupStats) {
	if int(bid) >= len(e.blocks) {
		return // open block: already in RAM
	}
	if e.cache.Contains(bid) {
		e.cache.Get(bid)
		return
	}
	info := e.blocks[bid]
	e.bdev.AccountRead(info.off, info.bytes)
	stats.BlockReads++
	e.cache.Put(bid, info.entries)
	for _, be := range info.entries {
		e.cacheFP[be.fp] = fpEntry{loc: be.loc, bid: bid}
	}
}

// sealBlock writes the open block's metadata to the block device and
// registers it in the shadow directory.
func (e *Engine) sealBlock() {
	if len(e.open) == 0 {
		e.openSeg = 0
		return
	}
	size := int64(len(e.open)) * blockEntrySize
	off := e.bdev.AppendHole(size)
	e.blocks = append(e.blocks, blockInfo{off: off, bytes: size, entries: e.open})
	e.open = nil
	e.openFP = make(map[chunk.Fingerprint]chunk.Location, 1024)
	e.openSeg = 0
}

var _ engine.Engine = (*Engine)(nil)
