package silo

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/cindex"
	"repro/internal/engine/ddfs"
	"repro/internal/enginetest"
)

func testConfig(storeData bool) Config {
	cfg := DefaultConfig(64 << 20)
	cfg.StoreData = storeData
	return cfg
}

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAllUniqueBackup(t *testing.T) {
	e, err := New(testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	data := randStream(4<<20, 1)
	_, st, err := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	enginetest.CheckConservation(t, st)
	if st.DedupedBytes != 0 || st.UniqueBytes != int64(len(data)) {
		t.Fatalf("random stream stats wrong: %+v", st)
	}
}

func TestIdenticalSecondBackupMostlyDedupes(t *testing.T) {
	e, _ := New(testConfig(false))
	data := randStream(6<<20, 2)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	_, st, err := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Near-exact: identical segments have identical representatives, so
	// everything should be found via similar-block fetches.
	if frac := float64(st.DedupedBytes) / float64(st.LogicalBytes); frac < 0.95 {
		t.Fatalf("identical re-backup deduped only %.1f%%", frac*100)
	}
	if st.SHTHits == 0 {
		t.Fatal("similarity hash table never hit")
	}
	if st.IndexLookups != 0 {
		t.Fatal("SiLo must never touch a full chunk index")
	}
}

func TestBlockReadsCharged(t *testing.T) {
	e, _ := New(testConfig(false))
	data := randStream(6<<20, 3)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	before := e.Clock().Now()
	_, st, _ := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if st.BlockReads == 0 {
		t.Fatal("re-backup should read sealed block metadata")
	}
	if e.Clock().Now() == before {
		t.Fatal("block reads must consume simulated time")
	}
}

func TestNearExactMissesAreRewrittenNotLost(t *testing.T) {
	// SiLo may fail to detect duplicates, but restores must still be exact:
	// missed dups become new physical copies referenced by the recipe.
	cfg := testConfig(true)
	e, _ := New(cfg)
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(5), 5)
	enginetest.VerifyRestores(t, e, gens)
}

func TestEfficiencyBelowExactAndDecays(t *testing.T) {
	wcfg := enginetest.SmallConfig(7)
	e, _ := New(DefaultConfig(enginetest.ExpectedBytes(wcfg, 12)))
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, wcfg, 12)
	// Some redundancy must go undetected at some generation (near-exact).
	var missed int64
	for _, gr := range gens {
		missed += gr.Stats.MissedDupBytes
	}
	if missed == 0 {
		t.Fatal("SiLo never missed a duplicate; near-exactness not exercised")
	}
	// Efficiency late in the run should be below the early generations'
	// (paper Fig. 3 trend).
	early := gens[1].Stats.Efficiency() + gens[2].Stats.Efficiency() + gens[3].Stats.Efficiency()
	late := gens[9].Stats.Efficiency() + gens[10].Stats.Efficiency() + gens[11].Stats.Efficiency()
	if late >= early {
		t.Fatalf("efficiency should decay: early %.3f late %.3f", early/3, late/3)
	}
}

func TestThroughputStaysAboveIndexBasedDecay(t *testing.T) {
	// SiLo's selling point: throughput does not collapse with generations
	// the way the full-index (DDFS) path does. Compare late-generation
	// throughput of the two engines over the same workload.
	wcfg := enginetest.SmallConfig(9)
	expected := enginetest.ExpectedBytes(wcfg, 12)
	si, _ := New(DefaultConfig(expected))
	dd, _ := ddfs.New(ddfs.DefaultConfig(expected))
	gs := enginetest.RunGenerations(t, si, wcfg, 12)
	gd := enginetest.RunGenerations(t, dd, wcfg, 12)
	siLate := gs[10].Stats.ThroughputMBps() + gs[11].Stats.ThroughputMBps()
	ddLate := gd[10].Stats.ThroughputMBps() + gd[11].Stats.ThroughputMBps()
	if siLate <= ddLate {
		t.Fatalf("SiLo late throughput %.1f should beat DDFS %.1f", siLate/2, ddLate/2)
	}
}

func TestSegmentsGroupedIntoBlocks(t *testing.T) {
	cfg := testConfig(false)
	cfg.BlockSegments = 2
	e, _ := New(cfg)
	data := randStream(8<<20, 11)
	_, st, _ := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	wantBlocks := int(st.Segments+1) / 2
	if got := len(e.blocks); got != wantBlocks {
		t.Fatalf("blocks = %d, want %d for %d segments", got, wantBlocks, st.Segments)
	}
}

func TestConfigClamps(t *testing.T) {
	cfg := testConfig(false)
	cfg.BlockSegments = 0
	cfg.BlockCache = 0
	cfg.SigReps = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.BlockSegments != 1 || e.cfg.BlockCache != 1 || e.cfg.SigReps != 1 {
		t.Fatalf("clamps failed: %+v", e.cfg)
	}
}

func TestNameAndAccessors(t *testing.T) {
	e, _ := New(testConfig(false))
	if e.Name() != "silo-like" {
		t.Fatal("name")
	}
	if e.Containers() == nil || e.Clock() == nil {
		t.Fatal("nil accessors")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		e, _ := New(testConfig(false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(13), 3)
		return gens[2].Stats.UniqueBytes
	}
	if run() != run() {
		t.Fatal("engine not deterministic")
	}
}
