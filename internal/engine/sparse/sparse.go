// Package sparse implements a Sparse-Indexing engine (Lillibridge et al.,
// FAST'09), the other locality-exploiting deduplicator the paper names in
// §II-B: "the exploration of spatial locality ... to alleviate the disk
// bottleneck such as in DDFS and Sparse Indexing."
//
// Sparse Indexing keeps no full chunk index at all. Instead it:
//
//   - samples each incoming segment's fingerprints ("hooks": fingerprints
//     whose low bits are zero, one in 2^SampleBits chunks on average);
//   - keeps a small RAM table mapping hooks to the manifests (segment
//     recipes) that contained them;
//   - for each incoming segment, picks the stored manifests sharing the
//     most hooks (the "champions"), loads them from disk (one sequential
//     read each), and deduplicates only against those.
//
// Like SiLo it is near-exact: duplicates outside the champions' reach are
// written again. And like every locality-based scheme, its effectiveness
// rests on the spatial locality the paper shows deduplication itself
// erodes: as placement de-linearizes, an incoming segment's duplicates
// spread over more manifests than MaxChampions can cover.
package sparse

import (
	"context"
	"io"
	"sort"

	"repro/internal/blockstore"
	"repro/internal/chunk"
	"repro/internal/chunker"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lru"
	"repro/internal/segment"
)

// Config parameterizes a Sparse-Indexing engine.
type Config struct {
	Chunker      chunker.Kind
	ChunkParams  chunker.Params
	SegParams    segment.Params
	ContainerCfg container.Config
	DiskModel    disk.Model
	Cost         engine.CostModel

	SampleBits    int // a fingerprint is a hook when its low SampleBits bits are zero
	MaxChampions  int // manifests loaded per incoming segment (paper: up to 10)
	MaxPerHook    int // manifest IDs remembered per hook (RAM bound)
	ManifestCache int // manifest cache capacity
	StoreData     bool
	// Backend supplies the physical container store. nil selects the
	// in-memory backend matching StoreData (the historical behavior).
	Backend blockstore.Backend
}

// DefaultConfig sizes the engine for expectedLogicalBytes of ingest,
// holding the same scale-invariant RAM-starved regime as the other engines.
func DefaultConfig(expectedLogicalBytes int64) Config {
	sp := segment.DefaultParams()
	expManifests := int(expectedLogicalBytes/sp.MaxBytes) + 1
	mc := expManifests / 64
	if mc < 4 {
		mc = 4
	}
	return Config{
		Chunker:      chunker.KindGear,
		ChunkParams:  chunker.DefaultParams(),
		SegParams:    sp,
		ContainerCfg: container.DefaultConfig(),
		DiskModel:    disk.DefaultModel(),
		Cost:         engine.DefaultCostModel(),
		// 1/16 sampling: the FAST'09 system samples 1/64 of ~10 MB segments;
		// at this reproduction's 0.5–2 MB segments the same ~10+ hooks per
		// segment need a denser rate, else small segments go hookless and
		// dedupe nothing.
		SampleBits:    4,
		MaxChampions:  4,
		MaxPerHook:    3,
		ManifestCache: mc,
		StoreData:     false,
	}
}

// manifestEntry is one chunk reference in a stored manifest.
type manifestEntry struct {
	fp  chunk.Fingerprint
	loc chunk.Location
}

// manifestEntrySize models the on-disk footprint of one entry.
const manifestEntrySize = 56

// manifest is the shadow record of one stored segment recipe.
type manifest struct {
	off     int64
	bytes   int64
	entries []manifestEntry
}

// Engine is the Sparse-Indexing deduplicator.
type Engine struct {
	cfg   Config
	clock *disk.Clock
	store *container.Store
	mdev  *disk.Device // manifest device

	sparse    map[chunk.Fingerprint][]uint32 // hook → manifest IDs (bounded)
	manifests []manifest

	cache   *lru.Cache[uint32, []manifestEntry]
	cacheFP map[chunk.Fingerprint]fpEntry

	oracle *cindex.Oracle
	segSeq uint64
}

type fpEntry struct {
	loc chunk.Location
	mid uint32
}

// New builds a Sparse-Indexing engine over a fresh clock.
func New(cfg Config) (*Engine, error) {
	return NewWithClock(cfg, &disk.Clock{})
}

// NewWithClock builds the engine over a caller-supplied clock.
func NewWithClock(cfg Config, clock *disk.Clock) (*Engine, error) {
	be := cfg.Backend
	if be == nil {
		be = blockstore.NewSim(cfg.StoreData)
	}
	// The device is purely the timing model; bytes live in the backend.
	store, err := container.NewStoreWithBackend(disk.NewDevice(cfg.DiskModel, clock, false), cfg.ContainerCfg, be)
	if err != nil {
		return nil, err
	}
	if cfg.SampleBits < 0 {
		cfg.SampleBits = 0
	}
	if cfg.MaxChampions < 1 {
		cfg.MaxChampions = 1
	}
	if cfg.MaxPerHook < 1 {
		cfg.MaxPerHook = 1
	}
	if cfg.ManifestCache < 1 {
		cfg.ManifestCache = 1
	}
	e := &Engine{
		cfg:     cfg,
		clock:   clock,
		store:   store,
		mdev:    disk.NewDevice(cfg.DiskModel, clock, false),
		sparse:  make(map[chunk.Fingerprint][]uint32, 1024),
		cache:   lru.New[uint32, []manifestEntry](cfg.ManifestCache),
		cacheFP: make(map[chunk.Fingerprint]fpEntry, 4096),
	}
	e.cache.OnEvict(func(mid uint32, entries []manifestEntry) {
		for _, me := range entries {
			if ent, ok := e.cacheFP[me.fp]; ok && ent.mid == mid {
				delete(e.cacheFP, me.fp)
			}
		}
	})
	return e, nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "sparse-index" }

// Containers implements engine.Engine.
func (e *Engine) Containers() *container.Store { return e.store }

// Clock implements engine.Engine.
func (e *Engine) Clock() *disk.Clock { return e.clock }

// SetOracle attaches the ground-truth oracle.
func (e *Engine) SetOracle(o *cindex.Oracle) { e.oracle = o }

// isHook reports whether fp is a sampled fingerprint.
func (e *Engine) isHook(fp chunk.Fingerprint) bool {
	mask := uint64(1)<<uint(e.cfg.SampleBits) - 1
	return fp.Uint64()&mask == 0
}

// Backup implements engine.Engine.
func (e *Engine) Backup(ctx context.Context, label string, r io.Reader) (*chunk.Recipe, engine.BackupStats, error) {
	stats := engine.BackupStats{Label: label}
	recipe := &chunk.Recipe{Label: label}
	start := e.clock.Now()

	logical, chunks, segs, err := engine.Pipeline(
		ctx, r, e.cfg.Chunker, e.cfg.ChunkParams, e.cfg.SegParams,
		e.clock, e.cfg.Cost, e.store.StoresData(),
		func(seg *segment.Segment) error {
			return e.processSegment(ctx, seg, recipe, &stats)
		})
	if err != nil {
		// Keep the store consistent on abort: seal the open container
		// outside the (possibly cancelled) context.
		e.store.Flush(context.WithoutCancel(ctx)) //nolint:errcheck // best-effort cleanup
		return nil, stats, err
	}
	if err := e.store.Flush(ctx); err != nil {
		return nil, stats, err
	}

	stats.LogicalBytes = logical
	stats.Chunks = chunks
	stats.Segments = segs
	stats.Duration = e.clock.Now() - start
	stats.MissedDupBytes = stats.OracleRedundantBytes - stats.DedupedBytes
	if stats.MissedDupBytes < 0 {
		stats.MissedDupBytes = 0
	}
	return recipe, stats, nil
}

// processSegment deduplicates one segment against its champion manifests. The error
// return propagates future failing write paths through Backup.
func (e *Engine) processSegment(ctx context.Context, seg *segment.Segment, recipe *chunk.Recipe, stats *engine.BackupStats) error {
	e.segSeq++
	segID := e.segSeq
	segOracleDup := engine.ObserveSegment(e.oracle, seg, stats)

	// Collect the segment's hooks and vote for candidate manifests.
	votes := make(map[uint32]int)
	var hooks []chunk.Fingerprint
	for _, c := range seg.Chunks {
		if e.isHook(c.FP) {
			hooks = append(hooks, c.FP)
			for _, mid := range e.sparse[c.FP] {
				votes[mid]++
			}
		}
	}
	// Champion selection: manifests with the most hook votes.
	type cand struct {
		mid   uint32
		votes int
	}
	cands := make([]cand, 0, len(votes))
	for mid, v := range votes {
		cands = append(cands, cand{mid, v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return cands[i].mid > cands[j].mid // tie-break: newer manifest
	})
	if len(cands) > e.cfg.MaxChampions {
		cands = cands[:e.cfg.MaxChampions]
	}
	for _, c := range cands {
		stats.SHTHits++
		e.loadManifest(c.mid, stats)
	}

	// Deduplicate against the RAM-resident manifests and build this
	// segment's own manifest.
	entries := make([]manifestEntry, 0, len(seg.Chunks))
	var removedInSeg int64
	for _, c := range seg.Chunks {
		loc, dup := e.cacheLookup(c.FP)
		if dup {
			stats.DedupedBytes += int64(c.Size)
			stats.DedupedChunks++
			removedInSeg += int64(c.Size)
		} else {
			var werr error
			loc, werr = e.store.Write(ctx, c, segID)
			if werr != nil {
				return werr
			}
			stats.UniqueBytes += int64(c.Size)
			stats.UniqueChunks++
		}
		recipe.Append(c.FP, c.Size, loc)
		entries = append(entries, manifestEntry{fp: c.FP, loc: loc})
	}

	// Store the manifest (sequential write) and register its hooks.
	mid := uint32(len(e.manifests))
	size := int64(len(entries)) * manifestEntrySize
	off := e.mdev.AppendHole(size)
	e.manifests = append(e.manifests, manifest{off: off, bytes: size, entries: entries})
	for _, h := range hooks {
		ids := e.sparse[h]
		ids = append(ids, mid)
		if len(ids) > e.cfg.MaxPerHook {
			ids = ids[len(ids)-e.cfg.MaxPerHook:] // keep the newest
		}
		e.sparse[h] = ids
	}
	// The fresh manifest is RAM-resident (it was just built).
	e.insertCache(mid, entries)

	engine.AccountPartialSegment(e.oracle, seg, segOracleDup, removedInSeg, stats)
	return nil
}

// cacheLookup resolves a fingerprint against the cached manifests.
func (e *Engine) cacheLookup(fp chunk.Fingerprint) (chunk.Location, bool) {
	if ent, ok := e.cacheFP[fp]; ok {
		e.cache.Get(ent.mid)
		return ent.loc, true
	}
	return chunk.Location{}, false
}

// loadManifest ensures manifest mid is RAM-resident, charging one
// sequential read on a cache miss.
func (e *Engine) loadManifest(mid uint32, stats *engine.BackupStats) {
	if int(mid) >= len(e.manifests) {
		return
	}
	if e.cache.Contains(mid) {
		e.cache.Get(mid)
		return
	}
	m := e.manifests[mid]
	e.mdev.AccountRead(m.off, m.bytes)
	stats.BlockReads++
	e.insertCache(mid, m.entries)
}

func (e *Engine) insertCache(mid uint32, entries []manifestEntry) {
	e.cache.Put(mid, entries)
	for _, me := range entries {
		e.cacheFP[me.fp] = fpEntry{loc: me.loc, mid: mid}
	}
}

var _ engine.Engine = (*Engine)(nil)
