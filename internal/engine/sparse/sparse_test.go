package sparse

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/enginetest"
)

func testConfig(storeData bool) Config {
	cfg := DefaultConfig(64 << 20)
	cfg.StoreData = storeData
	return cfg
}

func randStream(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAllUniqueBackup(t *testing.T) {
	e, err := New(testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	data := randStream(4<<20, 1)
	_, st, err := e.Backup(context.Background(), "g0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	enginetest.CheckConservation(t, st)
	if st.DedupedBytes != 0 || st.UniqueBytes != int64(len(data)) {
		t.Fatalf("random stream stats wrong: %+v", st)
	}
	if st.IndexLookups != 0 {
		t.Fatal("sparse indexing must never use a full chunk index")
	}
}

func TestIdenticalSecondBackupMostlyDedupes(t *testing.T) {
	e, _ := New(testConfig(false))
	data := randStream(6<<20, 2)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	_, st, err := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Identical segments share all hooks, so champion selection must find
	// the right manifests.
	if frac := float64(st.DedupedBytes) / float64(st.LogicalBytes); frac < 0.95 {
		t.Fatalf("identical re-backup deduped only %.1f%%", frac*100)
	}
	if st.SHTHits == 0 {
		t.Fatal("no champions selected")
	}
}

func TestChampionLoadsCharged(t *testing.T) {
	cfg := testConfig(false)
	cfg.ManifestCache = 1 // force reloads
	e, _ := New(cfg)
	data := randStream(6<<20, 3)
	e.Backup(context.Background(), "g0", bytes.NewReader(data))
	before := e.Clock().Now()
	_, st, _ := e.Backup(context.Background(), "g1", bytes.NewReader(data))
	if st.BlockReads == 0 {
		t.Fatal("champion manifests should be read from disk")
	}
	if e.Clock().Now() == before {
		t.Fatal("manifest reads must consume simulated time")
	}
}

func TestRestoreCorrectness(t *testing.T) {
	e, _ := New(testConfig(true))
	gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(5), 5)
	enginetest.VerifyRestores(t, e, gens)
}

func TestNearExactness(t *testing.T) {
	// Sparse indexing bounds its per-segment work: at most MaxChampions
	// manifest loads per segment, never a full-index lookup — and it must
	// still find the bulk of the redundancy. (Whether anything is missed
	// at all depends on scale; misses are asserted by the champion-budget
	// stress test below.)
	wcfg := enginetest.SmallConfig(7)
	e, _ := New(DefaultConfig(enginetest.ExpectedBytes(wcfg, 12)))
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, wcfg, 12)
	for g, gr := range gens {
		if gr.Stats.IndexLookups != 0 {
			t.Fatalf("gen %d used a full index", g)
		}
		if gr.Stats.SHTHits > gr.Stats.Segments*int64(e.cfg.MaxChampions) {
			t.Fatalf("gen %d loaded %d champions for %d segments (cap %d each)",
				g, gr.Stats.SHTHits, gr.Stats.Segments, e.cfg.MaxChampions)
		}
	}
	last := gens[11].Stats
	if last.OracleRedundantBytes > 0 {
		frac := float64(last.DedupedBytes) / float64(last.OracleRedundantBytes)
		if frac < 0.5 {
			t.Fatalf("found only %.0f%% of redundancy at gen 12", frac*100)
		}
	}
}

func TestChampionBudgetCausesMisses(t *testing.T) {
	// With a single champion per segment and one manifest per hook, a
	// churning workload must eventually have duplicates outside the
	// champion's reach — the near-exactness the FAST'09 paper trades away.
	wcfg := enginetest.SmallConfig(17)
	cfg := DefaultConfig(enginetest.ExpectedBytes(wcfg, 10))
	cfg.MaxChampions = 1
	cfg.MaxPerHook = 1
	cfg.ManifestCache = 1
	e, _ := New(cfg)
	e.SetOracle(cindex.NewOracle())
	gens := enginetest.RunGenerations(t, e, wcfg, 10)
	var missed int64
	for _, gr := range gens {
		missed += gr.Stats.MissedDupBytes
	}
	if missed == 0 {
		t.Fatal("champion budget of 1 should miss some duplicates")
	}
}

func TestHookSampling(t *testing.T) {
	cfg := testConfig(false)
	cfg.SampleBits = 4
	e, _ := New(cfg)
	hooks := 0
	const n = 20000
	for i := 0; i < n; i++ {
		fp := chunk.Of([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if e.isHook(fp) {
			hooks++
		}
	}
	// Expect ~n/16 = 1250; accept a broad band.
	if hooks < n/32 || hooks > n/8 {
		t.Fatalf("hook rate %d/%d far from 1/16", hooks, n)
	}
}

func TestMaxPerHookBounded(t *testing.T) {
	cfg := testConfig(false)
	cfg.MaxPerHook = 2
	e, _ := New(cfg)
	data := randStream(4<<20, 9)
	for g := 0; g < 5; g++ {
		e.Backup(context.Background(), "g", bytes.NewReader(data))
	}
	for hook, ids := range e.sparse {
		if len(ids) > 2 {
			t.Fatalf("hook %s holds %d manifests, cap 2", hook.Short(), len(ids))
		}
	}
}

func TestConfigClamps(t *testing.T) {
	cfg := testConfig(false)
	cfg.SampleBits = -1
	cfg.MaxChampions = 0
	cfg.MaxPerHook = 0
	cfg.ManifestCache = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.SampleBits != 0 || e.cfg.MaxChampions != 1 || e.cfg.MaxPerHook != 1 || e.cfg.ManifestCache != 1 {
		t.Fatalf("clamps failed: %+v", e.cfg)
	}
}

func TestNameAndAccessors(t *testing.T) {
	e, _ := New(testConfig(false))
	if e.Name() != "sparse-index" {
		t.Fatal("name")
	}
	if e.Containers() == nil || e.Clock() == nil {
		t.Fatal("nil accessors")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		e, _ := New(testConfig(false))
		gens := enginetest.RunGenerations(t, e, enginetest.SmallConfig(13), 3)
		return gens[2].Stats.UniqueBytes
	}
	if run() != run() {
		t.Fatal("engine not deterministic")
	}
}
