package engine

import "repro/internal/telemetry"

// Per-stage wall clocks of the shared ingest pipeline (the always-on layer;
// see telemetry/stage.go). "chunk" is CDC boundary detection, "hash" is
// SHA-256 fingerprinting (plus the chunk-copy it amortizes), "lookup" is
// duplicate identification through the resolver (including resolver-mutex
// wait, so multi-stream serialization on the shared index shows up here).
var (
	stageChunk  = telemetry.Stage("chunk")
	stageHash   = telemetry.Stage("hash")
	stageLookup = telemetry.Stage("lookup")
)

// Live telemetry of the shared backup pipeline and the DDFS resolver
// machinery. These are process-wide instruments on the telemetry Default
// registry (every engine in the process adds to them); the per-backup
// BackupStats remain the per-run source of truth for experiment tables.
var (
	telChunks = telemetry.NewCounter("dedup_chunks_processed_total",
		"chunks produced by the backup pipeline across all engines")
	telBytes = telemetry.NewCounter("dedup_bytes_processed_total",
		"logical bytes ingested by the backup pipeline")
	telSegments = telemetry.NewCounter("dedup_segments_total",
		"content-defined segments formed by the backup pipeline")
	telChunkSize = telemetry.NewHistogram("dedup_chunk_size_bytes",
		"CDC chunk size distribution", telemetry.SizeBuckets)

	telResolverCacheHits = telemetry.NewCounter("dedup_resolver_cache_hits_total",
		"duplicate chunks resolved from RAM (locality-preserved cache or current-location table)")
	telResolverBloomNeg = telemetry.NewCounter("dedup_resolver_bloom_negatives_total",
		"chunks the summary vector ruled out without any disk access")
	telResolverLookups = telemetry.NewCounter("dedup_resolver_index_lookups_total",
		"charged full-index lookups (the paper's disk-bottleneck events)")
	telResolverPrefetches = telemetry.NewCounter("dedup_resolver_meta_prefetches_total",
		"container-metadata prefetch reads into the locality-preserved cache")
	telLPCEvictions = telemetry.NewCounter("dedup_lpc_evictions_total",
		"locality-preserved-cache container evictions")
)
