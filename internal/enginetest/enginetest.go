// Package enginetest provides shared scenario helpers for testing the three
// deduplication engines against common invariants: byte conservation,
// restore correctness, dedup effectiveness across generations, and
// simulated-time sanity.
package enginetest

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/chunk"
	"repro/internal/engine"
	"repro/internal/restore"
	"repro/internal/workload"
)

// SmallConfig returns a workload small enough for unit tests (~6 MB/gen).
func SmallConfig(seed int64) workload.Config {
	cfg := workload.DefaultConfig(seed)
	cfg.NumFiles = 8
	cfg.MeanFileSize = 640 << 10
	return cfg
}

// ExpectedBytes estimates total ingest for engine sizing.
func ExpectedBytes(cfg workload.Config, gens int) int64 {
	return int64(gens) * int64(cfg.NumFiles) * cfg.MeanFileSize * 2
}

// CheckConservation asserts the fundamental backup invariant: every logical
// byte is unique, deduped, or rewritten.
func CheckConservation(t *testing.T, st engine.BackupStats) {
	t.Helper()
	got := st.UniqueBytes + st.DedupedBytes + st.RewrittenBytes
	if got != st.LogicalBytes {
		t.Fatalf("%s: conservation violated: unique %d + deduped %d + rewritten %d = %d != logical %d",
			st.Label, st.UniqueBytes, st.DedupedBytes, st.RewrittenBytes, got, st.LogicalBytes)
	}
	if st.Duration <= 0 {
		t.Fatalf("%s: non-positive duration %v", st.Label, st.Duration)
	}
}

// Generation captures one ingested generation.
type Generation struct {
	Data   []byte
	Recipe *chunk.Recipe
	Stats  engine.BackupStats
}

// RunGenerations ingests gens generations of a single-user workload through
// eng, asserting conservation on each, and returns the per-generation
// record (original bytes, recipe, stats).
func RunGenerations(t *testing.T, eng engine.Engine, cfg workload.Config, gens int) []Generation {
	t.Helper()
	sched, err := workload.NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Generation, 0, gens)
	for g := 0; g < gens; g++ {
		b := sched.Next()
		data, err := io.ReadAll(b.Stream)
		if err != nil {
			t.Fatal(err)
		}
		rec, st, err := eng.Backup(context.Background(), b.Label, bytes.NewReader(data))
		if err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		CheckConservation(t, st)
		if st.LogicalBytes != int64(len(data)) {
			t.Fatalf("gen %d: logical bytes %d != stream %d", g, st.LogicalBytes, len(data))
		}
		out = append(out, Generation{Data: data, Recipe: rec, Stats: st})
	}
	return out
}

// VerifyRestores restores every recorded generation with content
// verification and compares against the original stream bytes. Requires the
// engine's containers to store data (StoreData: true).
func VerifyRestores(t *testing.T, eng engine.Engine, gens []Generation) {
	t.Helper()
	rcfg := restore.DefaultConfig()
	rcfg.Verify = true
	for g, gr := range gens {
		if err := restore.VerifyAgainst(context.Background(), eng.Containers(), gr.Recipe, rcfg, gr.Data); err != nil {
			t.Fatalf("generation %d restore: %v", g, err)
		}
	}
}
