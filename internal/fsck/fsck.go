// Package fsck checks the internal consistency of a deduplicating store:
// the invariants that tie container metadata, the chunk index, and backup
// recipes together. A production dedup system ships exactly this kind of
// offline checker; here it doubles as a harness-level assertion that the
// engines and the garbage collector never corrupt shared state.
//
// Invariants checked:
//
//  1. Container metadata is well-formed: entries sized > 0, offsets
//     strictly increasing and inside the container's data section.
//  2. Every index entry points into a sealed container, at an offset where
//     the container's metadata records exactly that fingerprint and size.
//  3. Every recipe reference resolves to a sealed container entry with a
//     matching fingerprint and size.
//  4. On data-storing devices, every chunk referenced by a recipe hashes to
//     its fingerprint.
//
// All reads go through the shadow metadata (PeekMeta) and charge no
// simulated time: fsck is measurement apparatus.
package fsck

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
)

// Report summarizes one check.
type Report struct {
	Containers   int
	MetaEntries  int64
	IndexEntries int // index entries validated (0 if no index given)
	RecipeRefs   int64
	HashedChunks int64 // content-verified chunks (data-storing device only)
	Problems     []string
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

func (r *Report) addf(format string, args ...any) {
	// Cap the problem list: a badly corrupted store should not OOM the
	// checker's report.
	if len(r.Problems) < 100 {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d problems", len(r.Problems))
	}
	return fmt.Sprintf("fsck: %s (%d containers, %d meta entries, %d index entries, %d recipe refs, %d chunks hashed)",
		status, r.Containers, r.MetaEntries, r.IndexEntries, r.RecipeRefs, r.HashedChunks)
}

// entryKey locates one metadata entry.
type entryKey struct {
	container uint32
	offset    int64
}

type entryVal struct {
	fp   chunk.Fingerprint
	size uint32
}

// Check validates the store, optionally an index (nil to skip), and a set
// of recipes. verifyData additionally re-hashes every recipe-referenced
// chunk (requires a data-storing device).
func Check(store *container.Store, index *cindex.Index, recipes []*chunk.Recipe, verifyData bool) (*Report, error) {
	if verifyData && !store.Device().StoresData() {
		return nil, fmt.Errorf("fsck: verifyData requires a data-storing device")
	}
	rep := &Report{Containers: store.NumContainers()}

	// Pass 1: container metadata well-formedness; build the entry table.
	entries := make(map[entryKey]entryVal, 4096)
	cfg := store.Config()
	for id := 0; id < store.NumContainers(); id++ {
		cid := uint32(id)
		metas := store.PeekMeta(cid)
		var prevEnd int64 = -1
		for i, m := range metas {
			rep.MetaEntries++
			if m.Size == 0 {
				rep.addf("container %d entry %d: zero size", cid, i)
				continue
			}
			if int64(i) >= int64(cfg.MaxChunks) {
				rep.addf("container %d: more entries than MaxChunks", cid)
			}
			if prevEnd >= 0 && m.Offset < prevEnd {
				rep.addf("container %d entry %d: offset %d overlaps previous end %d", cid, i, m.Offset, prevEnd)
			}
			prevEnd = m.Offset + int64(m.Size)
			entries[entryKey{cid, m.Offset}] = entryVal{fp: m.FP, size: m.Size}
		}
	}

	// Pass 2: index entries resolve to real copies.
	if index != nil {
		index.Range(func(fp chunk.Fingerprint, loc chunk.Location) bool {
			rep.IndexEntries++
			if !store.Sealed(loc.Container) {
				rep.addf("index %s: unsealed container %d", fp.Short(), loc.Container)
				return true
			}
			ev, ok := entries[entryKey{loc.Container, loc.Offset}]
			if !ok {
				rep.addf("index %s: no metadata entry at c%d@%d", fp.Short(), loc.Container, loc.Offset)
				return true
			}
			if ev.fp != fp {
				rep.addf("index %s: metadata records %s at c%d@%d", fp.Short(), ev.fp.Short(), loc.Container, loc.Offset)
			}
			if ev.size != loc.Size {
				rep.addf("index %s: size %d != metadata %d", fp.Short(), loc.Size, ev.size)
			}
			return true
		})
	}

	// Pass 3: recipe references resolve; optionally re-hash content.
	for _, rec := range recipes {
		var data []byte
		lastContainer := uint32(0xFFFFFFFF)
		for i := range rec.Refs {
			ref := &rec.Refs[i]
			rep.RecipeRefs++
			if !store.Sealed(ref.Loc.Container) {
				rep.addf("recipe %s ref %d: unsealed container %d", rec.Label, i, ref.Loc.Container)
				continue
			}
			ev, ok := entries[entryKey{ref.Loc.Container, ref.Loc.Offset}]
			if !ok {
				rep.addf("recipe %s ref %d: no metadata entry at %v", rec.Label, i, ref.Loc)
				continue
			}
			if ev.fp != ref.FP || ev.size != ref.Size {
				rep.addf("recipe %s ref %d: metadata mismatch at %v", rec.Label, i, ref.Loc)
				continue
			}
			if verifyData {
				if ref.Loc.Container != lastContainer {
					data = store.PeekData(ref.Loc.Container)
					lastContainer = ref.Loc.Container
				}
				piece := store.Extract(data, ref.Loc)
				if chunk.Of(piece) != ref.FP {
					rep.addf("recipe %s ref %d: content hash mismatch", rec.Label, i)
				}
				rep.HashedChunks++
			}
		}
	}
	return rep, nil
}
