// Package fsck checks the internal consistency of a deduplicating store:
// the invariants that tie container metadata, the chunk index, and backup
// recipes together. A production dedup system ships exactly this kind of
// offline checker; here it doubles as a harness-level assertion that the
// engines and the garbage collector never corrupt shared state.
//
// Invariants checked:
//
//  1. Container metadata is well-formed: entries sized > 0, offsets
//     strictly increasing and inside the container's data section.
//  2. Every index entry points into a sealed container, at an offset where
//     the container's metadata records exactly that fingerprint and size.
//  3. Every recipe reference resolves to a sealed container entry with a
//     matching fingerprint and size.
//  4. On data-storing backends, every chunk referenced by a recipe hashes to
//     its fingerprint, and every container's data section is readable at its
//     recorded length (torn writes surface here as blockstore.ErrCorrupt).
//
// All reads go through the shadow metadata (PeekMeta) and uncharged data
// fetches (PeekData): fsck is measurement apparatus and charges no simulated
// time.
//
// Repair is the destructive companion: containers that fail invariants are
// quarantined out of the store (the durable file backend moves their files
// into quarantine/), their fingerprints are dropped from the chunk index so
// future backups re-store the data, and every recipe that referenced them is
// reported as a lost backup.
package fsck

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
)

// Report summarizes one check.
type Report struct {
	Containers   int
	MetaEntries  int64
	IndexEntries int // index entries validated (0 if no index given)
	RecipeRefs   int64
	HashedChunks int64 // content-verified chunks (data-storing backend only)
	Problems     []string
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

func (r *Report) addf(format string, args ...any) {
	// Cap the problem list: a badly corrupted store should not OOM the
	// checker's report.
	if len(r.Problems) < 100 {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d problems", len(r.Problems))
	}
	return fmt.Sprintf("fsck: %s (%d containers, %d meta entries, %d index entries, %d recipe refs, %d chunks hashed)",
		status, r.Containers, r.MetaEntries, r.IndexEntries, r.RecipeRefs, r.HashedChunks)
}

// entryKey locates one metadata entry.
type entryKey struct {
	container uint32
	offset    int64
}

type entryVal struct {
	fp   chunk.Fingerprint
	size uint32
}

// Check validates the store, optionally an index (nil to skip), and a set
// of recipes. verifyData additionally re-hashes every recipe-referenced
// chunk and validates every container's data-section length (requires a
// data-storing backend).
func Check(ctx context.Context, store *container.Store, index *cindex.Index, recipes []*chunk.Recipe, verifyData bool) (*Report, error) {
	if verifyData && !store.StoresData() {
		return nil, fmt.Errorf("fsck: verifyData requires a data-storing backend")
	}
	rep := &Report{Containers: store.NumContainers()}

	// Pass 1: container metadata well-formedness; build the entry table.
	entries := make(map[entryKey]entryVal, 4096)
	cfg := store.Config()
	for id := 0; id < store.Slots(); id++ {
		cid := uint32(id)
		if !store.Sealed(cid) {
			continue // quarantined or never sealed
		}
		metas := store.PeekMeta(cid)
		// Meta offsets are absolute device offsets; the container's data
		// section spans [dataStart, dataStart+fill).
		dataStart := store.DataStart(cid)
		dataEnd := dataStart + store.DataFill(cid)
		var prevEnd int64 = -1
		for i, m := range metas {
			rep.MetaEntries++
			if m.Size == 0 {
				rep.addf("container %d entry %d: zero size", cid, i)
				continue
			}
			if int64(i) >= int64(cfg.MaxChunks) {
				rep.addf("container %d: more entries than MaxChunks", cid)
			}
			if m.Offset < dataStart || m.Offset+int64(m.Size) > dataEnd {
				rep.addf("container %d entry %d: [%d,%d) outside data section [%d,%d)",
					cid, i, m.Offset, m.Offset+int64(m.Size), dataStart, dataEnd)
			}
			if prevEnd >= 0 && m.Offset < prevEnd {
				rep.addf("container %d entry %d: offset %d overlaps previous end %d", cid, i, m.Offset, prevEnd)
			}
			prevEnd = m.Offset + int64(m.Size)
			entries[entryKey{cid, m.Offset}] = entryVal{fp: m.FP, size: m.Size}
		}
	}

	// Pass 2: index entries resolve to real copies.
	if index != nil {
		index.Range(func(fp chunk.Fingerprint, loc chunk.Location) bool {
			rep.IndexEntries++
			if !store.Sealed(loc.Container) {
				rep.addf("index %s: unsealed container %d", fp.Short(), loc.Container)
				return true
			}
			ev, ok := entries[entryKey{loc.Container, loc.Offset}]
			if !ok {
				rep.addf("index %s: no metadata entry at c%d@%d", fp.Short(), loc.Container, loc.Offset)
				return true
			}
			if ev.fp != fp {
				rep.addf("index %s: metadata records %s at c%d@%d", fp.Short(), ev.fp.Short(), loc.Container, loc.Offset)
			}
			if ev.size != loc.Size {
				rep.addf("index %s: size %d != metadata %d", fp.Short(), loc.Size, ev.size)
			}
			return true
		})
	}

	// Pass 3: recipe references resolve; optionally re-hash content. A
	// container whose data section fails to read (torn write, backend fault)
	// is one problem, not one per referenced chunk.
	for _, rec := range recipes {
		var data []byte
		lastContainer := uint32(0xFFFFFFFF)
		dataOK := false
		for i := range rec.Refs {
			ref := &rec.Refs[i]
			rep.RecipeRefs++
			if !store.Sealed(ref.Loc.Container) {
				rep.addf("recipe %s ref %d: unsealed container %d", rec.Label, i, ref.Loc.Container)
				continue
			}
			ev, ok := entries[entryKey{ref.Loc.Container, ref.Loc.Offset}]
			if !ok {
				rep.addf("recipe %s ref %d: no metadata entry at %v", rec.Label, i, ref.Loc)
				continue
			}
			if ev.fp != ref.FP || ev.size != ref.Size {
				rep.addf("recipe %s ref %d: metadata mismatch at %v", rec.Label, i, ref.Loc)
				continue
			}
			if verifyData {
				if ref.Loc.Container != lastContainer {
					lastContainer = ref.Loc.Container
					var err error
					data, err = store.PeekData(ctx, ref.Loc.Container)
					dataOK = err == nil
					if err != nil {
						rep.addf("container %d: data section unreadable: %v", ref.Loc.Container, err)
					}
				}
				if !dataOK {
					continue
				}
				piece := store.Extract(data, ref.Loc)
				if chunk.Of(piece) != ref.FP {
					rep.addf("recipe %s ref %d: content hash mismatch", rec.Label, i)
				}
				rep.HashedChunks++
			}
		}
	}
	return rep, nil
}

// IndexDropper purges all index state derived from one container — the
// chunk-index entries, sampled/current tables, and metadata caches that
// would otherwise keep routing dedup hits into a quarantined container.
// Engine resolvers implement it.
type IndexDropper interface {
	DropFromIndex(cid uint32) int
}

// RepairResult summarizes one repair pass.
type RepairResult struct {
	Quarantined  []uint32          // containers removed from the store, ascending
	Reasons      map[uint32]string // why each was quarantined
	IndexDropped int               // index entries purged
	LostBackups  []string          // labels of recipes that referenced a quarantined container
}

func (r *RepairResult) String() string {
	return fmt.Sprintf("fsck repair: quarantined %d containers, dropped %d index entries, %d backups lost",
		len(r.Quarantined), r.IndexDropped, len(r.LostBackups))
}

// Repair scans every sealed container and quarantines the ones that fail
// invariants: malformed metadata (zero-size, overlapping, or out-of-section
// entries) and — on data-storing backends, when verifyData is set —
// unreadable or torn data sections and content-hash mismatches. For each
// quarantined container the dropper (pass nil if no index is attached)
// purges derived index state BEFORE the container leaves the store, and any
// recipe referencing it is reported in LostBackups.
//
// Repair is deliberately container-granular: one bad chunk condemns its
// container, the unit of placement and of durability in this store.
func Repair(ctx context.Context, store *container.Store, drop IndexDropper, recipes []*chunk.Recipe, verifyData bool) (*RepairResult, error) {
	if verifyData && !store.StoresData() {
		return nil, fmt.Errorf("fsck: verifyData requires a data-storing backend")
	}
	res := &RepairResult{Reasons: make(map[uint32]string)}

	condemn := func(cid uint32, reason string) {
		if _, dup := res.Reasons[cid]; !dup {
			res.Reasons[cid] = reason
		}
	}
	for id := 0; id < store.Slots(); id++ {
		cid := uint32(id)
		if !store.Sealed(cid) {
			continue
		}
		metas := store.PeekMeta(cid)
		dataStart := store.DataStart(cid)
		dataEnd := dataStart + store.DataFill(cid)
		var prevEnd int64 = -1
		for i, m := range metas {
			if m.Size == 0 {
				condemn(cid, fmt.Sprintf("entry %d: zero size", i))
			}
			if m.Offset < dataStart || m.Offset+int64(m.Size) > dataEnd {
				condemn(cid, fmt.Sprintf("entry %d outside data section", i))
			}
			if prevEnd >= 0 && m.Offset < prevEnd {
				condemn(cid, fmt.Sprintf("entry %d overlaps previous", i))
			}
			prevEnd = m.Offset + int64(m.Size)
		}
		if _, bad := res.Reasons[cid]; bad || !verifyData {
			continue
		}
		data, err := store.PeekData(ctx, cid)
		if err != nil {
			condemn(cid, fmt.Sprintf("data section unreadable: %v", err))
			continue
		}
		for i, m := range metas {
			loc := chunk.Location{Container: cid, Segment: m.Segment, Offset: m.Offset, Size: m.Size}
			if chunk.Of(store.Extract(data, loc)) != m.FP {
				condemn(cid, fmt.Sprintf("entry %d: content hash mismatch", i))
				break
			}
		}
	}

	for cid := range res.Reasons {
		res.Quarantined = append(res.Quarantined, cid)
	}
	sort.Slice(res.Quarantined, func(i, j int) bool { return res.Quarantined[i] < res.Quarantined[j] })

	// Purge derived index state while the container's metadata is still
	// readable, then quarantine.
	for _, cid := range res.Quarantined {
		if drop != nil {
			res.IndexDropped += drop.DropFromIndex(cid)
		}
		if err := store.Quarantine(ctx, cid, res.Reasons[cid]); err != nil {
			return res, fmt.Errorf("fsck: quarantining container %d: %w", cid, err)
		}
	}

	// Report every retained backup whose recipe crosses a quarantined
	// container: those streams are no longer fully restorable.
	if len(res.Quarantined) > 0 {
		gone := make(map[uint32]bool, len(res.Quarantined))
		for _, cid := range res.Quarantined {
			gone[cid] = true
		}
		for _, rec := range recipes {
			for i := range rec.Refs {
				if gone[rec.Refs[i].Loc.Container] {
					res.LostBackups = append(res.LostBackups, rec.Label)
					break
				}
			}
		}
	}
	return res, nil
}
