package fsck

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/enginetest"
	"repro/internal/gc"
)

func rig(t *testing.T, storeData bool) (*container.Store, *cindex.Index) {
	t.Helper()
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, storeData),
		container.Config{DataCap: 4096, MaxChunks: 16})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cindex.New(disk.NewDevice(disk.DefaultModel(), &clk, false), cindex.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func buildClean(t *testing.T, s *container.Store, ix *cindex.Index) *chunk.Recipe {
	t.Helper()
	rec := &chunk.Recipe{Label: "clean"}
	for i := 0; i < 12; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 500)
		c := chunk.New(data)
		loc := mustWrite(s, c, uint64(i/4+1))
		ix.Insert(c.FP, loc)
		rec.Append(c.FP, c.Size, loc)
	}
	s.Flush(context.Background())
	return rec
}

func TestCleanStorePasses(t *testing.T) {
	s, ix := rig(t, true)
	rec := buildClean(t, s, ix)
	rep, err := Check(context.Background(), s, ix, []*chunk.Recipe{rec}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store flagged: %v", rep.Problems)
	}
	if rep.MetaEntries != 12 || rep.RecipeRefs != 12 || rep.IndexEntries != 12 || rep.HashedChunks != 12 {
		t.Fatalf("report counts: %+v", rep)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Fatal("String should report OK")
	}
}

func TestVerifyDataRequiresStoringDevice(t *testing.T) {
	s, ix := rig(t, false)
	buildClean(t, s, ix)
	if _, err := Check(context.Background(), s, ix, nil, true); err == nil {
		t.Fatal("verifyData on hole device must error")
	}
}

func TestDetectsBogusIndexEntry(t *testing.T) {
	s, ix := rig(t, false)
	buildClean(t, s, ix)
	// Index entry pointing at an offset with no metadata entry.
	ix.Insert(chunk.Of([]byte("ghost")), chunk.Location{Container: 0, Offset: 99999, Size: 10})
	rep, err := Check(context.Background(), s, ix, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("bogus index entry not detected")
	}
}

func TestDetectsIndexFingerprintMismatch(t *testing.T) {
	s, ix := rig(t, false)
	rec := buildClean(t, s, ix)
	// Repoint an index entry at a different chunk's location.
	ix.Update(rec.Refs[0].FP, rec.Refs[1].Loc)
	rep, _ := Check(context.Background(), s, ix, nil, false)
	if rep.OK() {
		t.Fatal("fingerprint mismatch not detected")
	}
}

func TestDetectsCorruptRecipeRef(t *testing.T) {
	s, ix := rig(t, false)
	rec := buildClean(t, s, ix)
	rec.Refs[3].Loc.Offset += 7 // point into the middle of a chunk
	rep, _ := Check(context.Background(), s, ix, []*chunk.Recipe{rec}, false)
	if rep.OK() {
		t.Fatal("corrupt recipe ref not detected")
	}
}

func TestDetectsUnsealedReference(t *testing.T) {
	s, ix := rig(t, false)
	rec := buildClean(t, s, ix)
	rec.Refs[0].Loc.Container = 999
	rep, _ := Check(context.Background(), s, ix, []*chunk.Recipe{rec}, false)
	if rep.OK() {
		t.Fatal("unsealed container reference not detected")
	}
}

func TestDetectsContentCorruption(t *testing.T) {
	s, ix := rig(t, true)
	rec := buildClean(t, s, ix)
	// Claim a different fingerprint for a valid location/size pair: the
	// metadata check catches the lie before hashing even runs.
	rec.Refs[2].FP = chunk.Of([]byte("lies"))
	rep, _ := Check(context.Background(), s, ix, []*chunk.Recipe{rec}, true)
	if rep.OK() {
		t.Fatal("content lie not detected")
	}
}

func TestProblemListCapped(t *testing.T) {
	s, ix := rig(t, false)
	rec := buildClean(t, s, ix)
	// Make hundreds of bad refs.
	var bad chunk.Recipe
	bad.Label = "bad"
	for i := 0; i < 500; i++ {
		r := rec.Refs[0]
		r.Loc.Offset += int64(i + 1)
		bad.Refs = append(bad.Refs, r)
	}
	rep, _ := Check(context.Background(), s, ix, []*chunk.Recipe{&bad}, false)
	if len(rep.Problems) > 100 {
		t.Fatalf("problem list not capped: %d", len(rep.Problems))
	}
}

func TestEngineAndGCLeaveConsistentState(t *testing.T) {
	// The headline use: after a DeFrag run plus garbage collection, every
	// invariant holds and all content hashes match.
	cfg := core.DefaultConfig(128 << 20)
	cfg.StoreData = true
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(41), 6)
	var recipes []*chunk.Recipe
	for _, g := range gens {
		recipes = append(recipes, g.Recipe)
	}
	if _, err := gc.Collect(context.Background(), eng.Containers(), eng.Index(), recipes, 0.7); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(context.Background(), eng.Containers(), eng.Index(), recipes, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-GC inconsistency: %v", rep.Problems[:min(5, len(rep.Problems))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}
