// Package gc implements offline container compaction — the natural
// companion to DeFrag that the paper leaves as future work: every rewrite
// supersedes an old chunk copy, and with long retention the superseded
// copies accumulate as garbage inside otherwise-live containers.
//
// Collect scans sealed containers, and for every container whose live
// fraction falls below a threshold it copies the live chunks out to fresh
// containers (in scan order, preserving what locality remains), repoints
// the chunk index, and patches every retained recipe to reference the moved
// copies. The old containers are then dead and their space reclaimable.
//
// Liveness has two sources, both of which must survive:
//   - index-authoritative copies (future backups dedupe against them);
//   - copies referenced by any retained recipe (restores must keep working).
package gc

import (
	"context"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
)

// Result summarizes one collection pass.
type Result struct {
	ContainersScanned   int
	ContainersCollected int
	ChunksMoved         int64
	BytesMoved          int64
	BytesReclaimed      int64 // data bytes of collected containers not moved (garbage)
	RecipeRefsPatched   int64
}

func (r Result) String() string {
	return fmt.Sprintf("collected %d/%d containers: moved %d chunks (%.1f MB), reclaimed %.1f MB, patched %d refs",
		r.ContainersCollected, r.ContainersScanned, r.ChunksMoved,
		float64(r.BytesMoved)/1e6, float64(r.BytesReclaimed)/1e6, r.RecipeRefsPatched)
}

// copyKey identifies one physical chunk copy.
type copyKey struct {
	container uint32
	offset    int64
}

// Collect compacts containers whose live fraction is below threshold.
// recipes are the retained backups; their references define liveness along
// with the index, and they are patched in place when copies move. The
// segment identity of moved chunks is preserved, so SPL grouping of future
// backups still sees the same segments.
//
// Collect charges the store's simulated clock for the container reads and
// the rewritten data (a real collector does this I/O), so experiments can
// price GC too.
func Collect(ctx context.Context, store *container.Store, index *cindex.Index, recipes []*chunk.Recipe, threshold float64) (Result, error) {
	if threshold < 0 || threshold > 1 {
		return Result{}, fmt.Errorf("gc: threshold must be in [0,1], got %v", threshold)
	}
	var res Result
	n := store.Slots()
	res.ContainersScanned = store.NumContainers()
	if n == 0 {
		return res, nil
	}

	// Liveness of specific copies: recipe references pin exact locations.
	pinned := make(map[copyKey]struct{}, 1024)
	for _, r := range recipes {
		for i := range r.Refs {
			loc := r.Refs[i].Loc
			pinned[copyKey{loc.Container, loc.Offset}] = struct{}{}
		}
	}

	// Decide which containers to collect. A copy is live if a recipe pins
	// it or the index points at it; a container is collectable when its
	// live data fraction is below threshold.
	collect := make(map[uint32]bool)
	liveOf := func(id uint32) (live int64, total int64) {
		for _, m := range store.PeekMeta(id) {
			total += int64(m.Size)
			if _, ok := pinned[copyKey{id, m.Offset}]; ok {
				live += int64(m.Size)
				continue
			}
			if loc, ok := index.Peek(m.FP); ok && loc.Container == id && loc.Offset == m.Offset {
				live += int64(m.Size)
			}
		}
		return live, total
	}
	lastID := uint32(n - 1)
	for id := uint32(0); id < uint32(n); id++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if !store.Sealed(id) {
			continue // quarantined or never sealed: nothing to scan
		}
		live, total := liveOf(id)
		if total == 0 {
			continue
		}
		if float64(live)/float64(total) < threshold {
			collect[id] = true
		}
	}
	if len(collect) == 0 {
		return res, nil
	}

	// Move live chunks out of collected containers, in container order so
	// surviving locality is preserved. Reading the container data section
	// and writing the moved chunks both charge the clock.
	moved := make(map[copyKey]chunk.Location, 1024)
	var aborted error
	for id := uint32(0); id <= lastID; id++ {
		if err := ctx.Err(); err != nil {
			// Abort between containers, but fall through to the seal,
			// index-flush and recipe-patch tail below: chunks already moved
			// must become durable and every structure that names them must
			// agree before we surface the cancellation, so a cancelled
			// Collect leaves the store exactly as consistent as a completed
			// one (just with fewer containers processed).
			aborted = err
			break
		}
		if !collect[id] {
			continue
		}
		metas := store.PeekMeta(id)
		var data []byte
		var err error
		if store.StoresData() {
			data, err = store.ReadData(ctx, id)
		} else {
			_, err = store.ReadData(ctx, id) // charge the read even in metadata-only mode
		}
		if err != nil {
			return res, fmt.Errorf("gc: reading container %d: %w", id, err)
		}
		var movedBytes int64
		for _, m := range metas {
			key := copyKey{id, m.Offset}
			_, isPinned := pinned[key]
			idxLoc, inIndex := index.Peek(m.FP)
			authoritative := inIndex && idxLoc.Container == id && idxLoc.Offset == m.Offset
			if !isPinned && !authoritative {
				continue // garbage: drop
			}
			var c chunk.Chunk
			if data != nil {
				old := chunk.Location{Container: id, Segment: m.Segment, Offset: m.Offset, Size: m.Size}
				c = chunk.Chunk{FP: m.FP, Size: m.Size, Data: append([]byte(nil), store.Extract(data, old)...)}
			} else {
				c = chunk.Meta(m.FP, m.Size)
			}
			newLoc, werr := store.Write(ctx, c, m.Segment)
			if werr != nil {
				return res, fmt.Errorf("gc: rewriting chunk from container %d: %w", id, werr)
			}
			moved[key] = newLoc
			if authoritative {
				index.Update(m.FP, newLoc)
			}
			res.ChunksMoved++
			res.BytesMoved += int64(c.Size)
			movedBytes += int64(c.Size)
		}
		// Everything else in this container is now reclaimable.
		var total int64
		for _, m := range metas {
			total += int64(m.Size)
		}
		res.BytesReclaimed += total - movedBytes
		store.MarkDead(id, total)
		res.ContainersCollected++
	}
	// Seal outside the request context: the moves above must land even
	// when the abort reason is a cancelled ctx.
	if err := store.Flush(context.WithoutCancel(ctx)); err != nil {
		return res, fmt.Errorf("gc: sealing moved chunks: %w", err)
	}
	index.Flush()

	// Patch retained recipes to the moved copies.
	for _, r := range recipes {
		for i := range r.Refs {
			ref := &r.Refs[i]
			if newLoc, ok := moved[copyKey{ref.Loc.Container, ref.Loc.Offset}]; ok {
				ref.Loc = newLoc
				res.RecipeRefsPatched++
			}
		}
	}
	return res, aborted
}
