package gc

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/enginetest"
	"repro/internal/restore"
)

// rig builds a store + index pair over one clock.
func rig(t *testing.T, storeData bool) (*container.Store, *cindex.Index) {
	t.Helper()
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, storeData),
		container.Config{DataCap: 2048, MaxChunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cindex.New(disk.NewDevice(disk.DefaultModel(), &clk, false), cindex.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func put(s *container.Store, ix *cindex.Index, data []byte, seg uint64) (chunk.Fingerprint, chunk.Location) {
	c := chunk.New(data)
	loc := mustWrite(s, c, seg)
	ix.Insert(c.FP, loc)
	return c.FP, loc
}

func TestThresholdValidation(t *testing.T) {
	s, ix := rig(t, false)
	for _, bad := range []float64{-0.1, 1.1} {
		if _, err := Collect(context.Background(), s, ix, nil, bad); err == nil {
			t.Errorf("threshold %v should fail", bad)
		}
	}
}

func TestEmptyStoreNoop(t *testing.T) {
	s, ix := rig(t, false)
	res, err := Collect(context.Background(), s, ix, nil, 0.5)
	if err != nil || res.ContainersCollected != 0 {
		t.Fatalf("empty collect: %v %+v", err, res)
	}
}

func TestFullyLiveContainersUntouched(t *testing.T) {
	s, ix := rig(t, false)
	var rec chunk.Recipe
	for i := 0; i < 10; i++ {
		fp, loc := put(s, ix, bytes.Repeat([]byte{byte(i)}, 300), 1)
		rec.Append(fp, 300, loc)
	}
	s.Flush(context.Background())
	res, err := Collect(context.Background(), s, ix, []*chunk.Recipe{&rec}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected != 0 || res.ChunksMoved != 0 {
		t.Fatalf("fully live store must not be collected: %+v", res)
	}
}

func TestGarbageCollected(t *testing.T) {
	s, ix := rig(t, true)
	// Container 0: two chunks; one will be superseded.
	fpDead, _ := put(s, ix, bytes.Repeat([]byte{1}, 900), 1)
	fpLive, locLive := put(s, ix, bytes.Repeat([]byte{2}, 900), 1)
	s.Flush(context.Background())
	// Supersede fpDead with a copy in container 1 (a rewrite).
	cDead := chunk.New(bytes.Repeat([]byte{1}, 900))
	newLoc := mustWrite(s, cDead, 2)
	ix.Update(fpDead, newLoc)
	put(s, ix, bytes.Repeat([]byte{3}, 900), 2)
	s.Flush(context.Background())

	var rec chunk.Recipe
	rec.Append(fpLive, 900, locLive) // pin the live copy in container 0

	res, err := Collect(context.Background(), s, ix, []*chunk.Recipe{&rec}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected == 0 {
		t.Fatalf("half-dead container should be collected: %+v", res)
	}
	if res.BytesReclaimed < 900 {
		t.Fatalf("superseded copy not reclaimed: %+v", res)
	}
	// The pinned copy must have moved and the recipe must be patched.
	if rec.Refs[0].Loc == locLive {
		t.Fatal("recipe still references collected container")
	}
	if res.RecipeRefsPatched != 1 {
		t.Fatalf("patched %d refs, want 1", res.RecipeRefsPatched)
	}
	// Index must point at a valid copy for the live chunk.
	loc, ok := ix.Peek(fpLive)
	if !ok || loc != rec.Refs[0].Loc {
		t.Fatalf("index/recipe disagree after GC: %v vs %v", loc, rec.Refs[0].Loc)
	}
	// The moved copy's content must read back intact.
	got, err := s.ReadChunk(context.Background(), rec.Refs[0].Loc)
	if err != nil {
		t.Fatalf("ReadChunk: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{2}, 900)) {
		t.Fatal("moved chunk corrupted")
	}
	if res.String() == "" {
		t.Fatal("String empty")
	}
}

func TestEndToEndWithDeFrag(t *testing.T) {
	// A DeFrag engine accumulates garbage over generations; collecting at a
	// threshold must leave every retained backup restorable bit-exactly.
	cfg := core.DefaultConfig(128 << 20)
	cfg.StoreData = true
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(31), 8)

	var recipes []*chunk.Recipe
	for _, g := range gens {
		recipes = append(recipes, g.Recipe)
	}
	res, err := Collect(context.Background(), eng.Containers(), eng.Index(), recipes, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gc: %s", res)

	rcfg := restore.DefaultConfig()
	rcfg.Verify = true
	for i, g := range gens {
		if err := restore.VerifyAgainst(context.Background(), eng.Containers(), g.Recipe, rcfg, g.Data); err != nil {
			t.Fatalf("generation %d after GC: %v", i, err)
		}
	}
	// And the engine must keep working after GC: one more backup + restore.
	more := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(32), 1)
	if err := restore.VerifyAgainst(context.Background(), eng.Containers(), more[0].Recipe, rcfg, more[0].Data); err != nil {
		t.Fatalf("post-GC backup: %v", err)
	}
}

func TestRetentionExpiryEnablesReclaim(t *testing.T) {
	// Dropping old recipes from the retained set frees their exclusive
	// copies: collecting with an empty retention set reclaims everything
	// not index-authoritative.
	cfg := core.DefaultConfig(64 << 20)
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enginetest.RunGenerations(t, eng, enginetest.SmallConfig(33), 6)
	resAll, err := Collect(context.Background(), eng.Containers(), eng.Index(), nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if resAll.ContainersCollected == 0 {
		t.Fatal("threshold 1.0 with no retention should collect containers")
	}
	if resAll.BytesReclaimed == 0 {
		t.Fatal("no bytes reclaimed")
	}
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}
