package gc

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/enginetest"
	"repro/internal/restore"
)

// rig builds a store + index pair over one clock.
func rig(t *testing.T, storeData bool) (*container.Store, *cindex.Index) {
	t.Helper()
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, storeData),
		container.Config{DataCap: 2048, MaxChunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cindex.New(disk.NewDevice(disk.DefaultModel(), &clk, false), cindex.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func put(s *container.Store, ix *cindex.Index, data []byte, seg uint64) (chunk.Fingerprint, chunk.Location) {
	c := chunk.New(data)
	loc := mustWrite(s, c, seg)
	ix.Insert(c.FP, loc)
	return c.FP, loc
}

func TestThresholdValidation(t *testing.T) {
	s, ix := rig(t, false)
	for _, bad := range []float64{-0.1, 1.1} {
		if _, err := Collect(context.Background(), s, ix, nil, bad); err == nil {
			t.Errorf("threshold %v should fail", bad)
		}
	}
}

func TestEmptyStoreNoop(t *testing.T) {
	s, ix := rig(t, false)
	res, err := Collect(context.Background(), s, ix, nil, 0.5)
	if err != nil || res.ContainersCollected != 0 {
		t.Fatalf("empty collect: %v %+v", err, res)
	}
}

func TestFullyLiveContainersUntouched(t *testing.T) {
	s, ix := rig(t, false)
	var rec chunk.Recipe
	for i := 0; i < 10; i++ {
		fp, loc := put(s, ix, bytes.Repeat([]byte{byte(i)}, 300), 1)
		rec.Append(fp, 300, loc)
	}
	s.Flush(context.Background())
	res, err := Collect(context.Background(), s, ix, []*chunk.Recipe{&rec}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected != 0 || res.ChunksMoved != 0 {
		t.Fatalf("fully live store must not be collected: %+v", res)
	}
}

func TestGarbageCollected(t *testing.T) {
	s, ix := rig(t, true)
	// Container 0: two chunks; one will be superseded.
	fpDead, _ := put(s, ix, bytes.Repeat([]byte{1}, 900), 1)
	fpLive, locLive := put(s, ix, bytes.Repeat([]byte{2}, 900), 1)
	s.Flush(context.Background())
	// Supersede fpDead with a copy in container 1 (a rewrite).
	cDead := chunk.New(bytes.Repeat([]byte{1}, 900))
	newLoc := mustWrite(s, cDead, 2)
	ix.Update(fpDead, newLoc)
	put(s, ix, bytes.Repeat([]byte{3}, 900), 2)
	s.Flush(context.Background())

	var rec chunk.Recipe
	rec.Append(fpLive, 900, locLive) // pin the live copy in container 0

	res, err := Collect(context.Background(), s, ix, []*chunk.Recipe{&rec}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected == 0 {
		t.Fatalf("half-dead container should be collected: %+v", res)
	}
	if res.BytesReclaimed < 900 {
		t.Fatalf("superseded copy not reclaimed: %+v", res)
	}
	// The pinned copy must have moved and the recipe must be patched.
	if rec.Refs[0].Loc == locLive {
		t.Fatal("recipe still references collected container")
	}
	if res.RecipeRefsPatched != 1 {
		t.Fatalf("patched %d refs, want 1", res.RecipeRefsPatched)
	}
	// Index must point at a valid copy for the live chunk.
	loc, ok := ix.Peek(fpLive)
	if !ok || loc != rec.Refs[0].Loc {
		t.Fatalf("index/recipe disagree after GC: %v vs %v", loc, rec.Refs[0].Loc)
	}
	// The moved copy's content must read back intact.
	got, err := s.ReadChunk(context.Background(), rec.Refs[0].Loc)
	if err != nil {
		t.Fatalf("ReadChunk: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{2}, 900)) {
		t.Fatal("moved chunk corrupted")
	}
	if res.String() == "" {
		t.Fatal("String empty")
	}
}

func TestEndToEndWithDeFrag(t *testing.T) {
	// A DeFrag engine accumulates garbage over generations; collecting at a
	// threshold must leave every retained backup restorable bit-exactly.
	cfg := core.DefaultConfig(128 << 20)
	cfg.StoreData = true
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(31), 8)

	var recipes []*chunk.Recipe
	for _, g := range gens {
		recipes = append(recipes, g.Recipe)
	}
	res, err := Collect(context.Background(), eng.Containers(), eng.Index(), recipes, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gc: %s", res)

	rcfg := restore.DefaultConfig()
	rcfg.Verify = true
	for i, g := range gens {
		if err := restore.VerifyAgainst(context.Background(), eng.Containers(), g.Recipe, rcfg, g.Data); err != nil {
			t.Fatalf("generation %d after GC: %v", i, err)
		}
	}
	// And the engine must keep working after GC: one more backup + restore.
	more := enginetest.RunGenerations(t, eng, enginetest.SmallConfig(32), 1)
	if err := restore.VerifyAgainst(context.Background(), eng.Containers(), more[0].Recipe, rcfg, more[0].Data); err != nil {
		t.Fatalf("post-GC backup: %v", err)
	}
}

func TestRetentionExpiryEnablesReclaim(t *testing.T) {
	// Dropping old recipes from the retained set frees their exclusive
	// copies: collecting with an empty retention set reclaims everything
	// not index-authoritative.
	cfg := core.DefaultConfig(64 << 20)
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enginetest.RunGenerations(t, eng, enginetest.SmallConfig(33), 6)
	resAll, err := Collect(context.Background(), eng.Containers(), eng.Index(), nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if resAll.ContainersCollected == 0 {
		t.Fatal("threshold 1.0 with no retention should collect containers")
	}
	if resAll.BytesReclaimed == 0 {
		t.Fatal("no bytes reclaimed")
	}
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}

func TestZeroRecipesCollectsNonAuthoritative(t *testing.T) {
	// No retained recipes at all: only index-authoritative copies survive.
	s, ix := rig(t, true)
	fpKeep, locKeep := put(s, ix, bytes.Repeat([]byte{4}, 900), 1)
	cDead := chunk.New(bytes.Repeat([]byte{5}, 900))
	mustWrite(s, cDead, 1) // never indexed: garbage from birth
	s.Flush(context.Background())

	res, err := Collect(context.Background(), s, ix, nil, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected != 1 || res.ChunksMoved != 1 {
		t.Fatalf("zero-recipe collect: %+v", res)
	}
	if res.RecipeRefsPatched != 0 {
		t.Fatalf("patched recipe refs with no recipes: %+v", res)
	}
	loc, ok := ix.Peek(fpKeep)
	if !ok || loc == locKeep {
		t.Fatalf("authoritative copy not repointed: %v", loc)
	}
	if got, err := s.ReadChunk(context.Background(), loc); err != nil || !bytes.Equal(got, bytes.Repeat([]byte{4}, 900)) {
		t.Fatalf("moved authoritative copy unreadable: %v", err)
	}
}

func TestAllDeadStoreReclaimsEverything(t *testing.T) {
	// Every copy superseded and no retention: collection moves nothing and
	// reclaims every byte.
	s, ix := rig(t, true)
	var fps []chunk.Fingerprint
	for i := 0; i < 4; i++ {
		fp, _ := put(s, ix, bytes.Repeat([]byte{byte(i + 1)}, 900), 1)
		fps = append(fps, fp)
	}
	s.Flush(context.Background())
	for _, fp := range fps {
		ix.Delete(fp)
	}
	res, err := Collect(context.Background(), s, ix, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksMoved != 0 {
		t.Fatalf("all-dead store moved chunks: %+v", res)
	}
	if res.ContainersCollected == 0 || res.BytesReclaimed != 4*900 {
		t.Fatalf("all-dead store not fully reclaimed: %+v", res)
	}
}

func TestThresholdBoundaries(t *testing.T) {
	// Threshold 0 collects nothing (live/total is never negative);
	// threshold 1 collects exactly the containers carrying any garbage.
	build := func() (*container.Store, *cindex.Index, *chunk.Recipe) {
		s, ix := rig(t, true)
		var rec chunk.Recipe
		fp, loc := put(s, ix, bytes.Repeat([]byte{1}, 900), 1)
		rec.Append(fp, 900, loc)
		mustWrite(s, chunk.New(bytes.Repeat([]byte{2}, 900)), 1) // garbage
		s.Flush(context.Background())
		// Container 1: fully live.
		fp2, loc2 := put(s, ix, bytes.Repeat([]byte{3}, 900), 2)
		rec.Append(fp2, 900, loc2)
		s.Flush(context.Background())
		return s, ix, &rec
	}

	s, ix, rec := build()
	res, err := Collect(context.Background(), s, ix, []*chunk.Recipe{rec}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected != 0 {
		t.Fatalf("threshold 0 must collect nothing: %+v", res)
	}

	s, ix, rec = build()
	res, err = Collect(context.Background(), s, ix, []*chunk.Recipe{rec}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected != 1 {
		t.Fatalf("threshold 1 must collect exactly the half-dead container: %+v", res)
	}
	for i, want := range [][]byte{bytes.Repeat([]byte{1}, 900), bytes.Repeat([]byte{3}, 900)} {
		got, err := s.ReadChunk(context.Background(), rec.Refs[i].Loc)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("ref %d unreadable after boundary collect: %v", i, err)
		}
	}
}

// cancelAfter is a context whose Err starts reporting Canceled after the
// n-th check — a deterministic way to abort Collect mid-pass.
type cancelAfter struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *cancelAfter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func TestCancellationMidCollect(t *testing.T) {
	// Cancel after the selection pass plus one moved container: Collect
	// must surface the cancellation AND leave the store fully consistent —
	// moved chunks sealed, index flushed, recipes patched for what moved.
	s, ix := rig(t, true)
	var rec chunk.Recipe
	var wants [][]byte
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 900)
		fp, loc := put(s, ix, data, uint64(i+1))
		rec.Append(fp, 900, loc)
		wants = append(wants, data)
		mustWrite(s, chunk.New(bytes.Repeat([]byte{0xAA, byte(i)}, 450)), uint64(i+1)) // garbage
		s.Flush(context.Background())
	}

	// Budget: one Err check per slot in the selection pass, then one loop
	// check plus one backend read for the first moved container; the next
	// loop-boundary check aborts.
	n := s.Slots()
	ctx := &cancelAfter{Context: context.Background(), after: n + 2}
	res, err := Collect(ctx, s, ix, []*chunk.Recipe{&rec}, 0.9)
	if err == nil {
		t.Fatal("cancelled collect must return an error")
	}
	if res.ContainersCollected == 0 || res.ContainersCollected >= 3 {
		t.Fatalf("cancellation should stop partway: %+v", res)
	}
	// Everything must still restore bit-exactly, moved or not.
	for i := range rec.Refs {
		got, rerr := s.ReadChunk(context.Background(), rec.Refs[i].Loc)
		if rerr != nil || !bytes.Equal(got, wants[i]) {
			t.Fatalf("ref %d unreadable after cancelled collect: %v", i, rerr)
		}
	}
	// Index agrees with the moved copies.
	for i := range rec.Refs {
		if loc, ok := ix.Peek(rec.Refs[i].FP); !ok || loc != rec.Refs[i].Loc {
			t.Fatalf("index/recipe disagree after cancelled collect: %v vs %v", loc, rec.Refs[i].Loc)
		}
	}
	// A second, uncancelled pass finishes the job.
	res2, err := Collect(context.Background(), s, ix, []*chunk.Recipe{&rec}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCollected+res2.ContainersCollected < 3 {
		t.Fatalf("resumed collect left work behind: %+v then %+v", res, res2)
	}
}
