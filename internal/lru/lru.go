// Package lru provides a generic fixed-capacity LRU cache.
//
// It backs every cache in the system: DDFS's locality-preserved cache of
// container metadata, SiLo's block-metadata cache, the index page cache, and
// the restore path's container data cache. Eviction order is strict
// least-recently-used; both Get and Put refresh recency.
//
// A cache can optionally mirror its hit/miss/eviction counts into live
// telemetry counters (see Instrument), so each named cache in the system is
// observable on the /metrics endpoint while the local Stats stay per-cache.
package lru

import "repro/internal/telemetry"

// Cache is a fixed-capacity LRU map. The zero value is not usable; construct
// with New. Not safe for concurrent use.
type Cache[K comparable, V any] struct {
	cap     int
	items   map[K]*entry[K, V]
	head    *entry[K, V] // most recently used
	tail    *entry[K, V] // least recently used
	onEvict func(K, V)

	hits, misses, evictions uint64

	telHits, telMisses, telEvictions *telemetry.Counter
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New creates a cache holding at most capacity entries. Panics if
// capacity <= 0.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	// The map hint is bounded: callers that want byte-budgeted eviction (see
	// RemoveOldest) pass a very large capacity as "no count limit", which must
	// not preallocate buckets for it.
	hint := capacity
	if hint > 1024 {
		hint = 1024
	}
	return &Cache[K, V]{cap: capacity, items: make(map[K]*entry[K, V], hint)}
}

// OnEvict registers a callback invoked with each evicted key/value (both on
// capacity eviction and Remove; not on Clear).
func (c *Cache[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// Instrument mirrors the cache's hit/miss/capacity-eviction counts into
// telemetry counters. Any of the three may be nil to skip that count; this
// names the cache's behaviour on the live /metrics endpoint without coupling
// the generic cache to a metric catalog.
func (c *Cache[K, V]) Instrument(hits, misses, evictions *telemetry.Counter) {
	c.telHits, c.telMisses, c.telEvictions = hits, misses, evictions
}

// Get returns the value for key and refreshes its recency.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if e, ok := c.items[key]; ok {
		c.hits++
		if c.telHits != nil {
			c.telHits.Inc()
		}
		c.moveToFront(e)
		return e.val, true
	}
	c.misses++
	if c.telMisses != nil {
		c.telMisses.Inc()
	}
	var zero V
	return zero, false
}

// Peek returns the value without refreshing recency or counting stats.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if e, ok := c.items[key]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Contains reports presence without refreshing recency or counting stats.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key, refreshing recency. It evicts the LRU entry if
// the cache is full and reports whether an eviction occurred.
func (c *Cache[K, V]) Put(key K, val V) (evicted bool) {
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return false
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		c.evictLRU()
		return true
	}
	return false
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
	return true
}

// RemoveOldest evicts and returns the least-recently-used entry, counting it
// as an eviction (telemetry and OnEvict fire exactly as for a capacity
// eviction). It reports false on an empty cache. Callers that bound a cache
// by something other than entry count — the shared container data cache
// bounds by bytes — construct with a large capacity and pop via RemoveOldest
// until back under their own budget.
func (c *Cache[K, V]) RemoveOldest() (key K, val V, ok bool) {
	e := c.tail
	if e == nil {
		return key, val, false
	}
	key, val = e.key, e.val
	c.evictLRU()
	return key, val, true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Clear drops all entries without invoking the eviction callback and resets
// statistics.
func (c *Cache[K, V]) Clear() {
	c.items = make(map[K]*entry[K, V], c.cap)
	c.head, c.tail = nil, nil
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c *Cache[K, V]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

func (c *Cache[K, V]) evictLRU() {
	e := c.tail
	c.unlink(e)
	delete(c.items, e.key)
	c.evictions++
	if c.telEvictions != nil {
		c.telEvictions.Inc()
	}
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
