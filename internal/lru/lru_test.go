package lru

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New[int, int](0)
}

func TestPutGet(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %v,%v", v, ok)
	}
	if _, ok := c.Get("c"); ok {
		t.Fatal("Get(c) should miss")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)    // 1 now MRU; LRU order: 2,3,1
	c.Put(4, 4) // evicts 2
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("%d should be cached", k)
		}
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(1, 10) // update refreshes 1
	c.Put(3, 3)  // evicts 2
	if c.Contains(2) || !c.Contains(1) {
		t.Fatal("update must refresh recency")
	}
	if v, _ := c.Get(1); v != 10 {
		t.Fatal("update must replace value")
	}
}

func TestPeekDoesNotRefresh(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	if v, ok := c.Peek(1); !ok || v != 1 {
		t.Fatal("Peek miss")
	}
	c.Put(3, 3) // evicts 1 (Peek must not have refreshed it)
	if c.Contains(1) {
		t.Fatal("Peek must not refresh recency")
	}
}

func TestRemove(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	if !c.Remove(1) {
		t.Fatal("Remove should report presence")
	}
	if c.Remove(1) {
		t.Fatal("double Remove should report absence")
	}
	if c.Len() != 0 {
		t.Fatal("Len after remove")
	}
}

func TestOnEvictCallback(t *testing.T) {
	var evicted []int
	c := New[int, string](1)
	c.OnEvict(func(k int, v string) { evicted = append(evicted, k) })
	c.Put(1, "a")
	c.Put(2, "b") // evicts 1
	c.Remove(2)   // callback fires for explicit remove too
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestRemoveOldest(t *testing.T) {
	c := New[int, string](8)
	if _, _, ok := c.RemoveOldest(); ok {
		t.Fatal("RemoveOldest on empty cache should report false")
	}
	var evicted []int
	c.OnEvict(func(k int, v string) { evicted = append(evicted, k) })
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c")
	c.Get(1) // refresh: eviction order becomes 2, 3, 1
	for i, want := range []struct {
		k int
		v string
	}{{2, "b"}, {3, "c"}, {1, "a"}} {
		k, v, ok := c.RemoveOldest()
		if !ok || k != want.k || v != want.v {
			t.Fatalf("RemoveOldest #%d = %d,%q,%v; want %d,%q", i, k, v, ok, want.k, want.v)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining", c.Len())
	}
	if _, _, ev := c.Stats(); ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
	if len(evicted) != 3 {
		t.Fatalf("OnEvict fired %d times, want 3", len(evicted))
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d,%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
	c.Clear()
	if c.HitRate() != 0 || c.Len() != 0 {
		t.Fatal("Clear must reset")
	}
}

func TestEvictionCount(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 5; i++ {
		c.Put(i, i)
	}
	if _, _, ev := c.Stats(); ev != 4 {
		t.Fatalf("evictions = %d, want 4", ev)
	}
}

func TestSingleCapacityChurn(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
		if !c.Contains(i) || c.Len() != 1 {
			t.Fatalf("iteration %d: len=%d", i, c.Len())
		}
	}
}

// Property: Len never exceeds capacity and the most recently inserted key is
// always present.
func TestCapacityInvariantProperty(t *testing.T) {
	c := New[uint8, int](8)
	i := 0
	fn := func(key uint8) bool {
		i++
		c.Put(key, i)
		if c.Len() > c.Cap() {
			return false
		}
		v, ok := c.Get(key)
		return ok && v == i
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache agrees with a reference model (map + recency slice)
// under a random op sequence.
func TestModelEquivalenceProperty(t *testing.T) {
	const capN = 4
	c := New[uint8, uint8](capN)
	model := map[uint8]uint8{}
	var order []uint8 // LRU..MRU

	touch := func(k uint8) {
		for i, x := range order {
			if x == k {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append(order, k)
	}

	fn := func(op bool, k, v uint8) bool {
		if op { // Put
			_, existed := model[k]
			model[k] = v
			touch(k)
			if !existed && len(model) > capN {
				lru := order[0]
				order = order[1:]
				delete(model, lru)
			}
			c.Put(k, v)
		} else { // Get
			mv, mok := model[k]
			cv, cok := c.Get(k)
			if mok {
				touch(k)
			}
			if mok != cok || (mok && mv != cv) {
				return false
			}
		}
		return len(model) == c.Len()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := New[int, int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(i%4096, i)
		c.Get((i * 7) % 4096)
	}
}
