package maintenance

import (
	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
)

// DeadScan reports the sealed containers' total data bytes and the subset
// still live by the maintenance liveness rule: a copy counts as live when a
// retained recipe pins its exact location or the chunk index names it as
// the chunk's current copy. total-live is the garbage a merge or compaction
// pass could reclaim. The scan is in-memory metadata only — no simulated
// time is charged.
func DeadScan(cs *container.Store, ix *cindex.Index, recipes []*chunk.Recipe) (total, live int64) {
	pinned := make(map[copyKey]struct{}, 1024)
	for _, r := range recipes {
		for i := range r.Refs {
			loc := r.Refs[i].Loc
			pinned[copyKey{loc.Container, loc.Offset}] = struct{}{}
		}
	}
	n := uint32(cs.Slots())
	for id := uint32(0); id < n; id++ {
		if !cs.Sealed(id) {
			continue
		}
		total += cs.DataFill(id)
		for _, m := range cs.PeekMeta(id) {
			if _, ok := pinned[copyKey{id, m.Offset}]; ok {
				live += int64(m.Size)
				continue
			}
			if loc, ok := ix.Peek(m.FP); ok && loc.Container == id && loc.Offset == m.Offset {
				live += int64(m.Size)
			}
		}
	}
	return total, live
}
