// Package maintenance is the online maintenance layer of the store: a
// background pass that runs hybrid out-of-line deduplication under live
// traffic, in the spirit of RevDedup (Ng & Lee, arXiv:1302.0621) and the
// hybrid inline/out-of-line designs surveyed in arXiv:1405.5661.
//
// The inline engines (DeFrag et al.) keep ingest fast and the newest backup
// reasonably sequential; what they cannot do inline is claw back the
// fragmentation and garbage that accumulates in *old* containers as
// generations pile up. The maintenance pass does that out of line, one
// bounded epoch at a time:
//
//  1. Reverse remap ("reverse rewriting"): scan retained recipes oldest
//     first; references into low-fill or low-utilization sealed containers
//     whose chunks also exist in newer containers (the chunk index points at
//     a newer copy) are rewritten to the newer copy. Old generations absorb
//     the delinearization; the shared copies migrate forward in time —
//     exactly RevDedup's shift of fragmentation onto the backups least
//     likely to be restored.
//  2. Container merge: containers whose remaining live fraction is below a
//     threshold, or that the latest generation touches only sparsely, are
//     merged — their live chunks are copied into fresh dense containers
//     (ordered by the latest recipe, so the newest backup's read path
//     becomes more sequential), the index is repointed, every retained
//     recipe is remapped copy-on-write, and the emptied victims are dropped
//     through the crash-safe blockstore merge intent (blockstore.Dropper).
//
// Epochs are incremental: all scanning, copying and remap preparation runs
// concurrently with foreground ingest and restore traffic; only the final
// victim-drop commit runs under the store's exclusive gate, and the commit
// re-validates victim liveness there, so foreground streams that raced the
// scan are never broken. Data movement is paced by a wall-clock token-bucket
// throttle and charged to the simulated clock as a maintenance lane,
// mirroring how concurrent ingest lanes are priced.
package maintenance

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/telemetry"
)

// Telemetry: the maintenance_* surface on /metrics.
var (
	telEpochs = telemetry.NewCounter("maintenance_epochs_total",
		"maintenance epochs completed")
	telRemapped = telemetry.NewCounter("maintenance_refs_remapped_total",
		"recipe references rewritten to newer chunk copies (reverse remap)")
	telMerged = telemetry.NewCounter("maintenance_containers_merged_total",
		"containers merged away and dropped")
	telMoved = telemetry.NewCounter("maintenance_chunks_moved_total",
		"live chunks copied into fresh containers by merges")
	telMovedBytes = telemetry.NewCounter("maintenance_bytes_moved_total",
		"chunk bytes copied into fresh containers by merges")
	telReclaimed = telemetry.NewCounter("maintenance_bytes_reclaimed_total",
		"container data bytes reclaimed by merges")
	telSkipped = telemetry.NewCounter("maintenance_victims_skipped_total",
		"merge victims abandoned at commit because foreground traffic re-pinned them")
	telRededuped = telemetry.NewCounter("maintenance_refs_rededuped_total",
		"spilled write-through recipe references remapped back onto index-authoritative copies")
)

// RecipeStore is the pass's window onto the retained backups. Snapshot
// returns the current recipes oldest-first; the pass treats them as
// immutable. Replace installs remapped copies (matched by Label) atomically
// and durably — concurrent restores keep whatever snapshot they started
// with (both the old and new references resolve until the epoch's drop
// commit, which the Gate serializes against them).
type RecipeStore interface {
	Snapshot() []*chunk.Recipe
	Replace(ctx context.Context, updated []*chunk.Recipe) error
}

// Gate serializes the epoch's drop commit against foreground streams: fn
// runs while no ingest or restore is in flight, and new ones wait until it
// returns. Everything else the pass does runs outside the gate.
type Gate interface {
	Exclusive(fn func() error) error
}

// IndexDropper purges engine state derived from one container — leftover
// chunk-index entries and locality-preserved cache metadata — before the
// container is dropped. It matches the engines' fsck repair hook.
type IndexDropper interface {
	DropFromIndex(cid uint32) int
}

// Config wires a Pass to one store's subsystems and sets its policy knobs.
type Config struct {
	Containers *container.Store
	Index      *cindex.Index
	Recipes    RecipeStore
	Gate       Gate
	// Dropper, when set, purges per-container engine caches at commit.
	Dropper IndexDropper
	// Clock is the store's master simulated clock. Each epoch charges its
	// I/O to a private lane starting at the master reading and advances the
	// master on completion, like a concurrent ingest lane.
	Clock *disk.Clock

	// UtilThreshold: sealed containers whose live fraction (recipe pins plus
	// index-authoritative copies) is below this are merge victims, and
	// containers below it by the store's superseded-bytes accounting are
	// reverse-remap candidates. Default 0.5.
	UtilThreshold float64
	// FillThreshold: containers whose data section is filled below this
	// fraction of capacity (stream tails) are reverse-remap candidates too.
	// Default 0.5.
	FillThreshold float64
	// SparseThreshold: containers the latest generation references for less
	// than this fraction of their data are merged so the newest backup's
	// reads consolidate, even if older generations keep them mostly live.
	// Default 0.25.
	SparseThreshold float64
	// MaxBatch bounds the victims merged per epoch (incremental compaction).
	// Default 8.
	MaxBatch int
	// ThrottleMBps paces merge data movement in wall-clock MB/s through a
	// token bucket. 0 disables pacing.
	ThrottleMBps float64
	// Rededup enables the out-of-line re-dedup step for spilled streams:
	// recipe references pointing at a chunk copy written *after* the copy
	// the index considers authoritative (only the inline filter's
	// write-through path produces those) are remapped back onto the
	// authoritative copy, so the spilled containers go dead and the merge
	// machinery reclaims them. The Store enables this whenever maintenance
	// runs; it is a no-op for stores that never spill.
	Rededup bool
}

func (c Config) withDefaults() Config {
	if c.UtilThreshold == 0 {
		c.UtilThreshold = 0.5
	}
	if c.FillThreshold == 0 {
		c.FillThreshold = 0.5
	}
	if c.SparseThreshold == 0 {
		c.SparseThreshold = 0.25
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	return c
}

func (c Config) validate() error {
	if c.Containers == nil || c.Index == nil || c.Recipes == nil || c.Gate == nil {
		return fmt.Errorf("maintenance: Containers, Index, Recipes and Gate are required")
	}
	for _, t := range []float64{c.UtilThreshold, c.FillThreshold, c.SparseThreshold} {
		if t < 0 || t > 1 {
			return fmt.Errorf("maintenance: thresholds must be in [0,1], got %v", t)
		}
	}
	return nil
}

// Stats summarizes one epoch (or, accumulated, a pass's lifetime).
type Stats struct {
	RecipesScanned   int     `json:"recipesScanned"`
	RefsRemapped     int64   `json:"refsRemapped"`  // reverse-remap rewrites to newer copies
	RefsRededuped    int64   `json:"refsRededuped"` // spilled refs remapped onto authoritative copies
	ContainersMerged int     `json:"containersMerged"`
	ChunksMoved      int64   `json:"chunksMoved"`
	BytesMoved       int64   `json:"bytesMoved"`
	BytesReclaimed   int64   `json:"bytesReclaimed"` // victim data bytes freed by drops
	RefsPatched      int64   `json:"refsPatched"`    // recipe refs repointed at moved copies
	VictimsSkipped   int     `json:"victimsSkipped"` // victims re-pinned by racing traffic
	SimSeconds       float64 `json:"simSeconds"`     // simulated lane time charged
}

func (s *Stats) add(o Stats) {
	s.RecipesScanned += o.RecipesScanned
	s.RefsRemapped += o.RefsRemapped
	s.RefsRededuped += o.RefsRededuped
	s.ContainersMerged += o.ContainersMerged
	s.ChunksMoved += o.ChunksMoved
	s.BytesMoved += o.BytesMoved
	s.BytesReclaimed += o.BytesReclaimed
	s.RefsPatched += o.RefsPatched
	s.VictimsSkipped += o.VictimsSkipped
	s.SimSeconds += o.SimSeconds
}

// Add accumulates o into s (cumulative pass statistics).
func (s *Stats) Add(o Stats) { s.add(o) }

// Pass is the reusable epoch runner. One Pass serves one store; RunEpoch is
// not safe for concurrent use with itself (the store serializes maintenance
// operations), but is safe against concurrent foreground traffic.
type Pass struct {
	cfg      Config
	throttle *Throttle
}

// New validates cfg and builds a Pass.
func New(cfg Config) (*Pass, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Pass{cfg: cfg, throttle: NewThrottle(cfg.ThrottleMBps * 1e6)}, nil
}

// copyKey identifies one physical chunk copy.
type copyKey struct {
	container uint32
	offset    int64
}

// liveCopy is one chunk copy that must survive a merge.
type liveCopy struct {
	meta          container.Meta
	authoritative bool // the chunk index points at this copy
}

// RunEpoch executes one maintenance epoch: reverse remap, victim selection,
// merge copy, and the gated drop commit. It returns the epoch's statistics;
// an epoch that finds nothing to do returns zero Stats and nil error.
func (p *Pass) RunEpoch(ctx context.Context) (Stats, error) {
	_, span := telemetry.StartSpan(ctx, "maintenance.epoch")
	defer span.End()

	var lane disk.Clock
	master := p.cfg.Clock
	if master != nil {
		lane.Advance(master.Now())
	}
	laneStart := lane.Now()

	var st Stats
	if p.cfg.Rededup {
		if err := p.rededupSpill(ctx, &st); err != nil {
			return st, err
		}
	}
	if err := p.reverseRemap(ctx, &st); err != nil {
		return st, err
	}
	if err := p.merge(ctx, &lane, &st); err != nil {
		return st, err
	}

	st.SimSeconds = (lane.Now() - laneStart).Seconds()
	span.SetSim(lane.Now() - laneStart)
	if master != nil {
		if d := lane.Now() - master.Now(); d > 0 {
			master.Advance(d)
		}
	}
	telEpochs.Inc()
	telRemapped.Add(st.RefsRemapped)
	telRededuped.Add(st.RefsRededuped)
	telMerged.Add(int64(st.ContainersMerged))
	telMoved.Add(st.ChunksMoved)
	telMovedBytes.Add(st.BytesMoved)
	telReclaimed.Add(st.BytesReclaimed)
	telSkipped.Add(int64(st.VictimsSkipped))
	return st, nil
}

// remapCandidate reports whether container id is worth reverse-remapping
// away from: a stream tail (low fill) or a container rewrites have already
// hollowed out (low utilization by the superseded-bytes accounting).
func (p *Pass) remapCandidate(id uint32) bool {
	cs := p.cfg.Containers
	if !cs.Sealed(id) {
		return false
	}
	if fill := cs.DataFill(id); fill > 0 &&
		float64(fill) < p.cfg.FillThreshold*float64(cs.Config().DataCap) {
		return true
	}
	return cs.LiveFraction(id) < p.cfg.UtilThreshold
}

// reverseRemap rewrites old generations' references into candidate
// containers to point at newer copies of the same chunks, oldest recipe
// first. The rewrite is pure metadata: copy-on-write recipes are installed
// through the RecipeStore, and the abandoned old copies lose their pins so
// a later merge can reclaim their containers.
func (p *Pass) reverseRemap(ctx context.Context, st *Stats) error {
	cs, ix := p.cfg.Containers, p.cfg.Index
	recipes := p.cfg.Recipes.Snapshot()
	st.RecipesScanned = len(recipes)
	candidate := make(map[uint32]bool)
	var updated []*chunk.Recipe
	for _, r := range recipes {
		if err := ctx.Err(); err != nil {
			return err
		}
		var out *chunk.Recipe
		for i := range r.Refs {
			ref := &r.Refs[i]
			cid := ref.Loc.Container
			ok, seen := candidate[cid]
			if !seen {
				ok = p.remapCandidate(cid)
				candidate[cid] = ok
			}
			if !ok {
				continue
			}
			loc, found := ix.Peek(ref.FP)
			// Only migrate forward: a strictly newer sealed copy of the
			// same chunk. Same-container hits and unsealed targets stay.
			if !found || loc.Container <= cid || loc.Size != ref.Size || !cs.Sealed(loc.Container) {
				continue
			}
			if out == nil {
				out = &chunk.Recipe{Label: r.Label, Refs: append([]chunk.Ref(nil), r.Refs...)}
			}
			out.Refs[i].Loc = loc
			st.RefsRemapped++
		}
		if out != nil {
			updated = append(updated, out)
		}
	}
	if len(updated) == 0 {
		return nil
	}
	return p.cfg.Recipes.Replace(ctx, updated)
}

// rededupSpill is the out-of-line half of the inline filter's bargain
// (HPDedup, arXiv 1702.08153): spilled streams wrote their probable
// duplicates through without consulting the on-disk index, leaving the
// earlier copy authoritative. This step scans every retained recipe for
// references whose chunk the index locates at a *strictly older* sealed
// container — only the write-through path produces that inversion, since
// inline dedup references the authoritative copy and rewrites repoint the
// index forward — and remaps them back onto the authoritative copy. The
// abandoned spilled copies lose their only pins, their containers go dead,
// and the ordinary merge/drop machinery reclaims the space.
//
// Like reverseRemap, the remap itself is pure metadata and safe outside the
// gate: the target copy is index-authoritative, so gc-liveness keeps it
// resident, and any drop that might race this epoch revalidates under the
// exclusive gate before committing.
func (p *Pass) rededupSpill(ctx context.Context, st *Stats) error {
	cs, ix := p.cfg.Containers, p.cfg.Index
	recipes := p.cfg.Recipes.Snapshot()
	if st.RecipesScanned == 0 {
		st.RecipesScanned = len(recipes)
	}
	var updated []*chunk.Recipe
	for _, r := range recipes {
		if err := ctx.Err(); err != nil {
			return err
		}
		var out *chunk.Recipe
		for i := range r.Refs {
			ref := &r.Refs[i]
			loc, found := ix.Peek(ref.FP)
			if !found || loc.Size != ref.Size || !cs.Sealed(loc.Container) {
				continue
			}
			// Strictly-older means an earlier container, or an earlier
			// offset of the same container (a short-distance spill whose
			// authoritative copy landed in the same open container).
			if loc.Container > ref.Loc.Container ||
				(loc.Container == ref.Loc.Container && loc.Offset >= ref.Loc.Offset) {
				continue
			}
			if out == nil {
				out = &chunk.Recipe{Label: r.Label, Refs: append([]chunk.Ref(nil), r.Refs...)}
			}
			out.Refs[i].Loc = loc
			st.RefsRededuped++
		}
		if out != nil {
			updated = append(updated, out)
		}
	}
	if len(updated) == 0 {
		return nil
	}
	return p.cfg.Recipes.Replace(ctx, updated)
}

// scanLiveness computes, per sealed container, the gc-liveness of each copy
// (recipe-pinned or index-authoritative) plus how many bytes the latest
// retained recipe references in it.
func (p *Pass) scanLiveness(recipes []*chunk.Recipe) (live map[uint32][]liveCopy, liveBytes, latestBytes map[uint32]int64) {
	cs, ix := p.cfg.Containers, p.cfg.Index
	pinned := make(map[copyKey]struct{}, 1024)
	for _, r := range recipes {
		for i := range r.Refs {
			loc := r.Refs[i].Loc
			pinned[copyKey{loc.Container, loc.Offset}] = struct{}{}
		}
	}
	latestBytes = make(map[uint32]int64)
	if len(recipes) > 0 {
		latest := recipes[len(recipes)-1]
		seen := make(map[copyKey]struct{}, latest.Len())
		for i := range latest.Refs {
			loc := latest.Refs[i].Loc
			key := copyKey{loc.Container, loc.Offset}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			latestBytes[loc.Container] += int64(loc.Size)
		}
	}
	live = make(map[uint32][]liveCopy)
	liveBytes = make(map[uint32]int64)
	n := uint32(cs.Slots())
	for id := uint32(0); id < n; id++ {
		if !cs.Sealed(id) {
			continue
		}
		for _, m := range cs.PeekMeta(id) {
			_, isPinned := pinned[copyKey{id, m.Offset}]
			idxLoc, inIndex := ix.Peek(m.FP)
			authoritative := inIndex && idxLoc.Container == id && idxLoc.Offset == m.Offset
			if !isPinned && !authoritative {
				continue
			}
			live[id] = append(live[id], liveCopy{meta: m, authoritative: authoritative})
			liveBytes[id] += int64(m.Size)
		}
	}
	return live, liveBytes, latestBytes
}

// selectVictims picks up to MaxBatch sealed containers to merge away,
// lowest live fraction first: hollowed-out containers (live fraction below
// UtilThreshold) and containers the latest generation only grazes
// (referenced, but for less than SparseThreshold of their data).
func (p *Pass) selectVictims(liveBytes, latestBytes map[uint32]int64) []uint32 {
	cs := p.cfg.Containers
	type cand struct {
		id   uint32
		frac float64
	}
	var cands []cand
	n := uint32(cs.Slots())
	for id := uint32(0); id < n; id++ {
		if !cs.Sealed(id) {
			continue
		}
		total := cs.DataFill(id)
		if total == 0 {
			continue
		}
		frac := float64(liveBytes[id]) / float64(total)
		latestFrac := float64(latestBytes[id]) / float64(total)
		hollow := frac < p.cfg.UtilThreshold
		sparse := latestBytes[id] > 0 && latestFrac < p.cfg.SparseThreshold
		if !hollow && !sparse {
			continue
		}
		cands = append(cands, cand{id, frac})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].frac != cands[j].frac {
			return cands[i].frac < cands[j].frac
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > p.cfg.MaxBatch {
		cands = cands[:p.cfg.MaxBatch]
	}
	ids := make([]uint32, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// merge runs the container-merge half of the epoch: copy the victims' live
// chunks into fresh containers (latest-recipe order first, so the newest
// backup linearizes), repoint the index, remap every recipe, and commit the
// crash-safe drop under the gate.
func (p *Pass) merge(ctx context.Context, lane *disk.Clock, st *Stats) error {
	cs, ix := p.cfg.Containers, p.cfg.Index
	recipes := p.cfg.Recipes.Snapshot()
	live, liveBytes, latestBytes := p.scanLiveness(recipes)
	victims := p.selectVictims(liveBytes, latestBytes)
	if len(victims) == 0 {
		return nil
	}
	victimSet := make(map[uint32]bool, len(victims))
	for _, id := range victims {
		victimSet[id] = true
	}

	// Order the copies: chunks the latest generation references come first,
	// in recipe order — the merge's whole point is that the newest backup's
	// read path lands in dense, sequential containers. Remaining live
	// copies follow in (container, offset) order, preserving what locality
	// they had.
	type moveItem struct {
		id uint32
		c  liveCopy
	}
	var order []moveItem
	queued := make(map[copyKey]struct{}, 256)
	if len(recipes) > 0 {
		latest := recipes[len(recipes)-1]
		byKey := make(map[copyKey]liveCopy, 256)
		for _, id := range victims {
			for _, lc := range live[id] {
				byKey[copyKey{id, lc.meta.Offset}] = lc
			}
		}
		for i := range latest.Refs {
			loc := latest.Refs[i].Loc
			if !victimSet[loc.Container] {
				continue
			}
			key := copyKey{loc.Container, loc.Offset}
			if _, dup := queued[key]; dup {
				continue
			}
			if lc, ok := byKey[key]; ok {
				queued[key] = struct{}{}
				order = append(order, moveItem{loc.Container, lc})
			}
		}
	}
	for _, id := range victims {
		for _, lc := range live[id] {
			key := copyKey{id, lc.meta.Offset}
			if _, dup := queued[key]; dup {
				continue
			}
			queued[key] = struct{}{}
			order = append(order, moveItem{id, lc})
		}
	}

	// Copy live chunks out through a reserve-mode writer on the maintenance
	// lane. Victim data sections are fetched once each and the reads are
	// charged to the lane; the wall-clock throttle paces the byte movement.
	w := cs.NewWriter(lane)
	data := make(map[uint32][]byte, len(victims))
	moved := make(map[copyKey]chunk.Location, len(order))
	for _, it := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := it.c.meta
		if err := p.throttle.Wait(ctx, int64(m.Size)); err != nil {
			return err
		}
		buf, ok := data[it.id]
		if !ok {
			var err error
			buf, err = cs.PeekData(ctx, it.id)
			if err != nil {
				return fmt.Errorf("maintenance: reading victim container %d: %w", it.id, err)
			}
			cs.AccountDataRange([]uint32{it.id}, lane)
			data[it.id] = buf
		}
		var c chunk.Chunk
		if cs.StoresData() {
			old := chunk.Location{Container: it.id, Segment: m.Segment, Offset: m.Offset, Size: m.Size}
			c = chunk.Chunk{FP: m.FP, Size: m.Size, Data: cs.Extract(buf, old)}
		} else {
			c = chunk.Meta(m.FP, m.Size)
		}
		newLoc, err := w.Write(ctx, c, m.Segment)
		if err != nil {
			return fmt.Errorf("maintenance: moving chunk out of container %d: %w", it.id, err)
		}
		moved[copyKey{it.id, m.Offset}] = newLoc
		st.ChunksMoved++
		st.BytesMoved += int64(m.Size)
	}
	if err := w.Finish(ctx); err != nil {
		return fmt.Errorf("maintenance: sealing merged containers: %w", err)
	}

	// Repoint the index at the moved authoritative copies, then durably
	// remap every retained recipe BEFORE the drop commit: from here on both
	// the old and new copies are valid, so a crash at any point leaves an
	// fsck-clean store.
	for _, it := range order {
		if !it.c.authoritative {
			continue
		}
		newLoc, ok := moved[copyKey{it.id, it.c.meta.Offset}]
		if !ok {
			continue
		}
		ix.Update(it.c.meta.FP, newLoc)
	}
	ix.Flush()
	if err := p.remapRecipes(ctx, moved, nil, st); err != nil {
		return err
	}

	// Commit under the gate: no foreground stream is in flight. Re-validate
	// every victim — an ingest that raced the scan may have committed a
	// recipe pinning a victim copy the scan called dead (e.g. through a
	// locality-preserved cache hit). Pinned-but-moved refs are remapped
	// here; refs to copies that never moved force the victim to survive.
	return p.cfg.Gate.Exclusive(func() error {
		keep := p.revalidate(ctx, victimSet, moved, st)
		if len(keep) == 0 {
			return nil
		}
		if p.cfg.Dropper != nil {
			for _, id := range keep {
				p.cfg.Dropper.DropFromIndex(id)
			}
		}
		var reclaimed int64
		for _, id := range keep {
			reclaimed += cs.DataFill(id)
		}
		if err := cs.Drop(ctx, keep, "maintenance merge"); err != nil {
			return fmt.Errorf("maintenance: dropping merged containers: %w", err)
		}
		st.ContainersMerged += len(keep)
		st.BytesReclaimed += reclaimed
		return nil
	})
}

// revalidate runs inside the gate: it remaps any recipe references that
// still land in victim containers (possible when foreground traffic
// committed between the scan and the gate) and returns the victims that are
// safe to drop. A victim still referenced by a copy that was not moved is
// kept alive and skipped this epoch.
func (p *Pass) revalidate(ctx context.Context, victimSet map[uint32]bool, moved map[copyKey]chunk.Location, st *Stats) []uint32 {
	cs, ix := p.cfg.Containers, p.cfg.Index
	unsafe := make(map[uint32]bool)
	recipes := p.cfg.Recipes.Snapshot()
	var updated []*chunk.Recipe
	for _, r := range recipes {
		var out *chunk.Recipe
		for i := range r.Refs {
			ref := &r.Refs[i]
			if !victimSet[ref.Loc.Container] {
				continue
			}
			newLoc, ok := moved[copyKey{ref.Loc.Container, ref.Loc.Offset}]
			if !ok {
				// A copy the scan called dead got pinned: try the index's
				// current copy, else the victim must survive.
				idxLoc, found := ix.Peek(ref.FP)
				if found && idxLoc.Size == ref.Size && !victimSet[idxLoc.Container] && cs.Sealed(idxLoc.Container) {
					newLoc, ok = idxLoc, true
				}
			}
			if !ok {
				unsafe[ref.Loc.Container] = true
				continue
			}
			if out == nil {
				out = &chunk.Recipe{Label: r.Label, Refs: append([]chunk.Ref(nil), r.Refs...)}
			}
			out.Refs[i].Loc = newLoc
			st.RefsPatched++
		}
		if out != nil {
			updated = append(updated, out)
		}
	}
	if len(updated) > 0 {
		if err := p.cfg.Recipes.Replace(ctx, updated); err != nil {
			// Without the durable remap the drop is not safe; keep every
			// victim and let a later epoch retry.
			telemetry.Logger().Warn("maintenance: remap commit failed; skipping drop", "err", err)
			for id := range victimSet {
				unsafe[id] = true
			}
		}
	}
	var keep []uint32
	for id := range victimSet {
		if unsafe[id] {
			st.VictimsSkipped++
			continue
		}
		keep = append(keep, id)
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	return keep
}

// remapRecipes rewrites retained recipes copy-on-write so references to
// moved copies (and any extra explicit rewrites) point at the new
// locations, then installs them through the RecipeStore.
func (p *Pass) remapRecipes(ctx context.Context, moved map[copyKey]chunk.Location, extra map[copyKey]chunk.Location, st *Stats) error {
	recipes := p.cfg.Recipes.Snapshot()
	var updated []*chunk.Recipe
	for _, r := range recipes {
		var out *chunk.Recipe
		for i := range r.Refs {
			ref := &r.Refs[i]
			key := copyKey{ref.Loc.Container, ref.Loc.Offset}
			newLoc, ok := moved[key]
			if !ok && extra != nil {
				newLoc, ok = extra[key]
			}
			if !ok {
				continue
			}
			if out == nil {
				out = &chunk.Recipe{Label: r.Label, Refs: append([]chunk.Ref(nil), r.Refs...)}
			}
			out.Refs[i].Loc = newLoc
			st.RefsPatched++
		}
		if out != nil {
			updated = append(updated, out)
		}
	}
	if len(updated) == 0 {
		return nil
	}
	return p.cfg.Recipes.Replace(ctx, updated)
}

// Throttle is a wall-clock token bucket pacing maintenance byte movement so
// the pass cannot starve foreground traffic of real I/O and CPU.
type Throttle struct {
	bytesPerSec float64
	mu          chan struct{} // 1-buffered: the bucket's mutex
	tokens      float64
	last        time.Time
}

// NewThrottle builds a throttle admitting bytesPerSec bytes per wall-clock
// second (burst of one second's worth). bytesPerSec <= 0 disables pacing.
func NewThrottle(bytesPerSec float64) *Throttle {
	t := &Throttle{bytesPerSec: bytesPerSec, mu: make(chan struct{}, 1)}
	t.mu <- struct{}{}
	return t
}

// Wait blocks until n bytes of budget are available (or ctx is done).
func (t *Throttle) Wait(ctx context.Context, n int64) error {
	if t.bytesPerSec <= 0 || n <= 0 {
		return ctx.Err()
	}
	select {
	case <-t.mu:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { t.mu <- struct{}{} }()
	now := time.Now()
	if t.last.IsZero() {
		t.last = now
		t.tokens = t.bytesPerSec // one-second burst to start
	}
	t.tokens += now.Sub(t.last).Seconds() * t.bytesPerSec
	if t.tokens > t.bytesPerSec {
		t.tokens = t.bytesPerSec
	}
	t.last = now
	if t.tokens >= float64(n) {
		t.tokens -= float64(n)
		return nil
	}
	deficit := float64(n) - t.tokens
	t.tokens = 0
	wait := time.Duration(deficit / t.bytesPerSec * float64(time.Second))
	select {
	case <-time.After(wait):
		t.last = time.Now()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
