package maintenance

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cindex"
	"repro/internal/container"
	"repro/internal/disk"
)

// rig builds a store + index pair over one clock (mirrors gc's test rig).
func rig(t *testing.T, storeData bool) (*container.Store, *cindex.Index, *disk.Clock) {
	t.Helper()
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, storeData),
		container.Config{DataCap: 2048, MaxChunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cindex.New(disk.NewDevice(disk.DefaultModel(), &clk, false), cindex.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	return s, ix, &clk
}

func mustWrite(t *testing.T, s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	t.Helper()
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		t.Fatal(err)
	}
	return loc
}

func put(t *testing.T, s *container.Store, ix *cindex.Index, data []byte, seg uint64) (chunk.Fingerprint, chunk.Location) {
	t.Helper()
	c := chunk.New(data)
	loc := mustWrite(t, s, c, seg)
	ix.Insert(c.FP, loc)
	return c.FP, loc
}

// fakeRecipes is an in-memory RecipeStore.
type fakeRecipes struct {
	mu       sync.Mutex
	recipes  []*chunk.Recipe
	replaces int
}

func (f *fakeRecipes) Snapshot() []*chunk.Recipe {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*chunk.Recipe(nil), f.recipes...)
}

func (f *fakeRecipes) Replace(ctx context.Context, updated []*chunk.Recipe) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replaces++
	for _, u := range updated {
		for i, r := range f.recipes {
			if r.Label == u.Label {
				f.recipes[i] = u
			}
		}
	}
	return nil
}

func (f *fakeRecipes) add(r *chunk.Recipe) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recipes = append(f.recipes, r)
}

func (f *fakeRecipes) byLabel(label string) *chunk.Recipe {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.recipes {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// plainGate runs fn directly, optionally after a hook (the "raced ingest").
type plainGate struct {
	before func()
}

func (g *plainGate) Exclusive(fn func() error) error {
	if g.before != nil {
		g.before()
	}
	return fn()
}

func passFor(t *testing.T, s *container.Store, ix *cindex.Index, clk *disk.Clock, rs RecipeStore, gate Gate, mut func(*Config)) *Pass {
	t.Helper()
	cfg := Config{Containers: s, Index: ix, Recipes: rs, Gate: gate, Clock: clk}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	s, ix, clk := rig(t, false)
	rs := &fakeRecipes{}
	if _, err := New(Config{Containers: s, Index: ix, Recipes: rs, Gate: &plainGate{}, Clock: clk, UtilThreshold: 1.5}); err == nil {
		t.Fatal("out-of-range threshold must fail")
	}
}

func TestEmptyStoreEpochNoop(t *testing.T) {
	s, ix, clk := rig(t, false)
	p := passFor(t, s, ix, clk, &fakeRecipes{}, &plainGate{}, nil)
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.RefsRemapped != 0 || st.ContainersMerged != 0 {
		t.Fatalf("empty epoch did work: %+v", st)
	}
}

func TestReverseRemapMovesOldGenerationsForward(t *testing.T) {
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}

	// Gen 0: chunk A alone in container 0 (a low-fill stream tail).
	dataA := bytes.Repeat([]byte{1}, 900)
	fpA, locA0 := put(t, s, ix, dataA, 1)
	s.Flush(context.Background())
	gen0 := &chunk.Recipe{Label: "gen0"}
	gen0.Append(fpA, 900, locA0)
	rs.add(gen0)

	// Gen 1: a newer copy of A (a DeFrag rewrite) plus a new chunk B fill
	// container 1 past the remap-candidacy thresholds.
	cA := chunk.New(dataA)
	locA1 := mustWrite(t, s, cA, 2)
	ix.Update(fpA, locA1)
	s.MarkDead(locA0.Container, int64(locA0.Size))
	fpB, locB := put(t, s, ix, bytes.Repeat([]byte{2}, 900), 2)
	s.Flush(context.Background())
	gen1 := &chunk.Recipe{Label: "gen1"}
	gen1.Append(fpA, 900, locA1)
	gen1.Append(fpB, 900, locB)
	rs.add(gen1)

	p := passFor(t, s, ix, clk, rs, &plainGate{}, nil)
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.RefsRemapped != 1 {
		t.Fatalf("remapped %d refs, want 1 (gen0's A -> container 1): %+v", st.RefsRemapped, st)
	}
	got := rs.byLabel("gen0").Refs[0].Loc
	if got.Container != locA1.Container || got.Offset != locA1.Offset {
		t.Fatalf("gen0 ref = %+v, want the newer copy %+v", got, locA1)
	}
	// With gen0's pin gone, container 0 is fully dead and the merge phase
	// of the same epoch must have reclaimed it.
	if st.ContainersMerged != 1 {
		t.Fatalf("dead container not merged: %+v", st)
	}
	if s.Sealed(locA0.Container) {
		t.Fatal("victim container still sealed after drop")
	}
	// Every retained recipe must read back bit-exactly.
	for _, want := range []struct {
		label string
		data  [][]byte
	}{{"gen0", [][]byte{dataA}}, {"gen1", [][]byte{dataA, bytes.Repeat([]byte{2}, 900)}}} {
		r := rs.byLabel(want.label)
		for i := range r.Refs {
			b, err := s.ReadChunk(context.Background(), r.Refs[i].Loc)
			if err != nil {
				t.Fatalf("%s ref %d: %v", want.label, i, err)
			}
			if !bytes.Equal(b, want.data[i]) {
				t.Fatalf("%s ref %d corrupted after maintenance", want.label, i)
			}
		}
	}
}

func TestMergeConsolidatesLiveChunksAndDrops(t *testing.T) {
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}

	// Container 0: live chunk Y (500B, pinned) + dead chunk X (1000B, never
	// indexed): live fraction 1/3 < 0.5, a merge victim.
	dataX := bytes.Repeat([]byte{9}, 1000)
	cX := chunk.New(dataX)
	mustWrite(t, s, cX, 1)
	dataY := bytes.Repeat([]byte{7}, 500)
	fpY, locY := put(t, s, ix, dataY, 1)
	s.Flush(context.Background())

	gen := &chunk.Recipe{Label: "gen0"}
	gen.Append(fpY, 500, locY)
	rs.add(gen)

	p := passFor(t, s, ix, clk, rs, &plainGate{}, nil)
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersMerged != 1 || st.ChunksMoved != 1 || st.BytesMoved != 500 {
		t.Fatalf("merge stats: %+v", st)
	}
	if st.BytesReclaimed != 1500 {
		t.Fatalf("reclaimed %d bytes, want the victim's 1500B data fill", st.BytesReclaimed)
	}
	if s.Sealed(locY.Container) {
		t.Fatal("victim still sealed")
	}
	newLoc := rs.byLabel("gen0").Refs[0].Loc
	if newLoc.Container == locY.Container {
		t.Fatal("recipe still references the victim")
	}
	if got, err := s.ReadChunk(context.Background(), newLoc); err != nil || !bytes.Equal(got, dataY) {
		t.Fatalf("moved chunk unreadable: %v", err)
	}
	// The index must agree with the recipe.
	if loc, ok := ix.Peek(fpY); !ok || loc != newLoc {
		t.Fatalf("index %v disagrees with recipe %v", loc, newLoc)
	}
	if st.SimSeconds <= 0 {
		t.Fatalf("merge charged no simulated time: %+v", st)
	}
}

func TestGateRevalidateRemapsRacedPins(t *testing.T) {
	// A recipe committed between the scan and the gate pins a victim copy
	// that WAS moved: the commit remaps it through the moved map and the
	// drop still proceeds.
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}

	dataX := bytes.Repeat([]byte{9}, 1000)
	mustWrite(t, s, chunk.New(dataX), 1) // dead filler
	dataY := bytes.Repeat([]byte{7}, 500)
	fpY, locY := put(t, s, ix, dataY, 1)
	s.Flush(context.Background())
	gen := &chunk.Recipe{Label: "gen0"}
	gen.Append(fpY, 500, locY)
	rs.add(gen)

	gate := &plainGate{before: func() {
		raced := &chunk.Recipe{Label: "raced"}
		raced.Append(fpY, 500, locY) // stale location from an LPC hit
		rs.add(raced)
	}}
	p := passFor(t, s, ix, clk, rs, gate, nil)
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersMerged != 1 || st.VictimsSkipped != 0 {
		t.Fatalf("raced-but-moved pin must not block the drop: %+v", st)
	}
	loc := rs.byLabel("raced").Refs[0].Loc
	if loc.Container == locY.Container {
		t.Fatal("raced recipe still points at the dropped victim")
	}
	if got, err := s.ReadChunk(context.Background(), loc); err != nil || !bytes.Equal(got, dataY) {
		t.Fatalf("raced recipe unreadable after commit: %v", err)
	}
}

func TestGateRevalidateSkipsRepinnedVictim(t *testing.T) {
	// A recipe committed between the scan and the gate pins a victim copy
	// the scan called dead (not moved, not in the index): the victim must
	// survive the epoch untouched.
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}

	dataX := bytes.Repeat([]byte{9}, 1000)
	cX := chunk.New(dataX)
	locX := mustWrite(t, s, cX, 1) // dead at scan time: never indexed
	dataY := bytes.Repeat([]byte{7}, 500)
	fpY, locY := put(t, s, ix, dataY, 1)
	s.Flush(context.Background())
	gen := &chunk.Recipe{Label: "gen0"}
	gen.Append(fpY, 500, locY)
	rs.add(gen)

	gate := &plainGate{before: func() {
		raced := &chunk.Recipe{Label: "raced"}
		raced.Append(cX.FP, 1000, locX)
		rs.add(raced)
	}}
	p := passFor(t, s, ix, clk, rs, gate, nil)
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersMerged != 0 || st.VictimsSkipped != 1 {
		t.Fatalf("repinned victim must be skipped: %+v", st)
	}
	if !s.Sealed(locX.Container) {
		t.Fatal("skipped victim was dropped anyway")
	}
	if got, err := s.ReadChunk(context.Background(), locX); err != nil || !bytes.Equal(got, dataX) {
		t.Fatalf("repinned chunk unreadable: %v", err)
	}
	// The pinned-and-moved chunk Y is still fine through its new location.
	loc := rs.byLabel("gen0").Refs[0].Loc
	if got, err := s.ReadChunk(context.Background(), loc); err != nil || !bytes.Equal(got, dataY) {
		t.Fatalf("moved chunk unreadable: %v", err)
	}
}

func TestSparseLatestConsolidation(t *testing.T) {
	// Containers the latest generation touches only sparsely are merged
	// even when older generations keep them fully live.
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}

	// Container 0: four 500B chunks, all pinned by gen0.
	var fps []chunk.Fingerprint
	var locs []chunk.Location
	gen0 := &chunk.Recipe{Label: "gen0"}
	for i := 0; i < 4; i++ {
		fp, loc := put(t, s, ix, bytes.Repeat([]byte{byte(i + 1)}, 500), 1)
		fps, locs = append(fps, fp), append(locs, loc)
		gen0.Append(fp, 500, loc)
	}
	s.Flush(context.Background())
	rs.add(gen0)
	// Latest generation references just one of the four (20% < 25%).
	gen1 := &chunk.Recipe{Label: "gen1"}
	gen1.Append(fps[2], 500, locs[2])
	rs.add(gen1)

	p := passFor(t, s, ix, clk, rs, &plainGate{}, func(c *Config) {
		c.UtilThreshold = 0.1   // fully live: only the sparse rule can fire
		c.SparseThreshold = 0.3 // latest touches 1/4 = 0.25 of the data
	})
	st, err := p.RunEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersMerged != 1 {
		t.Fatalf("sparsely-read container not consolidated: %+v", st)
	}
	if st.ChunksMoved != 4 {
		t.Fatalf("moved %d chunks, want all 4 live copies", st.ChunksMoved)
	}
	// The latest generation's chunk must come first in the new layout.
	want := rs.byLabel("gen1").Refs[0].Loc
	for _, r := range rs.byLabel("gen0").Refs {
		if r.Loc.Container == want.Container && r.Loc.Offset < want.Offset {
			t.Fatalf("latest generation's chunk not copied first: gen1 at %+v, gen0 has %+v", want, r.Loc)
		}
	}
	for i, r := range rs.byLabel("gen0").Refs {
		got, err := s.ReadChunk(context.Background(), r.Loc)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 500)) {
			t.Fatalf("gen0 chunk %d corrupted after consolidation: %v", i, err)
		}
	}
}

func TestEpochCancellation(t *testing.T) {
	s, ix, clk := rig(t, true)
	rs := &fakeRecipes{}
	mustWrite(t, s, chunk.New(bytes.Repeat([]byte{9}, 1000)), 1)
	fpY, locY := put(t, s, ix, bytes.Repeat([]byte{7}, 500), 1)
	s.Flush(context.Background())
	gen := &chunk.Recipe{Label: "gen0"}
	gen.Append(fpY, 500, locY)
	rs.add(gen)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := passFor(t, s, ix, clk, rs, &plainGate{}, nil)
	if _, err := p.RunEpoch(ctx); err == nil {
		t.Fatal("cancelled epoch must fail")
	}
	// Nothing was dropped; the store is intact.
	if !s.Sealed(locY.Container) {
		t.Fatal("cancelled epoch dropped a container")
	}
}

func TestThrottleUnlimitedAndCancel(t *testing.T) {
	th := NewThrottle(0)
	if err := th.Wait(context.Background(), 1<<30); err != nil {
		t.Fatal(err)
	}
	th = NewThrottle(10) // 10 B/s: the second wait would take ~10s
	if err := th.Wait(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := th.Wait(ctx, 100); err == nil {
		t.Fatal("throttled wait must respect cancellation")
	}
}

func TestSchedulerTriggerAndStop(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	sched := NewScheduler(0, func(ctx context.Context) (Stats, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return Stats{RecipesScanned: 1}, nil
	})
	st, err := sched.Trigger(context.Background())
	if err != nil || st.RecipesScanned != 1 {
		t.Fatalf("trigger: %v %+v", err, st)
	}
	sched.Stop()
	sched.Stop() // idempotent
	if _, err := sched.Trigger(context.Background()); err == nil {
		t.Fatal("trigger after stop must fail")
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
}

func TestSchedulerInterval(t *testing.T) {
	ran := make(chan struct{}, 8)
	sched := NewScheduler(5*time.Millisecond, func(ctx context.Context) (Stats, error) {
		select {
		case ran <- struct{}{}:
		default:
		}
		return Stats{}, nil
	})
	defer sched.Stop()
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("interval scheduler never fired")
	}
}
