package maintenance

import (
	"context"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Scheduler drives a Pass in the background at a fixed wall-clock interval,
// with a manual trigger for operator-initiated epochs (POST /v1/maintenance).
// Epochs never overlap: the scheduler is the only goroutine calling run.
type Scheduler struct {
	run      func(ctx context.Context) (Stats, error)
	interval time.Duration

	trigger chan chan epochResult
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

type epochResult struct {
	stats Stats
	err   error
}

// NewScheduler starts a background scheduler invoking run every interval
// (interval <= 0 disables the timer; only Trigger fires epochs then).
func NewScheduler(interval time.Duration, run func(ctx context.Context) (Stats, error)) *Scheduler {
	s := &Scheduler{
		run:      run,
		interval: interval,
		trigger:  make(chan chan epochResult),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Scheduler) loop() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.interval > 0 {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		tick = t.C
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-s.stop
		cancel()
	}()
	for {
		select {
		case <-s.stop:
			return
		case <-tick:
			if _, err := s.run(ctx); err != nil && ctx.Err() == nil {
				telemetry.Logger().Warn("maintenance: scheduled epoch failed", "err", err)
			}
		case reply := <-s.trigger:
			st, err := s.run(ctx)
			reply <- epochResult{st, err}
		}
	}
}

// Trigger runs one epoch now (queued behind any epoch in flight) and waits
// for its result. It fails once the scheduler has stopped.
func (s *Scheduler) Trigger(ctx context.Context) (Stats, error) {
	reply := make(chan epochResult, 1)
	select {
	case s.trigger <- reply:
	case <-s.stop:
		return Stats{}, context.Canceled
	case <-ctx.Done():
		return Stats{}, ctx.Err()
	}
	select {
	case r := <-reply:
		return r.stats, r.err
	case <-s.done:
		return Stats{}, context.Canceled
	}
}

// Stop cancels any epoch in flight and waits for the scheduler goroutine to
// exit. Safe to call more than once.
func (s *Scheduler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
