// Package metrics provides the small statistics and table-rendering
// utilities used by the experiment harness: per-generation series, summary
// statistics, and fixed-width text tables matching the rows the paper's
// figures report.
//
// This is the *batch* side of the repository's measurement story — tables
// computed after a run completes. Its runtime counterpart is
// internal/telemetry, the live instrument registry behind the /metrics
// endpoint; HistogramSummary bridges the two by rendering a telemetry
// histogram snapshot as a table cell.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Series is a named sequence of measurements (one point per generation).
type Series struct {
	Name   string
	Points []float64
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one measurement.
func (s *Series) Add(v float64) { s.Points = append(s.Points, v) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Points {
		sum += v
	}
	return sum / float64(len(s.Points))
}

// Min returns the minimum (+Inf for empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Points {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum (-Inf for empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Points {
		if v > m {
			m = v
		}
	}
	return m
}

// First returns the first point (0 for empty).
func (s *Series) First() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0]
}

// Last returns the final point (0 for empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1]
}

// TailMean returns the mean of the last n points (all points if n exceeds
// the series).
func (s *Series) TailMean(n int) float64 {
	if n <= 0 || len(s.Points) == 0 {
		return 0
	}
	if n > len(s.Points) {
		n = len(s.Points)
	}
	var sum float64
	for _, v := range s.Points[len(s.Points)-n:] {
		sum += v
	}
	return sum / float64(n)
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Points...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// DeclineRatio returns Last/First — below 1 indicates degradation across
// the series (the shape metric for Figs. 2 and 3). Returns 1 for series
// with fewer than two points or a zero first point.
func (s *Series) DeclineRatio() float64 {
	if len(s.Points) < 2 || s.Points[0] == 0 {
		return 1
	}
	return s.Last() / s.First()
}

// Table renders rows of experiment output in aligned fixed-width columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends one row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// MB formats a byte count in MB with one decimal.
func MB(bytes int64) string { return fmt.Sprintf("%.1f", float64(bytes)/1e6) }

// F1 formats a float with one decimal. Non-finite values (e.g. the ±Inf an
// empty Series returns from Min/Max) render as "-" rather than leaking
// "+Inf" into tables.
func F1(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// F3 formats a float with three decimals ("-" for non-finite values).
func F3(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// HistogramSummary renders a telemetry histogram snapshot as one compact
// table cell — "n=<count> mean=<m> p50=<q> p90=<q> max≤<bound>" — so
// experiment tables can include live-telemetry distributions next to the
// batch series. An empty histogram renders as "-".
func HistogramSummary(s telemetry.HistogramSnapshot) string {
	if s.Count == 0 {
		return "-"
	}
	maxLe := "+Inf"
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			if i < len(s.Bounds) {
				maxLe = fmt.Sprintf("%g", s.Bounds[i])
			}
			break
		}
	}
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p90=%.3g max≤%s",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.9), maxLe)
}
