package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func mkSeries(vals ...float64) *Series {
	s := NewSeries("s")
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("empty")
	if s.Len() != 0 || s.Mean() != 0 || s.First() != 0 || s.Last() != 0 {
		t.Fatal("empty series basics")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max")
	}
	if s.Percentile(50) != 0 || s.TailMean(3) != 0 {
		t.Fatal("empty percentile/tailmean")
	}
	if s.DeclineRatio() != 1 {
		t.Fatal("empty decline ratio must be 1")
	}
}

func TestSeriesStats(t *testing.T) {
	s := mkSeries(10, 20, 30, 40)
	if s.Mean() != 25 || s.Min() != 10 || s.Max() != 40 {
		t.Fatalf("stats: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	if s.First() != 10 || s.Last() != 40 {
		t.Fatal("first/last")
	}
	if s.TailMean(2) != 35 {
		t.Fatalf("TailMean(2) = %v", s.TailMean(2))
	}
	if s.TailMean(100) != 25 {
		t.Fatal("TailMean over-length must cover all")
	}
	if s.DeclineRatio() != 4 {
		t.Fatalf("DeclineRatio = %v", s.DeclineRatio())
	}
}

func TestPercentile(t *testing.T) {
	s := mkSeries(5, 1, 3, 2, 4)
	cases := map[float64]float64{0: 1, 20: 1, 50: 3, 100: 5, 150: 5, -5: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestDeclineRatioZeroFirst(t *testing.T) {
	if mkSeries(0, 5).DeclineRatio() != 1 {
		t.Fatal("zero first point must not divide by zero")
	}
}

// Property: mean is always within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	fn := func(vals []float64) bool {
		finite := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				finite = append(finite, v)
			}
		}
		if len(finite) == 0 {
			return true
		}
		s := mkSeries(finite...)
		const eps = 1e-6
		return s.Mean() >= s.Min()-eps && s.Mean() <= s.Max()+eps
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("gen", "throughput", "eff")
	tb.AddRow("1", "213.0", "1.000")
	tb.AddRow("20", "110.0")         // short row pads
	tb.AddRow("x", "y", "z", "drop") // long row truncates
	if tb.NumRows() != 3 {
		t.Fatal("row count")
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "gen") || !strings.Contains(lines[0], "throughput") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "213.0") {
		t.Fatalf("row: %q", lines[2])
	}
	if strings.Contains(out, "drop") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestFormatters(t *testing.T) {
	if MB(1500000) != "1.5" {
		t.Fatalf("MB = %q", MB(1500000))
	}
	if F1(3.14159) != "3.1" || F3(3.14159) != "3.142" {
		t.Fatal("float formatters")
	}
}

// Regression: an empty Series returns ±Inf from Min/Max; formatting those
// must render "-" rather than leaking "+Inf"/"-Inf" into tables.
func TestFormattersNonFinite(t *testing.T) {
	s := NewSeries("empty")
	for _, got := range []string{F1(s.Min()), F1(s.Max()), F3(s.Min()), F3(s.Max()),
		F1(math.NaN()), F3(math.NaN())} {
		if got != "-" {
			t.Fatalf("non-finite value rendered %q, want \"-\"", got)
		}
	}
	var sb strings.Builder
	tb := NewTable("min", "max")
	tb.AddRow(F1(s.Min()), F1(s.Max()))
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Inf") {
		t.Fatalf("Inf leaked into rendered table:\n%s", sb.String())
	}
}

func TestHistogramSummary(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("t_hist", "test", telemetry.RatioBuckets)
	if got := HistogramSummary(h.Snapshot()); got != "-" {
		t.Fatalf("empty histogram summary = %q, want \"-\"", got)
	}
	for _, v := range []float64{0.05, 0.05, 0.3} {
		h.Observe(v)
	}
	got := HistogramSummary(h.Snapshot())
	if !strings.HasPrefix(got, "n=3 ") || !strings.Contains(got, "max≤0.3") {
		t.Fatalf("summary = %q", got)
	}
}
