// Package minhash derives similarity signatures for segments, the mechanism
// SiLo uses to find "similar segments" without a full chunk index: by the
// min-wise hashing property, two segments that share a large fraction of
// their chunks have the same minimum chunk fingerprint with probability
// equal to their Jaccard similarity.
package minhash

import "repro/internal/chunk"

// Representative returns the minimum fingerprint (by byte order) among the
// chunks — SiLo's "representative fingerprint" of a segment. Zero
// fingerprint if chunks is empty.
func Representative(chunks []chunk.Chunk) chunk.Fingerprint {
	var best chunk.Fingerprint
	first := true
	for i := range chunks {
		if first || less(chunks[i].FP, best) {
			best = chunks[i].FP
			first = false
		}
	}
	return best
}

// Signature returns the k smallest distinct fingerprints in ascending
// order (a k-min-sketch). Fewer than k chunks yield a shorter signature.
func Signature(chunks []chunk.Chunk, k int) []chunk.Fingerprint {
	if k <= 0 || len(chunks) == 0 {
		return nil
	}
	// Simple insertion into a small sorted slice: k is tiny (<= 8).
	sig := make([]chunk.Fingerprint, 0, k)
	for i := range chunks {
		fp := chunk.Fingerprint(chunks[i].FP)
		pos := len(sig)
		dup := false
		for j, s := range sig {
			if s == fp {
				dup = true
				break
			}
			if less(fp, s) {
				pos = j
				break
			}
		}
		if dup {
			continue
		}
		if pos == len(sig) {
			if len(sig) < k {
				sig = append(sig, fp)
			}
			continue
		}
		if len(sig) < k {
			sig = append(sig, chunk.Fingerprint{})
		}
		copy(sig[pos+1:], sig[pos:len(sig)-1])
		sig[pos] = fp
	}
	return sig
}

// Jaccard estimates the Jaccard similarity of two signatures produced with
// the same k: the fraction of matching entries among the union's k smallest.
func Jaccard(a, b []chunk.Fingerprint) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inA := make(map[chunk.Fingerprint]struct{}, len(a))
	for _, fp := range a {
		inA[fp] = struct{}{}
	}
	match := 0
	for _, fp := range b {
		if _, ok := inA[fp]; ok {
			match++
		}
	}
	denom := len(a)
	if len(b) > denom {
		denom = len(b)
	}
	return float64(match) / float64(denom)
}

func less(a, b chunk.Fingerprint) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
