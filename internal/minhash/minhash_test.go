package minhash

import (
	"encoding/binary"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
)

func mkChunk(i uint64) chunk.Chunk {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return chunk.Meta(chunk.Of(b[:]), 1)
}

func mkChunks(ids ...uint64) []chunk.Chunk {
	var out []chunk.Chunk
	for _, i := range ids {
		out = append(out, mkChunk(i))
	}
	return out
}

func TestRepresentativeEmpty(t *testing.T) {
	if !Representative(nil).IsZero() {
		t.Fatal("empty set must give zero representative")
	}
}

func TestRepresentativeIsMin(t *testing.T) {
	cs := mkChunks(5, 3, 9, 1, 7)
	rep := Representative(cs)
	for _, c := range cs {
		if less(c.FP, rep) {
			t.Fatal("representative is not the minimum")
		}
	}
}

func TestRepresentativeOrderInvariant(t *testing.T) {
	a := mkChunks(1, 2, 3, 4, 5)
	b := mkChunks(5, 4, 3, 2, 1)
	if Representative(a) != Representative(b) {
		t.Fatal("representative must be order-invariant")
	}
}

func TestSignatureSortedDistinct(t *testing.T) {
	cs := mkChunks(9, 1, 5, 1, 9, 3, 7, 5)
	sig := Signature(cs, 4)
	if len(sig) != 4 {
		t.Fatalf("signature length %d", len(sig))
	}
	if !sort.SliceIsSorted(sig, func(i, j int) bool { return less(sig[i], sig[j]) }) {
		t.Fatal("signature not ascending")
	}
	for i := 1; i < len(sig); i++ {
		if sig[i] == sig[i-1] {
			t.Fatal("signature has duplicates")
		}
	}
	if sig[0] != Representative(cs) {
		t.Fatal("signature[0] must equal the representative")
	}
}

func TestSignatureShortInputs(t *testing.T) {
	if Signature(nil, 4) != nil {
		t.Fatal("empty input → nil signature")
	}
	if Signature(mkChunks(1), 0) != nil {
		t.Fatal("k=0 → nil signature")
	}
	sig := Signature(mkChunks(1, 2), 8)
	if len(sig) != 2 {
		t.Fatalf("short input signature length %d, want 2", len(sig))
	}
}

func TestJaccardBounds(t *testing.T) {
	a := Signature(mkChunks(1, 2, 3, 4), 4)
	if Jaccard(a, a) != 1 {
		t.Fatal("self similarity must be 1")
	}
	b := Signature(mkChunks(100, 200, 300, 400), 4)
	if Jaccard(a, b) != 0 {
		t.Fatal("disjoint similarity must be 0")
	}
	if Jaccard(nil, a) != 0 || Jaccard(a, nil) != 0 {
		t.Fatal("empty signature similarity must be 0")
	}
}

func TestJaccardPartialOverlap(t *testing.T) {
	a := Signature(mkChunks(1, 2, 3, 4), 4)
	b := Signature(mkChunks(1, 2, 30, 40), 4)
	j := Jaccard(a, b)
	if j <= 0 || j >= 1 {
		t.Fatalf("partial overlap similarity = %v, want in (0,1)", j)
	}
}

// The min-hash property: segments sharing most chunks share the same
// representative with high probability. With 90% overlap across 64 chunks,
// agreement probability is ~0.9 per pair; across 100 trials the agreement
// count must be well above half.
func TestMinHashSimilarityProperty(t *testing.T) {
	agree := 0
	const trials = 100
	for tr := 0; tr < trials; tr++ {
		base := uint64(tr * 1000)
		var a, b []chunk.Chunk
		for i := uint64(0); i < 64; i++ {
			a = append(a, mkChunk(base+i))
			if i < 58 { // ~90% shared
				b = append(b, mkChunk(base+i))
			} else {
				b = append(b, mkChunk(base+i+500))
			}
		}
		if Representative(a) == Representative(b) {
			agree++
		}
	}
	if agree < trials/2 {
		t.Fatalf("representative agreement %d/%d too low for 90%% overlap", agree, trials)
	}
}

// Property: Signature(cs, k) equals the first k entries of the fully sorted
// distinct fingerprint list.
func TestSignatureMatchesSortProperty(t *testing.T) {
	fn := func(idsRaw []uint8, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		var cs []chunk.Chunk
		for _, id := range idsRaw {
			cs = append(cs, mkChunk(uint64(id)))
		}
		got := Signature(cs, k)
		// Reference: sort distinct fingerprints.
		set := map[chunk.Fingerprint]struct{}{}
		for _, c := range cs {
			set[c.FP] = struct{}{}
		}
		var all []chunk.Fingerprint
		for fp := range set {
			all = append(all, fp)
		}
		sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		if len(got) != len(all) {
			return false
		}
		for i := range got {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRepresentative(b *testing.B) {
	cs := make([]chunk.Chunk, 256)
	for i := range cs {
		cs[i] = mkChunk(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Representative(cs)
	}
}

func BenchmarkSignature(b *testing.B) {
	cs := make([]chunk.Chunk, 256)
	for i := range cs {
		cs[i] = mkChunk(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Signature(cs, 3)
	}
}
