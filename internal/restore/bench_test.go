package restore

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/disk"
)

// benchStore builds a sealed store holding nChunks chunks of size bytes
// (chunksPerContainer per container) and the sequential recipe over them.
func benchStore(b testing.TB, nChunks, size, chunksPerContainer int) (*container.Store, *chunk.Recipe) {
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, true),
		container.Config{DataCap: int64(chunksPerContainer * size), MaxChunks: chunksPerContainer})
	if err != nil {
		b.Fatal(err)
	}
	rec := &chunk.Recipe{Label: "bench"}
	for i := 0; i < nChunks; i++ {
		d := make([]byte, size)
		for j := range d {
			d[j] = byte(i*131 + j*7)
		}
		loc := mustWrite(s, chunk.New(d), uint64(i))
		rec.Append(chunk.Of(d), uint32(len(d)), loc)
	}
	if err := s.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s, rec
}

// BenchmarkDecode measures the decode/verify pool in isolation: stream-order
// chunk views pushed through push/close, SHA-256 verified by N workers,
// re-sequenced and discarded. Bytes/op is the verified payload.
func BenchmarkDecode(b *testing.B) {
	const nChunks, size = 4096, 1024
	jobs := make([]decodeJob, nChunks)
	for i := range jobs {
		d := make([]byte, size)
		for j := range d {
			d[j] = byte(i + j)
		}
		jobs[i] = decodeJob{idx: i, fp: chunk.Of(d), size: uint32(size), data: d}
	}
	refs := make([]chunk.Ref, nChunks)
	for i, j := range jobs {
		refs[i] = chunk.Ref{FP: j.fp, Size: j.size}
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(nChunks * size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := newDecodePipe(workers, true, io.Discard)
				for k := range jobs {
					if !p.push(k, &refs[k], jobs[k].data) {
						b.Fatal("pipe failed early")
					}
				}
				if _, _, err := p.close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestorePipeline measures the full restore path end to end —
// plan, coalesced fetch, decode pool, resequenced write — at several decode
// worker counts. Simulated stats are identical across sub-benchmarks
// (TestDecodeWorkersDeterminism); only wall time moves.
func BenchmarkRestorePipeline(b *testing.B) {
	s, rec := benchStore(b, 2048, 1024, 256)
	for _, dw := range []int{1, 2, 0} {
		name := fmt.Sprintf("decode=%d", dw)
		if dw == 0 {
			name = "decode=auto"
		}
		b.Run(name, func(b *testing.B) {
			cfg := PipelineConfig{CacheContainers: 8, Policy: PolicyOPT, Workers: 2,
				Coalesce: true, MaxCoalesce: 8, Verify: true, DecodeWorkers: dw}
			b.SetBytes(rec.Bytes())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunPipelined(context.Background(), s, rec, cfg, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRestoreAllocsPerChunk is the zero-copy guard: on the whole-container
// hot path (sequential recipe, verify on) a restore must stay under 0.5
// heap allocations per chunk — chunk payloads are views into the fetched
// container sections (or the chunk-cache arena), never per-chunk copies.
func TestRestoreAllocsPerChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const nChunks = 2048
	s, rec := benchStore(t, nChunks, 512, 256)
	for _, tc := range []struct {
		name string
		cfg  PipelineConfig
	}{
		{"serial", PipelineConfig{CacheContainers: 8, Policy: PolicyOPT, Workers: 1, Coalesce: true, MaxCoalesce: 8, Verify: true, DecodeWorkers: 1}},
		{"decode-pool", PipelineConfig{CacheContainers: 8, Policy: PolicyOPT, Workers: 1, Coalesce: true, MaxCoalesce: 8, Verify: true, DecodeWorkers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() {
				if _, err := RunPipelined(context.Background(), s, rec, tc.cfg, io.Discard); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm internal pools once before counting
			perRun := testing.AllocsPerRun(10, run)
			if perChunk := perRun / nChunks; perChunk >= 0.5 {
				t.Fatalf("%.0f allocs/run = %.3f allocs/chunk, want < 0.5 (zero-copy hot path regressed)",
					perRun, perChunk)
			}
		})
	}
}
