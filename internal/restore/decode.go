package restore

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
)

// decodeBatchSize is the number of chunk refs grouped into one decode unit.
// Batching amortizes channel operations over many chunks so the per-chunk
// cost of the parallel path stays allocation-free (batches recycle through
// a pool) and far below one synchronization per chunk.
const decodeBatchSize = 64

// decodeJob is one chunk awaiting verify/emit. data is a zero-copy view
// into the fetched container section (or the chunk-cache arena) — never a
// private copy.
type decodeJob struct {
	idx  int // ref index, for error attribution
	fp   chunk.Fingerprint
	size uint32
	data []byte
}

// decodeBatch is the unit flowing through the pool: the assembler fills it
// in stream order, one worker verifies it, the resequencer emits it.
type decodeBatch struct {
	jobs   []decodeJob
	done   chan struct{} // closed by the verifying worker
	err    error         // first verify failure in the batch...
	errIdx int           // ...at jobs[errIdx]
}

// decodePipe is the wall-clock decode/verify pool of the restore pipeline:
// the assembler pushes chunk views in stream order, `workers` goroutines
// SHA-256-verify whole batches concurrently, and a single resequencer
// goroutine consumes batches strictly in submission order, writing chunks
// to the output and stopping at the first in-order error — so the bytes on
// the wire, the error the caller sees, and the Bytes/Chunks tallies are all
// bit-identical to the inline serial path. Only wall-clock time changes.
type decodePipe struct {
	verify  bool
	w       io.Writer
	jobs    chan *decodeBatch // unordered, to the verify workers
	ordered chan *decodeBatch // submission order, to the resequencer
	pool    sync.Pool
	cur     *decodeBatch
	failed  atomic.Bool // resequencer hit an error; assembler should stop

	writerDone    chan struct{}
	bytes, chunks int64 // resequencer tallies (in-order, pre-error)
	werr          error // first in-order verify/write error
}

func newDecodePipe(workers int, verify bool, w io.Writer) *decodePipe {
	depth := workers * 4
	p := &decodePipe{
		verify:     verify,
		w:          w,
		jobs:       make(chan *decodeBatch, depth),
		ordered:    make(chan *decodeBatch, depth),
		writerDone: make(chan struct{}),
	}
	p.pool.New = func() any {
		return &decodeBatch{jobs: make([]decodeJob, 0, decodeBatchSize)}
	}
	for k := 0; k < workers; k++ {
		go p.worker()
	}
	go p.resequence()
	return p
}

// push appends one chunk to the current batch, flushing full batches into
// the pool. It reports false once the resequencer has failed — the
// assembler stops producing and close() surfaces the error.
func (p *decodePipe) push(idx int, ref *chunk.Ref, piece []byte) bool {
	if p.failed.Load() {
		return false
	}
	if p.cur == nil {
		p.cur = p.pool.Get().(*decodeBatch)
	}
	p.cur.jobs = append(p.cur.jobs, decodeJob{idx: idx, fp: ref.FP, size: ref.Size, data: piece})
	if len(p.cur.jobs) >= decodeBatchSize {
		p.submit()
	}
	return true
}

// submit hands the current batch to the pool: ordered first (the
// resequencer must see submission order), then jobs. Both channels are
// bounded, so a slow writer or slow workers backpressure the assembler.
func (p *decodePipe) submit() {
	b := p.cur
	p.cur = nil
	b.done = make(chan struct{})
	b.err, b.errIdx = nil, 0
	telDecodeQueueDepth.Observe(float64(len(p.jobs)))
	p.ordered <- b
	p.jobs <- b
}

// close flushes the tail batch, joins the pool, and returns the in-order
// Bytes/Chunks written plus the first in-order error (nil if none).
func (p *decodePipe) close() (bytes, chunks int64, err error) {
	if p.cur != nil && len(p.cur.jobs) > 0 {
		p.submit()
	}
	close(p.jobs)
	close(p.ordered)
	<-p.writerDone
	return p.bytes, p.chunks, p.werr
}

// worker verifies batches; order does not matter here, the resequencer
// re-imposes it.
func (p *decodePipe) worker() {
	for b := range p.jobs {
		t0 := time.Now()
		if p.verify {
			for k := range b.jobs {
				j := &b.jobs[k]
				if got := chunk.Of(j.data); got != j.fp {
					b.err = fmt.Errorf("restore: chunk %d fingerprint mismatch (%s != %s)",
						j.idx, got.Short(), j.fp.Short())
					b.errIdx = k
					break // chunks past the first bad one are never emitted
				}
			}
		}
		stageDecode.Observe(t0)
		close(b.done)
	}
}

// resequence consumes batches in submission order, waiting each one's
// verification, and emits chunks until the first error; everything after is
// drained (and recycled) without writing.
func (p *decodePipe) resequence() {
	defer close(p.writerDone)
	for b := range p.ordered {
		<-b.done
		if p.werr == nil {
			for k := range b.jobs {
				if b.err != nil && k == b.errIdx {
					p.fail(b.err)
					break
				}
				j := &b.jobs[k]
				if p.w != nil {
					t1 := time.Now()
					_, err := p.w.Write(j.data)
					stageCopy.Observe(t1)
					if err != nil {
						p.fail(err)
						break
					}
				}
				p.bytes += int64(j.size)
				p.chunks++
			}
		}
		b.jobs = b.jobs[:0]
		p.pool.Put(b)
	}
}

func (p *decodePipe) fail(err error) {
	p.werr = err
	p.failed.Store(true)
}
