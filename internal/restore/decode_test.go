package restore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
)

// TestDecodeWorkersDeterminism is the tentpole's contract: DecodeWorkers is
// a wall-clock-only knob. Restored bytes, every Stats field (including the
// simulated Duration), and the device-level seek/read/byte counters must be
// bit-identical across decode worker counts and shared-cache budgets, for
// every pipeline mode — the restore analogue of PR 7's ingest
// TestParallelWorkersDeterminism.
func TestDecodeWorkersDeterminism(t *testing.T) {
	modes := []struct {
		name string
		cfg  PipelineConfig
	}{
		{"lru-serial", PipelineConfig{CacheContainers: 4, Policy: PolicyLRU, Workers: 1, Verify: true}},
		{"opt-coalesce", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, Coalesce: true, Verify: true}},
		{"opt-lanes", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 4, Coalesce: true, Verify: true}},
		{"chunk-cache", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, ChunkCache: true, Verify: true}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			type result struct {
				st   Stats
				out  []byte
				seek int64
				read int64
			}
			run := func(decodeWorkers int, cacheBudget int64) result {
				s := rig(t, true)
				datas := mkDatas(60, 300)
				seq := ingest(t, s, "base", datas)
				frag := interleave(seq, "frag")
				s.SetDataCache(cacheBudget)
				cfg := mode.cfg
				cfg.DecodeWorkers = decodeWorkers
				var buf bytes.Buffer
				st, err := RunPipelined(context.Background(), s, frag, cfg, &buf)
				if err != nil {
					t.Fatal(err)
				}
				ds := s.Device().Stats()
				return result{st: st, out: buf.Bytes(), seek: ds.Seeks, read: ds.BytesRead}
			}
			base := run(1, 0)
			for _, dw := range []int{0, 2, 8} {
				for _, budget := range []int64{0, 2048, 1 << 20} {
					got := run(dw, budget)
					if got.st != base.st {
						t.Errorf("decode=%d budget=%d: stats %+v != serial %+v", dw, budget, got.st, base.st)
					}
					if !bytes.Equal(got.out, base.out) {
						t.Errorf("decode=%d budget=%d: restored bytes differ", dw, budget)
					}
					if got.seek != base.seek || got.read != base.read {
						t.Errorf("decode=%d budget=%d: device stats %d/%d != %d/%d",
							dw, budget, got.seek, got.read, base.seek, base.read)
					}
				}
			}
		})
	}
}

// TestDecodeWorkersVerifyError pins error semantics: the parallel decode
// pool must surface the same first-in-stream fingerprint mismatch, with the
// same in-order partial progress, as the inline serial path.
func TestDecodeWorkersVerifyError(t *testing.T) {
	run := func(decodeWorkers int) (Stats, error) {
		s := rig(t, true)
		datas := mkDatas(60, 300)
		rec := ingest(t, s, "bad", datas)
		rec.Refs[37].FP = chunk.Of([]byte("not the real content"))
		cfg := PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, Coalesce: true,
			Verify: true, DecodeWorkers: decodeWorkers}
		return RunPipelined(context.Background(), s, rec, cfg, &bytes.Buffer{})
	}
	_, serialErr := run(1)
	if serialErr == nil {
		t.Fatal("serial path must detect the mismatch")
	}
	for _, dw := range []int{2, 8} {
		_, err := run(dw)
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("decode=%d: err %v, want %v", dw, err, serialErr)
		}
	}
}

// failAfterWriter errors once n bytes have been written.
type failAfterWriter struct {
	n       int64
	written int64
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.written += int64(len(p))
	if w.written > w.n {
		return 0, errors.New("writer full")
	}
	return len(p), nil
}

func TestDecodeWorkersWriteError(t *testing.T) {
	run := func(decodeWorkers int) (Stats, error) {
		s := rig(t, true)
		datas := mkDatas(40, 300)
		rec := ingest(t, s, "we", datas)
		cfg := PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1,
			Verify: true, DecodeWorkers: decodeWorkers}
		return RunPipelined(context.Background(), s, rec, cfg, &failAfterWriter{n: 5000})
	}
	stSerial, serialErr := run(1)
	if serialErr == nil {
		t.Fatal("serial path must surface the write error")
	}
	for _, dw := range []int{2, 8} {
		st, err := run(dw)
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("decode=%d: err %v, want %v", dw, err, serialErr)
		}
		if st.Bytes != stSerial.Bytes || st.Chunks != stSerial.Chunks {
			t.Fatalf("decode=%d: partial progress %d/%d, want %d/%d",
				dw, st.Bytes, st.Chunks, stSerial.Bytes, stSerial.Chunks)
		}
	}
}

// TestParallelDecodeFailureReleasesPins is the regression guard for the
// early-stop pin leak: with Workers > 1 and the decode pool engaged, a
// verify mismatch or writer error fails the resequencer, push() returns
// false, and the assembler's run() returns nil without consuming every
// planned extent — close() surfaces the error. The fetch scheduler must
// still be drained in that case so the fetcher goroutines exit and every
// prefetched extent's shared-cache pin is released; before the fix the
// drain only ran on a non-nil run() error, leaving the scheduler blocked
// and the prefetched containers pinned in the store's DataCache forever.
func TestParallelDecodeFailureReleasesPins(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt bool // fingerprint mismatch vs writer error
	}{
		{"verify-mismatch", true},
		{"writer-error", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := rig(t, true)
			datas := mkDatas(1500, 100)
			seq := ingest(t, s, "base", datas)
			frag := interleave(seq, "frag")
			s.SetDataCache(64 << 20)
			if tc.corrupt {
				frag.Refs[1].FP = chunk.Of([]byte("not the real content"))
			}
			var w io.Writer = &bytes.Buffer{}
			if !tc.corrupt {
				w = &failAfterWriter{n: 300}
			}
			cfg := PipelineConfig{CacheContainers: 2, Policy: PolicyOPT, Workers: 8,
				Verify: true, DecodeWorkers: 4}
			if _, err := RunPipelined(context.Background(), s, frag, cfg, w); err == nil {
				t.Fatal("expected the restore to fail")
			}
			// The drain releases the remaining prefetched extents
			// asynchronously; poll the cache for quiescence.
			deadline := time.Now().Add(10 * time.Second)
			for {
				st := s.DataCache().Stats()
				if st.Pinned == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("prefetched pins never released after failed restore: %+v", st)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestConcurrentRestoresSharedCache drives many concurrent parallel-decode
// restores of the same recipe over one store with a shared data cache
// attached, asserting every stream gets byte-identical output. Run under
// -race this is the pipeline-level concurrency guard for the shared cache.
func TestConcurrentRestoresSharedCache(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(60, 300)
	seq := ingest(t, s, "base", datas)
	frag := interleave(seq, "frag")
	want := wantBytes(datas, frag, seq)
	s.SetDataCache(1 << 20)

	const streams = 8
	var wg sync.WaitGroup
	outs := make([][]byte, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			cfg := PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 2,
				Coalesce: true, Verify: true, DecodeWorkers: 4}
			_, err := RunPipelined(context.Background(), s, frag, cfg, &buf)
			outs[i], errs[i] = buf.Bytes(), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Fatalf("stream %d: restored bytes differ", i)
		}
	}
	cs := s.DataCache().Stats()
	if cs.Hits+cs.Waits == 0 {
		t.Fatalf("shared cache never hit across %d identical streams: %+v", streams, cs)
	}
	if cs.Misses > uint64(s.NumContainers()) {
		t.Fatalf("cache stats %+v: more misses than containers (%d) — single-flight broken",
			cs, s.NumContainers())
	}
}
