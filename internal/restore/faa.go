package restore

import (
	"context"
	"fmt"
	"io"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/telemetry"
)

// FAAConfig parameterizes a forward-assembly-area restore.
type FAAConfig struct {
	// AreaBytes is the assembly buffer size: the window of the stream
	// being reconstructed at once.
	AreaBytes int64
	// Verify recomputes chunk fingerprints (requires a data-storing device).
	Verify bool
}

// DefaultFAAConfig returns a 32 MiB assembly area.
func DefaultFAAConfig() FAAConfig { return FAAConfig{AreaBytes: 32 << 20} }

// RunFAA restores a recipe with the forward-assembly-area algorithm (the
// restore-side counterpart of Lillibridge et al.'s FAST'13 analysis, and
// the main alternative to the LRU container cache of Run): the stream is
// reconstructed window by window, and within one window every needed
// container is read exactly once, no matter how badly the recipe
// interleaves. Memory is bounded by AreaBytes instead of a container count.
//
// For a fragmented recipe FAA trades the cache's thrash behaviour for one
// guaranteed read per container per window — which of the two wins depends
// on the fragmentation structure; RunRestoreAblation in the public API
// compares them.
func RunFAA(ctx context.Context, store *container.Store, recipe *chunk.Recipe, cfg FAAConfig, w io.Writer) (Stats, error) {
	if cfg.AreaBytes < 1 {
		cfg.AreaBytes = 1
	}
	if err := checkVerify(store, cfg.Verify); err != nil {
		return Stats{}, err
	}
	stats := Stats{Label: recipe.Label, Fragments: recipe.Fragments()}
	clock := store.Device().Clock()
	start := clock.Now()
	ctx, span := telemetry.StartSpan(ctx, "restore.faa")
	defer span.End()
	telFragments.Observe(float64(stats.Fragments))

	refs := recipe.Refs
	for lo := 0; lo < len(refs); {
		// Extend the window to the assembly-area budget (always include at
		// least one chunk so oversized chunks still restore).
		hi := lo
		var windowBytes int64
		for hi < len(refs) {
			sz := int64(refs[hi].Size)
			if hi > lo && windowBytes+sz > cfg.AreaBytes {
				break
			}
			windowBytes += sz
			hi++
		}

		// One pass: containers in first-appearance order, each read once.
		containerData := make(map[uint32][]byte)
		for i := lo; i < hi; i++ {
			cid := refs[i].Loc.Container
			if _, ok := containerData[cid]; ok {
				continue
			}
			if !store.Sealed(cid) {
				return stats, fmt.Errorf("restore: recipe references unsealed container %d", cid)
			}
			data, err := store.ReadData(ctx, cid)
			if err != nil {
				return stats, err
			}
			containerData[cid] = data
			stats.ContainerReads++
			telContainerReads.Inc()
		}

		// Assemble the window in stream order.
		for i := lo; i < hi; i++ {
			ref := &refs[i]
			piece := store.Extract(containerData[ref.Loc.Container], ref.Loc)
			if cfg.Verify {
				if got := chunk.Of(piece); got != ref.FP {
					return stats, fmt.Errorf("restore: chunk %d fingerprint mismatch (%s != %s)", i, got.Short(), ref.FP.Short())
				}
			}
			if w != nil {
				if _, err := w.Write(piece); err != nil {
					return stats, err
				}
			}
			stats.Bytes += int64(ref.Size)
			stats.Chunks++
		}
		lo = hi
	}
	stats.CacheHits = stats.Chunks - stats.ContainerReads
	if stats.CacheHits < 0 {
		stats.CacheHits = 0
	}
	stats.ExtentReads = stats.ContainerReads // FAA reads are uncoalesced

	stats.Duration = clock.Now() - start
	telRestoreBytes.Add(stats.Bytes)
	telRestoreChunks.Add(stats.Chunks)
	telRestoreCacheHits.Add(stats.CacheHits)
	span.SetSim(stats.Duration)
	return stats, nil
}
