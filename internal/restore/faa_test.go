package restore

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chunk"
)

func TestFAARoundTrip(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(20, 300)
	rec := ingest(t, s, "faa", datas)
	var want bytes.Buffer
	for _, d := range datas {
		want.Write(d)
	}
	var got bytes.Buffer
	st, err := RunFAA(context.Background(), s, rec, FAAConfig{AreaBytes: 1500, Verify: true}, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("FAA restore differs from original")
	}
	if st.Chunks != 20 || st.Bytes != 20*300 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFAAReadsEachContainerOncePerWindow(t *testing.T) {
	s := rig(t, false)
	datas := mkDatas(60, 300)
	seq := ingest(t, s, "base", datas)
	// Interleave refs from distant containers.
	frag := &chunk.Recipe{Label: "frag"}
	n := len(seq.Refs)
	for i := 0; i < n/2; i++ {
		frag.Refs = append(frag.Refs, seq.Refs[i], seq.Refs[n/2+i])
	}
	// A window covering the whole recipe: each container read exactly once
	// despite the pathological interleave.
	st, err := RunFAA(context.Background(), s, frag, FAAConfig{AreaBytes: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainerReads != int64(s.NumContainers()) {
		t.Fatalf("whole-recipe window read %d containers, want %d", st.ContainerReads, s.NumContainers())
	}
	// The LRU cache with capacity 1 thrashes on the same recipe.
	lru, err := Run(context.Background(), s, frag, Config{CacheContainers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lru.ContainerReads <= st.ContainerReads {
		t.Fatalf("interleaved recipe: FAA %d reads should beat LRU-1 %d", st.ContainerReads, lru.ContainerReads)
	}
}

func TestFAASmallWindowDegrades(t *testing.T) {
	s := rig(t, false)
	datas := mkDatas(60, 300)
	seq := ingest(t, s, "base2", datas)
	frag := &chunk.Recipe{Label: "frag2"}
	n := len(seq.Refs)
	for i := 0; i < n/2; i++ {
		frag.Refs = append(frag.Refs, seq.Refs[i], seq.Refs[n/2+i])
	}
	big, _ := RunFAA(context.Background(), s, frag, FAAConfig{AreaBytes: 1 << 30}, nil)
	small, _ := RunFAA(context.Background(), s, frag, FAAConfig{AreaBytes: 700}, nil)
	if small.ContainerReads <= big.ContainerReads {
		t.Fatalf("smaller area should re-read containers: %d <= %d", small.ContainerReads, big.ContainerReads)
	}
}

func TestFAAVerifyRequiresDataDevice(t *testing.T) {
	s := rig(t, false)
	rec := ingest(t, s, "v", mkDatas(2, 100))
	if _, err := RunFAA(context.Background(), s, rec, FAAConfig{AreaBytes: 1 << 20, Verify: true}, nil); err == nil {
		t.Fatal("Verify on hole device must error")
	}
}

func TestFAAUnsealedRejected(t *testing.T) {
	s := rig(t, false)
	rec := &chunk.Recipe{Label: "u"}
	loc := mustWrite(s, chunk.New([]byte("pending")), 0)
	rec.Append(chunk.Of([]byte("pending")), 7, loc)
	if _, err := RunFAA(context.Background(), s, rec, DefaultFAAConfig(), nil); err == nil {
		t.Fatal("unsealed container must be rejected")
	}
}

func TestFAAEmptyRecipeAndClamp(t *testing.T) {
	s := rig(t, false)
	st, err := RunFAA(context.Background(), s, &chunk.Recipe{Label: "e"}, FAAConfig{AreaBytes: 0}, nil)
	if err != nil || st.Chunks != 0 {
		t.Fatalf("empty FAA restore: %v %+v", err, st)
	}
}

func TestFAAOversizedChunkMidStream(t *testing.T) {
	// An oversized chunk at a window boundary in the middle of the stream:
	// the window admitting it holds exactly that one chunk, and the stream
	// must still reassemble bit-exactly around it.
	s := rig(t, true)
	datas := [][]byte{
		mkDatas(1, 400)[0],
		bytes.Repeat([]byte{7}, 2000), // larger than AreaBytes below
		mkDatas(1, 400)[0],
		bytes.Repeat([]byte{8}, 2500), // a second oversized chunk
		mkDatas(1, 400)[0],
	}
	rec := ingest(t, s, "mid", datas)
	var want bytes.Buffer
	for _, d := range datas {
		want.Write(d)
	}
	var out bytes.Buffer
	st, err := RunFAA(context.Background(), s, rec, FAAConfig{AreaBytes: 500, Verify: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatal("mid-stream oversized chunks corrupted the stream")
	}
	if st.Chunks != int64(len(datas)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFAAOversizedChunkStillRestores(t *testing.T) {
	s := rig(t, true)
	data := bytes.Repeat([]byte{9}, 2000)
	rec := ingest(t, s, "big", [][]byte{data})
	var out bytes.Buffer
	// Area smaller than the chunk: the window must still admit one chunk.
	if _, err := RunFAA(context.Background(), s, rec, FAAConfig{AreaBytes: 100, Verify: true}, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("oversized chunk corrupted")
	}
}
