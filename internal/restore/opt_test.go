package restore

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/chunk"
)

// TestOPTNeverWorseThanLRUProperty is the Belady-optimality property test:
// across randomized fragmented recipes and cache capacities, the OPT plan
// never schedules more container fetches than the LRU plan at the same
// capacity.
func TestOPTNeverWorseThanLRUProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := rig(t, false)
	base := ingest(t, s, "base", mkDatas(120, 300))

	for trial := 0; trial < 50; trial++ {
		// Random recipe: a random-length walk over the base refs, biased
		// toward revisiting earlier regions (what fragmented dedup recipes
		// look like: long runs with backward jumps into shared history).
		n := 50 + rng.Intn(200)
		refs := make([]chunk.Ref, 0, n)
		pos := rng.Intn(len(base.Refs))
		for len(refs) < n {
			run := 1 + rng.Intn(8)
			for k := 0; k < run && len(refs) < n; k++ {
				refs = append(refs, base.Refs[pos])
				pos = (pos + 1) % len(base.Refs)
			}
			pos = rng.Intn(len(base.Refs))
		}
		capacity := 1 + rng.Intn(6)

		lruPlan, err := buildPlan(s, refs, capacity, PolicyLRU, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		optPlan, err := buildPlan(s, refs, capacity, PolicyOPT, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(optPlan.fetches) > len(lruPlan.fetches) {
			t.Fatalf("trial %d (cap %d, %d refs): OPT %d fetches > LRU %d",
				trial, capacity, n, len(optPlan.fetches), len(lruPlan.fetches))
		}
	}
}

// TestOPTBeatsLRUOnLoopingRecipe pins a case where OPT is strictly better:
// a cyclic scan one container larger than the cache, LRU's classic
// worst case (it evicts exactly the container needed next, missing every
// time, while OPT misses only once per capacity-sized stride).
func TestOPTBeatsLRUOnLoopingRecipe(t *testing.T) {
	s := rig(t, false)
	base := ingest(t, s, "base", mkDatas(60, 300))

	// One ref per distinct container, cycled several times.
	seen := make(map[uint32]bool)
	var perContainer []chunk.Ref
	for _, r := range base.Refs {
		if !seen[r.Loc.Container] {
			seen[r.Loc.Container] = true
			perContainer = append(perContainer, r)
		}
	}
	if len(perContainer) < 4 {
		t.Fatalf("need several containers, got %d", len(perContainer))
	}
	loop := &chunk.Recipe{Label: "loop"}
	for cycle := 0; cycle < 6; cycle++ {
		loop.Refs = append(loop.Refs, perContainer...)
	}
	capacity := len(perContainer) - 1

	lruSt, err := RunPipelined(context.Background(), s, loop, PipelineConfig{CacheContainers: capacity, Policy: PolicyLRU, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	optSt, err := RunPipelined(context.Background(), s, loop, PipelineConfig{CacheContainers: capacity, Policy: PolicyOPT, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lruSt.ContainerReads != int64(len(loop.Refs)) {
		t.Fatalf("LRU should miss every ref of the loop: %d reads, %d refs",
			lruSt.ContainerReads, len(loop.Refs))
	}
	if optSt.ContainerReads >= lruSt.ContainerReads {
		t.Fatalf("OPT should beat LRU on the loop: %d >= %d",
			optSt.ContainerReads, lruSt.ContainerReads)
	}
	if optSt.Duration >= lruSt.Duration {
		t.Fatal("fewer reads must mean less simulated time")
	}
}
