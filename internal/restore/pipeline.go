package restore

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/disk"
	"repro/internal/telemetry"
)

// Telemetry of the pipelined restore path: extent coalescing (the seeks Eq. 1
// no longer pays) and the prefetch depth the fetch pool sustains ahead of the
// assembler.
var (
	telCoalescedReads = telemetry.NewCounter("restore_coalesced_reads_total",
		"multi-container sequential extent reads issued by the restore pipeline")
	telCoalescedContainers = telemetry.NewCounter("restore_coalesced_containers_total",
		"container fetches folded into a preceding coalesced extent read (seeks saved)")
	telPrefetchDepth = telemetry.NewHistogram("restore_prefetch_depth",
		"extent reads in flight ahead of the restore assembler when a prefetch is scheduled",
		telemetry.CountBuckets)
	telDecodeQueueDepth = telemetry.NewHistogram("restore_decode_queue_depth",
		"verify/decode batches queued ahead of the decode worker pool when a batch is submitted",
		telemetry.CountBuckets)
)

// PipelineConfig parameterizes RunPipelined.
type PipelineConfig struct {
	// CacheContainers is the restore cache capacity in containers.
	CacheContainers int
	// Policy selects the cache replacement policy. PolicyOPT exploits the
	// recipe's forward knowledge (Belady eviction); PolicyLRU reproduces the
	// legacy cache exactly.
	Policy CachePolicy
	// Workers is the number of parallel prefetch lanes. 1 runs the serial
	// pipeline, whose stats are bit-identical to Run for PolicyLRU with
	// coalescing off. Workers > 1 models that many concurrent read streams
	// on the simulated array with per-lane clocks (the round's duration is
	// the slowest lane), consistent with the multi-stream ingest model.
	Workers int
	// Coalesce merges schedule-consecutive fetches of disk-adjacent
	// containers into single sequential extent reads: k containers for one
	// seek plus a combined transfer.
	Coalesce bool
	// MaxCoalesce caps the containers merged into one extent (default 8).
	MaxCoalesce int
	// ChunkCache retains only the recipe-referenced chunks of each cached
	// container instead of its whole data section, bounding cache memory by
	// live bytes; Stats.PeakCacheBytes reports the high-water mark.
	ChunkCache bool
	// Verify recomputes chunk fingerprints (requires a data-storing device).
	Verify bool
	// DecodeWorkers sizes the wall-clock verify/decode worker pool that
	// overlaps SHA-256 verification with container fetches, with an in-order
	// resequencer emitting chunks to the output writer: 0 sizes the pool to
	// GOMAXPROCS, 1 forces inline serial decode, N > 1 uses exactly N
	// goroutines. Unlike Workers — which models
	// simulated prefetch lanes and changes Stats.Duration by design — this
	// knob is purely a wall-clock optimization: restored bytes, simulated
	// time, and every Stats field are bit-identical across values (pinned by
	// TestDecodeWorkersDeterminism).
	DecodeWorkers int
}

// DefaultPipelineConfig returns the full read-optimized configuration: an
// 8-container OPT cache, coalescing up to 8 adjacent containers per extent,
// and 4 prefetch lanes.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{CacheContainers: 8, Policy: PolicyOPT, Workers: 4, Coalesce: true, MaxCoalesce: 8}
}

// RunPipelined restores a recipe through the planned, pipelined read path:
// the recipe is first compiled into a fetch schedule (which container to
// read before which ref, what to evict, which fetches coalesce into one
// sequential extent), then executed. With Workers == 1 execution is serial
// on the store's clock; with Workers > 1 extent reads are charged to
// per-lane clocks in deterministic schedule order (earliest-free lane
// first) while a pool of fetcher goroutines materializes the data ahead of
// the serial assembler, and Stats.Duration is the slowest lane.
//
// With PolicyLRU, Workers <= 1, Coalesce and ChunkCache off, the resulting
// Stats are bit-identical to Run — pinned by TestSerialPipelinedMatchesRun.
func RunPipelined(ctx context.Context, store *container.Store, recipe *chunk.Recipe, cfg PipelineConfig, w io.Writer) (Stats, error) {
	if cfg.CacheContainers < 1 {
		cfg.CacheContainers = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxCoalesce < 2 {
		cfg.MaxCoalesce = 8
	}
	if err := checkVerify(store, cfg.Verify); err != nil {
		return Stats{}, err
	}

	ctx, span := telemetry.StartSpan(ctx, "restore.pipeline")
	defer span.End()

	_, pspan := telemetry.StartSpan(ctx, "restore.plan")
	plan, err := buildPlan(store, recipe.Refs, cfg.CacheContainers, cfg.Policy, cfg.Coalesce, cfg.MaxCoalesce)
	pspan.End()
	if err != nil {
		return Stats{}, err
	}

	stats := Stats{Label: recipe.Label, Fragments: recipe.Fragments()}
	telFragments.Observe(float64(stats.Fragments))
	stats.ContainerReads = int64(len(plan.fetches))
	stats.ExtentReads = int64(len(plan.extents))
	stats.CoalescedContainers = stats.ContainerReads - stats.ExtentReads
	telContainerReads.Add(stats.ContainerReads)
	telCoalescedContainers.Add(stats.CoalescedContainers)
	for i := range plan.extents {
		if len(plan.extents[i].ids) > 1 {
			telCoalescedReads.Inc()
		}
	}

	as := &assembly{store: store, cfg: cfg, plan: plan, refs: recipe.Refs, w: w, stats: &stats}
	if cfg.ChunkCache {
		as.refLocs = referencedLocations(recipe.Refs)
		as.chunks = make(map[uint32]map[int64][]byte, cfg.CacheContainers)
	} else {
		as.whole = make(map[uint32][]byte, cfg.CacheContainers)
	}
	if dw := decodeWorkerCount(cfg.DecodeWorkers); dw > 1 {
		as.emit = newDecodePipe(dw, cfg.Verify, w)
	}

	master := store.Device().Clock()
	start := master.Now()
	var runErr error
	if cfg.Workers == 1 {
		// Serial: extent reads charge the store clock at the instant the
		// assembler needs them, exactly like the legacy path. The pin holds
		// the extent in the shared data cache across the staging window.
		runErr = as.run(func(e *extent) ([][]byte, func(), error) {
			return store.ReadDataRangePinned(ctx, e.ids)
		})
	} else {
		// Parallel: charge every extent to the earliest-free lane in
		// deterministic schedule order, then run the wall-clock pipeline
		// with uncharged fetches.
		chargeLanes(store, plan, cfg.Workers)
		runErr = as.runParallel(ctx)
	}
	if as.emit != nil {
		// Join the decode pool. A decode/write error happened at an earlier
		// stream position than any fetch error (fetches fail at the ref
		// being assembled; the resequencer trails it), so it wins — exactly
		// the ref at which the serial path would have stopped.
		bytes, chunks, perr := as.emit.close()
		stats.Bytes += bytes
		stats.Chunks += chunks
		if perr != nil {
			runErr = perr
		}
	}
	if runErr != nil {
		return stats, runErr
	}
	stats.Duration = master.Now() - start
	telRestoreBytes.Add(stats.Bytes)
	telRestoreChunks.Add(stats.Chunks)
	span.SetSim(stats.Duration)
	return stats, nil
}

// decodeWorkerCount resolves the DecodeWorkers knob: 0 = GOMAXPROCS, any
// explicit count is used as-is. An explicit count above GOMAXPROCS is
// deliberately NOT clamped — extra goroutines cost little, and honoring the
// request keeps the pool (and its determinism tests) exercised even on
// single-core hosts where a clamp would silently fall back to inline decode.
func decodeWorkerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chargeLanes assigns each extent read to the lane that frees earliest
// (ties to the lowest lane) and charges seek + combined transfer through a
// per-lane view of the store device. Charging happens sequentially in
// schedule order, so head movement, device stats, and every lane clock are
// deterministic regardless of fetcher goroutine interleaving. The master
// clock advances to the slowest lane's finish time — the same
// slowest-lane-of-the-round model the concurrent ingest scheduler uses.
func chargeLanes(store *container.Store, plan *restorePlan, workers int) {
	master := store.Device().Clock()
	start := master.Now()
	lanes := make([]disk.Clock, workers)
	for i := range lanes {
		lanes[i].Advance(start)
	}
	for ei := range plan.extents {
		l := 0
		for k := 1; k < workers; k++ {
			if lanes[k].Now() < lanes[l].Now() {
				l = k
			}
		}
		store.AccountDataRange(plan.extents[ei].ids, &lanes[l])
	}
	latest := start
	for i := range lanes {
		if t := lanes[i].Now(); t > latest {
			latest = t
		}
	}
	if d := latest - master.Now(); d > 0 {
		master.Advance(d)
	}
}

// assembly is the serial consumer of the fetch schedule: it walks the
// recipe, installs fetched containers into the cache per the plan, and
// emits (optionally verifying) the reconstructed stream.
type assembly struct {
	store *container.Store
	cfg   PipelineConfig
	plan  *restorePlan
	refs  []chunk.Ref
	w     io.Writer
	stats *Stats

	whole      map[uint32][]byte           // whole-container cache mode
	chunks     map[uint32]map[int64][]byte // chunk-level cache mode: offset → bytes
	refLocs    map[uint32][]chunk.Location
	cacheBytes int64

	// emit, when non-nil, routes verify/write through the parallel decode
	// pool instead of doing it inline; see decodePipe.
	emit *decodePipe
}

// run drives the assembler, obtaining each extent's data from fetchExtent
// the moment its first container is needed. Containers of a coalesced
// extent that install later wait in a staging buffer bounded by
// MaxCoalesce. The release returned with an extent's data pins it in the
// shared container cache until its last container has been installed.
func (as *assembly) run(fetchExtent func(e *extent) ([][]byte, func(), error)) error {
	staged := make(map[uint32][]byte)
	for i := range as.refs {
		ref := &as.refs[i]
		id := ref.Loc.Container
		if fx := as.plan.fetchAt[i]; fx >= 0 {
			f := &as.plan.fetches[fx]
			e := &as.plan.extents[f.extent]
			if fx == e.lo {
				datas, release, err := fetchExtent(e)
				if err != nil {
					return err
				}
				for k, cid := range e.ids {
					staged[cid] = datas[k]
				}
				if release != nil {
					// The cache residency served its purpose the moment the
					// sections are staged in this restore's own memory.
					release()
				}
			}
			data, ok := staged[id]
			if !ok {
				panic("restore: planned fetch was not staged by its extent")
			}
			delete(staged, id)
			as.install(id, data, f)
		} else {
			as.stats.CacheHits++
		}
		piece := as.piece(id, ref)
		if as.emit != nil {
			if !as.emit.push(i, ref, piece) {
				return nil // resequencer failed; close() surfaces its error
			}
			continue
		}
		t0 := time.Now()
		if as.cfg.Verify {
			if got := chunk.Of(piece); got != ref.FP {
				return fmt.Errorf("restore: chunk %d fingerprint mismatch (%s != %s)", i, got.Short(), ref.FP.Short())
			}
		}
		stageDecode.Observe(t0)
		if as.w != nil {
			t1 := time.Now()
			_, err := as.w.Write(piece)
			stageCopy.Observe(t1)
			if err != nil {
				return err
			}
		}
		as.stats.Bytes += int64(ref.Size)
		as.stats.Chunks++
	}
	return nil
}

// install adds a fetched container to the cache, evicting the planned
// victim. In chunk mode only the recipe-referenced pieces are retained and
// the full data section is released immediately.
func (as *assembly) install(id uint32, data []byte, f *fetchOp) {
	if f.hasVictim {
		if as.cfg.ChunkCache {
			for _, piece := range as.chunks[f.victim] {
				as.cacheBytes -= int64(len(piece))
			}
			delete(as.chunks, f.victim)
		} else {
			delete(as.whole, f.victim)
		}
	}
	if as.cfg.ChunkCache {
		locs := as.refLocs[id]
		// One arena allocation per container, sliced into immutable views —
		// not one copy per chunk. Full-capacity sub-slicing keeps a view
		// from growing into its neighbour.
		var total int
		for _, loc := range locs {
			total += int(loc.Size)
		}
		arena := make([]byte, 0, total)
		m := make(map[int64][]byte, len(locs))
		for _, loc := range locs {
			off := len(arena)
			arena = append(arena, as.store.Extract(data, loc)...)
			m[loc.Offset] = arena[off:len(arena):len(arena)]
		}
		as.cacheBytes += int64(total)
		as.chunks[id] = m
		if as.cacheBytes > as.stats.PeakCacheBytes {
			as.stats.PeakCacheBytes = as.cacheBytes
		}
	} else {
		as.whole[id] = data
	}
}

// piece returns the bytes of ref out of the cached residency of id.
func (as *assembly) piece(id uint32, ref *chunk.Ref) []byte {
	if as.cfg.ChunkCache {
		p, ok := as.chunks[id][ref.Loc.Offset]
		if !ok {
			panic("restore: referenced chunk missing from chunk cache")
		}
		return p
	}
	data, ok := as.whole[id]
	if !ok {
		panic("restore: referenced container missing from cache")
	}
	return as.store.Extract(data, ref.Loc)
}

// runParallel overlaps extent fetches with assembly: a scheduler enqueues
// extents in order, Workers fetcher goroutines materialize their data (time
// was already charged by chargeLanes), and the assembler consumes results
// strictly in schedule order through per-job reorder channels.
func (as *assembly) runParallel(ctx context.Context) error {
	type fetchResult struct {
		datas   [][]byte
		release func()
		err     error
	}
	type fetchJob struct {
		ids []uint32
		out chan fetchResult
	}
	depth := as.cfg.Workers * 2
	pending := make(chan *fetchJob, depth)
	jobs := make(chan *fetchJob, depth)
	var inFlight atomic.Int64
	go func() {
		defer close(pending)
		defer close(jobs)
		for ei := range as.plan.extents {
			j := &fetchJob{ids: as.plan.extents[ei].ids, out: make(chan fetchResult, 1)}
			telPrefetchDepth.Observe(float64(inFlight.Add(1)))
			pending <- j
			jobs <- j
		}
	}()
	for k := 0; k < as.cfg.Workers; k++ {
		go func() {
			for j := range jobs {
				// Pinned fetch: the extent stays resident in the shared data
				// cache for the whole prefetch window, released by the
				// assembler once staged (or by the drain on error).
				datas, release, err := as.store.PeekDataRangePinned(ctx, j.ids)
				j.out <- fetchResult{datas: datas, release: release, err: err}
			}
		}()
	}
	consumed := 0
	err := as.run(func(e *extent) ([][]byte, func(), error) {
		j := <-pending
		consumed++
		res := <-j.out
		inFlight.Add(-1)
		return res.datas, res.release, res.err
	})
	if consumed < len(as.plan.extents) {
		// The assembler stopped before consuming every extent — either a
		// fetch/write error (err != nil) or the decode resequencer failed, in
		// which case run returns nil and close() surfaces the error. Either
		// way, drain so the scheduler and fetchers can exit and every
		// prefetched extent's shared-cache pin is released; the store
		// outlives the restore call, so late PeekDataRange calls are
		// harmless.
		go func() {
			for j := range pending {
				res := <-j.out
				if res.release != nil {
					res.release()
				}
			}
		}()
	}
	return err
}

// referencedLocations collects, per container, the distinct chunk locations
// the recipe references — the residency set of chunk-level caching.
func referencedLocations(refs []chunk.Ref) map[uint32][]chunk.Location {
	byC := make(map[uint32][]chunk.Location)
	seen := make(map[uint32]map[int64]bool)
	for i := range refs {
		loc := refs[i].Loc
		s := seen[loc.Container]
		if s == nil {
			s = make(map[int64]bool)
			seen[loc.Container] = s
		}
		if s[loc.Offset] {
			continue
		}
		s[loc.Offset] = true
		byC[loc.Container] = append(byC[loc.Container], loc)
	}
	return byC
}
