package restore

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"repro/internal/chunk"
)

// interleave builds the pathological fragmented recipe used throughout the
// restore tests: refs alternating between the two halves of seq.
func interleave(seq *chunk.Recipe, label string) *chunk.Recipe {
	frag := &chunk.Recipe{Label: label}
	n := len(seq.Refs)
	for i := 0; i < n/2; i++ {
		frag.Refs = append(frag.Refs, seq.Refs[i], seq.Refs[n/2+i])
	}
	return frag
}

// wantBytes concatenates the original chunk contents in recipe order.
func wantBytes(datas [][]byte, rec *chunk.Recipe, seq *chunk.Recipe) []byte {
	index := make(map[chunk.Fingerprint][]byte, len(datas))
	for i, d := range datas {
		index[seq.Refs[i].FP] = d
	}
	var out bytes.Buffer
	for i := range rec.Refs {
		out.Write(index[rec.Refs[i].FP])
	}
	return out.Bytes()
}

// TestSerialPipelinedMatchesRun is the tier-1 guard required by the PR: the
// pipelined engine at workers=1 with the LRU policy and no coalescing must
// produce byte-for-byte identical Stats — and identical device-level seek,
// read, and byte counters — to the legacy Run on an identical store.
func TestSerialPipelinedMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cache int
	}{
		{"cache1", 1},
		{"cache4", 4},
		{"cache8", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Two independent stores ingesting the same stream produce an
			// identical on-disk layout; restore each through one path.
			s1 := rig(t, true)
			s2 := rig(t, true)
			datas := mkDatas(60, 300)
			seq1 := ingest(t, s1, "base", datas)
			seq2 := ingest(t, s2, "base", datas)
			frag1 := interleave(seq1, "frag")
			frag2 := interleave(seq2, "frag")

			var out1, out2 bytes.Buffer
			legacy, err := Run(context.Background(), s1, frag1, Config{CacheContainers: tc.cache, Verify: true}, &out1)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := RunPipelined(context.Background(), s2, frag2,
				PipelineConfig{CacheContainers: tc.cache, Policy: PolicyLRU, Workers: 1, Verify: true}, &out2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(legacy, pipe) {
				t.Fatalf("stats diverge:\nlegacy    %+v\npipelined %+v", legacy, pipe)
			}
			if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
				t.Fatal("restored streams differ")
			}
			if s1.Device().Stats() != s2.Device().Stats() {
				t.Fatalf("device stats diverge:\nlegacy    %v\npipelined %v",
					s1.Device().Stats(), s2.Device().Stats())
			}
		})
	}
}

// Every pipelined mode must reconstruct the exact original stream.
func TestPipelinedRoundTripAllModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  PipelineConfig
	}{
		{"opt-serial", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, Verify: true}},
		{"opt-coalesce", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, Coalesce: true, Verify: true}},
		{"lru-coalesce", PipelineConfig{CacheContainers: 4, Policy: PolicyLRU, Workers: 1, Coalesce: true, Verify: true}},
		{"opt-parallel", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 4, Coalesce: true, Verify: true}},
		{"chunk-cache", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, ChunkCache: true, Verify: true}},
		{"everything", PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 4, Coalesce: true, ChunkCache: true, Verify: true}},
		{"default", DefaultPipelineConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := rig(t, true)
			datas := mkDatas(60, 300)
			seq := ingest(t, s, "base", datas)
			frag := interleave(seq, "frag")
			want := wantBytes(datas, frag, seq)
			if err := VerifyAgainstFunc(func(w io.Writer) (Stats, error) {
				return RunPipelined(context.Background(), s, frag, tc.cfg, w)
			}, want); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Coalescing on a sequential recipe folds adjacent container fetches into
// extents: fewer physical reads, same container fetch count, and a strictly
// shorter simulated duration (seeks saved).
func TestCoalescingReducesExtentReads(t *testing.T) {
	s1 := rig(t, false)
	s2 := rig(t, false)
	datas := mkDatas(60, 300)
	rec1 := ingest(t, s1, "seq", datas)
	rec2 := ingest(t, s2, "seq", datas)

	plain, err := RunPipelined(context.Background(), s1, rec1, PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coalesced, err := RunPipelined(context.Background(), s2, rec2, PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, Coalesce: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ExtentReads != plain.ContainerReads || plain.CoalescedContainers != 0 {
		t.Fatalf("uncoalesced run must have one extent per container: %+v", plain)
	}
	if coalesced.ContainerReads != plain.ContainerReads {
		t.Fatalf("coalescing must not change the miss schedule: %d vs %d",
			coalesced.ContainerReads, plain.ContainerReads)
	}
	if coalesced.ExtentReads >= plain.ExtentReads {
		t.Fatalf("sequential recipe should coalesce: %d extents vs %d reads",
			coalesced.ExtentReads, plain.ExtentReads)
	}
	if coalesced.CoalescedContainers != coalesced.ContainerReads-coalesced.ExtentReads {
		t.Fatalf("coalesced accounting inconsistent: %+v", coalesced)
	}
	if coalesced.Duration >= plain.Duration {
		t.Fatalf("coalescing should save seek time: %v >= %v", coalesced.Duration, plain.Duration)
	}
}

// Parallel prefetch lanes shorten the simulated restore: with k lanes the
// round's duration is the slowest lane, not the sum of all extent times.
func TestParallelLanesShortenSimulatedTime(t *testing.T) {
	s1 := rig(t, false)
	s2 := rig(t, false)
	datas := mkDatas(60, 300)
	seq1 := ingest(t, s1, "base", datas)
	seq2 := ingest(t, s2, "base", datas)
	frag1 := interleave(seq1, "frag")
	frag2 := interleave(seq2, "frag")

	serial, err := RunPipelined(context.Background(), s1, frag1, PipelineConfig{CacheContainers: 2, Policy: PolicyOPT, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunPipelined(context.Background(), s2, frag2, PipelineConfig{CacheContainers: 2, Policy: PolicyOPT, Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.ContainerReads != serial.ContainerReads {
		t.Fatalf("lane count must not change the fetch schedule: %d vs %d",
			parallel.ContainerReads, serial.ContainerReads)
	}
	if parallel.Duration >= serial.Duration {
		t.Fatalf("4 lanes should beat serial: %v >= %v", parallel.Duration, serial.Duration)
	}
}

// Parallel timing must be deterministic: the same restore twice gives the
// same Duration regardless of goroutine interleaving.
func TestParallelTimingDeterministic(t *testing.T) {
	var prev Stats
	for i := 0; i < 3; i++ {
		s := rig(t, false)
		datas := mkDatas(60, 300)
		seq := ingest(t, s, "base", datas)
		frag := interleave(seq, "frag")
		st, err := RunPipelined(context.Background(), s, frag, PipelineConfig{CacheContainers: 2, Policy: PolicyOPT, Workers: 4, Coalesce: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.Label = prev.Label
		if i > 0 && !reflect.DeepEqual(prev, st) {
			t.Fatalf("run %d diverged:\n%+v\n%+v", i, prev, st)
		}
		prev = st
	}
}

// Chunk-level caching keeps only referenced bytes: the peak footprint must
// be positive but below the whole-container footprint of the same capacity.
func TestChunkCacheBoundsMemory(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(60, 300)
	seq := ingest(t, s, "base", datas)
	// Reference only every 4th chunk: most of each container is dead weight
	// a whole-container cache would still hold.
	sparse := &chunk.Recipe{Label: "sparse"}
	for i := 0; i < len(seq.Refs); i += 4 {
		sparse.Refs = append(sparse.Refs, seq.Refs[i])
	}
	st, err := RunPipelined(context.Background(), s, sparse,
		PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1, ChunkCache: true, Verify: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakCacheBytes <= 0 {
		t.Fatal("chunk cache must report its peak footprint")
	}
	wholeFootprint := int64(4 * 4096) // capacity × DataCap of the test rig
	if st.PeakCacheBytes >= wholeFootprint {
		t.Fatalf("chunk cache footprint %d should undercut whole-container %d",
			st.PeakCacheBytes, wholeFootprint)
	}
	whole, err := RunPipelined(context.Background(), s, sparse,
		PipelineConfig{CacheContainers: 4, Policy: PolicyOPT, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if whole.PeakCacheBytes != 0 {
		t.Fatalf("whole-container mode must not report a chunk footprint: %+v", whole)
	}
}

// Race-hygiene stress: several concurrent pipelined restores at workers=8
// with verification on a shared store (run under go test -race).
func TestPipelinedConcurrentStress(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(80, 300)
	seq := ingest(t, s, "base", datas)
	frag := interleave(seq, "frag")
	want := wantBytes(datas, frag, seq)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out bytes.Buffer
			st, err := RunPipelined(context.Background(), s, frag,
				PipelineConfig{CacheContainers: 3, Policy: PolicyOPT, Workers: 8, Coalesce: true, Verify: true}, &out)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out.Bytes(), want) {
				errs <- fmt.Errorf("concurrent restore produced a corrupt stream")
				return
			}
			if st.Chunks != int64(len(frag.Refs)) {
				errs <- fmt.Errorf("concurrent restore stats wrong: %+v", st)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPipelinedRejectsUnsealedAndHoleVerify(t *testing.T) {
	s := rig(t, false)
	rec := &chunk.Recipe{Label: "u"}
	loc := mustWrite(s, chunk.New([]byte("pending")), 0)
	rec.Append(chunk.Of([]byte("pending")), 7, loc)
	if _, err := RunPipelined(context.Background(), s, rec, DefaultPipelineConfig(), nil); err == nil {
		t.Fatal("unsealed container must be rejected")
	}

	s2 := rig(t, false)
	rec2 := ingest(t, s2, "v", mkDatas(2, 100))
	cfg := DefaultPipelineConfig()
	cfg.Verify = true
	if _, err := RunPipelined(context.Background(), s2, rec2, cfg, nil); err == nil {
		t.Fatal("Verify on hole device must error")
	}
}

func TestPipelinedEmptyRecipe(t *testing.T) {
	s := rig(t, false)
	for _, workers := range []int{1, 4} {
		st, err := RunPipelined(context.Background(), s, &chunk.Recipe{Label: "empty"},
			PipelineConfig{CacheContainers: 4, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Bytes != 0 || st.Chunks != 0 || st.ContainerReads != 0 || st.ExtentReads != 0 {
			t.Fatalf("empty restore stats = %+v", st)
		}
	}
}

func TestPipelinedVerifyCatchesCorruption(t *testing.T) {
	s := rig(t, true)
	rec := ingest(t, s, "c", mkDatas(3, 100))
	rec.Refs[1].FP = chunk.Of([]byte("not the real content"))
	cfg := DefaultPipelineConfig()
	cfg.Verify = true
	if _, err := RunPipelined(context.Background(), s, rec, cfg, nil); err == nil {
		t.Fatal("fingerprint mismatch must be detected")
	}
	// Same under parallel lanes: the early error must not deadlock the
	// scheduler or fetchers.
	cfg.Workers = 8
	if _, err := RunPipelined(context.Background(), s, rec, cfg, nil); err == nil {
		t.Fatal("fingerprint mismatch must be detected in parallel mode")
	}
}
