package restore

import (
	"fmt"
	"math"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/lru"
)

// CachePolicy selects the replacement policy of the pipelined restore cache.
type CachePolicy int

const (
	// PolicyLRU evicts the least-recently-used container — the behaviour of
	// the classic restore cache in Run.
	PolicyLRU CachePolicy = iota
	// PolicyOPT evicts the container whose next use lies farthest ahead in
	// the recipe (Belady's offline-optimal replacement). The full recipe is
	// known before a restore starts, so — uniquely among the system's cache
	// consumers — the restore path can run the offline-optimal policy
	// online. At equal capacity OPT never performs more container reads
	// than LRU (Belady's optimality), which the property tests pin.
	PolicyOPT
)

func (p CachePolicy) String() string {
	if p == PolicyOPT {
		return "opt"
	}
	return "lru"
}

// fetchOp is one planned cache miss: container must be fetched just before
// recipe ref needAt is assembled, evicting victim (when the cache is full).
type fetchOp struct {
	container uint32
	needAt    int
	victim    uint32
	hasVictim bool
	extent    int // index of the physical extent read that carries this fetch
}

// extent is one physical read: the containers of fetch ops [lo,hi) are
// adjacent on device and read as a single sequential span (one seek).
type extent struct {
	lo, hi int
	ids    []uint32
}

// restorePlan is the precomputed fetch schedule of one recipe at one cache
// configuration: which refs hit, which refs trigger a fetch, what each fetch
// evicts, and how fetches group into coalesced extent reads. The plan is
// pure metadata — building it performs no simulated I/O.
type restorePlan struct {
	fetchAt []int // per ref: index into fetches when the ref triggers a miss, else -1
	fetches []fetchOp
	extents []extent
}

// buildPlan simulates the chosen cache policy over the recipe and returns
// the fetch schedule. All referenced containers must be sealed.
func buildPlan(store *container.Store, refs []chunk.Ref, capacity int, policy CachePolicy, coalesce bool, maxCoalesce int) (*restorePlan, error) {
	seen := make(map[uint32]bool)
	for i := range refs {
		id := refs[i].Loc.Container
		if seen[id] {
			continue
		}
		seen[id] = true
		if !store.Sealed(id) {
			return nil, fmt.Errorf("restore: recipe references unsealed container %d", id)
		}
	}
	p := &restorePlan{fetchAt: make([]int, len(refs))}
	if policy == PolicyOPT {
		p.simulateOPT(refs, capacity)
	} else {
		p.simulateLRU(refs, capacity)
	}
	p.buildExtents(store, coalesce, maxCoalesce)
	return p, nil
}

// simulateLRU replays the exact Get/Put sequence Run performs against the
// shared lru package, so the planned miss schedule is bit-identical to the
// legacy restore cache.
func (p *restorePlan) simulateLRU(refs []chunk.Ref, capacity int) {
	c := lru.New[uint32, struct{}](capacity)
	var victim uint32
	var hasVictim bool
	c.OnEvict(func(k uint32, _ struct{}) { victim, hasVictim = k, true })
	for i := range refs {
		id := refs[i].Loc.Container
		if _, ok := c.Get(id); ok {
			p.fetchAt[i] = -1
			continue
		}
		hasVictim = false
		c.Put(id, struct{}{})
		p.fetchAt[i] = len(p.fetches)
		p.fetches = append(p.fetches, fetchOp{container: id, needAt: i, victim: victim, hasVictim: hasVictim})
	}
}

// simulateOPT runs Belady's algorithm: on a miss with a full cache, evict
// the resident container whose next reference is farthest ahead (never
// referenced again beats everything). Ties break to the smallest container
// ID so the plan is deterministic.
func (p *restorePlan) simulateOPT(refs []chunk.Ref, capacity int) {
	occ := make(map[uint32][]int)
	for i := range refs {
		id := refs[i].Loc.Container
		occ[id] = append(occ[id], i)
	}
	ptr := make(map[uint32]int, len(occ))
	cached := make(map[uint32]bool, capacity)
	// nextUse returns the first reference index of id strictly after i. The
	// per-container cursor only moves forward, so the amortized cost across
	// the whole simulation is O(len(refs)).
	nextUse := func(id uint32, i int) int {
		list := occ[id]
		j := ptr[id]
		for j < len(list) && list[j] <= i {
			j++
		}
		ptr[id] = j
		if j == len(list) {
			return math.MaxInt
		}
		return list[j]
	}
	for i := range refs {
		id := refs[i].Loc.Container
		if cached[id] {
			p.fetchAt[i] = -1
			continue
		}
		f := fetchOp{container: id, needAt: i}
		if len(cached) >= capacity {
			victim, victimNext := uint32(0), -1
			for cid := range cached {
				n := nextUse(cid, i)
				if n > victimNext || (n == victimNext && cid < victim) {
					victim, victimNext = cid, n
				}
			}
			delete(cached, victim)
			f.victim, f.hasVictim = victim, true
		}
		cached[id] = true
		p.fetchAt[i] = len(p.fetches)
		p.fetches = append(p.fetches, f)
	}
}

// buildExtents groups schedule-consecutive fetches of disk-adjacent
// containers into single sequential extent reads. Containers fetched early
// by a coalesced extent wait in a small staging buffer (bounded by
// maxCoalesce) until their scheduled install, so cache occupancy — and
// therefore the miss schedule — is unchanged by coalescing; only the seek
// count drops.
func (p *restorePlan) buildExtents(store *container.Store, coalesce bool, maxCoalesce int) {
	for fi := range p.fetches {
		f := &p.fetches[fi]
		if coalesce && len(p.extents) > 0 {
			e := &p.extents[len(p.extents)-1]
			if e.hi == fi && len(e.ids) < maxCoalesce && store.Adjacent(e.ids[len(e.ids)-1], f.container) {
				e.hi = fi + 1
				e.ids = append(e.ids, f.container)
				f.extent = len(p.extents) - 1
				continue
			}
		}
		f.extent = len(p.extents)
		p.extents = append(p.extents, extent{lo: fi, hi: fi + 1, ids: []uint32{f.container}})
	}
}
