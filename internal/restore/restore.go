// Package restore reconstructs backup streams from recipes and measures the
// paper's third metric, data read performance.
//
// The restore path reads whole container data sections through a small LRU
// cache (real restore engines do exactly this: a fragmented stream thrashes
// the cache and pays a seek per fragment, a linearized stream streams).
// Read time is disk-model time: every cache miss costs one seek plus the
// container's data transfer — the paper's Eq. 1 cost structure at container
// granularity.
package restore

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/lru"
	"repro/internal/telemetry"
)

// Live telemetry of the restore hot path. restore_container_reads_total is
// the seek count of the paper's Eq. 1 (every container read that misses the
// cache is one discontiguous access: N·T_seek); the cache counters come from
// the LRU itself, and restore_fragments_per_stream observes Eq. 1's N per
// restored recipe.
var (
	telContainerReads = telemetry.NewCounter("restore_container_reads_total",
		"full container data-section reads during restores (Eq. 1 seek events)")
	telRestoreCacheHits = telemetry.NewCounter("restore_cache_hits_total",
		"chunks served from the restore container cache")
	telRestoreCacheMisses = telemetry.NewCounter("restore_cache_misses_total",
		"restore container-cache misses")
	telRestoreCacheEvictions = telemetry.NewCounter("restore_cache_evictions_total",
		"restore container-cache evictions (thrash indicator on fragmented streams)")
	telRestoreBytes = telemetry.NewCounter("restore_bytes_total",
		"logical bytes reconstructed by restores")
	telRestoreChunks = telemetry.NewCounter("restore_chunks_total",
		"chunks reconstructed by restores")
	telFragments = telemetry.NewHistogram("restore_fragments_per_stream",
		"placement fragments per restored stream (the N of paper Eq. 1)",
		telemetry.CountBuckets)
)

// Per-stage wall clocks of the restore hot path (the always-on layer; see
// telemetry/stage.go). "decode" is chunk extraction from fetched container
// data plus optional fingerprint verification; "copy" is writing the
// reconstructed bytes to the caller's sink. Container fetches themselves are
// the container layer's "container_read" stage.
var (
	stageDecode = telemetry.Stage("decode")
	stageCopy   = telemetry.Stage("copy")
)

// Config parameterizes a restore run.
type Config struct {
	// CacheContainers is the restore cache capacity in containers.
	CacheContainers int
	// Verify recomputes each chunk's fingerprint and compares (requires a
	// data-storing container device; silently meaningless otherwise, so Run
	// rejects Verify on a hole device).
	Verify bool
}

// DefaultConfig returns an 8-container restore cache, no verification.
func DefaultConfig() Config { return Config{CacheContainers: 8} }

// Stats summarizes one restore.
type Stats struct {
	Label          string
	Bytes          int64
	Chunks         int64
	ContainerReads int64 // cache misses: full data-section reads
	CacheHits      int64 // chunks served from cached containers
	// ExtentReads counts physical discontiguous reads (Eq. 1's N). Without
	// coalescing it equals ContainerReads; the pipelined engine folds
	// adjacent containers into one extent, so ExtentReads < ContainerReads.
	ExtentReads int64
	// CoalescedContainers = ContainerReads - ExtentReads: the seeks the
	// coalescer saved.
	CoalescedContainers int64
	// PeakCacheBytes is the cache memory high-water mark in chunk-level
	// caching mode (0 for whole-container caches, whose footprint is just
	// capacity × container data size).
	PeakCacheBytes int64
	Fragments      int // recipe placement fragments (paper Eq. 1's N)
	Duration       time.Duration
}

// ThroughputMBps returns restore bandwidth in MB/s.
func (s Stats) ThroughputMBps() float64 {
	sec := s.Duration.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Bytes) / sec / 1e6
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %.1f MB restored at %.1f MB/s (%d container reads, %d fragments)",
		s.Label, float64(s.Bytes)/1e6, s.ThroughputMBps(), s.ContainerReads, s.Fragments)
}

// checkVerify rejects Verify on a hole device: recomputing fingerprints of
// zero-filled data would "verify" garbage silently. Shared by every restore
// mode (Run, RunFAA, RunPipelined).
func checkVerify(store *container.Store, verify bool) error {
	if verify && !store.StoresData() {
		return fmt.Errorf("restore: Verify requires a data-storing backend")
	}
	return nil
}

// Run restores recipe from store, writing reconstructed bytes to w (pass
// nil to measure without materializing). The simulated time consumed is
// charged to the store's device clock and reported in Stats.Duration.
//
// Cache accounting has a single source of truth: the LRU's own counters,
// read back into Stats on every exit path (including errors, where Stats
// carries the partial counts). The telemetry counters are mirrored by
// lru.Instrument from those same counters, so Stats and /metrics cannot
// drift.
func Run(ctx context.Context, store *container.Store, recipe *chunk.Recipe, cfg Config, w io.Writer) (stats Stats, err error) {
	if cfg.CacheContainers < 1 {
		cfg.CacheContainers = 1
	}
	if err := checkVerify(store, cfg.Verify); err != nil {
		return Stats{}, err
	}
	stats = Stats{Label: recipe.Label, Fragments: recipe.Fragments()}
	clock := store.Device().Clock()
	start := clock.Now()
	ctx, span := telemetry.StartSpan(ctx, "restore.run")
	defer span.End()
	telFragments.Observe(float64(stats.Fragments))

	cache := lru.New[uint32, []byte](cfg.CacheContainers)
	cache.Instrument(telRestoreCacheHits, telRestoreCacheMisses, telRestoreCacheEvictions)
	defer func() {
		hits, misses, _ := cache.Stats()
		stats.CacheHits = int64(hits)
		stats.ContainerReads = int64(misses)
		// Every legacy-path container read is its own discontiguous access.
		stats.ExtentReads = stats.ContainerReads
	}()
	for i := range recipe.Refs {
		ref := &recipe.Refs[i]
		if !store.Sealed(ref.Loc.Container) {
			return stats, fmt.Errorf("restore: recipe references unsealed container %d", ref.Loc.Container)
		}
		data, ok := cache.Get(ref.Loc.Container)
		if !ok {
			data, err = store.ReadData(ctx, ref.Loc.Container)
			if err != nil {
				return stats, err
			}
			telContainerReads.Inc()
			cache.Put(ref.Loc.Container, data)
		}
		t0 := time.Now()
		piece := store.Extract(data, ref.Loc)
		if cfg.Verify {
			if got := chunk.Of(piece); got != ref.FP {
				return stats, fmt.Errorf("restore: chunk %d fingerprint mismatch (%s != %s)", i, got.Short(), ref.FP.Short())
			}
		}
		stageDecode.Observe(t0)
		if w != nil {
			t1 := time.Now()
			_, err := w.Write(piece)
			stageCopy.Observe(t1)
			if err != nil {
				return stats, err
			}
		}
		stats.Bytes += int64(ref.Size)
		stats.Chunks++
	}
	stats.Duration = clock.Now() - start
	telRestoreBytes.Add(stats.Bytes)
	telRestoreChunks.Add(stats.Chunks)
	span.SetSim(stats.Duration)
	return stats, nil
}

// VerifyAgainst restores the recipe and compares the byte stream with want,
// returning an error on any divergence. Test helper for end-to-end
// correctness runs.
func VerifyAgainst(ctx context.Context, store *container.Store, recipe *chunk.Recipe, cfg Config, want []byte) error {
	return VerifyAgainstFunc(func(w io.Writer) (Stats, error) {
		return Run(ctx, store, recipe, cfg, w)
	}, want)
}

// VerifyAgainstFunc runs any restore mode (as a closure over its own config)
// into a buffer and compares the reconstructed stream with want. It lets the
// same end-to-end check cover Run, RunFAA, and every RunPipelined variant.
func VerifyAgainstFunc(run func(io.Writer) (Stats, error), want []byte) error {
	var buf bytes.Buffer
	if _, err := run(&buf); err != nil {
		return err
	}
	if !bytes.Equal(buf.Bytes(), want) {
		return fmt.Errorf("restore: reconstructed stream differs from original (%d vs %d bytes)", buf.Len(), len(want))
	}
	return nil
}
