package restore

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chunk"
	"repro/internal/container"
	"repro/internal/disk"
)

// rig builds a container store with storeData and returns it.
func rig(t *testing.T, storeData bool) *container.Store {
	t.Helper()
	var clk disk.Clock
	s, err := container.NewStore(disk.NewDevice(disk.DefaultModel(), &clk, storeData),
		container.Config{DataCap: 4096, MaxChunks: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ingest writes each data slice as a chunk and returns the recipe.
func ingest(t *testing.T, s *container.Store, label string, datas [][]byte) *chunk.Recipe {
	t.Helper()
	rec := &chunk.Recipe{Label: label}
	for i, d := range datas {
		loc := mustWrite(s, chunk.New(d), uint64(i))
		rec.Append(chunk.Of(d), uint32(len(d)), loc)
	}
	s.Flush(context.Background())
	return rec
}

func mkDatas(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		d := make([]byte, size)
		for j := range d {
			d[j] = byte(i*31 + j)
		}
		out[i] = d
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(20, 300)
	rec := ingest(t, s, "rt", datas)
	var want bytes.Buffer
	for _, d := range datas {
		want.Write(d)
	}
	cfg := DefaultConfig()
	cfg.Verify = true
	if err := VerifyAgainst(context.Background(), s, rec, cfg, want.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFields(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(20, 300)
	rec := ingest(t, s, "st", datas)
	st, err := Run(context.Background(), s, rec, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 20 || st.Bytes != 20*300 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ContainerReads == 0 || st.Duration <= 0 {
		t.Fatalf("no reads or time recorded: %+v", st)
	}
	if st.Fragments != rec.Fragments() {
		t.Fatal("fragments mismatch")
	}
	if st.ThroughputMBps() <= 0 {
		t.Fatal("throughput must be positive")
	}
	if st.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSequentialRecipeReadsEachContainerOnce(t *testing.T) {
	s := rig(t, false)
	datas := mkDatas(40, 300) // ~13 chunks per 4KB container
	rec := ingest(t, s, "seq", datas)
	st, err := Run(context.Background(), s, rec, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainerReads != int64(s.NumContainers()) {
		t.Fatalf("sequential restore read %d containers, want %d", st.ContainerReads, s.NumContainers())
	}
	if st.CacheHits != st.Chunks-st.ContainerReads {
		t.Fatalf("cache hits %d inconsistent", st.CacheHits)
	}
}

func TestFragmentedRecipeThrashesCache(t *testing.T) {
	s := rig(t, false)
	datas := mkDatas(60, 300)
	seq := ingest(t, s, "base", datas)
	// Interleave refs from distant containers: 0, n/2, 1, n/2+1, ...
	frag := &chunk.Recipe{Label: "frag"}
	n := len(seq.Refs)
	for i := 0; i < n/2; i++ {
		frag.Refs = append(frag.Refs, seq.Refs[i], seq.Refs[n/2+i])
	}
	cfg := Config{CacheContainers: 1}
	stSeq, _ := Run(context.Background(), s, seq, cfg, nil)
	stFrag, _ := Run(context.Background(), s, frag, cfg, nil)
	if stFrag.ContainerReads <= stSeq.ContainerReads {
		t.Fatalf("interleaved recipe should thrash: %d <= %d reads",
			stFrag.ContainerReads, stSeq.ContainerReads)
	}
	if stFrag.ThroughputMBps() >= stSeq.ThroughputMBps() {
		t.Fatal("fragmented restore should be slower")
	}
}

func TestVerifyRequiresDataDevice(t *testing.T) {
	s := rig(t, false)
	rec := ingest(t, s, "v", mkDatas(2, 100))
	cfg := DefaultConfig()
	cfg.Verify = true
	if _, err := Run(context.Background(), s, rec, cfg, nil); err == nil {
		t.Fatal("Verify on hole device must error")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	s := rig(t, true)
	rec := ingest(t, s, "c", mkDatas(3, 100))
	// Corrupt the recipe: point a ref at the wrong fingerprint.
	rec.Refs[1].FP = chunk.Of([]byte("not the real content"))
	cfg := DefaultConfig()
	cfg.Verify = true
	if _, err := Run(context.Background(), s, rec, cfg, nil); err == nil {
		t.Fatal("fingerprint mismatch must be detected")
	}
}

func TestUnsealedContainerRejected(t *testing.T) {
	s := rig(t, false)
	rec := &chunk.Recipe{Label: "u"}
	loc := mustWrite(s, chunk.New([]byte("pending")), 0)
	rec.Append(chunk.Of([]byte("pending")), 7, loc)
	// No flush: container 0 unsealed.
	if _, err := Run(context.Background(), s, rec, DefaultConfig(), nil); err == nil {
		t.Fatal("unsealed container must be rejected")
	}
}

func TestEmptyRecipe(t *testing.T) {
	s := rig(t, false)
	st, err := Run(context.Background(), s, &chunk.Recipe{Label: "empty"}, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 0 || st.Chunks != 0 || st.ContainerReads != 0 {
		t.Fatalf("empty restore stats = %+v", st)
	}
}

func TestCacheCapacityClamp(t *testing.T) {
	s := rig(t, false)
	rec := ingest(t, s, "cl", mkDatas(5, 100))
	if _, err := Run(context.Background(), s, rec, Config{CacheContainers: 0}, nil); err != nil {
		t.Fatalf("zero cache config should clamp, got %v", err)
	}
}

func TestWriterReceivesStream(t *testing.T) {
	s := rig(t, true)
	datas := mkDatas(10, 123)
	rec := ingest(t, s, "w", datas)
	var buf bytes.Buffer
	if _, err := Run(context.Background(), s, rec, DefaultConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, d := range datas {
		want.Write(d)
	}
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatal("writer output differs")
	}
}

// mustWrite appends c through the store frontier; the in-memory backends
// used by these tests cannot fail, so any error is a test bug.
func mustWrite(s *container.Store, c chunk.Chunk, seg uint64) chunk.Location {
	loc, err := s.Write(context.Background(), c, seg)
	if err != nil {
		panic(err)
	}
	return loc
}
