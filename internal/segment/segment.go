// Package segment groups a chunk stream into segments — the paper's
// processing unit for reading and writing data chunks (§III-B): "multiple
// contiguous chunks" of 0.5 MB to 2 MB, with boundaries "based on the chunk
// content".
//
// Boundaries are content-defined the same way SiLo and Sparse Indexing draw
// them: once the minimum size is reached, a segment ends after any chunk
// whose fingerprint falls in a 1/divisor fraction of hash space; it is
// force-ended at the maximum size. Content-defined segment boundaries are
// what make SPL comparisons stable across backup generations — the same
// region of a file re-segments identically even when neighbouring data
// shifted.
package segment

import (
	"fmt"

	"repro/internal/chunk"
)

// Params configures a Segmenter.
type Params struct {
	MinBytes int64  // minimum segment size (paper: 0.5 MB)
	MaxBytes int64  // maximum segment size (paper: 2 MB)
	Divisor  uint64 // boundary probability 1/Divisor per chunk after MinBytes
}

// DefaultParams returns the paper's segment geometry — 0.5 MB to 2 MB,
// content-defined — with the boundary divisor chosen so typical segments
// land in the upper half of that band (~1.5 MB at 8 KiB average chunks).
// Larger segments both match SiLo's preferred segment size and give the SPL
// test a stable denominator.
func DefaultParams() Params {
	return Params{MinBytes: 512 << 10, MaxBytes: 2 << 20, Divisor: 160}
}

func (p Params) validate() error {
	if p.MinBytes <= 0 || p.MaxBytes < p.MinBytes || p.Divisor == 0 {
		return fmt.Errorf("segment: bad params %+v", p)
	}
	return nil
}

// Segment is a contiguous run of chunks from one stream.
type Segment struct {
	Chunks []chunk.Chunk
	Bytes  int64
}

// Len returns the chunk count.
func (s *Segment) Len() int { return len(s.Chunks) }

// Segmenter accumulates chunks and emits completed segments.
type Segmenter struct {
	p   Params
	cur Segment
}

// New creates a Segmenter.
func New(p Params) (*Segmenter, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Segmenter{p: p}, nil
}

// Add appends one chunk. If the chunk completes a segment, the segment is
// returned (and a new one started); otherwise Add returns nil. The returned
// segment's slice is owned by the caller.
func (s *Segmenter) Add(c chunk.Chunk) *Segment {
	if c.Size == 0 {
		panic("segment: zero-size chunk")
	}
	s.cur.Chunks = append(s.cur.Chunks, c)
	s.cur.Bytes += int64(c.Size)
	if s.cur.Bytes < s.p.MinBytes {
		return nil
	}
	if s.cur.Bytes >= s.p.MaxBytes || c.FP.Uint64()%s.p.Divisor == 0 {
		return s.emit()
	}
	return nil
}

// Finish flushes the trailing partial segment, or returns nil if empty.
func (s *Segmenter) Finish() *Segment {
	if len(s.cur.Chunks) == 0 {
		return nil
	}
	return s.emit()
}

func (s *Segmenter) emit() *Segment {
	done := s.cur
	s.cur = Segment{}
	return &done
}

// Split is a convenience that segments a complete chunk slice in one call.
func Split(chunks []chunk.Chunk, p Params) ([]*Segment, error) {
	sg, err := New(p)
	if err != nil {
		return nil, err
	}
	var out []*Segment
	for _, c := range chunks {
		if seg := sg.Add(c); seg != nil {
			out = append(out, seg)
		}
	}
	if seg := sg.Finish(); seg != nil {
		out = append(out, seg)
	}
	return out, nil
}
