package segment

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
)

func mkChunk(i uint64, size uint32) chunk.Chunk {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return chunk.Meta(chunk.Of(b[:]), size)
}

func TestParamsValidate(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Fatal("zero params must fail")
	}
	if _, err := New(Params{MinBytes: 10, MaxBytes: 5, Divisor: 2}); err == nil {
		t.Fatal("max < min must fail")
	}
	if _, err := New(Params{MinBytes: 1, MaxBytes: 2, Divisor: 0}); err == nil {
		t.Fatal("zero divisor must fail")
	}
	if _, err := New(DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func TestZeroChunkPanics(t *testing.T) {
	s, _ := New(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Add(chunk.Chunk{})
}

func TestSizeBounds(t *testing.T) {
	p := Params{MinBytes: 1000, MaxBytes: 4000, Divisor: 4}
	var chunks []chunk.Chunk
	for i := uint64(0); i < 500; i++ {
		chunks = append(chunks, mkChunk(i, 100))
	}
	segs, err := Split(chunks, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	for i, s := range segs {
		if s.Bytes > p.MaxBytes {
			t.Fatalf("segment %d bytes %d > max", i, s.Bytes)
		}
		if i < len(segs)-1 && s.Bytes < p.MinBytes {
			t.Fatalf("non-final segment %d bytes %d < min", i, s.Bytes)
		}
	}
}

func TestMaxForcesBoundary(t *testing.T) {
	// Divisor 1<<62 means content boundaries essentially never fire; only
	// MaxBytes can end segments.
	p := Params{MinBytes: 100, MaxBytes: 1000, Divisor: 1 << 62}
	var chunks []chunk.Chunk
	for i := uint64(0); i < 100; i++ {
		chunks = append(chunks, mkChunk(i, 100))
	}
	segs, _ := Split(chunks, p)
	for i, s := range segs[:len(segs)-1] {
		if s.Bytes != 1000 {
			t.Fatalf("segment %d bytes = %d, want exactly max", i, s.Bytes)
		}
	}
}

func TestFinishFlushesPartial(t *testing.T) {
	s, _ := New(Params{MinBytes: 1000, MaxBytes: 4000, Divisor: 4})
	if seg := s.Add(mkChunk(1, 10)); seg != nil {
		t.Fatal("tiny chunk must not complete a segment")
	}
	seg := s.Finish()
	if seg == nil || seg.Len() != 1 || seg.Bytes != 10 {
		t.Fatalf("Finish = %+v", seg)
	}
	if s.Finish() != nil {
		t.Fatal("second Finish must be nil")
	}
}

func TestChunkOrderPreserved(t *testing.T) {
	p := Params{MinBytes: 300, MaxBytes: 1000, Divisor: 4}
	var chunks []chunk.Chunk
	for i := uint64(0); i < 50; i++ {
		chunks = append(chunks, mkChunk(i, 100))
	}
	segs, _ := Split(chunks, p)
	var flat []chunk.Chunk
	for _, s := range segs {
		flat = append(flat, s.Chunks...)
	}
	if len(flat) != len(chunks) {
		t.Fatalf("chunk count %d != %d", len(flat), len(chunks))
	}
	for i := range flat {
		if flat[i].FP != chunks[i].FP {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestContentDefinedBoundariesAreShiftStable(t *testing.T) {
	// Segmenting a suffix of the chunk stream starting at a segment
	// boundary must reproduce the same segments.
	p := Params{MinBytes: 500, MaxBytes: 2000, Divisor: 4}
	var chunks []chunk.Chunk
	for i := uint64(0); i < 400; i++ {
		chunks = append(chunks, mkChunk(i*7919, 100))
	}
	segs, _ := Split(chunks, p)
	if len(segs) < 4 {
		t.Skip("need several segments")
	}
	skip := segs[0].Len() + segs[1].Len()
	resegs, _ := Split(chunks[skip:], p)
	for i := 0; i < 2; i++ {
		a, b := segs[2+i], resegs[i]
		if a.Len() != b.Len() || a.Bytes != b.Bytes {
			t.Fatalf("segment %d differs after re-start: %d/%d vs %d/%d",
				i, a.Len(), a.Bytes, b.Len(), b.Bytes)
		}
	}
}

// Property: Split conserves chunks and bytes for arbitrary size sequences.
func TestSplitConservationProperty(t *testing.T) {
	p := Params{MinBytes: 1000, MaxBytes: 5000, Divisor: 8}
	fn := func(sizes []uint16) bool {
		var chunks []chunk.Chunk
		var total int64
		for i, sz := range sizes {
			s := uint32(sz%3000) + 1
			chunks = append(chunks, mkChunk(uint64(i), s))
			total += int64(s)
		}
		segs, err := Split(chunks, p)
		if err != nil {
			return false
		}
		var n int
		var bytes int64
		for _, s := range segs {
			n += s.Len()
			bytes += s.Bytes
		}
		return n == len(chunks) && bytes == total
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSegmenter(b *testing.B) {
	chunks := make([]chunk.Chunk, 10000)
	for i := range chunks {
		chunks[i] = mkChunk(uint64(i), 8192)
	}
	b.SetBytes(10000 * 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(chunks, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
