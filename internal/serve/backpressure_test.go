package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro"
)

// TestLimiterTable drives the admission ledger through its edge cases.
func TestLimiterTable(t *testing.T) {
	type step struct {
		tenant  string
		acquire bool // false = release the oldest held slot of that tenant
		wantOK  bool
	}
	cases := []struct {
		name      string
		perTenant int
		total     int
		steps     []step
	}{
		{
			name: "per-tenant cap", perTenant: 2, total: 10,
			steps: []step{
				{"a", true, true}, {"a", true, true},
				{"a", true, false}, // third concurrent ingest for a → refused
				{"b", true, true},  // other tenants unaffected
				{"a", false, true}, // release one
				{"a", true, true},  // slot is back
			},
		},
		{
			name: "global cap", perTenant: 10, total: 2,
			steps: []step{
				{"a", true, true}, {"b", true, true},
				{"c", true, false}, // server-wide budget exhausted
				{"a", false, true},
				{"c", true, true},
			},
		},
		{
			name: "release is idempotent per slot", perTenant: 1, total: 10,
			steps: []step{
				{"a", true, true},
				{"a", false, true}, // release runs the func twice (see below)
				{"a", true, true},
				{"a", true, false}, // cap still enforced afterwards
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newLimiter(tc.perTenant, tc.total, 0)
			held := map[string][]func(){}
			for i, st := range tc.steps {
				if st.acquire {
					release, ok := l.acquire(st.tenant)
					if ok != st.wantOK {
						t.Fatalf("step %d: acquire(%s) ok=%v, want %v", i, st.tenant, ok, st.wantOK)
					}
					if ok {
						held[st.tenant] = append(held[st.tenant], release)
					}
				} else {
					rs := held[st.tenant]
					if len(rs) == 0 {
						t.Fatalf("step %d: nothing to release for %s", i, st.tenant)
					}
					rs[0]() // releasing the same slot again must be a no-op
					rs[0]()
					held[st.tenant] = rs[1:]
				}
			}
		})
	}
}

// TestBucketThrottle checks the token bucket paces past its burst and
// honors cancellation.
func TestBucketThrottle(t *testing.T) {
	b := newBucket(1 << 20) // 1 MiB/s, 1 MiB burst, starts full
	if err := b.wait(context.Background(), 1<<20); err != nil {
		t.Fatal(err) // the burst is free
	}
	start := time.Now()
	if err := b.wait(context.Background(), 256<<10); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("drained bucket refilled 256KiB in %v, want ≥150ms at 1MiB/s", el)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.wait(ctx, 10<<20); err == nil {
		t.Fatal("wait with cancelled context must fail")
	}
}

// occupy starts an upload whose body never finishes, and blocks until the
// server has admitted it (one in-flight slot held). It returns the response
// channel and the pipe writer that completes or aborts the upload.
func occupy(t *testing.T, srv *Server, base, tenant, label string) (chan *http.Response, *io.PipeWriter) {
	t.Helper()
	pr, pw := io.Pipe()
	respCh := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/backups/"+label, pr)
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			respCh <- nil
			return
		}
		respCh <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.limits.snapshot()[tenant] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("upload for %s never acquired a slot", tenant)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return respCh, pw
}

// TestServe429Backpressure exercises the per-tenant and global in-flight
// limits end to end: the cap'th+1 concurrent upload is refused with 429 and
// a Retry-After hint, other tenants are unaffected, and the slot frees when
// the held upload completes.
func TestServe429Backpressure(t *testing.T) {
	_, srv, ts := newTestServer(t,
		repro.Options{Engine: repro.DeFrag, Alpha: 0.1, StoreData: true},
		Config{MaxTenantInflight: 1, MaxTotalInflight: 2})
	data := tenantStreams(t, 11, 1)[0]

	respCh, pw := occupy(t, srv, ts.URL, "t0", "t0/held")

	// Same tenant, second concurrent upload: 429 + Retry-After.
	resp := upload(t, ts.URL, "t0", "t0/rejected", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit upload: got %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}

	// A different tenant still fits (global cap 2, one slot used).
	resp = upload(t, ts.URL, "t1", "t1/ok", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant: got %s, want 201", resp.Status)
	}

	// Both slots now free except t0's held one; a third tenant trips the
	// global cap only while two uploads are genuinely in flight.
	respCh2, pw2 := occupy(t, srv, ts.URL, "t1", "t1/held")
	resp = upload(t, ts.URL, "t2", "t2/rejected", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("global over-limit upload: got %s, want 429", resp.Status)
	}

	// Complete the held uploads; their slots free and ingest succeeds.
	for i, fin := range []struct {
		pw *io.PipeWriter
		ch chan *http.Response
	}{{pw, respCh}, {pw2, respCh2}} {
		if _, err := fin.pw.Write(data); err != nil {
			t.Fatal(err)
		}
		fin.pw.Close() //nolint:errcheck // pipe
		r := <-fin.ch
		if r == nil {
			t.Fatalf("held upload %d: transport error", i)
		}
		io.Copy(io.Discard, r.Body) //nolint:errcheck // drain
		r.Body.Close()              //nolint:errcheck // drained
		if r.StatusCode != http.StatusCreated {
			t.Fatalf("held upload %d: got %s, want 201", i, r.Status)
		}
	}
	resp = upload(t, ts.URL, "t0", "t0/after", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-release upload: got %s, want 201", resp.Status)
	}
}

// TestServeDrainMidIngest shuts the server down while an upload is mid
// stream: the ingest is aborted on the cancelled-ingest path, new requests
// get 503, and the reopened store is fsck-clean with the completed backup
// still restorable and the aborted one absent.
func TestServeDrainMidIngest(t *testing.T) {
	dir := t.TempDir()
	opts := repro.Options{
		Engine: repro.DeFrag, Alpha: 0.1, StoreData: true,
		Backend: repro.FileBackend, Dir: dir, ExpectedBytes: 64 << 20,
	}
	store, srv, ts := newTestServer(t, opts, Config{})
	data := tenantStreams(t, 21, 1)[0]

	resp := upload(t, ts.URL, "t0", "t0/done", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload: %s", resp.Status)
	}

	// Hold an upload mid-stream, keep bytes flowing so the pipeline reaches
	// segment boundaries (where cancellation is observed).
	respCh, pw := occupy(t, srv, ts.URL, "t0", "t0/aborted")
	stop := make(chan struct{})
	go func() {
		chunk := make([]byte, 64<<10)
		for {
			select {
			case <-stop:
				pw.CloseWithError(fmt.Errorf("drained")) //nolint:errcheck // pipe
				return
			default:
				if _, err := pw.Write(chunk); err != nil {
					return
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	if r := <-respCh; r != nil {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // drain
		r.Body.Close()              //nolint:errcheck // drained
		if r.StatusCode == http.StatusCreated {
			t.Fatal("mid-drain upload must not commit")
		}
	}

	// Post-drain requests are refused.
	resp = upload(t, ts.URL, "t0", "t0/late", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain upload: got %s, want 503", resp.Status)
	}

	// Close like the dedupd shutdown path, reopen, fsck, restore-verify.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := repro.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck // test teardown
	rep, err := re.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store not fsck-clean after drain: %v", rep.Problems)
	}
	if re.FindBackup("t0/aborted") != nil {
		t.Fatal("aborted ingest must not be retained")
	}
	b := re.FindBackup("t0/done")
	if b == nil {
		t.Fatal("completed backup lost across drain")
	}
	if _, err := re.Restore(context.Background(), b, io.Discard, true); err != nil {
		t.Fatalf("restore-verify after drain: %v", err)
	}
}
