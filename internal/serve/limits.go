package serve

import (
	"context"
	"io"
	"sync"
	"time"
)

// limiter is the session manager's admission ledger: per-tenant and
// server-wide in-flight ingest counts (hard 429 beyond the caps) plus an
// optional per-tenant token-bucket bandwidth throttle shared by all of a
// tenant's concurrent uploads.
type limiter struct {
	perTenant int
	total     int
	bandwidth float64 // bytes/second per tenant; 0 = unthrottled

	mu       sync.Mutex
	inflight map[string]int
	buckets  map[string]*bucket
	used     int
}

func newLimiter(perTenant, total int, bandwidth float64) *limiter {
	return &limiter{
		perTenant: perTenant,
		total:     total,
		bandwidth: bandwidth,
		inflight:  make(map[string]int),
		buckets:   make(map[string]*bucket),
	}
}

// acquire claims one ingest slot for the tenant. It never blocks: when the
// tenant or the server is at its cap the claim is refused, and the caller
// turns that into a 429 — backpressure is the client's problem by design,
// the server holds no upload queue.
func (l *limiter) acquire(tenant string) (release func(), ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[tenant] >= l.perTenant || l.used >= l.total {
		return nil, false
	}
	l.inflight[tenant]++
	l.used++
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.inflight[tenant]--
			if l.inflight[tenant] == 0 {
				delete(l.inflight, tenant)
			}
			l.used--
		})
	}, true
}

// throttle wraps r in the tenant's shared token bucket (no-op when
// bandwidth is unlimited).
func (l *limiter) throttle(ctx context.Context, tenant string, r io.Reader) io.Reader {
	if l.bandwidth <= 0 {
		return r
	}
	l.mu.Lock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = newBucket(l.bandwidth)
		l.buckets[tenant] = b
	}
	l.mu.Unlock()
	return &throttledReader{ctx: ctx, r: r, b: b}
}

// snapshot reports current per-tenant in-flight counts.
func (l *limiter) snapshot() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.inflight))
	for t, n := range l.inflight {
		out[t] = n
	}
	return out
}

// bucket is a token bucket refilled continuously at rate bytes/second, with
// one second of burst. All of a tenant's streams draw from the same bucket,
// so the cap is aggregate, not per-connection.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	tokens float64
	max    float64
	last   time.Time
}

func newBucket(rate float64) *bucket {
	return &bucket{rate: rate, tokens: rate, max: rate, last: time.Now()}
}

// wait blocks until n tokens are available (or ctx is done) and consumes
// them. n may exceed the burst size; the debt is paid down over time.
func (b *bucket) wait(ctx context.Context, n float64) error {
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.max {
			b.tokens = b.max
		}
		b.last = now
		if b.tokens >= n {
			b.tokens -= n
			b.mu.Unlock()
			return nil
		}
		need := n - b.tokens
		b.mu.Unlock()
		d := time.Duration(need / b.rate * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// throttledReader meters reads through the bucket in at most 64 KiB bites
// so a huge Read cannot stall past its fair share.
type throttledReader struct {
	ctx context.Context
	r   io.Reader
	b   *bucket
}

func (t *throttledReader) Read(p []byte) (int, error) {
	const bite = 64 << 10
	if len(p) > bite {
		p = p[:bite]
	}
	n, err := t.r.Read(p)
	if n > 0 {
		// Charge for what actually arrived; the wait paces the next read.
		if werr := t.b.wait(t.ctx, float64(n)); werr != nil {
			return n, werr
		}
	}
	return n, err
}
