package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/telemetry"
)

// TestTraceparentRoundTripHTTP uploads with a client-minted W3C traceparent
// and asserts (a) the response echoes a traceparent of the same trace, and
// (b) /debug/traces on the service port retains the request's span tree
// under that trace ID, with serve.ingest as the local root.
func TestTraceparentRoundTripHTTP(t *testing.T) {
	_, _, ts := newTestServer(t,
		repro.Options{Engine: repro.DeFrag, Alpha: 0.1, StoreData: true},
		Config{})

	// The tail ring lives on the shared Default registry; start its warmup
	// retention over so this request is deterministically retained.
	telemetry.Default().ResetTraces()

	traceID, spanID := telemetry.NewTraceID(), telemetry.NewSpanID()
	hdr := telemetry.FormatTraceParent(traceID, spanID)
	data := tenantStreams(t, 42, 1)[0]

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/backups/trace/gen0", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "trace")
	req.Header.Set("traceparent", hdr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s", resp.Status)
	}
	echo := resp.Header.Get("traceparent")
	etid, esid, ok := telemetry.ParseTraceParent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if etid != traceID {
		t.Fatalf("response trace %s, want the request's %s", etid, traceID)
	}
	if esid == spanID {
		t.Fatal("response span ID must be the server's span, not an echo of the client's")
	}

	// The warmup retention policy guarantees early requests are in the ring.
	dresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close() //nolint:errcheck // read-only
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %s", dresp.Status)
	}
	var view telemetry.TracesView
	if err := json.NewDecoder(dresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	var tree *telemetry.RetainedTrace
	for i := range view.Traces {
		if view.Traces[i].Trace == traceID.String() {
			tree = &view.Traces[i]
		}
	}
	if tree == nil {
		t.Fatalf("trace %s not in /debug/traces (%d retained)", traceID, len(view.Traces))
	}
	if tree.Root != "serve.ingest" {
		t.Fatalf("retained root %q, want serve.ingest", tree.Root)
	}
	if len(tree.Spans) < 2 {
		t.Fatalf("retained tree has %d spans, want the full request tree", len(tree.Spans))
	}
	root := tree.Spans[len(tree.Spans)-1]
	if root.Parent != spanID.String() {
		t.Fatalf("server root parent %q, want the client span %s", root.Parent, spanID)
	}
	ids := map[string]bool{}
	for _, sp := range tree.Spans {
		ids[sp.ID] = true
	}
	names := map[string]bool{}
	for _, sp := range tree.Spans {
		names[sp.Name] = true
		if sp.Trace != traceID.String() {
			t.Fatalf("span %q in tree carries trace %s, want %s", sp.Name, sp.Trace, traceID)
		}
		if sp.ID != root.ID && !ids[sp.Parent] {
			t.Fatalf("span %q parent %q not in tree", sp.Name, sp.Parent)
		}
	}
	if !names["store.ingest_stream"] {
		t.Fatalf("tree spans %v missing store.ingest_stream", names)
	}
}

// TestStatsStagesAndSLO exercises /v1/stats' stage and SLO sections and the
// /metrics surface mounted on the service port.
func TestStatsStagesAndSLO(t *testing.T) {
	_, _, ts := newTestServer(t,
		repro.Options{Engine: repro.DeFrag, Alpha: 0.1, StoreData: true},
		Config{})

	data := tenantStreams(t, 7, 1)[0]
	resp := upload(t, ts.URL, "acme", "acme/gen0", data)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()              //nolint:errcheck // drained
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s", resp.Status)
	}
	// A client error must count as a request but not spend error budget.
	bresp, err := http.Get(ts.URL + "/v1/backups/nope-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body) //nolint:errcheck // drain
	bresp.Body.Close()              //nolint:errcheck // drained
	if bresp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing backup: %s", bresp.Status)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close() //nolint:errcheck // read-only
	var sv StatsView
	if err := json.NewDecoder(sresp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"chunk", "hash", "lookup"} {
		if sv.Stages[stage] <= 0 {
			t.Errorf("stage %q = %d ns after an ingest, want > 0 (stages: %v)", stage, sv.Stages[stage], sv.Stages)
		}
	}
	if sv.SLO.AvailabilityObjective != sloAvailabilityObjective {
		t.Fatalf("SLO objective %v, want %v", sv.SLO.AvailabilityObjective, sloAvailabilityObjective)
	}
	acme, ok := sv.SLO.Tenants["acme"]
	if !ok {
		t.Fatalf("SLO tenants %v missing acme", sv.SLO.Tenants)
	}
	if acme.Requests < 1 || acme.Errors != 0 || acme.Availability != 1 {
		t.Fatalf("acme SLI %+v, want >=1 requests, 0 errors, availability 1", acme)
	}
	if acme.ErrorBudgetRemaining != 1 || acme.BurnRate != 0 {
		t.Fatalf("acme budget %+v, want untouched budget and zero burn", acme)
	}
	if acme.LatencyP99 <= 0 {
		t.Fatalf("acme latency p99 %v, want > 0", acme.LatencyP99)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close() //nolint:errcheck // read-only
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body) //nolint:errcheck // test read
	body := buf.String()
	for _, want := range []string{
		"pipeline_stage_ns_total{stage=\"chunk\"}",
		"slo_requests_total{tenant=\"acme\"}",
		"slo_error_budget_burn_rate{tenant=\"acme\"}",
		"go_goroutines",
		"go_gc_pause_seconds",
		"build_info{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSLOTrackerBudget drives the tracker directly: 5xx spends budget, 429
// does not, burn rate reflects the windowed error share.
func TestSLOTrackerBudget(t *testing.T) {
	tr := newSLOTracker()
	for i := 0; i < 999; i++ {
		tr.Record("t", 200, 0)
	}
	tr.Record("t", 500, 0)
	tr.Record("t", 429, 0)
	v := tr.View().Tenants["t"]
	if v.Requests != 1000 || v.Errors != 1 || v.Throttled != 1 {
		t.Fatalf("SLI %+v, want 1000 req / 1 err / 1 throttled", v)
	}
	if v.Availability != 1-1.0/1000 {
		t.Fatalf("availability %v", v.Availability)
	}
	// 1000 requests at objective 99.9% → budget exactly 1 error → spent.
	if v.ErrorBudgetRemaining > 1e-9 || v.ErrorBudgetRemaining < -1e-9 {
		t.Fatalf("budget remaining %v, want 0", v.ErrorBudgetRemaining)
	}
	// Window: 1 error in 1000 requests = rate 0.001 = exactly the budget
	// rate → burn 1.0.
	if v.BurnRate < 0.99 || v.BurnRate > 1.01 {
		t.Fatalf("burn rate %v, want ~1.0", v.BurnRate)
	}
}
