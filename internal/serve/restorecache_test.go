package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro"
	"repro/internal/blockstore"
)

// TestConcurrentRestoresSingleFlight is the serve-level guard for the shared
// sealed-container cache: many tenants restore overlapping backups
// concurrently through the HTTP layer, and the backend — instrumented with a
// Counting wrapper at the blockstore seam — must see each hot container's
// data section fetched exactly once. Every response must still be
// byte-identical to the ingested stream. Run under -race this also covers
// cache/pipeline concurrency end to end.
func TestConcurrentRestoresSingleFlight(t *testing.T) {
	var counting *blockstore.Counting
	_, _, ts := newTestServer(t,
		repro.Options{
			Engine:            repro.DeFrag,
			Alpha:             0.1,
			StoreData:         true,
			RestoreCacheBytes: 64 << 20,
			WrapBackend: func(be blockstore.Backend) blockstore.Backend {
				counting = blockstore.NewCounting(be)
				return counting
			},
		},
		Config{MaxTenantInflight: 4, MaxTotalInflight: 32})

	// Two generations per tenant: sibling generations share chunks, so the
	// second generation's restore is fragmented across containers the first
	// also touches — exactly the hot-container overlap the cache dedups.
	const tenants, gens = 3, 2
	streams := make([][][]byte, tenants)
	for tn := range streams {
		streams[tn] = tenantStreams(t, int64(7000+tn), gens)
		for g := 0; g < gens; g++ {
			label := fmt.Sprintf("t%d/g%02d", tn, g)
			resp := upload(t, ts.URL, fmt.Sprintf("t%d", tn), label, streams[tn][g])
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close() //nolint:errcheck // read fully
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("%s: %s: %s", label, resp.Status, body)
			}
		}
	}
	counting.ResetCounts()

	// Every tenant restores every generation, several times over, all at
	// once, through the full parallel path (coalesced fetch + decode pool).
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, tenants*gens*rounds)
	for r := 0; r < rounds; r++ {
		for tn := 0; tn < tenants; tn++ {
			for g := 0; g < gens; g++ {
				wg.Add(1)
				go func(tn, g int) {
					defer wg.Done()
					label := fmt.Sprintf("t%d/g%02d", tn, g)
					url := fmt.Sprintf("%s/v1/backups/%s/restore?mode=pipelined&workers=2&decode=4&verify=1",
						ts.URL, label)
					resp, err := http.Get(url)
					if err != nil {
						errs <- err
						return
					}
					got, err := io.ReadAll(resp.Body)
					resp.Body.Close() //nolint:errcheck // read fully
					if err != nil {
						errs <- fmt.Errorf("%s: %v", label, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: %s: %s", label, resp.Status, got)
						return
					}
					if !bytes.Equal(got, streams[tn][g]) {
						errs <- fmt.Errorf("%s: restored bytes differ (%d vs %d)",
							label, len(got), len(streams[tn][g]))
					}
				}(tn, g)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Single-flight at the physical seam: every data-section fetch the
	// backend saw corresponds to exactly one cache miss, i.e. each hot
	// container was read once no matter how many streams wanted it.
	var view StatsView
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test teardown
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.RestoreCache == nil {
		t.Fatal("/v1/stats: restoreCache missing despite configured budget")
	}
	cs := *view.RestoreCache
	if cs.Misses == 0 || cs.Hits+cs.Waits == 0 {
		t.Fatalf("cache never exercised: %+v", cs)
	}
	reads := counting.DataSectionReads()
	if reads != int64(cs.Misses) {
		t.Fatalf("backend fetched %d data sections for %d cache misses — single-flight broken (%+v)",
			reads, cs.Misses, cs)
	}
	if max := int64(view.Storage.Containers); reads > max {
		t.Fatalf("backend fetched %d sections, more than the %d sealed containers", reads, max)
	}
}
